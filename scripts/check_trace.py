#!/usr/bin/env python3
"""Validate a Chrome trace-event JSON file produced by `checkfence --trace`.

Checks, in order:
  1. The file parses and has a non-empty "traceEvents" array.
  2. Every event is a complete span ("X") or metadata record ("M") with
     the fields Perfetto needs (name, ts; dur/pid/tid for spans).
  3. Within each (pid, tid) lane, spans nest properly: a span that
     starts inside another must also end inside it (no partial
     overlaps - RAII spans guarantee this, so a violation means the
     emitter is broken).
  4. Optional --require NAME assertions: each NAME must appear as a
     span name (exact match) somewhere in the trace.

Usage:
  python3 scripts/check_trace.py trace.json --require request:matrix \
      --require cell:ms2:T0:sc

Exit code 0 on success, 1 with a diagnostic on the first failure.
"""

import argparse
import json
import sys


def fail(msg: str) -> None:
    print(f"check_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_nesting(lane, events) -> None:
    """Spans in one lane, sorted by (start, -dur), must strictly nest."""
    stack = []  # (start, end, name) of open ancestors
    for ev in sorted(events, key=lambda e: (e["ts"], -e["dur"])):
        start, end = ev["ts"], ev["ts"] + ev["dur"]
        while stack and start >= stack[-1][1]:
            stack.pop()
        if stack and end > stack[-1][1] + 1e-9:
            fail(
                f"lane {lane}: span '{ev['name']}' "
                f"[{start}, {end}] partially overlaps enclosing "
                f"'{stack[-1][2]}' [{stack[-1][0]}, {stack[-1][1]}]"
            )
        stack.append((start, end, ev["name"]))


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("trace", help="trace JSON file to validate")
    ap.add_argument(
        "--require",
        action="append",
        default=[],
        metavar="NAME",
        help="assert a span with this exact name exists (repeatable)",
    )
    args = ap.parse_args()

    try:
        with open(args.trace) as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as ex:
        fail(f"{args.trace}: {ex}")

    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail("no traceEvents array (or it is empty)")

    spans = []
    for i, ev in enumerate(events):
        ph = ev.get("ph")
        if ph == "M":
            if "name" not in ev:
                fail(f"event {i}: metadata record without a name")
            continue
        if ph != "X":
            fail(f"event {i}: unexpected phase {ph!r} (want 'X' or 'M')")
        for field in ("name", "ts", "dur", "pid", "tid"):
            if field not in ev:
                fail(f"event {i} ('{ev.get('name', '?')}'): missing {field}")
        if ev["dur"] < 0 or ev["ts"] < 0:
            fail(f"event {i} ('{ev['name']}'): negative ts/dur")
        spans.append(ev)

    if not spans:
        fail("trace has metadata but no spans")

    lanes = {}
    for ev in spans:
        lanes.setdefault((ev["pid"], ev["tid"]), []).append(ev)
    for lane, lane_events in sorted(lanes.items()):
        check_nesting(lane, lane_events)

    names = {ev["name"] for ev in spans}
    for want in args.require:
        if want not in names:
            fail(
                f"required span '{want}' not found; "
                f"names present: {', '.join(sorted(names))}"
            )

    print(
        f"check_trace: OK: {len(spans)} spans in {len(lanes)} lanes, "
        f"{len(names)} distinct names"
    )


if __name__ == "__main__":
    main()
