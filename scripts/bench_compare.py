#!/usr/bin/env python3
"""Compare fresh bench reports against checked-in baselines.

Both sides use the shared bench schema emitted by ``bench_* --json``
(see bench/BenchUtil.h, ``bench_schema_version`` 1). Only metrics marked
``"gate": true`` in the *baseline* participate; everything else is
trajectory data. Each gated metric's ``better`` field picks the rule:

* ``"equal"``  - the fresh value must match the baseline exactly
  (verdict counts, observation totals, determinism booleans, CNF sizes);
* ``"lower"``  - regression when fresh > baseline * (1 + threshold);
* ``"higher"`` - regression when fresh < baseline * (1 - threshold).

Usage:

  bench_compare.py BASELINE FRESH [BASELINE FRESH ...]
      [--threshold 0.15] [--update]

``--update`` copies each FRESH over its BASELINE instead of comparing
(for refreshing baselines after an intentional perf change). Exit code 0
when no gated metric regressed, 1 otherwise (each regression is listed
on stderr), 2 on malformed input.
"""

import argparse
import json
import shutil
import sys
from pathlib import Path

SCHEMA_VERSION = 1


def load(path: Path):
    try:
        doc = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as err:
        sys.exit(f"bench_compare: cannot read {path}: {err}")
    if doc.get("bench_schema_version") != SCHEMA_VERSION:
        sys.exit(
            f"bench_compare: {path}: bench_schema_version "
            f"{doc.get('bench_schema_version')!r}, expected {SCHEMA_VERSION}"
        )
    return doc


def metrics_by_name(doc):
    return {m["name"]: m for m in doc.get("metrics", [])}


def compare_pair(baseline_path: Path, fresh_path: Path, threshold: float):
    """Returns a list of human-readable regression strings."""
    base = load(baseline_path)
    fresh = load(fresh_path)
    problems = []
    if base.get("bench") != fresh.get("bench"):
        problems.append(
            f"{fresh_path}: bench name {fresh.get('bench')!r} does not "
            f"match baseline {base.get('bench')!r}"
        )
        return problems
    if base.get("full") != fresh.get("full"):
        problems.append(
            f"{fresh_path}: full={fresh.get('full')} but baseline has "
            f"full={base.get('full')} (different grids are not comparable)"
        )
        return problems

    fresh_metrics = metrics_by_name(fresh)
    name = base.get("bench", "?")
    for metric in base.get("metrics", []):
        if not metric.get("gate"):
            continue
        mname = metric["name"]
        if mname not in fresh_metrics:
            problems.append(f"{name}: gated metric '{mname}' missing from fresh run")
            continue
        base_v = float(metric["value"])
        fresh_v = float(fresh_metrics[mname]["value"])
        better = metric.get("better", "lower")
        if better == "equal":
            if fresh_v != base_v:
                problems.append(
                    f"{name}: '{mname}' changed: baseline {base_v:g}, "
                    f"fresh {fresh_v:g} (must match exactly)"
                )
        elif better == "lower":
            if fresh_v > base_v * (1 + threshold):
                problems.append(
                    f"{name}: '{mname}' regressed: baseline {base_v:g}, "
                    f"fresh {fresh_v:g} (> +{threshold:.0%})"
                )
        elif better == "higher":
            if fresh_v < base_v * (1 - threshold):
                problems.append(
                    f"{name}: '{mname}' regressed: baseline {base_v:g}, "
                    f"fresh {fresh_v:g} (< -{threshold:.0%})"
                )
        else:
            problems.append(f"{name}: '{mname}' has unknown better={better!r}")
    return problems


def main() -> int:
    parser = argparse.ArgumentParser(
        description="gate fresh bench JSONs against committed baselines"
    )
    parser.add_argument(
        "pairs",
        nargs="+",
        metavar="BASELINE FRESH",
        help="alternating baseline and fresh report paths",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.15,
        help="relative tolerance for lower/higher metrics (default 0.15)",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="copy each FRESH over its BASELINE instead of comparing",
    )
    args = parser.parse_args()

    if len(args.pairs) % 2 != 0:
        parser.error("expected an even number of paths (BASELINE FRESH ...)")
    pairs = [
        (Path(args.pairs[i]), Path(args.pairs[i + 1]))
        for i in range(0, len(args.pairs), 2)
    ]

    if args.update:
        for baseline, fresh in pairs:
            load(fresh)  # validate before overwriting the baseline
            baseline.parent.mkdir(parents=True, exist_ok=True)
            shutil.copyfile(fresh, baseline)
            print(f"updated {baseline} from {fresh}")
        return 0

    regressions = []
    compared = 0
    for baseline, fresh in pairs:
        regressions += compare_pair(baseline, fresh, args.threshold)
        compared += 1
    if regressions:
        print(f"bench_compare: {len(regressions)} regression(s):", file=sys.stderr)
        for line in regressions:
            print(f"  {line}", file=sys.stderr)
        return 1
    print(f"bench_compare: {compared} report(s) within threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
