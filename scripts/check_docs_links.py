#!/usr/bin/env python3
"""Fail on broken relative links in README.md and docs/*.md.

Checks every markdown inline link ``[text](target)`` whose target is not
an absolute URL or a pure in-page anchor: the target path (resolved
relative to the file containing the link, fragment stripped) must exist
in the repository. Run from anywhere; the repo root is located relative
to this script.

Exit code 0 when all links resolve, 1 otherwise (each broken link is
reported on stderr).
"""

import re
import sys
from pathlib import Path

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def doc_files(root: Path):
    readme = root / "README.md"
    if readme.exists():
        yield readme
    docs = root / "docs"
    if docs.is_dir():
        yield from sorted(docs.glob("*.md"))


def check_file(path: Path) -> list:
    broken = []
    text = path.read_text(encoding="utf-8")
    for match in LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(SKIP_PREFIXES):
            continue
        rel = target.split("#", 1)[0]
        if not rel:
            continue
        resolved = (path.parent / rel).resolve()
        if not resolved.exists():
            line = text.count("\n", 0, match.start()) + 1
            broken.append((path, line, target))
    return broken


def main() -> int:
    root = Path(__file__).resolve().parent.parent
    files = list(doc_files(root))
    if not files:
        print("no documentation files found", file=sys.stderr)
        return 1
    broken = []
    checked = 0
    for path in files:
        checked += 1
        broken.extend(check_file(path))
    for path, line, target in broken:
        print(f"{path.relative_to(root)}:{line}: broken link -> {target}",
              file=sys.stderr)
    print(f"checked {checked} file(s), {len(broken)} broken link(s)")
    return 1 if broken else 0


if __name__ == "__main__":
    sys.exit(main())
