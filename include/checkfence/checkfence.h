//===--- checkfence/checkfence.h - public API umbrella ----------*- C++ -*-==//
//
// Part of the CheckFence reproduction (PLDI'07).
// Public API - this header is installed and stable; see docs/API.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one header a library consumer needs:
///
///   #include "checkfence/checkfence.h"
///
///   checkfence::Verifier V;
///   auto R = V.check(checkfence::Request::check("msn", "T0")
///                        .model("relaxed"));
///   if (R.failed()) puts(R.CounterexampleTrace.c_str());
///
/// Everything under include/checkfence/ is the supported, versioned API
/// surface; headers under src/ are internal and may change at any time.
/// This umbrella additionally exposes the catalog (implementations,
/// tests, models) and the library/schema version.
///
//===----------------------------------------------------------------------===//

#ifndef CHECKFENCE_PUBLIC_CHECKFENCE_H
#define CHECKFENCE_PUBLIC_CHECKFENCE_H

#include "checkfence/Events.h"
#include "checkfence/Remote.h"
#include "checkfence/Request.h"
#include "checkfence/Result.h"
#include "checkfence/Server.h"
#include "checkfence/Verifier.h"

#include <string>
#include <vector>

#define CHECKFENCE_VERSION_MAJOR 0
#define CHECKFENCE_VERSION_MINOR 9
#define CHECKFENCE_VERSION_PATCH 0

namespace checkfence {

/// Library version as "major.minor.patch".
const char *versionString();

/// A built-in implementation (the paper's Table 1 plus extensions).
struct ImplDesc {
  std::string Name;        ///< "msn", "ms2", ...
  std::string Kind;        ///< "queue", "set", "deque", or "stack"
  std::string Description;
};

/// A catalog symbolic test (Fig. 8 plus extensions).
struct TestDesc {
  std::string Name;     ///< "T0", "Sac", ...
  std::string Kind;
  std::string Notation; ///< e.g. "e ( ed | de )"
};

/// A named memory model (a point in the relaxation lattice).
struct ModelDesc {
  std::string Name;       ///< "sc", "tso", ...
  std::string Descriptor; ///< canonical lattice descriptor ("po:...")
  std::string Note;       ///< one-line description
  /// The polynomial reads-from oracle covers this point: explore uses it
  /// as the primary litmus oracle and checks prune SAT inclusion queries
  /// with it (see docs/ORACLES.md). False = brute-force oracles only.
  bool FastOracle = false;
  /// The static critical-cycle robustness analysis covers this point
  /// (multi-copy atomic, per-access granularity): `--analyze` produces a
  /// verdict for it and checks can discharge robust programs without SAT
  /// (see docs/ANALYSIS.md).
  bool Analysis = false;
};

/// Built-in implementations, tests (paper first, then extensions), and
/// named models (strongest first).
std::vector<ImplDesc> listImplementations();
std::vector<TestDesc> listTests();
std::vector<ModelDesc> listModels();

/// True when \p Name resolves to a model: a registry name ("tso") or a
/// lattice descriptor ("po:ll+ls,fwd"). Lets front ends reject typos as
/// usage errors before dispatching a request.
bool validModelName(const std::string &Name);

/// Full CheckFence-C source of a built-in implementation (prelude
/// included); empty for unknown names.
std::string implementationSource(const std::string &Name);

/// The shared CheckFence-C prelude (assert/fence declarations, cas,
/// dcas, locks) that the Verifier prepends to user sources.
std::string preludeSource();

} // namespace checkfence

#endif // CHECKFENCE_PUBLIC_CHECKFENCE_H
