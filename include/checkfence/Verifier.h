//===--- checkfence/Verifier.h - the verification service -------*- C++ -*-==//
//
// Part of the CheckFence reproduction (PLDI'07).
// Public API - this header is installed and stable; see docs/API.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Verifier is the service front of the engine: it owns a pool of
/// incremental check sessions (persistent SAT solvers, reused across
/// requests with identical options), a cross-run result cache, and a
/// worker pool for batched matrices. It is safe to share one Verifier
/// across threads; individual requests run synchronously on the calling
/// thread (matrix cells fan out onto workers).
///
/// The cache is keyed by (program fingerprint, model, engine options).
/// A hit returns the stored result without running anything - the
/// timing-free JSON of a hit is byte-identical to the original run's.
/// On a miss whose program fingerprint matches an earlier passing run,
/// the earlier run's final loop bounds seed the new run's initial bounds
/// (the paper's Fig. 10 re-run workflow). Configure CachePath to persist
/// the cache across processes.
///
//===----------------------------------------------------------------------===//

#ifndef CHECKFENCE_PUBLIC_VERIFIER_H
#define CHECKFENCE_PUBLIC_VERIFIER_H

#include "checkfence/Events.h"
#include "checkfence/Request.h"
#include "checkfence/Result.h"

#include <cstddef>
#include <memory>
#include <string>

namespace checkfence {

namespace api {
class ResultCache; // internal representation behind SharedResultCache
}

/// Cache observability counters.
struct CacheStats {
  size_t Entries = 0;
  size_t Hits = 0;
  size_t Misses = 0;
  size_t BoundsSeeded = 0; ///< runs whose initial bounds came from cache
};

/// A copyable handle to a result cache that several Verifiers can share:
/// construct Verifiers whose VerifierConfig::SharedCache holds the same
/// handle and they hit/fill one cache (the checkfenced server does this
/// across its shards). An empty (default-constructed) handle means "the
/// Verifier owns a private cache".
///
/// Persistence moves to the handle's owner: a Verifier built on a shared
/// cache never loads or saves CachePath itself. load() *merges* the file
/// into the cache (in-memory entries win) and save() merges the cache
/// into the file via a locked read-merge-rename, so concurrent daemons
/// and ad-hoc CLI runs can share one cache file without clobbering each
/// other's entries.
class SharedResultCache {
public:
  /// An empty handle (no cache).
  SharedResultCache();
  ~SharedResultCache();
  SharedResultCache(const SharedResultCache &);
  SharedResultCache &operator=(const SharedResultCache &);

  /// A handle to a fresh, empty cache.
  static SharedResultCache create();

  bool valid() const { return Cache != nullptr; }

  /// Merges \p Path into the cache (see class comment). False when the
  /// file is missing or not a cache written by this library version.
  bool load(const std::string &Path);
  /// Merges the cache into \p Path atomically (temp file + rename under
  /// an advisory lock). False on I/O failure or an empty handle.
  bool save(const std::string &Path) const;

  CacheStats stats() const;
  void clear();

private:
  friend class Verifier;
  std::shared_ptr<api::ResultCache> Cache;
};

struct VerifierConfig {
  /// Default worker-thread count for matrix cells and synthesis
  /// minimization when the request does not set its own (minimum 1).
  int Jobs = 1;
  /// Enable the in-memory cross-run result cache.
  bool EnableCache = true;
  /// When non-empty: load the cache from this file on construction and
  /// save it back on destruction (and on saveCache()).
  std::string CachePath;
  /// Seed a run's initial loop bounds from a previous passing run of the
  /// same program (single checks only; matrix cells always start clean
  /// so reports stay byte-identical across job counts and cache states).
  bool ReuseBounds = true;
  /// When valid: use this shared cache instead of a private one. The
  /// Verifier then never loads or saves CachePath - persistence belongs
  /// to whoever owns the handle (see SharedResultCache).
  SharedResultCache SharedCache;
};

/// Session-pool observability counters (the `/metrics` surface of the
/// checkfenced server; see docs/SERVER.md).
struct PoolStats {
  size_t IdleSessions = 0; ///< warm sessions parked in the pool
  /// Total CNF clauses held by those idle sessions' persistent solvers -
  /// a proxy for the pool's solver memory.
  unsigned long long IdleClauses = 0;
};

class Verifier {
public:
  explicit Verifier(VerifierConfig Config = VerifierConfig());
  ~Verifier();
  Verifier(const Verifier &) = delete;
  Verifier &operator=(const Verifier &) = delete;

  /// Runs a single check (Request::check). Errors - unknown names, bad
  /// notation, frontend failures - come back as Status::Error results.
  Result check(const Request &Req, EventSink *Sink = nullptr,
               CancelToken Token = CancelToken());

  /// Runs a batched matrix or lattice sweep (Request::matrix/sweep).
  Report matrix(const Request &Req, EventSink *Sink = nullptr,
                CancelToken Token = CancelToken());

  /// Runs a fence synthesis (Request::synthesis).
  SynthOutcome synthesize(const Request &Req, EventSink *Sink = nullptr,
                          CancelToken Token = CancelToken());

  /// Runs an active weakest-passing-model search
  /// (Request::weakestModel).
  WeakestOutcome weakestModels(const Request &Req,
                               EventSink *Sink = nullptr,
                               CancelToken Token = CancelToken());

  /// Answers a litmus reachability query (Request::litmus). Runs one
  /// synchronous SAT query: deadlines and cancel tokens do not apply
  /// here (there is no phase boundary to stop at) - bound long queries
  /// with Request::conflictBudget instead.
  LitmusOutcome observable(const Request &Req);

  /// Runs a static critical-cycle robustness analysis
  /// (Request::analyze). Purely static - no SAT solving, no sessions,
  /// no cache; the model rows fan out over jobs() workers but the
  /// outcome (and its JSON) is byte-identical at any job count.
  AnalysisOutcome analyze(const Request &Req);

  /// Runs a randomized differential exploration (Request::explore):
  /// seeded scenario generation, per-model oracle cross-checks on this
  /// Verifier's session pool, divergence shrinking, and corpus
  /// persistence. See docs/EXPLORE.md.
  ExploreOutcome explore(const Request &Req, EventSink *Sink = nullptr,
                         CancelToken Token = CancelToken());

  CacheStats cacheStats() const;
  /// Occupancy of the warm-session pool (idle sessions and the clauses
  /// their persistent solvers hold) - a live service's memory signal.
  PoolStats poolStats() const;
  void clearCache();
  /// Persists the cache now (to \p Path, or the configured CachePath).
  bool saveCache(const std::string &Path = std::string()) const;

private:
  struct Impl;
  std::unique_ptr<Impl> Self;
};

} // namespace checkfence

#endif // CHECKFENCE_PUBLIC_VERIFIER_H
