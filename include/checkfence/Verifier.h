//===--- checkfence/Verifier.h - the verification service -------*- C++ -*-==//
//
// Part of the CheckFence reproduction (PLDI'07).
// Public API - this header is installed and stable; see docs/API.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Verifier is the service front of the engine: it owns a pool of
/// incremental check sessions (persistent SAT solvers, reused across
/// requests with identical options), a cross-run result cache, and a
/// worker pool for batched matrices. It is safe to share one Verifier
/// across threads; individual requests run synchronously on the calling
/// thread (matrix cells fan out onto workers).
///
/// The cache is keyed by (program fingerprint, model, engine options).
/// A hit returns the stored result without running anything - the
/// timing-free JSON of a hit is byte-identical to the original run's.
/// On a miss whose program fingerprint matches an earlier passing run,
/// the earlier run's final loop bounds seed the new run's initial bounds
/// (the paper's Fig. 10 re-run workflow). Configure CachePath to persist
/// the cache across processes.
///
//===----------------------------------------------------------------------===//

#ifndef CHECKFENCE_PUBLIC_VERIFIER_H
#define CHECKFENCE_PUBLIC_VERIFIER_H

#include "checkfence/Events.h"
#include "checkfence/Request.h"
#include "checkfence/Result.h"

#include <cstddef>
#include <memory>
#include <string>

namespace checkfence {

struct VerifierConfig {
  /// Default worker-thread count for matrix cells and synthesis
  /// minimization when the request does not set its own (minimum 1).
  int Jobs = 1;
  /// Enable the in-memory cross-run result cache.
  bool EnableCache = true;
  /// When non-empty: load the cache from this file on construction and
  /// save it back on destruction (and on saveCache()).
  std::string CachePath;
  /// Seed a run's initial loop bounds from a previous passing run of the
  /// same program (single checks only; matrix cells always start clean
  /// so reports stay byte-identical across job counts and cache states).
  bool ReuseBounds = true;
};

/// Cache observability counters.
struct CacheStats {
  size_t Entries = 0;
  size_t Hits = 0;
  size_t Misses = 0;
  size_t BoundsSeeded = 0; ///< runs whose initial bounds came from cache
};

class Verifier {
public:
  explicit Verifier(VerifierConfig Config = VerifierConfig());
  ~Verifier();
  Verifier(const Verifier &) = delete;
  Verifier &operator=(const Verifier &) = delete;

  /// Runs a single check (Request::check). Errors - unknown names, bad
  /// notation, frontend failures - come back as Status::Error results.
  Result check(const Request &Req, EventSink *Sink = nullptr,
               CancelToken Token = CancelToken());

  /// Runs a batched matrix or lattice sweep (Request::matrix/sweep).
  Report matrix(const Request &Req, EventSink *Sink = nullptr,
                CancelToken Token = CancelToken());

  /// Runs a fence synthesis (Request::synthesis).
  SynthOutcome synthesize(const Request &Req, EventSink *Sink = nullptr,
                          CancelToken Token = CancelToken());

  /// Runs an active weakest-passing-model search
  /// (Request::weakestModel).
  WeakestOutcome weakestModels(const Request &Req,
                               EventSink *Sink = nullptr,
                               CancelToken Token = CancelToken());

  /// Answers a litmus reachability query (Request::litmus). Runs one
  /// synchronous SAT query: deadlines and cancel tokens do not apply
  /// here (there is no phase boundary to stop at) - bound long queries
  /// with Request::conflictBudget instead.
  LitmusOutcome observable(const Request &Req);

  /// Runs a static critical-cycle robustness analysis
  /// (Request::analyze). Purely static - no SAT solving, no sessions,
  /// no cache; the model rows fan out over jobs() workers but the
  /// outcome (and its JSON) is byte-identical at any job count.
  AnalysisOutcome analyze(const Request &Req);

  /// Runs a randomized differential exploration (Request::explore):
  /// seeded scenario generation, per-model oracle cross-checks on this
  /// Verifier's session pool, divergence shrinking, and corpus
  /// persistence. See docs/EXPLORE.md.
  ExploreOutcome explore(const Request &Req, EventSink *Sink = nullptr,
                         CancelToken Token = CancelToken());

  CacheStats cacheStats() const;
  void clearCache();
  /// Persists the cache now (to \p Path, or the configured CachePath).
  bool saveCache(const std::string &Path = std::string()) const;

private:
  struct Impl;
  std::unique_ptr<Impl> Self;
};

} // namespace checkfence

#endif // CHECKFENCE_PUBLIC_VERIFIER_H
