//===--- checkfence/Remote.h - client for a checkfenced daemon --*- C++ -*-==//
//
// Part of the CheckFence reproduction (PLDI'07).
// Public API - this header is installed and stable; see docs/SERVER.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// RemoteVerifier dispatches Requests to a running checkfenced daemon
/// (checkfence/Server.h) over HTTP + JSON-RPC and reconstructs the
/// results. Single checks come back as full checkfence::Result values
/// (every field round-trips, so local rendering - json(), exit codes -
/// is byte-identical to an in-process run). Batched kinds come back as
/// the server-rendered report strings plus the scalar fields a client
/// needs for exit codes and summaries.
///
/// Transport failures are reported out-of-band in RemoteStatus, never
/// conflated with verification verdicts: a connection refused is not an
/// ERROR result.
///
//===----------------------------------------------------------------------===//

#ifndef CHECKFENCE_PUBLIC_REMOTE_H
#define CHECKFENCE_PUBLIC_REMOTE_H

#include <memory>
#include <string>
#include <vector>

#include "checkfence/Request.h"
#include "checkfence/Result.h"

namespace checkfence {

/// Transport-level outcome of one remote call.
struct RemoteStatus {
  bool Ok = false;
  std::string Error; ///< transport or server-side dispatch problem
  /// HTTP status when a response arrived (200 on success, 429 when the
  /// daemon's queue was full, 0 when the transport failed earlier).
  int HttpStatus = 0;
  /// Parsed Retry-After seconds on a 429 (0 otherwise).
  int RetryAfterSeconds = 0;

  explicit operator bool() const { return Ok; }
};

/// A matrix/sweep report as served by the daemon: the rendered table and
/// JSON plus the fields that drive the CLI exit-code convention.
struct RemoteReport {
  bool Ok = false;
  std::string Error; ///< request-level problem (empty matrix, bad axis)
  std::string Table;
  std::string Json;          ///< with timings
  std::string JsonNoTimings; ///< byte-identical to a local --no-timings run
  bool AllCompleted = false;
  size_t CellCount = 0;
  int ErrorCells = 0;
  int CancelledCells = 0;
};

/// An analysis report as served by the daemon.
struct RemoteAnalysis {
  bool Ok = false;
  std::string Error;
  std::string Table;
  std::string Json; ///< timing-free by construction (static analysis)
};

/// An explore report as served by the daemon. Corpus persistence happens
/// on the server's filesystem only when the server enables it; remote
/// requests' corpus() directories are ignored (see docs/SERVER.md).
struct RemoteExplore {
  bool Ok = false;
  std::string Error;
  bool Cancelled = false;
  unsigned long long Seed = 0;
  int Generated = 0;
  int Deduplicated = 0;
  int Run = 0;
  int Skips = 0;
  int Shrunk = 0;
  double WallSeconds = 0;
  std::string Json;
  std::string JsonNoTimings;
  std::vector<std::string> Warnings;
  std::vector<ExploreDivergence> Divergences;
};

/// A synthesis outcome as served by the daemon (field-for-field the
/// public SynthOutcome, plus the server-rendered JSON).
struct RemoteSynth {
  SynthOutcome Outcome;
  std::string Json;
};

class RemoteVerifier {
public:
  /// \p BaseUrl like "http://127.0.0.1:8417" (the scheme is optional;
  /// only http is supported, a path prefix is not).
  explicit RemoteVerifier(std::string BaseUrl);
  ~RemoteVerifier();
  RemoteVerifier(const RemoteVerifier &) = delete;
  RemoteVerifier &operator=(const RemoteVerifier &) = delete;

  /// Request priority class for the daemon's admission queue:
  /// "high", "normal" (default), or "low".
  void setPriority(std::string Priority);

  /// Server reachability + version probe.
  RemoteStatus version(std::string &VersionOut, int &SchemaOut);

  RemoteStatus check(const Request &Req, Result &Out);
  RemoteStatus matrix(const Request &Req, RemoteReport &Out);
  RemoteStatus analyze(const Request &Req, RemoteAnalysis &Out);
  RemoteStatus explore(const Request &Req, RemoteExplore &Out);
  RemoteStatus synthesize(const Request &Req, RemoteSynth &Out);
  RemoteStatus weakestModels(const Request &Req, WeakestOutcome &Out);

private:
  struct Impl;
  std::unique_ptr<Impl> Self;
};

} // namespace checkfence

#endif // CHECKFENCE_PUBLIC_REMOTE_H
