//===--- checkfence/Result.h - public result types --------------*- C++ -*-==//
//
// Part of the CheckFence reproduction (PLDI'07).
// Public API - this header is installed and stable; see docs/API.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Value types returned by the Verifier: the verdict of a single check
/// (Result), a batched matrix run (Report), a fence-synthesis run
/// (SynthOutcome), a weakest-model search (WeakestOutcome), and a litmus
/// reachability query (LitmusOutcome).
///
/// All results serialize through one versioned JSON schema: every report
/// carries a top-level "schema_version" field, and a single check emits
/// the same shape as a one-cell matrix report.
///
//===----------------------------------------------------------------------===//

#ifndef CHECKFENCE_PUBLIC_RESULT_H
#define CHECKFENCE_PUBLIC_RESULT_H

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace checkfence {

namespace engine {
struct MatrixReport; // internal representation behind Report
}
namespace explore {
struct ExploreReport; // internal representation behind ExploreOutcome
}

/// The version of the JSON report schema emitted by Result::json,
/// Report::json, and the CLI's --json flag.
inline constexpr int JsonSchemaVersion = 1;

/// Verdict of a check.
enum class Status {
  Pass,            ///< all executions within spec, bounds sufficient
  Fail,            ///< counterexample found
  SequentialBug,   ///< a *serial* execution already misbehaves
  BoundsExhausted, ///< lazy unrolling hit its iteration/probe budget
  Error,           ///< frontend/encoder/solver problem (see message)
  Cancelled,       ///< stopped by a CancelToken or an expired deadline
};

/// Stable display name: "PASS", "FAIL", "SEQUENTIAL-BUG",
/// "BOUNDS-EXHAUSTED", "ERROR", "CANCELLED".
const char *statusName(Status S);

/// The CLI exit-code convention: Pass = 0, Fail = 1, SequentialBug = 2,
/// BoundsExhausted = 3, Error = 4, Cancelled = 5.
int exitCodeFor(Status S);

/// Aggregate statistics of one check (the paper's Fig. 10/11 columns).
struct ResultStats {
  int ObservationCount = 0; ///< mined specification size
  int BoundIterations = 0;  ///< outer mine/include/probe rounds
  int UnrolledInstrs = 0;   ///< final inclusion problem size
  int Loads = 0;
  int Stores = 0;
  int SatVars = 0;
  unsigned long long SatClauses = 0;
  double EncodeSeconds = 0;
  double SolveSeconds = 0;
  double MiningSeconds = 0;
  /// Per-phase wall clock of the mine/include/probe loop: the inclusion
  /// checks end to end and the lazy-unrolling bound probes.
  double IncludeSeconds = 0;
  double ProbeSeconds = 0;
  double TotalSeconds = 0;
  /// Portfolio counters (zero at portfolioWidth 1): learnt clauses
  /// shared between racing solvers and races a helper won over the
  /// incremental primary.
  unsigned long long LearntsExported = 0;
  unsigned long long LearntsImported = 0;
  int RacesWon = 0;
  /// Reads-from oracle pruning (zero with fastOracle(false) or on
  /// ineligible models/programs): inclusion rounds the polynomial
  /// oracle attempted and the ones it discharged without a SAT solve.
  /// Timed JSON only - timing-free JSON must not depend on whether the
  /// oracle or the solver answered.
  int OracleAttempts = 0;
  int OracleDischarges = 0;
  double OracleSeconds = 0;
  /// Critical-cycle robustness pruning (zero with fastOracle(false) or
  /// on ineligible models): inclusion rounds the static analysis
  /// attempted and the ones it discharged without a SAT solve. Timed
  /// JSON only, like the oracle counters above.
  int AnalysisAttempts = 0;
  int AnalysisDischarges = 0;
  double AnalysisSeconds = 0;
};

/// Outcome of a single check request.
struct Result {
  Status Verdict = Status::Error;
  std::string Message;

  // Identity of what ran (as resolved by the Verifier).
  std::string Impl;  ///< implementation name, or "<source>" / file label
  std::string Test;  ///< test name ("custom" for ad-hoc notation)
  std::string Model; ///< model display name (e.g. "tso", "po:ll,fwd")

  /// The mined specification, one rendered observation per entry.
  std::vector<std::string> Observations;

  bool HasCounterexample = false;
  std::string CounterexampleTrace;   ///< multi-line rendering
  std::string CounterexampleColumns; ///< one column per thread
  /// The offending observation alone (the JSON "counterexample" field).
  std::string CounterexampleObservation;

  ResultStats Stats;

  /// Per-loop bounds the lazy unrolling settled on; feed them back as a
  /// later run's initial bounds (the Verifier's cache does this
  /// automatically for matching programs).
  std::map<std::string, int> FinalBounds;

  /// True when this result was served from the Verifier's cross-run
  /// result cache instead of a fresh run.
  bool FromCache = false;

  bool passed() const { return Verdict == Status::Pass; }
  bool failed() const {
    return Verdict == Status::Fail || Verdict == Status::SequentialBug;
  }

  /// Versioned JSON: the same shape as a one-cell matrix report. With
  /// \p IncludeTimings false the bytes are machine-independent and a
  /// cache hit reproduces the original run's bytes exactly. Note that a
  /// cache-*seeded* run (initial bounds taken from an earlier pass of
  /// the same program) may settle on different bound/encoding statistics
  /// than a cold run; use noCache() or VerifierConfig::ReuseBounds =
  /// false when strict cold-run reproducibility matters.
  std::string json(bool IncludeTimings = true) const;
};

/// Outcome of a batched matrix request: a deterministic report over every
/// (impl, test, model) cell. Cheap to copy (shared immutable state).
class Report {
public:
  Report() = default;

  /// False when the request itself was invalid (unknown model name,
  /// empty matrix); error() then explains why and there are no cells.
  bool ok() const { return Err.empty(); }
  const std::string &error() const { return Err; }

  size_t cellCount() const;
  int jobs() const;
  double wallSeconds() const;
  int count(Status S) const;
  /// True when every cell ran to a verdict (no Error, no Cancelled
  /// cells).
  bool allCompleted() const;

  /// One row per cell, in matrix order.
  struct Cell {
    std::string Impl;
    std::string Test;
    std::string Model;
    Status Verdict = Status::Error;
    std::string Message;
    double Seconds = 0;
  };
  std::vector<Cell> cells() const;

  /// Versioned JSON report (schema_version field included). Timing-free
  /// output is byte-identical at any job count.
  std::string json(bool IncludeTimings = true) const;
  /// Human-readable fixed-width table.
  std::string table() const;

  /// \internal Constructed by the Verifier.
  explicit Report(std::shared_ptr<const engine::MatrixReport> Rep)
      : Rep(std::move(Rep)) {}
  /// \internal
  static Report makeError(std::string Message);

private:
  std::shared_ptr<const engine::MatrixReport> Rep;
  std::string Err;
};

/// One synthesized fence placement.
struct SynthFence {
  int Line = 0;     ///< 1-based source line (prelude included)
  std::string Kind; ///< "load-load", "store-store", ...
};

/// Outcome of a fence-synthesis request.
struct SynthOutcome {
  bool Success = false;
  std::string Message; ///< diagnosis when Success is false
  /// The search was cut short by a CancelToken or deadline (Success is
  /// then false, but the placement was not refuted - just unfinished).
  bool Cancelled = false;
  std::vector<SynthFence> Fences;  ///< final minimized placement
  std::vector<SynthFence> Removed; ///< placed but minimized away
  int ChecksRun = 0;
  double TotalSeconds = 0;
  /// Per-phase wall clock: the counterexample-guided repair loop and the
  /// necessity (minimization) pass.
  double RepairSeconds = 0;
  double MinimizeSeconds = 0;
  std::vector<std::string> Log; ///< one narrative entry per search step

  /// {"schema_version", "success", "message", "checks", "seconds",
  ///  "repair_seconds", "minimize_seconds",
  ///  "fences": [{"line", "kind"}]}
  std::string json() const;
};

/// One row of an analysis report: the delay set of a lattice point and
/// the robustness verdict of the program under it.
struct AnalysisModelRow {
  std::string Model;      ///< display name (e.g. "rmo")
  std::string Descriptor; ///< canonical descriptor ("po:ll,fwd")
  /// The model is within the analysis fragment (multi-copy atomic,
  /// access granularity); false for serial and nomca descriptors.
  bool Eligible = false;
  /// No delay pair lies on a critical cycle and no coherence hazard
  /// exists: the program with its current fences is sequentially
  /// consistent under this model.
  bool Robust = false;
  std::string Reason; ///< one-line explanation of the verdict
  // The program-order edge kinds the point may delay, plus forwarding
  // (program-independent properties of the lattice point).
  bool DelayLoadLoad = false;
  bool DelayLoadStore = false;
  bool DelayStoreLoad = false;
  bool DelayStoreStore = false;
  bool Forwarding = false;
  int DelayedPairs = 0;     ///< program pairs outside the enforced order
  int CyclePairs = 0;       ///< delay pairs on a critical cycle
  int CoherenceHazards = 0; ///< store-load hazards (forwarding-free only)
  std::vector<std::string> Cycles; ///< rendered witness cycles (capped)
  std::vector<SynthFence> Cuts;    ///< suggested fence placements
};

/// Outcome of a static robustness analysis request (Request::analyze).
/// Purely static: no SAT solving, no timings — json() is byte-identical
/// at any job count.
struct AnalysisOutcome {
  bool Ok = false;
  std::string Error; ///< set when Ok is false
  std::string Impl;
  std::string Test;
  // Flattened program shape the graphs were built over.
  int Loads = 0;
  int Stores = 0;
  int Fences = 0;
  std::vector<AnalysisModelRow> Models; ///< model axis order

  /// True when every eligible row is robust.
  bool allRobust() const;

  /// Versioned JSON ({"schema_version", "kind": "analysis", ...}).
  std::string json() const;
  /// Human-readable fixed-width table plus witness/cut details.
  std::string table() const;
};

/// Outcome of a weakest-model search for one (impl, test).
struct WeakestOutcome {
  bool Ok = false;
  std::string Error;
  /// The search was cut short by a CancelToken or deadline; the
  /// verdicts below cover only the lattice points checked before that.
  bool Cancelled = false;
  std::string Impl;
  std::string Test;
  /// Minimal passing models (several when incomparable); empty when
  /// nothing passed.
  std::vector<std::string> Weakest;
  int ModelsPassed = 0;
  int ModelsChecked = 0;
  int CellsRun = 0;      ///< checks actually executed
  int CellsInferred = 0; ///< verdicts obtained by lattice monotonicity
};

/// Outcome of a litmus reachability query.
struct LitmusOutcome {
  bool Ok = false;       ///< the query itself ran (compile + encode)
  bool Reachable = false;///< the expected observation has an execution
  std::string Error;     ///< set when Ok is false
};

/// One checker-vs-oracle disagreement found by an explore run, shrunk to
/// a minimal reproducer.
struct ExploreDivergence {
  std::string Label;  ///< originating scenario ("litmus-17", "sym-3:...")
  std::string Kind;   ///< "sat-vs-axiomatic", "lattice-monotonicity", ...
  std::string Model;  ///< diverging model; empty for cross-model kinds
  std::string Detail; ///< both sides' observation sets / verdicts
  bool Shrunk = false;
  int Threads = 0;    ///< repro size after shrinking
  int Ops = 0;
  std::string Notation;  ///< symbolic repro (TestSpec string)
  std::string Source;    ///< litmus repro (re-checkable CheckFence-C)
  std::string ReproPath; ///< persisted file; empty without a corpus dir
};

/// Outcome of a randomized differential exploration (Request::explore).
/// Cheap to copy (shared immutable state).
class ExploreOutcome {
public:
  ExploreOutcome() = default;

  /// False when the request itself was invalid (bad model axis, zero
  /// budget); error() then explains why.
  bool ok() const;
  const std::string &error() const;
  bool cancelled() const;

  unsigned long long seed() const;
  int generated() const;    ///< scenarios drawn from the generator
  int deduplicated() const; ///< dropped as already-seen fingerprints
  int run() const;          ///< scenarios that produced a comparison
  int skips() const;        ///< per-model fragment/budget skips
  int shrunk() const;       ///< divergences reduced by the shrinker
  double wallSeconds() const;

  /// Non-fatal problems (corpus/repro write failures): verdicts stand,
  /// but persistence did not happen as configured.
  std::vector<std::string> warnings() const;

  /// The divergences found (empty on a clean run), shrunk and persisted.
  std::vector<ExploreDivergence> divergences() const;
  bool clean() const { return ok() && divergences().empty(); }

  /// Versioned JSON report. Timing-free output is byte-identical across
  /// runs, machines, and job counts.
  std::string json(bool IncludeTimings = true) const;

  /// \internal Constructed by the Verifier.
  explicit ExploreOutcome(std::shared_ptr<const explore::ExploreReport> Rep)
      : Rep(std::move(Rep)) {}

private:
  std::shared_ptr<const explore::ExploreReport> Rep;
};

} // namespace checkfence

#endif // CHECKFENCE_PUBLIC_RESULT_H
