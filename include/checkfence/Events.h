//===--- checkfence/Events.h - streaming events and cancellation -*- C++ -*-=//
//
// Part of the CheckFence reproduction (PLDI'07).
// Public API - this header is installed and stable; see docs/API.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Streaming progress events and cooperative cancellation for Verifier
/// requests.
///
///  * EventSink - subclass and override the callbacks you care about;
///    pass a pointer to any Verifier entry point. During matrix runs the
///    callbacks fire concurrently from worker threads: implementations
///    must be thread-safe. The Label field identifies the originating
///    cell ("impl:test:model").
///  * CancelToken - a copyable handle to a shared cancellation flag.
///    Keep a copy, call cancel() from anywhere (another thread, a signal
///    handler shim, an event callback); the running check stops at its
///    next phase boundary with Status::Cancelled. Deadlines
///    (Request::deadline) use the same cooperative mechanism.
///
//===----------------------------------------------------------------------===//

#ifndef CHECKFENCE_PUBLIC_EVENTS_H
#define CHECKFENCE_PUBLIC_EVENTS_H

#include "checkfence/Result.h"

#include <atomic>
#include <cstddef>
#include <memory>
#include <string>

namespace checkfence {

/// A mine/include/probe round started.
struct RoundEvent {
  std::string Label; ///< "impl:test:model" of the originating check
  int Round = 0;     ///< 1-based
};

/// Lazy unrolling grew one loop instance's bound.
struct BoundGrownEvent {
  std::string Label;
  std::string Loop; ///< loop instance key
  int NewBound = 0;
};

/// Specification mining completed.
struct ObservationsMinedEvent {
  std::string Label;
  int Count = 0;
};

/// One matrix cell finished (matrix/sweep requests only).
struct CellFinishedEvent {
  std::string Label;
  size_t Finished = 0; ///< cells finished so far, this one included
  size_t Total = 0;    ///< matrix size
  Status Verdict = Status::Error;
  double Seconds = 0;
};

/// A request produced its final verdict.
struct VerdictEvent {
  std::string Label;
  Status Verdict = Status::Error;
  std::string Message;
  bool FromCache = false;
};

/// One explore scenario finished its differential run (explore requests
/// only).
struct ScenarioCheckedEvent {
  std::string Label;   ///< scenario label ("litmus-17", "sym-3:msn:...")
  size_t Finished = 0; ///< scenarios finished so far, this one included
  size_t Total = 0;    ///< scenarios selected for this run
  bool Diverged = false;
  std::string Summary; ///< per-model observation counts / verdicts
};

/// An explore scenario disagreed with an oracle (fired per divergence,
/// before shrinking).
struct DivergenceFoundEvent {
  std::string Label;
  std::string Kind;  ///< "sat-vs-axiomatic", "lattice-monotonicity", ...
  std::string Model; ///< diverging model; empty for cross-model kinds
  std::string Detail;
};

/// Callback interface for streaming progress. Default implementations do
/// nothing; override what you need. Matrix and explore runs invoke
/// callbacks from worker threads concurrently.
class EventSink {
public:
  virtual ~EventSink() = default;
  virtual void onRoundStarted(const RoundEvent &) {}
  virtual void onBoundGrown(const BoundGrownEvent &) {}
  virtual void onObservationsMined(const ObservationsMinedEvent &) {}
  virtual void onCellFinished(const CellFinishedEvent &) {}
  virtual void onVerdict(const VerdictEvent &) {}
  virtual void onScenarioChecked(const ScenarioCheckedEvent &) {}
  virtual void onDivergenceFound(const DivergenceFoundEvent &) {}
};

/// Copyable handle to a shared cancellation flag. All copies observe the
/// same flag; cancellation is sticky.
class CancelToken {
public:
  CancelToken() : Flag(std::make_shared<std::atomic<bool>>(false)) {}

  /// Requests cancellation. Thread-safe; callable from event callbacks.
  void cancel() const { Flag->store(true, std::memory_order_relaxed); }
  bool cancelled() const {
    return Flag->load(std::memory_order_relaxed);
  }

private:
  std::shared_ptr<std::atomic<bool>> Flag;
};

} // namespace checkfence

#endif // CHECKFENCE_PUBLIC_EVENTS_H
