//===--- checkfence/Request.h - fluent request builder ----------*- C++ -*-==//
//
// Part of the CheckFence reproduction (PLDI'07).
// Public API - this header is installed and stable; see docs/API.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Request describes one unit of work for the Verifier: a single check,
/// a batched (impl x test x model) matrix, a full lattice sweep, a
/// weakest-passing-model search, a fence synthesis, or a litmus
/// reachability query. Build one with a factory plus fluent setters:
///
///   auto R = Verifier().check(
///       Request::check("msn", "T0").model("tso").stripFences());
///
/// Fields are public and stable; unset option fields mean "use the
/// library default" (there is exactly one defaults instance inside the
/// engine, so a default change can never skew only some callers).
///
//===----------------------------------------------------------------------===//

#ifndef CHECKFENCE_PUBLIC_REQUEST_H
#define CHECKFENCE_PUBLIC_REQUEST_H

#include <optional>
#include <string>
#include <vector>

namespace checkfence {

class Request {
public:
  enum class Kind {
    Check,        ///< one (impl, test, model) check
    Matrix,       ///< batched (impls x tests x models) matrix
    Sweep,        ///< matrix over the full relaxation lattice
    WeakestModel, ///< active weakest-passing-model search
    Synthesis,    ///< counterexample-guided fence synthesis
    Litmus,       ///< reachability of one observation (litmus test)
    Explore,      ///< randomized differential scenario exploration
    Analyze,      ///< static critical-cycle robustness analysis (lint)
  };

  //===--------------------------------------------------------------===//
  // Factories
  //===--------------------------------------------------------------===//

  /// A single check of a built-in implementation on a catalog test.
  static Request check(std::string Impl, std::string Test) {
    Request R;
    R.RequestKind = Kind::Check;
    R.ImplName = std::move(Impl);
    R.TestName = std::move(Test);
    return R;
  }
  /// A single check assembled piecewise (source/notation/...).
  static Request check() {
    Request R;
    R.RequestKind = Kind::Check;
    return R;
  }
  /// A batched matrix; empty axes mean "all" (see impls/tests/models).
  static Request matrix() {
    Request R;
    R.RequestKind = Kind::Matrix;
    return R;
  }
  /// A matrix over the full relaxation lattice (implies models
  /// "lattice"); the report includes the weakest-passing summary.
  static Request sweep() {
    Request R;
    R.RequestKind = Kind::Sweep;
    return R;
  }
  /// Active weakest-passing-model search for one (impl, test): walks the
  /// lattice weakest-first and skips monotonicity-implied points.
  static Request weakestModel(std::string Impl, std::string Test) {
    Request R;
    R.RequestKind = Kind::WeakestModel;
    R.ImplName = std::move(Impl);
    R.TestName = std::move(Test);
    return R;
  }
  /// Fence synthesis for an implementation on one or more tests.
  static Request synthesis(std::string Impl, std::string Test) {
    Request R;
    R.RequestKind = Kind::Synthesis;
    R.ImplName = std::move(Impl);
    R.TestName = std::move(Test);
    return R;
  }
  /// Litmus reachability: is the expected observation producible? The
  /// source is compiled verbatim (no prelude); add one thread() per
  /// zero-argument op procedure and the expected observe() values.
  static Request litmus(std::string Source) {
    Request R;
    R.RequestKind = Kind::Litmus;
    R.SourceText = std::move(Source);
    return R;
  }
  /// Static critical-cycle (delay-set) robustness analysis of one
  /// (impl, test): no SAT solving, purely the conflict/program-order
  /// graph. Reports, per lattice point of the model axis (models();
  /// default the full lattice), the delay pairs the point admits, a
  /// robustness verdict with witness cycles, and suggested fence cuts.
  /// See docs/ANALYSIS.md.
  static Request analyze(std::string Impl, std::string Test) {
    Request R;
    R.RequestKind = Kind::Analyze;
    R.ImplName = std::move(Impl);
    R.TestName = std::move(Test);
    return R;
  }
  /// A static analysis request assembled piecewise (source/notation/...).
  static Request analyze() {
    Request R;
    R.RequestKind = Kind::Analyze;
    return R;
  }
  /// Randomized differential exploration: generate seeded scenarios,
  /// fan each across the model axis (models(); default sc/tso/relaxed),
  /// cross-check the engine against the independent oracles, and shrink
  /// any divergence to a persisted minimal repro. See docs/EXPLORE.md.
  static Request explore() {
    Request R;
    R.RequestKind = Kind::Explore;
    return R;
  }

  //===--------------------------------------------------------------===//
  // What to check
  //===--------------------------------------------------------------===//

  /// Built-in implementation name (ms2, msn, lazylist, harris, snark,
  /// treiber).
  Request &impl(std::string Name) {
    ImplName = std::move(Name);
    return *this;
  }
  /// Raw CheckFence-C source instead of a built-in; the shared prelude
  /// (cas/dcas/locks) is prepended automatically (except for litmus).
  Request &source(std::string Text) {
    SourceText = std::move(Text);
    return *this;
  }
  /// Display label for source-based requests (defaults to "<source>").
  Request &label(std::string Text) {
    Label = std::move(Text);
    return *this;
  }
  /// Data-type kind for source/notation requests: queue, set, deque, or
  /// stack.
  Request &dataType(std::string Kind) {
    DataKind = std::move(Kind);
    return *this;
  }
  /// Catalog test name (T0, Tpc3, Sac, D0, U0, ...).
  Request &test(std::string Name) {
    TestName = std::move(Name);
    return *this;
  }
  /// Ad-hoc symbolic test in Fig. 8 notation, e.g. "e ( ed | de )";
  /// requires dataType() unless the impl determines it.
  Request &notation(std::string Text) {
    Notation = std::move(Text);
    return *this;
  }
  /// Target memory model: a registry name (sc, tso, pso, rmo, relaxed,
  /// serial) or a lattice descriptor like "po:ll+ls,fwd". Unset = the
  /// library default (relaxed).
  Request &model(std::string Name) {
    ModelName = std::move(Name);
    return *this;
  }

  // Matrix axes. Empty means "all" (implementations / kind-matching
  // tests / the single model() value). models() entries additionally
  // accept "all" (every named model) and "lattice" (the full sweep).
  Request &impls(std::vector<std::string> Names) {
    Impls = std::move(Names);
    return *this;
  }
  Request &tests(std::vector<std::string> Names) {
    Tests = std::move(Names);
    return *this;
  }
  Request &models(std::vector<std::string> Names) {
    Models = std::move(Names);
    return *this;
  }

  // Litmus queries.
  /// Adds one test thread running the named zero-argument op procedure.
  Request &thread(std::string Proc) {
    LitmusThreads.push_back(std::move(Proc));
    return *this;
  }
  /// The expected observe() values, in observation order.
  Request &expect(std::vector<long long> Values) {
    ExpectedValues = std::move(Values);
    return *this;
  }

  //===--------------------------------------------------------------===//
  // Program variants
  //===--------------------------------------------------------------===//

  Request &define(std::string Name) {
    Defines.push_back(std::move(Name));
    return *this;
  }
  /// Remove every fence() call before checking.
  Request &stripFences(bool Strip = true) {
    StripAllFences = Strip;
    return *this;
  }
  /// Remove only the fence on this source line (repeatable).
  Request &stripFenceLine(int Line) {
    StripLines.push_back(Line);
    return *this;
  }
  /// Mine the specification from the sequential reference implementation
  /// of the impl's kind (the paper's "refset" mode).
  Request &refSpec(bool Enable = true) {
    UseRefSpec = Enable;
    return *this;
  }

  //===--------------------------------------------------------------===//
  // Engine options (unset = library default)
  //===--------------------------------------------------------------===//

  /// Rank-based memory-order encoding instead of the pairwise one.
  Request &rankOrder(bool Enable = true) {
    UseRankOrder = Enable;
    return *this;
  }
  /// Disable range-analysis optimizations (the Fig. 11c ablation).
  Request &rangeAnalysis(bool Enable) {
    UseRangeAnalysis = Enable;
    return *this;
  }
  Request &maxBoundIterations(int N) {
    MaxBoundIterations = N;
    return *this;
  }
  Request &maxProbes(int N) {
    MaxProbes = N;
    return *this;
  }
  Request &conflictBudget(long long N) {
    ConflictBudget = N;
    return *this;
  }
  /// Run the non-incremental reference pipeline (one fresh solver per
  /// query) instead of the session engine.
  Request &freshPipeline(bool Enable = true) {
    Fresh = Enable;
    return *this;
  }
  /// Worker threads for matrix cells / synthesis minimization
  /// (0 = the Verifier's configured default). One budget: intra-check
  /// portfolio helpers draw from the same allowance, so N is the total
  /// thread count however the work is shaped.
  Request &jobs(int N) {
    Jobs = N;
    return *this;
  }
  /// Intra-check solver portfolio width: 1 = strictly serial, N > 1 =
  /// race up to N diversified solvers per hard query, 0 (default) = auto,
  /// one racer per jobs() worker the budget can spare. Verdicts,
  /// observation sets, and timing-free JSON are identical at any width.
  Request &portfolioWidth(int N) {
    PortfolioWidth = N;
    return *this;
  }
  /// Use the polynomial reads-from oracle where eligible (default on):
  /// in checks it discharges candidate observations before the SAT
  /// solver, in explore it replaces the brute-force enumerator on
  /// eligible lattice points. Verdicts, observation sets, and
  /// timing-free JSON are identical either way; see docs/ORACLES.md.
  Request &fastOracle(bool Enable = true) {
    UseFastOracle = Enable;
    return *this;
  }

  //===--------------------------------------------------------------===//
  // Explore options
  //===--------------------------------------------------------------===//

  /// Deterministic generation seed: the same (seed, budget, models)
  /// produce byte-identical timing-free reports at any job count.
  Request &seed(unsigned long long Value) {
    ExploreSeed = Value;
    return *this;
  }
  /// Number of distinct scenarios to run (corpus-deduplicated
  /// duplicates do not consume budget).
  Request &budget(int Scenarios) {
    ExploreBudget = Scenarios;
    return *this;
  }
  /// Delta-debug divergent scenarios to minimal repros (default on).
  Request &shrink(bool Enable = true) {
    ExploreShrink = Enable;
    return *this;
  }
  /// Corpus directory: seen-scenario fingerprints and shrunk repros
  /// persist here across runs. Empty = in-memory only.
  Request &corpus(std::string Dir) {
    CorpusDir = std::move(Dir);
    return *this;
  }
  /// With the fast oracle on, explore re-runs the brute-force
  /// enumerator as a differential reference on every Nth eligible
  /// litmus scenario (0 = never). Sampling never changes the report;
  /// a disagreement surfaces as an "oracle-vs-enumerator" divergence.
  Request &oracleSamplePeriod(int N) {
    OracleSamplePeriod = N;
    return *this;
  }
  /// Out of 1000 explore scenarios, how many are symbolic catalog
  /// tests; the rest are litmus programs (-1 = the generator default,
  /// currently 300). 0 gives a pure litmus run - the oracle-checked
  /// fragment - which is dramatically cheaper per scenario than the
  /// SAT-bound symbolic checks.
  Request &symbolicShare(int PerMille) {
    SymbolicPerMille = PerMille;
    return *this;
  }

  //===--------------------------------------------------------------===//
  // Control
  //===--------------------------------------------------------------===//

  /// Soft deadline measured from dispatch; on expiry the run stops at the
  /// next phase boundary with Status::Cancelled (0 = none).
  Request &deadline(double Seconds) {
    DeadlineSeconds = Seconds;
    return *this;
  }
  /// Bypass the Verifier's result cache for this request.
  Request &noCache(bool Bypass = true) {
    UseCache = !Bypass;
    return *this;
  }
  /// Write a Chrome trace-event / Perfetto-compatible span timeline of
  /// this request to `Path` (loadable at https://ui.perfetto.dev). Works
  /// locally and through `RemoteVerifier`, where the server-side spans
  /// (queue wait, shard dispatch, solve) are merged into the client's
  /// timeline. Tracing is purely observational: verdicts and timing-free
  /// JSON are byte-identical with it on or off. Empty = disabled.
  /// See docs/OBSERVABILITY.md.
  Request &traceFile(std::string Path) {
    TraceFile = std::move(Path);
    return *this;
  }

  //===--------------------------------------------------------------===//
  // Synthesis options
  //===--------------------------------------------------------------===//

  /// Repair the existing placement instead of stripping fences first.
  Request &synthFromExisting(bool Keep = true) {
    SynthStrip = !Keep;
    return *this;
  }
  /// Restrict insertions to source lines >= N (default: after the
  /// prelude).
  Request &synthMinLine(int N) {
    SynthMinLine = N;
    return *this;
  }
  Request &synthMaxFences(int N) {
    SynthMaxFences = N;
    return *this;
  }
  Request &synthMinimize(bool Enable) {
    SynthMinimize = Enable;
    return *this;
  }

  //===--------------------------------------------------------------===//
  // Fields (public and stable; read by the Verifier)
  //===--------------------------------------------------------------===//

  Kind RequestKind = Kind::Check;

  std::string ImplName;
  std::string SourceText;
  std::string Label;
  std::string DataKind;
  std::string TestName;
  std::string Notation;
  std::string ModelName;

  std::vector<std::string> Impls;
  std::vector<std::string> Tests;
  std::vector<std::string> Models;

  std::vector<std::string> LitmusThreads;
  std::vector<long long> ExpectedValues;

  std::vector<std::string> Defines;
  bool StripAllFences = false;
  std::vector<int> StripLines;
  bool UseRefSpec = false;

  std::optional<bool> UseRankOrder;
  std::optional<bool> UseRangeAnalysis;
  std::optional<int> MaxBoundIterations;
  std::optional<int> MaxProbes;
  std::optional<long long> ConflictBudget;
  bool Fresh = false;
  int Jobs = 0;
  int PortfolioWidth = 0;
  bool UseFastOracle = true;

  double DeadlineSeconds = 0;
  bool UseCache = true;
  std::string TraceFile;

  bool SynthStrip = true;
  std::optional<int> SynthMinLine;
  std::optional<int> SynthMaxFences;
  bool SynthMinimize = true;

  unsigned long long ExploreSeed = 1;
  int ExploreBudget = 100;
  bool ExploreShrink = true;
  std::string CorpusDir;
  int OracleSamplePeriod = 8;
  int SymbolicPerMille = -1;
};

} // namespace checkfence

#endif // CHECKFENCE_PUBLIC_REQUEST_H
