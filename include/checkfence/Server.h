//===--- checkfence/Server.h - the checkfenced daemon -----------*- C++ -*-==//
//
// Part of the CheckFence reproduction (PLDI'07).
// Public API - this header is installed and stable; see docs/SERVER.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CheckServer is the embeddable core of the `checkfenced` daemon: an
/// HTTP/1.1 + JSON-RPC 2.0 front over the Verifier API. Requests land in
/// a bounded priority queue and fan out over worker shards; each shard
/// owns one Verifier (and with it a warm session pool) while all shards
/// fill one shared result cache. `/metrics` exposes the live counters in
/// Prometheus text format, `/status` as JSON.
///
/// Byte-identity contract: a request dispatched through the daemon (see
/// RemoteVerifier in checkfence/Remote.h) produces the same timing-free
/// reports, verdicts, and exit codes as the same request run in-process.
/// The daemon adds no verdict-relevant state - the shared cache already
/// guarantees hits are byte-identical to the original run.
///
//===----------------------------------------------------------------------===//

#ifndef CHECKFENCE_PUBLIC_SERVER_H
#define CHECKFENCE_PUBLIC_SERVER_H

#include <cstddef>
#include <memory>
#include <string>

#include "checkfence/Verifier.h"

namespace checkfence {

struct ServerConfig {
  /// TCP port to listen on; 0 = pick an ephemeral port (see
  /// CheckServer::port, the in-process test workflow).
  int Port = 8417;
  /// Bind address. The default stays loopback-only: the protocol has no
  /// authentication, so exposing it wider is an explicit decision.
  std::string BindAddress = "127.0.0.1";
  /// Worker shards. Each shard runs one request at a time on its own
  /// Verifier, so this is also the maximum number of in-flight requests;
  /// requests hash to shards by program identity for warm-session
  /// affinity.
  int Shards = 2;
  /// Verifier worker threads per shard (VerifierConfig::Jobs). Requests
  /// cannot raise this: a remote jobs() value is clamped to the shard's
  /// allowance.
  int JobsPerShard = 1;
  /// Admission limit: requests beyond this many queued (not yet
  /// dispatched) are rejected with HTTP 429 + Retry-After.
  int QueueDepth = 64;
  /// When non-empty: merge this cache file into the shared result cache
  /// on start() and merge the cache back on shutdown (multi-process
  /// safe; see SharedResultCache).
  std::string CachePath;
  /// Hard per-request deadline in seconds (0 = none). A request's own
  /// deadline() still applies when tighter.
  double MaxRequestSeconds = 0;
  /// Minimum log level for the structured logger: "debug", "info",
  /// "warn", "error", or "off". Empty = leave the process-wide level
  /// unchanged (the library default is warn). Applied in start().
  std::string LogLevel;
  /// Requests whose shard-worker latency exceeds this many seconds are
  /// logged at warn level with their kind and timing (0 = never).
  double SlowRequestSeconds = 10;
};

/// A point-in-time snapshot of the daemon's counters (the `/metrics`
/// surface, aggregated over all shards).
struct ServerStats {
  unsigned long long Accepted = 0;  ///< connections accepted
  unsigned long long Served = 0;    ///< RPC requests answered
  unsigned long long Rejected = 0;  ///< 429 admission rejections
  unsigned long long Cancelled = 0; ///< requests finishing Cancelled
  unsigned long long Errors = 0;    ///< malformed / failed requests
  unsigned long long CellsCompleted = 0;     ///< matrix cells finished
  unsigned long long ScenariosChecked = 0;   ///< explore scenarios run
  size_t Queued = 0;   ///< requests waiting for a shard
  size_t InFlight = 0; ///< requests running on a shard
  CacheStats Cache;    ///< shared result cache, all shards
  PoolStats Pool;      ///< warm-session pools, summed over shards
};

/// The daemon core. start() spawns the listener, watcher, and shard
/// worker threads and returns; requestStop() begins a graceful drain
/// (stop accepting, finish queued + in-flight work); waitStopped()
/// blocks until the drain completes and persists the cache.
class CheckServer {
public:
  explicit CheckServer(ServerConfig Config = ServerConfig());
  ~CheckServer(); ///< implies requestStop() + waitStopped()
  CheckServer(const CheckServer &) = delete;
  CheckServer &operator=(const CheckServer &) = delete;

  /// Binds, listens, and spawns the service threads. False + \p Error
  /// when the port cannot be bound.
  bool start(std::string &Error);

  /// The bound port (resolves ServerConfig::Port = 0 to the actual
  /// ephemeral port). Valid after start().
  int port() const;

  /// Begins a graceful drain. Safe to call more than once; not
  /// async-signal-safe - signal handlers should set a flag the main
  /// loop polls (the checkfenced CLI does this).
  void requestStop();
  /// True once requestStop() has been called.
  bool stopRequested() const;
  /// Blocks until all threads have drained and joined, then merges the
  /// cache into ServerConfig::CachePath.
  void waitStopped();

  ServerStats stats() const;

private:
  struct Impl;
  std::unique_ptr<Impl> Self;
};

} // namespace checkfence

#endif // CHECKFENCE_PUBLIC_SERVER_H
