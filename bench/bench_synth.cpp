//===--- bench_synth.cpp - E13: automatic fence synthesis -------------------===//
//
// Quantifies the counterexample-guided fence synthesizer (our automation
// of the paper's manual Sec. 4.2 workflow): for each repairable
// implementation and each relaxed model, how many fences the search
// places, how many survive minimization, how many full checks it costs,
// and how the result compares to the placement shipped in the sources.
//
// Expected shape:
//  * on TSO nothing is placed (the Sec. 4.2 "automatic fences" claim),
//  * on PSO only store-order fences appear,
//  * on Relaxed both store-order and load-order fences appear, in counts
//    comparable to the shipped hand placement for the same small tests.
//
// Synthesis runs with its default analysis seeding on, so the gated
// checks_run counts bake in the savings; bench_analysis A/Bs seeding
// against the unseeded search and gates placement identity.
//
//===----------------------------------------------------------------------===//

#include "BenchGrid.h"
#include "harness/FenceSynth.h"

#include <sstream>

using namespace checkfence;
using namespace checkfence::harness;

namespace {

int preludeLines() {
  int N = 0;
  for (char C : impls::preludeSource())
    N += C == '\n';
  return N;
}

/// Number of fence() calls in the implementation region of \p Source.
int shippedFences(const std::string &Source) {
  std::istringstream In(Source);
  std::string Line;
  int No = 0, Count = 0, Prelude = preludeLines();
  while (std::getline(In, Line)) {
    ++No;
    if (No > Prelude && Line.find("fence(\"") != std::string::npos)
      ++Count;
  }
  return Count;
}

} // namespace

int main(int argc, char **argv) {
  benchutil::Options BO;
  if (!benchutil::parseBenchArgs(argc, argv, BO))
    return 64;
  int FinalFences = 0, ChecksRun = 0, Diagnosed = 0;
  double SynthSeconds = 0;
  std::printf("=== fence synthesis (counterexample-guided, minimized) ===\n");
  std::printf("%-9s %-5s %-8s | %7s %7s %7s | %7s %8s | %s\n", "impl",
              "test", "model", "placed", "final", "shipped", "checks",
              "time[s]", "result");

  struct Workload {
    const char *Impl;
    const char *Test;
  };
  std::vector<Workload> Work = {
      {"msn", "T0"}, {"ms2", "T0"}, {"treiber", "U0"}};
  if (benchutil::fullRun())
    Work.push_back({"treiber", "Ui2"});

  const memmodel::ModelParams Models[] = {memmodel::ModelParams::relaxed(),
                                        memmodel::ModelParams::pso(),
                                        memmodel::ModelParams::tso()};

  for (const Workload &W : Work) {
    std::string Source = impls::sourceFor(W.Impl);
    for (memmodel::ModelParams Model : Models) {
      SynthOptions Opts;
      Opts.Check.Model = Model;
      Opts.MinLine = preludeLines() + 1;
      SynthResult R =
          synthesizeFences(Source, {testByName(W.Test)}, Opts);

      std::printf("%-9s %-5s %-8s | %7d %7d %7d | %7d %8.2f | %s\n",
                  W.Impl, W.Test, memmodel::modelName(Model).c_str(),
                  static_cast<int>(R.Fences.size() + R.Removed.size()),
                  static_cast<int>(R.Fences.size()), shippedFences(Source),
                  R.ChecksRun, R.TotalSeconds,
                  R.Success ? "ok" : R.Message.c_str());
      if (R.Success)
        for (const FencePlacement &P : R.Fences)
          std::printf("%38s + %s\n", "", placementStr(P).c_str());
      FinalFences += static_cast<int>(R.Fences.size());
      ChecksRun += R.ChecksRun;
      SynthSeconds += R.TotalSeconds;
    }
  }

  std::printf("\n=== non-repairable failures are diagnosed, not "
              "\"fixed\" ===\n");
  {
    SynthOptions Opts;
    Opts.Check.Model = memmodel::ModelParams::sc();
    Opts.MinLine = preludeLines() + 1;
    SynthResult R = synthesizeFences(impls::sourceFor("snark"),
                                     {testByName("D0")}, Opts);
    std::printf("snark D0 on sc: %s\n",
                R.Success ? "ok (unexpected!)" : R.Message.c_str());
    Diagnosed += !R.Success;
  }
  {
    SynthOptions Opts;
    Opts.Check.Model = memmodel::ModelParams::relaxed();
    Opts.Defines = {"LAZYLIST_INIT_BUG"};
    Opts.MinLine = preludeLines() + 1;
    SynthResult R = synthesizeFences(impls::sourceFor("lazylist"),
                                     {testByName("Sac")}, Opts);
    std::printf("lazylist(+INIT_BUG) Sac: %s\n",
                R.Success ? "ok (unexpected!)" : R.Message.c_str());
    Diagnosed += !R.Success;
  }

  std::printf("\n(shipped counts cover the whole implementation; "
              "synthesized counts cover\nonly the failure classes the "
              "small test exercises, hence final <= shipped)\n");

  // The search is deterministic: placements and check counts gate exactly.
  benchutil::BenchReport R("synth", BO);
  R.metric("workloads", static_cast<double>(Work.size()), "workloads",
           /*Gate=*/true, "equal")
      .metric("final_fences", FinalFences, "fences", /*Gate=*/true,
              "equal")
      .metric("checks_run", ChecksRun, "checks", /*Gate=*/true, "equal")
      .metric("non_repairable_diagnosed", Diagnosed, "cases",
              /*Gate=*/true, "equal")
      .metric("synth_seconds", SynthSeconds, "seconds");
  return R.write(BO) ? 0 : 64;
}
