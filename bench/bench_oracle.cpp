//===--- bench_oracle.cpp - reads-from oracle vs. order enumeration ----------===//
//
// Part of the CheckFence reproduction (PLDI'07).
//
// Measures what retiring brute-force order enumeration buys. Two
// sections:
//
//  1. Raw oracle throughput: a fixed-seed stream of generated litmus
//     programs is checked on every fast-oracle lattice point (sc, tso,
//     pso) by both the polynomial reads-from oracle and the factorial
//     AxiomaticEnumerator. The observation sets must agree pair by pair
//     (gated), and the oracle must be at least 2x faster end to end
//     (gated as a boolean, since the raw ratio is machine-dependent).
//
//  2. Explore-level A/B, twice: on the full fast-oracle axis at the
//     explore default generator limits the fast and enumerator-forced
//     runs must produce byte-identical timing-free reports with zero
//     divergences (gated), and on pso at a wider access budget - the
//     regime where order enumeration is the actual bottleneck -
//     retiring the enumerator must at least halve the wall clock
//     (gated as a boolean; the raw ratio is trajectory data).
//
// Unlike the public-API benches this one deliberately reaches into
// src/ (memmodel, explore, checker) - section 1 times the oracles
// directly, without the engine around them.
//
// `--json PATH` writes the shared bench schema for
// scripts/bench_compare.py; `--seed N` seeds both sections.
// CF_BENCH_FULL=1 widens the scenario counts.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "checkfence/checkfence.h"

#include "checker/Encoder.h"
#include "explore/Explore.h"
#include "frontend/Lowering.h"
#include "harness/TestSpec.h"
#include "memmodel/AxiomaticEnumerator.h"
#include "memmodel/MemoryModel.h"
#include "memmodel/ReadsFromOracle.h"

#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

using namespace checkfence;

namespace {

double now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// One (program, model) cell of the raw-throughput workload, encoded
/// once up front so the timed loops measure only the oracles.
struct Cell {
  std::unique_ptr<checker::EncodedProblem> Prob;
  memmodel::ModelParams Model;
};

} // namespace

int main(int argc, char **argv) {
  benchutil::Options BO;
  if (!benchutil::parseBenchArgs(argc, argv, BO))
    return 64;
  const int RawScenarios = benchutil::fullRun() ? 400 : 120;
  const int ExploreBudget = benchutil::fullRun() ? 400 : 120;

  //===--------------------------------------------------------------------===//
  // Section 1: raw oracle throughput.
  //===--------------------------------------------------------------------===//

  explore::GeneratorLimits Limits;
  Limits.SymbolicPerMille = 0; // litmus programs only
  explore::Generator Gen(BO.Seed, Limits);

  const std::vector<memmodel::ModelParams> Models = {
      memmodel::ModelParams::sc(), memmodel::ModelParams::tso(),
      memmodel::ModelParams::pso()};

  std::vector<Cell> Cells;
  for (int I = 0; I < RawScenarios; ++I) {
    explore::Scenario S = Gen.at(I);

    frontend::DiagEngine Diags;
    lsl::Program Prog;
    if (!frontend::compileC(S.Source, {}, Prog, Diags)) {
      std::fprintf(stderr, "scenario %d failed to compile:\n%s\n", I,
                   Diags.str().c_str());
      return 1;
    }
    harness::TestSpec Spec;
    Spec.Name = "bench";
    for (size_t T = 0; T < S.ThreadArgs.size(); ++T)
      Spec.Threads.push_back({harness::OpSpec{
          "t" + std::to_string(T) + "_op", S.ThreadArgs[T], false,
          false}});
    std::vector<std::string> Threads = harness::buildTestThreads(Prog, Spec);

    for (const memmodel::ModelParams &M : Models) {
      checker::ProblemConfig Cfg;
      Cfg.Model = M;
      auto Prob = std::make_unique<checker::EncodedProblem>(
          Prog, Threads, trans::LoopBounds{}, Cfg);
      if (!Prob->ok()) {
        std::fprintf(stderr, "scenario %d: %s\n", I, Prob->error().c_str());
        return 1;
      }
      Cells.push_back({std::move(Prob), M});
    }
  }

  // Timed loop A: the polynomial reads-from oracle.
  std::vector<memmodel::ReadsFromResult> RfResults;
  RfResults.reserve(Cells.size());
  double T0 = now();
  for (const Cell &C : Cells) {
    memmodel::ReadsFromOptions RO;
    RO.Model = C.Model;
    RfResults.push_back(memmodel::checkReadsFrom(C.Prob->flat(), RO));
  }
  const double RfSeconds = now() - T0;

  // Timed loop B: brute-force order enumeration.
  std::vector<memmodel::AxiomaticResult> EnumResults;
  EnumResults.reserve(Cells.size());
  T0 = now();
  for (const Cell &C : Cells) {
    memmodel::AxiomaticOptions AO;
    AO.Model = C.Model;
    EnumResults.push_back(memmodel::enumerateAxiomatic(C.Prob->flat(), AO));
  }
  const double EnumSeconds = now() - T0;

  int Compared = 0, Equal = 0, Skipped = 0;
  for (size_t I = 0; I < Cells.size(); ++I) {
    if (!RfResults[I].Ok || !EnumResults[I].Ok) {
      ++Skipped;
      continue;
    }
    ++Compared;
    if (RfResults[I].Observations == EnumResults[I].Observations)
      ++Equal;
  }
  const double RawSpeedup = RfSeconds > 0 ? EnumSeconds / RfSeconds : 0;

  //===--------------------------------------------------------------------===//
  // Section 2: explore-level A/B.
  //
  // Two runs, two claims. (a) Identity: on the full fast-oracle axis
  // (sc, tso, pso) at the explore default generator limits, the
  // fast-oracle run and the enumerator-forced run must produce
  // byte-identical timing-free reports with zero divergences. (b)
  // Speedup: on pso - the eligible point where order enumeration is
  // the real bottleneck (weakest ordering, so the most interleavings,
  // and no sc reference-executor leg) - with a wider access budget,
  // retiring the enumerator must at least halve the wall clock.
  // Symbolic scenarios are excluded from both: they never reach an
  // oracle (data-structure addresses depend on loads), so they would
  // only dilute the measurement with SAT time common to both sides.
  //===--------------------------------------------------------------------===//

  auto runAB = [&](const explore::ExploreOptions &Base, double &FastSec,
                   double &SlowSec, explore::ExploreReport &FastRep,
                   explore::ExploreReport &SlowRep) {
    explore::ExploreOptions FastOpts = Base;
    FastOpts.Diff.UseFastOracle = true;
    // No inline sampling: the A/B measures what full retirement of the
    // enumerator buys. Oracle-vs-enumerator agreement is already gated
    // by section 1 and by the byte-identity comparison; production
    // explore keeps its default 1-in-8 sampling.
    FastOpts.Diff.EnumeratorSamplePeriod = 0;
    explore::ExploreOptions SlowOpts = Base;
    SlowOpts.Diff.UseFastOracle = false;

    Verifier Vf;
    double T = now();
    FastRep = explore::runExplore(Vf, FastOpts);
    FastSec = now() - T;
    Verifier Vs;
    T = now();
    SlowRep = explore::runExplore(Vs, SlowOpts);
    SlowSec = now() - T;
  };

  // (a) Identity on the full eligible axis.
  explore::ExploreOptions IdOpts;
  IdOpts.Seed = BO.Seed;
  IdOpts.Budget = ExploreBudget;
  for (const memmodel::ModelParams &M : Models)
    IdOpts.Models.push_back(M);
  IdOpts.Limits.SymbolicPerMille = 0;

  double IdFastSec = 0, IdSlowSec = 0;
  explore::ExploreReport Fast, Slow;
  runAB(IdOpts, IdFastSec, IdSlowSec, Fast, Slow);
  if (!Fast.Ok || !Slow.Ok) {
    std::fprintf(stderr, "explore failed: %s\n",
                 (!Fast.Ok ? Fast : Slow).Error.c_str());
    return 1;
  }
  const bool Identical = Fast.json(/*IncludeTimings=*/false) ==
                         Slow.json(/*IncludeTimings=*/false);
  const int Divergences = static_cast<int>(Fast.Divergences.size()) +
                          static_cast<int>(Slow.Divergences.size());

  // (b) Speedup on pso at a wider access budget.
  explore::ExploreOptions SpOpts;
  SpOpts.Seed = BO.Seed;
  SpOpts.Budget = benchutil::fullRun() ? 120 : 60;
  SpOpts.Models.push_back(memmodel::ModelParams::pso());
  SpOpts.Limits.SymbolicPerMille = 0;
  SpOpts.Limits.AccessBudget = 12;
  SpOpts.Limits.MaxThreads = 4;
  SpOpts.Limits.MaxVars = 4;

  double SpFastSec = 0, SpSlowSec = 0;
  explore::ExploreReport SpFast, SpSlow;
  runAB(SpOpts, SpFastSec, SpSlowSec, SpFast, SpSlow);
  if (!SpFast.Ok || !SpSlow.Ok) {
    std::fprintf(stderr, "explore failed: %s\n",
                 (!SpFast.Ok ? SpFast : SpSlow).Error.c_str());
    return 1;
  }
  const bool SpIdentical = SpFast.json(/*IncludeTimings=*/false) ==
                           SpSlow.json(/*IncludeTimings=*/false);
  const double ExploreSpeedup =
      SpFastSec > 0 ? SpSlowSec / SpFastSec : 0;
  const double FastSeconds = SpFastSec, SlowSeconds = SpSlowSec;

  std::printf("{\n");
  std::printf("  \"bench\": \"oracle\",\n");
  std::printf("  \"raw_scenarios\": %d,\n", RawScenarios);
  std::printf("  \"raw_cells\": %d,\n", static_cast<int>(Cells.size()));
  std::printf("  \"raw_compared\": %d,\n", Compared);
  std::printf("  \"raw_skipped\": %d,\n", Skipped);
  std::printf("  \"raw_obs_sets_equal\": %s,\n",
              Equal == Compared ? "true" : "false");
  std::printf("  \"rf_seconds\": %.3f,\n", RfSeconds);
  std::printf("  \"enum_seconds\": %.3f,\n", EnumSeconds);
  std::printf("  \"raw_speedup\": %.2f,\n", RawSpeedup);
  std::printf("  \"rf_cells_per_sec\": %.1f,\n",
              RfSeconds > 0 ? Cells.size() / RfSeconds : 0);
  std::printf("  \"enum_cells_per_sec\": %.1f,\n",
              EnumSeconds > 0 ? Cells.size() / EnumSeconds : 0);
  std::printf("  \"explore_budget\": %d,\n", ExploreBudget);
  std::printf("  \"explore_run\": %d,\n", Fast.Run);
  std::printf("  \"explore_divergences\": %d,\n", Divergences);
  std::printf("  \"explore_identical\": %s,\n", Identical ? "true" : "false");
  std::printf("  \"pso_run\": %d,\n", SpFast.Run);
  std::printf("  \"pso_fast_seconds\": %.3f,\n", FastSeconds);
  std::printf("  \"pso_slow_seconds\": %.3f,\n", SlowSeconds);
  std::printf("  \"pso_speedup\": %.2f,\n", ExploreSpeedup);
  std::printf("  \"pso_identical\": %s\n", SpIdentical ? "true" : "false");
  std::printf("}\n");

  // Gated: correctness booleans and seeded counts, plus the two >=2x
  // booleans the acceptance bar asks for (the raw ratios stay ungated -
  // they drift with the machine, the booleans should not).
  benchutil::BenchReport R("oracle", BO);
  R.context("raw_scenarios", std::to_string(RawScenarios))
      .context("explore_budget", std::to_string(ExploreBudget))
      .context("models", "sc,tso,pso");
  R.metric("raw_compared", Compared, "cells", /*Gate=*/true, "equal")
      .metric("obs_sets_equal", Equal == Compared ? 1 : 0, "bool",
              /*Gate=*/true, "equal")
      .metric("raw_speedup_ge_2x", RawSpeedup >= 2.0 ? 1 : 0, "bool",
              /*Gate=*/true, "equal")
      .metric("explore_run", Fast.Run, "scenarios", /*Gate=*/true,
              "equal")
      .metric("explore_divergences", Divergences, "divergences",
              /*Gate=*/true, "equal")
      .metric("explore_identical", Identical ? 1 : 0, "bool",
              /*Gate=*/true, "equal")
      .metric("pso_identical", SpIdentical ? 1 : 0, "bool",
              /*Gate=*/true, "equal")
      .metric("pso_speedup_ge_2x", ExploreSpeedup >= 2.0 ? 1 : 0,
              "bool", /*Gate=*/true, "equal")
      .metric("rf_seconds", RfSeconds, "seconds")
      .metric("enum_seconds", EnumSeconds, "seconds")
      .metric("raw_speedup", RawSpeedup, "ratio", /*Gate=*/false,
              "higher")
      .metric("pso_fast_seconds", FastSeconds, "seconds")
      .metric("pso_slow_seconds", SlowSeconds, "seconds")
      .metric("pso_speedup", ExploreSpeedup, "ratio", /*Gate=*/false,
              "higher");
  if (!R.write(BO))
    return 64;

  return (Equal == Compared && Identical && SpIdentical &&
          Divergences == 0)
             ? 0
             : 1;
}
