//===--- bench_matrix.cpp - matrix-runner + portfolio trajectory ------------===//
//
// Part of the CheckFence reproduction (PLDI'07).
//
// The perf-trajectory bench for the check engine, entirely through the
// public Verifier API:
//
//  * the Fig. 8 queue-family matrix at one worker and at N workers
//    (inter-cell parallelism),
//  * per-cell fresh-vs-session engine comparisons (incrementality win),
//  * one hard cell at portfolio width 1 vs width 4 (intra-check racing),
//    asserting that verdicts, observation sets, and timing-free JSON are
//    byte-identical across widths.
//
// `--json PATH` writes the shared bench schema (see BenchUtil.h) that
// scripts/bench_compare.py gates CI on; `--seed N` is recorded (the
// workload itself is deterministic). CF_BENCH_FULL=1 widens the matrix
// and hardens the portfolio cell; CF_BENCH_JOBS overrides the parallel
// job count (default 4).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "checkfence/checkfence.h"

#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

using namespace checkfence;

namespace {

/// Times one cell through the from-scratch pipeline and the session
/// engine; returns a JSON object fragment (an error object on failure,
/// so the report always stays parseable). Uses its own Verifier so the
/// session measurement never starts on a pool-warmed solver from a
/// previous fragment.
std::string benchFreshVsSession(const char *Impl, const char *Test,
                                const char *Model, double &SumFresh,
                                double &SumSession) {
  Verifier V;
  Request Base = Request::check(Impl, Test).model(Model).noCache();

  Result Fresh = V.check(Request(Base).freshPipeline());
  Result Sess = V.check(Base);
  if (Fresh.Verdict == Status::Error || Sess.Verdict == Status::Error)
    return "{\"impl\": \"" + std::string(Impl) + "\", \"test\": \"" +
           Test + "\", \"status\": \"ERROR\"}";
  SumFresh += Fresh.Stats.TotalSeconds;
  SumSession += Sess.Stats.TotalSeconds;

  char Buf[256];
  std::snprintf(
      Buf, sizeof(Buf),
      "{\"impl\": \"%s\", \"test\": \"%s\", \"model\": \"%s\", "
      "\"status\": \"%s\", \"fresh_seconds\": %.3f, "
      "\"session_seconds\": %.3f, \"speedup\": %.3f}",
      Impl, Test, Model, statusName(Sess.Verdict),
      Fresh.Stats.TotalSeconds, Sess.Stats.TotalSeconds,
      Sess.Stats.TotalSeconds > 0
          ? Fresh.Stats.TotalSeconds / Sess.Stats.TotalSeconds
          : 0);
  return Buf;
}

/// The hard-cell portfolio trajectory: one check at width 1 and one at
/// width 4 (with a 4-worker budget), through separate Verifiers so
/// neither leg starts on a warmed session pool.
struct PortfolioProbe {
  bool Ok = false;
  bool VerdictsMatch = false;
  bool ReportsIdentical = false; ///< timing-free JSON, byte compare
  double Width1Seconds = 0;
  double Width4Seconds = 0;
  double Speedup = 0;
  unsigned long long LearntsExported = 0;
  unsigned long long LearntsImported = 0;
  int RacesWon = 0;
  const char *Verdict = "";
};

PortfolioProbe benchPortfolio(const char *Impl, const char *Test,
                              const char *Model) {
  Request Base = Request::check(Impl, Test).model(Model).noCache();
  Verifier V1;
  Result W1 = V1.check(Request(Base).jobs(1).portfolioWidth(1));
  Verifier V4;
  Result W4 = V4.check(Request(Base).jobs(4).portfolioWidth(4));

  PortfolioProbe P;
  if (W1.Verdict == Status::Error || W4.Verdict == Status::Error)
    return P;
  P.Ok = true;
  P.VerdictsMatch =
      W1.Verdict == W4.Verdict && W1.Observations == W4.Observations;
  P.ReportsIdentical = W1.json(/*IncludeTimings=*/false) ==
                       W4.json(/*IncludeTimings=*/false);
  P.Width1Seconds = W1.Stats.TotalSeconds;
  P.Width4Seconds = W4.Stats.TotalSeconds;
  P.Speedup = P.Width4Seconds > 0 ? P.Width1Seconds / P.Width4Seconds : 0;
  P.LearntsExported = W4.Stats.LearntsExported;
  P.LearntsImported = W4.Stats.LearntsImported;
  P.RacesWon = W4.Stats.RacesWon;
  P.Verdict = statusName(W1.Verdict);
  return P;
}

} // namespace

int main(int argc, char **argv) {
  benchutil::Options BO;
  if (!benchutil::parseBenchArgs(argc, argv, BO))
    return 64;
  const bool Full = benchutil::fullRun();

  // The queue family of Fig. 8 on both queue implementations, under the
  // cheap models by default (msn's T1/Ti2+ cells run minutes each).
  std::vector<std::string> Tests = {"T0", "Tpc2"};
  std::vector<std::string> Models = {"sc", "tso"};
  if (Full) {
    Tests.insert(Tests.end(), {"T1", "Tpc3", "Ti2", "Ti3", "T53"});
    Models.push_back("relaxed");
  }

  int Jobs = 4;
  if (const char *E = std::getenv("CF_BENCH_JOBS"))
    Jobs = std::atoi(E) > 0 ? std::atoi(E) : Jobs;

  Verifier V;
  Request Base = Request::matrix()
                     .impls({"ms2", "msn"})
                     .tests(Tests)
                     .models(Models);
  Report Seq = V.matrix(Request(Base).jobs(1));
  Report Par = V.matrix(Request(Base).jobs(Jobs));
  if (!Seq.ok() || !Par.ok()) {
    std::fprintf(stderr, "matrix setup failed: %s\n",
                 (!Seq.ok() ? Seq : Par).error().c_str());
    return 1;
  }

  double Speedup =
      Par.wallSeconds() > 0 ? Seq.wallSeconds() / Par.wallSeconds() : 0;
  double SumFresh = 0, SumSession = 0;
  std::vector<std::string> Fragments;
  Fragments.push_back(
      benchFreshVsSession("msn", "T0", "relaxed", SumFresh, SumSession));
  Fragments.push_back(
      benchFreshVsSession("msn", "Tpc2", "sc", SumFresh, SumSession));
  Fragments.push_back(
      benchFreshVsSession("ms2", "Ti2", "relaxed", SumFresh, SumSession));
  if (Full)
    Fragments.push_back(
        benchFreshVsSession("msn", "Ti2", "sc", SumFresh, SumSession));

  // The portfolio's hard cell: msn under the weakest lattice point. The
  // full grid uses Ti2 (minutes of UNSAT proving); the default uses Tpc2
  // to keep the bench CI-sized.
  const char *HardTest = Full ? "Ti2" : "Tpc2";
  PortfolioProbe Pf = benchPortfolio("msn", HardTest, "relaxed");

  // One parseable document: the per-cell engine comparison plus the
  // parallel-matrix and portfolio trajectories.
  std::printf("{\n  \"bench\": \"checkfence-matrix\",\n"
              "  \"fresh_vs_session\": [\n");
  for (size_t I = 0; I < Fragments.size(); ++I)
    std::printf("    %s%s\n", Fragments[I].c_str(),
                I + 1 < Fragments.size() ? "," : "");
  std::printf("  ],\n");
  std::printf("  \"portfolio\": {\n    \"impl\": \"msn\",\n"
              "    \"test\": \"%s\",\n    \"model\": \"relaxed\",\n"
              "    \"verdict\": \"%s\",\n"
              "    \"width1_seconds\": %.3f,\n"
              "    \"width4_seconds\": %.3f,\n    \"speedup\": %.3f,\n"
              "    \"verdicts_match\": %s,\n"
              "    \"reports_identical\": %s,\n"
              "    \"learnts_exported\": %llu,\n"
              "    \"learnts_imported\": %llu,\n"
              "    \"races_won\": %d\n  },\n",
              HardTest, Pf.Verdict, Pf.Width1Seconds, Pf.Width4Seconds,
              Pf.Speedup, Pf.VerdictsMatch ? "true" : "false",
              Pf.ReportsIdentical ? "true" : "false", Pf.LearntsExported,
              Pf.LearntsImported, Pf.RacesWon);
  std::printf("  \"matrix\": {\n    \"cells\": %d,\n"
              "    \"jobs\": %d,\n    \"sequential_wall_seconds\": %.3f,\n"
              "    \"parallel_wall_seconds\": %.3f,\n"
              "    \"speedup\": %.3f,\n    \"parallel_report\": ",
              static_cast<int>(Par.cellCount()), Jobs, Seq.wallSeconds(),
              Par.wallSeconds(), Speedup);
  std::string Json = Par.json();
  std::printf("%s", Json.c_str());
  std::printf("  }\n}\n");

  // The machine-readable trajectory for scripts/bench_compare.py. Wall
  // clocks are recorded but not gated (baselines travel across
  // machines); the gates are result-equality and the cells count.
  benchutil::BenchReport R("matrix", BO);
  R.context("hard_cell", std::string("msn/") + HardTest + "/relaxed")
      .context("host_cores",
               std::to_string(std::thread::hardware_concurrency()));
  R.metric("matrix_cells", static_cast<double>(Par.cellCount()), "cells",
           /*Gate=*/true, "equal")
      .metric("matrix_all_completed", Par.allCompleted() ? 1 : 0, "bool",
              /*Gate=*/true, "equal")
      .metric("matrix_pass_cells",
              static_cast<double>(Par.count(Status::Pass)), "cells",
              /*Gate=*/true, "equal")
      .metric("matrix_seq_wall_seconds", Seq.wallSeconds(), "seconds")
      .metric("matrix_par_wall_seconds", Par.wallSeconds(), "seconds")
      .metric("matrix_jobs_speedup", Speedup, "ratio", /*Gate=*/false,
              "higher")
      .metric("session_speedup",
              SumSession > 0 ? SumFresh / SumSession : 0, "ratio",
              /*Gate=*/true, "higher")
      .metric("portfolio_verdicts_match", Pf.VerdictsMatch ? 1 : 0,
              "bool", /*Gate=*/true, "equal")
      .metric("portfolio_reports_identical", Pf.ReportsIdentical ? 1 : 0,
              "bool", /*Gate=*/true, "equal")
      .metric("portfolio_width1_seconds", Pf.Width1Seconds, "seconds")
      .metric("portfolio_width4_seconds", Pf.Width4Seconds, "seconds")
      .metric("portfolio_speedup", Pf.Speedup, "ratio", /*Gate=*/true,
              "higher")
      .metric("portfolio_learnts_imported",
              static_cast<double>(Pf.LearntsImported), "clauses");
  if (!R.write(BO))
    return 64;

  return Seq.allCompleted() && Par.allCompleted() && Pf.Ok &&
                 Pf.VerdictsMatch && Pf.ReportsIdentical
             ? 0
             : 1;
}
