//===--- bench_matrix.cpp - matrix-runner throughput ------------------------===//
//
// Part of the CheckFence reproduction (PLDI'07).
//
// Runs the Fig. 8 queue-family matrix through the public Verifier API at
// one worker and at N workers and emits the perf trajectory as JSON:
// both wall times, the speedup, and per-cell fresh-vs-session engine
// comparisons. CF_BENCH_FULL=1 widens the matrix; CF_BENCH_JOBS
// overrides the parallel job count (default 4).
//
//===----------------------------------------------------------------------===//

#include "checkfence/checkfence.h"

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

using namespace checkfence;

namespace {

bool fullRun() {
  const char *E = std::getenv("CF_BENCH_FULL");
  return E && std::string(E) == "1";
}

/// Times one cell through the from-scratch pipeline and the session
/// engine; returns a JSON object fragment (an error object on failure,
/// so the report always stays parseable). Uses its own Verifier so the
/// session measurement never starts on a pool-warmed solver from a
/// previous fragment.
std::string benchFreshVsSession(const char *Impl, const char *Test,
                                const char *Model) {
  Verifier V;
  Request Base = Request::check(Impl, Test).model(Model).noCache();

  Result Fresh = V.check(Request(Base).freshPipeline());
  Result Sess = V.check(Base);
  if (Fresh.Verdict == Status::Error || Sess.Verdict == Status::Error)
    return "{\"impl\": \"" + std::string(Impl) + "\", \"test\": \"" +
           Test + "\", \"status\": \"ERROR\"}";

  char Buf[256];
  std::snprintf(
      Buf, sizeof(Buf),
      "{\"impl\": \"%s\", \"test\": \"%s\", \"model\": \"%s\", "
      "\"status\": \"%s\", \"fresh_seconds\": %.3f, "
      "\"session_seconds\": %.3f, \"speedup\": %.3f}",
      Impl, Test, Model, statusName(Sess.Verdict),
      Fresh.Stats.TotalSeconds, Sess.Stats.TotalSeconds,
      Sess.Stats.TotalSeconds > 0
          ? Fresh.Stats.TotalSeconds / Sess.Stats.TotalSeconds
          : 0);
  return Buf;
}

} // namespace

int main() {
  // The queue family of Fig. 8 on both queue implementations, under the
  // cheap models by default (msn's T1/Ti2+ cells run minutes each).
  std::vector<std::string> Tests = {"T0", "Tpc2"};
  std::vector<std::string> Models = {"sc", "tso"};
  if (fullRun()) {
    Tests.insert(Tests.end(), {"T1", "Tpc3", "Ti2", "Ti3", "T53"});
    Models.push_back("relaxed");
  }

  int Jobs = 4;
  if (const char *E = std::getenv("CF_BENCH_JOBS"))
    Jobs = std::atoi(E) > 0 ? std::atoi(E) : Jobs;

  Verifier V;
  Request Base = Request::matrix()
                     .impls({"ms2", "msn"})
                     .tests(Tests)
                     .models(Models);
  Report Seq = V.matrix(Request(Base).jobs(1));
  Report Par = V.matrix(Request(Base).jobs(Jobs));
  if (!Seq.ok() || !Par.ok()) {
    std::fprintf(stderr, "matrix setup failed: %s\n",
                 (!Seq.ok() ? Seq : Par).error().c_str());
    return 1;
  }

  double Speedup =
      Par.wallSeconds() > 0 ? Seq.wallSeconds() / Par.wallSeconds() : 0;
  std::vector<std::string> Fragments;
  Fragments.push_back(benchFreshVsSession("msn", "T0", "relaxed"));
  Fragments.push_back(benchFreshVsSession("msn", "Tpc2", "sc"));
  Fragments.push_back(benchFreshVsSession("ms2", "Ti2", "relaxed"));
  if (fullRun())
    Fragments.push_back(benchFreshVsSession("msn", "Ti2", "sc"));

  // One parseable document: the per-cell engine comparison plus the
  // parallel-matrix trajectory.
  std::printf("{\n  \"bench\": \"checkfence-matrix\",\n"
              "  \"fresh_vs_session\": [\n");
  for (size_t I = 0; I < Fragments.size(); ++I)
    std::printf("    %s%s\n", Fragments[I].c_str(),
                I + 1 < Fragments.size() ? "," : "");
  std::printf("  ],\n");
  std::printf("  \"matrix\": {\n    \"cells\": %d,\n"
              "    \"jobs\": %d,\n    \"sequential_wall_seconds\": %.3f,\n"
              "    \"parallel_wall_seconds\": %.3f,\n"
              "    \"speedup\": %.3f,\n    \"parallel_report\": ",
              static_cast<int>(Par.cellCount()), Jobs, Seq.wallSeconds(),
              Par.wallSeconds(), Speedup);
  std::string Json = Par.json();
  std::printf("%s", Json.c_str());
  std::printf("  }\n}\n");
  return Seq.allCompleted() && Par.allCompleted() ? 0 : 1;
}
