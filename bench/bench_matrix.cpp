//===--- bench_matrix.cpp - matrix-runner throughput ------------------------===//
//
// Part of the CheckFence reproduction (PLDI'07).
//
// Runs the Fig. 8 queue-family matrix through engine::MatrixRunner at one
// worker and at N workers and emits the perf trajectory as JSON: per-cell
// seconds, both wall times, and the speedup. CF_BENCH_FULL=1 widens the
// matrix; CF_BENCH_JOBS overrides the parallel job count (default 4).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "engine/MatrixRunner.h"
#include "frontend/Lowering.h"
#include "support/Format.h"
#include "support/Timing.h"

#include <cstdio>
#include <cstdlib>

using namespace checkfence;
using namespace checkfence::engine;
using namespace checkfence::harness;

namespace {

/// Times one cell through the from-scratch pipeline and the session
/// engine; returns a JSON object fragment (an error object on frontend
/// failure, so the report always stays parseable).
std::string benchFreshVsSession(const char *Impl, const char *Test,
                                memmodel::ModelParams Model) {
  frontend::DiagEngine Diags;
  lsl::Program Prog;
  if (!frontend::compileC(impls::sourceFor(Impl), {}, Prog, Diags))
    return formatString("{\"impl\": \"%s\", \"test\": \"%s\", "
                        "\"status\": \"ERROR\"}",
                        Impl, Test);
  TestSpec Spec = testByName(Test);
  std::vector<std::string> Threads = buildTestThreads(Prog, Spec);
  checker::CheckOptions Opts;
  Opts.Model = Model;

  Timer FreshT;
  checker::CheckResult Fresh = checker::runCheckFresh(Prog, Threads, Opts);
  double FreshSecs = FreshT.seconds();
  Timer SessT;
  checker::CheckResult Sess = checker::runCheck(Prog, Threads, Opts);
  double SessSecs = SessT.seconds();

  return formatString(
      "{\"impl\": \"%s\", \"test\": \"%s\", \"model\": \"%s\", "
      "\"status\": \"%s\", \"fresh_seconds\": %.3f, "
      "\"session_seconds\": %.3f, \"speedup\": %.3f}",
      Impl, Test, memmodel::modelName(Model).c_str(),
      checker::checkStatusName(Sess.Status), FreshSecs, SessSecs,
      SessSecs > 0 ? FreshSecs / SessSecs : 0);
}

} // namespace

int main() {
  // The queue family of Fig. 8 on both queue implementations, under the
  // cheap models by default (msn's T1/Ti2+ cells run minutes each).
  std::vector<std::string> Tests = {"T0", "Tpc2"};
  std::vector<memmodel::ModelParams> Models = {
      memmodel::ModelParams::sc(), memmodel::ModelParams::tso()};
  if (benchutil::fullRun()) {
    Tests.insert(Tests.end(), {"T1", "Tpc3", "Ti2", "Ti3", "T53"});
    Models.push_back(memmodel::ModelParams::relaxed());
  }
  std::vector<MatrixCell> Cells =
      expandMatrix({"ms2", "msn"}, Tests, Models);

  int Jobs = 4;
  if (const char *E = std::getenv("CF_BENCH_JOBS"))
    Jobs = std::atoi(E) > 0 ? std::atoi(E) : Jobs;

  RunOptions Base;
  MatrixReport Seq = MatrixRunner(1).run(Cells, catalogCellRunner(Base));
  MatrixReport Par = MatrixRunner(Jobs).run(Cells, catalogCellRunner(Base));

  double Speedup =
      Par.WallSeconds > 0 ? Seq.WallSeconds / Par.WallSeconds : 0;
  std::vector<std::string> Fragments;
  Fragments.push_back(
      benchFreshVsSession("msn", "T0", memmodel::ModelParams::relaxed()));
  Fragments.push_back(benchFreshVsSession(
      "msn", "Tpc2", memmodel::ModelParams::sc()));
  Fragments.push_back(
      benchFreshVsSession("ms2", "Ti2", memmodel::ModelParams::relaxed()));
  if (benchutil::fullRun())
    Fragments.push_back(benchFreshVsSession(
        "msn", "Ti2", memmodel::ModelParams::sc()));

  // One parseable document: the per-cell engine comparison plus the
  // parallel-matrix trajectory.
  std::printf("{\n  \"bench\": \"checkfence-matrix\",\n"
              "  \"fresh_vs_session\": [\n");
  for (size_t I = 0; I < Fragments.size(); ++I)
    std::printf("    %s%s\n", Fragments[I].c_str(),
                I + 1 < Fragments.size() ? "," : "");
  std::printf("  ],\n");
  std::printf("  \"matrix\": {\n    \"cells\": %d,\n"
              "    \"jobs\": %d,\n    \"sequential_wall_seconds\": %.3f,\n"
              "    \"parallel_wall_seconds\": %.3f,\n"
              "    \"speedup\": %.3f,\n    \"parallel_report\": ",
              static_cast<int>(Cells.size()), Jobs, Seq.WallSeconds,
              Par.WallSeconds, Speedup);
  std::string Json = Par.json();
  std::printf("%s", Json.c_str());
  std::printf("  }\n}\n");
  return Seq.allCompleted() && Par.allCompleted() ? 0 : 1;
}
