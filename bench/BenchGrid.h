//===--- BenchGrid.h - engine-layer helpers for the benches -----*- C++ -*-==//
//
// Part of the CheckFence reproduction (PLDI'07).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The shared (impl, test) grid and single-cell runner used by the
/// engine-layer benches. Split from BenchUtil.h because these helpers
/// reach into src/ (harness, impls) - the public-API benches
/// (bench_matrix, bench_fences, bench_explore) must not include this
/// header, and CI's boundary grep enforces that.
///
//===----------------------------------------------------------------------===//

#ifndef CHECKFENCE_BENCH_BENCHGRID_H
#define CHECKFENCE_BENCH_BENCHGRID_H

#include "BenchUtil.h"

#include "harness/Catalog.h"
#include "impls/Impls.h"

#include <string>
#include <utility>
#include <vector>

namespace benchutil {

/// The (impl, test) pairs exercised by the Fig. 10-style benches. The
/// quick subset keeps every bench binary under a few minutes.
inline std::vector<std::pair<std::string, std::string>> benchGrid() {
  using P = std::pair<std::string, std::string>;
  std::vector<P> Quick = {
      {"ms2", "T0"},      {"ms2", "Tpc2"}, {"ms2", "Ti2"},
      {"msn", "T0"},      {"msn", "Tpc2"},
      {"lazylist", "Sac"}, {"lazylist", "Sar"},
      {"harris", "Sac"},  {"harris", "Sar"},
      {"snark", "Da"},    {"snark", "D0"},
  };
  if (!fullRun())
    return Quick;
  std::vector<P> Full = Quick;
  for (const char *T : {"T1", "Tpc3", "Ti3", "T53"})
    Full.push_back({"ms2", T});
  for (const char *T : {"Ti2", "Tpc3"})
    Full.push_back({"msn", T});
  for (const char *T : {"Sacr", "Saa"})
    Full.push_back({"lazylist", T});
  Full.push_back({"harris", "Saa"});
  Full.push_back({"snark", "Db"});
  return Full;
}

/// Runs a catalog test on an implementation and returns the result.
inline checkfence::checker::CheckResult
runOne(const std::string &Impl, const std::string &Test,
       checkfence::harness::RunOptions Opts) {
  using namespace checkfence;
  return harness::runTest(impls::sourceFor(Impl),
                          harness::testByName(Test), Opts);
}

} // namespace benchutil

#endif // CHECKFENCE_BENCH_BENCHGRID_H
