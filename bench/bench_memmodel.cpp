//===--- bench_memmodel.cpp - E8/E14: the memory-model spectrum -------------===//
//
// Part 1 (E8, Sec. 4.4): total checking time under Relaxed vs sequential
// consistency. The paper found SC about 4% faster on average -
// insignificant - because the encoding is essentially the same size.
//
// Part 2 (E14, extension): verdicts across the full model spectrum
// SC > TSO > PSO > Relaxed for the fence-stripped implementations,
// quantifying the paper's Sec. 4.2 observation that the required
// load-load/store-store fences are "automatic" on TSO-like hardware:
// every stripped algorithm passes on TSO and fails on PSO/Relaxed
// (modulo snark's algorithmic bug, which fails everywhere on D0).
//
//===----------------------------------------------------------------------===//

#include "BenchGrid.h"

using namespace checkfence;
using namespace checkfence::harness;

namespace {

struct SpectrumCounts {
  int Cells = 0;
  int StrippedPassScTso = 0; ///< pass cells among {sc, tso} columns
  int StrippedFailPsoRlx = 0; ///< FAIL cells among {pso, relaxed} columns
  int FencedPassRelaxed = 0;
};

SpectrumCounts modelSpectrum() {
  std::printf("\n=== model spectrum: verdicts without fences ===\n");
  std::printf("%-9s %-6s |", "impl", "test");
  for (memmodel::ModelParams K : memmodel::allModels())
    std::printf(" %8s", memmodel::modelName(K).c_str());
  std::printf("   (fenced on relaxed)\n");

  std::vector<std::pair<std::string, std::string>> Grid = {
      {"ms2", "T0"},     {"msn", "T0"},    {"lazylist", "Sar"},
      {"harris", "Sac"}, {"treiber", "U0"}};
  if (benchutil::fullRun()) {
    Grid.push_back({"msn", "Tpc2"});
    Grid.push_back({"treiber", "Ui2"});
  }

  SpectrumCounts C;
  for (const auto &[Impl, Test] : Grid) {
    std::printf("%-9s %-6s |", Impl.c_str(), Test.c_str());
    for (memmodel::ModelParams K : memmodel::allModels()) {
      RunOptions O;
      O.Check.Model = K;
      O.StripFences = true;
      checker::CheckResult R = benchutil::runOne(Impl, Test, O);
      std::printf(" %8s", R.passed() ? "pass" : "FAIL");
      std::string Name = memmodel::modelName(K);
      if (Name == "sc" || Name == "tso")
        C.StrippedPassScTso += R.passed();
      else
        C.StrippedFailPsoRlx += !R.passed();
    }
    RunOptions F;
    F.Check.Model = memmodel::ModelParams::relaxed();
    checker::CheckResult R = benchutil::runOne(Impl, Test, F);
    std::printf("   %s\n", R.passed() ? "pass" : "FAIL");
    C.FencedPassRelaxed += R.passed();
    ++C.Cells;
  }
  std::printf("\n(expected shape: pass on sc and tso, FAIL on pso and "
              "relaxed; the shipped\nfences restore pass on relaxed - "
              "paper Sec. 4.2)\n");
  return C;
}

} // namespace

int main(int argc, char **argv) {
  benchutil::Options BO;
  if (!benchutil::parseBenchArgs(argc, argv, BO))
    return 64;
  int Cells = 0;
  std::printf("=== Sec. 4.4: SC vs Relaxed runtime ===\n");
  std::printf("%-9s %-6s | %12s %12s | %8s\n", "impl", "test", "relaxed[s]",
              "sc[s]", "ratio");

  double SumRelaxed = 0, SumSC = 0;
  for (const auto &[Impl, Test] : benchutil::benchGrid()) {
    RunOptions Warm;
    Warm.Check.Model = memmodel::ModelParams::relaxed();
    checker::CheckResult W = benchutil::runOne(Impl, Test, Warm);

    RunOptions Rlx = Warm;
    Rlx.Check.InitialBounds = W.FinalBounds;
    checker::CheckResult RRelaxed = benchutil::runOne(Impl, Test, Rlx);

    RunOptions Sc = Rlx;
    Sc.Check.Model = memmodel::ModelParams::sc();
    checker::CheckResult RSc = benchutil::runOne(Impl, Test, Sc);

    double TR = RRelaxed.Stats.TotalSeconds, TS = RSc.Stats.TotalSeconds;
    std::printf("%-9s %-6s | %12.3f %12.3f | %8.2f\n", Impl.c_str(),
                Test.c_str(), TR, TS, TR > 0 ? TS / TR : 0.0);
    SumRelaxed += TR;
    SumSC += TS;
    ++Cells;
  }
  if (SumRelaxed > 0)
    std::printf("\naggregate SC/Relaxed time ratio: %.3f "
                "(paper: ~0.96, i.e. the model choice is insignificant)\n",
                SumSC / SumRelaxed);

  SpectrumCounts C = modelSpectrum();

  benchutil::BenchReport R("memmodel", BO);
  R.metric("grid_cells", Cells, "cells", /*Gate=*/true, "equal")
      .metric("spectrum_cells", C.Cells, "cells", /*Gate=*/true, "equal")
      .metric("stripped_pass_sc_tso", C.StrippedPassScTso, "cells",
              /*Gate=*/true, "equal")
      .metric("stripped_fail_pso_relaxed", C.StrippedFailPsoRlx, "cells",
              /*Gate=*/true, "equal")
      .metric("fenced_pass_relaxed", C.FencedPassRelaxed, "cells",
              /*Gate=*/true, "equal")
      .metric("relaxed_seconds", SumRelaxed, "seconds")
      .metric("sc_over_relaxed_ratio",
              SumRelaxed > 0 ? SumSC / SumRelaxed : 0, "ratio",
              /*Gate=*/false, "lower");
  return R.write(BO) ? 0 : 64;
}
