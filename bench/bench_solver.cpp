//===--- bench_solver.cpp - SAT substrate microbenchmarks -------------------===//
//
// google-benchmark timings for the CDCL solver itself (the zChaff
// stand-in): pigeonhole refutations, random 3-SAT near the phase
// transition, and the incremental blocking-clause pattern used by
// specification mining.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "sat/Solver.h"

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <random>
#include <string>
#include <utility>

using namespace checkfence::sat;

namespace {

Lit pos(Var V) { return Lit::make(V); }
Lit neg(Var V) { return Lit::make(V, true); }

void addPigeonhole(Solver &S, int Pigeons, int Holes) {
  std::vector<std::vector<Var>> X(Pigeons, std::vector<Var>(Holes));
  for (auto &Row : X)
    for (Var &V : Row)
      V = S.newVar();
  for (int P = 0; P < Pigeons; ++P) {
    std::vector<Lit> C;
    for (int H = 0; H < Holes; ++H)
      C.push_back(pos(X[P][H]));
    S.addClause(C);
  }
  for (int H = 0; H < Holes; ++H)
    for (int P1 = 0; P1 < Pigeons; ++P1)
      for (int P2 = P1 + 1; P2 < Pigeons; ++P2)
        S.addClause(neg(X[P1][H]), neg(X[P2][H]));
}

void BM_PigeonholeUnsat(benchmark::State &State) {
  int N = static_cast<int>(State.range(0));
  for (auto _ : State) {
    Solver S;
    addPigeonhole(S, N + 1, N);
    benchmark::DoNotOptimize(S.solve());
  }
}
BENCHMARK(BM_PigeonholeUnsat)->Arg(5)->Arg(6)->Arg(7);

void BM_Random3Sat(benchmark::State &State) {
  int Vars = static_cast<int>(State.range(0));
  int Clauses = static_cast<int>(Vars * 4.2);
  for (auto _ : State) {
    std::mt19937 Rng(12345);
    Solver S;
    for (int I = 0; I < Vars; ++I)
      S.newVar();
    std::uniform_int_distribution<int> VarDist(0, Vars - 1);
    for (int I = 0; I < Clauses; ++I)
      S.addClause(Lit::make(VarDist(Rng), Rng() & 1),
                  Lit::make(VarDist(Rng), Rng() & 1),
                  Lit::make(VarDist(Rng), Rng() & 1));
    benchmark::DoNotOptimize(S.solve());
  }
}
BENCHMARK(BM_Random3Sat)->Arg(60)->Arg(100)->Arg(140);

/// The mining pattern: repeatedly solve and block the found model.
void BM_IncrementalEnumeration(benchmark::State &State) {
  int Bits = static_cast<int>(State.range(0));
  uint64_t Conflicts = 0;
  for (auto _ : State) {
    Solver S;
    std::vector<Var> Vs;
    for (int I = 0; I < Bits; ++I)
      Vs.push_back(S.newVar());
    int Count = 0;
    while (S.solve() == SolveResult::Sat) {
      std::vector<Lit> Block;
      for (Var V : Vs)
        Block.push_back(Lit::make(V, S.modelValue(V) == LBool::True));
      if (!S.addClause(Block))
        break;
      ++Count;
    }
    Conflicts += S.stats().Conflicts;
    benchmark::DoNotOptimize(Count);
  }
  State.counters["conflicts"] =
      benchmark::Counter(static_cast<double>(Conflicts),
                         benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_IncrementalEnumeration)->Arg(6)->Arg(8);

/// The session pattern: one persistent solver re-solved under rotating
/// assumption sets (activation literals), as the check engine does across
/// the inclusion and probe phases.
void BM_AssumptionPhaseSwitching(benchmark::State &State) {
  int N = static_cast<int>(State.range(0));
  for (auto _ : State) {
    Solver S;
    addPigeonhole(S, N, N); // satisfiable: N pigeons in N holes
    Lit ActA = Lit::make(S.newVar());
    Lit ActB = Lit::make(S.newVar());
    // Phase A pins pigeon 0 to hole 0; phase B forbids exactly that.
    S.addClause(~ActA, Lit::make(0));
    S.addClause(~ActB, Lit::make(0, true));
    int Sats = 0;
    for (int Round = 0; Round < 16; ++Round) {
      Sats += S.solve({Round % 2 ? ActB : ActA}) == SolveResult::Sat;
    }
    benchmark::DoNotOptimize(Sats);
  }
}
BENCHMARK(BM_AssumptionPhaseSwitching)->Arg(6)->Arg(8);

/// Console output as usual, but every per-iteration timing is also
/// captured for the shared bench-schema report (--json).
class CaptureReporter : public benchmark::ConsoleReporter {
public:
  std::vector<std::pair<std::string, double>> SecondsPerIter;

  void ReportRuns(const std::vector<Run> &Runs) override {
    for (const Run &R : Runs)
      if (R.run_type == Run::RT_Iteration && !R.error_occurred &&
          R.iterations > 0)
        SecondsPerIter.emplace_back(
            R.benchmark_name(),
            R.real_accumulated_time / static_cast<double>(R.iterations));
    ConsoleReporter::ReportRuns(Runs);
  }
};

} // namespace

// BENCHMARK_MAIN, plus CF_BENCH_JSON=1 forcing the machine-readable
// reporter (equivalent to --benchmark_format=json) and --json PATH
// writing the shared bench schema (BenchUtil.h) for the perf-trajectory
// tooling. parseBenchArgs strips its flags before google-benchmark sees
// the command line.
int main(int argc, char **argv) {
  benchutil::Options BO;
  if (!benchutil::parseBenchArgs(argc, argv, BO))
    return 64;
  std::vector<char *> Args(argv, argv + argc);
  std::string JsonFlag = "--benchmark_format=json";
  if (const char *E = std::getenv("CF_BENCH_JSON"); E && E == std::string("1"))
    Args.push_back(JsonFlag.data());
  int Argc = static_cast<int>(Args.size());
  benchmark::Initialize(&Argc, Args.data());
  if (benchmark::ReportUnrecognizedArguments(Argc, Args.data()))
    return 1;
  if (BO.JsonPath.empty()) {
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
  }
  CaptureReporter Reporter;
  benchmark::RunSpecifiedBenchmarks(&Reporter);
  benchmark::Shutdown();

  benchutil::BenchReport R("solver", BO);
  R.metric("benchmarks_run",
           static_cast<double>(Reporter.SecondsPerIter.size()), "cases",
           /*Gate=*/true, "equal");
  for (const auto &[Name, Secs] : Reporter.SecondsPerIter)
    R.metric(Name, Secs, "s/iter");
  return R.write(BO) ? 0 : 64;
}
