//===--- bench_range.cpp - E6: Fig. 11(c) range-analysis impact -------------===//
//
// Runs each workload with and without exploiting the range analysis
// results (constant fixing, width minimization, alias pruning) and prints
// the runtime pairs of Fig. 11(c).
//
//===----------------------------------------------------------------------===//

#include "BenchGrid.h"

using namespace checkfence;
using namespace checkfence::harness;

int main(int argc, char **argv) {
  benchutil::Options BO;
  if (!benchutil::parseBenchArgs(argc, argv, BO))
    return 64;
  int Cells = 0;
  std::printf("=== Fig. 11(c): impact of the range analysis ===\n");
  std::printf("%-9s %-6s | %12s %12s | %9s | %10s %10s\n", "impl", "test",
              "with[s]", "without[s]", "speedup", "vars w/", "vars w/o");

  double SumWith = 0, SumWithout = 0;
  for (const auto &[Impl, Test] : benchutil::benchGrid()) {
    RunOptions Warm;
    Warm.Check.Model = memmodel::ModelParams::relaxed();
    checker::CheckResult W = benchutil::runOne(Impl, Test, Warm);

    RunOptions On = Warm;
    On.Check.InitialBounds = W.FinalBounds;
    checker::CheckResult RWith = benchutil::runOne(Impl, Test, On);

    RunOptions Off = On;
    Off.Check.RangeAnalysis = false;
    Off.Check.ConflictBudget = 8000000;
    checker::CheckResult RWithout = benchutil::runOne(Impl, Test, Off);

    double TW = RWith.Stats.TotalSeconds;
    double TO = RWithout.Stats.TotalSeconds;
    std::printf("%-9s %-6s | %12.3f %12.3f | %8.2fx | %10d %10d\n",
                Impl.c_str(), Test.c_str(), TW, TO, TW > 0 ? TO / TW : 0.0,
                RWith.Stats.Inclusion.SatVars, RWithout.Stats.Inclusion.SatVars);
    SumWith += TW;
    SumWithout += TO;
    ++Cells;
  }
  if (SumWith > 0)
    std::printf("\noverall speedup from range analysis: %.2fx "
                "(paper: ~42%% average improvement, up to 3x)\n",
                SumWithout / SumWith);

  benchutil::BenchReport R("range", BO);
  R.metric("grid_cells", Cells, "cells", /*Gate=*/true, "equal")
      .metric("with_seconds", SumWith, "seconds")
      .metric("without_seconds", SumWithout, "seconds")
      .metric("range_speedup", SumWith > 0 ? SumWithout / SumWith : 0,
              "ratio", /*Gate=*/false, "higher");
  return R.write(BO) ? 0 : 64;
}
