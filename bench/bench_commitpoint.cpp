//===--- bench_commitpoint.cpp - E7: the Fig. 12 method comparison ----------===//
//
// Compares the observation-set method against the commit-point method of
// the earlier case study [4] on the commit-annotated implementations
// (msn, ms2). Like Fig. 12, each data point is one test; the comparison
// runs under sequential consistency, where commit-access order determines
// the serialization (see DESIGN.md on this substitution), and both methods
// start from pre-computed loop bounds.
//
//===----------------------------------------------------------------------===//

#include "BenchGrid.h"
#include "baseline/CommitPointChecker.h"

using namespace checkfence;
using namespace checkfence::harness;

int main(int argc, char **argv) {
  benchutil::Options BO;
  if (!benchutil::parseBenchArgs(argc, argv, BO))
    return 64;
  std::printf("=== Fig. 12: observation-set method vs commit-point method "
              "===\n");
  std::printf("%-9s %-6s | %12s %12s | %9s | %s\n", "impl", "test",
              "obs-set[s]", "commit[s]", "ratio", "verdicts");

  std::vector<std::pair<std::string, std::string>> Grid = {
      {"msn", "T0"},  {"msn", "Tpc2"}, {"msn", "Ti2"},
      {"ms2", "T0"},  {"ms2", "T1"},   {"ms2", "Tpc2"},
      {"ms2", "Ti2"}, {"ms2", "Tpc3"},
  };
  if (benchutil::fullRun()) {
    Grid.push_back({"msn", "Tpc3"});
    Grid.push_back({"ms2", "Ti3"});
    Grid.push_back({"ms2", "T53"});
  }

  double SumObs = 0, SumCommit = 0;
  for (const auto &[Impl, Test] : Grid) {
    RunOptions Warm;
    Warm.Check.Model = memmodel::ModelParams::sc();
    checker::CheckResult W = benchutil::runOne(Impl, Test, Warm);

    RunOptions Opts = Warm;
    Opts.Check.InitialBounds = W.FinalBounds;
    checker::CheckResult RObs = benchutil::runOne(Impl, Test, Opts);
    double TObs = RObs.Stats.TotalSeconds;

    baseline::CommitPointOptions CO;
    CO.Model = memmodel::ModelParams::sc();
    CO.Bounds = W.FinalBounds;
    baseline::CommitPointResult RCp = baseline::runCommitPointTest(
        impls::sourceFor(Impl), impls::referenceFor("queue"),
        testByName(Test), CO);
    double TCp = RCp.TotalSeconds;

    std::printf("%-9s %-6s | %12.3f %12.3f | %8.2fx | %s / %s\n",
                Impl.c_str(), Test.c_str(), TObs, TCp,
                TObs > 0 ? TCp / TObs : 0.0,
                checker::checkStatusName(RObs.Status),
                RCp.Ok ? (RCp.Pass ? "PASS" : "FAIL") : RCp.Error.c_str());
    SumObs += TObs;
    SumCommit += TCp;
  }

  if (SumObs > 0)
    std::printf("\naggregate commit/observation time ratio: %.2fx\n"
                "(the paper reports the observation-set method 2.61x faster "
                "on average\nagainst its commit-point tool; our commit "
                "baseline shares this encoder,\nso the gap reflects the "
                "mining loop vs the doubled shadow formula)\n",
                SumCommit / SumObs);
  std::printf("\nNote: the lazy list has no known commit points (paper "
              "Sec. 5) - the\nobservation-set method needs no such "
              "annotations, which is its main\nqualitative advantage.\n");

  benchutil::BenchReport R("commitpoint", BO);
  R.metric("grid_cells", static_cast<double>(Grid.size()), "cells",
           /*Gate=*/true, "equal")
      .metric("obsset_seconds", SumObs, "seconds")
      .metric("commitpoint_seconds", SumCommit, "seconds")
      .metric("commit_over_obs_ratio", SumObs > 0 ? SumCommit / SumObs : 0,
              "ratio", /*Gate=*/false, "higher");
  return R.write(BO) ? 0 : 64;
}
