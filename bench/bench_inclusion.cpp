//===--- bench_inclusion.cpp - E2/E3: the Fig. 10 inclusion-check table -----===//
//
// For each implementation x test, reports the Fig. 10(a) columns: unrolled
// code size (instrs / loads / stores), encoding time, CNF size (vars /
// clauses / solver memory), refutation time, and total time. The trailing
// series (sorted by memory accesses) regenerates the Fig. 10(b) scaling
// charts. As in the paper, the timed run starts from pre-computed loop
// bounds so lazy-unrolling time is excluded; the memory model is Relaxed.
//
// Set CF_BENCH_FULL=1 for the larger grid.
//
//===----------------------------------------------------------------------===//

#include "BenchGrid.h"

#include <algorithm>

using namespace checkfence;
using namespace checkfence::harness;

int main(int argc, char **argv) {
  benchutil::Options BO;
  if (!benchutil::parseBenchArgs(argc, argv, BO))
    return 64;
  std::printf("=== Fig. 10(a): inclusion check statistics (Relaxed) ===\n");
  std::printf("%-9s %-6s | %6s %5s %6s | %8s | %8s %9s %7s | %8s %8s | "
              "%s\n",
              "impl", "test", "instrs", "loads", "stores", "enc[s]", "vars",
              "clauses", "mem[MB]", "sat[s]", "total[s]", "verdict");

  struct Row {
    int Accesses;
    double Time;
    size_t MemBytes;
    std::string Label;
  };
  std::vector<Row> Series;
  unsigned long long SumVars = 0, SumClauses = 0;
  double SumSolve = 0, SumTotal = 0;
  int Cells = 0;

  for (const auto &[Impl, Test] : benchutil::benchGrid()) {
    // Warm-up run discovers sufficient loop bounds (not timed separately
    // here; the paper likewise excludes lazy unrolling from the table).
    RunOptions Warm;
    Warm.Check.Model = memmodel::ModelParams::relaxed();
    checker::CheckResult W = benchutil::runOne(Impl, Test, Warm);

    RunOptions Opts = Warm;
    Opts.Check.InitialBounds = W.FinalBounds;
    checker::CheckResult R = benchutil::runOne(Impl, Test, Opts);

    std::printf("%-9s %-6s | %6d %5d %6d | %8.2f | %8d %9llu %7.1f | "
                "%8.2f %8.2f | %s\n",
                Impl.c_str(), Test.c_str(), R.Stats.Inclusion.UnrolledInstrs,
                R.Stats.Inclusion.Loads, R.Stats.Inclusion.Stores, R.Stats.Inclusion.EncodeSeconds,
                R.Stats.Inclusion.SatVars,
                static_cast<unsigned long long>(R.Stats.Inclusion.SatClauses),
                R.Stats.Inclusion.SolverMemBytes / 1048576.0, R.Stats.Inclusion.SolveSeconds,
                R.Stats.TotalSeconds,
                checker::checkStatusName(R.Status));

    Series.push_back(Row{R.Stats.Inclusion.Loads + R.Stats.Inclusion.Stores,
                         R.Stats.Inclusion.SolveSeconds, R.Stats.Inclusion.SolverMemBytes,
                         Impl + "/" + Test});
    SumVars += static_cast<unsigned long long>(R.Stats.Inclusion.SatVars);
    SumClauses += R.Stats.Inclusion.SatClauses;
    SumSolve += R.Stats.Inclusion.SolveSeconds;
    SumTotal += R.Stats.TotalSeconds;
    ++Cells;
  }

  std::printf("\n=== Fig. 10(b): scaling with memory accesses ===\n");
  std::printf("%-16s %10s %14s %12s\n", "impl/test", "accesses",
              "refute[s]", "solver[MB]");
  std::sort(Series.begin(), Series.end(),
            [](const Row &A, const Row &B) { return A.Accesses < B.Accesses; });
  for (const Row &S : Series)
    std::printf("%-16s %10d %14.3f %12.2f\n", S.Label.c_str(), S.Accesses,
                S.Time, S.MemBytes / 1048576.0);
  std::printf("\n(time and memory rise sharply with the number of memory "
              "accesses,\nmatching the paper's log-scale charts)\n");

  // The encoder is deterministic, so total CNF size gates on exact
  // equality - a cheap tripwire for accidental encoding changes.
  benchutil::BenchReport R("inclusion", BO);
  R.metric("grid_cells", Cells, "cells", /*Gate=*/true, "equal")
      .metric("total_sat_vars", static_cast<double>(SumVars), "vars",
              /*Gate=*/true, "equal")
      .metric("total_sat_clauses", static_cast<double>(SumClauses),
              "clauses", /*Gate=*/true, "equal")
      .metric("refute_seconds", SumSolve, "seconds")
      .metric("total_seconds", SumTotal, "seconds");
  return R.write(BO) ? 0 : 64;
}
