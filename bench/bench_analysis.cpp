//===--- bench_analysis.cpp - critical-cycle analysis payoff ----------------===//
//
// Part of the CheckFence reproduction (PLDI'07).
//
// Quantifies what the static critical-cycle (delay-set) analysis buys at
// its two integration points:
//
//  1. Phase-0 discharge rate: a fixed-seed stream of generated litmus
//     programs is checked on every lattice point the analysis serves
//     (analysisEligible but not readsFromEligible - the reads-from
//     oracle already owns sc/tso/pso). Counts how many check sessions
//     the robustness proof discharges without a single SAT solver call,
//     and A/Bs every cell against a run with the pruner disabled: the
//     verdicts and timing-free stats must be identical (gated).
//
//  2. Fence-synthesis seeding: the bench_synth workloads are synthesized
//     twice, with and without analysis seeding. The final minimized
//     placements must be identical (gated) and the seeded run must cost
//     strictly fewer checker runs in total (gated) - seeding only steers
//     each round away from placements no critical cycle runs through
//     (which minimization would remove again), it never changes the
//     1-minimal result.
//
// Like bench_oracle this bench deliberately reaches into src/ (memmodel,
// explore, checker, harness).
//
// `--json PATH` writes the shared bench schema for
// scripts/bench_compare.py; `--seed N` seeds the litmus stream.
// CF_BENCH_FULL=1 widens the scenario counts.
//
//===----------------------------------------------------------------------===//

#include "BenchGrid.h"

#include "analysis/CriticalCycles.h"
#include "checker/CheckFence.h"
#include "explore/Explore.h"
#include "frontend/Lowering.h"
#include "harness/FenceSynth.h"
#include "memmodel/MemoryModel.h"

#include <cstdio>
#include <vector>

using namespace checkfence;

namespace {

int preludeLines() {
  int N = 0;
  for (char C : impls::preludeSource())
    N += C == '\n';
  return N;
}

} // namespace

int main(int argc, char **argv) {
  benchutil::Options BO;
  if (!benchutil::parseBenchArgs(argc, argv, BO))
    return 64;
  const int Scenarios = benchutil::fullRun() ? 120 : 40;

  //===--------------------------------------------------------------------===//
  // Section 1: phase-0 discharge rate on the analysis-served axis.
  //===--------------------------------------------------------------------===//

  std::vector<memmodel::ModelParams> Served;
  for (const memmodel::ModelParams &M : memmodel::latticeModels())
    if (analysis::analysisEligible(M) && !memmodel::readsFromEligible(M))
      Served.push_back(M);

  explore::GeneratorLimits Limits;
  Limits.SymbolicPerMille = 0; // litmus programs only
  explore::Generator Gen(BO.Seed, Limits);

  int Cells = 0, Attempts = 0, Discharges = 0, Disagreements = 0;
  double PrunedSeconds = 0, UnprunedSeconds = 0;
  for (int I = 0; I < Scenarios; ++I) {
    explore::Scenario S = Gen.at(I);

    frontend::DiagEngine Diags;
    lsl::Program Prog;
    if (!frontend::compileC(S.Source, {}, Prog, Diags)) {
      std::fprintf(stderr, "scenario %d failed to compile:\n%s\n", I,
                   Diags.str().c_str());
      return 1;
    }
    harness::TestSpec Spec;
    Spec.Name = "bench";
    for (size_t T = 0; T < S.ThreadArgs.size(); ++T)
      Spec.Threads.push_back({harness::OpSpec{
          "t" + std::to_string(T) + "_op", S.ThreadArgs[T], false, false}});
    std::vector<std::string> Threads = harness::buildTestThreads(Prog, Spec);

    for (const memmodel::ModelParams &M : Served) {
      checker::CheckOptions On;
      On.Model = M;
      On.AnalysisPrune = true;
      checker::CheckResult RO = checker::runCheck(Prog, Threads, On);

      checker::CheckOptions Off = On;
      Off.AnalysisPrune = false;
      checker::CheckResult RF = checker::runCheck(Prog, Threads, Off);

      ++Cells;
      Attempts += RO.Stats.AnalysisAttempts;
      Discharges += RO.Stats.AnalysisDischarges;
      PrunedSeconds += RO.Stats.TotalSeconds;
      UnprunedSeconds += RF.Stats.TotalSeconds;
      if (RO.Status != RF.Status || RO.Spec != RF.Spec ||
          RO.FinalBounds != RF.FinalBounds)
        ++Disagreements;
    }
  }
  const double DischargeRate = Attempts > 0
                                   ? static_cast<double>(Discharges) /
                                         static_cast<double>(Attempts)
                                   : 0;

  //===--------------------------------------------------------------------===//
  // Section 2: seeded vs. unseeded fence synthesis.
  //===--------------------------------------------------------------------===//

  struct Workload {
    const char *Impl;
    const char *Test;
  };
  std::vector<Workload> Work = {
      {"msn", "T0"}, {"ms2", "T0"}, {"treiber", "U0"}};

  const memmodel::ModelParams SynthModels[] = {
      memmodel::ModelParams::relaxed(), memmodel::ModelParams::pso(),
      memmodel::ModelParams::tso()};

  int ChecksSeeded = 0, ChecksUnseeded = 0, PlacementMismatches = 0;
  double SeededSeconds = 0, UnseededSeconds = 0;
  std::printf("=== fence synthesis: analysis seeding A/B ===\n");
  std::printf("%-9s %-5s %-8s | %7s %7s | %6s %6s | %s\n", "impl", "test",
              "model", "chk(s)", "chk(u)", "fences", "same", "result");
  for (const Workload &W : Work) {
    std::string Source = impls::sourceFor(W.Impl);
    for (memmodel::ModelParams Model : SynthModels) {
      harness::SynthOptions Opts;
      Opts.Check.Model = Model;
      Opts.MinLine = preludeLines() + 1;
      Opts.SeedFromAnalysis = true;
      harness::SynthResult Seeded =
          harness::synthesizeFences(Source, {harness::testByName(W.Test)},
                                    Opts);
      Opts.SeedFromAnalysis = false;
      harness::SynthResult Plain =
          harness::synthesizeFences(Source, {harness::testByName(W.Test)},
                                    Opts);

      const bool Same = Seeded.Success == Plain.Success &&
                        Seeded.Fences == Plain.Fences;
      PlacementMismatches += !Same;
      ChecksSeeded += Seeded.ChecksRun;
      ChecksUnseeded += Plain.ChecksRun;
      SeededSeconds += Seeded.TotalSeconds;
      UnseededSeconds += Plain.TotalSeconds;
      std::printf("%-9s %-5s %-8s | %7d %7d | %6d %6s | %s\n", W.Impl,
                  W.Test, memmodel::modelName(Model).c_str(),
                  Seeded.ChecksRun, Plain.ChecksRun,
                  static_cast<int>(Seeded.Fences.size()),
                  Same ? "yes" : "NO", Seeded.Success ? "ok"
                                                      : Seeded.Message.c_str());
    }
  }
  const bool StrictlyFewer = ChecksSeeded < ChecksUnseeded;

  std::printf("\n{\n");
  std::printf("  \"bench\": \"analysis\",\n");
  std::printf("  \"litmus_scenarios\": %d,\n", Scenarios);
  std::printf("  \"litmus_cells\": %d,\n", Cells);
  std::printf("  \"analysis_attempts\": %d,\n", Attempts);
  std::printf("  \"analysis_discharges\": %d,\n", Discharges);
  std::printf("  \"discharge_rate\": %.3f,\n", DischargeRate);
  std::printf("  \"discharge_disagreements\": %d,\n", Disagreements);
  std::printf("  \"pruned_seconds\": %.3f,\n", PrunedSeconds);
  std::printf("  \"unpruned_seconds\": %.3f,\n", UnprunedSeconds);
  std::printf("  \"synth_checks_seeded\": %d,\n", ChecksSeeded);
  std::printf("  \"synth_checks_unseeded\": %d,\n", ChecksUnseeded);
  std::printf("  \"synth_placement_mismatches\": %d,\n",
              PlacementMismatches);
  std::printf("  \"synth_seeded_seconds\": %.3f,\n", SeededSeconds);
  std::printf("  \"synth_unseeded_seconds\": %.3f\n", UnseededSeconds);
  std::printf("}\n");

  // Gated: the soundness/identity invariants and the seeded counts (the
  // generator stream and the search are deterministic); wall clock stays
  // trajectory data.
  benchutil::BenchReport R("analysis", BO);
  R.context("litmus_scenarios", std::to_string(Scenarios))
      .context("served_models", std::to_string(Served.size()));
  R.metric("litmus_cells", Cells, "cells", /*Gate=*/true, "equal")
      .metric("analysis_attempts", Attempts, "attempts", /*Gate=*/true,
              "equal")
      .metric("analysis_discharges", Discharges, "discharges",
              /*Gate=*/true, "equal")
      .metric("discharge_disagreements", Disagreements, "cells",
              /*Gate=*/true, "equal")
      .metric("discharge_rate", DischargeRate, "ratio", /*Gate=*/false,
              "higher")
      .metric("synth_checks_seeded", ChecksSeeded, "checks",
              /*Gate=*/true, "equal")
      .metric("synth_checks_unseeded", ChecksUnseeded, "checks",
              /*Gate=*/true, "equal")
      .metric("synth_placement_mismatches", PlacementMismatches,
              "workloads", /*Gate=*/true, "equal")
      .metric("synth_seeded_strictly_fewer", StrictlyFewer ? 1 : 0,
              "bool", /*Gate=*/true, "equal")
      .metric("pruned_seconds", PrunedSeconds, "seconds")
      .metric("unpruned_seconds", UnprunedSeconds, "seconds")
      .metric("synth_seeded_seconds", SeededSeconds, "seconds")
      .metric("synth_unseeded_seconds", UnseededSeconds, "seconds");
  if (!R.write(BO))
    return 64;

  return (Disagreements == 0 && PlacementMismatches == 0 && StrictlyFewer)
             ? 0
             : 1;
}
