//===--- bench_server.cpp - checkfenced round-trip trajectory ----------------===//
//
// Part of the CheckFence reproduction (PLDI'07).
//
// The perf-trajectory bench for the verification server: an in-process
// checkfenced on an ephemeral port driven through RemoteVerifier.
//
//  * pure protocol overhead (checkfence.version round trips),
//  * a mixed first pass (check / matrix / analyze) against a cold
//    shared cache, then the identical second pass against the warm one,
//  * remote-vs-local timing-free JSON identity on the check set,
//  * concurrent-client throughput over the shard pool.
//
// `--json PATH` writes the shared bench schema (see BenchUtil.h) that
// scripts/bench_compare.py gates CI on. The gated metrics are counts
// and booleans (served totals, cache hits, identity) - wall-clock
// numbers are recorded for the trajectory but not gated, since
// baselines travel across machines. CF_BENCH_FULL=1 widens the check
// grid; CF_BENCH_CLIENTS overrides the concurrent client count
// (default 4).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "checkfence/checkfence.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

using namespace checkfence;

namespace {

double now() {
  using namespace std::chrono;
  return duration_cast<duration<double>>(
             steady_clock::now().time_since_epoch())
      .count();
}

struct Cell {
  const char *Impl;
  const char *Test;
  const char *Model;
};

} // namespace

int main(int argc, char **argv) {
  benchutil::Options Opts;
  if (!benchutil::parseBenchArgs(argc, argv, Opts))
    return 64;

  int Clients = 4;
  if (const char *E = std::getenv("CF_BENCH_CLIENTS"))
    Clients = std::atoi(E) > 0 ? std::atoi(E) : Clients;

  std::vector<Cell> Checks = {{"ms2", "T0", "sc"},
                              {"ms2", "T0", "tso"},
                              {"snark", "D0", "sc"},
                              {"ms2", "Ti2", "sc"}};
  if (benchutil::fullRun()) {
    Checks.push_back({"ms2", "Tpc2", "sc"});
    Checks.push_back({"msn", "T0", "tso"});
    Checks.push_back({"lazylist", "T1", "sc"});
  }

  ServerConfig Cfg;
  Cfg.Port = 0;
  Cfg.Shards = 2;
  CheckServer Server(Cfg);
  std::string Error;
  if (!Server.start(Error)) {
    std::fprintf(stderr, "cannot start server: %s\n", Error.c_str());
    return 1;
  }
  std::string Url = "http://127.0.0.1:" + std::to_string(Server.port());

  // -- Protocol overhead: version probes carry no verification work.
  constexpr int Probes = 100;
  RemoteVerifier RV(Url);
  double T0 = now();
  int ProbeFailures = 0;
  for (int I = 0; I < Probes; ++I) {
    std::string Version;
    int Schema = 0;
    if (!RV.version(Version, Schema))
      ++ProbeFailures;
  }
  double ProbeSeconds = now() - T0;

  // -- First pass, cold cache: every check plus one matrix and one
  // analysis, sequentially.
  Verifier Local;
  int Identical = 1, PassFailures = 0;
  T0 = now();
  for (const Cell &C : Checks) {
    Request Req = Request::check(C.Impl, C.Test).model(C.Model);
    Result R;
    if (!RV.check(Req, R)) {
      ++PassFailures;
      continue;
    }
    if (R.json(false) != Local.check(Req).json(false))
      Identical = 0;
  }
  Request MatrixReq = Request::matrix()
                          .impls({"ms2"})
                          .tests({"T0"})
                          .models({"sc", "tso"});
  RemoteReport Matrix;
  if (!RV.matrix(MatrixReq, Matrix) || !Matrix.AllCompleted)
    ++PassFailures;
  Request AnalyzeReq = Request::check("ms2", "T0");
  AnalyzeReq.RequestKind = Request::Kind::Analyze;
  RemoteAnalysis Analysis;
  if (!RV.analyze(AnalyzeReq, Analysis) || !Analysis.Ok)
    ++PassFailures;
  double ColdSeconds = now() - T0;

  // -- Second pass: the identical checks again, now warm. Matrix cells
  // bypass the cache by design, so only the checks are re-run.
  unsigned long long HitsBefore = Server.stats().Cache.Hits;
  int SecondPassFromCache = 0;
  T0 = now();
  for (const Cell &C : Checks) {
    Request Req = Request::check(C.Impl, C.Test).model(C.Model);
    Result R;
    if (RV.check(Req, R) && R.FromCache)
      ++SecondPassFromCache;
  }
  double WarmSeconds = now() - T0;
  unsigned long long SecondPassHits = Server.stats().Cache.Hits - HitsBefore;

  // -- Concurrent clients hammer the warm cache: pure dispatch + wire
  // throughput across the shard pool.
  const int PerClient = benchutil::fullRun() ? 32 : 12;
  std::vector<std::thread> Threads;
  std::atomic<int> ThroughputFailures{0};
  T0 = now();
  for (int I = 0; I < Clients; ++I)
    Threads.emplace_back([&, I] {
      RemoteVerifier Client(Url);
      const Cell &C = Checks[I % Checks.size()];
      Request Req = Request::check(C.Impl, C.Test).model(C.Model);
      for (int N = 0; N < PerClient; ++N) {
        Result R;
        if (!Client.check(Req, R))
          ++ThroughputFailures;
      }
    });
  for (std::thread &T : Threads)
    T.join();
  double ConcurrentSeconds = now() - T0;
  double Throughput =
      ConcurrentSeconds > 0 ? Clients * PerClient / ConcurrentSeconds : 0;

  ServerStats Stats = Server.stats();
  Server.requestStop();
  Server.waitStopped();

  std::printf("server: %d version probes in %.3fs (%.2fms each)\n",
              Probes, ProbeSeconds, 1e3 * ProbeSeconds / Probes);
  std::printf("cold pass: %zu checks + matrix + analysis in %.3fs\n",
              Checks.size(), ColdSeconds);
  std::printf("warm pass: %d/%zu from cache in %.3fs\n",
              SecondPassFromCache, Checks.size(), WarmSeconds);
  std::printf("throughput: %d clients x %d checks -> %.1f req/s\n",
              Clients, PerClient, Throughput);
  std::printf("served %llu, rejected %llu, errors %llu\n", Stats.Served,
              Stats.Rejected, Stats.Errors);

  benchutil::BenchReport Report("server", Opts);
  Report.context("clients", std::to_string(Clients))
      .context("checks", std::to_string(Checks.size()));
  Report
      .metric("remote_json_identical", Identical, "bool", true, "equal")
      .metric("probe_failures", ProbeFailures, "count", true, "equal")
      .metric("pass_failures",
              PassFailures + ThroughputFailures.load(), "count", true,
              "equal")
      .metric("second_pass_from_cache", SecondPassFromCache, "count",
              true, "equal")
      .metric("second_pass_cache_hits",
              static_cast<double>(SecondPassHits), "count", true,
              "equal")
      .metric("requests_rejected", static_cast<double>(Stats.Rejected),
              "count", true, "equal")
      .metric("rpc_overhead_ms", 1e3 * ProbeSeconds / Probes, "ms",
              false, "lower")
      .metric("cold_pass_seconds", ColdSeconds, "seconds", false,
              "lower")
      .metric("warm_pass_seconds", WarmSeconds, "seconds", false,
              "lower")
      .metric("warm_speedup",
              WarmSeconds > 0 ? ColdSeconds / WarmSeconds : 0, "ratio",
              false, "higher")
      .metric("concurrent_throughput_rps", Throughput, "req/s", false,
              "higher");
  if (!Report.write(Opts))
    return 1;
  return ProbeFailures || PassFailures || ThroughputFailures ||
                 !Identical
             ? 1
             : 0;
}
