//===--- BenchUtil.h - shared helpers for the benchmark binaries -*- C++ -*-==//
//
// Part of the CheckFence reproduction (PLDI'07).
//
//===----------------------------------------------------------------------===//

#ifndef CHECKFENCE_BENCH_BENCHUTIL_H
#define CHECKFENCE_BENCH_BENCHUTIL_H

#include "harness/Catalog.h"
#include "impls/Impls.h"

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace benchutil {

/// True when CF_BENCH_FULL=1: run the paper's full test grid instead of
/// the quick default subset.
inline bool fullRun() {
  const char *E = std::getenv("CF_BENCH_FULL");
  return E && std::string(E) == "1";
}

/// The (impl, test) pairs exercised by the Fig. 10-style benches. The
/// quick subset keeps every bench binary under a few minutes.
inline std::vector<std::pair<std::string, std::string>> benchGrid() {
  using P = std::pair<std::string, std::string>;
  std::vector<P> Quick = {
      {"ms2", "T0"},      {"ms2", "Tpc2"}, {"ms2", "Ti2"},
      {"msn", "T0"},      {"msn", "Tpc2"},
      {"lazylist", "Sac"}, {"lazylist", "Sar"},
      {"harris", "Sac"},  {"harris", "Sar"},
      {"snark", "Da"},    {"snark", "D0"},
  };
  if (!fullRun())
    return Quick;
  std::vector<P> Full = Quick;
  for (const char *T : {"T1", "Tpc3", "Ti3", "T53"})
    Full.push_back({"ms2", T});
  for (const char *T : {"Ti2", "Tpc3"})
    Full.push_back({"msn", T});
  for (const char *T : {"Sacr", "Saa"})
    Full.push_back({"lazylist", T});
  Full.push_back({"harris", "Saa"});
  Full.push_back({"snark", "Db"});
  return Full;
}

/// Runs a catalog test on an implementation and returns the result.
inline checkfence::checker::CheckResult
runOne(const std::string &Impl, const std::string &Test,
       checkfence::harness::RunOptions Opts) {
  using namespace checkfence;
  return harness::runTest(impls::sourceFor(Impl),
                          harness::testByName(Test), Opts);
}

} // namespace benchutil

#endif // CHECKFENCE_BENCH_BENCHUTIL_H
