//===--- BenchUtil.h - shared flags + JSON schema for benches ---*- C++ -*-==//
//
// Part of the CheckFence reproduction (PLDI'07).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The contract every bench_* binary shares: the `--json PATH` / `--seed N`
/// flags and the one machine-readable report schema the perf-trajectory
/// tooling (scripts/bench_compare.py, the CI perf job) consumes.
///
/// Deliberately public-safe: standard library only, no src/ includes, so
/// the public-API benches (bench_matrix, bench_fences, bench_explore) can
/// use it without crossing the API boundary. Engine-layer helpers live in
/// BenchGrid.h instead.
///
/// Schema (bench_schema_version 1):
///
///   {
///     "bench_schema_version": 1,
///     "bench": "<name>",
///     "seed": <N>,
///     "full": <bool>,            // CF_BENCH_FULL grid widening
///     "context": { "<k>": "<v>", ... },
///     "metrics": [
///       {"name": "...", "value": <number>, "unit": "...",
///        "gate": <bool>, "better": "lower"|"higher"|"equal"},
///       ...
///     ]
///   }
///
/// "gate": true marks a metric the CI perf job fails on; "better" tells
/// the comparator which direction is a regression. Wall-clock metrics are
/// recorded but typically not gated (baselines travel across machines);
/// the gated set is ratios and machine-independent counts.
///
//===----------------------------------------------------------------------===//

#ifndef CHECKFENCE_BENCH_BENCHUTIL_H
#define CHECKFENCE_BENCH_BENCHUTIL_H

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace benchutil {

/// The schema version stamped into every bench report.
inline constexpr int BenchSchemaVersion = 1;

/// True when CF_BENCH_FULL=1: run the paper's full test grid instead of
/// the quick default subset.
inline bool fullRun() {
  const char *E = std::getenv("CF_BENCH_FULL");
  return E && std::string(E) == "1";
}

/// The flags shared by every bench binary.
struct Options {
  /// Where to write the JSON report: empty = no report, "-" = stdout.
  /// Human-readable output always goes to stdout, so a file path is the
  /// normal choice ("-" is only clean for benches that print nothing
  /// else).
  std::string JsonPath;
  /// Deterministic seed, recorded in the report; benches with a seeded
  /// workload (explore) feed it through.
  unsigned long long Seed = 1;
};

/// Strips `--json PATH` and `--seed N` out of argv (compacting it in
/// place and updating argc) so wrappers that own the remaining flags -
/// google-benchmark in bench_solver - still see theirs. Unrecognized
/// arguments are left alone. Returns false (with a message on stderr) on
/// a malformed flag.
inline bool parseBenchArgs(int &Argc, char **Argv, Options &Out) {
  int Kept = 1;
  for (int I = 1; I < Argc; ++I) {
    std::string A = Argv[I];
    if (A == "--json" || A == "--seed") {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "%s requires an argument\n", A.c_str());
        return false;
      }
      const char *V = Argv[++I];
      if (A == "--json")
        Out.JsonPath = V;
      else
        Out.Seed = std::strtoull(V, nullptr, 10);
      continue;
    }
    Argv[Kept++] = Argv[I];
  }
  Argc = Kept;
  return true;
}

/// Accumulates metrics and renders the shared report schema.
class BenchReport {
public:
  BenchReport(std::string Bench, const Options &Opts)
      : Bench(std::move(Bench)), Seed(Opts.Seed), Full(fullRun()) {}

  /// Adds one metric. \p Better is "lower", "higher", or "equal"; \p Gate
  /// marks it for the CI regression comparator.
  BenchReport &metric(const std::string &Name, double Value,
                      const std::string &Unit, bool Gate = false,
                      const std::string &Better = "lower") {
    Metrics.push_back({Name, Value, Unit, Gate, Better});
    return *this;
  }

  /// Adds one free-form string context field (machine notes, grid names).
  BenchReport &context(const std::string &Key, const std::string &Value) {
    Context.push_back({Key, Value});
    return *this;
  }

  std::string json() const {
    std::string S = "{\n";
    char Buf[160];
    std::snprintf(Buf, sizeof(Buf),
                  "  \"bench_schema_version\": %d,\n  \"bench\": \"%s\",\n"
                  "  \"seed\": %llu,\n  \"full\": %s,\n",
                  BenchSchemaVersion, Bench.c_str(), Seed,
                  Full ? "true" : "false");
    S += Buf;
    S += "  \"context\": {";
    for (size_t I = 0; I < Context.size(); ++I)
      S += (I ? ", " : "") + quoted(Context[I].first) + ": " +
           quoted(Context[I].second);
    S += "},\n  \"metrics\": [\n";
    for (size_t I = 0; I < Metrics.size(); ++I) {
      const Metric &M = Metrics[I];
      std::snprintf(Buf, sizeof(Buf),
                    "    {\"name\": \"%s\", \"value\": %.6g, "
                    "\"unit\": \"%s\", \"gate\": %s, \"better\": \"%s\"}%s\n",
                    M.Name.c_str(), M.Value, M.Unit.c_str(),
                    M.Gate ? "true" : "false", M.Better.c_str(),
                    I + 1 < Metrics.size() ? "," : "");
      S += Buf;
    }
    S += "  ]\n}\n";
    return S;
  }

  /// Writes the report to Opts.JsonPath when set ("-" = stdout). Returns
  /// false (with a message) when the file cannot be written.
  bool write(const Options &Opts) const {
    if (Opts.JsonPath.empty())
      return true;
    std::string S = json();
    if (Opts.JsonPath == "-") {
      std::fwrite(S.data(), 1, S.size(), stdout);
      return true;
    }
    std::FILE *F = std::fopen(Opts.JsonPath.c_str(), "w");
    if (!F) {
      std::fprintf(stderr, "cannot write %s\n", Opts.JsonPath.c_str());
      return false;
    }
    std::fwrite(S.data(), 1, S.size(), F);
    std::fclose(F);
    return true;
  }

private:
  struct Metric {
    std::string Name;
    double Value;
    std::string Unit;
    bool Gate;
    std::string Better;
  };

  static std::string quoted(const std::string &S) {
    std::string Out = "\"";
    for (char C : S) {
      if (C == '"' || C == '\\')
        Out += '\\';
      Out += C;
    }
    return Out + "\"";
  }

  std::string Bench;
  unsigned long long Seed;
  bool Full;
  std::vector<std::pair<std::string, std::string>> Context;
  std::vector<Metric> Metrics;
};

} // namespace benchutil

#endif // CHECKFENCE_BENCH_BENCHUTIL_H
