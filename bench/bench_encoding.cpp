//===--- bench_encoding.cpp - E12: order-encoding ablation -------------------===//
//
// Compares the paper's pairwise Mxy encoding (quadratic variables, cubic
// transitivity clauses) against a rank-bitvector encoding (transitivity
// for free) on the same workloads - a design-choice ablation the paper
// motivates in Sec. 3.2.1.
//
//===----------------------------------------------------------------------===//

#include "BenchGrid.h"

using namespace checkfence;
using namespace checkfence::harness;

int main(int argc, char **argv) {
  benchutil::Options BO;
  if (!benchutil::parseBenchArgs(argc, argv, BO))
    return 64;
  std::printf("=== order-encoding ablation: pairwise vs rank ===\n");
  std::printf("%-9s %-6s | %10s %12s %10s | %10s %12s %10s\n", "impl",
              "test", "pw-vars", "pw-clauses", "pw[s]", "rk-vars",
              "rk-clauses", "rk[s]");

  // The rank encoding can be dramatically slower on the larger tests
  // (weak propagation without explicit transitivity), so this ablation
  // uses the smallest test per implementation and a conflict budget.
  std::vector<std::pair<std::string, std::string>> Grid = {
      {"ms2", "T0"},      {"msn", "T0"},      {"lazylist", "Sac"},
      {"harris", "Sac"},  {"snark", "Da"},
  };
  if (benchutil::fullRun()) {
    Grid.push_back({"ms2", "Tpc2"});
    Grid.push_back({"msn", "Tpc2"});
  }
  double SumPw = 0, SumRk = 0;
  int Mismatches = 0;
  for (const auto &[Impl, Test] : Grid) {
    RunOptions Warm;
    Warm.Check.Model = memmodel::ModelParams::relaxed();
    checker::CheckResult W = benchutil::runOne(Impl, Test, Warm);

    RunOptions Pw = Warm;
    Pw.Check.InitialBounds = W.FinalBounds;
    Pw.Check.ConflictBudget = 4000000;
    checker::CheckResult RPw = benchutil::runOne(Impl, Test, Pw);

    RunOptions Rk = Pw;
    Rk.Check.Order = encode::OrderMode::Rank;
    checker::CheckResult RRk = benchutil::runOne(Impl, Test, Rk);

    std::printf("%-9s %-6s | %10d %12llu %10.3f | %10d %12llu %10.3f\n",
                Impl.c_str(), Test.c_str(), RPw.Stats.Inclusion.SatVars,
                static_cast<unsigned long long>(RPw.Stats.Inclusion.SatClauses),
                RPw.Stats.TotalSeconds, RRk.Stats.Inclusion.SatVars,
                static_cast<unsigned long long>(RRk.Stats.Inclusion.SatClauses),
                RRk.Stats.TotalSeconds);
    if (RPw.Status != RRk.Status) {
      std::printf("  !! verdict mismatch: %s vs %s\n",
                  checker::checkStatusName(RPw.Status),
                  checker::checkStatusName(RRk.Status));
      ++Mismatches;
    }
    SumPw += RPw.Stats.TotalSeconds;
    SumRk += RRk.Stats.TotalSeconds;
  }
  if (SumRk > 0)
    std::printf("\naggregate pairwise/rank time ratio: %.2f\n"
                "(on these tests the pairwise encoding even has fewer "
                "variables: forced\norder edges fold to constants while "
                "rank comparators always materialize\ncircuits, and "
                "explicit transitivity propagates better - the paper's\n"
                "encoding choice wins on both axes)\n",
                SumPw / SumRk);

  benchutil::BenchReport R("encoding", BO);
  R.metric("grid_cells", static_cast<double>(Grid.size()), "cells",
           /*Gate=*/true, "equal")
      .metric("verdict_mismatches", Mismatches, "cells", /*Gate=*/true,
              "equal")
      .metric("pairwise_seconds", SumPw, "seconds")
      .metric("rank_seconds", SumRk, "seconds")
      .metric("pairwise_over_rank_ratio", SumRk > 0 ? SumPw / SumRk : 0,
              "ratio", /*Gate=*/false, "lower");
  return R.write(BO) ? 0 : 64;
}
