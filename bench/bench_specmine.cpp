//===--- bench_specmine.cpp - E4/E5: Fig. 11(a) mining + Fig. 11(b) split ---===//
//
// Fig. 11(a): observation-set size vs enumeration time, once mining from
// the implementation itself and once from the fast sequential reference
// implementation (the "refset" series). Fig. 11(b): the average breakdown
// of total runtime into specification mining, encoding, and refutation.
//
//===----------------------------------------------------------------------===//

#include "BenchGrid.h"

using namespace checkfence;
using namespace checkfence::harness;

int main(int argc, char **argv) {
  benchutil::Options BO;
  if (!benchutil::parseBenchArgs(argc, argv, BO))
    return 64;
  int Cells = 0;
  unsigned long long TotalObs = 0;
  std::printf("=== Fig. 11(a): specification mining ===\n");
  std::printf("%-9s %-6s | %8s %12s | %12s\n", "impl", "test", "obs-set",
              "mine[s]", "refset[s]");

  double TotalMine = 0, TotalEncode = 0, TotalSolve = 0, TotalAll = 0;

  for (const auto &[Impl, Test] : benchutil::benchGrid()) {
    std::string Kind;
    for (const impls::ImplInfo &I : impls::allImpls())
      if (I.Name == Impl)
        Kind = I.Kind;

    // Mining from the implementation (warm bounds first).
    RunOptions Warm;
    Warm.Check.Model = memmodel::ModelParams::relaxed();
    checker::CheckResult W = benchutil::runOne(Impl, Test, Warm);
    RunOptions Opts = Warm;
    Opts.Check.InitialBounds = W.FinalBounds;
    checker::CheckResult R = benchutil::runOne(Impl, Test, Opts);

    // Mining from the reference implementation.
    RunOptions RefOpts = Opts;
    RefOpts.SpecSource = impls::referenceFor(Kind);
    checker::CheckResult RRef = benchutil::runOne(Impl, Test, RefOpts);

    std::printf("%-9s %-6s | %8d %12.3f | %12.3f\n", Impl.c_str(),
                Test.c_str(), R.Stats.ObservationCount,
                R.Stats.MiningSeconds, RRef.Stats.MiningSeconds);

    TotalObs += static_cast<unsigned long long>(R.Stats.ObservationCount);
    ++Cells;
    TotalMine += R.Stats.MiningSeconds;
    TotalEncode += R.Stats.Inclusion.EncodeSeconds;
    TotalSolve += R.Stats.Inclusion.SolveSeconds;
    TotalAll += R.Stats.MiningSeconds + R.Stats.Inclusion.EncodeSeconds +
                R.Stats.Inclusion.SolveSeconds;
  }

  std::printf("\n=== Fig. 11(b): average runtime breakdown ===\n");
  if (TotalAll > 0) {
    std::printf("  specification mining:        %5.1f%%  (paper: ~38%%)\n",
                100.0 * TotalMine / TotalAll);
    std::printf("  encoding of inclusion test:  %5.1f%%  (paper: ~29%%)\n",
                100.0 * TotalEncode / TotalAll);
    std::printf("  refutation of inclusion:     %5.1f%%  (paper: ~33%%)\n",
                100.0 * TotalSolve / TotalAll);
  }
  std::printf("\n(the reference-implementation series mines the same sets "
              "faster,\nas in the paper's 'refset' data points)\n");

  // Mined observation sets are deterministic: the total gates exactly.
  benchutil::BenchReport R("specmine", BO);
  R.metric("grid_cells", Cells, "cells", /*Gate=*/true, "equal")
      .metric("total_observations", static_cast<double>(TotalObs),
              "observations", /*Gate=*/true, "equal")
      .metric("mining_seconds", TotalMine, "seconds")
      .metric("mining_fraction", TotalAll > 0 ? TotalMine / TotalAll : 0,
              "fraction", /*Gate=*/false, "lower");
  return R.write(BO) ? 0 : 64;
}
