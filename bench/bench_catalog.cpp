//===--- bench_catalog.cpp - E1: Table 1 and Fig. 8 inventory ---------------===//
//
// Prints the studied implementations (paper Table 1) and the symbolic test
// catalog (paper Fig. 8) with their expansion sizes.
//
//===----------------------------------------------------------------------===//

#include "harness/Catalog.h"
#include "impls/Impls.h"

#include <cstdio>

using namespace checkfence;
using namespace checkfence::harness;

int main() {
  std::printf("=== Table 1: the studied implementations ===\n");
  for (const impls::ImplInfo &I : impls::allImpls())
    std::printf("  %-9s %-6s %s\n", I.Name.c_str(), I.Kind.c_str(),
                I.Description.c_str());

  std::printf("\n=== Fig. 8: the symbolic tests ===\n");
  std::printf("  %-8s %-6s %-36s %8s %8s\n", "name", "kind", "notation",
              "threads", "ops");
  for (const CatalogEntry &E : paperTests()) {
    TestSpec T = testByName(E.Name);
    std::printf("  %-8s %-6s %-36s %8zu %8d\n", E.Name.c_str(),
                E.Kind.c_str(), E.Notation.c_str(), T.Threads.size(),
                T.numOperations());
  }

  std::printf("\n=== extension tests (Treiber stack, beyond the paper) "
              "===\n");
  for (const CatalogEntry &E : extensionTests()) {
    TestSpec T = testByName(E.Name);
    std::printf("  %-8s %-6s %-36s %8zu %8d\n", E.Name.c_str(),
                E.Kind.c_str(), E.Notation.c_str(), T.Threads.size(),
                T.numOperations());
  }
  return 0;
}
