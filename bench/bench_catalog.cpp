//===--- bench_catalog.cpp - E1: Table 1 and Fig. 8 inventory ---------------===//
//
// Prints the studied implementations (paper Table 1) and the symbolic test
// catalog (paper Fig. 8) with their expansion sizes.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "harness/Catalog.h"
#include "impls/Impls.h"

#include <cstdio>

using namespace checkfence;
using namespace checkfence::harness;

int main(int argc, char **argv) {
  benchutil::Options BO;
  if (!benchutil::parseBenchArgs(argc, argv, BO))
    return 64;
  int PaperOps = 0;
  std::printf("=== Table 1: the studied implementations ===\n");
  for (const impls::ImplInfo &I : impls::allImpls())
    std::printf("  %-9s %-6s %s\n", I.Name.c_str(), I.Kind.c_str(),
                I.Description.c_str());

  std::printf("\n=== Fig. 8: the symbolic tests ===\n");
  std::printf("  %-8s %-6s %-36s %8s %8s\n", "name", "kind", "notation",
              "threads", "ops");
  for (const CatalogEntry &E : paperTests()) {
    TestSpec T = testByName(E.Name);
    std::printf("  %-8s %-6s %-36s %8zu %8d\n", E.Name.c_str(),
                E.Kind.c_str(), E.Notation.c_str(), T.Threads.size(),
                T.numOperations());
    PaperOps += T.numOperations();
  }

  std::printf("\n=== extension tests (Treiber stack, beyond the paper) "
              "===\n");
  for (const CatalogEntry &E : extensionTests()) {
    TestSpec T = testByName(E.Name);
    std::printf("  %-8s %-6s %-36s %8zu %8d\n", E.Name.c_str(),
                E.Kind.c_str(), E.Notation.c_str(), T.Threads.size(),
                T.numOperations());
  }
  // The inventory is pure metadata; everything gates on exact equality.
  benchutil::BenchReport R("catalog", BO);
  R.metric("implementations",
           static_cast<double>(impls::allImpls().size()), "impls",
           /*Gate=*/true, "equal")
      .metric("paper_tests", static_cast<double>(paperTests().size()),
              "tests", /*Gate=*/true, "equal")
      .metric("extension_tests",
              static_cast<double>(extensionTests().size()), "tests",
              /*Gate=*/true, "equal")
      .metric("paper_test_operations", PaperOps, "ops", /*Gate=*/true,
              "equal");
  return R.write(BO) ? 0 : 64;
}
