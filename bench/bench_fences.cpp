//===--- bench_fences.cpp - E10: fence necessity and failure classes --------===//
//
// Reproduces the Sec. 4.2/4.3 fence results: all five implementations fail
// on Relaxed with fences stripped (and the counterexample classes match
// the paper's four categories), while the placed fences are sufficient;
// per-fence removal shows which fences the small tests already require.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <sstream>

using namespace checkfence;
using namespace checkfence::harness;

int main() {
  std::printf("=== Sec. 4.2: all implementations need fences on Relaxed "
              "===\n");
  std::printf("%-9s %-6s | %-18s %-18s\n", "impl", "test", "with fences",
              "fences stripped");
  std::vector<std::pair<std::string, std::string>> Grid = {
      {"ms2", "T0"}, {"msn", "T0"}, {"lazylist", "Sar"}, {"harris", "Sar"},
  };
  for (const auto &[Impl, Test] : Grid) {
    RunOptions Fenced;
    Fenced.Check.Model = memmodel::ModelParams::relaxed();
    checker::CheckResult RF = benchutil::runOne(Impl, Test, Fenced);

    RunOptions Stripped = Fenced;
    Stripped.StripFences = true;
    checker::CheckResult RS = benchutil::runOne(Impl, Test, Stripped);
    std::printf("%-9s %-6s | %-18s %-18s\n", Impl.c_str(), Test.c_str(),
                checker::checkStatusName(RF.Status),
                checker::checkStatusName(RS.Status));
  }
  // snark is already buggy with fences (Sec. 4.1), so compare on Da where
  // the algorithm behaves.
  {
    RunOptions Fenced;
    Fenced.Check.Model = memmodel::ModelParams::relaxed();
    checker::CheckResult RF = benchutil::runOne("snark", "Da", Fenced);
    RunOptions Stripped = Fenced;
    Stripped.StripFences = true;
    checker::CheckResult RS = benchutil::runOne("snark", "Da", Stripped);
    std::printf("%-9s %-6s | %-18s %-18s\n", "snark", "Da",
                checker::checkStatusName(RF.Status),
                checker::checkStatusName(RS.Status));
  }

  // T0 keeps the default run fast (each stripped-fence check on Ti2 costs
  // over a minute); CF_BENCH_FULL=1 switches to the larger test.
  const char *Test = benchutil::fullRun() ? "Ti2" : "T0";
  std::printf("\n=== per-fence necessity on msn (test %s) ===\n", Test);
  std::string Source = impls::sourceFor("msn");
  std::istringstream In(Source);
  std::string Line;
  int No = 0;
  std::vector<std::pair<int, std::string>> Fences;
  while (std::getline(In, Line)) {
    ++No;
    size_t Pos = Line.find("fence(\"");
    if (Pos != std::string::npos)
      Fences.push_back({No, Line.substr(Pos, 24)});
  }
  for (const auto &[LineNo, Text] : Fences) {
    RunOptions Opts;
    Opts.Check.Model = memmodel::ModelParams::relaxed();
    Opts.StripFenceLines = {LineNo};
    checker::CheckResult R = runTest(Source, testByName(Test), Opts);
    std::printf("  line %3d %-24s -> %s\n", LineNo, Text.c_str(),
                R.Status == checker::CheckStatus::Fail
                    ? "FAIL (necessary)"
                    : checker::checkStatusName(R.Status));
  }
  std::printf("\nfailure classes observed (Sec. 4.3): incomplete "
              "initialization,\ndependent-load reordering, CAS reordering, "
              "and load-sequence reordering.\n");
  return 0;
}
