//===--- bench_fences.cpp - E10: fence necessity and failure classes --------===//
//
// Reproduces the Sec. 4.2/4.3 fence results: all five implementations fail
// on Relaxed with fences stripped (and the counterexample classes match
// the paper's four categories), while the placed fences are sufficient;
// per-fence removal shows which fences the small tests already require.
//
// Runs entirely through the public API (include/checkfence/).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "checkfence/checkfence.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

using namespace checkfence;

int main(int argc, char **argv) {
  benchutil::Options BO;
  if (!benchutil::parseBenchArgs(argc, argv, BO))
    return 64;
  Verifier V;

  std::printf("=== Sec. 4.2: all implementations need fences on Relaxed "
              "===\n");
  std::printf("%-9s %-6s | %-18s %-18s\n", "impl", "test", "with fences",
              "fences stripped");
  std::vector<std::pair<std::string, std::string>> Grid = {
      {"ms2", "T0"}, {"msn", "T0"}, {"lazylist", "Sar"}, {"harris", "Sar"},
      // snark is already buggy with fences (Sec. 4.1), so compare on Da
      // where the algorithm behaves.
      {"snark", "Da"},
  };
  int FencedPass = 0, StrippedFail = 0;
  for (const auto &[Impl, Test] : Grid) {
    Result RF =
        V.check(Request::check(Impl, Test).model("relaxed"));
    Result RS = V.check(
        Request::check(Impl, Test).model("relaxed").stripFences());
    std::printf("%-9s %-6s | %-18s %-18s\n", Impl.c_str(), Test.c_str(),
                statusName(RF.Verdict), statusName(RS.Verdict));
    FencedPass += RF.Verdict == Status::Pass;
    StrippedFail += RS.Verdict == Status::Fail;
  }

  // T0 keeps the default run fast (each stripped-fence check on Ti2 costs
  // over a minute); CF_BENCH_FULL=1 switches to the larger test.
  const char *Test = benchutil::fullRun() ? "Ti2" : "T0";
  std::printf("\n=== per-fence necessity on msn (test %s) ===\n", Test);
  std::string Source = implementationSource("msn");
  std::istringstream In(Source);
  std::string Line;
  int No = 0;
  std::vector<std::pair<int, std::string>> Fences;
  while (std::getline(In, Line)) {
    ++No;
    size_t Pos = Line.find("fence(\"");
    if (Pos != std::string::npos)
      Fences.push_back({No, Line.substr(Pos, 24)});
  }
  int Necessary = 0;
  for (const auto &[LineNo, Text] : Fences) {
    Result R = V.check(Request::check("msn", Test)
                           .model("relaxed")
                           .stripFenceLine(LineNo));
    std::printf("  line %3d %-24s -> %s\n", LineNo, Text.c_str(),
                R.Verdict == Status::Fail ? "FAIL (necessary)"
                                          : statusName(R.Verdict));
    Necessary += R.Verdict == Status::Fail;
  }
  std::printf("\nfailure classes observed (Sec. 4.3): incomplete "
              "initialization,\ndependent-load reordering, CAS reordering, "
              "and load-sequence reordering.\n");

  // Every metric here is a verdict count - fully deterministic, so the
  // trajectory gates on exact equality.
  benchutil::BenchReport R("fences", BO);
  R.metric("grid_cells", static_cast<double>(Grid.size()), "cells",
           /*Gate=*/true, "equal")
      .metric("fenced_pass", FencedPass, "cells", /*Gate=*/true, "equal")
      .metric("stripped_fail", StrippedFail, "cells", /*Gate=*/true,
              "equal")
      .metric("fences_in_msn", static_cast<double>(Fences.size()),
              "fences", /*Gate=*/true, "equal")
      .metric("necessary_fences", Necessary, "fences", /*Gate=*/true,
              "equal");
  return R.write(BO) ? 0 : 64;
}
