//===--- bench_explore.cpp - exploration throughput --------------------------===//
//
// Part of the CheckFence reproduction (PLDI'07).
//
// Measures the explore subsystem's scenario throughput through the
// public Verifier API: one fixed-seed budget at one worker and at N
// workers, reported as scenarios/sec plus the parallel speedup, and a
// determinism cross-check (the timing-free reports must be
// byte-identical). `--json PATH` writes the shared bench schema (see
// BenchUtil.h) for scripts/bench_compare.py; `--seed N` seeds the
// exploration itself. CF_BENCH_FULL=1 widens the budget; CF_BENCH_JOBS
// overrides the parallel job count (default 4).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "checkfence/checkfence.h"

#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

using namespace checkfence;

namespace {

int envInt(const char *Name, int Default) {
  const char *E = std::getenv(Name);
  return E ? std::atoi(E) : Default;
}

} // namespace

int main(int argc, char **argv) {
  benchutil::Options BO;
  if (!benchutil::parseBenchArgs(argc, argv, BO))
    return 64;
  const int Budget = benchutil::fullRun() ? 400 : 100;
  const int Jobs = envInt("CF_BENCH_JOBS", 4);

  Request Base = Request::explore()
                     .seed(static_cast<unsigned>(BO.Seed))
                     .budget(Budget);

  Verifier V1;
  ExploreOutcome Serial = V1.explore(Request(Base).jobs(1));
  Verifier VN;
  ExploreOutcome Parallel = VN.explore(Request(Base).jobs(Jobs));

  if (!Serial.ok() || !Parallel.ok()) {
    std::fprintf(stderr, "explore failed: %s\n",
                 (!Serial.ok() ? Serial : Parallel).error().c_str());
    return 1;
  }

  const bool Identical =
      Serial.json(/*IncludeTimings=*/false) ==
      Parallel.json(/*IncludeTimings=*/false);
  const double S1 = Serial.wallSeconds();
  const double SN = Parallel.wallSeconds();

  std::printf("{\n");
  std::printf("  \"bench\": \"explore\",\n");
  std::printf("  \"budget\": %d,\n", Budget);
  std::printf("  \"scenarios_run\": %d,\n", Serial.run());
  std::printf("  \"divergences\": %d,\n",
              static_cast<int>(Serial.divergences().size()));
  std::printf("  \"jobs\": %d,\n", Jobs);
  std::printf("  \"serial_seconds\": %.3f,\n", S1);
  std::printf("  \"parallel_seconds\": %.3f,\n", SN);
  std::printf("  \"serial_scenarios_per_sec\": %.2f,\n",
              S1 > 0 ? Serial.run() / S1 : 0);
  std::printf("  \"parallel_scenarios_per_sec\": %.2f,\n",
              SN > 0 ? Parallel.run() / SN : 0);
  std::printf("  \"speedup\": %.3f,\n", SN > 0 ? S1 / SN : 0);
  std::printf("  \"reports_identical\": %s\n", Identical ? "true" : "false");
  std::printf("}\n");

  // The trajectory report. Scenario and divergence counts are seeded and
  // deterministic, so they gate exactly; wall clocks are recorded but not
  // gated (baselines travel across machines).
  benchutil::BenchReport R("explore", BO);
  R.context("budget", std::to_string(Budget))
      .context("host_cores",
               std::to_string(std::thread::hardware_concurrency()));
  R.metric("scenarios_run", Serial.run(), "scenarios", /*Gate=*/true,
           "equal")
      .metric("divergences",
              static_cast<double>(Serial.divergences().size()),
              "divergences", /*Gate=*/true, "equal")
      .metric("reports_identical", Identical ? 1 : 0, "bool",
              /*Gate=*/true, "equal")
      .metric("serial_seconds", S1, "seconds")
      .metric("parallel_seconds", SN, "seconds")
      .metric("serial_scenarios_per_sec", S1 > 0 ? Serial.run() / S1 : 0,
              "scenarios/s", /*Gate=*/false, "higher")
      .metric("jobs_speedup", SN > 0 ? S1 / SN : 0, "ratio",
              /*Gate=*/false, "higher");
  if (!R.write(BO))
    return 64;

  return Identical ? 0 : 1;
}
