//===--- CheckSession.h - incremental check orchestration -------*- C++ -*-==//
//
// Part of the CheckFence reproduction (PLDI'07).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The session engine behind checker::runCheck. A CheckSession owns two
/// persistent SolveContexts - one for the Serial model (specification
/// mining and refset probing), one for the target model (inclusion checks
/// and bound probes) - and drives the paper's mine -> include -> probe
/// iteration (Fig. 1/3, Sec. 3.3) incrementally on them:
///
///  * The inclusion check and the bound probe of one round share a single
///    encoding; assumptions over activation literals switch between
///    "within bounds + specification" and "some bound exceeded".
///  * When lazy unrolling grows a loop bound, the new unrolling is
///    *appended* to the same solver (variables and clauses only ever grow;
///    learnt clauses, phases and activities survive) instead of starting a
///    fresh solver per probe as the from-scratch pipeline does.
///  * Mining is skipped entirely when the mined program's bounds did not
///    change since the last completed enumeration - the re-run would
///    reproduce the identical observation set.
///
/// Per-round solver-size snapshots are recorded so tests can assert the
/// no-reset property directly.
///
//===----------------------------------------------------------------------===//

#ifndef CHECKFENCE_ENGINE_CHECKSESSION_H
#define CHECKFENCE_ENGINE_CHECKSESSION_H

#include "checker/CheckFence.h"
#include "checker/SolveContext.h"
#include "engine/Portfolio.h"

#include <vector>

namespace checkfence {
namespace engine {

/// Solver sizes at the end of one mine/include/probe round. Within one
/// check these grow monotonically - the solvers are never reset.
struct SessionSnapshot {
  int Round = 0;          ///< 1-based bound iteration
  int MineVars = 0;       ///< serial-context solver variables
  size_t MineClauses = 0; ///< serial-context problem clauses
  int CheckVars = 0;      ///< target-context solver variables
  size_t CheckClauses = 0;
};

class CheckSession {
public:
  explicit CheckSession(const checker::CheckOptions &Opts) : Opts(Opts) {}

  /// Runs the full check on this session's persistent contexts. May be
  /// called repeatedly (e.g. by fence synthesis on program variants);
  /// every call appends to the same solvers.
  checker::CheckResult check(const lsl::Program &ImplProg,
                             const std::vector<std::string> &ThreadProcs,
                             const lsl::Program *SpecProg = nullptr);

  /// Replaces the streaming/cancellation hooks for subsequent check()
  /// calls. Hooks are per-request state, not part of a session's
  /// identity, so pools reusing a session swap them in here.
  void setHooks(const checker::CheckHooks &Hooks) { Opts.Hooks = Hooks; }

  /// Replaces the portfolio width and shared worker budget for subsequent
  /// check() calls. Like hooks, parallelism is per-request state (results
  /// are width-invariant by contract); pools MUST clear the budget
  /// pointer when a request ends - it points at request-owned storage.
  void setParallelism(int PortfolioWidth, support::WorkerBudget *Budget) {
    Opts.PortfolioWidth = PortfolioWidth;
    Opts.Budget = Budget;
  }

  /// One entry per completed bound iteration, across all check() calls.
  const std::vector<SessionSnapshot> &snapshots() const {
    return Snapshots;
  }

  const checker::SolveContext &mineContext() const { return MineCtx; }
  const checker::SolveContext &checkContext() const { return CheckCtx; }

  /// Total problem clauses across both persistent solvers. Grows
  /// monotonically over the session's lifetime; pools use it to retire
  /// sessions instead of reusing them into pathological sizes.
  size_t totalClauses() const {
    return MineCtx.solver().numClauses() +
           CheckCtx.solver().numClauses();
  }

private:
  void snapshot(int Round);

  checker::CheckOptions Opts;
  checker::SolveContext MineCtx; ///< Serial model: mining + refset probe
  /// Target model: inclusion + probe. Mirrored so the portfolio can
  /// replay replicas and the canonical shadow solver from its CNF.
  checker::SolveContext CheckCtx{/*MirrorCnf=*/true};
  SolverPortfolio Portfolio; ///< racing replicas + canonical shadow
  std::vector<SessionSnapshot> Snapshots;
};

} // namespace engine
} // namespace checkfence

#endif // CHECKFENCE_ENGINE_CHECKSESSION_H
