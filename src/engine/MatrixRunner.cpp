//===--- MatrixRunner.cpp - parallel (impl x test x model) runs --------------===//
//
// Part of the CheckFence reproduction (PLDI'07).
//
//===----------------------------------------------------------------------===//

#include "engine/MatrixRunner.h"

#include "engine/WeakestModelSearch.h"
#include "support/Format.h"
#include "support/Timing.h"

#include <atomic>
#include <sstream>
#include <thread>

using namespace checkfence;
using namespace checkfence::engine;
using checker::CheckStatus;

void checkfence::engine::parallelFor(
    int Jobs, size_t Count, const std::function<void(size_t)> &Body) {
  if (Jobs <= 1 || Count <= 1) {
    for (size_t I = 0; I < Count; ++I)
      Body(I);
    return;
  }
  std::atomic<size_t> Next{0};
  size_t Workers = static_cast<size_t>(Jobs) < Count
                       ? static_cast<size_t>(Jobs)
                       : Count;
  std::vector<std::thread> Pool;
  Pool.reserve(Workers);
  for (size_t W = 0; W < Workers; ++W)
    Pool.emplace_back([&] {
      for (;;) {
        size_t I = Next.fetch_add(1);
        if (I >= Count)
          return;
        Body(I);
      }
    });
  for (std::thread &T : Pool)
    T.join();
}

std::string MatrixCell::label() const {
  return Impl + ":" + Test + ":" + memmodel::modelName(Model);
}

int MatrixReport::countWithStatus(CheckStatus S) const {
  int N = 0;
  for (const MatrixCellResult &C : Cells)
    N += C.Result.Status == S;
  return N;
}

bool MatrixReport::allCompleted() const {
  return countWithStatus(CheckStatus::Error) == 0;
}

std::string checkfence::engine::jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size() + 2);
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20)
        Out += formatString("\\u%04x", C);
      else
        Out += C;
    }
  }
  return Out;
}

std::string MatrixReport::json(bool IncludeTimings) const {
  std::ostringstream OS;
  OS << "{\n";
  if (IncludeTimings)
    OS << formatString("  \"jobs\": %d,\n  \"wall_seconds\": %.3f,\n",
                       Jobs, WallSeconds);
  OS << formatString(
      "  \"summary\": {\"pass\": %d, \"fail\": %d, \"sequential_bug\": %d, "
      "\"bounds_exhausted\": %d, \"error\": %d},\n",
      countWithStatus(CheckStatus::Pass), countWithStatus(CheckStatus::Fail),
      countWithStatus(CheckStatus::SequentialBug),
      countWithStatus(CheckStatus::BoundsExhausted),
      countWithStatus(CheckStatus::Error));
  OS << "  \"cells\": [\n";
  for (size_t I = 0; I < Cells.size(); ++I) {
    const MatrixCellResult &C = Cells[I];
    const checker::CheckResult &R = C.Result;
    const checker::EncodeStats &E = R.Stats.Inclusion;
    OS << "    {";
    OS << formatString(
        "\"impl\": \"%s\", \"test\": \"%s\", \"model\": \"%s\", "
        "\"status\": \"%s\", \"message\": \"%s\", \"observations\": %d, "
        "\"bound_iterations\": %d, \"unrolled_instrs\": %d, "
        "\"loads\": %d, \"stores\": %d, \"sat_vars\": %d, "
        "\"sat_clauses\": %llu",
        jsonEscape(C.Cell.Impl).c_str(), jsonEscape(C.Cell.Test).c_str(),
        memmodel::modelName(C.Cell.Model).c_str(),
        checker::checkStatusName(R.Status), jsonEscape(R.Message).c_str(),
        R.Stats.ObservationCount, R.Stats.BoundIterations,
        E.UnrolledInstrs, E.Loads, E.Stores, E.SatVars,
        static_cast<unsigned long long>(E.SatClauses));
    if (R.Counterexample)
      OS << formatString(
          ", \"counterexample\": \"%s\"",
          jsonEscape(R.Counterexample->Obs.str(
                         R.Counterexample->ObsLabels))
              .c_str());
    if (IncludeTimings)
      OS << formatString(
          ", \"seconds\": %.3f, \"encode_seconds\": %.3f, "
          "\"solve_seconds\": %.3f, \"mining_seconds\": %.3f",
          C.Seconds, E.EncodeSeconds, E.SolveSeconds,
          R.Stats.MiningSeconds);
    OS << "}";
    if (I + 1 < Cells.size())
      OS << ",";
    OS << "\n";
  }
  OS << "  ]";
  // Multi-model sweeps additionally report the weakest passing model per
  // (impl, test). Derived from the verdicts above, so it stays
  // byte-identical across job counts.
  std::vector<WeakestSummary> Summaries = summarizeReport(*this);
  if (Cells.size() > Summaries.size()) {
    OS << ",\n  \"weakest_passing\": ";
    OS << weakestJson(Summaries);
    OS << "\n";
  } else {
    OS << "\n";
  }
  OS << "}\n";
  return OS.str();
}

std::string MatrixReport::table() const {
  std::ostringstream OS;
  OS << formatString("%-10s %-8s %-8s %-16s %8s %6s %9s\n", "impl", "test",
                     "model", "status", "obs", "iters", "seconds");
  for (const MatrixCellResult &C : Cells) {
    const checker::CheckResult &R = C.Result;
    OS << formatString("%-10s %-8s %-8s %-16s %8d %6d %9.2f\n",
                       C.Cell.Impl.c_str(), C.Cell.Test.c_str(),
                       memmodel::modelName(C.Cell.Model).c_str(),
                       checker::checkStatusName(R.Status),
                       R.Stats.ObservationCount, R.Stats.BoundIterations,
                       C.Seconds);
  }
  OS << formatString("%d cells: %d pass, %d fail, %d error (%.2fs wall, "
                     "%d jobs)\n",
                     static_cast<int>(Cells.size()),
                     countWithStatus(CheckStatus::Pass),
                     countWithStatus(CheckStatus::Fail) +
                         countWithStatus(CheckStatus::SequentialBug),
                     countWithStatus(CheckStatus::Error), WallSeconds,
                     Jobs);
  std::vector<WeakestSummary> Summaries = summarizeReport(*this);
  if (Cells.size() > Summaries.size()) {
    OS << "\nweakest passing model per (impl, test):\n";
    OS << weakestTable(Summaries);
  }
  return OS.str();
}

MatrixReport MatrixRunner::run(const std::vector<MatrixCell> &Cells,
                               const CellFn &Run) const {
  MatrixReport Report;
  Report.Jobs = Jobs;
  Report.Cells.resize(Cells.size());
  Timer Wall;
  parallelFor(Jobs, Cells.size(), [&](size_t I) {
    Timer CellTimer;
    MatrixCellResult &Out = Report.Cells[I];
    Out.Cell = Cells[I];
    Out.Result = Run(Cells[I]);
    Out.Seconds = CellTimer.seconds();
  });
  Report.WallSeconds = Wall.seconds();
  return Report;
}
