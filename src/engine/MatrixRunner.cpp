//===--- MatrixRunner.cpp - parallel (impl x test x model) runs --------------===//
//
// Part of the CheckFence reproduction (PLDI'07).
//
//===----------------------------------------------------------------------===//

#include "engine/MatrixRunner.h"

#include "engine/WeakestModelSearch.h"
#include "obs/Trace.h"
#include "support/Format.h"
#include "support/Json.h"
#include "support/Timing.h"

#include <atomic>
#include <sstream>
#include <thread>

using namespace checkfence;
using namespace checkfence::engine;
using checker::CheckStatus;

void checkfence::engine::parallelFor(
    int Jobs, size_t Count, const std::function<void(size_t)> &Body) {
  parallelFor(nullptr, Jobs, Count, Body);
}

void checkfence::engine::parallelFor(
    support::WorkerBudget *Budget, int MaxWorkers, size_t Count,
    const std::function<void(size_t)> &Body) {
  // The calling thread is always one worker; borrow the extras.
  int WantExtra = MaxWorkers - 1;
  if (static_cast<size_t>(MaxWorkers) > Count)
    WantExtra = static_cast<int>(Count) - 1;
  int Extra = 0;
  if (WantExtra > 0)
    Extra = Budget ? Budget->tryAcquire(WantExtra) : WantExtra;
  if (Extra <= 0) {
    for (size_t I = 0; I < Count; ++I)
      Body(I);
    return;
  }
  std::atomic<size_t> Next{0};
  // Spans recorded by workers must land in the caller's trace, so the
  // current tracer (if any) is reinstalled in every spawned thread.
  obs::Tracer *ParentTracer = obs::currentTracer();
  auto Work = [&] {
    obs::TraceContext TC(ParentTracer);
    for (;;) {
      size_t I = Next.fetch_add(1);
      if (I >= Count)
        return;
      Body(I);
    }
  };
  std::vector<std::thread> Pool;
  Pool.reserve(Extra);
  for (int W = 0; W < Extra; ++W)
    Pool.emplace_back(Work);
  Work();
  for (std::thread &T : Pool)
    T.join();
  if (Budget)
    Budget->release(Extra);
}

std::string MatrixCell::label() const {
  return Impl + ":" + Test + ":" + memmodel::modelName(Model);
}

int MatrixReport::countWithStatus(CheckStatus S) const {
  int N = 0;
  for (const MatrixCellResult &C : Cells)
    N += C.Result.Status == S;
  return N;
}

bool MatrixReport::allCompleted() const {
  return countWithStatus(CheckStatus::Error) == 0 &&
         countWithStatus(CheckStatus::Cancelled) == 0;
}

std::string checkfence::engine::renderReportSummary(
    int Pass, int Fail, int SequentialBug, int BoundsExhausted,
    int Error, int Cancelled) {
  support::JsonObject Summary;
  Summary.field("pass", Pass)
      .field("fail", Fail)
      .field("sequential_bug", SequentialBug)
      .field("bounds_exhausted", BoundsExhausted)
      .field("error", Error);
  if (Cancelled)
    Summary.field("cancelled", Cancelled);
  return Summary.str();
}

std::string
checkfence::engine::renderReportCell(const ReportCellFields &F) {
  support::JsonObject Cell;
  Cell.field("impl", F.Impl)
      .field("test", F.Test)
      .field("model", F.Model)
      .field("status", F.StatusName)
      .field("message", F.Message)
      .field("observations", F.Observations)
      .field("bound_iterations", F.BoundIterations)
      .field("unrolled_instrs", F.UnrolledInstrs)
      .field("loads", F.Loads)
      .field("stores", F.Stores)
      .field("sat_vars", F.SatVars)
      .field("sat_clauses", F.SatClauses);
  if (F.HasCounterexample)
    Cell.field("counterexample", F.Counterexample);
  if (F.IncludeTimings)
    Cell.fixed("seconds", F.Seconds)
        .fixed("encode_seconds", F.EncodeSeconds)
        .fixed("solve_seconds", F.SolveSeconds)
        .fixed("mining_seconds", F.MiningSeconds)
        .fixed("include_seconds", F.IncludeSeconds)
        .fixed("probe_seconds", F.ProbeSeconds)
        .field("learnts_exported", F.LearntsExported)
        .field("learnts_imported", F.LearntsImported)
        .field("races_won", F.RacesWon)
        .field("oracle_attempts", F.OracleAttempts)
        .field("oracle_discharges", F.OracleDischarges)
        .fixed("oracle_seconds", F.OracleSeconds)
        .field("analysis_attempts", F.AnalysisAttempts)
        .field("analysis_discharges", F.AnalysisDischarges)
        .fixed("analysis_seconds", F.AnalysisSeconds);
  return Cell.str();
}

std::string MatrixReport::json(bool IncludeTimings) const {
  std::ostringstream OS;
  OS << "{\n";
  OS << formatString("  \"schema_version\": %d,\n", ReportSchemaVersion);
  if (IncludeTimings)
    OS << formatString("  \"jobs\": %d,\n  \"wall_seconds\": %.3f,\n",
                       Jobs, WallSeconds);
  OS << "  \"summary\": "
     << renderReportSummary(countWithStatus(CheckStatus::Pass),
                            countWithStatus(CheckStatus::Fail),
                            countWithStatus(CheckStatus::SequentialBug),
                            countWithStatus(CheckStatus::BoundsExhausted),
                            countWithStatus(CheckStatus::Error),
                            countWithStatus(CheckStatus::Cancelled))
     << ",\n";
  OS << "  \"cells\": [\n";
  for (size_t I = 0; I < Cells.size(); ++I) {
    const MatrixCellResult &C = Cells[I];
    const checker::CheckResult &R = C.Result;
    const checker::EncodeStats &E = R.Stats.Inclusion;
    ReportCellFields F;
    F.Impl = C.Cell.Impl;
    F.Test = C.Cell.Test;
    F.Model = memmodel::modelName(C.Cell.Model);
    F.StatusName = checker::checkStatusName(R.Status);
    F.Message = R.Message;
    F.Observations = R.Stats.ObservationCount;
    F.BoundIterations = R.Stats.BoundIterations;
    F.UnrolledInstrs = E.UnrolledInstrs;
    F.Loads = E.Loads;
    F.Stores = E.Stores;
    F.SatVars = E.SatVars;
    F.SatClauses = static_cast<unsigned long long>(E.SatClauses);
    if (R.Counterexample) {
      F.HasCounterexample = true;
      F.Counterexample =
          R.Counterexample->Obs.str(R.Counterexample->ObsLabels);
    }
    if (IncludeTimings) {
      F.IncludeTimings = true;
      F.Seconds = C.Seconds;
      F.EncodeSeconds = E.EncodeSeconds;
      F.SolveSeconds = E.SolveSeconds;
      F.MiningSeconds = R.Stats.MiningSeconds;
      F.IncludeSeconds = R.Stats.IncludeSeconds;
      F.ProbeSeconds = R.Stats.ProbeSeconds;
      F.LearntsExported =
          static_cast<unsigned long long>(R.Stats.LearntsExported);
      F.LearntsImported =
          static_cast<unsigned long long>(R.Stats.LearntsImported);
      F.RacesWon = R.Stats.RacesWonByHelper;
      F.OracleAttempts = R.Stats.OracleAttempts;
      F.OracleDischarges = R.Stats.OracleDischarges;
      F.OracleSeconds = R.Stats.OracleSeconds;
      F.AnalysisAttempts = R.Stats.AnalysisAttempts;
      F.AnalysisDischarges = R.Stats.AnalysisDischarges;
      F.AnalysisSeconds = R.Stats.AnalysisSeconds;
    }
    OS << "    " << renderReportCell(F);
    if (I + 1 < Cells.size())
      OS << ",";
    OS << "\n";
  }
  OS << "  ]";
  // Multi-model sweeps additionally report the weakest passing model per
  // (impl, test). Derived from the verdicts above, so it stays
  // byte-identical across job counts.
  std::vector<WeakestSummary> Summaries = summarizeReport(*this);
  if (Cells.size() > Summaries.size()) {
    OS << ",\n  \"weakest_passing\": ";
    OS << weakestJson(Summaries);
    OS << "\n";
  } else {
    OS << "\n";
  }
  OS << "}\n";
  return OS.str();
}

std::string MatrixReport::table() const {
  std::ostringstream OS;
  OS << formatString("%-10s %-8s %-8s %-16s %8s %6s %9s\n", "impl", "test",
                     "model", "status", "obs", "iters", "seconds");
  for (const MatrixCellResult &C : Cells) {
    const checker::CheckResult &R = C.Result;
    OS << formatString("%-10s %-8s %-8s %-16s %8d %6d %9.2f\n",
                       C.Cell.Impl.c_str(), C.Cell.Test.c_str(),
                       memmodel::modelName(C.Cell.Model).c_str(),
                       checker::checkStatusName(R.Status),
                       R.Stats.ObservationCount, R.Stats.BoundIterations,
                       C.Seconds);
  }
  int Cancelled = countWithStatus(CheckStatus::Cancelled);
  std::string CancelledNote =
      Cancelled ? formatString(", %d cancelled", Cancelled) : "";
  OS << formatString("%d cells: %d pass, %d fail, %d error%s (%.2fs "
                     "wall, %d jobs)\n",
                     static_cast<int>(Cells.size()),
                     countWithStatus(CheckStatus::Pass),
                     countWithStatus(CheckStatus::Fail) +
                         countWithStatus(CheckStatus::SequentialBug),
                     countWithStatus(CheckStatus::Error),
                     CancelledNote.c_str(), WallSeconds, Jobs);
  std::vector<WeakestSummary> Summaries = summarizeReport(*this);
  if (Cells.size() > Summaries.size()) {
    OS << "\nweakest passing model per (impl, test):\n";
    OS << weakestTable(Summaries);
  }
  return OS.str();
}

MatrixReport MatrixRunner::run(const std::vector<MatrixCell> &Cells,
                               const CellFn &Run) const {
  MatrixReport Report;
  Report.Jobs = Jobs;
  Report.Cells.resize(Cells.size());
  Timer Wall;
  parallelFor(Budget, Jobs, Cells.size(), [&](size_t I) {
    obs::Span CellSpan("matrix",
                       [&] { return "cell:" + Cells[I].label(); });
    Timer CellTimer;
    MatrixCellResult &Out = Report.Cells[I];
    Out.Cell = Cells[I];
    Out.Result = Run(Cells[I]);
    Out.Seconds = CellTimer.seconds();
  });
  Report.WallSeconds = Wall.seconds();
  return Report;
}
