//===--- MatrixRunner.h - parallel (impl x test x model) runs ---*- C++ -*-==//
//
// Part of the CheckFence reproduction (PLDI'07).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's evaluation (Fig. 10/11) is a matrix: every implementation
/// against every applicable Fig. 8 test under every memory model of
/// interest. MatrixRunner executes such a matrix across a worker thread
/// pool. Cells are independent (each runs its own CheckSession), results
/// are aggregated by cell index, and the report is deterministic: the same
/// matrix yields byte-identical timing-free JSON at any job count.
///
/// The engine layer does not know how to turn cell names into programs -
/// that is the harness's job (harness::catalogCellRunner); the runner just
/// schedules an abstract cell function. parallelFor is exposed separately
/// for other embarrassingly parallel check workloads (e.g. the fence
/// minimization pass).
///
//===----------------------------------------------------------------------===//

#ifndef CHECKFENCE_ENGINE_MATRIXRUNNER_H
#define CHECKFENCE_ENGINE_MATRIXRUNNER_H

#include "checker/CheckFence.h"

#include <functional>
#include <string>
#include <vector>

namespace checkfence {
namespace engine {

/// Runs \p Body(I) for every I in [0, Count) on up to \p Jobs worker
/// threads (Jobs <= 1 runs inline). Blocks until all iterations finished.
/// \p Body must be safe to call concurrently for distinct indices.
void parallelFor(int Jobs, size_t Count,
                 const std::function<void(size_t)> &Body);

/// Escapes \p S for embedding in a JSON string literal.
std::string jsonEscape(const std::string &S);

/// One cell of the evaluation matrix.
struct MatrixCell {
  std::string Impl; ///< implementation name (harness resolves it)
  std::string Test; ///< catalog test name
  memmodel::ModelParams Model = memmodel::ModelParams::relaxed();

  std::string label() const;
};

/// Maps a cell to its check result. Implementations must be thread-safe.
using CellFn = std::function<checker::CheckResult(const MatrixCell &)>;

struct MatrixCellResult {
  MatrixCell Cell;
  checker::CheckResult Result;
  double Seconds = 0;
};

struct MatrixReport {
  std::vector<MatrixCellResult> Cells; ///< in input-matrix order
  int Jobs = 1;
  double WallSeconds = 0;

  int countWithStatus(checker::CheckStatus S) const;
  /// True when no cell ended in CheckStatus::Error.
  bool allCompleted() const;

  /// Machine-readable report. With \p IncludeTimings false the output
  /// depends only on the matrix and the verdicts - byte-identical across
  /// job counts and machines.
  std::string json(bool IncludeTimings = true) const;

  /// Human-readable fixed-width table.
  std::string table() const;
};

class MatrixRunner {
public:
  explicit MatrixRunner(int Jobs) : Jobs(Jobs < 1 ? 1 : Jobs) {}

  /// Runs every cell through \p Run on the worker pool and aggregates
  /// deterministically (results land at their cell's index).
  MatrixReport run(const std::vector<MatrixCell> &Cells,
                   const CellFn &Run) const;

private:
  int Jobs;
};

} // namespace engine
} // namespace checkfence

#endif // CHECKFENCE_ENGINE_MATRIXRUNNER_H
