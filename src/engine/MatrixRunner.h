//===--- MatrixRunner.h - parallel (impl x test x model) runs ---*- C++ -*-==//
//
// Part of the CheckFence reproduction (PLDI'07).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's evaluation (Fig. 10/11) is a matrix: every implementation
/// against every applicable Fig. 8 test under every memory model of
/// interest. MatrixRunner executes such a matrix across a worker thread
/// pool. Cells are independent (each runs its own CheckSession), results
/// are aggregated by cell index, and the report is deterministic: the same
/// matrix yields byte-identical timing-free JSON at any job count.
///
/// The engine layer does not know how to turn cell names into programs -
/// that is the harness's job (harness::catalogCellRunner); the runner just
/// schedules an abstract cell function. parallelFor is exposed separately
/// for other embarrassingly parallel check workloads (e.g. the fence
/// minimization pass).
///
//===----------------------------------------------------------------------===//

#ifndef CHECKFENCE_ENGINE_MATRIXRUNNER_H
#define CHECKFENCE_ENGINE_MATRIXRUNNER_H

#include "checker/CheckFence.h"
#include "support/WorkerBudget.h"

#include <functional>
#include <string>
#include <vector>

namespace checkfence {
namespace engine {

/// Runs \p Body(I) for every I in [0, Count) on up to \p Jobs worker
/// threads (Jobs <= 1 runs inline). Blocks until all iterations finished.
/// \p Body must be safe to call concurrently for distinct indices.
void parallelFor(int Jobs, size_t Count,
                 const std::function<void(size_t)> &Body);

/// Budget-sharing variant: the calling thread always works, and up to
/// MaxWorkers-1 extra threads are borrowed non-blockingly from \p Budget
/// (all of them when Budget is null). Slots are returned when the loop
/// finishes, so nested layers - matrix cells running check portfolios,
/// fence minimization running checks - share one `--jobs` allowance
/// instead of multiplying it.
void parallelFor(support::WorkerBudget *Budget, int MaxWorkers,
                 size_t Count, const std::function<void(size_t)> &Body);

/// The schema_version stamped into every JSON report (matrix and single
/// checks share one schema; see docs/API.md).
inline constexpr int ReportSchemaVersion = 1;

/// The per-cell field set of the versioned report schema. One renderer
/// defines the cell shape for every emitter - matrix cells here, and
/// the facade's single-check serializer (which holds pre-rendered
/// strings, not engine objects).
struct ReportCellFields {
  std::string Impl;
  std::string Test;
  std::string Model;
  const char *StatusName = "";
  std::string Message;
  int Observations = 0;
  int BoundIterations = 0;
  int UnrolledInstrs = 0;
  int Loads = 0;
  int Stores = 0;
  int SatVars = 0;
  unsigned long long SatClauses = 0;
  bool HasCounterexample = false;
  std::string Counterexample;
  bool IncludeTimings = false;
  double Seconds = 0;
  double EncodeSeconds = 0;
  double SolveSeconds = 0;
  double MiningSeconds = 0;
  double IncludeSeconds = 0;
  double ProbeSeconds = 0;
  unsigned long long LearntsExported = 0;
  unsigned long long LearntsImported = 0;
  int RacesWon = 0;
  int OracleAttempts = 0;
  int OracleDischarges = 0;
  double OracleSeconds = 0;
  int AnalysisAttempts = 0;
  int AnalysisDischarges = 0;
  double AnalysisSeconds = 0;
};

/// Renders one inline cell object of the report schema.
std::string renderReportCell(const ReportCellFields &F);

/// Renders the report's inline summary object. The "cancelled" bucket
/// appears only when non-zero, keeping uncancelled reports on the
/// historical five-field shape byte-for-byte.
std::string renderReportSummary(int Pass, int Fail, int SequentialBug,
                                int BoundsExhausted, int Error,
                                int Cancelled);

/// One cell of the evaluation matrix.
struct MatrixCell {
  std::string Impl; ///< implementation name (harness resolves it)
  std::string Test; ///< catalog test name
  /// Defaults to the one CheckOptions default so a default-model change
  /// cannot skew only some callers.
  memmodel::ModelParams Model = checker::CheckOptions{}.Model;

  std::string label() const;
};

/// Maps a cell to its check result. Implementations must be thread-safe.
using CellFn = std::function<checker::CheckResult(const MatrixCell &)>;

struct MatrixCellResult {
  MatrixCell Cell;
  checker::CheckResult Result;
  double Seconds = 0;
};

struct MatrixReport {
  std::vector<MatrixCellResult> Cells; ///< in input-matrix order
  int Jobs = 1;
  double WallSeconds = 0;

  int countWithStatus(checker::CheckStatus S) const;
  /// True when every cell ran to a verdict: no Error and no Cancelled
  /// cells.
  bool allCompleted() const;

  /// Machine-readable report. With \p IncludeTimings false the output
  /// depends only on the matrix and the verdicts - byte-identical across
  /// job counts and machines.
  std::string json(bool IncludeTimings = true) const;

  /// Human-readable fixed-width table.
  std::string table() const;
};

class MatrixRunner {
public:
  explicit MatrixRunner(int Jobs) : Jobs(Jobs < 1 ? 1 : Jobs) {}

  /// Draws worker threads from a shared budget instead of spawning its
  /// own Jobs-sized pool, so cell-level and portfolio-level parallelism
  /// cannot oversubscribe the `--jobs` allowance between them.
  MatrixRunner &withBudget(support::WorkerBudget *B) {
    Budget = B;
    return *this;
  }

  /// Runs every cell through \p Run on the worker pool and aggregates
  /// deterministically (results land at their cell's index).
  MatrixReport run(const std::vector<MatrixCell> &Cells,
                   const CellFn &Run) const;

private:
  int Jobs;
  support::WorkerBudget *Budget = nullptr;
};

} // namespace engine
} // namespace checkfence

#endif // CHECKFENCE_ENGINE_MATRIXRUNNER_H
