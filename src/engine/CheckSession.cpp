//===--- CheckSession.cpp - incremental check orchestration ------------------===//
//
// Part of the CheckFence reproduction (PLDI'07).
//
//===----------------------------------------------------------------------===//

#include "engine/CheckSession.h"

#include "analysis/CriticalCycles.h"
#include "checker/InclusionChecker.h"
#include "checker/SpecMiner.h"
#include "memmodel/ReadsFromOracle.h"
#include "obs/Trace.h"
#include "support/Json.h"
#include "support/Timing.h"

using namespace checkfence;
using namespace checkfence::engine;
using namespace checkfence::checker;

void CheckSession::snapshot(int Round) {
  SessionSnapshot S;
  S.Round = Round;
  S.MineVars = MineCtx.solver().numVars();
  S.MineClauses = MineCtx.solver().numClauses();
  S.CheckVars = CheckCtx.solver().numVars();
  S.CheckClauses = CheckCtx.solver().numClauses();
  Snapshots.push_back(S);
}

CheckResult CheckSession::check(const lsl::Program &ImplProg,
                                const std::vector<std::string> &ThreadProcs,
                                const lsl::Program *SpecProg) {
  Timer Total;
  CheckResult Result;
  trans::LoopBounds Bounds = Opts.InitialBounds; // implementation bounds
  trans::LoopBounds SpecBounds; // reference-program bounds (refset mode)
  int ProbesLeft = Opts.MaxProbes;

  const lsl::Program &MineProg = SpecProg ? *SpecProg : ImplProg;

  ProblemConfig MineCfg;
  MineCfg.Model = memmodel::ModelParams::serial();
  MineCfg.Order = Opts.Order;
  MineCfg.RangeAnalysis = Opts.RangeAnalysis;
  MineCfg.ConflictBudget = Opts.ConflictBudget;

  ProblemConfig CheckCfg = MineCfg;
  CheckCfg.Model = Opts.Model;

  // Encoding reuse state for this call: the live encoding of each context
  // and the bounds it was built for. Encodings are only rebuilt when their
  // program's bounds changed; rebuilding appends to the same solver.
  ProblemEncoding *MineEnc = nullptr;
  trans::LoopBounds MineEncBounds;
  ProblemEncoding *CheckEnc = nullptr;
  trans::LoopBounds CheckEncBounds;

  // Mining result cache: (bounds of the mined program) -> spec already in
  // Result.Spec. Valid while the mined program's bounds are unchanged.
  bool HaveSpec = false;
  trans::LoopBounds SpecForBounds;

  // Arm the portfolio for this call. A conflict budget forces serial
  // solving: an Unknown (budget exhausted) verdict must not depend on
  // which racer got furthest.
  Portfolio.configure(CheckCtx.mirror(),
                      Opts.ConflictBudget >= 0 ? 1 : Opts.PortfolioWidth,
                      Opts.Budget);
  const PortfolioStats PortfolioBefore = Portfolio.stats();

  auto Finish = [&](CheckStatus Status, const std::string &Msg) {
    Result.Status = Status;
    Result.Message = Msg;
    const PortfolioStats &PS = Portfolio.stats();
    Result.Stats.LearntsExported =
        PS.LearntsExported - PortfolioBefore.LearntsExported;
    Result.Stats.LearntsImported =
        PS.LearntsImported - PortfolioBefore.LearntsImported;
    Result.Stats.RacesRun = PS.RacesRun - PortfolioBefore.RacesRun;
    Result.Stats.RacesWonByHelper =
        PS.RacesWonByHelper - PortfolioBefore.RacesWonByHelper;
    Result.Stats.TotalSeconds = Total.seconds();
    return Result;
  };

  const CheckHooks &Hooks = Opts.Hooks;
  auto CancelRequested = [&] {
    return Hooks.Cancelled && Hooks.Cancelled();
  };

  for (int Iter = 0; Iter < Opts.MaxBoundIterations; ++Iter) {
    Result.Stats.BoundIterations = Iter + 1;
    if (CancelRequested())
      return Finish(CheckStatus::Cancelled, "check cancelled");
    if (Hooks.OnRoundStarted)
      Hooks.OnRoundStarted(Iter + 1);
    obs::Span RoundSpan("engine", "round");
    if (RoundSpan.active())
      RoundSpan.args(
          support::JsonObject().field("round", Iter + 1).str());
    trans::LoopBounds &MineBounds = SpecProg ? SpecBounds : Bounds;

    // Phase 1: specification mining under the Serial model. Skipped when
    // the mined program's bounds are unchanged - re-enumerating would
    // reproduce the identical observation set.
    if (!HaveSpec || SpecForBounds != MineBounds) {
      obs::Span MineSpan("engine", "mine");
      Timer MineTimer;
      if (!MineEnc || MineEncBounds != MineBounds) {
        obs::Span EncodeSpan("engine", "encode:mine");
        MineEnc = &MineCtx.encode(MineProg, ThreadProcs, MineBounds,
                                  MineCfg);
        MineEncBounds = MineBounds;
        Result.Stats.MiningEncodeSeconds += MineEnc->stats().EncodeSeconds;
      }
      double SolveBefore = MineEnc->stats().SolveSeconds;
      MiningOutcome Mined =
          mineSpecification(MineCtx, *MineEnc,
                            MineEnc->withinBoundsAssumptions(),
                            Opts.MaxObservations);
      Result.Stats.MiningSeconds += MineTimer.seconds();
      Result.Stats.MiningSolveSeconds +=
          MineEnc->stats().SolveSeconds - SolveBefore;
      if (!Mined.Ok)
        return Finish(CheckStatus::Error, Mined.Error);
      if (Mined.SequentialBug) {
        Result.Counterexample = Mined.BugTrace;
        return Finish(
            CheckStatus::SequentialBug,
            "a serial execution raises an error (see counterexample)");
      }
      Result.Spec = std::move(Mined.Spec);
      Result.Stats.ObservationCount = static_cast<int>(Result.Spec.size());
      HaveSpec = true;
      SpecForBounds = MineBounds;
      if (Hooks.OnObservationsMined)
        Hooks.OnObservationsMined(Result.Stats.ObservationCount);
    }
    if (CancelRequested())
      return Finish(CheckStatus::Cancelled, "check cancelled");

    // Phase 2: inclusion check under the target model. Shares its encoding
    // with the bound probe of this round (and reuses the final probe
    // encoding of the previous round when the bounds stabilized there).
    if (!CheckEnc || CheckEncBounds != Bounds) {
      obs::Span EncodeSpan("engine", "encode");
      CheckEnc = &CheckCtx.encode(ImplProg, ThreadProcs, Bounds, CheckCfg);
      CheckEncBounds = Bounds;
      Result.Stats.EncodeSeconds += CheckEnc->stats().EncodeSeconds;
    }
    // Phase 2a: reads-from oracle pruning. On eligible target models the
    // polynomial oracle decides fragment-sized problems exactly; when
    // every reachable observation is non-erroneous and already in the
    // mined specification, the inclusion query is Unsat by construction
    // (the mismatch clauses include the error flag), and - the oracle's
    // fragment admits only statically in-bounds programs - every bound
    // probe is Unsat too, so the check finishes here with the bounds
    // final. Counterexamples and refset mining are never short-circuited
    // (refset spec bounds may still need growing): any other outcome
    // falls through to the SAT path unchanged. The reported stats keep
    // their SAT-path values - SatVars/SatClauses freeze at encode end,
    // and this round's solve deltas are genuinely zero.
    if (Opts.OraclePrune && !SpecProg &&
        memmodel::readsFromEligible(CheckCfg.Model) && CheckEnc->ok()) {
      obs::Span OracleSpan("engine", "oracle_prune");
      Timer OracleTimer;
      ++Result.Stats.OracleAttempts;
      memmodel::ReadsFromOptions RO;
      RO.Model = CheckCfg.Model;
      memmodel::ReadsFromResult RF =
          memmodel::checkReadsFrom(CheckEnc->flat(), RO);
      bool Discharged = RF.Ok;
      if (Discharged) {
        for (const memmodel::RefObservation &O : RF.Observations) {
          if (O.Error || !Result.Spec.count(Observation{false, O.Values})) {
            Discharged = false;
            break;
          }
        }
      }
      Result.Stats.OracleSeconds += OracleTimer.seconds();
      if (Discharged) {
        ++Result.Stats.OracleDischarges;
        Result.Stats.Inclusion = CheckEnc->stats();
        Result.Stats.Inclusion.SolveSeconds = 0;
        Result.Stats.Inclusion.SolveCalls = 0;
        Result.FinalBounds = Bounds;
        snapshot(Iter + 1);
        return Finish(CheckStatus::Pass,
                      "all executions are observationally serial");
      }
    }
    // Phase 0 (static): critical-cycle robustness pruning for the lattice
    // points the reads-from oracle does not serve (rmo/relaxed and the
    // other descriptors missing ll+ls order). When the delay-set analysis
    // proves the flat program robust - no critical cycle and no coherence
    // hazard survives the existing fences - every execution under the
    // target model is observationally sequentially consistent, so the
    // weak-model verdict is inherited from sc: the sc observation set
    // (enumerated by the reads-from oracle, for which sc is always
    // eligible) being non-erroneous and inside the mined specification
    // makes the inclusion query Unsat by construction, and the oracle
    // fragment admits only statically in-bounds programs, so every bound
    // probe is Unsat too. Any other outcome - non-robust program,
    // fragment reject, or an sc observation outside the spec - falls
    // through to the SAT path unchanged, keeping timing-free JSON
    // byte-identical (see docs/ANALYSIS.md for the soundness argument).
    if (Opts.AnalysisPrune && !SpecProg && CheckEnc->ok() &&
        analysis::analysisEligible(CheckCfg.Model) &&
        !memmodel::readsFromEligible(CheckCfg.Model)) {
      obs::Span AnalysisSpan("engine", "analysis_prune");
      Timer AnalysisTimer;
      ++Result.Stats.AnalysisAttempts;
      analysis::RobustnessResult RR = analysis::analyzeRobustness(
          CheckEnc->flat(), CheckEnc->ranges(), CheckCfg.Model);
      bool Discharged = RR.Robust;
      if (Discharged) {
        memmodel::ReadsFromOptions RO;
        RO.Model = memmodel::ModelParams::sc();
        memmodel::ReadsFromResult RF =
            memmodel::checkReadsFrom(CheckEnc->flat(), RO);
        Discharged = RF.Ok;
        if (Discharged) {
          for (const memmodel::RefObservation &O : RF.Observations) {
            if (O.Error ||
                !Result.Spec.count(Observation{false, O.Values})) {
              Discharged = false;
              break;
            }
          }
        }
      }
      Result.Stats.AnalysisSeconds += AnalysisTimer.seconds();
      if (Discharged) {
        ++Result.Stats.AnalysisDischarges;
        Result.Stats.Inclusion = CheckEnc->stats();
        Result.Stats.Inclusion.SolveSeconds = 0;
        Result.Stats.Inclusion.SolveCalls = 0;
        Result.FinalBounds = Bounds;
        snapshot(Iter + 1);
        return Finish(CheckStatus::Pass,
                      "all executions are observationally serial");
      }
    }
    // The round's first bound probe is an independent query on the same
    // encoding; with helpers available the portfolio overlaps it with the
    // inclusion solve and hands the answer to phase 3.
    bool RoundProbed = false;
    sat::SolveResult RoundProbeR = sat::SolveResult::Unknown;
    {
      obs::Span IncludeSpan("engine", "include");
      Timer IncludeTimer;
      EncodeStats Before = CheckEnc->stats();
      PreparedInclusion Prep =
          prepareInclusion(CheckCtx, *CheckEnc, Result.Spec,
                           CheckEnc->withinBoundsAssumptions());
      bool Pass = false;
      std::string IncError;
      if (!Prep.Ok) {
        IncError = Prep.Error;
      } else if (Prep.Trivial) {
        Pass = true;
      } else {
        std::vector<sat::Lit> ProbeAssumps = CheckEnc->probeAssumptions();
        RaceOutcome Race =
            Portfolio.solve(CheckCtx, Prep.Assumptions, &ProbeAssumps);
        if (Race.SecondaryDone) {
          RoundProbed = true;
          RoundProbeR = Race.Secondary;
        }
        if (Race.Primary == sat::SolveResult::Unknown)
          IncError = "solver budget exhausted during inclusion check";
        else
          Pass = Race.Primary == sat::SolveResult::Unsat;
      }
      // Report this inclusion check's own solving effort; the shared
      // encoding's counters also accumulate probe solves (those are
      // charged to ProbeSeconds).
      Result.Stats.Inclusion = CheckEnc->stats();
      Result.Stats.Inclusion.SolveSeconds -= Before.SolveSeconds;
      Result.Stats.Inclusion.SolveCalls -= Before.SolveCalls;
      Result.Stats.IncludeSeconds += IncludeTimer.seconds();
      if (!IncError.empty())
        return Finish(CheckStatus::Error, IncError);
      if (!Pass) {
        // Counterexamples hold regardless of bounds (Sec. 3.3). Decode
        // from the canonical shadow solve, not from whichever racer won:
        // the reported trace must be identical at any portfolio width.
        if (Portfolio.canonicalSolve(Prep.Assumptions) !=
            sat::SolveResult::Sat)
          return Finish(CheckStatus::Error,
                        "canonical replay diverged on inclusion check");
        Result.Counterexample =
            CheckEnc->decodeTrace(Portfolio.shadowSolver());
        Result.FinalBounds = Bounds;
        snapshot(Iter + 1);
        return Finish(CheckStatus::Fail,
                      "inclusion check found a counterexample");
      }
    }

    // Phase 3: probe for executions that exceed the current loop bounds,
    // growing exactly the exceeded loop instances until none remain (or
    // the probe budget runs out). The probe re-solves the inclusion
    // encoding under the probe activation literal; each growth appends a
    // re-unrolled encoding to the same solver.
    bool Grown = false;
    while (ProbesLeft-- > 0) {
      if (CancelRequested())
        return Finish(CheckStatus::Cancelled, "check cancelled");
      obs::Span ProbeSpan("engine", "probe");
      Timer ProbeTimer;
      if (!CheckEnc->ok())
        return Finish(CheckStatus::Error, CheckEnc->error());
      sat::SolveResult R;
      if (RoundProbed) {
        // Answered already, overlapped with the inclusion solve.
        R = RoundProbeR;
        RoundProbed = false;
      } else {
        CheckCtx.beginPhase(); // each probe gets its own conflict allowance
        R = Portfolio.solve(CheckCtx, CheckEnc->probeAssumptions()).Primary;
      }
      Result.Stats.ProbeSeconds += ProbeTimer.seconds();
      if (R == sat::SolveResult::Unknown)
        return Finish(CheckStatus::Error,
                      "solver budget exhausted during bound probe");
      if (R == sat::SolveResult::Unsat)
        break;
      // Grow the loops marked in the canonical shadow model rather than
      // in whichever racer happened to answer: the bound trajectory (and
      // everything downstream of it) must be identical at any width.
      if (Portfolio.canonicalSolve(CheckEnc->probeAssumptions()) !=
          sat::SolveResult::Sat)
        return Finish(CheckStatus::Error,
                      "canonical replay diverged on bound probe");
      bool GrewThisProbe = false;
      for (const std::string &Key :
           CheckEnc->exceededLoops(Portfolio.shadowSolver())) {
        int &B = Bounds[Key];
        B = (B == 0 ? 1 : B) + 1;
        GrewThisProbe = true;
        if (Hooks.OnBoundGrown)
          Hooks.OnBoundGrown(Key, B);
      }
      if (!GrewThisProbe)
        return Finish(CheckStatus::Error,
                      "bound probe satisfiable but no mark decoded");
      Grown = true;
      CheckEnc = &CheckCtx.encode(ImplProg, ThreadProcs, Bounds, CheckCfg);
      CheckEncBounds = Bounds;
      Result.Stats.EncodeSeconds += CheckEnc->stats().EncodeSeconds;
    }
    if (ProbesLeft < 0) {
      Result.FinalBounds = Bounds;
      snapshot(Iter + 1);
      return Finish(CheckStatus::BoundsExhausted,
                    "loop bounds kept growing past the probe limit");
    }

    // Probe the reference program separately when mining from it: the
    // mining encoding doubles as the probe (its blocking clauses were
    // activation-gated and are no longer assumed).
    if (!Grown && SpecProg && MineEnc && MineEnc->ok()) {
      MineCtx.beginPhase();
      if (MineCtx.solveUnder(MineEnc->probeAssumptions()) ==
          sat::SolveResult::Sat) {
        for (const std::string &Key :
             MineEnc->exceededLoops(MineCtx.solver())) {
          int &B = SpecBounds[Key];
          B = (B == 0 ? 1 : B) + 1;
          Grown = true;
        }
      }
    }

    snapshot(Iter + 1);
    if (!Grown) {
      Result.FinalBounds = Bounds;
      return Finish(CheckStatus::Pass,
                    "all executions are observationally serial");
    }
  }

  Result.FinalBounds = Bounds;
  return Finish(CheckStatus::BoundsExhausted,
                "loop bounds kept growing past the iteration limit");
}
