//===--- WeakestModelSearch.cpp - weakest-passing-model search --------------===//
//
// Part of the CheckFence reproduction (PLDI'07).
//
//===----------------------------------------------------------------------===//

#include "engine/WeakestModelSearch.h"

#include "support/Format.h"
#include "support/Json.h"

#include <algorithm>
#include <sstream>

using namespace checkfence;
using namespace checkfence::engine;
using memmodel::atLeastAsStrong;
using memmodel::ModelParams;

std::vector<ModelParams>
checkfence::engine::weakestPassing(const std::vector<ModelVerdict> &Verdicts) {
  std::vector<ModelParams> Out;
  for (const ModelVerdict &V : Verdicts) {
    if (!V.Passed)
      continue;
    bool Minimal = true;
    for (const ModelVerdict &W : Verdicts) {
      if (!W.Passed || &W == &V)
        continue;
      // A strictly weaker passing model displaces V. Semantically equal
      // models (strong both ways) keep only their first occurrence.
      if (atLeastAsStrong(V.Model, W.Model) &&
          (!atLeastAsStrong(W.Model, V.Model) || &W < &V)) {
        Minimal = false;
        break;
      }
    }
    if (Minimal)
      Out.push_back(V.Model);
  }
  return Out;
}

std::vector<WeakestSummary>
checkfence::engine::summarizeReport(const MatrixReport &Report) {
  // Group cells by (impl, test) in first-appearance order.
  std::vector<WeakestSummary> Groups;
  std::vector<std::vector<ModelVerdict>> Verdicts;
  for (const MatrixCellResult &C : Report.Cells) {
    size_t G = 0;
    for (; G < Groups.size(); ++G)
      if (Groups[G].Impl == C.Cell.Impl && Groups[G].Test == C.Cell.Test)
        break;
    if (G == Groups.size()) {
      WeakestSummary S;
      S.Impl = C.Cell.Impl;
      S.Test = C.Cell.Test;
      Groups.push_back(S);
      Verdicts.emplace_back();
    }
    WeakestSummary &S = Groups[G];
    ++S.CellsRun;
    switch (C.Result.Status) {
    case checker::CheckStatus::Pass:
      ++S.ModelsChecked;
      ++S.ModelsPassed;
      Verdicts[G].push_back({C.Cell.Model, true});
      break;
    case checker::CheckStatus::Fail:
    case checker::CheckStatus::SequentialBug:
      ++S.ModelsChecked;
      Verdicts[G].push_back({C.Cell.Model, false});
      break;
    default:
      break; // BoundsExhausted / Error: inconclusive, never extrapolated
    }
  }
  for (size_t G = 0; G < Groups.size(); ++G)
    Groups[G].Weakest = weakestPassing(Verdicts[G]);
  return Groups;
}

std::string
checkfence::engine::weakestJson(const std::vector<WeakestSummary> &Summaries) {
  std::ostringstream OS;
  OS << "[\n";
  for (size_t I = 0; I < Summaries.size(); ++I) {
    const WeakestSummary &S = Summaries[I];
    OS << formatString(
        "    {\"impl\": \"%s\", \"test\": \"%s\", \"weakest\": [",
        support::jsonEscape(S.Impl).c_str(), support::jsonEscape(S.Test).c_str());
    for (size_t M = 0; M < S.Weakest.size(); ++M)
      OS << formatString("%s\"%s\"", M ? ", " : "",
                         memmodel::modelName(S.Weakest[M]).c_str());
    OS << formatString("], \"models_passed\": %d, \"models_checked\": %d}",
                       S.ModelsPassed, S.ModelsChecked);
    OS << (I + 1 < Summaries.size() ? ",\n" : "\n");
  }
  OS << "  ]";
  return OS.str();
}

std::string
checkfence::engine::weakestTable(const std::vector<WeakestSummary> &Summaries) {
  std::ostringstream OS;
  OS << formatString("%-10s %-8s %7s %-s\n", "impl", "test", "passed",
                     "weakest passing model(s)");
  for (const WeakestSummary &S : Summaries) {
    std::string Weakest;
    for (const ModelParams &M : S.Weakest) {
      if (!Weakest.empty())
        Weakest += ", ";
      Weakest += memmodel::modelName(M);
    }
    if (Weakest.empty())
      Weakest = "(none)";
    OS << formatString("%-10s %-8s %4d/%-2d %-s\n", S.Impl.c_str(),
                       S.Test.c_str(), S.ModelsPassed, S.ModelsChecked,
                       Weakest.c_str());
  }
  return OS.str();
}

WeakestModelSearch::WeakestModelSearch(std::vector<ModelParams> Lattice)
    : Lattice(std::move(Lattice)) {
  // Weakest-first: stable topological order by counting strictly stronger
  // lattice members. Counts are precomputed against the original vector -
  // a comparator must not read the container being sorted mid-sort - and
  // stable_sort keeps incomparable points in given order, so results are
  // deterministic for a fixed lattice vector.
  std::vector<std::pair<int, ModelParams>> Keyed;
  Keyed.reserve(this->Lattice.size());
  for (const ModelParams &M : this->Lattice) {
    int Stronger = 0;
    for (const ModelParams &O : this->Lattice)
      Stronger += memmodel::strictlyStronger(O, M);
    Keyed.emplace_back(Stronger, M);
  }
  std::stable_sort(Keyed.begin(), Keyed.end(),
                   [](const std::pair<int, ModelParams> &A,
                      const std::pair<int, ModelParams> &B) {
                     return A.first > B.first;
                   });
  for (size_t I = 0; I < Keyed.size(); ++I)
    this->Lattice[I] = Keyed[I].second;
}

WeakestSummary WeakestModelSearch::run(const std::string &Impl,
                                       const std::string &Test,
                                       const CellFn &Run) const {
  WeakestSummary S;
  S.Impl = Impl;
  S.Test = Test;
  std::vector<ModelVerdict> Known; // conclusive verdicts so far

  for (const ModelParams &M : Lattice) {
    // Monotone inference from what is already known.
    bool Inferred = false, Verdict = false;
    for (const ModelVerdict &K : Known) {
      if (K.Passed && atLeastAsStrong(M, K.Model)) {
        Inferred = true;
        Verdict = true; // a weaker model passed; M passes
        break;
      }
      if (!K.Passed && atLeastAsStrong(K.Model, M)) {
        Inferred = true;
        Verdict = false; // a stronger model failed; M fails
        break;
      }
    }
    if (Inferred) {
      ++S.CellsInferred;
      ++S.ModelsChecked;
      S.ModelsPassed += Verdict;
      Known.push_back({M, Verdict});
      continue;
    }

    MatrixCell Cell;
    Cell.Impl = Impl;
    Cell.Test = Test;
    Cell.Model = M;
    checker::CheckResult R = Run(Cell);
    ++S.CellsRun;
    switch (R.Status) {
    case checker::CheckStatus::Pass:
      ++S.ModelsChecked;
      ++S.ModelsPassed;
      Known.push_back({M, true});
      break;
    case checker::CheckStatus::Fail:
    case checker::CheckStatus::SequentialBug:
      ++S.ModelsChecked;
      Known.push_back({M, false});
      break;
    default:
      break; // inconclusive: no inference in either direction
    }
  }

  S.Weakest = weakestPassing(Known);
  return S;
}
