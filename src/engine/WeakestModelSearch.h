//===--- WeakestModelSearch.h - weakest-passing-model search ----*- C++ -*-==//
//
// Part of the CheckFence reproduction (PLDI'07).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Finds, per (implementation, test), the weakest memory models under
/// which the check still passes. The lattice order (memmodel::
/// atLeastAsStrong) makes verdicts monotone: a pass under model M implies
/// a pass under every stronger M', and a counterexample under M' exists
/// under every weaker M. Two entry points exploit that:
///
///  * weakestPassing / summarizeReport - pure post-processing: given the
///    verdicts of a sweep (e.g. a `--models lattice` matrix run), compute
///    the minimal passing models of each (impl, test) group. This is what
///    MatrixReport embeds in its JSON and table when a sweep covered more
///    than one model; it is deterministic because it only reads recorded
///    verdicts, never the clock or the schedule.
///
///  * WeakestModelSearch::run - an active walk: check the lattice points
///    weakest-first, skipping every point whose verdict is already implied
///    by monotonicity. On typical sweeps this prunes roughly half of the
///    checks (the strong half once a weak model passes, the weak half
///    below a failure).
///
/// Only clean Pass/Fail (and SequentialBug, which is model-independent)
/// verdicts participate in inference; BoundsExhausted and Error cells are
/// never extrapolated.
///
//===----------------------------------------------------------------------===//

#ifndef CHECKFENCE_ENGINE_WEAKESTMODELSEARCH_H
#define CHECKFENCE_ENGINE_WEAKESTMODELSEARCH_H

#include "engine/MatrixRunner.h"

#include <string>
#include <vector>

namespace checkfence {
namespace engine {

/// One model's verdict within a sweep.
struct ModelVerdict {
  memmodel::ModelParams Model;
  bool Passed = false;
};

/// The minimal elements of the passing set under the lattice order: every
/// passing model that has no strictly weaker passing model in \p Verdicts.
/// Input order is preserved in the output (determinism).
std::vector<memmodel::ModelParams>
weakestPassing(const std::vector<ModelVerdict> &Verdicts);

/// The weakest-passing summary of one (impl, test) group.
struct WeakestSummary {
  std::string Impl;
  std::string Test;
  /// Minimal passing models, in sweep order; empty when nothing passed.
  std::vector<memmodel::ModelParams> Weakest;
  int ModelsPassed = 0;
  int ModelsChecked = 0; ///< cells with a conclusive Pass/Fail verdict
  int CellsRun = 0;      ///< checks actually executed (active search)
  int CellsInferred = 0; ///< verdicts obtained by monotonicity (active)
};

/// Groups a (multi-model) matrix report by (impl, test) - in first-
/// appearance order - and computes each group's weakest passing models.
std::vector<WeakestSummary> summarizeReport(const MatrixReport &Report);

/// Renders summaries as a JSON array (one object per group).
std::string weakestJson(const std::vector<WeakestSummary> &Summaries);

/// Renders summaries as a fixed-width table.
std::string weakestTable(const std::vector<WeakestSummary> &Summaries);

/// Active lattice walk for one (impl, test): runs \p Run only for models
/// whose verdict monotonicity cannot infer.
class WeakestModelSearch {
public:
  /// \p Lattice is checked weakest-first regardless of its given order
  /// (the strongest-first convention of memmodel::latticeModels is
  /// normalized internally; relative order of incomparable points is
  /// kept).
  explicit WeakestModelSearch(std::vector<memmodel::ModelParams> Lattice);

  /// Runs the search; \p Run is invoked with cells whose Impl/Test are
  /// \p Impl / \p Test and whose Model walks the lattice.
  WeakestSummary run(const std::string &Impl, const std::string &Test,
                     const CellFn &Run) const;

private:
  std::vector<memmodel::ModelParams> Lattice; ///< weakest-first
};

} // namespace engine
} // namespace checkfence

#endif // CHECKFENCE_ENGINE_WEAKESTMODELSEARCH_H
