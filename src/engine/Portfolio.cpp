//===--- Portfolio.cpp - racing solver portfolio -----------------------------===//
//
// Part of the CheckFence reproduction (PLDI'07).
//
//===----------------------------------------------------------------------===//

#include "engine/Portfolio.h"

#include "obs/Trace.h"
#include "support/Json.h"

#include <atomic>
#include <mutex>
#include <thread>

using namespace checkfence;
using namespace checkfence::engine;

namespace {

/// With width 0 ("auto") the portfolio takes whatever the budget can
/// spare, up to this many helpers per query.
constexpr int MaxAutoHelpers = 7;

/// Learnt clauses published by race members, tagged with their source so
/// consumers never re-import their own clauses.
class SharedPool {
public:
  void publish(int Src, const std::vector<sat::Lit> &Lits) {
    std::lock_guard<std::mutex> Lock(Mu);
    Clauses.emplace_back(Src, Lits);
    ++Published;
  }

  void fetch(int Self, size_t &Cursor,
             std::vector<std::vector<sat::Lit>> &Out) {
    std::lock_guard<std::mutex> Lock(Mu);
    for (; Cursor < Clauses.size(); ++Cursor)
      if (Clauses[Cursor].first != Self) {
        Out.push_back(Clauses[Cursor].second);
        ++Adopted;
      }
  }

  uint64_t published() const { return Published; }
  uint64_t adopted() const { return Adopted; }

private:
  std::mutex Mu;
  std::vector<std::pair<int, std::vector<sat::Lit>>> Clauses;
  uint64_t Published = 0;
  uint64_t Adopted = 0;
};

/// Installs the race-time hooks on a member solver; restores the solver
/// to its hook-free (deterministic) configuration on destruction.
class RaceHooks {
public:
  RaceHooks(sat::Solver &S, int Id, SharedPool &Pool,
            const std::atomic<bool> &Stop)
      : S(S) {
    S.setInterrupt(&Stop);
    S.OnLearnt = [&Pool, Id](const std::vector<sat::Lit> &Lits) {
      Pool.publish(Id, Lits);
    };
    S.FetchShared = [&Pool, Id,
                     Cursor = size_t(0)](
                        std::vector<std::vector<sat::Lit>> &Out) mutable {
      Pool.fetch(Id, Cursor, Out);
    };
  }
  ~RaceHooks() {
    S.setInterrupt(nullptr);
    S.OnLearnt = nullptr;
    S.FetchShared = nullptr;
  }

private:
  sat::Solver &S;
};

} // namespace

void SolverPortfolio::configure(const sat::CnfStore *NewMirror, int NewWidth,
                                support::WorkerBudget *NewBudget) {
  if (Mirror != NewMirror) {
    // Rebinding to a different context: replicas replay from scratch.
    Helpers.clear();
    Shadow.reset();
  }
  Mirror = NewMirror;
  Width = NewWidth;
  Budget = NewBudget;
}

SolverPortfolio::Member &SolverPortfolio::helper(size_t Index) {
  while (Helpers.size() <= Index) {
    auto M = std::make_unique<Member>();
    // Diversify before the replay creates any variables: alternate the
    // default phase against the primary's (false), and give later
    // replicas increasing random-decision rates with distinct seeds.
    size_t K = Helpers.size();
    M->S.DefaultPhase = (K % 2) == 0;
    if (K >= 1) {
      M->S.RandomVarFreq = 0.01 * static_cast<double>(K + 1);
      M->S.RandSeed = 0x9E3779B97F4A7C15ull * (K + 1);
    }
    Helpers.push_back(std::move(M));
  }
  return *Helpers[Index];
}

void SolverPortfolio::sync(Member &M) {
  // A false return means the replica derived top-level unsatisfiability
  // while absorbing the suffix; its next solve() then answers Unsat
  // immediately, which is still a sound race contribution.
  Mirror->replayInto(M.S, M.Cur);
}

sat::SolveResult
SolverPortfolio::canonicalSolve(const std::vector<sat::Lit> &Assumps) {
  if (!Mirror)
    return sat::SolveResult::Unknown;
  if (!Shadow)
    Shadow = std::make_unique<Member>();
  obs::Span ReplaySpan("solver", "canonical_replay");
  Mirror->replayInto(Shadow->S, Shadow->Cur);
  return Shadow->S.solve(Assumps);
}

sat::Solver &SolverPortfolio::shadowSolver() {
  assert(Shadow && "canonicalSolve must run before shadow decode");
  return Shadow->S;
}

RaceOutcome
SolverPortfolio::solve(checker::SolveContext &Primary,
                       const std::vector<sat::Lit> &PrimaryAssumps,
                       const std::vector<sat::Lit> *SecondaryAssumps) {
  RaceOutcome Out;

  // Borrow helper workers; every path below returns them. An explicit
  // width is honored as asked; auto additionally respects the hardware
  // (racing is pure time-slicing overhead without spare cores).
  int Granted = 0;
  if (Mirror && Width != 1) {
    if (Width > 1) {
      Granted = Budget ? Budget->tryAcquire(Width - 1) : Width - 1;
    } else if (Width == 0 && Budget) {
      int Spare = static_cast<int>(std::thread::hardware_concurrency()) - 1;
      int Want = Spare < MaxAutoHelpers ? Spare : MaxAutoHelpers;
      if (Want > 0)
        Granted = Budget->tryAcquire(Want);
    }
  }

  if (Granted == 0) {
    obs::Span SolveSpan("solver", "solve");
    Out.Primary = Primary.solveUnder(PrimaryAssumps);
    return Out;
  }

  ++Stats.RacesRun;
  obs::Span RaceSpan("solver", "race");
  if (RaceSpan.active())
    RaceSpan.args(support::JsonObject()
                      .field("width", Granted + 1)
                      .field("secondary", SecondaryAssumps != nullptr)
                      .str());
  obs::Tracer *ParentTracer = obs::currentTracer();
  SharedPool Pool;
  std::atomic<bool> StopPrimary{false};
  std::atomic<bool> StopSecondary{false};
  std::mutex WinMu;
  sat::SolveResult PrimaryR = sat::SolveResult::Unknown;
  bool ByHelper = false;
  auto ReportPrimary = [&](sat::SolveResult R, bool Helper) {
    if (R == sat::SolveResult::Unknown)
      return;
    std::lock_guard<std::mutex> Lock(WinMu);
    if (PrimaryR == sat::SolveResult::Unknown) {
      PrimaryR = R;
      ByHelper = Helper;
      StopPrimary.store(true, std::memory_order_relaxed);
    }
  };

  bool HasSecondary = SecondaryAssumps != nullptr;
  sat::SolveResult SecondaryR = sat::SolveResult::Unknown;
  std::atomic<bool> SecondaryFinished{false};

  // Sync the replicas we are about to use (single-threaded: the mirror is
  // only ever read/written from the session thread between races).
  for (int K = 0; K < Granted; ++K)
    sync(helper(K));

  std::vector<std::thread> Threads;
  Threads.reserve(Granted);
  std::thread SecondaryThread;
  int NextHelper = 0;
  if (HasSecondary) {
    Member *M = &helper(NextHelper++);
    SecondaryThread = std::thread([&, M, Assumps = *SecondaryAssumps] {
      obs::TraceContext TC(ParentTracer);
      obs::Span S("solver", "racer:secondary");
      RaceHooks Hooks(M->S, /*Id=*/1, Pool, StopSecondary);
      SecondaryR = M->S.solve(Assumps);
      SecondaryFinished.store(true, std::memory_order_release);
    });
  }
  for (int K = NextHelper; K < Granted; ++K) {
    Member *M = &helper(K);
    Threads.emplace_back([&, M, K] {
      obs::TraceContext TC(ParentTracer);
      obs::Span S("solver", "racer:helper");
      RaceHooks Hooks(M->S, /*Id=*/K + 2, Pool, StopPrimary);
      ReportPrimary(M->S.solve(PrimaryAssumps), /*Helper=*/true);
    });
  }

  {
    RaceHooks Hooks(Primary.solver(), /*Id=*/0, Pool, StopPrimary);
    ReportPrimary(Primary.solveUnder(PrimaryAssumps), /*Helper=*/false);
  }
  for (std::thread &T : Threads)
    T.join();

  if (SecondaryThread.joinable()) {
    // The overlap is a free lunch only while the inclusion race is still
    // paying for the table: once the primary query is answered, a probe
    // that has not finished is interrupted rather than waited out (its
    // from-scratch proof can cost more than the incremental re-solve the
    // session will do instead), and a Sat answer (counterexample) makes
    // the probe moot outright.
    if (!SecondaryFinished.load(std::memory_order_acquire) ||
        PrimaryR == sat::SolveResult::Sat)
      StopSecondary.store(true, std::memory_order_relaxed);
    SecondaryThread.join();
    if (PrimaryR != sat::SolveResult::Sat &&
        SecondaryR != sat::SolveResult::Unknown) {
      Out.SecondaryDone = true;
      Out.Secondary = SecondaryR;
    }
  }

  if (Budget)
    Budget->release(Granted);

  Stats.LearntsExported += Pool.published();
  Stats.LearntsImported += Pool.adopted();
  Stats.RacesWonByHelper += ByHelper;
  Out.Primary = PrimaryR;
  Out.WonByHelper = ByHelper;
  return Out;
}
