//===--- Portfolio.h - racing solver portfolio ------------------*- C++ -*-==//
//
// Part of the CheckFence reproduction (PLDI'07).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The intra-check parallelism engine. A CheckSession's target-model
/// context mirrors its CNF stream into a CnfStore (SolveContext's mirror
/// mode); this portfolio replays that store into
///
///  * replica solvers that *race* the primary on hard inclusion/probe
///    queries - diversified by default phase, random-decision frequency
///    and seed, exchanging learnt clauses through a shared pool, with
///    first-winner cancellation via the solver's cooperative interrupt;
///  * one deterministic *shadow* solver whose models feed every decoded
///    artifact (counterexample traces, exceeded-loop sets).
///
/// Why a shadow: a raced Sat answer is objective, but *which* model the
/// winner holds depends on scheduling. Decoding from a solver that only
/// ever sees the canonical query sequence - never raced, never sharing,
/// never interrupted - makes counterexamples and bound growth identical
/// at any portfolio width, which is the determinism contract of
/// CheckOptions::PortfolioWidth. Sharing learnt clauses between members
/// is sound because all members hold identical problem-clause databases:
/// a learnt clause is implied by the database alone (assumption
/// dependence appears as negated assumption literals inside it).
///
/// Helper threads are borrowed non-blockingly from the shared
/// support::WorkerBudget, so matrix cells and portfolios can never
/// oversubscribe `--jobs` between them.
///
//===----------------------------------------------------------------------===//

#ifndef CHECKFENCE_ENGINE_PORTFOLIO_H
#define CHECKFENCE_ENGINE_PORTFOLIO_H

#include "checker/SolveContext.h"
#include "sat/CnfStore.h"
#include "support/WorkerBudget.h"

#include <memory>
#include <vector>

namespace checkfence {
namespace engine {

/// Counters summed over every raced query (CheckStats mirrors these).
struct PortfolioStats {
  uint64_t LearntsExported = 0; ///< clauses published to the shared pool
  uint64_t LearntsImported = 0; ///< pool clauses adopted by other members
  int RacesRun = 0;             ///< queries that actually ran with helpers
  int RacesWonByHelper = 0;     ///< races decided by a replica, not the primary
};

/// Result of one (possibly raced, possibly overlapped) query pair.
struct RaceOutcome {
  sat::SolveResult Primary = sat::SolveResult::Unknown;
  bool WonByHelper = false;
  /// Secondary query: ran and finished (it is aborted when the primary
  /// answer makes it moot, i.e. comes back Sat).
  bool SecondaryDone = false;
  sat::SolveResult Secondary = sat::SolveResult::Unknown;
};

class SolverPortfolio {
public:
  SolverPortfolio() = default;
  SolverPortfolio(const SolverPortfolio &) = delete;
  SolverPortfolio &operator=(const SolverPortfolio &) = delete;

  /// (Re)binds the portfolio to the mirrored CNF of the primary context
  /// and sets the racing width and shared worker budget for subsequent
  /// queries. Width semantics follow CheckOptions::PortfolioWidth.
  void configure(const sat::CnfStore *Mirror, int Width,
                 support::WorkerBudget *Budget);

  /// Solves \p PrimaryAssumps on \p Primary's solver. With helpers
  /// available, replicas race the same query (first winner cancels the
  /// rest); when \p SecondaryAssumps is non-null one helper concurrently
  /// solves that independent query on the same encoding (pipeline
  /// overlap), and is aborted if the primary answer comes back Sat.
  /// Serial fallback (width 1, no mirror, or drained budget) degrades to
  /// a plain Primary.solveUnder call.
  RaceOutcome solve(checker::SolveContext &Primary,
                    const std::vector<sat::Lit> &PrimaryAssumps,
                    const std::vector<sat::Lit> *SecondaryAssumps = nullptr);

  /// Canonical deterministic solve on the shadow solver (synced from the
  /// mirror first). The answer and - for Sat - the model depend only on
  /// the canonical query sequence, never on width or racing. Decode
  /// artifacts against shadowSolver() afterwards.
  sat::SolveResult canonicalSolve(const std::vector<sat::Lit> &Assumps);
  sat::Solver &shadowSolver();

  const PortfolioStats &stats() const { return Stats; }

private:
  struct Member {
    sat::Solver S;
    sat::CnfStore::ReplayCursor Cur;
  };

  Member &helper(size_t Index);
  void sync(Member &M);

  const sat::CnfStore *Mirror = nullptr;
  int Width = 1;
  support::WorkerBudget *Budget = nullptr;

  std::unique_ptr<Member> Shadow;
  std::vector<std::unique_ptr<Member>> Helpers;
  PortfolioStats Stats;
};

} // namespace engine
} // namespace checkfence

#endif // CHECKFENCE_ENGINE_PORTFOLIO_H
