//===--- BitVec.cpp - bitvector circuits over SAT literals -----------------===//

#include "encode/BitVec.h"

#include <algorithm>
#include <cassert>

using namespace checkfence;
using namespace checkfence::encode;

BitVec BitVec::fresh(CnfBuilder &B, int Width) {
  BitVec V;
  V.Bits.reserve(Width);
  for (int I = 0; I < Width; ++I)
    V.Bits.push_back(B.fresh());
  return V;
}

BitVec BitVec::constant(CnfBuilder &B, uint64_t Value, int Width) {
  BitVec V;
  V.Bits.reserve(Width);
  for (int I = 0; I < Width; ++I)
    V.Bits.push_back(B.boolLit((Value >> I) & 1));
  assert((Width >= 64 || (Value >> Width) == 0) &&
         "constant does not fit in width");
  return V;
}

BitVec checkfence::encode::zext(CnfBuilder &B, const BitVec &V, int Width) {
  BitVec Out = V;
  while (Out.width() < Width)
    Out.Bits.push_back(B.falseLit());
  return Out;
}

Lit checkfence::encode::bvEq(CnfBuilder &B, const BitVec &A,
                             const BitVec &Bv) {
  int W = std::max(A.width(), Bv.width());
  BitVec X = zext(B, A, W), Y = zext(B, Bv, W);
  std::vector<Lit> Eqs;
  Eqs.reserve(W);
  for (int I = 0; I < W; ++I)
    Eqs.push_back(B.iffLit(X.bit(I), Y.bit(I)));
  return B.andLits(Eqs);
}

Lit checkfence::encode::bvEqConst(CnfBuilder &B, const BitVec &A,
                                  uint64_t C) {
  std::vector<Lit> Eqs;
  Eqs.reserve(A.width());
  for (int I = 0; I < A.width(); ++I)
    Eqs.push_back(((C >> I) & 1) ? A.bit(I) : ~A.bit(I));
  if (A.width() < 64 && (C >> A.width()) != 0)
    return B.falseLit(); // constant does not fit: never equal
  return B.andLits(Eqs);
}

Lit checkfence::encode::bvUlt(CnfBuilder &B, const BitVec &A,
                              const BitVec &Bv) {
  int W = std::max(A.width(), Bv.width());
  BitVec X = zext(B, A, W), Y = zext(B, Bv, W);
  // Ripple from LSB: lt_i = (~x & y) | (x<->y) & lt_{i-1}
  Lit Lt = B.falseLit();
  for (int I = 0; I < W; ++I) {
    Lit XltY = B.andLit(~X.bit(I), Y.bit(I));
    Lit Same = B.iffLit(X.bit(I), Y.bit(I));
    Lt = B.orLit(XltY, B.andLit(Same, Lt));
  }
  return Lt;
}

Lit checkfence::encode::bvNonZero(CnfBuilder &B, const BitVec &A) {
  return B.orLits(A.Bits);
}

BitVec checkfence::encode::bvMux(CnfBuilder &B, Lit C, const BitVec &A,
                                 const BitVec &Bv) {
  int W = std::max(A.width(), Bv.width());
  BitVec X = zext(B, A, W), Y = zext(B, Bv, W);
  BitVec Out;
  Out.Bits.reserve(W);
  for (int I = 0; I < W; ++I)
    Out.Bits.push_back(B.iteLit(C, X.bit(I), Y.bit(I)));
  return Out;
}

BitVec checkfence::encode::bvAdd(CnfBuilder &B, const BitVec &A,
                                 const BitVec &Bv, int OutWidth) {
  BitVec X = zext(B, A, OutWidth), Y = zext(B, Bv, OutWidth);
  BitVec Out;
  Out.Bits.reserve(OutWidth);
  Lit Carry = B.falseLit();
  for (int I = 0; I < OutWidth; ++I) {
    Lit S = B.xorLit(B.xorLit(X.bit(I), Y.bit(I)), Carry);
    Lit C1 = B.andLit(X.bit(I), Y.bit(I));
    Lit C2 = B.andLit(B.xorLit(X.bit(I), Y.bit(I)), Carry);
    Carry = B.orLit(C1, C2);
    Out.Bits.push_back(S);
  }
  return Out;
}

BitVec checkfence::encode::bvSub(CnfBuilder &B, const BitVec &A,
                                 const BitVec &Bv, int OutWidth) {
  // a - b = a + ~b + 1 in two's complement.
  BitVec X = zext(B, A, OutWidth), Y = zext(B, Bv, OutWidth);
  BitVec Out;
  Out.Bits.reserve(OutWidth);
  Lit Carry = B.trueLit();
  for (int I = 0; I < OutWidth; ++I) {
    Lit Yn = ~Y.bit(I);
    Lit S = B.xorLit(B.xorLit(X.bit(I), Yn), Carry);
    Lit C1 = B.andLit(X.bit(I), Yn);
    Lit C2 = B.andLit(B.xorLit(X.bit(I), Yn), Carry);
    Carry = B.orLit(C1, C2);
    Out.Bits.push_back(S);
  }
  return Out;
}

BitVec checkfence::encode::bvMul(CnfBuilder &B, const BitVec &A,
                                 const BitVec &Bv, int OutWidth) {
  BitVec X = zext(B, A, OutWidth);
  BitVec Acc = BitVec::constant(B, 0, OutWidth);
  for (int I = 0; I < Bv.width() && I < OutWidth; ++I) {
    // Partial product: (b_i ? x : 0) << i
    BitVec Part;
    Part.Bits.assign(static_cast<size_t>(OutWidth), B.falseLit());
    for (int J = 0; I + J < OutWidth; ++J)
      Part.Bits[I + J] = B.andLit(Bv.bit(I), X.bit(J));
    Acc = bvAdd(B, Acc, Part, OutWidth);
  }
  return Acc;
}

static BitVec bitwise(CnfBuilder &B, const BitVec &A, const BitVec &Bv,
                      Lit (CnfBuilder::*Op)(Lit, Lit)) {
  int W = std::max(A.width(), Bv.width());
  BitVec X = zext(B, A, W), Y = zext(B, Bv, W);
  BitVec Out;
  Out.Bits.reserve(W);
  for (int I = 0; I < W; ++I)
    Out.Bits.push_back((B.*Op)(X.bit(I), Y.bit(I)));
  return Out;
}

BitVec checkfence::encode::bvAnd(CnfBuilder &B, const BitVec &A,
                                 const BitVec &Bv) {
  return bitwise(B, A, Bv, &CnfBuilder::andLit);
}
BitVec checkfence::encode::bvOr(CnfBuilder &B, const BitVec &A,
                                const BitVec &Bv) {
  return bitwise(B, A, Bv, &CnfBuilder::orLit);
}
BitVec checkfence::encode::bvXor(CnfBuilder &B, const BitVec &A,
                                 const BitVec &Bv) {
  return bitwise(B, A, Bv, &CnfBuilder::xorLit);
}

void checkfence::encode::bvAssertEq(CnfBuilder &B, const BitVec &A,
                                    const BitVec &Bv) {
  int W = std::max(A.width(), Bv.width());
  BitVec X = zext(B, A, W), Y = zext(B, Bv, W);
  for (int I = 0; I < W; ++I) {
    B.addClause(~X.bit(I), Y.bit(I));
    B.addClause(X.bit(I), ~Y.bit(I));
  }
}

uint64_t checkfence::encode::bvModelValue(const sat::Solver &S,
                                          const CnfBuilder &B,
                                          const BitVec &V) {
  uint64_t Out = 0;
  for (int I = 0; I < V.width() && I < 64; ++I)
    if (S.modelValue(V.bit(I)) == sat::LBool::True)
      Out |= (uint64_t(1) << I);
  return Out;
}
