//===--- OrderEncoding.cpp - the memory order relation M -------------------===//
//
// Part of the CheckFence reproduction (PLDI'07).
//
//===----------------------------------------------------------------------===//

#include "encode/OrderEncoding.h"

#include "encode/BitVec.h"
#include "trans/RangeAnalysis.h"

#include <cassert>

using namespace checkfence;
using namespace checkfence::encode;

MemoryOrder::MemoryOrder(CnfBuilder &B, std::vector<AccessInfo> Accesses,
                         OrderMode Mode, bool SerialOps,
                         const std::vector<std::pair<int, int>> &ForcedPairs)
    : B(B), Accs(std::move(Accesses)), Mode(Mode), SerialOps(SerialOps) {
  // Map accesses to units.
  UnitOf.resize(Accs.size());
  if (SerialOps) {
    // Units are operation invocations. Accesses with Group -1 each get a
    // fresh unit of their own.
    std::vector<int> GroupUnit;
    for (size_t I = 0; I < Accs.size(); ++I) {
      int G = Accs[I].Group;
      if (G < 0) {
        UnitOf[I] = NumUnits++;
        continue;
      }
      if (G >= static_cast<int>(GroupUnit.size()))
        GroupUnit.resize(G + 1, -1);
      if (GroupUnit[G] < 0)
        GroupUnit[G] = NumUnits++;
      UnitOf[I] = GroupUnit[G];
    }
  } else {
    NumUnits = static_cast<int>(Accs.size());
    for (size_t I = 0; I < Accs.size(); ++I)
      UnitOf[I] = static_cast<int>(I);
  }

  // Translate access-level forced pairs to unit level (intra-unit pairs are
  // handled by program order).
  std::vector<std::pair<int, int>> UnitForced;
  for (auto [A, Bx] : ForcedPairs) {
    int UA = UnitOf[A], UB = UnitOf[Bx];
    if (UA != UB)
      UnitForced.push_back({UA, UB});
  }

  UnitBefore.assign(static_cast<size_t>(NumUnits) * NumUnits, Lit());
  if (Mode == OrderMode::Pairwise)
    buildPairwise(UnitForced);
  else
    buildRank(UnitForced);
}

void MemoryOrder::buildPairwise(
    const std::vector<std::pair<int, int>> &Forced) {
  const int N = NumUnits;
  if (N == 0)
    return;

  // Adjacency of known edges; close transitively so forced chains become
  // constants rather than variables.
  std::vector<uint8_t> Known(static_cast<size_t>(N) * N, 0);
  for (auto [A, Bx] : Forced)
    Known[static_cast<size_t>(A) * N + Bx] = 1;
  for (int K = 0; K < N; ++K)
    for (int I = 0; I < N; ++I) {
      if (!Known[static_cast<size_t>(I) * N + K])
        continue;
      for (int J = 0; J < N; ++J)
        if (Known[static_cast<size_t>(K) * N + J])
          Known[static_cast<size_t>(I) * N + J] = 1;
    }

  // Assign literals: constants for closed edges, fresh vars otherwise
  // (shared between (i,j) and (j,i) for antisymmetry).
  for (int I = 0; I < N; ++I) {
    for (int J = I + 1; J < N; ++J) {
      bool FwdKnown = Known[static_cast<size_t>(I) * N + J];
      bool BwdKnown = Known[static_cast<size_t>(J) * N + I];
      assert(!(FwdKnown && BwdKnown) && "forced order is cyclic");
      Lit L;
      if (FwdKnown) {
        L = B.trueLit();
      } else if (BwdKnown) {
        L = B.falseLit();
      } else {
        L = B.fresh();
        ++OrderVars;
      }
      setUnitBefore(I, J, L);
    }
  }

  // Transitivity: for each ordered triple (x, y, z):
  //   x<y && y<z -> x<z. Skip clauses statically satisfied.
  for (int X = 0; X < N; ++X)
    for (int Y = 0; Y < N; ++Y) {
      if (Y == X)
        continue;
      Lit XY = unitBefore(X, Y);
      if (B.isFalse(XY))
        continue;
      for (int Z = 0; Z < N; ++Z) {
        if (Z == X || Z == Y)
          continue;
        Lit YZ = unitBefore(Y, Z);
        Lit XZ = unitBefore(X, Z);
        if (B.isFalse(YZ) || B.isTrue(XZ))
          continue;
        std::vector<Lit> Clause;
        if (!B.isTrue(XY))
          Clause.push_back(~XY);
        if (!B.isTrue(YZ))
          Clause.push_back(~YZ);
        if (!B.isFalse(XZ))
          Clause.push_back(XZ);
        B.addClause(Clause);
      }
    }
}

void MemoryOrder::buildRank(const std::vector<std::pair<int, int>> &Forced) {
  const int N = NumUnits;
  if (N == 0)
    return;
  int W = trans::RangeInfo::bitsFor(N > 1 ? N - 1 : 1);

  std::vector<BitVec> Ranks;
  Ranks.reserve(N);
  for (int I = 0; I < N; ++I)
    Ranks.push_back(BitVec::fresh(B, W));
  OrderVars = N * W;

  // before(i,j) := rank_i < rank_j; distinct ranks keep the order total.
  for (int I = 0; I < N; ++I)
    for (int J = I + 1; J < N; ++J) {
      Lit L = bvUlt(B, Ranks[I], Ranks[J]);
      setUnitBefore(I, J, L);
      B.addClause(~bvEq(B, Ranks[I], Ranks[J]));
    }

  for (auto [A, Bx] : Forced)
    B.addClause(unitBefore(A, Bx));
}

int MemoryOrder::groupOf(int Access) const { return UnitOf[Access]; }

Lit MemoryOrder::before(int A, int Bx) const {
  assert(A != Bx && "order is irreflexive");
  int UA = UnitOf[A], UB = UnitOf[Bx];
  if (UA == UB) {
    // Same unit (same invocation, hence same thread): program order.
    bool Before = Accs[A].IndexInThread < Accs[Bx].IndexInThread;
    return B.boolLit(Before);
  }
  return unitBefore(UA, UB);
}
