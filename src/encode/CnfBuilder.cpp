//===--- CnfBuilder.cpp - Tseitin circuit construction ---------------------===//

#include "encode/CnfBuilder.h"

#include <algorithm>

using namespace checkfence;
using namespace checkfence::encode;

namespace {
enum GateOp { OpAnd = 1, OpXor = 2, OpIte = 3 };
} // namespace

Lit CnfBuilder::andLit(Lit A, Lit B) {
  if (isFalse(A) || isFalse(B))
    return falseLit();
  if (isTrue(A))
    return B;
  if (isTrue(B))
    return A;
  if (A == B)
    return A;
  if (A == ~B)
    return falseLit();
  int X = std::min(A.Code, B.Code), Y = std::max(A.Code, B.Code);
  auto Key = std::make_tuple(static_cast<int>(OpAnd), X, Y);
  auto It = BinCache.find(Key);
  if (It != BinCache.end())
    return It->second;
  Lit Out = fresh();
  addClause(~Out, A);
  addClause(~Out, B);
  addClause(Out, ~A, ~B);
  BinCache[Key] = Out;
  return Out;
}

Lit CnfBuilder::orLit(Lit A, Lit B) { return ~andLit(~A, ~B); }

Lit CnfBuilder::xorLit(Lit A, Lit B) {
  if (isFalse(A))
    return B;
  if (isFalse(B))
    return A;
  if (isTrue(A))
    return ~B;
  if (isTrue(B))
    return ~A;
  if (A == B)
    return falseLit();
  if (A == ~B)
    return trueLit();
  // Normalize: strip signs into a result inversion so the cache hits for
  // all four sign combinations.
  bool Invert = false;
  if (A.negated()) {
    A = ~A;
    Invert = !Invert;
  }
  if (B.negated()) {
    B = ~B;
    Invert = !Invert;
  }
  int X = std::min(A.Code, B.Code), Y = std::max(A.Code, B.Code);
  auto Key = std::make_tuple(static_cast<int>(OpXor), X, Y);
  auto It = BinCache.find(Key);
  if (It != BinCache.end())
    return It->second ^ Invert;
  Lit Out = fresh();
  addClause(~Out, A, B);
  addClause(~Out, ~A, ~B);
  addClause(Out, ~A, B);
  addClause(Out, A, ~B);
  BinCache[Key] = Out;
  return Out ^ Invert;
}

Lit CnfBuilder::iteLit(Lit C, Lit A, Lit B) {
  if (isTrue(C))
    return A;
  if (isFalse(C))
    return B;
  if (A == B)
    return A;
  if (isTrue(A))
    return orLit(C, B);
  if (isFalse(A))
    return andLit(~C, B);
  if (isTrue(B))
    return orLit(~C, A);
  if (isFalse(B))
    return andLit(C, A);
  if (A == ~B)
    return xorLit(~C, A) /* C ? A : ~A == C <-> A */;
  auto Key = std::make_tuple((static_cast<int>(OpIte) << 24) ^ C.Code, A.Code,
                             B.Code);
  auto It = IteCache.find(Key);
  if (It != IteCache.end())
    return It->second;
  Lit Out = fresh();
  addClause(~C, ~A, Out);
  addClause(~C, A, ~Out);
  addClause(C, ~B, Out);
  addClause(C, B, ~Out);
  IteCache[Key] = Out;
  return Out;
}

Lit CnfBuilder::andLits(const std::vector<Lit> &Ls) {
  // Fold constants first, then build a clause-based conjunction:
  // Out -> each Li; (all Li) -> Out.
  std::vector<Lit> Used;
  for (Lit L : Ls) {
    if (isFalse(L))
      return falseLit();
    if (!isTrue(L))
      Used.push_back(L);
  }
  if (Used.empty())
    return trueLit();
  if (Used.size() == 1)
    return Used[0];
  if (Used.size() == 2)
    return andLit(Used[0], Used[1]);
  Lit Out = fresh();
  std::vector<Lit> Long;
  Long.push_back(Out);
  for (Lit L : Used) {
    addClause(~Out, L);
    Long.push_back(~L);
  }
  addClause(Long);
  return Out;
}

Lit CnfBuilder::orLits(const std::vector<Lit> &Ls) {
  std::vector<Lit> Neg;
  Neg.reserve(Ls.size());
  for (Lit L : Ls)
    Neg.push_back(~L);
  return ~andLits(Neg);
}
