//===--- BitVec.h - bitvector circuits over SAT literals --------*- C++ -*-==//
//
// Part of the CheckFence reproduction (PLDI'07).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fixed-width bitvectors of SAT literals (LSB first) with the circuit
/// operations the value encoding needs: constants, equality, unsigned
/// comparison, addition/subtraction, multiplexing, and bitwise logic.
/// The range analysis determines widths; most operations in the studied
/// programs are instead encoded as enumerated tables, so these circuits are
/// the fallback for wide/unbounded values.
///
//===----------------------------------------------------------------------===//

#ifndef CHECKFENCE_ENCODE_BITVEC_H
#define CHECKFENCE_ENCODE_BITVEC_H

#include "encode/CnfBuilder.h"

#include <cstdint>
#include <vector>

namespace checkfence {
namespace encode {

/// A little-endian vector of literals.
struct BitVec {
  std::vector<Lit> Bits;

  BitVec() = default;
  explicit BitVec(std::vector<Lit> B) : Bits(std::move(B)) {}

  int width() const { return static_cast<int>(Bits.size()); }
  Lit bit(int I) const { return Bits[I]; }

  /// A fresh vector of \p Width unconstrained bits.
  static BitVec fresh(CnfBuilder &B, int Width);
  /// The constant \p Value in \p Width bits (must fit).
  static BitVec constant(CnfBuilder &B, uint64_t Value, int Width);
};

/// Zero-extends \p V to \p Width (no-op if already wide enough).
BitVec zext(CnfBuilder &B, const BitVec &V, int Width);

/// a == b (widths aligned by zero extension).
Lit bvEq(CnfBuilder &B, const BitVec &A, const BitVec &Bv);
/// a == constant.
Lit bvEqConst(CnfBuilder &B, const BitVec &A, uint64_t C);
/// a < b, unsigned.
Lit bvUlt(CnfBuilder &B, const BitVec &A, const BitVec &Bv);
/// a != 0.
Lit bvNonZero(CnfBuilder &B, const BitVec &A);

/// c ? a : b per bit (widths aligned by zero extension).
BitVec bvMux(CnfBuilder &B, Lit C, const BitVec &A, const BitVec &Bv);

/// a + b in OutWidth bits (ripple-carry; inputs zero-extended).
BitVec bvAdd(CnfBuilder &B, const BitVec &A, const BitVec &Bv, int OutWidth);
/// a - b in OutWidth bits, two's complement wraparound.
BitVec bvSub(CnfBuilder &B, const BitVec &A, const BitVec &Bv, int OutWidth);
/// a * b in OutWidth bits (shift-and-add).
BitVec bvMul(CnfBuilder &B, const BitVec &A, const BitVec &Bv, int OutWidth);

/// Bitwise ops (widths aligned by zero extension, result max width).
BitVec bvAnd(CnfBuilder &B, const BitVec &A, const BitVec &Bv);
BitVec bvOr(CnfBuilder &B, const BitVec &A, const BitVec &Bv);
BitVec bvXor(CnfBuilder &B, const BitVec &A, const BitVec &Bv);

/// Asserts a == b (widths aligned).
void bvAssertEq(CnfBuilder &B, const BitVec &A, const BitVec &Bv);

/// Decodes the model value of \p V from the solver after a Sat result.
uint64_t bvModelValue(const sat::Solver &S, const CnfBuilder &B,
                      const BitVec &V);

} // namespace encode
} // namespace checkfence

#endif // CHECKFENCE_ENCODE_BITVEC_H
