//===--- OrderEncoding.h - the memory order relation M ----------*- C++ -*-==//
//
// Part of the CheckFence reproduction (PLDI'07).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Encodes the total memory order <M over the memory accesses of an
/// execution (Sec. 3.2.1 auxiliary variables, item 1):
///
///  * \b Pairwise (the paper's encoding): one boolean Mxy per access pair,
///    antisymmetry by literal sharing, transitivity by explicit clauses
///    (quadratic variables, cubic clauses).
///  * \b Rank (our ablation, E12 in DESIGN.md): a rank bitvector per access
///    with pairwise-distinct values; Mxy is a comparator output and
///    transitivity is free.
///
/// Orders can operate at \e access granularity or, for the Serial "memory
/// model" (Sec. 2.3.2), at \e operation-invocation granularity: accesses of
/// the same invocation are ordered by program order and invocations are
/// totally ordered as units, which is exactly the seriality condition.
///
/// Statically-known edges (program order under SC, atomic-block interiors,
/// init-thread-before-others) are passed in as forced pairs; the pairwise
/// encoder closes them transitively (Floyd-Warshall) and replaces the
/// corresponding variables by constants before emitting clauses.
///
//===----------------------------------------------------------------------===//

#ifndef CHECKFENCE_ENCODE_ORDERENCODING_H
#define CHECKFENCE_ENCODE_ORDERENCODING_H

#include "encode/CnfBuilder.h"

#include <cstdint>
#include <vector>

namespace checkfence {
namespace encode {

enum class OrderMode { Pairwise, Rank };

/// Per-access metadata the order encoder needs.
struct AccessInfo {
  int Thread = 0;
  int IndexInThread = 0;
  int Group = -1; ///< operation invocation (serial granularity), -1 = own
};

/// The encoded total order.
class MemoryOrder {
public:
  /// \p SerialOps selects invocation granularity; in that mode accesses
  /// with the same Group are ordered by (Thread, IndexInThread).
  /// \p ForcedPairs are (a, b) access-index pairs with a <M b required.
  MemoryOrder(CnfBuilder &B, std::vector<AccessInfo> Accesses,
              OrderMode Mode, bool SerialOps,
              const std::vector<std::pair<int, int>> &ForcedPairs);

  /// Literal for "access A is ordered before access B" (A != B).
  Lit before(int A, int B) const;

  int numAccesses() const { return static_cast<int>(Accs.size()); }

  /// Statistics: variables/clauses contributed by the order relation are
  /// visible through the underlying CnfBuilder; this reports the number of
  /// order variables created (for the Fig. 10-style tables).
  int numOrderVars() const { return OrderVars; }

private:
  void buildPairwise(const std::vector<std::pair<int, int>> &Forced);
  void buildRank(const std::vector<std::pair<int, int>> &Forced);

  // Group-level helpers (serial mode).
  int groupOf(int Access) const;
  Lit groupBefore(int GA, int GB) const;

  CnfBuilder &B;
  std::vector<AccessInfo> Accs;
  OrderMode Mode;
  bool SerialOps;
  int OrderVars = 0;

  // Unit granularity: in serial mode, units are groups; otherwise units
  // are accesses. UnitOf maps access -> unit.
  int NumUnits = 0;
  std::vector<int> UnitOf;
  // Flat NumUnits x NumUnits matrix of before-literals (diagonal unused).
  std::vector<Lit> UnitBefore;

  Lit unitBefore(int UA, int UB) const {
    return UnitBefore[static_cast<size_t>(UA) * NumUnits + UB];
  }
  void setUnitBefore(int UA, int UB, Lit L) {
    UnitBefore[static_cast<size_t>(UA) * NumUnits + UB] = L;
    UnitBefore[static_cast<size_t>(UB) * NumUnits + UA] = ~L;
  }
};

} // namespace encode
} // namespace checkfence

#endif // CHECKFENCE_ENCODE_ORDERENCODING_H
