//===--- ValueEncoding.cpp - tagged LSL values as SAT circuits -------------===//
//
// Part of the CheckFence reproduction (PLDI'07).
//
//===----------------------------------------------------------------------===//

#include "encode/ValueEncoding.h"

#include "support/Format.h"

#include <cassert>

using namespace checkfence;
using namespace checkfence::encode;
using namespace checkfence::trans;

using lsl::PrimOpKind;
using lsl::Value;

ValueEncoder::ValueEncoder(CnfBuilder &B, const FlatProgram &P,
                           const RangeInfo &R, const EncodeOptions &Opts)
    : Cnf(B), P(P), R(R), Opts(Opts) {
  PtrWidth = R.PointerUniverse.empty()
                 ? 1
                 : RangeInfo::bitsFor(R.PointerUniverse.size() - 1);
}

EncValue ValueEncoder::constValue(const Value &V) {
  EncValue E;
  switch (V.kind()) {
  case Value::Kind::Undefined:
    E.IsInt = Cnf.falseLit();
    E.IsPtr = Cnf.falseLit();
    E.IntBits = BitVec::constant(Cnf, 0, 1);
    E.PtrBits = BitVec::constant(Cnf, 0, PtrWidth);
    return E;
  case Value::Kind::Int: {
    E.IsInt = Cnf.trueLit();
    E.IsPtr = Cnf.falseLit();
    int64_t N = V.intValue();
    assert(N >= 0 && "negative integers unsupported by the encoding");
    int W = RangeInfo::bitsFor(static_cast<uint64_t>(N));
    E.IntBits = BitVec::constant(Cnf, static_cast<uint64_t>(N), W);
    E.PtrBits = BitVec::constant(Cnf, 0, PtrWidth);
    return E;
  }
  case Value::Kind::Ptr: {
    E.IsInt = Cnf.falseLit();
    E.IsPtr = Cnf.trueLit();
    int Idx = R.universeIndex(V);
    assert(Idx >= 0 && "pointer constant missing from universe");
    E.IntBits = BitVec::constant(Cnf, 0, 1);
    E.PtrBits = BitVec::constant(Cnf, static_cast<uint64_t>(Idx), PtrWidth);
    return E;
  }
  }
  return E;
}

EncValue ValueEncoder::freshForSet(const ValueSet &Set) {
  EncValue E;
  bool MayUndef = Set.mayBeUndef();
  bool MayInt = Set.mayBeInt();
  bool MayPtr = Set.mayBePtr();

  // Tag literals, constant where the set rules a kind out.
  if (MayInt && (MayUndef || MayPtr))
    E.IsInt = Cnf.fresh();
  else
    E.IsInt = Cnf.boolLit(MayInt);
  if (MayPtr && (MayUndef || MayInt))
    E.IsPtr = Cnf.fresh();
  else
    E.IsPtr = Cnf.boolLit(MayPtr);
  if (!Cnf.isConst(E.IsInt) && !Cnf.isConst(E.IsPtr))
    Cnf.addClause(~E.IsInt, ~E.IsPtr); // tags are mutually exclusive

  int IntW = Opts.MinimalWidths ? R.intBitsFor(Set, RangeOpts)
                                : R.GlobalIntBits;
  E.IntBits = MayInt ? BitVec::fresh(Cnf, IntW)
                     : BitVec::constant(Cnf, 0, 1);
  E.PtrBits = MayPtr ? BitVec::fresh(Cnf, PtrWidth)
                     : BitVec::constant(Cnf, 0, PtrWidth);
  return E;
}

void ValueEncoder::addDomainConstraint(const EncValue &E,
                                       const ValueSet &Set) {
  if (Set.Top)
    return; // unconstrained
  std::vector<Lit> Options;
  Options.reserve(Set.Values.size());
  for (const Value &V : Set.Values)
    Options.push_back(eqConstLit(E, V));
  Cnf.addClause(Options.empty() ? std::vector<Lit>{Cnf.falseLit()}
                                : Options);
}

Lit ValueEncoder::eqConstLit(const EncValue &E, const Value &V) {
  switch (V.kind()) {
  case Value::Kind::Undefined:
    return Cnf.andLit(~E.IsInt, ~E.IsPtr);
  case Value::Kind::Int: {
    int64_t N = V.intValue();
    if (N < 0)
      return Cnf.falseLit(); // negatives unreachable by construction
    return Cnf.andLit(E.IsInt,
                      bvEqConst(Cnf, E.IntBits, static_cast<uint64_t>(N)));
  }
  case Value::Kind::Ptr: {
    int Idx = R.universeIndex(V);
    if (Idx < 0)
      return Cnf.falseLit();
    return Cnf.andLit(E.IsPtr, bvEqConst(Cnf, E.PtrBits,
                                         static_cast<uint64_t>(Idx)));
  }
  }
  return Cnf.falseLit();
}

Lit ValueEncoder::eqLit(const EncValue &A, const EncValue &B) {
  Lit BothUndef = Cnf.andLits({~A.IsInt, ~A.IsPtr, ~B.IsInt, ~B.IsPtr});
  Lit IntEq = Cnf.andLits({A.IsInt, B.IsInt, bvEq(Cnf, A.IntBits, B.IntBits)});
  Lit PtrEq = Cnf.andLits({A.IsPtr, B.IsPtr, bvEq(Cnf, A.PtrBits, B.PtrBits)});
  return Cnf.orLits({BothUndef, IntEq, PtrEq});
}

Lit ValueEncoder::truthyLit(const EncValue &E) {
  return Cnf.orLit(E.IsPtr, Cnf.andLit(E.IsInt, bvNonZero(Cnf, E.IntBits)));
}

Lit ValueEncoder::guardLit(ValueId Id) {
  auto It = GuardCache.find(Id);
  if (It != GuardCache.end())
    return It->second;
  Lit L = truthyLit(value(Id));
  GuardCache[Id] = L;
  return L;
}

bool ValueEncoder::encodeAll() {
  Values.resize(P.Defs.size());
  for (size_t I = 0; I < P.Defs.size(); ++I)
    if (!encodeDef(static_cast<ValueId>(I)))
      return false;
  return true;
}

bool ValueEncoder::encodeDef(ValueId Id) {
  const FlatDef &D = P.Defs[Id];
  const ValueSet &Set = R.DefSets[Id];

  // Constants (always) and singleton-range definitions (when the range
  // analysis results are enabled) become constant encodings.
  if (D.K == FlatDef::Kind::Const) {
    Values[Id] = constValue(D.Val);
    return true;
  }
  if (Opts.FixConstants && Set.isSingleton()) {
    Values[Id] = constValue(*Set.Values.begin());
    return true;
  }

  switch (D.K) {
  case FlatDef::Kind::Const:
    return true; // handled above

  case FlatDef::Kind::Choice: {
    EncValue E = freshForSet(Set);
    // The domain constraint *is* the semantics of a nondeterministic pick.
    addDomainConstraint(E, Set);
    Values[Id] = E;
    return true;
  }

  case FlatDef::Kind::LoadVal: {
    // Constrained later by the memory-model axioms; the domain constraint
    // (a superset of reachable values) improves propagation.
    EncValue E = freshForSet(Set);
    addDomainConstraint(E, Set);
    Values[Id] = E;
    return true;
  }

  case FlatDef::Kind::Op: {
    // Prefer the enumerated table; fall back to circuits for wide values.
    size_t Product = 1;
    bool Tablable = true;
    for (ValueId O : D.Operands) {
      const ValueSet &OS = R.DefSets[O];
      if (OS.Top) {
        Tablable = false;
        break;
      }
      Product *= OS.Values.size();
      if (Product > Opts.TableLimit) {
        Tablable = false;
        break;
      }
    }
    if (Tablable)
      return encodeOpTable(Id, D);
    return encodeOpCircuit(Id, D);
  }
  }
  return true;
}

bool ValueEncoder::encodeOpTable(ValueId Id, const FlatDef &D) {
  const ValueSet &Set = R.DefSets[Id];
  EncValue E = freshForSet(Set);
  addDomainConstraint(E, Set);
  Values[Id] = E;

  // Enumerate the operand product; each combination implies the result.
  // Completeness holds because every operand carries a domain constraint.
  size_t N = D.Operands.size();
  std::vector<std::vector<Value>> Opts2(N);
  for (size_t I = 0; I < N; ++I) {
    const ValueSet &OS = R.DefSets[D.Operands[I]];
    Opts2[I].assign(OS.Values.begin(), OS.Values.end());
    if (Opts2[I].empty())
      return true; // operand set empty: dead code, nothing to constrain
  }
  std::vector<size_t> Iter(N, 0);
  std::vector<Value> Args(N);
  for (;;) {
    std::vector<Lit> Combo;
    bool ComboPossible = true;
    for (size_t I = 0; I < N; ++I) {
      Args[I] = Opts2[I][Iter[I]];
      Lit M = eqConstLit(value(D.Operands[I]), Args[I]);
      if (Cnf.isFalse(M)) {
        ComboPossible = false;
        break;
      }
      if (!Cnf.isTrue(M))
        Combo.push_back(M);
    }
    if (ComboPossible) {
      Value Result = lsl::evalPrimOp(D.Op, Args, D.Imm);
      Lit ResLit = eqConstLit(E, Result);
      std::vector<Lit> Clause;
      for (Lit C : Combo)
        Clause.push_back(~C);
      Clause.push_back(ResLit);
      Cnf.addClause(Clause);
    }
    size_t I = 0;
    for (; I < N; ++I) {
      if (++Iter[I] < Opts2[I].size())
        break;
      Iter[I] = 0;
    }
    if (I == N)
      break;
  }
  return true;
}

bool ValueEncoder::encodeOpCircuit(ValueId Id, const FlatDef &D) {
  const ValueSet &Set = R.DefSets[Id];
  auto A = [&](size_t I) -> const EncValue & {
    return value(D.Operands[I]);
  };
  int OutIntW = Opts.MinimalWidths ? R.intBitsFor(Set, RangeOpts)
                                   : R.GlobalIntBits;

  EncValue E;
  E.PtrBits = BitVec::constant(Cnf, 0, PtrWidth);
  E.IsPtr = Cnf.falseLit();

  auto BoolResult = [&](Lit Defined, Lit Bit) {
    E.IsInt = Defined;
    E.IntBits = BitVec(std::vector<Lit>{Bit});
  };

  switch (D.Op) {
  case PrimOpKind::Copy:
    Values[Id] = A(0);
    return true;

  case PrimOpKind::Add:
  case PrimOpKind::Sub:
  case PrimOpKind::Mul: {
    Lit BothInt = Cnf.andLit(A(0).IsInt, A(1).IsInt);
    E.IsInt = BothInt;
    if (D.Op == PrimOpKind::Add)
      E.IntBits = bvAdd(Cnf, A(0).IntBits, A(1).IntBits, OutIntW);
    else if (D.Op == PrimOpKind::Sub)
      E.IntBits = bvSub(Cnf, A(0).IntBits, A(1).IntBits, OutIntW);
    else
      E.IntBits = bvMul(Cnf, A(0).IntBits, A(1).IntBits, OutIntW);
    break;
  }

  case PrimOpKind::BitAnd:
    E.IsInt = Cnf.andLit(A(0).IsInt, A(1).IsInt);
    E.IntBits = bvAnd(Cnf, A(0).IntBits, A(1).IntBits);
    break;
  case PrimOpKind::BitOr:
    E.IsInt = Cnf.andLit(A(0).IsInt, A(1).IsInt);
    E.IntBits = bvOr(Cnf, A(0).IntBits, A(1).IntBits);
    break;
  case PrimOpKind::BitXor:
    E.IsInt = Cnf.andLit(A(0).IsInt, A(1).IsInt);
    E.IntBits = bvXor(Cnf, A(0).IntBits, A(1).IntBits);
    break;

  case PrimOpKind::Eq:
  case PrimOpKind::Ne: {
    Lit Defined = Cnf.andLit(definedLit(A(0)), definedLit(A(1)));
    Lit Raw = eqLit(A(0), A(1));
    BoolResult(Defined, D.Op == PrimOpKind::Eq ? Raw : ~Raw);
    break;
  }

  case PrimOpKind::Lt:
  case PrimOpKind::Gt: {
    const EncValue &X = D.Op == PrimOpKind::Lt ? A(0) : A(1);
    const EncValue &Y = D.Op == PrimOpKind::Lt ? A(1) : A(0);
    Lit BothInt = Cnf.andLit(A(0).IsInt, A(1).IsInt);
    BoolResult(BothInt, bvUlt(Cnf, X.IntBits, Y.IntBits));
    break;
  }
  case PrimOpKind::Le:
  case PrimOpKind::Ge: {
    const EncValue &X = D.Op == PrimOpKind::Le ? A(1) : A(0);
    const EncValue &Y = D.Op == PrimOpKind::Le ? A(0) : A(1);
    Lit BothInt = Cnf.andLit(A(0).IsInt, A(1).IsInt);
    BoolResult(BothInt, ~bvUlt(Cnf, X.IntBits, Y.IntBits));
    break;
  }

  case PrimOpKind::LNot: {
    BoolResult(definedLit(A(0)), ~truthyLit(A(0)));
    break;
  }
  case PrimOpKind::LAnd: {
    // Kleene semantics (see evalPrimOp): defined if either side is
    // defined-false or both sides are defined.
    Lit AFalse = Cnf.andLit(definedLit(A(0)), ~truthyLit(A(0)));
    Lit BFalse = Cnf.andLit(definedLit(A(1)), ~truthyLit(A(1)));
    Lit BothDef = Cnf.andLit(definedLit(A(0)), definedLit(A(1)));
    Lit Defined = Cnf.orLits({AFalse, BFalse, BothDef});
    BoolResult(Defined, Cnf.andLit(truthyLit(A(0)), truthyLit(A(1))));
    break;
  }
  case PrimOpKind::LOr: {
    Lit ATrue = truthyLit(A(0));
    Lit BTrue = truthyLit(A(1));
    Lit BothDef = Cnf.andLit(definedLit(A(0)), definedLit(A(1)));
    Lit Defined = Cnf.orLits({ATrue, BTrue, BothDef});
    BoolResult(Defined, Cnf.orLit(ATrue, BTrue));
    break;
  }

  case PrimOpKind::Select: {
    Lit CDef = definedLit(A(0));
    Lit CT = truthyLit(A(0));
    E.IsInt = Cnf.andLit(CDef, Cnf.iteLit(CT, A(1).IsInt, A(2).IsInt));
    E.IsPtr = Cnf.andLit(CDef, Cnf.iteLit(CT, A(1).IsPtr, A(2).IsPtr));
    E.IntBits = bvMux(Cnf, CT, A(1).IntBits, A(2).IntBits);
    E.PtrBits = bvMux(Cnf, CT, A(1).PtrBits, A(2).PtrBits);
    break;
  }

  default:
    fail(formatString("cannot encode %s over wide operand sets",
                      lsl::primOpName(D.Op)));
    return false;
  }

  Values[Id] = E;
  return true;
}

lsl::Value ValueEncoder::decode(const sat::Solver &S, ValueId Id) const {
  const EncValue &E = Values[Id];
  bool IsInt = S.modelValue(E.IsInt) == sat::LBool::True;
  bool IsPtr = S.modelValue(E.IsPtr) == sat::LBool::True;
  if (IsInt)
    return Value::integer(
        static_cast<int64_t>(bvModelValue(S, Cnf, E.IntBits)));
  if (IsPtr) {
    uint64_t Idx = bvModelValue(S, Cnf, E.PtrBits);
    if (Idx < R.PointerUniverse.size())
      return R.PointerUniverse[Idx];
  }
  return Value::undef();
}
