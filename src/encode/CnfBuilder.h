//===--- CnfBuilder.h - Tseitin circuit construction ------------*- C++ -*-==//
//
// Part of the CheckFence reproduction (PLDI'07).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builds CNF incrementally into any sat::ClauseSink (a live solver or a
/// CnfStore artifact): fresh variables, constant literals, and
/// Tseitin-encoded gates (and/or/xor/ite) with structural hashing so
/// identical subcircuits share literals.
///
//===----------------------------------------------------------------------===//

#ifndef CHECKFENCE_ENCODE_CNFBUILDER_H
#define CHECKFENCE_ENCODE_CNFBUILDER_H

#include "sat/Solver.h"

#include <cstdint>
#include <map>
#include <tuple>
#include <vector>

namespace checkfence {
namespace encode {

using sat::Lit;
using sat::Var;

/// Incremental CNF builder over a clause sink.
class CnfBuilder {
public:
  explicit CnfBuilder(sat::ClauseSink &S) : S(S) {
    Var T = S.newVar();
    True = Lit::make(T);
    S.addClause(True);
  }

  sat::ClauseSink &sink() { return S; }

  Lit trueLit() const { return True; }
  Lit falseLit() const { return ~True; }
  Lit boolLit(bool B) const { return B ? True : ~True; }

  bool isTrue(Lit L) const { return L == True; }
  bool isFalse(Lit L) const { return L == ~True; }
  bool isConst(Lit L) const { return isTrue(L) || isFalse(L); }

  Lit fresh() { return Lit::make(S.newVar()); }

  void addClause(const std::vector<Lit> &C) {
    ClausesAdded++;
    S.addClause(C);
  }
  void addClause(Lit A) { addClause(std::vector<Lit>{A}); }
  void addClause(Lit A, Lit B) { addClause(std::vector<Lit>{A, B}); }
  void addClause(Lit A, Lit B, Lit C) { addClause(std::vector<Lit>{A, B, C}); }

  /// y <-> a && b
  Lit andLit(Lit A, Lit B);
  /// y <-> a || b
  Lit orLit(Lit A, Lit B);
  /// y <-> a ^ b
  Lit xorLit(Lit A, Lit B);
  /// y <-> (a <-> b)
  Lit iffLit(Lit A, Lit B) { return ~xorLit(A, B); }
  /// y <-> (c ? a : b)
  Lit iteLit(Lit C, Lit A, Lit B);
  /// Conjunction / disjunction of a list (folds constants).
  Lit andLits(const std::vector<Lit> &Ls);
  Lit orLits(const std::vector<Lit> &Ls);

  /// Asserts A -> B.
  void implies(Lit A, Lit B) { addClause(~A, B); }
  /// Asserts (A && B) -> C.
  void implies(Lit A, Lit B, Lit C) { addClause(~A, ~B, C); }

  uint64_t numClausesAdded() const { return ClausesAdded; }

private:
  sat::ClauseSink &S;
  Lit True;
  uint64_t ClausesAdded = 0;

  // Structural hashing of gates: key = (op, min, max) for commutative ops,
  // (op, a, b, c) for ite.
  std::map<std::tuple<int, int, int>, Lit> BinCache;
  std::map<std::tuple<int, int, int>, Lit> IteCache;
};

} // namespace encode
} // namespace checkfence

#endif // CHECKFENCE_ENCODE_CNFBUILDER_H
