//===--- ValueEncoding.h - tagged LSL values as SAT circuits ----*- C++ -*-==//
//
// Part of the CheckFence reproduction (PLDI'07).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Encodes the SSA definitions of a FlatProgram into SAT (the thread-local
/// Delta_k formulae of Sec. 3.2.1). Every LSL value is a tagged record:
///
///   tag     : IsInt / IsPtr literals (both false = undefined)
///   payload : an integer bitvector (width from the range analysis) or a
///             pointer-universe index bitvector
///
/// Definitions whose range set is a singleton become constants ("fixing
/// individual bits", Sec. 3.4 use (3)). Operations over small candidate
/// sets are encoded as enumerated tables driven by lsl::evalPrimOp - the
/// single source of operator semantics - with bit-level circuits (adders,
/// comparators, muxes) as the fallback for wide values.
///
//===----------------------------------------------------------------------===//

#ifndef CHECKFENCE_ENCODE_VALUEENCODING_H
#define CHECKFENCE_ENCODE_VALUEENCODING_H

#include "encode/BitVec.h"
#include "trans/FlatProgram.h"
#include "trans/RangeAnalysis.h"

#include <map>
#include <string>

namespace checkfence {
namespace encode {

/// A tagged value at the SAT level.
struct EncValue {
  Lit IsInt;
  Lit IsPtr;
  BitVec IntBits;
  BitVec PtrBits;
};

/// Switches that implement the range-analysis ablation (Fig. 11c): with
/// all three off, the encoder still knows the candidate sets (they are
/// required to encode pointer operations at all) but derives no constants,
/// no minimized widths, and no alias pruning from them.
struct EncodeOptions {
  bool FixConstants = true;
  bool MinimalWidths = true;
  bool AliasPruning = true;
  size_t TableLimit = 512; ///< max operand-set product for table encoding
};

/// Encodes all definitions of a FlatProgram.
class ValueEncoder {
public:
  ValueEncoder(CnfBuilder &B, const trans::FlatProgram &P,
               const trans::RangeInfo &R, const EncodeOptions &Opts);

  /// Runs the encoding. Returns false if an unsupported construct was hit
  /// (message in error()).
  bool encodeAll();

  const EncValue &value(trans::ValueId Id) const { return Values[Id]; }

  /// The 0/1 execution literal of a guard value (truthiness; undefined
  /// guards coerce to false - a CheckBranch flags them as errors).
  Lit guardLit(trans::ValueId Id);

  /// enc == v, as a literal.
  Lit eqConstLit(const EncValue &E, const lsl::Value &V);
  Lit eqConstLit(trans::ValueId Id, const lsl::Value &V) {
    return eqConstLit(value(Id), V);
  }

  /// Total value equality (undefined == undefined holds), as a literal.
  Lit eqLit(const EncValue &A, const EncValue &B);

  /// Literal "E is defined" (int or pointer).
  Lit definedLit(const EncValue &E) { return Cnf.orLit(E.IsInt, E.IsPtr); }
  /// Literal "E is truthy" (pointer, or nonzero int).
  Lit truthyLit(const EncValue &E);

  /// Encodes the constant \p V.
  EncValue constValue(const lsl::Value &V);

  /// Decodes the model value of definition \p Id after a Sat result.
  lsl::Value decode(const sat::Solver &S, trans::ValueId Id) const;

  const std::string &error() const { return ErrorMsg; }
  CnfBuilder &cnf() { return Cnf; }

private:
  EncValue freshForSet(const trans::ValueSet &Set);
  void addDomainConstraint(const EncValue &E, const trans::ValueSet &Set);
  bool encodeDef(trans::ValueId Id);
  bool encodeOpTable(trans::ValueId Id, const trans::FlatDef &D);
  bool encodeOpCircuit(trans::ValueId Id, const trans::FlatDef &D);
  void fail(const std::string &Msg) {
    if (ErrorMsg.empty())
      ErrorMsg = Msg;
  }

  CnfBuilder &Cnf;
  const trans::FlatProgram &P;
  const trans::RangeInfo &R;
  EncodeOptions Opts;
  trans::RangeOptions RangeOpts;

  std::vector<EncValue> Values;
  std::map<int, Lit> GuardCache;
  std::string ErrorMsg;
  int PtrWidth = 0;
};

} // namespace encode
} // namespace checkfence

#endif // CHECKFENCE_ENCODE_VALUEENCODING_H
