//===--- Lexer.h - tokenizer for CheckFence-C -------------------*- C++ -*-==//
//
// Part of the CheckFence reproduction (PLDI'07).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tokenizer for the C subset accepted by the frontend. Handles //- and
/// /**/-comments, identifiers/keywords, integer literals (decimal and hex),
/// string literals (used only as fence()/builtin arguments), and the C
/// punctuation the subset needs.
///
//===----------------------------------------------------------------------===//

#ifndef CHECKFENCE_FRONTEND_LEXER_H
#define CHECKFENCE_FRONTEND_LEXER_H

#include "frontend/Diag.h"
#include "support/SourceLoc.h"

#include <cstdint>
#include <string>
#include <vector>

namespace checkfence {
namespace frontend {

enum class TokKind : uint8_t {
  Eof,
  Identifier,
  Number,
  String,
  // Keywords.
  KwTypedef,
  KwStruct,
  KwEnum,
  KwExtern,
  KwStatic,
  KwConst,
  KwVolatile,
  KwUnsigned,
  KwSigned,
  KwVoid,
  KwInt,
  KwLong,
  KwShort,
  KwChar,
  KwBool,
  KwTrue,
  KwFalse,
  KwNull,
  KwIf,
  KwElse,
  KwWhile,
  KwDo,
  KwFor,
  KwReturn,
  KwBreak,
  KwContinue,
  KwAtomic,
  KwGoto,
  // Punctuation.
  LParen,
  RParen,
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  Semi,
  Comma,
  Colon,
  Question,
  Assign,      // =
  PlusAssign,  // +=
  MinusAssign, // -=
  Plus,
  Minus,
  Star,
  Slash,
  Percent,
  Amp,
  AmpAmp,
  Pipe,
  PipePipe,
  Caret,
  Tilde,
  Bang,
  EqEq,
  BangEq,
  Lt,
  Gt,
  Le,
  Ge,
  Shl,
  Shr,
  Arrow,
  Dot,
  PlusPlus,
  MinusMinus,
};

const char *tokKindName(TokKind K);

struct Token {
  TokKind K = TokKind::Eof;
  SourceLoc Loc;
  std::string Text;   // identifier spelling or string contents
  int64_t IntVal = 0; // Number

  bool is(TokKind Kind) const { return K == Kind; }
};

/// Tokenizes \p Source (already preprocessed). Appends an Eof token.
std::vector<Token> lex(const std::string &Source, DiagEngine &Diags);

} // namespace frontend
} // namespace checkfence

#endif // CHECKFENCE_FRONTEND_LEXER_H
