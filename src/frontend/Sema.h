//===--- Sema.h - light semantic analysis for CheckFence-C ------*- C++ -*-==//
//
// Part of the CheckFence reproduction (PLDI'07).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers the lowering needs: classification of the builtin operations
/// (fences, assert/assume, allocation, spin locks, pointer-mark packing)
/// and the address-taken analysis that decides which locals live in memory.
///
//===----------------------------------------------------------------------===//

#ifndef CHECKFENCE_FRONTEND_SEMA_H
#define CHECKFENCE_FRONTEND_SEMA_H

#include "frontend/AST.h"

#include <set>
#include <string>

namespace checkfence {
namespace frontend {

/// Builtin operations that the lowering intercepts instead of emitting a
/// call. They appear in implementation sources as 'extern' declarations
/// (paper Fig. 9 declares assert/fence/cas/new_node this way; cas itself is
/// written in CheckFence-C in the prelude using an atomic block).
enum class BuiltinKind {
  None,
  Fence,       ///< fence("load-load") etc.
  Assert,      ///< assert(expr)
  Assume,      ///< assume(expr)
  Observe,     ///< observe(expr) - appends to the observation vector
  Commit,      ///< commit() - marks an operation's commit point
  NewNode,     ///< new_node() - fresh heap cell group
  DeleteNode,  ///< delete_node(p) - no-op (no memory reuse; see DESIGN.md)
  SpinLock,    ///< spin_lock(l) - one-iteration acquire (spin reduction)
  SpinUnlock,  ///< spin_unlock(l)
  PtrMark,     ///< ptr_mark(p, b) - set packed mark bit
  PtrIsMarked, ///< ptr_is_marked(p)
  PtrUnmark,   ///< ptr_unmark(p)
};

/// Maps a callee name to its builtin, or BuiltinKind::None.
BuiltinKind classifyBuiltin(const std::string &Name);

/// Collects the names of local variables (and parameters) of \p F whose
/// address is taken anywhere in its body; those must be lowered to memory
/// cells rather than registers.
std::set<std::string> collectAddressTaken(const FuncDecl &F);

} // namespace frontend
} // namespace checkfence

#endif // CHECKFENCE_FRONTEND_SEMA_H
