//===--- AST.h - CheckFence-C abstract syntax -------------------*- C++ -*-==//
//
// Part of the CheckFence reproduction (PLDI'07).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// AST for the C subset. The paper used CIL to obtain a cleaned-up AST; we
/// parse the subset the five studied algorithms (and their test preludes)
/// need: typedefs, structs, enums, pointers, arrays, full integer
/// arithmetic, control flow, atomic blocks, and calls.
///
//===----------------------------------------------------------------------===//

#ifndef CHECKFENCE_FRONTEND_AST_H
#define CHECKFENCE_FRONTEND_AST_H

#include "support/SourceLoc.h"

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

namespace checkfence {
namespace frontend {

struct StructDecl;

//===----------------------------------------------------------------------===//
// Types
//===----------------------------------------------------------------------===//

/// Static C types. Only the structure that matters for lowering is kept:
/// pointers (for dereferencing), structs (for field offsets), arrays (for
/// indexing). All scalar flavours collapse to Int/Bool.
struct Type {
  enum class Kind : uint8_t { Void, Bool, Int, Ptr, Struct, Array };
  Kind K = Kind::Int;
  const Type *Pointee = nullptr; // Ptr
  StructDecl *Struct = nullptr;  // Struct
  const Type *Elem = nullptr;    // Array
  int ArraySize = 0;             // Array

  bool isPtr() const { return K == Kind::Ptr; }
  bool isStruct() const { return K == Kind::Struct; }
  bool isArray() const { return K == Kind::Array; }
  bool isScalar() const {
    return K == Kind::Int || K == Kind::Bool || K == Kind::Ptr ||
           K == Kind::Void;
  }
  std::string str() const;
};

struct FieldDecl {
  std::string Name;
  const Type *Ty = nullptr;
  int Index = 0; // offset ordinal within the struct (paper Fig. 5)
};

struct StructDecl {
  std::string Name; // tag or typedef name; may be synthetic
  std::vector<FieldDecl> Fields;
  bool Complete = false;

  const FieldDecl *findField(const std::string &Name) const {
    for (const FieldDecl &F : Fields)
      if (F.Name == Name)
        return &F;
    return nullptr;
  }
};

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

enum class UnaryOp : uint8_t {
  Neg,
  LNot,
  BitNot,
  Deref,
  AddrOf,
  PreInc,
  PreDec,
  PostInc,
  PostDec,
};

enum class BinaryOp : uint8_t {
  Add,
  Sub,
  Mul,
  Div,
  Mod,
  BitAnd,
  BitOr,
  BitXor,
  Shl,
  Shr,
  Eq,
  Ne,
  Lt,
  Le,
  Gt,
  Ge,
  LAnd,
  LOr,
};

struct Expr {
  enum class Kind : uint8_t {
    IntLit,
    StrLit,
    Ident,
    Unary,
    Binary,
    Assign, // LHS = RHS; CompoundOp tracks += / -=
    Cond,   // Cond3 ? LHS : RHS
    Call,
    Member, // Base.Field or Base->Field (IsArrow)
    Index,  // Base[RHS]
    Cast,
  };

  Kind K;
  SourceLoc Loc;

  int64_t IntVal = 0;   // IntLit
  std::string Str;      // StrLit contents / Ident name / Member field name
  UnaryOp UOp = UnaryOp::Neg;
  BinaryOp BOp = BinaryOp::Add;
  bool HasCompoundOp = false; // Assign: true for += / -=
  BinaryOp CompoundOp = BinaryOp::Add;
  Expr *LHS = nullptr;
  Expr *RHS = nullptr;
  Expr *Cond3 = nullptr;
  Expr *Base = nullptr; // Member/Index/Call callee
  bool IsArrow = false;
  std::vector<Expr *> CallArgs;
  const Type *CastTy = nullptr;
};

//===----------------------------------------------------------------------===//
// Statements and declarations
//===----------------------------------------------------------------------===//

struct VarDecl {
  std::string Name;
  const Type *Ty = nullptr;
  Expr *Init = nullptr;
  SourceLoc Loc;
  bool IsGlobal = false;
};

struct CStmt {
  enum class Kind : uint8_t {
    Compound,
    If,
    While,
    DoWhile,
    For,
    Return,
    Break,
    Continue,
    ExprStmt,
    DeclStmt,
    Atomic,
    Empty,
  };

  Kind K;
  SourceLoc Loc;
  std::vector<CStmt *> Body; // Compound/Atomic
  Expr *CondE = nullptr;     // If/While/DoWhile/For
  CStmt *Then = nullptr;
  CStmt *Else = nullptr;
  CStmt *InitS = nullptr; // For
  Expr *IncE = nullptr;   // For
  Expr *E = nullptr;      // ExprStmt/Return (may be null for bare return)
  VarDecl *Var = nullptr; // DeclStmt
};

struct ParamDecl {
  std::string Name;
  const Type *Ty = nullptr;
};

struct FuncDecl {
  std::string Name;
  const Type *RetTy = nullptr;
  std::vector<ParamDecl> Params;
  CStmt *Body = nullptr; // null for extern declarations
  SourceLoc Loc;
};

/// A parsed translation unit: owns all AST nodes via arenas.
class TranslationUnit {
public:
  Expr *newExpr(Expr::Kind K, SourceLoc Loc) {
    ExprArena.emplace_back();
    ExprArena.back().K = K;
    ExprArena.back().Loc = Loc;
    return &ExprArena.back();
  }
  CStmt *newStmt(CStmt::Kind K, SourceLoc Loc) {
    StmtArena.emplace_back();
    StmtArena.back().K = K;
    StmtArena.back().Loc = Loc;
    return &StmtArena.back();
  }
  Type *newType(Type::Kind K) {
    TypeArena.emplace_back();
    TypeArena.back().K = K;
    return &TypeArena.back();
  }
  StructDecl *newStruct(const std::string &Name) {
    StructArena.emplace_back();
    StructArena.back().Name = Name;
    return &StructArena.back();
  }
  VarDecl *newVarDecl() {
    VarArena.emplace_back();
    return &VarArena.back();
  }
  FuncDecl *newFunc() {
    FuncArena.emplace_back();
    return &FuncArena.back();
  }

  // Interned basic types.
  const Type *voidTy() { return &VoidType; }
  const Type *intTy() { return &IntType; }
  const Type *boolTy() { return &BoolType; }
  const Type *ptrTo(const Type *Pointee) {
    auto It = PtrTypes.find(Pointee);
    if (It != PtrTypes.end())
      return It->second;
    Type *T = newType(Type::Kind::Ptr);
    T->Pointee = Pointee;
    PtrTypes[Pointee] = T;
    return T;
  }
  const Type *arrayOf(const Type *Elem, int Size) {
    Type *T = newType(Type::Kind::Array);
    T->Elem = Elem;
    T->ArraySize = Size;
    return T;
  }
  const Type *structTy(StructDecl *S) {
    auto It = StructTypes.find(S);
    if (It != StructTypes.end())
      return It->second;
    Type *T = newType(Type::Kind::Struct);
    T->Struct = S;
    StructTypes[S] = T;
    return T;
  }

  /// Top-level contents, in declaration order.
  std::vector<FuncDecl *> Functions;
  std::vector<VarDecl *> Globals;
  std::map<std::string, const Type *> Typedefs;
  std::map<std::string, StructDecl *> StructTags;
  std::map<std::string, int64_t> EnumConstants;

  FuncDecl *findFunction(const std::string &Name) const {
    for (FuncDecl *F : Functions)
      if (F->Name == Name)
        return F;
    return nullptr;
  }

private:
  std::deque<Expr> ExprArena;
  std::deque<CStmt> StmtArena;
  std::deque<Type> TypeArena;
  std::deque<StructDecl> StructArena;
  std::deque<VarDecl> VarArena;
  std::deque<FuncDecl> FuncArena;
  Type VoidType{Type::Kind::Void, nullptr, nullptr, nullptr, 0};
  Type IntType{Type::Kind::Int, nullptr, nullptr, nullptr, 0};
  Type BoolType{Type::Kind::Bool, nullptr, nullptr, nullptr, 0};
  std::map<const Type *, const Type *> PtrTypes;
  std::map<const StructDecl *, const Type *> StructTypes;
};

} // namespace frontend
} // namespace checkfence

#endif // CHECKFENCE_FRONTEND_AST_H
