//===--- Lowering.h - C AST to LSL lowering ---------------------*- C++ -*-==//
//
// Part of the CheckFence reproduction (PLDI'07).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers a parsed CheckFence-C translation unit into an LSL program:
/// functions become procedures, locals become registers (or stack cells if
/// address-taken), control flow becomes labeled blocks with conditional
/// break/continue, and the builtins (fence, assert/assume, new_node, spin
/// locks, pointer-mark packing) become their LSL forms.
///
/// This header also provides compileC(), the one-call frontend:
/// preprocess -> lex -> parse -> lower.
///
//===----------------------------------------------------------------------===//

#ifndef CHECKFENCE_FRONTEND_LOWERING_H
#define CHECKFENCE_FRONTEND_LOWERING_H

#include "frontend/AST.h"
#include "frontend/Diag.h"
#include "lsl/Program.h"

#include <set>
#include <string>

namespace checkfence {
namespace frontend {

struct LoweringOptions {
  /// Drop all fence() calls from implementation code (used to reproduce the
  /// "missing fences" failures of Sec. 4.2). Fences implied by the spin
  /// lock/unlock builtins are kept: they are part of the lock specification.
  bool StripFences = false;

  /// Drop only the fence() calls whose source line is in this set (used by
  /// the per-fence necessity experiments).
  std::set<int> StripFenceLines;
};

/// Lowers \p TU into \p Prog. Global variables are registered with the
/// program and a synthetic procedure "__global_init" stores any C-level
/// initializers. Returns false if diagnostics were produced.
bool lowerTranslationUnit(const TranslationUnit &TU, lsl::Program &Prog,
                          DiagEngine &Diags,
                          const LoweringOptions &Opts = LoweringOptions());

/// Convenience frontend driver: preprocess, parse, and lower \p Source.
/// \p Defines are preprocessor symbols (#ifdef variant selection).
bool compileC(const std::string &Source, const std::set<std::string> &Defines,
              lsl::Program &Prog, DiagEngine &Diags,
              const LoweringOptions &Opts = LoweringOptions());

} // namespace frontend
} // namespace checkfence

#endif // CHECKFENCE_FRONTEND_LOWERING_H
