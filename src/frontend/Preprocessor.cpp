//===--- Preprocessor.cpp - minimal #ifdef preprocessor --------------------===//

#include "frontend/Preprocessor.h"

#include <vector>

using namespace checkfence;
using namespace checkfence::frontend;

namespace {

/// Splits a line into the directive name and its single argument.
/// Returns false if the line is not a directive.
bool parseDirective(const std::string &Line, std::string &Name,
                    std::string &Arg) {
  size_t I = 0;
  while (I < Line.size() && (Line[I] == ' ' || Line[I] == '\t'))
    ++I;
  if (I >= Line.size() || Line[I] != '#')
    return false;
  ++I;
  while (I < Line.size() && (Line[I] == ' ' || Line[I] == '\t'))
    ++I;
  size_t NameStart = I;
  while (I < Line.size() && std::isalpha(static_cast<unsigned char>(Line[I])))
    ++I;
  Name = Line.substr(NameStart, I - NameStart);
  while (I < Line.size() && (Line[I] == ' ' || Line[I] == '\t'))
    ++I;
  size_t ArgStart = I;
  while (I < Line.size() &&
         (std::isalnum(static_cast<unsigned char>(Line[I])) ||
          Line[I] == '_'))
    ++I;
  Arg = Line.substr(ArgStart, I - ArgStart);
  return true;
}

} // namespace

std::string checkfence::frontend::preprocess(
    const std::string &Source, const std::set<std::string> &Defines,
    DiagEngine &Diags) {
  std::set<std::string> Active = Defines;

  // Conditional stack: for each open #if, whether its branch is live and
  // whether any branch so far was live (for #else handling).
  struct CondState {
    bool Live;
    bool ParentLive;
  };
  std::vector<CondState> Stack;

  auto CurrentlyLive = [&] {
    return Stack.empty() || (Stack.back().Live && Stack.back().ParentLive);
  };

  std::string Out;
  Out.reserve(Source.size());
  size_t Pos = 0;
  int LineNo = 0;
  while (Pos <= Source.size()) {
    size_t End = Source.find('\n', Pos);
    bool LastLine = (End == std::string::npos);
    std::string Line =
        Source.substr(Pos, LastLine ? std::string::npos : End - Pos);
    ++LineNo;

    std::string Name, Arg;
    if (parseDirective(Line, Name, Arg)) {
      SourceLoc Loc{LineNo, 1};
      if (Name == "define") {
        if (CurrentlyLive())
          Active.insert(Arg);
      } else if (Name == "undef") {
        if (CurrentlyLive())
          Active.erase(Arg);
      } else if (Name == "ifdef" || Name == "ifndef") {
        bool Has = Active.count(Arg) != 0;
        bool Live = (Name == "ifdef") ? Has : !Has;
        Stack.push_back(CondState{Live, CurrentlyLive()});
      } else if (Name == "else") {
        if (Stack.empty())
          Diags.error(Loc, "#else without matching #ifdef");
        else
          Stack.back().Live = !Stack.back().Live;
      } else if (Name == "endif") {
        if (Stack.empty())
          Diags.error(Loc, "#endif without matching #ifdef");
        else
          Stack.pop_back();
      } else {
        Diags.error(Loc, "unsupported preprocessor directive '#" + Name + "'");
      }
      Out += "\n"; // keep line numbering stable
    } else {
      if (CurrentlyLive())
        Out += Line;
      Out += "\n";
    }

    if (LastLine)
      break;
    Pos = End + 1;
  }

  if (!Stack.empty())
    Diags.error(SourceLoc{LineNo, 1}, "unterminated #ifdef at end of file");
  return Out;
}
