//===--- Lowering.cpp - C AST to LSL lowering ------------------------------===//
//
// Part of the CheckFence reproduction (PLDI'07).
//
//===----------------------------------------------------------------------===//

#include "frontend/Lowering.h"

#include "frontend/Parser.h"
#include "frontend/Preprocessor.h"
#include "frontend/Sema.h"

#include <cassert>
#include <map>

using namespace checkfence;
using namespace checkfence::frontend;

using lsl::PrimOpKind;
using lsl::Reg;
using lsl::RegNone;
using lsl::StmtKind;
using lsl::Value;

namespace {

/// An rvalue: register holding the value plus its static C type (the type
/// is used only for layout decisions; LSL itself is untyped).
struct RVal {
  Reg R = RegNone;
  const Type *Ty = nullptr;
};

/// An lvalue: either register-backed (plain scalar local) or memory-backed
/// (globals, address-taken locals, aggregates, dereferences).
struct LValue {
  bool InMemory = false;
  Reg R = RegNone;    // register-backed
  Reg Addr = RegNone; // memory-backed
  const Type *Ty = nullptr;
};

class UnitLowering {
public:
  UnitLowering(const TranslationUnit &TU, lsl::Program &Prog,
               DiagEngine &Diags, const LoweringOptions &Opts)
      : TU(TU), Prog(Prog), Diags(Diags), Opts(Opts) {}

  void run() {
    for (const VarDecl *G : TU.Globals)
      GlobalIndex[G->Name] = Prog.addGlobal(G->Name);
    lowerGlobalInit();
    for (const FuncDecl *F : TU.Functions) {
      if (!F->Body)
        continue; // extern declaration (builtin or prelude interface)
      if (classifyBuiltin(F->Name) != BuiltinKind::None) {
        Diags.error(F->Loc, "cannot define builtin '" + F->Name + "'");
        continue;
      }
      lowerFunction(*F);
    }
  }

private:
  const TranslationUnit &TU;
  lsl::Program &Prog;
  DiagEngine &Diags;
  const LoweringOptions &Opts;

  std::map<std::string, uint32_t> GlobalIndex;

  // Per-function state.
  lsl::Proc *P = nullptr;
  std::vector<std::vector<lsl::Stmt *> *> ListStack;
  struct LocalInfo {
    bool InMemory = false;
    Reg R = RegNone;    // register-backed value
    Reg Addr = RegNone; // memory-backed stack-slot address
    const Type *Ty = nullptr;
  };
  std::map<std::string, LocalInfo> Locals;
  std::set<std::string> AddrTaken;
  struct LoopCtx {
    int BreakTag;
    int BodyTag;
  };
  std::vector<LoopCtx> LoopStack;
  int FuncTag = -1;

  //===--------------------------------------------------------------------===//
  // Emission helpers
  //===--------------------------------------------------------------------===//

  lsl::Stmt *emit(StmtKind K, SourceLoc Loc) {
    lsl::Stmt *S = Prog.create(K);
    S->Loc = Loc;
    assert(!ListStack.empty() && "no emission target");
    ListStack.back()->push_back(S);
    return S;
  }

  Reg emitConst(Value V, SourceLoc Loc, const std::string &Name = "") {
    lsl::Stmt *S = emit(StmtKind::Const, Loc);
    S->Def = P->newReg(Name);
    S->ConstVal = V;
    return S->Def;
  }

  Reg emitOp(PrimOpKind Op, std::vector<Reg> Args, int64_t Imm,
             SourceLoc Loc, const std::string &Name = "") {
    lsl::Stmt *S = emit(StmtKind::PrimOp, Loc);
    S->Def = P->newReg(Name);
    S->Op = Op;
    S->Args = std::move(Args);
    S->Imm = Imm;
    return S->Def;
  }

  /// Assigns Src into the existing register Dst (mutable registers; the
  /// flattener performs SSA renaming later).
  void emitCopyTo(Reg Dst, Reg Src, SourceLoc Loc) {
    lsl::Stmt *S = emit(StmtKind::PrimOp, Loc);
    S->Def = Dst;
    S->Op = PrimOpKind::Copy;
    S->Args = {Src};
  }

  Reg emitLoad(Reg Addr, SourceLoc Loc, const std::string &Name = "") {
    lsl::Stmt *S = emit(StmtKind::Load, Loc);
    S->Def = P->newReg(Name);
    S->Addr = Addr;
    return S->Def;
  }

  void emitStore(Reg Addr, Reg Val, SourceLoc Loc) {
    lsl::Stmt *S = emit(StmtKind::Store, Loc);
    S->Addr = Addr;
    S->Args = {Val};
  }

  /// Emits an unconditional break out of \p Tag.
  void emitAlwaysBreak(int Tag, SourceLoc Loc) {
    Reg One = emitConst(Value::integer(1), Loc);
    lsl::Stmt *S = emit(StmtKind::Break, Loc);
    S->Cond = One;
    S->TargetTag = Tag;
  }

  /// Opens a Block/Atomic statement and redirects emission into it.
  lsl::Stmt *beginNested(StmtKind K, SourceLoc Loc, int Tag = -1) {
    lsl::Stmt *S = emit(K, Loc);
    S->BlockTag = Tag;
    ListStack.push_back(&S->Body);
    return S;
  }
  void endNested() { ListStack.pop_back(); }

  //===--------------------------------------------------------------------===//
  // Type helpers
  //===--------------------------------------------------------------------===//

  const Type *pointee(const Type *Ty, SourceLoc Loc) {
    if (Ty && Ty->isPtr())
      return Ty->Pointee;
    Diags.error(Loc, "dereference of non-pointer type " +
                         (Ty ? Ty->str() : std::string("<none>")));
    return TU2().voidTy();
  }

  // The TranslationUnit is logically const but the type factories cache.
  TranslationUnit &TU2() { return const_cast<TranslationUnit &>(TU); }

  //===--------------------------------------------------------------------===//
  // Functions
  //===--------------------------------------------------------------------===//

  void lowerGlobalInit() {
    P = Prog.getOrCreateProc("__global_init");
    Locals.clear();
    LoopStack.clear();
    AddrTaken.clear();
    ListStack.clear();
    ListStack.push_back(&P->Body);
    FuncTag = P->newTag();
    lsl::Stmt *Outer = beginNested(StmtKind::Block, SourceLoc(), FuncTag);
    (void)Outer;
    for (const VarDecl *G : TU.Globals) {
      if (!G->Init)
        continue;
      if (!G->Ty || !G->Ty->isScalar()) {
        Diags.error(G->Loc, "unsupported initializer for aggregate global '" +
                                G->Name + "'");
        continue;
      }
      RVal V = lowerExpr(G->Init);
      Reg Addr = emitConst(Value::pointer({GlobalIndex[G->Name]}), G->Loc,
                           G->Name + ".addr");
      emitStore(Addr, V.R, G->Loc);
    }
    endNested();
    ListStack.pop_back();
  }

  void lowerFunction(const FuncDecl &F) {
    P = Prog.getOrCreateProc(F.Name);
    P->NumParams = static_cast<int>(F.Params.size());
    Locals.clear();
    LoopStack.clear();
    ListStack.clear();
    AddrTaken = collectAddressTaken(F);

    // Parameter registers are 0..N-1 by convention.
    for (size_t I = 0; I < F.Params.size(); ++I) {
      Reg R = P->newReg(F.Params[I].Name);
      assert(R == static_cast<int>(I) && "parameter register numbering");
      LocalInfo LI;
      LI.R = R;
      LI.Ty = F.Params[I].Ty;
      Locals[F.Params[I].Name] = LI;
    }

    if (F.RetTy && F.RetTy->K != Type::Kind::Void)
      P->RetRegs = {P->newReg("ret")};

    ListStack.push_back(&P->Body);
    FuncTag = P->newTag();
    beginNested(StmtKind::Block, F.Loc, FuncTag);

    // Spill address-taken parameters to stack cells.
    for (const ParamDecl &Param : F.Params) {
      if (!AddrTaken.count(Param.Name))
        continue;
      LocalInfo &LI = Locals[Param.Name];
      lsl::Stmt *A = emit(StmtKind::Alloc, F.Loc);
      A->Def = P->newReg(Param.Name + ".slot");
      A->AllocSite = Prog.newAllocSite();
      emitStore(A->Def, LI.R, F.Loc);
      LI.InMemory = true;
      LI.Addr = A->Def;
    }

    lowerStmt(F.Body);
    endNested();
    ListStack.pop_back();
  }

  //===--------------------------------------------------------------------===//
  // Statements
  //===--------------------------------------------------------------------===//

  void lowerStmt(const CStmt *S) {
    if (!S)
      return;
    switch (S->K) {
    case CStmt::Kind::Compound:
      for (const CStmt *C : S->Body)
        lowerStmt(C);
      return;
    case CStmt::Kind::Empty:
      return;
    case CStmt::Kind::ExprStmt:
      lowerExpr(S->E);
      return;
    case CStmt::Kind::DeclStmt:
      lowerLocalDecl(S->Var);
      return;
    case CStmt::Kind::If:
      lowerIf(S);
      return;
    case CStmt::Kind::While:
      lowerLoop(S, /*TestFirst=*/true, /*ForStmt=*/false);
      return;
    case CStmt::Kind::DoWhile:
      lowerLoop(S, /*TestFirst=*/false, /*ForStmt=*/false);
      return;
    case CStmt::Kind::For:
      lowerLoop(S, /*TestFirst=*/true, /*ForStmt=*/true);
      return;
    case CStmt::Kind::Return: {
      if (S->E) {
        RVal V = lowerExpr(S->E);
        if (P->RetRegs.empty())
          Diags.error(S->Loc, "returning a value from a void function");
        else
          emitCopyTo(P->RetRegs[0], V.R, S->Loc);
      }
      emitAlwaysBreak(FuncTag, S->Loc);
      return;
    }
    case CStmt::Kind::Break:
      if (LoopStack.empty())
        Diags.error(S->Loc, "break outside of a loop");
      else
        emitAlwaysBreak(LoopStack.back().BreakTag, S->Loc);
      return;
    case CStmt::Kind::Continue:
      if (LoopStack.empty())
        Diags.error(S->Loc, "continue outside of a loop");
      else
        emitAlwaysBreak(LoopStack.back().BodyTag, S->Loc);
      return;
    case CStmt::Kind::Atomic: {
      beginNested(StmtKind::Atomic, S->Loc);
      for (const CStmt *C : S->Body)
        lowerStmt(C);
      endNested();
      return;
    }
    }
  }

  void lowerLocalDecl(const VarDecl *V) {
    bool NeedsMemory =
        AddrTaken.count(V->Name) || (V->Ty && !V->Ty->isScalar());
    LocalInfo LI;
    LI.Ty = V->Ty;
    if (NeedsMemory) {
      lsl::Stmt *A = emit(StmtKind::Alloc, V->Loc);
      A->Def = P->newReg(V->Name + ".slot");
      A->AllocSite = Prog.newAllocSite();
      LI.InMemory = true;
      LI.Addr = A->Def;
      Locals[V->Name] = LI;
      if (V->Init) {
        if (!V->Ty->isScalar()) {
          Diags.error(V->Loc, "initializer on aggregate local unsupported");
          return;
        }
        RVal Init = lowerExpr(V->Init);
        emitStore(LI.Addr, Init.R, V->Loc);
      }
      return;
    }
    LI.R = P->newReg(V->Name);
    Locals[V->Name] = LI;
    if (V->Init) {
      RVal Init = lowerExpr(V->Init);
      emitCopyTo(LI.R, Init.R, V->Loc);
    }
  }

  void lowerIf(const CStmt *S) {
    RVal C = lowerExpr(S->CondE);
    Reg NotC = emitOp(PrimOpKind::LNot, {C.R}, 0, S->Loc);
    if (!S->Else) {
      int ThenTag = P->newTag();
      beginNested(StmtKind::Block, S->Loc, ThenTag);
      lsl::Stmt *Br = emit(StmtKind::Break, S->Loc);
      Br->Cond = NotC;
      Br->TargetTag = ThenTag;
      lowerStmt(S->Then);
      endNested();
      return;
    }
    int OuterTag = P->newTag();
    int ThenTag = P->newTag();
    beginNested(StmtKind::Block, S->Loc, OuterTag);
    {
      beginNested(StmtKind::Block, S->Loc, ThenTag);
      lsl::Stmt *Br = emit(StmtKind::Break, S->Loc);
      Br->Cond = NotC;
      Br->TargetTag = ThenTag;
      lowerStmt(S->Then);
      emitAlwaysBreak(OuterTag, S->Loc);
      endNested();
      lowerStmt(S->Else);
    }
    endNested();
  }

  /// Lowers while / do-while / for loops into a labeled block whose last
  /// statement is a conditional (or unconditional) continue:
  ///
  ///   tL: { cond; if (!cond) break tL;      (while/for only)
  ///         tB: { body }                    (C continue = break tB)
  ///         inc;                            (for only)
  ///         if (1) continue tL }
  void lowerLoop(const CStmt *S, bool TestFirst, bool ForStmt) {
    if (ForStmt && S->InitS)
      lowerStmt(S->InitS);

    int LoopTag = P->newTag();
    int BodyTag = P->newTag();
    beginNested(StmtKind::Block, S->Loc, LoopTag);

    if (TestFirst && S->CondE) {
      RVal C = lowerExpr(S->CondE);
      Reg NotC = emitOp(PrimOpKind::LNot, {C.R}, 0, S->Loc);
      lsl::Stmt *Br = emit(StmtKind::Break, S->Loc);
      Br->Cond = NotC;
      Br->TargetTag = LoopTag;
    }

    LoopStack.push_back(LoopCtx{LoopTag, BodyTag});
    beginNested(StmtKind::Block, S->Loc, BodyTag);
    lowerStmt(S->Then);
    endNested();
    LoopStack.pop_back();

    if (ForStmt && S->IncE)
      lowerExpr(S->IncE);

    if (TestFirst) {
      Reg One = emitConst(Value::integer(1), S->Loc);
      lsl::Stmt *Cont = emit(StmtKind::Continue, S->Loc);
      Cont->Cond = One;
      Cont->TargetTag = LoopTag;
    } else {
      RVal C = lowerExpr(S->CondE);
      lsl::Stmt *Cont = emit(StmtKind::Continue, S->Loc);
      Cont->Cond = C.R;
      Cont->TargetTag = LoopTag;
    }
    endNested();
  }

  //===--------------------------------------------------------------------===//
  // LValues
  //===--------------------------------------------------------------------===//

  LValue lowerLValue(const Expr *E) {
    switch (E->K) {
    case Expr::Kind::Ident: {
      auto It = Locals.find(E->Str);
      if (It != Locals.end()) {
        LValue LV;
        LV.InMemory = It->second.InMemory;
        LV.R = It->second.R;
        LV.Addr = It->second.Addr;
        LV.Ty = It->second.Ty;
        return LV;
      }
      auto G = GlobalIndex.find(E->Str);
      if (G != GlobalIndex.end()) {
        LValue LV;
        LV.InMemory = true;
        LV.Addr = emitConst(Value::pointer({G->second}), E->Loc, E->Str);
        for (const VarDecl *V : TU.Globals)
          if (V->Name == E->Str)
            LV.Ty = V->Ty;
        return LV;
      }
      Diags.error(E->Loc, "use of undeclared identifier '" + E->Str + "'");
      LValue LV;
      LV.R = emitConst(Value::undef(), E->Loc);
      LV.Ty = TU2().intTy();
      return LV;
    }
    case Expr::Kind::Unary: {
      if (E->UOp != UnaryOp::Deref)
        break;
      RVal Ptr = lowerExpr(E->LHS);
      LValue LV;
      LV.InMemory = true;
      LV.Addr = Ptr.R;
      LV.Ty = pointee(Ptr.Ty, E->Loc);
      return LV;
    }
    case Expr::Kind::Member: {
      const Type *StructTy = nullptr;
      Reg BaseAddr = RegNone;
      if (E->IsArrow) {
        RVal Ptr = lowerExpr(E->Base);
        StructTy = pointee(Ptr.Ty, E->Loc);
        BaseAddr = Ptr.R;
      } else {
        LValue BaseLV = lowerLValue(E->Base);
        if (!BaseLV.InMemory) {
          Diags.error(E->Loc, "member access on non-memory value");
          break;
        }
        StructTy = BaseLV.Ty;
        BaseAddr = BaseLV.Addr;
      }
      if (!StructTy || !StructTy->isStruct() || !StructTy->Struct ||
          !StructTy->Struct->Complete) {
        Diags.error(E->Loc, "member access on non-struct type " +
                                (StructTy ? StructTy->str()
                                          : std::string("<none>")));
        break;
      }
      const FieldDecl *F = StructTy->Struct->findField(E->Str);
      if (!F) {
        Diags.error(E->Loc, "no field '" + E->Str + "' in struct " +
                                StructTy->Struct->Name);
        break;
      }
      LValue LV;
      LV.InMemory = true;
      LV.Addr = emitOp(PrimOpKind::PtrField, {BaseAddr}, F->Index, E->Loc,
                       E->Str);
      LV.Ty = F->Ty;
      return LV;
    }
    case Expr::Kind::Index: {
      // Array variable or pointer base.
      const Type *ElemTy = nullptr;
      Reg BaseAddr = RegNone;
      RVal Idx = lowerExpr(E->RHS);
      if (E->Base->K == Expr::Kind::Ident || E->Base->K == Expr::Kind::Member) {
        LValue BaseLV = lowerLValue(E->Base);
        if (BaseLV.Ty && BaseLV.Ty->isArray()) {
          ElemTy = BaseLV.Ty->Elem;
          BaseAddr = BaseLV.Addr;
        } else if (BaseLV.Ty && BaseLV.Ty->isPtr()) {
          Reg PtrVal = readLValue(BaseLV, E->Loc);
          ElemTy = BaseLV.Ty->Pointee;
          BaseAddr = PtrVal;
        }
      } else {
        RVal Base = lowerExpr(E->Base);
        if (Base.Ty && Base.Ty->isPtr()) {
          ElemTy = Base.Ty->Pointee;
          BaseAddr = Base.R;
        }
      }
      if (BaseAddr == RegNone) {
        Diags.error(E->Loc, "subscript of non-array, non-pointer value");
        break;
      }
      LValue LV;
      LV.InMemory = true;
      LV.Addr = emitOp(PrimOpKind::PtrIndex, {BaseAddr, Idx.R}, 0, E->Loc);
      LV.Ty = ElemTy ? ElemTy : TU2().intTy();
      return LV;
    }
    default:
      break;
    }
    Diags.error(E->Loc, "expression is not assignable");
    LValue LV;
    LV.R = emitConst(Value::undef(), E->Loc);
    LV.Ty = TU2().intTy();
    return LV;
  }

  Reg readLValue(const LValue &LV, SourceLoc Loc) {
    if (!LV.InMemory)
      return LV.R;
    return emitLoad(LV.Addr, Loc);
  }

  void writeLValue(const LValue &LV, Reg Val, SourceLoc Loc) {
    if (!LV.InMemory) {
      emitCopyTo(LV.R, Val, Loc);
      return;
    }
    emitStore(LV.Addr, Val, Loc);
  }

  //===--------------------------------------------------------------------===//
  // Expressions
  //===--------------------------------------------------------------------===//

  RVal lowerExpr(const Expr *E) {
    if (!E)
      return RVal{emitConst(Value::undef(), SourceLoc()), TU2().intTy()};

    switch (E->K) {
    case Expr::Kind::IntLit:
      return RVal{emitConst(Value::integer(E->IntVal), E->Loc),
                  TU2().intTy()};

    case Expr::Kind::StrLit:
      Diags.error(E->Loc,
                  "string literals are only valid as fence() arguments");
      return RVal{emitConst(Value::undef(), E->Loc), TU2().intTy()};

    case Expr::Kind::Ident:
    case Expr::Kind::Member:
    case Expr::Kind::Index: {
      LValue LV = lowerLValue(E);
      // Arrays decay to a pointer to their storage.
      if (LV.Ty && LV.Ty->isArray())
        return RVal{LV.Addr, TU2().ptrTo(LV.Ty->Elem)};
      if (LV.Ty && LV.Ty->isStruct()) {
        Diags.error(E->Loc, "whole-struct reads are unsupported");
        return RVal{emitConst(Value::undef(), E->Loc), TU2().intTy()};
      }
      return RVal{readLValue(LV, E->Loc), LV.Ty};
    }

    case Expr::Kind::Unary:
      return lowerUnary(E);

    case Expr::Kind::Binary:
      return lowerBinary(E);

    case Expr::Kind::Assign: {
      LValue LV = lowerLValue(E->LHS);
      RVal RHS = lowerExpr(E->RHS);
      Reg Stored = RHS.R;
      if (E->HasCompoundOp) {
        Reg Old = readLValue(LV, E->Loc);
        PrimOpKind Op = E->CompoundOp == BinaryOp::Add ? PrimOpKind::Add
                                                       : PrimOpKind::Sub;
        Stored = emitOp(Op, {Old, RHS.R}, 0, E->Loc);
      }
      writeLValue(LV, Stored, E->Loc);
      return RVal{Stored, LV.Ty};
    }

    case Expr::Kind::Cond: {
      RVal C = lowerExpr(E->Cond3);
      Reg Res = P->newReg("cond.res");
      int OuterTag = P->newTag();
      int ThenTag = P->newTag();
      beginNested(StmtKind::Block, E->Loc, OuterTag);
      {
        beginNested(StmtKind::Block, E->Loc, ThenTag);
        Reg NotC = emitOp(PrimOpKind::LNot, {C.R}, 0, E->Loc);
        lsl::Stmt *Br = emit(StmtKind::Break, E->Loc);
        Br->Cond = NotC;
        Br->TargetTag = ThenTag;
        RVal T = lowerExpr(E->LHS);
        emitCopyTo(Res, T.R, E->Loc);
        emitAlwaysBreak(OuterTag, E->Loc);
        endNested();
        RVal F = lowerExpr(E->RHS);
        emitCopyTo(Res, F.R, E->Loc);
      }
      endNested();
      RVal T{Res, nullptr};
      T.Ty = TU2().intTy();
      return T;
    }

    case Expr::Kind::Call:
      return lowerCall(E);

    case Expr::Kind::Cast: {
      RVal V = lowerExpr(E->LHS);
      return RVal{V.R, E->CastTy};
    }
    }
    Diags.error(E->Loc, "unsupported expression");
    return RVal{emitConst(Value::undef(), E->Loc), TU2().intTy()};
  }

  RVal lowerUnary(const Expr *E) {
    switch (E->UOp) {
    case UnaryOp::Neg: {
      RVal V = lowerExpr(E->LHS);
      Reg Zero = emitConst(Value::integer(0), E->Loc);
      return RVal{emitOp(PrimOpKind::Sub, {Zero, V.R}, 0, E->Loc),
                  TU2().intTy()};
    }
    case UnaryOp::LNot: {
      RVal V = lowerExpr(E->LHS);
      return RVal{emitOp(PrimOpKind::LNot, {V.R}, 0, E->Loc), TU2().boolTy()};
    }
    case UnaryOp::BitNot: {
      RVal V = lowerExpr(E->LHS);
      return RVal{emitOp(PrimOpKind::BitNot, {V.R}, 0, E->Loc),
                  TU2().intTy()};
    }
    case UnaryOp::Deref: {
      RVal Ptr = lowerExpr(E->LHS);
      const Type *Pointee = pointee(Ptr.Ty, E->Loc);
      if (Pointee->isStruct()) {
        Diags.error(E->Loc, "whole-struct reads are unsupported");
        return RVal{emitConst(Value::undef(), E->Loc), TU2().intTy()};
      }
      return RVal{emitLoad(Ptr.R, E->Loc), Pointee};
    }
    case UnaryOp::AddrOf: {
      LValue LV = lowerLValue(E->LHS);
      if (!LV.InMemory) {
        Diags.error(E->Loc, "cannot take the address of a register value");
        return RVal{emitConst(Value::undef(), E->Loc), TU2().intTy()};
      }
      return RVal{LV.Addr, TU2().ptrTo(LV.Ty ? LV.Ty : TU2().intTy())};
    }
    case UnaryOp::PreInc:
    case UnaryOp::PreDec:
    case UnaryOp::PostInc:
    case UnaryOp::PostDec: {
      LValue LV = lowerLValue(E->LHS);
      Reg Old = readLValue(LV, E->Loc);
      Reg One = emitConst(Value::integer(1), E->Loc);
      bool IsInc = E->UOp == UnaryOp::PreInc || E->UOp == UnaryOp::PostInc;
      Reg New = emitOp(IsInc ? PrimOpKind::Add : PrimOpKind::Sub, {Old, One},
                       0, E->Loc);
      writeLValue(LV, New, E->Loc);
      bool IsPre = E->UOp == UnaryOp::PreInc || E->UOp == UnaryOp::PreDec;
      return RVal{IsPre ? New : Old, LV.Ty};
    }
    }
    return RVal{emitConst(Value::undef(), E->Loc), TU2().intTy()};
  }

  RVal lowerBinary(const Expr *E) {
    // Short-circuit forms lower to control flow so that the right operand
    // is only evaluated when needed (a guarded dereference in the RHS must
    // not fault when the guard is false).
    if (E->BOp == BinaryOp::LAnd || E->BOp == BinaryOp::LOr) {
      bool IsAnd = E->BOp == BinaryOp::LAnd;
      RVal L = lowerExpr(E->LHS);
      Reg Res = P->newReg(IsAnd ? "and.res" : "or.res");
      Reg LBool = emitOp(PrimOpKind::LNot, {L.R}, 0, E->Loc);
      Reg LTruth = emitOp(PrimOpKind::LNot, {LBool}, 0, E->Loc);
      emitCopyTo(Res, LTruth, E->Loc);
      int Tag = P->newTag();
      beginNested(StmtKind::Block, E->Loc, Tag);
      {
        // Skip RHS if LHS already decides the result.
        lsl::Stmt *Br = emit(StmtKind::Break, E->Loc);
        Br->Cond = IsAnd ? LBool : LTruth;
        Br->TargetTag = Tag;
        RVal R = lowerExpr(E->RHS);
        Reg RBool = emitOp(PrimOpKind::LNot, {R.R}, 0, E->Loc);
        Reg RTruth = emitOp(PrimOpKind::LNot, {RBool}, 0, E->Loc);
        emitCopyTo(Res, RTruth, E->Loc);
      }
      endNested();
      return RVal{Res, TU2().boolTy()};
    }

    RVal L = lowerExpr(E->LHS);
    RVal R = lowerExpr(E->RHS);
    PrimOpKind Op;
    switch (E->BOp) {
    case BinaryOp::Add:
      Op = PrimOpKind::Add;
      break;
    case BinaryOp::Sub:
      Op = PrimOpKind::Sub;
      break;
    case BinaryOp::Mul:
      Op = PrimOpKind::Mul;
      break;
    case BinaryOp::Div:
      Op = PrimOpKind::Div;
      break;
    case BinaryOp::Mod:
      Op = PrimOpKind::Mod;
      break;
    case BinaryOp::BitAnd:
      Op = PrimOpKind::BitAnd;
      break;
    case BinaryOp::BitOr:
      Op = PrimOpKind::BitOr;
      break;
    case BinaryOp::BitXor:
      Op = PrimOpKind::BitXor;
      break;
    case BinaryOp::Shl:
      Op = PrimOpKind::Shl;
      break;
    case BinaryOp::Shr:
      Op = PrimOpKind::Shr;
      break;
    case BinaryOp::Eq:
      Op = PrimOpKind::Eq;
      break;
    case BinaryOp::Ne:
      Op = PrimOpKind::Ne;
      break;
    case BinaryOp::Lt:
      Op = PrimOpKind::Lt;
      break;
    case BinaryOp::Le:
      Op = PrimOpKind::Le;
      break;
    case BinaryOp::Gt:
      Op = PrimOpKind::Gt;
      break;
    case BinaryOp::Ge:
      Op = PrimOpKind::Ge;
      break;
    default:
      Op = PrimOpKind::Add;
      break;
    }
    bool IsCompare = E->BOp >= BinaryOp::Eq && E->BOp <= BinaryOp::Ge;
    return RVal{emitOp(Op, {L.R, R.R}, 0, E->Loc),
                IsCompare ? TU2().boolTy() : TU2().intTy()};
  }

  //===--------------------------------------------------------------------===//
  // Calls and builtins
  //===--------------------------------------------------------------------===//

  RVal lowerCall(const Expr *E) {
    if (!E->Base || E->Base->K != Expr::Kind::Ident) {
      Diags.error(E->Loc, "only direct calls are supported");
      return RVal{emitConst(Value::undef(), E->Loc), TU2().intTy()};
    }
    const std::string &Name = E->Base->Str;
    BuiltinKind BK = classifyBuiltin(Name);

    switch (BK) {
    case BuiltinKind::Fence: {
      if (E->CallArgs.size() != 1 ||
          E->CallArgs[0]->K != Expr::Kind::StrLit) {
        Diags.error(E->Loc, "fence() takes one string literal argument");
        return RVal{RegNone, TU2().voidTy()};
      }
      lsl::FenceKind FK;
      if (!lsl::parseFenceKind(E->CallArgs[0]->Str, FK)) {
        Diags.error(E->Loc, "unknown fence kind '" + E->CallArgs[0]->Str +
                                "'");
        return RVal{RegNone, TU2().voidTy()};
      }
      if (Opts.StripFences || Opts.StripFenceLines.count(E->Loc.Line))
        return RVal{RegNone, TU2().voidTy()};
      lsl::Stmt *S = emit(StmtKind::Fence, E->Loc);
      S->FenceK = FK;
      return RVal{RegNone, TU2().voidTy()};
    }
    case BuiltinKind::Assert:
    case BuiltinKind::Assume: {
      if (E->CallArgs.size() != 1) {
        Diags.error(E->Loc, Name + "() takes one argument");
        return RVal{RegNone, TU2().voidTy()};
      }
      RVal C = lowerExpr(E->CallArgs[0]);
      lsl::Stmt *S = emit(BK == BuiltinKind::Assert ? StmtKind::Assert
                                                    : StmtKind::Assume,
                          E->Loc);
      S->Cond = C.R;
      return RVal{RegNone, TU2().voidTy()};
    }
    case BuiltinKind::Observe: {
      if (E->CallArgs.size() != 1) {
        Diags.error(E->Loc, "observe() takes one argument");
        return RVal{RegNone, TU2().voidTy()};
      }
      RVal V = lowerExpr(E->CallArgs[0]);
      lsl::Stmt *S = emit(StmtKind::Observe, E->Loc);
      S->Args = {V.R};
      return RVal{RegNone, TU2().voidTy()};
    }
    case BuiltinKind::Commit: {
      // commit() marks the immediately preceding access as the operation's
      // commit point; commit(k) designates the access k positions earlier.
      int64_t Back = 0;
      if (E->CallArgs.size() == 1 &&
          E->CallArgs[0]->K == Expr::Kind::IntLit)
        Back = E->CallArgs[0]->IntVal;
      else if (!E->CallArgs.empty())
        Diags.error(E->Loc, "commit() takes an optional literal offset");
      emit(StmtKind::Commit, E->Loc)->Imm = Back;
      return RVal{RegNone, TU2().voidTy()};
    }
    case BuiltinKind::NewNode: {
      lsl::Stmt *S = emit(StmtKind::Alloc, E->Loc);
      S->Def = P->newReg("node");
      S->AllocSite = Prog.newAllocSite();
      const FuncDecl *Decl = TU.findFunction(Name);
      const Type *Ty =
          Decl && Decl->RetTy ? Decl->RetTy : TU2().ptrTo(TU2().voidTy());
      return RVal{S->Def, Ty};
    }
    case BuiltinKind::DeleteNode: {
      for (const Expr *A : E->CallArgs)
        lowerExpr(A); // evaluate for effects; reclamation is a no-op
      return RVal{RegNone, TU2().voidTy()};
    }
    case BuiltinKind::SpinLock:
    case BuiltinKind::SpinUnlock: {
      if (E->CallArgs.size() != 1) {
        Diags.error(E->Loc, Name + "() takes the lock address");
        return RVal{RegNone, TU2().voidTy()};
      }
      RVal L = lowerExpr(E->CallArgs[0]);
      if (BK == BuiltinKind::SpinLock)
        emitSpinLock(L.R, E->Loc);
      else
        emitSpinUnlock(L.R, E->Loc);
      return RVal{RegNone, TU2().voidTy()};
    }
    case BuiltinKind::PtrMark: {
      if (E->CallArgs.size() != 2) {
        Diags.error(E->Loc, "ptr_mark(p, bit) takes two arguments");
        return RVal{RegNone, TU2().voidTy()};
      }
      RVal Pv = lowerExpr(E->CallArgs[0]);
      RVal Bv = lowerExpr(E->CallArgs[1]);
      return RVal{emitOp(PrimOpKind::PtrMark, {Pv.R, Bv.R}, 0, E->Loc),
                  Pv.Ty};
    }
    case BuiltinKind::PtrIsMarked: {
      RVal Pv = lowerExpr(E->CallArgs[0]);
      return RVal{emitOp(PrimOpKind::PtrGetMark, {Pv.R}, 0, E->Loc),
                  TU2().intTy()};
    }
    case BuiltinKind::PtrUnmark: {
      RVal Pv = lowerExpr(E->CallArgs[0]);
      return RVal{emitOp(PrimOpKind::PtrClearMark, {Pv.R}, 0, E->Loc),
                  Pv.Ty};
    }
    case BuiltinKind::None:
      break;
    }

    // Ordinary call.
    const FuncDecl *Callee = TU.findFunction(Name);
    if (!Callee) {
      Diags.error(E->Loc, "call to unknown function '" + Name + "'");
      return RVal{emitConst(Value::undef(), E->Loc), TU2().intTy()};
    }
    if (Callee->Params.size() != E->CallArgs.size())
      Diags.error(E->Loc,
                  formatString("'%s' expects %zu arguments, got %zu",
                               Name.c_str(), Callee->Params.size(),
                               E->CallArgs.size()));
    lsl::Stmt *S = Prog.create(StmtKind::Call);
    S->Loc = E->Loc;
    S->Callee = Name;
    for (const Expr *A : E->CallArgs)
      S->Args.push_back(lowerExpr(A).R);
    Reg Ret = RegNone;
    if (Callee->RetTy && Callee->RetTy->K != Type::Kind::Void) {
      Ret = P->newReg(Name + ".ret");
      S->Rets = {Ret};
    }
    ListStack.back()->push_back(S);
    return RVal{Ret, Callee->RetTy ? Callee->RetTy : TU2().voidTy()};
  }

  /// Lock acquisition, reduced to a single successful iteration of the
  /// spin loop (see DESIGN.md): atomically observe the lock free and take
  /// it, then apply the Fig. 7 acquire-side fences.
  void emitSpinLock(Reg LockAddr, SourceLoc Loc) {
    beginNested(StmtKind::Atomic, Loc);
    {
      Reg V = emitLoad(LockAddr, Loc, "lockval");
      Reg Free = emitConst(Value::integer(0), Loc);
      Reg IsFree = emitOp(PrimOpKind::Eq, {V, Free}, 0, Loc);
      lsl::Stmt *S = emit(StmtKind::Assume, Loc);
      S->Cond = IsFree;
      Reg Held = emitConst(Value::integer(1), Loc);
      emitStore(LockAddr, Held, Loc);
    }
    endNested();
    emit(StmtKind::Fence, Loc)->FenceK = lsl::FenceKind::LoadLoad;
    emit(StmtKind::Fence, Loc)->FenceK = lsl::FenceKind::LoadStore;
  }

  /// Lock release with the Fig. 7 release-side fences.
  void emitSpinUnlock(Reg LockAddr, SourceLoc Loc) {
    emit(StmtKind::Fence, Loc)->FenceK = lsl::FenceKind::LoadStore;
    emit(StmtKind::Fence, Loc)->FenceK = lsl::FenceKind::StoreStore;
    beginNested(StmtKind::Atomic, Loc);
    {
      Reg V = emitLoad(LockAddr, Loc, "lockval");
      Reg Held = emitConst(Value::integer(1), Loc);
      Reg IsHeld = emitOp(PrimOpKind::Eq, {V, Held}, 0, Loc);
      lsl::Stmt *S = emit(StmtKind::Assert, Loc);
      S->Cond = IsHeld;
      Reg Free = emitConst(Value::integer(0), Loc);
      emitStore(LockAddr, Free, Loc);
    }
    endNested();
  }
};

} // namespace

bool checkfence::frontend::lowerTranslationUnit(const TranslationUnit &TU,
                                                lsl::Program &Prog,
                                                DiagEngine &Diags,
                                                const LoweringOptions &Opts) {
  UnitLowering L(TU, Prog, Diags, Opts);
  L.run();
  return !Diags.hasErrors();
}

bool checkfence::frontend::compileC(const std::string &Source,
                                    const std::set<std::string> &Defines,
                                    lsl::Program &Prog, DiagEngine &Diags,
                                    const LoweringOptions &Opts) {
  std::string Processed = preprocess(Source, Defines, Diags);
  if (Diags.hasErrors())
    return false;
  TranslationUnit TU;
  if (!parseTranslationUnit(Processed, TU, Diags))
    return false;
  return lowerTranslationUnit(TU, Prog, Diags, Opts);
}
