//===--- Sema.cpp - light semantic analysis for CheckFence-C --------------===//

#include "frontend/Sema.h"

using namespace checkfence;
using namespace checkfence::frontend;

BuiltinKind checkfence::frontend::classifyBuiltin(const std::string &Name) {
  if (Name == "fence")
    return BuiltinKind::Fence;
  if (Name == "assert")
    return BuiltinKind::Assert;
  if (Name == "assume")
    return BuiltinKind::Assume;
  if (Name == "observe")
    return BuiltinKind::Observe;
  if (Name == "commit")
    return BuiltinKind::Commit;
  if (Name == "new_node")
    return BuiltinKind::NewNode;
  if (Name == "delete_node" || Name == "free_node")
    return BuiltinKind::DeleteNode;
  if (Name == "spin_lock")
    return BuiltinKind::SpinLock;
  if (Name == "spin_unlock")
    return BuiltinKind::SpinUnlock;
  if (Name == "ptr_mark")
    return BuiltinKind::PtrMark;
  if (Name == "ptr_is_marked")
    return BuiltinKind::PtrIsMarked;
  if (Name == "ptr_unmark")
    return BuiltinKind::PtrUnmark;
  return BuiltinKind::None;
}

namespace {

void visitExpr(const Expr *E, std::set<std::string> &Out) {
  if (!E)
    return;
  if (E->K == Expr::Kind::Unary && E->UOp == UnaryOp::AddrOf &&
      E->LHS->K == Expr::Kind::Ident)
    Out.insert(E->LHS->Str);
  visitExpr(E->LHS, Out);
  visitExpr(E->RHS, Out);
  visitExpr(E->Cond3, Out);
  visitExpr(E->Base, Out);
  for (const Expr *A : E->CallArgs)
    visitExpr(A, Out);
}

void visitStmt(const CStmt *S, std::set<std::string> &Out) {
  if (!S)
    return;
  visitExpr(S->CondE, Out);
  visitExpr(S->IncE, Out);
  visitExpr(S->E, Out);
  if (S->Var)
    visitExpr(S->Var->Init, Out);
  visitStmt(S->Then, Out);
  visitStmt(S->Else, Out);
  visitStmt(S->InitS, Out);
  for (const CStmt *C : S->Body)
    visitStmt(C, Out);
}

} // namespace

std::set<std::string>
checkfence::frontend::collectAddressTaken(const FuncDecl &F) {
  std::set<std::string> Out;
  visitStmt(F.Body, Out);
  return Out;
}
