//===--- Parser.h - recursive-descent parser for CheckFence-C ---*- C++ -*-==//
//
// Part of the CheckFence reproduction (PLDI'07).
//
//===----------------------------------------------------------------------===//

#ifndef CHECKFENCE_FRONTEND_PARSER_H
#define CHECKFENCE_FRONTEND_PARSER_H

#include "frontend/AST.h"
#include "frontend/Diag.h"
#include "frontend/Lexer.h"

#include <memory>
#include <set>

namespace checkfence {
namespace frontend {

/// Parses preprocessed CheckFence-C source into \p TU. Returns false if
/// any diagnostics were emitted.
bool parseTranslationUnit(const std::string &Source, TranslationUnit &TU,
                          DiagEngine &Diags);

} // namespace frontend
} // namespace checkfence

#endif // CHECKFENCE_FRONTEND_PARSER_H
