//===--- AST.cpp - CheckFence-C abstract syntax ----------------------------===//

#include "frontend/AST.h"

#include "support/Format.h"

using namespace checkfence;
using namespace checkfence::frontend;

std::string Type::str() const {
  switch (K) {
  case Kind::Void:
    return "void";
  case Kind::Bool:
    return "bool";
  case Kind::Int:
    return "int";
  case Kind::Ptr:
    return (Pointee ? Pointee->str() : "?") + "*";
  case Kind::Struct:
    return "struct " + (Struct ? Struct->Name : "?");
  case Kind::Array:
    return formatString("%s[%d]", Elem ? Elem->str().c_str() : "?",
                        ArraySize);
  }
  return "?";
}
