//===--- Preprocessor.h - minimal #ifdef preprocessor -----------*- C++ -*-==//
///
/// \file
/// A tiny line-based preprocessor supporting exactly the directives the
/// implementation variants need: #define NAME, #undef NAME, #ifdef NAME,
/// #ifndef NAME, #else, #endif. Lines excluded by conditionals are replaced
/// with blank lines so that source line numbers are preserved for
/// diagnostics and trace provenance.
///
//===----------------------------------------------------------------------===//

#ifndef CHECKFENCE_FRONTEND_PREPROCESSOR_H
#define CHECKFENCE_FRONTEND_PREPROCESSOR_H

#include "frontend/Diag.h"

#include <set>
#include <string>

namespace checkfence {
namespace frontend {

/// Runs the preprocessor over \p Source with \p Defines pre-defined.
/// Returns the processed text (same number of lines as the input).
std::string preprocess(const std::string &Source,
                       const std::set<std::string> &Defines,
                       DiagEngine &Diags);

} // namespace frontend
} // namespace checkfence

#endif // CHECKFENCE_FRONTEND_PREPROCESSOR_H
