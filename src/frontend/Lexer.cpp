//===--- Lexer.cpp - tokenizer for CheckFence-C ----------------------------===//

#include "frontend/Lexer.h"

#include <cctype>
#include <map>

using namespace checkfence;
using namespace checkfence::frontend;

const char *checkfence::frontend::tokKindName(TokKind K) {
  switch (K) {
  case TokKind::Eof:
    return "end of file";
  case TokKind::Identifier:
    return "identifier";
  case TokKind::Number:
    return "number";
  case TokKind::String:
    return "string";
  case TokKind::LParen:
    return "'('";
  case TokKind::RParen:
    return "')'";
  case TokKind::LBrace:
    return "'{'";
  case TokKind::RBrace:
    return "'}'";
  case TokKind::LBracket:
    return "'['";
  case TokKind::RBracket:
    return "']'";
  case TokKind::Semi:
    return "';'";
  case TokKind::Comma:
    return "','";
  case TokKind::Assign:
    return "'='";
  default:
    return "token";
  }
}

static const std::map<std::string, TokKind> &keywordMap() {
  static const std::map<std::string, TokKind> Map = {
      {"typedef", TokKind::KwTypedef},   {"struct", TokKind::KwStruct},
      {"enum", TokKind::KwEnum},         {"extern", TokKind::KwExtern},
      {"static", TokKind::KwStatic},     {"const", TokKind::KwConst},
      {"volatile", TokKind::KwVolatile}, {"unsigned", TokKind::KwUnsigned},
      {"signed", TokKind::KwSigned},     {"void", TokKind::KwVoid},
      {"int", TokKind::KwInt},           {"long", TokKind::KwLong},
      {"short", TokKind::KwShort},       {"char", TokKind::KwChar},
      {"bool", TokKind::KwBool},         {"_Bool", TokKind::KwBool},
      {"true", TokKind::KwTrue},         {"false", TokKind::KwFalse},
      {"NULL", TokKind::KwNull},         {"if", TokKind::KwIf},
      {"else", TokKind::KwElse},         {"while", TokKind::KwWhile},
      {"do", TokKind::KwDo},             {"for", TokKind::KwFor},
      {"return", TokKind::KwReturn},     {"break", TokKind::KwBreak},
      {"continue", TokKind::KwContinue}, {"atomic", TokKind::KwAtomic},
      {"goto", TokKind::KwGoto},
  };
  return Map;
}

std::vector<Token> checkfence::frontend::lex(const std::string &Source,
                                             DiagEngine &Diags) {
  std::vector<Token> Toks;
  size_t Pos = 0;
  const size_t N = Source.size();
  int Line = 1, Col = 1;

  auto Advance = [&](size_t Count = 1) {
    for (size_t I = 0; I < Count && Pos < N; ++I) {
      if (Source[Pos] == '\n') {
        ++Line;
        Col = 1;
      } else {
        ++Col;
      }
      ++Pos;
    }
  };
  auto Peek = [&](size_t Ahead = 0) -> char {
    return Pos + Ahead < N ? Source[Pos + Ahead] : '\0';
  };
  auto Emit = [&](TokKind K, SourceLoc Loc) {
    Token T;
    T.K = K;
    T.Loc = Loc;
    Toks.push_back(T);
  };

  while (Pos < N) {
    char C = Peek();
    SourceLoc Loc{Line, Col};

    if (std::isspace(static_cast<unsigned char>(C))) {
      Advance();
      continue;
    }
    // Comments.
    if (C == '/' && Peek(1) == '/') {
      while (Pos < N && Peek() != '\n')
        Advance();
      continue;
    }
    if (C == '/' && Peek(1) == '*') {
      Advance(2);
      while (Pos < N && !(Peek() == '*' && Peek(1) == '/'))
        Advance();
      if (Pos >= N)
        Diags.error(Loc, "unterminated block comment");
      Advance(2);
      continue;
    }
    // Identifiers / keywords.
    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
      std::string Text;
      while (Pos < N && (std::isalnum(static_cast<unsigned char>(Peek())) ||
                         Peek() == '_')) {
        Text += Peek();
        Advance();
      }
      auto It = keywordMap().find(Text);
      Token T;
      T.Loc = Loc;
      if (It != keywordMap().end()) {
        T.K = It->second;
      } else {
        T.K = TokKind::Identifier;
        T.Text = Text;
      }
      Toks.push_back(T);
      continue;
    }
    // Numbers.
    if (std::isdigit(static_cast<unsigned char>(C))) {
      int64_t Val = 0;
      if (C == '0' && (Peek(1) == 'x' || Peek(1) == 'X')) {
        Advance(2);
        while (Pos < N &&
               std::isxdigit(static_cast<unsigned char>(Peek()))) {
          char D = Peek();
          int Digit = std::isdigit(static_cast<unsigned char>(D))
                          ? D - '0'
                          : std::tolower(D) - 'a' + 10;
          Val = Val * 16 + Digit;
          Advance();
        }
      } else {
        while (Pos < N && std::isdigit(static_cast<unsigned char>(Peek()))) {
          Val = Val * 10 + (Peek() - '0');
          Advance();
        }
      }
      // Skip integer suffixes (u, U, l, L).
      while (Pos < N && (Peek() == 'u' || Peek() == 'U' || Peek() == 'l' ||
                         Peek() == 'L'))
        Advance();
      Token T;
      T.K = TokKind::Number;
      T.Loc = Loc;
      T.IntVal = Val;
      Toks.push_back(T);
      continue;
    }
    // Strings.
    if (C == '"') {
      Advance();
      std::string Text;
      while (Pos < N && Peek() != '"') {
        if (Peek() == '\\' && Pos + 1 < N) {
          Advance();
          char E = Peek();
          Text += (E == 'n' ? '\n' : E == 't' ? '\t' : E);
          Advance();
          continue;
        }
        Text += Peek();
        Advance();
      }
      if (Pos >= N) {
        Diags.error(Loc, "unterminated string literal");
        break;
      }
      Advance(); // closing quote
      Token T;
      T.K = TokKind::String;
      T.Loc = Loc;
      T.Text = Text;
      Toks.push_back(T);
      continue;
    }
    // Punctuation.
    auto Two = [&](char A, char B) { return C == A && Peek(1) == B; };
    if (Two('-', '>')) {
      Emit(TokKind::Arrow, Loc);
      Advance(2);
    } else if (Two('=', '=')) {
      Emit(TokKind::EqEq, Loc);
      Advance(2);
    } else if (Two('!', '=')) {
      Emit(TokKind::BangEq, Loc);
      Advance(2);
    } else if (Two('<', '=')) {
      Emit(TokKind::Le, Loc);
      Advance(2);
    } else if (Two('>', '=')) {
      Emit(TokKind::Ge, Loc);
      Advance(2);
    } else if (Two('<', '<')) {
      Emit(TokKind::Shl, Loc);
      Advance(2);
    } else if (Two('>', '>')) {
      Emit(TokKind::Shr, Loc);
      Advance(2);
    } else if (Two('&', '&')) {
      Emit(TokKind::AmpAmp, Loc);
      Advance(2);
    } else if (Two('|', '|')) {
      Emit(TokKind::PipePipe, Loc);
      Advance(2);
    } else if (Two('+', '+')) {
      Emit(TokKind::PlusPlus, Loc);
      Advance(2);
    } else if (Two('-', '-')) {
      Emit(TokKind::MinusMinus, Loc);
      Advance(2);
    } else if (Two('+', '=')) {
      Emit(TokKind::PlusAssign, Loc);
      Advance(2);
    } else if (Two('-', '=')) {
      Emit(TokKind::MinusAssign, Loc);
      Advance(2);
    } else {
      TokKind K;
      switch (C) {
      case '(':
        K = TokKind::LParen;
        break;
      case ')':
        K = TokKind::RParen;
        break;
      case '{':
        K = TokKind::LBrace;
        break;
      case '}':
        K = TokKind::RBrace;
        break;
      case '[':
        K = TokKind::LBracket;
        break;
      case ']':
        K = TokKind::RBracket;
        break;
      case ';':
        K = TokKind::Semi;
        break;
      case ',':
        K = TokKind::Comma;
        break;
      case ':':
        K = TokKind::Colon;
        break;
      case '?':
        K = TokKind::Question;
        break;
      case '=':
        K = TokKind::Assign;
        break;
      case '+':
        K = TokKind::Plus;
        break;
      case '-':
        K = TokKind::Minus;
        break;
      case '*':
        K = TokKind::Star;
        break;
      case '/':
        K = TokKind::Slash;
        break;
      case '%':
        K = TokKind::Percent;
        break;
      case '&':
        K = TokKind::Amp;
        break;
      case '|':
        K = TokKind::Pipe;
        break;
      case '^':
        K = TokKind::Caret;
        break;
      case '~':
        K = TokKind::Tilde;
        break;
      case '!':
        K = TokKind::Bang;
        break;
      case '<':
        K = TokKind::Lt;
        break;
      case '>':
        K = TokKind::Gt;
        break;
      case '.':
        K = TokKind::Dot;
        break;
      default:
        Diags.error(Loc, formatString("unexpected character '%c'", C));
        Advance();
        continue;
      }
      Emit(K, Loc);
      Advance();
    }
  }

  Token Eof;
  Eof.K = TokKind::Eof;
  Eof.Loc = SourceLoc{Line, Col};
  Toks.push_back(Eof);
  return Toks;
}
