//===--- Parser.cpp - recursive-descent parser for CheckFence-C -----------===//
//
// Part of the CheckFence reproduction (PLDI'07).
//
//===----------------------------------------------------------------------===//

#include "frontend/Parser.h"

using namespace checkfence;
using namespace checkfence::frontend;

namespace {

class Parser {
public:
  Parser(std::vector<Token> Tokens, TranslationUnit &TU, DiagEngine &Diags)
      : Toks(std::move(Tokens)), TU(TU), Diags(Diags) {}

  void run() {
    while (!is(TokKind::Eof) && !tooManyErrors())
      parseTopLevel();
  }

private:
  std::vector<Token> Toks;
  size_t Pos = 0;
  TranslationUnit &TU;
  DiagEngine &Diags;
  int AnonStructCount = 0;

  bool tooManyErrors() const { return Diags.diagnostics().size() > 50; }

  const Token &cur() const { return Toks[Pos]; }
  const Token &peek(size_t Ahead = 1) const {
    size_t I = Pos + Ahead;
    return I < Toks.size() ? Toks[I] : Toks.back();
  }
  bool is(TokKind K) const { return cur().K == K; }
  void advance() {
    if (Pos + 1 < Toks.size())
      ++Pos;
  }
  bool accept(TokKind K) {
    if (!is(K))
      return false;
    advance();
    return true;
  }
  bool expect(TokKind K, const char *Context) {
    if (accept(K))
      return true;
    Diags.error(cur().Loc, formatString("expected %s %s", tokKindName(K),
                                        Context));
    advance(); // ensure progress
    return false;
  }

  //===--------------------------------------------------------------------===//
  // Types
  //===--------------------------------------------------------------------===//

  bool isTypeToken(const Token &T) const {
    switch (T.K) {
    case TokKind::KwVoid:
    case TokKind::KwBool:
    case TokKind::KwInt:
    case TokKind::KwLong:
    case TokKind::KwShort:
    case TokKind::KwChar:
    case TokKind::KwUnsigned:
    case TokKind::KwSigned:
    case TokKind::KwStruct:
    case TokKind::KwEnum:
    case TokKind::KwConst:
    case TokKind::KwVolatile:
      return true;
    case TokKind::Identifier:
      return TU.Typedefs.count(T.Text) != 0;
    default:
      return false;
    }
  }

  bool startsType() const { return isTypeToken(cur()); }

  /// Parses declaration specifiers, producing a base type. Skips the
  /// qualifiers and storage classes the subset ignores.
  const Type *parseDeclSpec() {
    // Skip leading qualifiers / storage classes.
    while (is(TokKind::KwConst) || is(TokKind::KwVolatile) ||
           is(TokKind::KwStatic) || is(TokKind::KwExtern))
      advance();

    const Type *Result = nullptr;
    if (is(TokKind::KwStruct)) {
      advance();
      Result = parseStructRest();
    } else if (is(TokKind::KwEnum)) {
      advance();
      Result = parseEnumRest();
    } else if (is(TokKind::KwVoid)) {
      advance();
      Result = TU.voidTy();
    } else if (is(TokKind::KwBool)) {
      advance();
      Result = TU.boolTy();
    } else if (is(TokKind::KwUnsigned) || is(TokKind::KwSigned) ||
               is(TokKind::KwInt) || is(TokKind::KwLong) ||
               is(TokKind::KwShort) || is(TokKind::KwChar)) {
      while (is(TokKind::KwUnsigned) || is(TokKind::KwSigned) ||
             is(TokKind::KwInt) || is(TokKind::KwLong) ||
             is(TokKind::KwShort) || is(TokKind::KwChar))
        advance();
      Result = TU.intTy();
    } else if (is(TokKind::Identifier) && TU.Typedefs.count(cur().Text)) {
      Result = TU.Typedefs[cur().Text];
      advance();
    } else {
      Diags.error(cur().Loc, "expected a type");
      advance();
      Result = TU.intTy();
    }

    while (is(TokKind::KwConst) || is(TokKind::KwVolatile))
      advance();
    return Result;
  }

  /// Parses the rest of 'struct <tag>? { ... }?' after the keyword.
  const Type *parseStructRest() {
    std::string Tag;
    if (is(TokKind::Identifier)) {
      Tag = cur().Text;
      advance();
    }
    StructDecl *S = nullptr;
    if (!Tag.empty()) {
      auto It = TU.StructTags.find(Tag);
      if (It != TU.StructTags.end())
        S = It->second;
    }
    if (!S) {
      S = TU.newStruct(Tag.empty()
                           ? formatString("<anon%d>", AnonStructCount++)
                           : Tag);
      if (!Tag.empty())
        TU.StructTags[Tag] = S;
    }
    if (accept(TokKind::LBrace)) {
      if (S->Complete)
        Diags.error(cur().Loc, "redefinition of struct " + S->Name);
      parseStructBody(S);
      S->Complete = true;
    }
    return TU.structTy(S);
  }

  void parseStructBody(StructDecl *S) {
    while (!is(TokKind::RBrace) && !is(TokKind::Eof) && !tooManyErrors()) {
      const Type *Base = parseDeclSpec();
      // One or more comma-separated declarators.
      for (;;) {
        std::string Name;
        const Type *Ty = parseDeclarator(Base, Name);
        if (Name.empty())
          Diags.error(cur().Loc, "expected field name");
        FieldDecl F;
        F.Name = Name;
        F.Ty = Ty;
        F.Index = static_cast<int>(S->Fields.size());
        S->Fields.push_back(F);
        if (!accept(TokKind::Comma))
          break;
      }
      expect(TokKind::Semi, "after struct field");
    }
    expect(TokKind::RBrace, "to close struct body");
  }

  const Type *parseEnumRest() {
    if (is(TokKind::Identifier))
      advance(); // tag, unused
    if (accept(TokKind::LBrace)) {
      int64_t Next = 0;
      while (!is(TokKind::RBrace) && !is(TokKind::Eof) && !tooManyErrors()) {
        if (!is(TokKind::Identifier)) {
          Diags.error(cur().Loc, "expected enumerator name");
          advance();
          continue;
        }
        std::string Name = cur().Text;
        advance();
        if (accept(TokKind::Assign)) {
          bool Negative = accept(TokKind::Minus);
          if (is(TokKind::Number)) {
            Next = Negative ? -cur().IntVal : cur().IntVal;
            advance();
          } else {
            Diags.error(cur().Loc, "expected enumerator value");
          }
        }
        TU.EnumConstants[Name] = Next++;
        if (!accept(TokKind::Comma))
          break;
      }
      expect(TokKind::RBrace, "to close enum body");
    }
    return TU.intTy();
  }

  /// Parses '*'* name '[N]'* over \p Base. \p Name may legitimately stay
  /// empty (unnamed parameters).
  const Type *parseDeclarator(const Type *Base, std::string &Name) {
    const Type *Ty = Base;
    while (accept(TokKind::Star)) {
      Ty = TU.ptrTo(Ty);
      while (is(TokKind::KwConst) || is(TokKind::KwVolatile))
        advance();
    }
    if (is(TokKind::Identifier) && !TU.Typedefs.count(cur().Text)) {
      Name = cur().Text;
      advance();
    }
    // Array suffixes (outermost first in C semantics; we only need
    // single-dimension arrays so build inside-out naively).
    std::vector<int> Dims;
    while (accept(TokKind::LBracket)) {
      int Size = 0;
      if (is(TokKind::Number)) {
        Size = static_cast<int>(cur().IntVal);
        advance();
      } else if (is(TokKind::Identifier) &&
                 TU.EnumConstants.count(cur().Text)) {
        Size = static_cast<int>(TU.EnumConstants[cur().Text]);
        advance();
      } else {
        Diags.error(cur().Loc, "expected constant array size");
      }
      expect(TokKind::RBracket, "after array size");
      Dims.push_back(Size);
    }
    for (size_t I = Dims.size(); I > 0; --I)
      Ty = TU.arrayOf(Ty, Dims[I - 1]);
    return Ty;
  }

  //===--------------------------------------------------------------------===//
  // Top level
  //===--------------------------------------------------------------------===//

  void parseTopLevel() {
    if (accept(TokKind::Semi))
      return;
    if (accept(TokKind::KwTypedef)) {
      const Type *Base = parseDeclSpec();
      for (;;) {
        std::string Name;
        const Type *Ty = parseDeclarator(Base, Name);
        if (Name.empty())
          Diags.error(cur().Loc, "expected typedef name");
        else
          TU.Typedefs[Name] = Ty;
        if (!accept(TokKind::Comma))
          break;
      }
      expect(TokKind::Semi, "after typedef");
      return;
    }

    const Type *Base = parseDeclSpec();
    if (accept(TokKind::Semi))
      return; // bare 'struct foo { ... };' or 'enum { ... };'

    std::string Name;
    const Type *Ty = parseDeclarator(Base, Name);

    if (is(TokKind::LParen)) {
      parseFunctionRest(Ty, Name);
      return;
    }

    // Global variable(s).
    for (;;) {
      VarDecl *V = TU.newVarDecl();
      V->Name = Name;
      V->Ty = Ty;
      V->IsGlobal = true;
      V->Loc = cur().Loc;
      if (accept(TokKind::Assign))
        V->Init = parseAssign();
      TU.Globals.push_back(V);
      if (!accept(TokKind::Comma))
        break;
      Name.clear();
      Ty = parseDeclarator(Base, Name);
    }
    expect(TokKind::Semi, "after global variable");
  }

  void parseFunctionRest(const Type *RetTy, const std::string &Name) {
    FuncDecl *F = TU.newFunc();
    F->Name = Name;
    F->RetTy = RetTy;
    F->Loc = cur().Loc;
    expect(TokKind::LParen, "to start parameter list");
    if (is(TokKind::KwVoid) && peek().K == TokKind::RParen) {
      advance(); // (void)
    } else if (!is(TokKind::RParen)) {
      for (;;) {
        const Type *PBase = parseDeclSpec();
        std::string PName;
        const Type *PTy = parseDeclarator(PBase, PName);
        ParamDecl P;
        P.Name = PName;
        P.Ty = PTy;
        F->Params.push_back(P);
        if (!accept(TokKind::Comma))
          break;
      }
    }
    expect(TokKind::RParen, "to close parameter list");
    if (is(TokKind::LBrace))
      F->Body = parseCompound();
    else
      expect(TokKind::Semi, "after function declaration");

    // A definition replaces an earlier extern declaration.
    FuncDecl *Existing = TU.findFunction(Name);
    if (Existing && Existing != F) {
      if (F->Body && !Existing->Body) {
        Existing->Body = F->Body;
        Existing->Params = F->Params;
        Existing->RetTy = F->RetTy;
        return;
      }
      if (F->Body && Existing->Body)
        Diags.error(F->Loc, "redefinition of function " + Name);
      return;
    }
    TU.Functions.push_back(F);
  }

  //===--------------------------------------------------------------------===//
  // Statements
  //===--------------------------------------------------------------------===//

  CStmt *parseCompound() {
    CStmt *S = TU.newStmt(CStmt::Kind::Compound, cur().Loc);
    expect(TokKind::LBrace, "to open block");
    while (!is(TokKind::RBrace) && !is(TokKind::Eof) && !tooManyErrors())
      S->Body.push_back(parseStmt());
    expect(TokKind::RBrace, "to close block");
    return S;
  }

  /// Parses a declaration statement; handles comma-separated declarators by
  /// wrapping them in a synthetic compound.
  CStmt *parseDeclStmt() {
    SourceLoc Loc = cur().Loc;
    const Type *Base = parseDeclSpec();
    std::vector<CStmt *> Decls;
    for (;;) {
      std::string Name;
      const Type *Ty = parseDeclarator(Base, Name);
      if (Name.empty())
        Diags.error(cur().Loc, "expected variable name");
      VarDecl *V = TU.newVarDecl();
      V->Name = Name;
      V->Ty = Ty;
      V->Loc = Loc;
      if (accept(TokKind::Assign))
        V->Init = parseAssign();
      CStmt *D = TU.newStmt(CStmt::Kind::DeclStmt, Loc);
      D->Var = V;
      Decls.push_back(D);
      if (!accept(TokKind::Comma))
        break;
    }
    expect(TokKind::Semi, "after declaration");
    if (Decls.size() == 1)
      return Decls[0];
    CStmt *Wrap = TU.newStmt(CStmt::Kind::Compound, Loc);
    Wrap->Body = std::move(Decls);
    return Wrap;
  }

  CStmt *parseStmt() {
    SourceLoc Loc = cur().Loc;
    switch (cur().K) {
    case TokKind::LBrace:
      return parseCompound();
    case TokKind::Semi:
      advance();
      return TU.newStmt(CStmt::Kind::Empty, Loc);
    case TokKind::KwIf: {
      advance();
      CStmt *S = TU.newStmt(CStmt::Kind::If, Loc);
      expect(TokKind::LParen, "after 'if'");
      S->CondE = parseExpr();
      expect(TokKind::RParen, "after if condition");
      S->Then = parseStmt();
      if (accept(TokKind::KwElse))
        S->Else = parseStmt();
      return S;
    }
    case TokKind::KwWhile: {
      advance();
      CStmt *S = TU.newStmt(CStmt::Kind::While, Loc);
      expect(TokKind::LParen, "after 'while'");
      S->CondE = parseExpr();
      expect(TokKind::RParen, "after while condition");
      S->Then = parseStmt();
      return S;
    }
    case TokKind::KwDo: {
      advance();
      CStmt *S = TU.newStmt(CStmt::Kind::DoWhile, Loc);
      S->Then = parseStmt();
      expect(TokKind::KwWhile, "after do-body");
      expect(TokKind::LParen, "after 'while'");
      S->CondE = parseExpr();
      expect(TokKind::RParen, "after do-while condition");
      expect(TokKind::Semi, "after do-while");
      return S;
    }
    case TokKind::KwFor: {
      advance();
      CStmt *S = TU.newStmt(CStmt::Kind::For, Loc);
      expect(TokKind::LParen, "after 'for'");
      if (!is(TokKind::Semi)) {
        if (startsType()) {
          S->InitS = parseDeclStmt(); // consumes the ';'
        } else {
          CStmt *I = TU.newStmt(CStmt::Kind::ExprStmt, cur().Loc);
          I->E = parseExpr();
          S->InitS = I;
          expect(TokKind::Semi, "after for-initializer");
        }
      } else {
        advance();
      }
      if (!is(TokKind::Semi))
        S->CondE = parseExpr();
      expect(TokKind::Semi, "after for-condition");
      if (!is(TokKind::RParen))
        S->IncE = parseExpr();
      expect(TokKind::RParen, "after for-increment");
      S->Then = parseStmt();
      return S;
    }
    case TokKind::KwReturn: {
      advance();
      CStmt *S = TU.newStmt(CStmt::Kind::Return, Loc);
      if (!is(TokKind::Semi))
        S->E = parseExpr();
      expect(TokKind::Semi, "after return");
      return S;
    }
    case TokKind::KwBreak:
      advance();
      expect(TokKind::Semi, "after break");
      return TU.newStmt(CStmt::Kind::Break, Loc);
    case TokKind::KwContinue:
      advance();
      expect(TokKind::Semi, "after continue");
      return TU.newStmt(CStmt::Kind::Continue, Loc);
    case TokKind::KwAtomic: {
      advance();
      CStmt *S = TU.newStmt(CStmt::Kind::Atomic, Loc);
      CStmt *Body = parseCompound();
      S->Body = Body->Body;
      return S;
    }
    case TokKind::KwGoto:
      Diags.error(Loc, "goto is not supported by the CheckFence-C subset");
      while (!is(TokKind::Semi) && !is(TokKind::Eof))
        advance();
      accept(TokKind::Semi);
      return TU.newStmt(CStmt::Kind::Empty, Loc);
    default:
      break;
    }

    if (startsType())
      return parseDeclStmt();

    CStmt *S = TU.newStmt(CStmt::Kind::ExprStmt, Loc);
    S->E = parseExpr();
    expect(TokKind::Semi, "after expression");
    return S;
  }

  //===--------------------------------------------------------------------===//
  // Expressions
  //===--------------------------------------------------------------------===//

  Expr *parseExpr() { return parseAssign(); }

  Expr *parseAssign() {
    Expr *L = parseCond();
    if (is(TokKind::Assign) || is(TokKind::PlusAssign) ||
        is(TokKind::MinusAssign)) {
      TokKind K = cur().K;
      SourceLoc Loc = cur().Loc;
      advance();
      Expr *R = parseAssign();
      Expr *A = TU.newExpr(Expr::Kind::Assign, Loc);
      A->LHS = L;
      A->RHS = R;
      if (K != TokKind::Assign) {
        A->HasCompoundOp = true;
        A->CompoundOp =
            (K == TokKind::PlusAssign) ? BinaryOp::Add : BinaryOp::Sub;
      }
      return A;
    }
    return L;
  }

  Expr *parseCond() {
    Expr *C = parseBinary(0);
    if (!is(TokKind::Question))
      return C;
    SourceLoc Loc = cur().Loc;
    advance();
    Expr *T = parseExpr();
    expect(TokKind::Colon, "in conditional expression");
    Expr *F = parseCond();
    Expr *E = TU.newExpr(Expr::Kind::Cond, Loc);
    E->Cond3 = C;
    E->LHS = T;
    E->RHS = F;
    return E;
  }

  /// Binary operator precedence (higher binds tighter); -1 if not binary.
  static int binPrec(TokKind K) {
    switch (K) {
    case TokKind::PipePipe:
      return 1;
    case TokKind::AmpAmp:
      return 2;
    case TokKind::Pipe:
      return 3;
    case TokKind::Caret:
      return 4;
    case TokKind::Amp:
      return 5;
    case TokKind::EqEq:
    case TokKind::BangEq:
      return 6;
    case TokKind::Lt:
    case TokKind::Le:
    case TokKind::Gt:
    case TokKind::Ge:
      return 7;
    case TokKind::Shl:
    case TokKind::Shr:
      return 8;
    case TokKind::Plus:
    case TokKind::Minus:
      return 9;
    case TokKind::Star:
    case TokKind::Slash:
    case TokKind::Percent:
      return 10;
    default:
      return -1;
    }
  }

  static BinaryOp binOpFor(TokKind K) {
    switch (K) {
    case TokKind::PipePipe:
      return BinaryOp::LOr;
    case TokKind::AmpAmp:
      return BinaryOp::LAnd;
    case TokKind::Pipe:
      return BinaryOp::BitOr;
    case TokKind::Caret:
      return BinaryOp::BitXor;
    case TokKind::Amp:
      return BinaryOp::BitAnd;
    case TokKind::EqEq:
      return BinaryOp::Eq;
    case TokKind::BangEq:
      return BinaryOp::Ne;
    case TokKind::Lt:
      return BinaryOp::Lt;
    case TokKind::Le:
      return BinaryOp::Le;
    case TokKind::Gt:
      return BinaryOp::Gt;
    case TokKind::Ge:
      return BinaryOp::Ge;
    case TokKind::Shl:
      return BinaryOp::Shl;
    case TokKind::Shr:
      return BinaryOp::Shr;
    case TokKind::Plus:
      return BinaryOp::Add;
    case TokKind::Minus:
      return BinaryOp::Sub;
    case TokKind::Star:
      return BinaryOp::Mul;
    case TokKind::Slash:
      return BinaryOp::Div;
    case TokKind::Percent:
      return BinaryOp::Mod;
    default:
      return BinaryOp::Add;
    }
  }

  Expr *parseBinary(int MinPrec) {
    Expr *L = parseCast();
    for (;;) {
      int Prec = binPrec(cur().K);
      if (Prec < 0 || Prec < MinPrec)
        return L;
      TokKind K = cur().K;
      SourceLoc Loc = cur().Loc;
      advance();
      Expr *R = parseBinary(Prec + 1);
      Expr *B = TU.newExpr(Expr::Kind::Binary, Loc);
      B->BOp = binOpFor(K);
      B->LHS = L;
      B->RHS = R;
      L = B;
    }
  }

  Expr *parseCast() {
    if (is(TokKind::LParen) && isTypeToken(peek())) {
      SourceLoc Loc = cur().Loc;
      advance(); // (
      const Type *Base = parseDeclSpec();
      std::string Dummy;
      const Type *Ty = parseDeclarator(Base, Dummy);
      expect(TokKind::RParen, "after cast type");
      Expr *E = TU.newExpr(Expr::Kind::Cast, Loc);
      E->CastTy = Ty;
      E->LHS = parseCast();
      return E;
    }
    return parseUnary();
  }

  Expr *parseUnary() {
    SourceLoc Loc = cur().Loc;
    auto MakeUnary = [&](UnaryOp Op) {
      advance();
      Expr *E = TU.newExpr(Expr::Kind::Unary, Loc);
      E->UOp = Op;
      E->LHS = parseCast();
      return E;
    };
    switch (cur().K) {
    case TokKind::Minus:
      return MakeUnary(UnaryOp::Neg);
    case TokKind::Bang:
      return MakeUnary(UnaryOp::LNot);
    case TokKind::Tilde:
      return MakeUnary(UnaryOp::BitNot);
    case TokKind::Star:
      return MakeUnary(UnaryOp::Deref);
    case TokKind::Amp:
      return MakeUnary(UnaryOp::AddrOf);
    case TokKind::PlusPlus:
      return MakeUnary(UnaryOp::PreInc);
    case TokKind::MinusMinus:
      return MakeUnary(UnaryOp::PreDec);
    default:
      return parsePostfix();
    }
  }

  Expr *parsePostfix() {
    Expr *E = parsePrimary();
    for (;;) {
      SourceLoc Loc = cur().Loc;
      if (accept(TokKind::LParen)) {
        Expr *Call = TU.newExpr(Expr::Kind::Call, Loc);
        Call->Base = E;
        if (!is(TokKind::RParen)) {
          for (;;) {
            Call->CallArgs.push_back(parseAssign());
            if (!accept(TokKind::Comma))
              break;
          }
        }
        expect(TokKind::RParen, "after call arguments");
        E = Call;
      } else if (accept(TokKind::LBracket)) {
        Expr *Idx = TU.newExpr(Expr::Kind::Index, Loc);
        Idx->Base = E;
        Idx->RHS = parseExpr();
        expect(TokKind::RBracket, "after array index");
        E = Idx;
      } else if (is(TokKind::Dot) || is(TokKind::Arrow)) {
        bool Arrow = is(TokKind::Arrow);
        advance();
        Expr *M = TU.newExpr(Expr::Kind::Member, Loc);
        M->Base = E;
        M->IsArrow = Arrow;
        if (is(TokKind::Identifier)) {
          M->Str = cur().Text;
          advance();
        } else {
          Diags.error(cur().Loc, "expected field name");
        }
        E = M;
      } else if (is(TokKind::PlusPlus) || is(TokKind::MinusMinus)) {
        Expr *U = TU.newExpr(Expr::Kind::Unary, Loc);
        U->UOp = is(TokKind::PlusPlus) ? UnaryOp::PostInc : UnaryOp::PostDec;
        U->LHS = E;
        advance();
        E = U;
      } else {
        return E;
      }
    }
  }

  Expr *parsePrimary() {
    SourceLoc Loc = cur().Loc;
    switch (cur().K) {
    case TokKind::Number: {
      Expr *E = TU.newExpr(Expr::Kind::IntLit, Loc);
      E->IntVal = cur().IntVal;
      advance();
      return E;
    }
    case TokKind::KwTrue:
    case TokKind::KwFalse: {
      Expr *E = TU.newExpr(Expr::Kind::IntLit, Loc);
      E->IntVal = is(TokKind::KwTrue) ? 1 : 0;
      advance();
      return E;
    }
    case TokKind::KwNull: {
      Expr *E = TU.newExpr(Expr::Kind::IntLit, Loc);
      E->IntVal = 0;
      advance();
      return E;
    }
    case TokKind::String: {
      Expr *E = TU.newExpr(Expr::Kind::StrLit, Loc);
      E->Str = cur().Text;
      advance();
      return E;
    }
    case TokKind::Identifier: {
      auto It = TU.EnumConstants.find(cur().Text);
      if (It != TU.EnumConstants.end()) {
        Expr *E = TU.newExpr(Expr::Kind::IntLit, Loc);
        E->IntVal = It->second;
        advance();
        return E;
      }
      Expr *E = TU.newExpr(Expr::Kind::Ident, Loc);
      E->Str = cur().Text;
      advance();
      return E;
    }
    case TokKind::LParen: {
      advance();
      Expr *E = parseExpr();
      expect(TokKind::RParen, "to close parenthesized expression");
      return E;
    }
    default:
      Diags.error(Loc, "expected an expression");
      advance();
      return TU.newExpr(Expr::Kind::IntLit, Loc);
    }
  }
};

} // namespace

bool checkfence::frontend::parseTranslationUnit(const std::string &Source,
                                                TranslationUnit &TU,
                                                DiagEngine &Diags) {
  std::vector<Token> Toks = lex(Source, Diags);
  if (Diags.hasErrors())
    return false;
  Parser P(std::move(Toks), TU, Diags);
  P.run();
  return !Diags.hasErrors();
}
