//===--- Diag.h - frontend diagnostics --------------------------*- C++ -*-==//
///
/// \file
/// Error collection for the CheckFence-C frontend. The library never throws;
/// phases append diagnostics and callers check hasErrors().
///
//===----------------------------------------------------------------------===//

#ifndef CHECKFENCE_FRONTEND_DIAG_H
#define CHECKFENCE_FRONTEND_DIAG_H

#include "support/Format.h"
#include "support/SourceLoc.h"

#include <string>
#include <vector>

namespace checkfence {
namespace frontend {

struct Diagnostic {
  SourceLoc Loc;
  std::string Message;
};

/// Accumulates diagnostics across frontend phases.
class DiagEngine {
public:
  void error(SourceLoc Loc, const std::string &Msg) {
    Diags.push_back(Diagnostic{Loc, Msg});
  }

  bool hasErrors() const { return !Diags.empty(); }
  const std::vector<Diagnostic> &diagnostics() const { return Diags; }

  /// All diagnostics as "line:col: message" lines.
  std::string str() const {
    std::string Out;
    for (const Diagnostic &D : Diags)
      Out += formatString("%d:%d: error: %s\n", D.Loc.Line, D.Loc.Col,
                          D.Message.c_str());
    return Out;
  }

private:
  std::vector<Diagnostic> Diags;
};

} // namespace frontend
} // namespace checkfence

#endif // CHECKFENCE_FRONTEND_DIAG_H
