//===--- Timing.cpp - anchor for the timing header ------------------------===//

#include "support/Timing.h"

// Header-only; this file exists so cf_support has at least one object per
// translation unit group and to anchor any future out-of-line helpers.
