//===--- Json.h - JSON escaping and writers ---------------------*- C++ -*-==//
//
// Part of the CheckFence reproduction (PLDI'07).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one JSON emission path shared by every report in the repository:
/// string escaping plus small object/array writers. Two layout styles are
/// supported because the reports mix them deliberately:
///
///  * JsonObject / JsonArray - *inline* writers: fields joined by ", ",
///    no newlines. Matrix cells and weakest-passing entries use this so
///    one record stays one line.
///  * The multi-line scaffolding of a whole report (indentation, one cell
///    per line) stays with the report code; the writers only guarantee
///    that escaping and field syntax are uniform.
///
/// Formatting is deterministic: doubles always print with an explicit
/// fixed precision, field order is insertion order.
///
//===----------------------------------------------------------------------===//

#ifndef CHECKFENCE_SUPPORT_JSON_H
#define CHECKFENCE_SUPPORT_JSON_H

#include <string>

namespace checkfence {
namespace support {

/// Escapes \p S for embedding in a JSON string literal (quotes,
/// backslashes, and control characters; non-ASCII bytes pass through).
std::string jsonEscape(const std::string &S);

/// `"escaped"` - jsonEscape with surrounding quotes.
std::string jsonQuote(const std::string &S);

/// Inline JSON object writer: `{"a": 1, "b": "x"}`. Fields appear in
/// insertion order, separated by ", ".
class JsonObject {
public:
  /// String value (escaped and quoted).
  JsonObject &field(const char *Key, const std::string &Value);
  JsonObject &field(const char *Key, const char *Value);
  /// Integer values.
  JsonObject &field(const char *Key, int Value);
  JsonObject &field(const char *Key, long long Value);
  JsonObject &field(const char *Key, unsigned long long Value);
  JsonObject &field(const char *Key, bool Value);
  /// Fixed-precision double ("%.3f" by default - the report convention).
  JsonObject &fixed(const char *Key, double Value, int Precision = 3);
  /// Pre-rendered JSON (nested object/array).
  JsonObject &raw(const char *Key, const std::string &Json);

  bool empty() const { return Body.empty(); }
  /// The complete object, braces included.
  std::string str() const { return "{" + Body + "}"; }

private:
  JsonObject &append(const char *Key, const std::string &Rendered);
  std::string Body;
};

/// Inline JSON array writer over pre-rendered items: `[a, b]`.
class JsonArray {
public:
  JsonArray &item(const std::string &Json);
  JsonArray &item(const JsonObject &Obj) { return item(Obj.str()); }

  bool empty() const { return Body.empty(); }
  size_t size() const { return Items; }
  /// The complete array, brackets included.
  std::string str() const { return "[" + Body + "]"; }

private:
  std::string Body;
  size_t Items = 0;
};

} // namespace support
} // namespace checkfence

#endif // CHECKFENCE_SUPPORT_JSON_H
