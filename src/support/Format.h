//===--- Format.h - printf-style formatting into std::string ----*- C++ -*-==//
//
// Part of the CheckFence reproduction (PLDI'07).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small formatting helpers used throughout the library. Library code never
/// includes <iostream>; everything renders into std::string and executables
/// decide where the bytes go.
///
//===----------------------------------------------------------------------===//

#ifndef CHECKFENCE_SUPPORT_FORMAT_H
#define CHECKFENCE_SUPPORT_FORMAT_H

#include <cstdarg>
#include <string>
#include <vector>

namespace checkfence {

/// Formats like printf and returns the result as a std::string.
std::string formatString(const char *Fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// vprintf-style variant of formatString.
std::string formatStringV(const char *Fmt, va_list Args);

/// Joins \p Parts with \p Sep ("a", "b" -> "a, b" for Sep = ", ").
std::string joinStrings(const std::vector<std::string> &Parts,
                        const std::string &Sep);

/// Returns a copy of \p S with every occurrence of \p From replaced by
/// \p To. Used by the test-notation expander and the documentation dumps.
std::string replaceAll(std::string S, const std::string &From,
                       const std::string &To);

/// One-line escaping for free-text fields in the line-oriented
/// persistence formats (result cache, explore corpus): \n, \t, \\.
std::string escapeLine(const std::string &S);
std::string unescapeLine(const std::string &S);

} // namespace checkfence

#endif // CHECKFENCE_SUPPORT_FORMAT_H
