//===--- WorkerBudget.h - shared worker-slot accounting ---------*- C++ -*-==//
//
// Part of the CheckFence reproduction (PLDI'07).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One process-wide pool of worker slots shared by every parallel layer:
/// matrix cells (engine::MatrixRunner), fence-minimization checks
/// (harness::FenceSynth), and intra-check portfolio helpers
/// (engine::SolverPortfolio). A budget of `--jobs N` means at most N
/// threads do solver work at any instant, no matter how the layers nest:
/// the calling thread is always an implicit worker, and the budget counts
/// the N-1 *extra* threads any layer may borrow on top of it.
///
/// Acquisition is non-blocking: a layer takes what is available (possibly
/// zero) and proceeds with the calling thread alone otherwise. This keeps
/// nesting deadlock-free - a matrix cell whose portfolio finds the budget
/// drained simply runs serially - and guarantees no cells-times-width
/// thread explosion by construction.
///
//===----------------------------------------------------------------------===//

#ifndef CHECKFENCE_SUPPORT_WORKERBUDGET_H
#define CHECKFENCE_SUPPORT_WORKERBUDGET_H

#include <atomic>

namespace checkfence {
namespace support {

/// Counts the extra worker threads available beyond the calling thread.
/// A request run with `--jobs N` constructs WorkerBudget(N - 1).
class WorkerBudget {
public:
  explicit WorkerBudget(int ExtraWorkers)
      : Avail(ExtraWorkers < 0 ? 0 : ExtraWorkers),
        Total(ExtraWorkers < 0 ? 0 : ExtraWorkers) {}

  WorkerBudget(const WorkerBudget &) = delete;
  WorkerBudget &operator=(const WorkerBudget &) = delete;

  /// Takes up to \p Max slots without blocking; returns how many were
  /// actually acquired (possibly 0). Pair every acquisition with a
  /// release() of the same count.
  int tryAcquire(int Max) {
    if (Max <= 0)
      return 0;
    int Cur = Avail.load(std::memory_order_relaxed);
    while (Cur > 0) {
      int Take = Cur < Max ? Cur : Max;
      if (Avail.compare_exchange_weak(Cur, Cur - Take,
                                      std::memory_order_acq_rel)) {
        noteHeld(Take);
        return Take;
      }
    }
    return 0;
  }

  /// Returns \p N previously acquired slots to the pool.
  void release(int N) {
    if (N <= 0)
      return;
    Held.fetch_sub(N, std::memory_order_acq_rel);
    Avail.fetch_add(N, std::memory_order_acq_rel);
  }

  int totalWorkers() const { return Total; }
  int available() const { return Avail.load(std::memory_order_relaxed); }

  /// High-water mark of simultaneously held slots; the oversubscription
  /// regression test asserts peakHeld() <= totalWorkers().
  int peakHeld() const { return Peak.load(std::memory_order_relaxed); }

private:
  void noteHeld(int N) {
    int H = Held.fetch_add(N, std::memory_order_acq_rel) + N;
    int P = Peak.load(std::memory_order_relaxed);
    while (H > P &&
           !Peak.compare_exchange_weak(P, H, std::memory_order_acq_rel)) {
    }
  }

  std::atomic<int> Avail;
  const int Total;
  std::atomic<int> Held{0};
  std::atomic<int> Peak{0};
};

} // namespace support
} // namespace checkfence

#endif // CHECKFENCE_SUPPORT_WORKERBUDGET_H
