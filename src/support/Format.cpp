//===--- Format.cpp - printf-style formatting into std::string -----------===//

#include "support/Format.h"

#include <cstdio>

using namespace checkfence;

std::string checkfence::formatStringV(const char *Fmt, va_list Args) {
  va_list Copy;
  va_copy(Copy, Args);
  int Needed = std::vsnprintf(nullptr, 0, Fmt, Copy);
  va_end(Copy);
  if (Needed <= 0)
    return std::string();
  std::string Result(static_cast<size_t>(Needed), '\0');
  std::vsnprintf(Result.data(), Result.size() + 1, Fmt, Args);
  return Result;
}

std::string checkfence::formatString(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  std::string Result = formatStringV(Fmt, Args);
  va_end(Args);
  return Result;
}

std::string checkfence::joinStrings(const std::vector<std::string> &Parts,
                                    const std::string &Sep) {
  std::string Result;
  for (size_t I = 0; I < Parts.size(); ++I) {
    if (I != 0)
      Result += Sep;
    Result += Parts[I];
  }
  return Result;
}

std::string checkfence::replaceAll(std::string S, const std::string &From,
                                   const std::string &To) {
  if (From.empty())
    return S;
  size_t Pos = 0;
  while ((Pos = S.find(From, Pos)) != std::string::npos) {
    S.replace(Pos, From.size(), To);
    Pos += To.size();
  }
  return S;
}

std::string checkfence::escapeLine(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      Out += C;
    }
  }
  return Out;
}

std::string checkfence::unescapeLine(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (size_t I = 0; I < S.size(); ++I) {
    if (S[I] != '\\' || I + 1 == S.size()) {
      Out += S[I];
      continue;
    }
    switch (S[++I]) {
    case 'n':
      Out += '\n';
      break;
    case 't':
      Out += '\t';
      break;
    default:
      Out += S[I];
    }
  }
  return Out;
}
