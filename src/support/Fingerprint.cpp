//===--- Fingerprint.cpp - content hashing for caches/corpora ----------------===//
//
// Part of the CheckFence reproduction (PLDI'07).
//
//===----------------------------------------------------------------------===//

#include "support/Fingerprint.h"

#include "lsl/Printer.h"
#include "support/Format.h"

using namespace checkfence;

uint64_t checkfence::support::fnv1a(const std::string &Data) {
  uint64_t H = 1469598103934665603ull;
  for (char C : Data) {
    H ^= static_cast<unsigned char>(C);
    H *= 1099511628211ull;
  }
  return H;
}

std::string checkfence::support::fnv1aHex(const std::string &Data) {
  return formatString("%016llx",
                      static_cast<unsigned long long>(fnv1a(Data)));
}

std::string checkfence::support::loweredProgramFingerprint(
    const lsl::Program &Impl, const std::vector<std::string> &Threads,
    const lsl::Program *Spec) {
  // 0x1f separators keep the blob unambiguous: the printer never emits
  // control characters, so adjacent sections cannot alias.
  std::string Blob = lsl::printProgram(Impl);
  Blob += '\x1f';
  Blob += joinStrings(Threads, ",");
  Blob += '\x1f';
  if (Spec)
    Blob += lsl::printProgram(*Spec);
  return fnv1aHex(Blob);
}
