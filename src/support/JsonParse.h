//===--- JsonParse.h - a small JSON value parser ----------------*- C++ -*-==//
//
// Part of the CheckFence reproduction (PLDI'07).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The read half of the repository's JSON story (support/Json.h is the
/// write half): a strict recursive-descent parser into a small value
/// tree. Used by the checkfenced server (JSON-RPC request bodies) and
/// the remote client (response bodies).
///
/// Numbers keep their source spelling alongside the double conversion so
/// 64-bit integers (clause counts, seeds) round-trip exactly through
/// asI64/asU64.
///
//===----------------------------------------------------------------------===//

#ifndef CHECKFENCE_SUPPORT_JSONPARSE_H
#define CHECKFENCE_SUPPORT_JSONPARSE_H

#include <string>
#include <utility>
#include <vector>

namespace checkfence {
namespace support {

/// One parsed JSON value. Object member order is preserved (the parser
/// never reorders), duplicate keys keep the last occurrence via find().
class JsonValue {
public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Kind ValueKind = Kind::Null;
  bool BoolVal = false;
  double NumVal = 0;
  std::string NumText; ///< source spelling, for exact integer reads
  std::string Str;
  std::vector<JsonValue> Items;
  std::vector<std::pair<std::string, JsonValue>> Members;

  bool isNull() const { return ValueKind == Kind::Null; }
  bool isBool() const { return ValueKind == Kind::Bool; }
  bool isNumber() const { return ValueKind == Kind::Number; }
  bool isString() const { return ValueKind == Kind::String; }
  bool isArray() const { return ValueKind == Kind::Array; }
  bool isObject() const { return ValueKind == Kind::Object; }

  /// Member lookup (objects only); nullptr when absent. Last duplicate
  /// wins, matching common JSON semantics.
  const JsonValue *find(const std::string &Key) const;

  // Typed reads with defaults; wrong-kind values return the default
  // (callers that must distinguish test the kind first).
  bool asBool(bool Default = false) const;
  double asDouble(double Default = 0) const;
  int asInt(int Default = 0) const;
  long long asI64(long long Default = 0) const;
  unsigned long long asU64(unsigned long long Default = 0) const;
  std::string asString(std::string Default = std::string()) const;
};

/// Parses \p Text into \p Out. False + \p Error (with an offset) on any
/// syntax problem; trailing non-whitespace is an error.
bool parseJson(const std::string &Text, JsonValue &Out,
               std::string &Error);

} // namespace support
} // namespace checkfence

#endif // CHECKFENCE_SUPPORT_JSONPARSE_H
