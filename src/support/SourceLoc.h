//===--- SourceLoc.h - source positions for diagnostics ---------*- C++ -*-==//
///
/// \file
/// A lightweight (line, column) pair used by the C frontend and carried on
/// LSL statements so counterexample traces can point back at source lines.
///
//===----------------------------------------------------------------------===//

#ifndef CHECKFENCE_SUPPORT_SOURCELOC_H
#define CHECKFENCE_SUPPORT_SOURCELOC_H

namespace checkfence {

struct SourceLoc {
  int Line = 0; // 1-based; 0 means "unknown"
  int Col = 0;

  bool isValid() const { return Line > 0; }
};

} // namespace checkfence

#endif // CHECKFENCE_SUPPORT_SOURCELOC_H
