//===--- Timing.h - wall-clock timers for statistics ------------*- C++ -*-==//
///
/// \file
/// Wall-clock timing used by the checker statistics (Fig. 10/11/12 columns).
///
//===----------------------------------------------------------------------===//

#ifndef CHECKFENCE_SUPPORT_TIMING_H
#define CHECKFENCE_SUPPORT_TIMING_H

#include <chrono>

namespace checkfence {

/// A simple wall-clock stopwatch. Construct to start; seconds() reads the
/// elapsed time without stopping.
class Timer {
public:
  Timer() : Start(Clock::now()) {}

  /// Elapsed wall-clock seconds since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  }

  /// Restarts the stopwatch.
  void reset() { Start = Clock::now(); }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

/// Accumulates time across several start/stop intervals (used to attribute
/// runtime to the mining / encoding / refutation phases, Fig. 11b).
class Stopwatch {
public:
  void start() { Running = Timer(); Active = true; }
  void stop() {
    if (Active)
      Total += Running.seconds();
    Active = false;
  }
  double seconds() const {
    return Total + (Active ? Running.seconds() : 0.0);
  }

private:
  Timer Running;
  double Total = 0.0;
  bool Active = false;
};

} // namespace checkfence

#endif // CHECKFENCE_SUPPORT_TIMING_H
