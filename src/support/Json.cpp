//===--- Json.cpp - JSON escaping and writers --------------------------------===//
//
// Part of the CheckFence reproduction (PLDI'07).
//
//===----------------------------------------------------------------------===//

#include "support/Json.h"

#include "support/Format.h"

using namespace checkfence;
using namespace checkfence::support;

std::string checkfence::support::jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size() + 2);
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20)
        Out += formatString("\\u%04x", C);
      else
        Out += C;
    }
  }
  return Out;
}

std::string checkfence::support::jsonQuote(const std::string &S) {
  return "\"" + jsonEscape(S) + "\"";
}

JsonObject &JsonObject::append(const char *Key,
                               const std::string &Rendered) {
  if (!Body.empty())
    Body += ", ";
  Body += "\"";
  Body += Key;
  Body += "\": ";
  Body += Rendered;
  return *this;
}

JsonObject &JsonObject::field(const char *Key, const std::string &Value) {
  return append(Key, jsonQuote(Value));
}

JsonObject &JsonObject::field(const char *Key, const char *Value) {
  return append(Key, jsonQuote(Value));
}

JsonObject &JsonObject::field(const char *Key, int Value) {
  return append(Key, formatString("%d", Value));
}

JsonObject &JsonObject::field(const char *Key, long long Value) {
  return append(Key, formatString("%lld", Value));
}

JsonObject &JsonObject::field(const char *Key, unsigned long long Value) {
  return append(Key, formatString("%llu", Value));
}

JsonObject &JsonObject::field(const char *Key, bool Value) {
  return append(Key, Value ? "true" : "false");
}

JsonObject &JsonObject::fixed(const char *Key, double Value,
                              int Precision) {
  return append(Key, formatString("%.*f", Precision, Value));
}

JsonObject &JsonObject::raw(const char *Key, const std::string &Json) {
  return append(Key, Json);
}

JsonArray &JsonArray::item(const std::string &Json) {
  if (!Body.empty())
    Body += ", ";
  Body += Json;
  ++Items;
  return *this;
}
