//===--- Fingerprint.h - content hashing for caches/corpora -----*- C++ -*-==//
//
// Part of the CheckFence reproduction (PLDI'07).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one content-hashing path shared by every subsystem that keys work
/// by "what program is this": the Verifier's result cache, the session
/// pool, and the explore corpus. FNV-1a over the *lowered* program text
/// (lsl::printProgram), so any semantic change - a removed fence, a
/// flipped define, a different test - changes the fingerprint while
/// whitespace-only source differences do not.
///
//===----------------------------------------------------------------------===//

#ifndef CHECKFENCE_SUPPORT_FINGERPRINT_H
#define CHECKFENCE_SUPPORT_FINGERPRINT_H

#include <cstdint>
#include <string>
#include <vector>

namespace checkfence {
namespace lsl {
class Program;
}
namespace support {

/// FNV-1a 64-bit over \p Data.
uint64_t fnv1a(const std::string &Data);

/// fnv1a rendered as the canonical 16-digit lowercase hex string used in
/// cache keys and corpus filenames.
std::string fnv1aHex(const std::string &Data);

/// Fingerprint of one or more lowered programs plus the test-thread
/// procedure names. \p Spec may be null (no reference program).
std::string loweredProgramFingerprint(const lsl::Program &Impl,
                                      const std::vector<std::string> &Threads,
                                      const lsl::Program *Spec = nullptr);

} // namespace support
} // namespace checkfence

#endif // CHECKFENCE_SUPPORT_FINGERPRINT_H
