//===--- JsonParse.cpp - a small JSON value parser ---------------------------===//
//
// Part of the CheckFence reproduction (PLDI'07).
//
//===----------------------------------------------------------------------===//

#include "support/JsonParse.h"

#include "support/Format.h"

#include <cstdlib>

using namespace checkfence;
using namespace checkfence::support;

const JsonValue *JsonValue::find(const std::string &Key) const {
  const JsonValue *Found = nullptr;
  for (const auto &[K, V] : Members)
    if (K == Key)
      Found = &V;
  return Found;
}

bool JsonValue::asBool(bool Default) const {
  return isBool() ? BoolVal : Default;
}

double JsonValue::asDouble(double Default) const {
  return isNumber() ? NumVal : Default;
}

int JsonValue::asInt(int Default) const {
  return isNumber() ? static_cast<int>(std::strtoll(NumText.c_str(),
                                                    nullptr, 10))
                    : Default;
}

long long JsonValue::asI64(long long Default) const {
  return isNumber() ? std::strtoll(NumText.c_str(), nullptr, 10)
                    : Default;
}

unsigned long long JsonValue::asU64(unsigned long long Default) const {
  return isNumber() ? std::strtoull(NumText.c_str(), nullptr, 10)
                    : Default;
}

std::string JsonValue::asString(std::string Default) const {
  return isString() ? Str : Default;
}

namespace {

class Parser {
public:
  Parser(const std::string &Text, std::string &Error)
      : Text(Text), Error(Error) {}

  bool parse(JsonValue &Out) {
    skipWs();
    if (!value(Out))
      return false;
    skipWs();
    if (Pos != Text.size())
      return fail("trailing characters after JSON value");
    return true;
  }

private:
  const std::string &Text;
  std::string &Error;
  size_t Pos = 0;
  int Depth = 0;
  static constexpr int MaxDepth = 64;

  bool fail(const std::string &Why) {
    Error = formatString("JSON parse error at offset %zu: ", Pos) + Why;
    return false;
  }

  void skipWs() {
    while (Pos < Text.size() &&
           (Text[Pos] == ' ' || Text[Pos] == '\t' || Text[Pos] == '\n' ||
            Text[Pos] == '\r'))
      ++Pos;
  }

  bool literal(const char *Word) {
    size_t N = 0;
    while (Word[N])
      ++N;
    if (Text.compare(Pos, N, Word) != 0)
      return fail(std::string("expected '") + Word + "'");
    Pos += N;
    return true;
  }

  bool value(JsonValue &Out) {
    if (Pos >= Text.size())
      return fail("unexpected end of input");
    if (++Depth > MaxDepth)
      return fail("nesting too deep");
    bool Ok = false;
    switch (Text[Pos]) {
    case '{':
      Ok = object(Out);
      break;
    case '[':
      Ok = array(Out);
      break;
    case '"':
      Out.ValueKind = JsonValue::Kind::String;
      Ok = string(Out.Str);
      break;
    case 't':
      Out.ValueKind = JsonValue::Kind::Bool;
      Out.BoolVal = true;
      Ok = literal("true");
      break;
    case 'f':
      Out.ValueKind = JsonValue::Kind::Bool;
      Out.BoolVal = false;
      Ok = literal("false");
      break;
    case 'n':
      Out.ValueKind = JsonValue::Kind::Null;
      Ok = literal("null");
      break;
    default:
      Ok = number(Out);
      break;
    }
    --Depth;
    return Ok;
  }

  bool object(JsonValue &Out) {
    Out.ValueKind = JsonValue::Kind::Object;
    ++Pos; // '{'
    skipWs();
    if (Pos < Text.size() && Text[Pos] == '}') {
      ++Pos;
      return true;
    }
    while (true) {
      skipWs();
      if (Pos >= Text.size() || Text[Pos] != '"')
        return fail("expected object key string");
      std::string Key;
      if (!string(Key))
        return false;
      skipWs();
      if (Pos >= Text.size() || Text[Pos] != ':')
        return fail("expected ':' after object key");
      ++Pos;
      skipWs();
      JsonValue V;
      if (!value(V))
        return false;
      Out.Members.emplace_back(std::move(Key), std::move(V));
      skipWs();
      if (Pos >= Text.size())
        return fail("unterminated object");
      if (Text[Pos] == ',') {
        ++Pos;
        continue;
      }
      if (Text[Pos] == '}') {
        ++Pos;
        return true;
      }
      return fail("expected ',' or '}' in object");
    }
  }

  bool array(JsonValue &Out) {
    Out.ValueKind = JsonValue::Kind::Array;
    ++Pos; // '['
    skipWs();
    if (Pos < Text.size() && Text[Pos] == ']') {
      ++Pos;
      return true;
    }
    while (true) {
      skipWs();
      JsonValue V;
      if (!value(V))
        return false;
      Out.Items.push_back(std::move(V));
      skipWs();
      if (Pos >= Text.size())
        return fail("unterminated array");
      if (Text[Pos] == ',') {
        ++Pos;
        continue;
      }
      if (Text[Pos] == ']') {
        ++Pos;
        return true;
      }
      return fail("expected ',' or ']' in array");
    }
  }

  bool hex4(unsigned &Out) {
    Out = 0;
    for (int I = 0; I < 4; ++I) {
      if (Pos >= Text.size())
        return fail("truncated \\u escape");
      char C = Text[Pos++];
      unsigned D;
      if (C >= '0' && C <= '9')
        D = C - '0';
      else if (C >= 'a' && C <= 'f')
        D = 10 + C - 'a';
      else if (C >= 'A' && C <= 'F')
        D = 10 + C - 'A';
      else
        return fail("bad hex digit in \\u escape");
      Out = Out * 16 + D;
    }
    return true;
  }

  /// Appends \p Code as UTF-8 (the writer only emits \u00XX for control
  /// bytes, but arbitrary escapes must still decode).
  static void appendUtf8(std::string &S, unsigned Code) {
    if (Code < 0x80) {
      S += static_cast<char>(Code);
    } else if (Code < 0x800) {
      S += static_cast<char>(0xC0 | (Code >> 6));
      S += static_cast<char>(0x80 | (Code & 0x3F));
    } else {
      S += static_cast<char>(0xE0 | (Code >> 12));
      S += static_cast<char>(0x80 | ((Code >> 6) & 0x3F));
      S += static_cast<char>(0x80 | (Code & 0x3F));
    }
  }

  bool string(std::string &Out) {
    ++Pos; // opening quote
    Out.clear();
    while (true) {
      if (Pos >= Text.size())
        return fail("unterminated string");
      char C = Text[Pos++];
      if (C == '"')
        return true;
      if (C != '\\') {
        Out += C;
        continue;
      }
      if (Pos >= Text.size())
        return fail("truncated escape");
      char E = Text[Pos++];
      switch (E) {
      case '"':
      case '\\':
      case '/':
        Out += E;
        break;
      case 'b':
        Out += '\b';
        break;
      case 'f':
        Out += '\f';
        break;
      case 'n':
        Out += '\n';
        break;
      case 'r':
        Out += '\r';
        break;
      case 't':
        Out += '\t';
        break;
      case 'u': {
        unsigned Code;
        if (!hex4(Code))
          return false;
        appendUtf8(Out, Code);
        break;
      }
      default:
        return fail("unknown escape character");
      }
    }
  }

  bool number(JsonValue &Out) {
    size_t Start = Pos;
    if (Pos < Text.size() && Text[Pos] == '-')
      ++Pos;
    bool Digits = false;
    while (Pos < Text.size() && Text[Pos] >= '0' && Text[Pos] <= '9') {
      ++Pos;
      Digits = true;
    }
    if (Pos < Text.size() && Text[Pos] == '.') {
      ++Pos;
      while (Pos < Text.size() && Text[Pos] >= '0' && Text[Pos] <= '9')
        ++Pos;
    }
    if (Pos < Text.size() && (Text[Pos] == 'e' || Text[Pos] == 'E')) {
      ++Pos;
      if (Pos < Text.size() && (Text[Pos] == '+' || Text[Pos] == '-'))
        ++Pos;
      while (Pos < Text.size() && Text[Pos] >= '0' && Text[Pos] <= '9')
        ++Pos;
    }
    if (!Digits)
      return fail("expected a value");
    Out.ValueKind = JsonValue::Kind::Number;
    Out.NumText = Text.substr(Start, Pos - Start);
    Out.NumVal = std::strtod(Out.NumText.c_str(), nullptr);
    return true;
  }
};

} // namespace

bool checkfence::support::parseJson(const std::string &Text,
                                    JsonValue &Out, std::string &Error) {
  Parser P(Text, Error);
  return P.parse(Out);
}
