//===--- Value.cpp - LSL runtime values and operator semantics ------------===//
//
// Part of the CheckFence reproduction (PLDI'07).
//
//===----------------------------------------------------------------------===//

#include "lsl/Value.h"

#include "support/Format.h"

#include <cassert>

using namespace checkfence;
using namespace checkfence::lsl;

Value Value::withOffset(uint32_t Offset) const {
  assert(isPtr() && "offset on non-pointer");
  std::vector<uint32_t> P = PtrPath;
  P.push_back(Offset);
  return pointer(std::move(P), PtrMark);
}

Value Value::withMark(bool Mark) const {
  assert(isPtr() && "mark on non-pointer");
  return pointer(PtrPath, Mark);
}

bool Value::operator==(const Value &O) const {
  if (K != O.K)
    return false;
  switch (K) {
  case Kind::Undefined:
    return true;
  case Kind::Int:
    return IntVal == O.IntVal;
  case Kind::Ptr:
    return PtrPath == O.PtrPath && PtrMark == O.PtrMark;
  }
  return false;
}

bool Value::operator<(const Value &O) const {
  if (K != O.K)
    return static_cast<int>(K) < static_cast<int>(O.K);
  switch (K) {
  case Kind::Undefined:
    return false;
  case Kind::Int:
    return IntVal < O.IntVal;
  case Kind::Ptr:
    if (PtrPath != O.PtrPath)
      return PtrPath < O.PtrPath;
    return PtrMark < O.PtrMark;
  }
  return false;
}

std::string Value::str() const {
  switch (K) {
  case Kind::Undefined:
    return "undef";
  case Kind::Int:
    return formatString("%lld", static_cast<long long>(IntVal));
  case Kind::Ptr: {
    std::string S = "[";
    for (size_t I = 0; I < PtrPath.size(); ++I) {
      if (I != 0)
        S += ' ';
      S += formatString("%u", PtrPath[I]);
    }
    S += ']';
    if (PtrMark)
      S += "&1";
    return S;
  }
  }
  return "<bad>";
}

int checkfence::lsl::primOpArity(PrimOpKind K) {
  switch (K) {
  case PrimOpKind::BitNot:
  case PrimOpKind::LNot:
  case PrimOpKind::PtrField:
  case PrimOpKind::PtrGetMark:
  case PrimOpKind::PtrClearMark:
  case PrimOpKind::Copy:
    return 1;
  case PrimOpKind::Select:
    return 3;
  default:
    return 2;
  }
}

const char *checkfence::lsl::primOpName(PrimOpKind K) {
  switch (K) {
  case PrimOpKind::Add:
    return "add";
  case PrimOpKind::Sub:
    return "sub";
  case PrimOpKind::Mul:
    return "mul";
  case PrimOpKind::Div:
    return "div";
  case PrimOpKind::Mod:
    return "mod";
  case PrimOpKind::BitAnd:
    return "and";
  case PrimOpKind::BitOr:
    return "or";
  case PrimOpKind::BitXor:
    return "xor";
  case PrimOpKind::BitNot:
    return "not";
  case PrimOpKind::Shl:
    return "shl";
  case PrimOpKind::Shr:
    return "shr";
  case PrimOpKind::Eq:
    return "eq";
  case PrimOpKind::Ne:
    return "ne";
  case PrimOpKind::Lt:
    return "lt";
  case PrimOpKind::Le:
    return "le";
  case PrimOpKind::Gt:
    return "gt";
  case PrimOpKind::Ge:
    return "ge";
  case PrimOpKind::LNot:
    return "lnot";
  case PrimOpKind::LAnd:
    return "land";
  case PrimOpKind::LOr:
    return "lor";
  case PrimOpKind::PtrField:
    return "ptrfield";
  case PrimOpKind::PtrIndex:
    return "ptrindex";
  case PrimOpKind::PtrMark:
    return "ptrmark";
  case PrimOpKind::PtrGetMark:
    return "ptrgetmark";
  case PrimOpKind::PtrClearMark:
    return "ptrclearmark";
  case PrimOpKind::Select:
    return "select";
  case PrimOpKind::Copy:
    return "copy";
  }
  return "<bad-op>";
}

/// Integer binary operator core; assumes both operands are ints.
static Value evalIntBinary(PrimOpKind Op, int64_t A, int64_t B) {
  switch (Op) {
  case PrimOpKind::Add:
    return Value::integer(A + B);
  case PrimOpKind::Sub:
    return Value::integer(A - B);
  case PrimOpKind::Mul:
    return Value::integer(A * B);
  case PrimOpKind::Div:
    return B == 0 ? Value::undef() : Value::integer(A / B);
  case PrimOpKind::Mod:
    return B == 0 ? Value::undef() : Value::integer(A % B);
  case PrimOpKind::BitAnd:
    return Value::integer(A & B);
  case PrimOpKind::BitOr:
    return Value::integer(A | B);
  case PrimOpKind::BitXor:
    return Value::integer(A ^ B);
  case PrimOpKind::Shl:
    return (B < 0 || B > 62) ? Value::undef() : Value::integer(A << B);
  case PrimOpKind::Shr:
    return (B < 0 || B > 62) ? Value::undef() : Value::integer(A >> B);
  case PrimOpKind::Lt:
    return Value::integer(A < B);
  case PrimOpKind::Le:
    return Value::integer(A <= B);
  case PrimOpKind::Gt:
    return Value::integer(A > B);
  case PrimOpKind::Ge:
    return Value::integer(A >= B);
  default:
    return Value::undef();
  }
}

Value checkfence::lsl::evalPrimOp(PrimOpKind Op,
                                  const std::vector<Value> &Args,
                                  int64_t Imm) {
  assert(static_cast<int>(Args.size()) == primOpArity(Op) &&
         "wrong arity for primop");

  switch (Op) {
  case PrimOpKind::Copy:
    return Args[0];

  case PrimOpKind::Eq:
  case PrimOpKind::Ne: {
    const Value &A = Args[0], &B = Args[1];
    if (A.isUndef() || B.isUndef())
      return Value::undef();
    bool Equal = (A == B);
    return Value::integer((Op == PrimOpKind::Eq) == Equal);
  }

  case PrimOpKind::LNot: {
    if (Args[0].isUndef())
      return Value::undef();
    return Value::integer(!Args[0].isTruthy());
  }
  // Logical conjunction/disjunction use Kleene three-valued semantics: a
  // defined-false operand decides LAnd and a defined-true operand decides
  // LOr even if the other side is undefined. The flattener's guard algebra
  // relies on this: dead branches carry undefined registers whose values
  // must not poison live-path guards.
  case PrimOpKind::LAnd: {
    bool AFalse = !Args[0].isUndef() && !Args[0].isTruthy();
    bool BFalse = !Args[1].isUndef() && !Args[1].isTruthy();
    if (AFalse || BFalse)
      return Value::integer(0);
    if (Args[0].isUndef() || Args[1].isUndef())
      return Value::undef();
    return Value::integer(1);
  }
  case PrimOpKind::LOr: {
    bool ATrue = !Args[0].isUndef() && Args[0].isTruthy();
    bool BTrue = !Args[1].isUndef() && Args[1].isTruthy();
    if (ATrue || BTrue)
      return Value::integer(1);
    if (Args[0].isUndef() || Args[1].isUndef())
      return Value::undef();
    return Value::integer(0);
  }

  case PrimOpKind::BitNot:
    if (!Args[0].isInt())
      return Value::undef();
    return Value::integer(~Args[0].intValue());

  case PrimOpKind::PtrField:
    if (!Args[0].isPtr())
      return Value::undef();
    return Args[0].withOffset(static_cast<uint32_t>(Imm));

  case PrimOpKind::PtrIndex:
    if (!Args[0].isPtr() || !Args[1].isInt() || Args[1].intValue() < 0)
      return Value::undef();
    return Args[0].withOffset(static_cast<uint32_t>(Args[1].intValue()));

  case PrimOpKind::PtrMark:
    if (!Args[0].isPtr() || !Args[1].isInt())
      return Value::undef();
    return Args[0].withMark(Args[1].intValue() != 0);

  case PrimOpKind::PtrGetMark:
    if (!Args[0].isPtr())
      return Value::undef();
    return Value::integer(Args[0].ptrMark() ? 1 : 0);

  case PrimOpKind::PtrClearMark:
    if (!Args[0].isPtr())
      return Value::undef();
    return Args[0].withMark(false);

  case PrimOpKind::Select: {
    if (Args[0].isUndef())
      return Value::undef();
    return Args[0].isTruthy() ? Args[1] : Args[2];
  }

  default: {
    // Integer arithmetic / shifts / relational operators.
    if (!Args[0].isInt() || !Args[1].isInt())
      return Value::undef();
    return evalIntBinary(Op, Args[0].intValue(), Args[1].intValue());
  }
  }
}

const char *checkfence::lsl::fenceKindName(FenceKind K) {
  switch (K) {
  case FenceKind::LoadLoad:
    return "load-load";
  case FenceKind::LoadStore:
    return "load-store";
  case FenceKind::StoreLoad:
    return "store-load";
  case FenceKind::StoreStore:
    return "store-store";
  }
  return "<bad-fence>";
}

bool checkfence::lsl::parseFenceKind(const std::string &S, FenceKind &Out) {
  if (S == "load-load")
    Out = FenceKind::LoadLoad;
  else if (S == "load-store")
    Out = FenceKind::LoadStore;
  else if (S == "store-load")
    Out = FenceKind::StoreLoad;
  else if (S == "store-store")
    Out = FenceKind::StoreStore;
  else
    return false;
  return true;
}
