//===--- Program.h - LSL procedures and programs ----------------*- C++ -*-==//
//
// Part of the CheckFence reproduction (PLDI'07).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An LSL program is a set of named procedures. A procedure has parameter
/// registers (0..NumParams-1), a body, and designated return registers that
/// the body assigns before falling off the end (the C frontend lowers
/// 'return e;' into 'retreg = e; break <outermost>').
///
//===----------------------------------------------------------------------===//

#ifndef CHECKFENCE_LSL_PROGRAM_H
#define CHECKFENCE_LSL_PROGRAM_H

#include "lsl/Stmt.h"

#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace checkfence {
namespace lsl {

/// A named LSL procedure.
struct Proc {
  std::string Name;
  int NumParams = 0;
  std::vector<Reg> RetRegs;
  int NumRegs = 0;
  int NumTags = 0;
  std::vector<Stmt *> Body;
  /// Debug names for registers (may be shorter than NumRegs).
  std::vector<std::string> RegNames;

  Reg newReg(const std::string &Name = "") {
    Reg R = NumRegs++;
    RegNames.resize(NumRegs);
    RegNames[R] = Name;
    return R;
  }

  int newTag() { return NumTags++; }

  std::string regName(Reg R) const;
};

/// A whole LSL translation unit. Owns all statements (arena) and the
/// global-variable layout: each global gets a base address; the pointer
/// value of global G is [BaseOf(G)].
class Program {
public:
  /// Allocates a statement in the arena.
  Stmt *create(StmtKind K) {
    Arena.emplace_back();
    Arena.back().K = K;
    return &Arena.back();
  }

  Proc *getOrCreateProc(const std::string &Name) {
    auto It = Procs.find(Name);
    if (It != Procs.end())
      return It->second.get();
    auto P = std::make_unique<Proc>();
    P->Name = Name;
    Proc *Raw = P.get();
    Procs.emplace(Name, std::move(P));
    return Raw;
  }

  Proc *findProc(const std::string &Name) const {
    auto It = Procs.find(Name);
    return It == Procs.end() ? nullptr : It->second.get();
  }

  const std::map<std::string, std::unique_ptr<Proc>> &procs() const {
    return Procs;
  }

  /// Registers a global variable; returns its base address index.
  uint32_t addGlobal(const std::string &Name) {
    Globals.push_back(Name);
    return static_cast<uint32_t>(Globals.size() - 1);
  }

  const std::vector<std::string> &globals() const { return Globals; }

  /// First base address available for heap allocation (all global bases are
  /// below this).
  uint32_t heapBase() const { return static_cast<uint32_t>(Globals.size()); }

  /// Number of distinct allocation sites handed out so far.
  int numAllocSites() const { return NumAllocSites; }
  int newAllocSite() { return NumAllocSites++; }

private:
  std::map<std::string, std::unique_ptr<Proc>> Procs;
  std::deque<Stmt> Arena;
  std::vector<std::string> Globals;
  int NumAllocSites = 0;
};

} // namespace lsl
} // namespace checkfence

#endif // CHECKFENCE_LSL_PROGRAM_H
