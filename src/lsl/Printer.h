//===--- Printer.h - textual dump of LSL programs ---------------*- C++ -*-==//
///
/// \file
/// Renders LSL procedures/programs as human-readable text, used by the
/// frontend golden tests and by -debug style dumps.
///
//===----------------------------------------------------------------------===//

#ifndef CHECKFENCE_LSL_PRINTER_H
#define CHECKFENCE_LSL_PRINTER_H

#include "lsl/Program.h"

#include <string>

namespace checkfence {
namespace lsl {

/// Renders a single statement tree (multi-line for blocks).
std::string printStmt(const Proc &P, const Stmt *S, int Indent = 0);

/// Renders a whole procedure.
std::string printProc(const Proc &P);

/// Renders all procedures of a program.
std::string printProgram(const Program &Prog);

/// Renders \p Prog back as CheckFence-C source. Supported is the
/// *explore fragment*: scalar int globals and straight-line procedures
/// built from global stores (constant / register / register + constant),
/// loads into named locals, fences, observes, and atomic blocks of the
/// same forms - the shapes the explore generator emits and the shrinker
/// preserves.
///
/// The output round-trips through the frontend: compiling it again
/// (preprocess -> parse -> lower) yields a program whose printProgram
/// text is byte-identical to \p Prog's, so persisted repros re-check
/// with the same lowered-program fingerprint. Programs outside the
/// fragment return false with \p Error set (never wrong output).
bool printCSource(const Program &Prog, std::string &Out,
                  std::string &Error);

} // namespace lsl
} // namespace checkfence

#endif // CHECKFENCE_LSL_PRINTER_H
