//===--- Printer.h - textual dump of LSL programs ---------------*- C++ -*-==//
///
/// \file
/// Renders LSL procedures/programs as human-readable text, used by the
/// frontend golden tests and by -debug style dumps.
///
//===----------------------------------------------------------------------===//

#ifndef CHECKFENCE_LSL_PRINTER_H
#define CHECKFENCE_LSL_PRINTER_H

#include "lsl/Program.h"

#include <string>

namespace checkfence {
namespace lsl {

/// Renders a single statement tree (multi-line for blocks).
std::string printStmt(const Proc &P, const Stmt *S, int Indent = 0);

/// Renders a whole procedure.
std::string printProc(const Proc &P);

/// Renders all procedures of a program.
std::string printProgram(const Program &Prog);

} // namespace lsl
} // namespace checkfence

#endif // CHECKFENCE_LSL_PRINTER_H
