//===--- Program.cpp - LSL procedures and programs -------------------------===//

#include "lsl/Program.h"

#include "support/Format.h"

using namespace checkfence;
using namespace checkfence::lsl;

std::string Proc::regName(Reg R) const {
  if (R >= 0 && R < static_cast<int>(RegNames.size()) &&
      !RegNames[R].empty())
    return formatString("%%%s.%d", RegNames[R].c_str(), R);
  return formatString("%%r%d", R);
}
