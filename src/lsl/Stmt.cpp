//===--- Stmt.cpp - LSL statement helpers ----------------------------------===//

#include "lsl/Stmt.h"

using namespace checkfence;
using namespace checkfence::lsl;

const char *checkfence::lsl::stmtKindName(StmtKind K) {
  switch (K) {
  case StmtKind::Const:
    return "const";
  case StmtKind::Choice:
    return "choice";
  case StmtKind::PrimOp:
    return "primop";
  case StmtKind::Load:
    return "load";
  case StmtKind::Store:
    return "store";
  case StmtKind::Fence:
    return "fence";
  case StmtKind::Atomic:
    return "atomic";
  case StmtKind::Call:
    return "call";
  case StmtKind::Block:
    return "block";
  case StmtKind::Break:
    return "break";
  case StmtKind::Continue:
    return "continue";
  case StmtKind::Assert:
    return "assert";
  case StmtKind::Assume:
    return "assume";
  case StmtKind::Alloc:
    return "alloc";
  case StmtKind::Observe:
    return "observe";
  case StmtKind::Commit:
    return "commit";
  }
  return "<bad-stmt>";
}
