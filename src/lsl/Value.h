//===--- Value.h - LSL runtime values ---------------------------*- C++ -*-==//
//
// Part of the CheckFence reproduction (PLDI'07).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// LSL is untyped, but values are tagged at runtime (paper Sec. 3.1):
///
///   v ::= undefined | n | [ n1 ... nk ]
///
/// An integer is an exact (64-bit) number. A pointer is a base address
/// followed by a sequence of field/array offsets (paper Fig. 5); keeping the
/// offsets separate from the base avoids arithmetic when encoding pointer
/// operations. We extend pointers with a *mark bit* to model algorithms that
/// pack a flag into the low bit of a pointer word (Harris's set); the paper
/// supports such "packed structures" (footnote 1).
///
//===----------------------------------------------------------------------===//

#ifndef CHECKFENCE_LSL_VALUE_H
#define CHECKFENCE_LSL_VALUE_H

#include <cstdint>
#include <string>
#include <vector>

namespace checkfence {
namespace lsl {

/// A tagged LSL value: undefined, integer, or pointer-with-offsets.
class Value {
public:
  enum class Kind : uint8_t { Undefined, Int, Ptr };

  Value() : K(Kind::Undefined) {}

  static Value undef() { return Value(); }

  static Value integer(int64_t N) {
    Value V;
    V.K = Kind::Int;
    V.IntVal = N;
    return V;
  }

  static Value pointer(std::vector<uint32_t> Path, bool Mark = false) {
    Value V;
    V.K = Kind::Ptr;
    V.PtrPath = std::move(Path);
    V.PtrMark = Mark;
    return V;
  }

  Kind kind() const { return K; }
  bool isUndef() const { return K == Kind::Undefined; }
  bool isInt() const { return K == Kind::Int; }
  bool isPtr() const { return K == Kind::Ptr; }

  int64_t intValue() const { return IntVal; }
  const std::vector<uint32_t> &ptrPath() const { return PtrPath; }
  bool ptrMark() const { return PtrMark; }

  /// Returns this pointer with \p Offset appended ([0 1] -> [0 1 2]).
  Value withOffset(uint32_t Offset) const;
  /// Returns this pointer with the mark bit set to \p Mark.
  Value withMark(bool Mark) const;

  /// Truthiness for conditions: ints are true iff nonzero; pointers are
  /// always true; undefined has no truth value (callers must check).
  bool isTruthy() const { return isPtr() || (isInt() && IntVal != 0); }

  /// Structural equality (the LSL '==' semantics on defined values compares
  /// tag, payload, and mark).
  bool operator==(const Value &O) const;
  bool operator!=(const Value &O) const { return !(*this == O); }
  /// Total order so values can live in std::set / std::map (range analysis).
  bool operator<(const Value &O) const;

  /// Renders "undef", "42", or "[0 1 2]" / "[0 1 2]&1" for marked pointers.
  std::string str() const;

private:
  Kind K;
  int64_t IntVal = 0;
  std::vector<uint32_t> PtrPath;
  bool PtrMark = false;
};

/// Primitive operations available to LSL programs ('f' in Fig. 4).
enum class PrimOpKind : uint8_t {
  // Integer arithmetic (exact).
  Add,
  Sub,
  Mul,
  Div,
  Mod,
  // Bitwise on integers.
  BitAnd,
  BitOr,
  BitXor,
  BitNot,
  Shl,
  Shr,
  // Comparisons (result is int 0/1). Mixed int/pointer compares are defined:
  // a pointer never equals an integer.
  Eq,
  Ne,
  Lt,
  Le,
  Gt,
  Ge,
  // Logical (operands coerced by truthiness; result int 0/1).
  LNot,
  LAnd,
  LOr,
  // Pointer structure (paper Fig. 5): append a constant field offset /
  // a dynamic array index to the offset sequence.
  PtrField,
  PtrIndex,
  // Mark-bit manipulation for packed pointer words (Harris's set).
  PtrMark,
  PtrGetMark,
  PtrClearMark,
  // Ternary select: (c, a, b) -> c ? a : b  (c must be defined).
  Select,
  // Identity (register copy).
  Copy,
};

/// Number of register operands each PrimOpKind consumes (PtrField also
/// consumes an immediate).
int primOpArity(PrimOpKind K);

/// Printable operator name ("add", "eq", "ptrfield", ...).
const char *primOpName(PrimOpKind K);

/// Evaluates \p Op on concrete values. This is the single definition of LSL
/// operational semantics on values; the range analysis, the reference
/// executor, and the table-based encoder all call it.
/// \p Imm is the immediate operand (only PtrField uses it).
Value evalPrimOp(PrimOpKind Op, const std::vector<Value> &Args, int64_t Imm);

/// The four memory ordering fence kinds of Sparc RMO (paper Sec. 3.1):
/// an X-Y fence orders preceding accesses of kind X before following
/// accesses of kind Y.
enum class FenceKind : uint8_t {
  LoadLoad,
  LoadStore,
  StoreLoad,
  StoreStore,
};

const char *fenceKindName(FenceKind K);

/// Parses "load-load" etc.; returns false on unknown spelling.
bool parseFenceKind(const std::string &S, FenceKind &Out);

} // namespace lsl
} // namespace checkfence

#endif // CHECKFENCE_LSL_VALUE_H
