//===--- Stmt.h - LSL statements (paper Fig. 4) -----------------*- C++ -*-==//
//
// Part of the CheckFence reproduction (PLDI'07).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The load-store language (LSL) statement forms, mirroring Fig. 4:
///
///   s ::= r = v              (constant)
///       | r = f(r...)        (primitive op)
///       | *r = r             (store)
///       | r = *r             (load)
///       | fenceX             (memory ordering fence)
///       | atomic { s* }      (atomic block)
///       | p(r...)(r...)      (procedure call: args, then return registers)
///       | t: { s* }          (labeled block)
///       | if (r) break t     (leave block)
///       | if (r) continue t  (repeat block)
///       | assert(r)
///       | assume(r)
///
/// plus three extensions required by the methodology:
///
///       | r = choice(v1,...) (nondeterministic pick: symbolic test args)
///       | r = alloc(site)    (fresh heap cell group: new_node)
///       | observe(r)         (append r to the observation vector)
///
//===----------------------------------------------------------------------===//

#ifndef CHECKFENCE_LSL_STMT_H
#define CHECKFENCE_LSL_STMT_H

#include "lsl/Value.h"
#include "support/SourceLoc.h"

#include <string>
#include <vector>

namespace checkfence {
namespace lsl {

/// A virtual register, numbered per procedure.
using Reg = int;

constexpr Reg RegNone = -1;

enum class StmtKind : uint8_t {
  Const,    ///< Def = ConstVal
  Choice,   ///< Def = one of Choices (nondeterministic)
  PrimOp,   ///< Def = Op(Args..., Imm)
  Load,     ///< Def = *Addr
  Store,    ///< *Addr = Args[0]
  Fence,    ///< fence(FenceK)
  Atomic,   ///< atomic { Body }
  Call,     ///< Callee(Args...)(Rets...)
  Block,    ///< BlockTag: { Body }
  Break,    ///< if (Cond) break TargetTag
  Continue, ///< if (Cond) continue TargetTag
  Assert,   ///< assert(Cond)
  Assume,   ///< assume(Cond)
  Alloc,    ///< Def = fresh address (allocation site AllocSite)
  Observe,  ///< observe(Args[0])
  Commit,   ///< commit-point marker (baseline commit-point method)
};

const char *stmtKindName(StmtKind K);

/// A single LSL statement. Statements are arena-allocated by the owning
/// Program and referenced by raw pointer; block-like statements own their
/// children through the same arena.
struct Stmt {
  StmtKind K;
  SourceLoc Loc;

  /// Defined register (Const/Choice/PrimOp/Load/Alloc), else RegNone.
  Reg Def = RegNone;
  /// Register operands. Store: Args[0] is the stored value. Observe: the
  /// observed register. PrimOp: the operand list. Call: argument registers.
  std::vector<Reg> Args;
  /// Condition register (Break/Continue/Assert/Assume).
  Reg Cond = RegNone;
  /// Address register (Load/Store).
  Reg Addr = RegNone;

  Value ConstVal;               // Const
  std::vector<Value> Choices;   // Choice
  PrimOpKind Op = PrimOpKind::Copy;
  int64_t Imm = 0;              // PtrField immediate
  FenceKind FenceK = FenceKind::LoadLoad;
  std::string Callee;           // Call
  std::vector<Reg> Rets;        // Call return registers
  int BlockTag = -1;            // Block label
  int TargetTag = -1;           // Break/Continue target
  std::vector<Stmt *> Body;     // Block/Atomic children
  int AllocSite = -1;           // Alloc

  bool definesReg() const { return Def != RegNone; }
  bool isBlockLike() const {
    return K == StmtKind::Block || K == StmtKind::Atomic;
  }
};

} // namespace lsl
} // namespace checkfence

#endif // CHECKFENCE_LSL_STMT_H
