//===--- Printer.cpp - textual dump of LSL programs ------------------------===//

#include "lsl/Printer.h"

#include "support/Format.h"

using namespace checkfence;
using namespace checkfence::lsl;

static std::string indentStr(int Indent) {
  return std::string(static_cast<size_t>(Indent) * 2, ' ');
}

std::string checkfence::lsl::printStmt(const Proc &P, const Stmt *S,
                                       int Indent) {
  std::string Pad = indentStr(Indent);
  auto Rn = [&](Reg R) { return P.regName(R); };

  switch (S->K) {
  case StmtKind::Const:
    return Pad + formatString("%s = %s\n", Rn(S->Def).c_str(),
                              S->ConstVal.str().c_str());
  case StmtKind::Choice: {
    std::vector<std::string> Opts;
    for (const Value &V : S->Choices)
      Opts.push_back(V.str());
    return Pad + formatString("%s = choice(%s)\n", Rn(S->Def).c_str(),
                              joinStrings(Opts, ", ").c_str());
  }
  case StmtKind::PrimOp: {
    std::vector<std::string> Ops;
    for (Reg R : S->Args)
      Ops.push_back(Rn(R));
    if (S->Op == PrimOpKind::PtrField)
      Ops.push_back(formatString("#%lld", static_cast<long long>(S->Imm)));
    return Pad + formatString("%s = %s(%s)\n", Rn(S->Def).c_str(),
                              primOpName(S->Op),
                              joinStrings(Ops, ", ").c_str());
  }
  case StmtKind::Load:
    return Pad + formatString("%s = *%s\n", Rn(S->Def).c_str(),
                              Rn(S->Addr).c_str());
  case StmtKind::Store:
    return Pad + formatString("*%s = %s\n", Rn(S->Addr).c_str(),
                              Rn(S->Args[0]).c_str());
  case StmtKind::Fence:
    return Pad + formatString("fence %s\n", fenceKindName(S->FenceK));
  case StmtKind::Atomic: {
    std::string Out = Pad + "atomic {\n";
    for (const Stmt *C : S->Body)
      Out += printStmt(P, C, Indent + 1);
    return Out + Pad + "}\n";
  }
  case StmtKind::Call: {
    std::vector<std::string> As, Rs;
    for (Reg R : S->Args)
      As.push_back(Rn(R));
    for (Reg R : S->Rets)
      Rs.push_back(Rn(R));
    return Pad + formatString("%s(%s)(%s)\n", S->Callee.c_str(),
                              joinStrings(As, ", ").c_str(),
                              joinStrings(Rs, ", ").c_str());
  }
  case StmtKind::Block: {
    std::string Out = Pad + formatString("t%d: {\n", S->BlockTag);
    for (const Stmt *C : S->Body)
      Out += printStmt(P, C, Indent + 1);
    return Out + Pad + "}\n";
  }
  case StmtKind::Break:
    return Pad + formatString("if (%s) break t%d\n", Rn(S->Cond).c_str(),
                              S->TargetTag);
  case StmtKind::Continue:
    return Pad + formatString("if (%s) continue t%d\n", Rn(S->Cond).c_str(),
                              S->TargetTag);
  case StmtKind::Assert:
    return Pad + formatString("assert(%s)\n", Rn(S->Cond).c_str());
  case StmtKind::Assume:
    return Pad + formatString("assume(%s)\n", Rn(S->Cond).c_str());
  case StmtKind::Alloc:
    return Pad + formatString("%s = alloc(site %d)\n", Rn(S->Def).c_str(),
                              S->AllocSite);
  case StmtKind::Observe:
    return Pad + formatString("observe(%s)\n", Rn(S->Args[0]).c_str());
  case StmtKind::Commit:
    return Pad + "commit\n";
  }
  return Pad + "<bad-stmt>\n";
}

std::string checkfence::lsl::printProc(const Proc &P) {
  std::vector<std::string> Params, Rets;
  for (int I = 0; I < P.NumParams; ++I)
    Params.push_back(P.regName(I));
  for (Reg R : P.RetRegs)
    Rets.push_back(P.regName(R));
  std::string Out =
      formatString("proc %s(%s)(%s) {\n", P.Name.c_str(),
                   joinStrings(Params, ", ").c_str(),
                   joinStrings(Rets, ", ").c_str());
  for (const Stmt *S : P.Body)
    Out += printStmt(P, S, 1);
  return Out + "}\n";
}

std::string checkfence::lsl::printProgram(const Program &Prog) {
  std::string Out;
  if (!Prog.globals().empty()) {
    Out += "globals:";
    for (size_t I = 0; I < Prog.globals().size(); ++I)
      Out += formatString(" %s=[%zu]", Prog.globals()[I].c_str(), I);
    Out += "\n\n";
  }
  for (const auto &[Name, P] : Prog.procs())
    Out += printProc(*P) + "\n";
  return Out;
}

//===----------------------------------------------------------------------===//
// printCSource - the explore fragment, back to CheckFence-C.
//
// The decompiler is deliberately a closed pattern-matcher over the exact
// statement groups the frontend lowers the fragment's C forms to; any
// other shape is rejected so a repro file can never silently mean
// something different from the program it was printed from. The emitted
// C re-lowers with identical register creation order (declarations
// introduce their register before the initializer's temporaries, exactly
// as in the source program), which is what makes the printProgram text -
// and hence the lowered-program fingerprint - reproduce byte-for-byte.
//===----------------------------------------------------------------------===//

namespace {

using namespace checkfence;
using namespace checkfence::lsl;

class CSourcePrinter {
public:
  explicit CSourcePrinter(const Program &Prog) : Prog(Prog) {}

  bool run(std::string &Out, std::string &Error) {
    Text += "extern void observe(int v);\n";
    Text += "extern void fence(char *type);\n";
    for (size_t G = 0; G < Prog.globals().size(); ++G)
      Text += "int " + Prog.globals()[G] + ";\n";
    for (const auto &[Name, P] : Prog.procs()) {
      if (Name == "__global_init") {
        // Synthesized by lowering; re-created (empty) on recompile. A
        // nonempty one would need C-level global initializers, which
        // the fragment does not use.
        if (!bodyEmpty(*P))
          return fail("global initializers are outside the fragment",
                      Error);
        continue;
      }
      if (!printProcC(*P))
        return fail(Err, Error);
    }
    Out = Text;
    return true;
  }

private:
  bool fail(const std::string &Msg, std::string &Error) {
    Error = Msg;
    return false;
  }
  bool reject(const std::string &Msg) {
    if (Err.empty())
      Err = Msg;
    return false;
  }

  static bool bodyEmpty(const Proc &P) {
    for (const Stmt *S : P.Body) {
      if (S->K != StmtKind::Block || !S->Body.empty())
        return false;
    }
    return true;
  }

  /// The debug name of a register; empty when it has none (temporary).
  std::string nameOf(const Proc &P, Reg R) const {
    if (R >= 0 && static_cast<size_t>(R) < P.RegNames.size())
      return P.RegNames[R];
    return std::string();
  }

  /// Const pointer to a scalar global: returns its name, or empty.
  std::string globalOf(const Stmt *S) const {
    if (S->K != StmtKind::Const || !S->ConstVal.isPtr() ||
        S->ConstVal.ptrMark() || S->ConstVal.ptrPath().size() != 1)
      return std::string();
    uint32_t Base = S->ConstVal.ptrPath()[0];
    if (Base >= Prog.globals().size())
      return std::string();
    return Prog.globals()[Base];
  }

  /// A name is usable as a C identifier only when it is unique among
  /// the proc's emitted names and does not shadow a global: the emitted
  /// C identifies registers by name alone.
  bool claimName(const Proc &P, const std::string &N,
                 std::vector<std::string> &Used) {
    for (const std::string &G : Prog.globals())
      if (G == N)
        return reject("local '" + N + "' in '" + P.Name +
                      "' shadows a global");
    for (const std::string &U : Used)
      if (U == N)
        return reject("duplicate local name '" + N + "' in '" + P.Name +
                      "'");
    Used.push_back(N);
    return true;
  }

  bool printProcC(const Proc &P) {
    if (!P.RetRegs.empty())
      return reject("procedure '" + P.Name + "' returns a value");
    if (P.NumParams > 1)
      return reject("procedure '" + P.Name +
                    "' has more than one parameter");
    std::string Param = "void";
    std::vector<bool> Declared(static_cast<size_t>(P.NumRegs), false);
    std::vector<std::string> UsedNames;
    if (P.NumParams == 1) {
      std::string N = nameOf(P, 0);
      if (N.empty())
        return reject("unnamed parameter in '" + P.Name + "'");
      if (!claimName(P, N, UsedNames))
        return false;
      Param = "int " + N;
      Declared[0] = true;
    }
    // A function body lowers to exactly one labeled block.
    if (P.Body.size() != 1 || P.Body[0]->K != StmtKind::Block)
      return reject("procedure '" + P.Name +
                    "' body is not a single block");
    Text += "void " + P.Name + "(" + Param + ") {\n";
    if (!printSeq(P, P.Body[0]->Body, 1, Declared, UsedNames))
      return false;
    Text += "}\n";
    return true;
  }

  bool printSeq(const Proc &P, const std::vector<Stmt *> &Body,
                int Indent, std::vector<bool> &Declared,
                std::vector<std::string> &UsedNames) {
    const std::string Pad(static_cast<size_t>(Indent) * 2, ' ');
    size_t I = 0;
    auto At = [&](size_t K) -> const Stmt * {
      return I + K < Body.size() ? Body[I + K] : nullptr;
    };
    // A named register usable as a C rvalue: a parameter or an
    // already-declared local.
    auto Rvalue = [&](Reg R, std::string &N) {
      N = nameOf(P, R);
      return !N.empty() && R >= 0 &&
             static_cast<size_t>(R) < Declared.size() && Declared[R];
    };
    while (I < Body.size()) {
      const Stmt *S = Body[I];
      switch (S->K) {
      case StmtKind::Fence:
        Text += Pad + formatString("fence(\"%s\");\n",
                                   fenceKindName(S->FenceK));
        ++I;
        continue;
      case StmtKind::Observe: {
        std::string N;
        if (!Rvalue(S->Args[0], N))
          return reject("observe of a temporary");
        Text += Pad + "observe(" + N + ");\n";
        ++I;
        continue;
      }
      case StmtKind::Atomic:
        Text += Pad + "atomic {\n";
        if (!printSeq(P, S->Body, Indent + 1, Declared, UsedNames))
          return false;
        Text += Pad + "}\n";
        ++I;
        continue;
      case StmtKind::Const:
        break; // handled by the grouped patterns below
      default:
        return reject(std::string("statement kind '") +
                      stmtKindName(S->K) + "' is outside the fragment");
      }

      std::string G = globalOf(S);
      if (G.empty())
        return reject("constant is not a scalar global address");
      const Stmt *N1 = At(1);
      if (!N1)
        return reject("dangling global address");

      // g = <reg>;
      if (N1->K == StmtKind::Store && N1->Addr == S->Def) {
        std::string N;
        if (!Rvalue(N1->Args[0], N))
          return reject("store of a temporary");
        Text += Pad + G + " = " + N + ";\n";
        I += 2;
        continue;
      }
      // g = K;  |  g = <reg> + K;
      if (N1->K == StmtKind::Const && N1->ConstVal.isInt()) {
        long long K = N1->ConstVal.intValue();
        const Stmt *N2 = At(2);
        if (N2 && N2->K == StmtKind::Store && N2->Addr == S->Def &&
            N2->Args[0] == N1->Def) {
          Text += Pad + G + formatString(" = %lld;\n", K);
          I += 3;
          continue;
        }
        const Stmt *N3 = At(3);
        if (N2 && N2->K == StmtKind::PrimOp &&
            N2->Op == PrimOpKind::Add && N2->Args.size() == 2 &&
            N2->Args[1] == N1->Def && N3 && N3->K == StmtKind::Store &&
            N3->Addr == S->Def && N3->Args[0] == N2->Def) {
          std::string N;
          if (!Rvalue(N2->Args[0], N))
            return reject("arithmetic on a temporary");
          Text += Pad + G + " = " + N + formatString(" + %lld;\n", K);
          I += 4;
          continue;
        }
        return reject("unrecognized store shape");
      }
      // int r = g;  (or r = g; when r was declared earlier)
      if (N1->K == StmtKind::Load && N1->Addr == S->Def) {
        const Stmt *N2 = At(2);
        if (!N2 || N2->K != StmtKind::PrimOp ||
            N2->Op != PrimOpKind::Copy || N2->Args.size() != 1 ||
            N2->Args[0] != N1->Def)
          return reject("load without a named destination");
        Reg Dst = N2->Def;
        std::string N = nameOf(P, Dst);
        if (N.empty())
          return reject("load into a temporary");
        if (Dst < 0 || static_cast<size_t>(Dst) >= Declared.size())
          return reject("load destination out of range");
        if (!Declared[Dst]) {
          // A fresh declaration creates its register immediately before
          // the initializer's temporaries; anything else would re-lower
          // with different numbering.
          if (Dst != S->Def - 1)
            return reject("declaration of '" + N +
                          "' is displaced from its initializer");
          if (!claimName(P, N, UsedNames))
            return false;
          Declared[Dst] = true;
          Text += Pad + "int " + N + " = " + G + ";\n";
        } else {
          Text += Pad + N + " = " + G + ";\n";
        }
        I += 3;
        continue;
      }
      return reject("unrecognized statement group");
    }
    return true;
  }

  const Program &Prog;
  std::string Text;
  std::string Err;
};

} // namespace

bool checkfence::lsl::printCSource(const Program &Prog, std::string &Out,
                                   std::string &Error) {
  return CSourcePrinter(Prog).run(Out, Error);
}
