//===--- Printer.cpp - textual dump of LSL programs ------------------------===//

#include "lsl/Printer.h"

#include "support/Format.h"

using namespace checkfence;
using namespace checkfence::lsl;

static std::string indentStr(int Indent) {
  return std::string(static_cast<size_t>(Indent) * 2, ' ');
}

std::string checkfence::lsl::printStmt(const Proc &P, const Stmt *S,
                                       int Indent) {
  std::string Pad = indentStr(Indent);
  auto Rn = [&](Reg R) { return P.regName(R); };

  switch (S->K) {
  case StmtKind::Const:
    return Pad + formatString("%s = %s\n", Rn(S->Def).c_str(),
                              S->ConstVal.str().c_str());
  case StmtKind::Choice: {
    std::vector<std::string> Opts;
    for (const Value &V : S->Choices)
      Opts.push_back(V.str());
    return Pad + formatString("%s = choice(%s)\n", Rn(S->Def).c_str(),
                              joinStrings(Opts, ", ").c_str());
  }
  case StmtKind::PrimOp: {
    std::vector<std::string> Ops;
    for (Reg R : S->Args)
      Ops.push_back(Rn(R));
    if (S->Op == PrimOpKind::PtrField)
      Ops.push_back(formatString("#%lld", static_cast<long long>(S->Imm)));
    return Pad + formatString("%s = %s(%s)\n", Rn(S->Def).c_str(),
                              primOpName(S->Op),
                              joinStrings(Ops, ", ").c_str());
  }
  case StmtKind::Load:
    return Pad + formatString("%s = *%s\n", Rn(S->Def).c_str(),
                              Rn(S->Addr).c_str());
  case StmtKind::Store:
    return Pad + formatString("*%s = %s\n", Rn(S->Addr).c_str(),
                              Rn(S->Args[0]).c_str());
  case StmtKind::Fence:
    return Pad + formatString("fence %s\n", fenceKindName(S->FenceK));
  case StmtKind::Atomic: {
    std::string Out = Pad + "atomic {\n";
    for (const Stmt *C : S->Body)
      Out += printStmt(P, C, Indent + 1);
    return Out + Pad + "}\n";
  }
  case StmtKind::Call: {
    std::vector<std::string> As, Rs;
    for (Reg R : S->Args)
      As.push_back(Rn(R));
    for (Reg R : S->Rets)
      Rs.push_back(Rn(R));
    return Pad + formatString("%s(%s)(%s)\n", S->Callee.c_str(),
                              joinStrings(As, ", ").c_str(),
                              joinStrings(Rs, ", ").c_str());
  }
  case StmtKind::Block: {
    std::string Out = Pad + formatString("t%d: {\n", S->BlockTag);
    for (const Stmt *C : S->Body)
      Out += printStmt(P, C, Indent + 1);
    return Out + Pad + "}\n";
  }
  case StmtKind::Break:
    return Pad + formatString("if (%s) break t%d\n", Rn(S->Cond).c_str(),
                              S->TargetTag);
  case StmtKind::Continue:
    return Pad + formatString("if (%s) continue t%d\n", Rn(S->Cond).c_str(),
                              S->TargetTag);
  case StmtKind::Assert:
    return Pad + formatString("assert(%s)\n", Rn(S->Cond).c_str());
  case StmtKind::Assume:
    return Pad + formatString("assume(%s)\n", Rn(S->Cond).c_str());
  case StmtKind::Alloc:
    return Pad + formatString("%s = alloc(site %d)\n", Rn(S->Def).c_str(),
                              S->AllocSite);
  case StmtKind::Observe:
    return Pad + formatString("observe(%s)\n", Rn(S->Args[0]).c_str());
  case StmtKind::Commit:
    return Pad + "commit\n";
  }
  return Pad + "<bad-stmt>\n";
}

std::string checkfence::lsl::printProc(const Proc &P) {
  std::vector<std::string> Params, Rets;
  for (int I = 0; I < P.NumParams; ++I)
    Params.push_back(P.regName(I));
  for (Reg R : P.RetRegs)
    Rets.push_back(P.regName(R));
  std::string Out =
      formatString("proc %s(%s)(%s) {\n", P.Name.c_str(),
                   joinStrings(Params, ", ").c_str(),
                   joinStrings(Rets, ", ").c_str());
  for (const Stmt *S : P.Body)
    Out += printStmt(P, S, 1);
  return Out + "}\n";
}

std::string checkfence::lsl::printProgram(const Program &Prog) {
  std::string Out;
  if (!Prog.globals().empty()) {
    Out += "globals:";
    for (size_t I = 0; I < Prog.globals().size(); ++I)
      Out += formatString(" %s=[%zu]", Prog.globals()[I].c_str(), I);
    Out += "\n\n";
  }
  for (const auto &[Name, P] : Prog.procs())
    Out += printProc(*P) + "\n";
  return Out;
}
