//===--- Cache.cpp - cross-run result cache ----------------------------------===//
//
// Part of the CheckFence reproduction (PLDI'07).
//
//===----------------------------------------------------------------------===//

#include "api/Cache.h"

#include "checkfence/checkfence.h"
#include "support/Format.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

using namespace checkfence;
using namespace checkfence::api;

namespace {

/// The file header carries the library version: a persisted cache from
/// a different release is rejected on load (verdicts may have changed),
/// not replayed. Verifier then avoids clobbering the unrecognized file.
std::string fileHeader() {
  return std::string("checkfence-result-cache 1 ") + versionString();
}

std::optional<Status> statusFromName(const std::string &Name) {
  for (Status S : {Status::Pass, Status::Fail, Status::SequentialBug,
                   Status::BoundsExhausted, Status::Error,
                   Status::Cancelled})
    if (Name == statusName(S))
      return S;
  return std::nullopt;
}

/// "tag rest-of-line" split; Rest may be empty.
bool splitTag(const std::string &Line, std::string &Tag,
              std::string &Rest) {
  size_t Sp = Line.find(' ');
  if (Sp == std::string::npos) {
    Tag = Line;
    Rest.clear();
  } else {
    Tag = Line.substr(0, Sp);
    Rest = Line.substr(Sp + 1);
  }
  return !Tag.empty();
}

/// Advisory cross-process lock guarding the read-merge-rename persistence
/// sequence: all writers (and load's readers) of one cache file serialize
/// on `<path>.lock`. Missing lock support degrades to best-effort (the
/// atomic rename still prevents torn files).
class FileLock {
public:
  explicit FileLock(const std::string &Path) {
    Fd = ::open((Path + ".lock").c_str(), O_CREAT | O_RDWR | O_CLOEXEC,
                0644);
    if (Fd >= 0 && ::flock(Fd, LOCK_EX) != 0) {
      ::close(Fd);
      Fd = -1;
    }
  }
  ~FileLock() {
    if (Fd >= 0) {
      ::flock(Fd, LOCK_UN);
      ::close(Fd);
    }
  }
  FileLock(const FileLock &) = delete;
  FileLock &operator=(const FileLock &) = delete;

private:
  int Fd = -1;
};

/// Parses one cache file into \p Out. False on a missing file, a header
/// from another library version, or any malformed entry (partial
/// results are discarded - never half-merge a corrupt file).
bool parseCacheFile(const std::string &Path,
                    std::map<std::string, Result> &Out) {
  std::ifstream In(Path);
  if (!In)
    return false;
  std::string Line;
  if (!std::getline(In, Line) || Line != fileHeader())
    return false;

  std::map<std::string, Result> NewEntries;
  std::string Key;
  Result R;
  bool InEntry = false;

  while (std::getline(In, Line)) {
    if (Line.empty())
      continue;
    std::string Tag, Rest;
    if (!splitTag(Line, Tag, Rest))
      return false;
    if (Tag == "entry") {
      if (InEntry || Rest.empty())
        return false;
      Key = Rest;
      R = Result{};
      InEntry = true;
    } else if (!InEntry) {
      return false;
    } else if (Tag == "impl") {
      R.Impl = unescapeLine(Rest);
    } else if (Tag == "test") {
      R.Test = unescapeLine(Rest);
    } else if (Tag == "model") {
      R.Model = unescapeLine(Rest);
    } else if (Tag == "status") {
      auto S = statusFromName(Rest);
      if (!S)
        return false;
      R.Verdict = *S;
    } else if (Tag == "message") {
      R.Message = unescapeLine(Rest);
    } else if (Tag == "stats") {
      if (std::sscanf(Rest.c_str(), "%d %d %d %d %d %d %llu",
                      &R.Stats.ObservationCount, &R.Stats.BoundIterations,
                      &R.Stats.UnrolledInstrs, &R.Stats.Loads,
                      &R.Stats.Stores, &R.Stats.SatVars,
                      &R.Stats.SatClauses) != 7)
        return false;
    } else if (Tag == "times") {
      if (std::sscanf(Rest.c_str(), "%lf %lf %lf %lf",
                      &R.Stats.EncodeSeconds, &R.Stats.SolveSeconds,
                      &R.Stats.MiningSeconds,
                      &R.Stats.TotalSeconds) != 4)
        return false;
    } else if (Tag == "obs") {
      size_t N = std::strtoull(Rest.c_str(), nullptr, 10);
      R.Observations.clear();
      for (size_t I = 0; I < N; ++I) {
        if (!std::getline(In, Line) || Line.rfind("o ", 0) != 0)
          return false;
        R.Observations.push_back(unescapeLine(Line.substr(2)));
      }
    } else if (Tag == "cex") {
      R.HasCounterexample = Rest == "1";
    } else if (Tag == "ct") {
      R.CounterexampleTrace = unescapeLine(Rest);
    } else if (Tag == "cc") {
      R.CounterexampleColumns = unescapeLine(Rest);
    } else if (Tag == "co") {
      R.CounterexampleObservation = unescapeLine(Rest);
    } else if (Tag == "bounds") {
      size_t N = std::strtoull(Rest.c_str(), nullptr, 10);
      R.FinalBounds.clear();
      for (size_t I = 0; I < N; ++I) {
        if (!std::getline(In, Line) || Line.rfind("b ", 0) != 0)
          return false;
        int Bound = 0;
        int Consumed = 0;
        if (std::sscanf(Line.c_str(), "b %d %n", &Bound, &Consumed) != 1)
          return false;
        R.FinalBounds[unescapeLine(Line.substr(Consumed))] = Bound;
      }
    } else if (Tag == "end") {
      NewEntries[Key] = R;
      InEntry = false;
    } else {
      return false; // unknown tag: refuse rather than misread
    }
  }
  if (InEntry)
    return false;
  Out = std::move(NewEntries);
  return true;
}

/// Renders \p Entries in the line-oriented cache format (header
/// included). Deterministic: entries print in key order.
std::string renderCacheFile(const std::map<std::string, Result> &Entries) {
  std::ostringstream OS;
  OS << fileHeader() << "\n";
  for (const auto &[Key, R] : Entries) {
    OS << "entry " << Key << "\n";
    OS << "impl " << escapeLine(R.Impl) << "\n";
    OS << "test " << escapeLine(R.Test) << "\n";
    OS << "model " << escapeLine(R.Model) << "\n";
    OS << "status " << statusName(R.Verdict) << "\n";
    OS << "message " << escapeLine(R.Message) << "\n";
    OS << formatString("stats %d %d %d %d %d %d %llu\n",
                       R.Stats.ObservationCount, R.Stats.BoundIterations,
                       R.Stats.UnrolledInstrs, R.Stats.Loads,
                       R.Stats.Stores, R.Stats.SatVars,
                       R.Stats.SatClauses);
    OS << formatString("times %.6f %.6f %.6f %.6f\n",
                       R.Stats.EncodeSeconds, R.Stats.SolveSeconds,
                       R.Stats.MiningSeconds, R.Stats.TotalSeconds);
    OS << "obs " << R.Observations.size() << "\n";
    for (const std::string &O : R.Observations)
      OS << "o " << escapeLine(O) << "\n";
    OS << "cex " << (R.HasCounterexample ? 1 : 0) << "\n";
    if (R.HasCounterexample) {
      OS << "ct " << escapeLine(R.CounterexampleTrace) << "\n";
      OS << "cc " << escapeLine(R.CounterexampleColumns) << "\n";
      OS << "co " << escapeLine(R.CounterexampleObservation) << "\n";
    }
    OS << "bounds " << R.FinalBounds.size() << "\n";
    for (const auto &[Loop, Bound] : R.FinalBounds)
      OS << formatString("b %d ", Bound) << escapeLine(Loop) << "\n";
    OS << "end\n";
  }
  return OS.str();
}

/// Publishes a passing entry's final bounds under its program
/// fingerprint (the part of the key before '|').
void publishBounds(std::map<std::string, std::map<std::string, int>> &PB,
                   const std::string &Key, const Result &R) {
  size_t Bar = Key.find('|');
  if (Bar != std::string::npos && R.Verdict == Status::Pass &&
      !R.FinalBounds.empty())
    PB[Key.substr(0, Bar)] = R.FinalBounds;
}

} // namespace

std::optional<Result> ResultCache::lookup(const std::string &Key) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Entries.find(Key);
  if (It == Entries.end()) {
    ++Counters.Misses;
    return std::nullopt;
  }
  ++Counters.Hits;
  Result R = It->second;
  R.FromCache = true;
  return R;
}

void ResultCache::insert(const std::string &Key,
                         const std::string &ProgramFp, const Result &R) {
  std::lock_guard<std::mutex> Lock(Mu);
  Result Stored = R;
  Stored.FromCache = false;
  Entries[Key] = std::move(Stored);
  if (R.Verdict == Status::Pass)
    PassBounds[ProgramFp] = R.FinalBounds;
}

std::optional<std::map<std::string, int>>
ResultCache::boundsFor(const std::string &ProgramFp) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = PassBounds.find(ProgramFp);
  if (It == PassBounds.end() || It->second.empty())
    return std::nullopt;
  return It->second;
}

void ResultCache::noteSeed() {
  std::lock_guard<std::mutex> Lock(Mu);
  ++Counters.BoundsSeeded;
}

CacheStats ResultCache::stats() const {
  std::lock_guard<std::mutex> Lock(Mu);
  CacheStats S = Counters;
  S.Entries = Entries.size();
  return S;
}

void ResultCache::clear() {
  std::lock_guard<std::mutex> Lock(Mu);
  Entries.clear();
  PassBounds.clear();
  Counters = CacheStats{};
}

bool ResultCache::save(const std::string &Path) const {
  // Read-merge-rename under the advisory file lock: another process may
  // have added entries since we loaded, and clobbering them would lose
  // results. In-memory entries win on key collisions (they are newer or
  // identical - keys are content fingerprints).
  FileLock Lock(Path);
  std::map<std::string, Result> Union;
  parseCacheFile(Path, Union); // missing/foreign file: start empty
  {
    std::lock_guard<std::mutex> Guard(Mu);
    for (const auto &[Key, R] : Entries)
      Union[Key] = R;
  }
  const std::string Tmp =
      Path + formatString(".tmp.%ld", static_cast<long>(::getpid()));
  {
    std::ofstream Out(Tmp, std::ios::trunc);
    if (!Out)
      return false;
    Out << renderCacheFile(Union);
    if (!Out)
      return false;
  }
  if (std::rename(Tmp.c_str(), Path.c_str()) != 0) {
    std::remove(Tmp.c_str());
    return false;
  }
  return true;
}

bool ResultCache::load(const std::string &Path) {
  std::map<std::string, Result> FileEntries;
  {
    FileLock Lock(Path);
    if (!parseCacheFile(Path, FileEntries))
      return false;
  }
  // Merge, in-memory entries winning: a live Verifier's fresh results
  // outrank whatever an earlier process persisted under the same key.
  std::lock_guard<std::mutex> Guard(Mu);
  for (auto &[Key, R] : FileEntries) {
    auto [It, Inserted] = Entries.emplace(Key, std::move(R));
    if (Inserted)
      publishBounds(PassBounds, It->first, It->second);
  }
  return true;
}
