//===--- ApiInternal.cpp - facade implementation helpers ---------------------===//
//
// Part of the CheckFence reproduction (PLDI'07).
//
//===----------------------------------------------------------------------===//

#include "api/ApiInternal.h"

#include "engine/MatrixRunner.h"
#include "frontend/Lowering.h"
#include "harness/Catalog.h"
#include "impls/Impls.h"
#include "support/Fingerprint.h"
#include "support/Format.h"
#include "support/Json.h"

#include <set>

using namespace checkfence;
using namespace checkfence::api;

Status checkfence::api::toStatus(checker::CheckStatus S) {
  switch (S) {
  case checker::CheckStatus::Pass:
    return Status::Pass;
  case checker::CheckStatus::Fail:
    return Status::Fail;
  case checker::CheckStatus::SequentialBug:
    return Status::SequentialBug;
  case checker::CheckStatus::BoundsExhausted:
    return Status::BoundsExhausted;
  case checker::CheckStatus::Error:
    return Status::Error;
  case checker::CheckStatus::Cancelled:
    return Status::Cancelled;
  }
  return Status::Error;
}

static bool knownKind(const std::string &K) {
  return K == "queue" || K == "set" || K == "deque" || K == "stack";
}

CompiledCase checkfence::api::buildCase(const Request &Req) {
  CompiledCase Case;

  // Resolve the implementation source.
  std::string Source;
  if (!Req.SourceText.empty()) {
    Source = impls::preludeSource() + Req.SourceText;
    Case.ImplLabel = Req.Label.empty() ? "<source>" : Req.Label;
    Case.KindStr = Req.DataKind;
  } else if (!Req.ImplName.empty()) {
    const impls::ImplInfo *Info = impls::findImpl(Req.ImplName);
    if (!Info) {
      Case.Error = "unknown implementation '" + Req.ImplName + "'";
      return Case;
    }
    Source = impls::sourceFor(Req.ImplName);
    Case.ImplLabel = Req.ImplName;
    Case.KindStr = Info->Kind;
  } else {
    Case.Error = "request names no implementation (impl() or source())";
    return Case;
  }
  Case.FullSource = Source;

  // Resolve the test.
  if (!Req.Notation.empty()) {
    if (!knownKind(Case.KindStr)) {
      Case.Error = Case.KindStr.empty()
                       ? "notation tests require dataType()"
                       : "unknown data-type kind '" + Case.KindStr + "'";
      return Case;
    }
    std::string Err;
    if (!harness::parseTestNotation(Req.Notation,
                                    harness::alphabetFor(Case.KindStr),
                                    Case.Test, Err)) {
      Case.Error = "bad test notation: " + Err;
      return Case;
    }
    Case.Test.Name = "custom";
  } else if (!Req.TestName.empty()) {
    const harness::CatalogEntry *E =
        harness::findCatalogEntry(Req.TestName);
    if (!E) {
      Case.Error = "unknown catalog test '" + Req.TestName + "'";
      return Case;
    }
    std::string Err;
    if (!harness::parseTestNotation(E->Notation,
                                    harness::alphabetFor(E->Kind),
                                    Case.Test, Err)) {
      Case.Error =
          "catalog test " + Req.TestName + " failed to parse: " + Err;
      return Case;
    }
    Case.Test.Name = E->Name;
  } else {
    Case.Error = "request names no test (test() or notation())";
    return Case;
  }

  // Compile the implementation with the requested variant.
  frontend::LoweringOptions LO;
  LO.StripFences = Req.StripAllFences;
  for (int Line : Req.StripLines)
    LO.StripFenceLines.insert(Line);
  std::set<std::string> Defines(Req.Defines.begin(), Req.Defines.end());

  frontend::DiagEngine Diags;
  if (!frontend::compileC(Source, Defines, Case.Impl, Diags, LO)) {
    Case.Error = "frontend error:\n" + Diags.str();
    return Case;
  }
  Case.Threads = harness::buildTestThreads(Case.Impl, Case.Test);

  // Optional reference implementation for refset specification mining.
  if (Req.UseRefSpec) {
    if (!knownKind(Case.KindStr)) {
      Case.Error = "refSpec() requires a known data-type kind";
      return Case;
    }
    frontend::DiagEngine SpecDiags;
    if (!frontend::compileC(impls::referenceFor(Case.KindStr), Defines,
                            Case.Spec, SpecDiags,
                            frontend::LoweringOptions())) {
      Case.Error = "frontend error in reference:\n" + SpecDiags.str();
      return Case;
    }
    harness::buildTestThreads(Case.Spec, Case.Test);
    Case.HasSpec = true;
  }

  // Fingerprint the lowered programs (not the source text): stripping a
  // fence, flipping a define, or changing the test all land here.
  Case.ProgramFp = support::loweredProgramFingerprint(
      Case.Impl, Case.Threads, Case.HasSpec ? &Case.Spec : nullptr);
  Case.Ok = true;
  return Case;
}

bool checkfence::api::checkOptionsFrom(const Request &Req,
                                       checker::CheckOptions &Out,
                                       std::string &Error) {
  Out = checker::CheckOptions{}; // the one defaults instance
  if (!Req.ModelName.empty()) {
    auto M = memmodel::modelFromName(Req.ModelName);
    if (!M) {
      Error = "unknown model '" + Req.ModelName + "'";
      return false;
    }
    Out.Model = *M;
  }
  if (Req.UseRankOrder)
    Out.Order = *Req.UseRankOrder ? encode::OrderMode::Rank
                                  : encode::OrderMode::Pairwise;
  if (Req.UseRangeAnalysis)
    Out.RangeAnalysis = *Req.UseRangeAnalysis;
  if (Req.MaxBoundIterations)
    Out.MaxBoundIterations = *Req.MaxBoundIterations;
  if (Req.MaxProbes)
    Out.MaxProbes = *Req.MaxProbes;
  if (Req.ConflictBudget)
    Out.ConflictBudget = *Req.ConflictBudget;
  // Parallelism shapes wall time, never results (width-invariance is the
  // engine's contract), so it stays out of optionsFingerprint - cached
  // results and pooled sessions are shared across widths.
  Out.PortfolioWidth = Req.PortfolioWidth;
  // Same contract for oracle pruning: it only decides which machinery
  // produces the (identical) answer, so it is not part of a run's
  // identity either.
  Out.OraclePrune = Req.UseFastOracle;
  // The static robustness pruner shares the oracle's contract (and its
  // request switch): identical results, so never fingerprinted.
  Out.AnalysisPrune = Req.UseFastOracle;
  return true;
}

std::string checkfence::api::optionsFingerprint(
    const checker::CheckOptions &O, bool Fresh) {
  return formatString(
      "%s|ord%d|ra%d|it%d|pr%d|cb%lld|obs%llu|%s",
      O.Model.str().c_str(), static_cast<int>(O.Order),
      O.RangeAnalysis ? 1 : 0, O.MaxBoundIterations, O.MaxProbes,
      static_cast<long long>(O.ConflictBudget),
      static_cast<unsigned long long>(O.MaxObservations),
      Fresh ? "fresh" : "session");
}

Result checkfence::api::convertResult(const checker::CheckResult &R,
                                      const std::string &ImplLabel,
                                      const std::string &TestName,
                                      const std::string &ModelName) {
  Result Out;
  Out.Verdict = toStatus(R.Status);
  Out.Message = R.Message;
  Out.Impl = ImplLabel;
  Out.Test = TestName;
  Out.Model = ModelName;
  for (const checker::Observation &O : R.Spec)
    Out.Observations.push_back(O.str());
  if (R.Counterexample) {
    Out.HasCounterexample = true;
    Out.CounterexampleTrace = R.Counterexample->str();
    Out.CounterexampleColumns = R.Counterexample->columns();
    Out.CounterexampleObservation =
        R.Counterexample->Obs.str(R.Counterexample->ObsLabels);
  }
  const checker::CheckStats &S = R.Stats;
  Out.Stats.ObservationCount = S.ObservationCount;
  Out.Stats.BoundIterations = S.BoundIterations;
  Out.Stats.UnrolledInstrs = S.Inclusion.UnrolledInstrs;
  Out.Stats.Loads = S.Inclusion.Loads;
  Out.Stats.Stores = S.Inclusion.Stores;
  Out.Stats.SatVars = S.Inclusion.SatVars;
  Out.Stats.SatClauses =
      static_cast<unsigned long long>(S.Inclusion.SatClauses);
  Out.Stats.EncodeSeconds = S.Inclusion.EncodeSeconds;
  Out.Stats.SolveSeconds = S.Inclusion.SolveSeconds;
  Out.Stats.MiningSeconds = S.MiningSeconds;
  Out.Stats.IncludeSeconds = S.IncludeSeconds;
  Out.Stats.ProbeSeconds = S.ProbeSeconds;
  Out.Stats.TotalSeconds = S.TotalSeconds;
  Out.Stats.LearntsExported =
      static_cast<unsigned long long>(S.LearntsExported);
  Out.Stats.LearntsImported =
      static_cast<unsigned long long>(S.LearntsImported);
  Out.Stats.RacesWon = S.RacesWonByHelper;
  Out.Stats.OracleAttempts = S.OracleAttempts;
  Out.Stats.OracleDischarges = S.OracleDischarges;
  Out.Stats.OracleSeconds = S.OracleSeconds;
  Out.Stats.AnalysisAttempts = S.AnalysisAttempts;
  Out.Stats.AnalysisDischarges = S.AnalysisDischarges;
  Out.Stats.AnalysisSeconds = S.AnalysisSeconds;
  for (const auto &[Loop, Bound] : R.FinalBounds)
    Out.FinalBounds[Loop] = Bound;
  return Out;
}

std::string checkfence::api::renderSingleCellJson(const Result &R,
                                                 bool IncludeTimings) {
  // The one-cell shape of engine::MatrixReport::json - the summary and
  // cell bodies come from the same renderers the matrix report uses, so
  // the schema has a single definition.
  auto Is = [&](Status S) { return R.Verdict == S ? 1 : 0; };
  std::string OS;
  OS += "{\n";
  OS += formatString("  \"schema_version\": %d,\n", JsonSchemaVersion);
  if (IncludeTimings)
    OS += formatString("  \"jobs\": %d,\n  \"wall_seconds\": %.3f,\n", 1,
                       R.Stats.TotalSeconds);
  OS += "  \"summary\": " +
        engine::renderReportSummary(
            Is(Status::Pass), Is(Status::Fail), Is(Status::SequentialBug),
            Is(Status::BoundsExhausted), Is(Status::Error),
            Is(Status::Cancelled)) +
        ",\n";
  OS += "  \"cells\": [\n";
  engine::ReportCellFields F;
  F.Impl = R.Impl;
  F.Test = R.Test;
  F.Model = R.Model;
  F.StatusName = statusName(R.Verdict);
  F.Message = R.Message;
  F.Observations = R.Stats.ObservationCount;
  F.BoundIterations = R.Stats.BoundIterations;
  F.UnrolledInstrs = R.Stats.UnrolledInstrs;
  F.Loads = R.Stats.Loads;
  F.Stores = R.Stats.Stores;
  F.SatVars = R.Stats.SatVars;
  F.SatClauses = R.Stats.SatClauses;
  F.HasCounterexample = R.HasCounterexample;
  F.Counterexample = R.CounterexampleObservation;
  if (IncludeTimings) {
    F.IncludeTimings = true;
    F.Seconds = R.Stats.TotalSeconds;
    F.EncodeSeconds = R.Stats.EncodeSeconds;
    F.SolveSeconds = R.Stats.SolveSeconds;
    F.MiningSeconds = R.Stats.MiningSeconds;
    F.IncludeSeconds = R.Stats.IncludeSeconds;
    F.ProbeSeconds = R.Stats.ProbeSeconds;
    F.LearntsExported = R.Stats.LearntsExported;
    F.LearntsImported = R.Stats.LearntsImported;
    F.RacesWon = R.Stats.RacesWon;
    F.OracleAttempts = R.Stats.OracleAttempts;
    F.OracleDischarges = R.Stats.OracleDischarges;
    F.OracleSeconds = R.Stats.OracleSeconds;
    F.AnalysisAttempts = R.Stats.AnalysisAttempts;
    F.AnalysisDischarges = R.Stats.AnalysisDischarges;
    F.AnalysisSeconds = R.Stats.AnalysisSeconds;
  }
  OS += "    " + engine::renderReportCell(F) + "\n";
  OS += "  ]\n";
  OS += "}\n";
  return OS;
}
