//===--- Result.cpp - public result types ------------------------------------===//
//
// Part of the CheckFence reproduction (PLDI'07).
//
//===----------------------------------------------------------------------===//

#include "checkfence/Result.h"

#include "api/ApiInternal.h"
#include "engine/MatrixRunner.h"
#include "explore/Explore.h"
#include "support/Format.h"
#include "support/Json.h"

using namespace checkfence;

// Single checks and matrices share one schema; the public constant and
// the engine's must move together.
static_assert(JsonSchemaVersion == engine::ReportSchemaVersion,
              "bump checkfence::JsonSchemaVersion and "
              "engine::ReportSchemaVersion in lockstep");

const char *checkfence::statusName(Status S) {
  switch (S) {
  case Status::Pass:
    return "PASS";
  case Status::Fail:
    return "FAIL";
  case Status::SequentialBug:
    return "SEQUENTIAL-BUG";
  case Status::BoundsExhausted:
    return "BOUNDS-EXHAUSTED";
  case Status::Error:
    return "ERROR";
  case Status::Cancelled:
    return "CANCELLED";
  }
  return "<bad-status>";
}

int checkfence::exitCodeFor(Status S) {
  switch (S) {
  case Status::Pass:
    return 0;
  case Status::Fail:
    return 1;
  case Status::SequentialBug:
    return 2;
  case Status::BoundsExhausted:
    return 3;
  case Status::Error:
    return 4;
  case Status::Cancelled:
    return 5;
  }
  return 4;
}

std::string Result::json(bool IncludeTimings) const {
  return api::renderSingleCellJson(*this, IncludeTimings);
}

//===----------------------------------------------------------------------===//
// Report
//===----------------------------------------------------------------------===//

namespace {

checker::CheckStatus toInternal(Status S) {
  switch (S) {
  case Status::Pass:
    return checker::CheckStatus::Pass;
  case Status::Fail:
    return checker::CheckStatus::Fail;
  case Status::SequentialBug:
    return checker::CheckStatus::SequentialBug;
  case Status::BoundsExhausted:
    return checker::CheckStatus::BoundsExhausted;
  case Status::Error:
    return checker::CheckStatus::Error;
  case Status::Cancelled:
    return checker::CheckStatus::Cancelled;
  }
  return checker::CheckStatus::Error;
}

} // namespace

Report Report::makeError(std::string Message) {
  Report R;
  R.Err = std::move(Message);
  return R;
}

size_t Report::cellCount() const {
  return Rep ? Rep->Cells.size() : 0;
}

int Report::jobs() const { return Rep ? Rep->Jobs : 0; }

double Report::wallSeconds() const { return Rep ? Rep->WallSeconds : 0; }

int Report::count(Status S) const {
  return Rep ? Rep->countWithStatus(toInternal(S)) : 0;
}

bool Report::allCompleted() const {
  return Rep ? Rep->allCompleted() : false;
}

std::vector<Report::Cell> Report::cells() const {
  std::vector<Cell> Out;
  if (!Rep)
    return Out;
  Out.reserve(Rep->Cells.size());
  for (const engine::MatrixCellResult &C : Rep->Cells) {
    Cell Row;
    Row.Impl = C.Cell.Impl;
    Row.Test = C.Cell.Test;
    Row.Model = memmodel::modelName(C.Cell.Model);
    Row.Verdict = api::toStatus(C.Result.Status);
    Row.Message = C.Result.Message;
    Row.Seconds = C.Seconds;
    Out.push_back(std::move(Row));
  }
  return Out;
}

std::string Report::json(bool IncludeTimings) const {
  return Rep ? Rep->json(IncludeTimings) : std::string("{}\n");
}

std::string Report::table() const {
  return Rep ? Rep->table() : std::string();
}

//===----------------------------------------------------------------------===//
// SynthOutcome
//===----------------------------------------------------------------------===//

std::string SynthOutcome::json() const {
  support::JsonObject Obj;
  Obj.field("schema_version", JsonSchemaVersion)
      .field("success", Success)
      .field("message", Message)
      .field("checks", ChecksRun)
      .fixed("seconds", TotalSeconds)
      .fixed("repair_seconds", RepairSeconds)
      .fixed("minimize_seconds", MinimizeSeconds);
  support::JsonArray Arr;
  for (const SynthFence &F : Fences) {
    support::JsonObject Fence;
    Fence.field("line", F.Line).field("kind", F.Kind);
    Arr.item(Fence);
  }
  Obj.raw("fences", Arr.str());
  return Obj.str() + "\n";
}

//===----------------------------------------------------------------------===//
// ExploreOutcome - thin view over explore::ExploreReport
//===----------------------------------------------------------------------===//

bool ExploreOutcome::ok() const { return Rep && Rep->Ok; }

const std::string &ExploreOutcome::error() const {
  static const std::string NoReport = "no explore report";
  return Rep ? Rep->Error : NoReport;
}

bool ExploreOutcome::cancelled() const { return Rep && Rep->Cancelled; }

unsigned long long ExploreOutcome::seed() const {
  return Rep ? Rep->Seed : 0;
}

int ExploreOutcome::generated() const { return Rep ? Rep->Generated : 0; }

int ExploreOutcome::deduplicated() const {
  return Rep ? Rep->Deduplicated : 0;
}

int ExploreOutcome::run() const { return Rep ? Rep->Run : 0; }

int ExploreOutcome::skips() const { return Rep ? Rep->SkipEntries : 0; }

int ExploreOutcome::shrunk() const { return Rep ? Rep->Shrunk : 0; }

double ExploreOutcome::wallSeconds() const {
  return Rep ? Rep->WallSeconds : 0;
}

std::vector<std::string> ExploreOutcome::warnings() const {
  return Rep ? Rep->Warnings : std::vector<std::string>();
}

std::vector<ExploreDivergence> ExploreOutcome::divergences() const {
  std::vector<ExploreDivergence> Out;
  if (!Rep)
    return Out;
  for (const explore::DivergenceRecord &D : Rep->Divergences) {
    ExploreDivergence E;
    E.Label = D.Label;
    E.Kind = D.Kind;
    E.Model = D.Model;
    E.Detail = D.Detail;
    E.Shrunk = D.Shrunk;
    E.Threads = D.Threads;
    E.Ops = D.Ops;
    E.Notation = D.Notation;
    E.Source = D.Source;
    E.ReproPath = D.ReproPath;
    Out.push_back(std::move(E));
  }
  return Out;
}

std::string ExploreOutcome::json(bool IncludeTimings) const {
  if (!Rep)
    return "{}\n";
  return Rep->json(IncludeTimings);
}
