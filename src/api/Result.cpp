//===--- Result.cpp - public result types ------------------------------------===//
//
// Part of the CheckFence reproduction (PLDI'07).
//
//===----------------------------------------------------------------------===//

#include "checkfence/Result.h"

#include "api/ApiInternal.h"
#include "engine/MatrixRunner.h"
#include "explore/Explore.h"
#include "support/Format.h"
#include "support/Json.h"

using namespace checkfence;

// Single checks and matrices share one schema; the public constant and
// the engine's must move together.
static_assert(JsonSchemaVersion == engine::ReportSchemaVersion,
              "bump checkfence::JsonSchemaVersion and "
              "engine::ReportSchemaVersion in lockstep");

const char *checkfence::statusName(Status S) {
  switch (S) {
  case Status::Pass:
    return "PASS";
  case Status::Fail:
    return "FAIL";
  case Status::SequentialBug:
    return "SEQUENTIAL-BUG";
  case Status::BoundsExhausted:
    return "BOUNDS-EXHAUSTED";
  case Status::Error:
    return "ERROR";
  case Status::Cancelled:
    return "CANCELLED";
  }
  return "<bad-status>";
}

int checkfence::exitCodeFor(Status S) {
  switch (S) {
  case Status::Pass:
    return 0;
  case Status::Fail:
    return 1;
  case Status::SequentialBug:
    return 2;
  case Status::BoundsExhausted:
    return 3;
  case Status::Error:
    return 4;
  case Status::Cancelled:
    return 5;
  }
  return 4;
}

std::string Result::json(bool IncludeTimings) const {
  return api::renderSingleCellJson(*this, IncludeTimings);
}

//===----------------------------------------------------------------------===//
// Report
//===----------------------------------------------------------------------===//

namespace {

checker::CheckStatus toInternal(Status S) {
  switch (S) {
  case Status::Pass:
    return checker::CheckStatus::Pass;
  case Status::Fail:
    return checker::CheckStatus::Fail;
  case Status::SequentialBug:
    return checker::CheckStatus::SequentialBug;
  case Status::BoundsExhausted:
    return checker::CheckStatus::BoundsExhausted;
  case Status::Error:
    return checker::CheckStatus::Error;
  case Status::Cancelled:
    return checker::CheckStatus::Cancelled;
  }
  return checker::CheckStatus::Error;
}

} // namespace

Report Report::makeError(std::string Message) {
  Report R;
  R.Err = std::move(Message);
  return R;
}

size_t Report::cellCount() const {
  return Rep ? Rep->Cells.size() : 0;
}

int Report::jobs() const { return Rep ? Rep->Jobs : 0; }

double Report::wallSeconds() const { return Rep ? Rep->WallSeconds : 0; }

int Report::count(Status S) const {
  return Rep ? Rep->countWithStatus(toInternal(S)) : 0;
}

bool Report::allCompleted() const {
  return Rep ? Rep->allCompleted() : false;
}

std::vector<Report::Cell> Report::cells() const {
  std::vector<Cell> Out;
  if (!Rep)
    return Out;
  Out.reserve(Rep->Cells.size());
  for (const engine::MatrixCellResult &C : Rep->Cells) {
    Cell Row;
    Row.Impl = C.Cell.Impl;
    Row.Test = C.Cell.Test;
    Row.Model = memmodel::modelName(C.Cell.Model);
    Row.Verdict = api::toStatus(C.Result.Status);
    Row.Message = C.Result.Message;
    Row.Seconds = C.Seconds;
    Out.push_back(std::move(Row));
  }
  return Out;
}

std::string Report::json(bool IncludeTimings) const {
  return Rep ? Rep->json(IncludeTimings) : std::string("{}\n");
}

std::string Report::table() const {
  return Rep ? Rep->table() : std::string();
}

//===----------------------------------------------------------------------===//
// SynthOutcome
//===----------------------------------------------------------------------===//

std::string SynthOutcome::json() const {
  support::JsonObject Obj;
  Obj.field("schema_version", JsonSchemaVersion)
      .field("success", Success)
      .field("message", Message)
      .field("checks", ChecksRun)
      .fixed("seconds", TotalSeconds)
      .fixed("repair_seconds", RepairSeconds)
      .fixed("minimize_seconds", MinimizeSeconds);
  support::JsonArray Arr;
  for (const SynthFence &F : Fences) {
    support::JsonObject Fence;
    Fence.field("line", F.Line).field("kind", F.Kind);
    Arr.item(Fence);
  }
  Obj.raw("fences", Arr.str());
  return Obj.str() + "\n";
}

//===----------------------------------------------------------------------===//
// AnalysisOutcome
//===----------------------------------------------------------------------===//

bool AnalysisOutcome::allRobust() const {
  for (const AnalysisModelRow &Row : Models)
    if (Row.Eligible && !Row.Robust)
      return false;
  return true;
}

namespace {

/// "LL LS SL SS +fwd" - the delayable edge kinds of a row, "-" when the
/// point delays nothing (sc-strength).
std::string delaySetStr(const AnalysisModelRow &Row) {
  std::string S;
  auto Add = [&](bool On, const char *Tag) {
    if (!On)
      return;
    if (!S.empty())
      S += ' ';
    S += Tag;
  };
  Add(Row.DelayLoadLoad, "LL");
  Add(Row.DelayLoadStore, "LS");
  Add(Row.DelayStoreLoad, "SL");
  Add(Row.DelayStoreStore, "SS");
  if (S.empty())
    S = "-";
  if (Row.Forwarding)
    S += " +fwd";
  return S;
}

} // namespace

std::string AnalysisOutcome::json() const {
  // Multi-line scaffolding, one model row per line (the matrix-report
  // layout convention); everything inside a row uses the inline writers.
  std::string S;
  support::JsonObject Head;
  Head.field("schema_version", JsonSchemaVersion)
      .field("kind", "analysis")
      .field("ok", Ok);
  if (!Ok)
    Head.field("error", Error);
  Head.field("impl", Impl)
      .field("test", Test)
      .field("loads", Loads)
      .field("stores", Stores)
      .field("fences", Fences)
      .field("all_robust", allRobust());
  S += "{\n  " + Head.str().substr(1);
  S.erase(S.size() - 1); // drop the closing brace, the rows follow
  S += ",\n  \"models\": [\n";
  for (size_t I = 0; I < Models.size(); ++I) {
    const AnalysisModelRow &Row = Models[I];
    support::JsonObject Obj;
    Obj.field("model", Row.Model)
        .field("descriptor", Row.Descriptor)
        .field("eligible", Row.Eligible)
        .field("robust", Row.Robust);
    support::JsonObject Delays;
    Delays.field("load_load", Row.DelayLoadLoad)
        .field("load_store", Row.DelayLoadStore)
        .field("store_load", Row.DelayStoreLoad)
        .field("store_store", Row.DelayStoreStore)
        .field("forwarding", Row.Forwarding);
    Obj.raw("delays", Delays.str())
        .field("delayed_pairs", Row.DelayedPairs)
        .field("cycle_pairs", Row.CyclePairs)
        .field("coherence_hazards", Row.CoherenceHazards)
        .field("reason", Row.Reason);
    support::JsonArray Cycles;
    for (const std::string &C : Row.Cycles)
      Cycles.item(support::jsonQuote(C));
    Obj.raw("cycles", Cycles.str());
    support::JsonArray Cuts;
    for (const SynthFence &F : Row.Cuts) {
      support::JsonObject Cut;
      Cut.field("line", F.Line).field("kind", F.Kind);
      Cuts.item(Cut);
    }
    Obj.raw("suggested_cuts", Cuts.str());
    S += "    " + Obj.str() + (I + 1 < Models.size() ? ",\n" : "\n");
  }
  S += "  ]\n}\n";
  return S;
}

std::string AnalysisOutcome::table() const {
  if (!Ok)
    return "analysis error: " + Error + "\n";
  std::string S = formatString(
      "critical-cycle analysis: %s %s (%d loads, %d stores, %d fences)\n",
      Impl.c_str(), Test.c_str(), Loads, Stores, Fences);
  S += formatString("%-10s %-16s %-14s %-11s %6s %6s %4s\n",
                             "model", "descriptor", "delays", "verdict",
                             "pairs", "cycles", "coh");
  for (const AnalysisModelRow &Row : Models) {
    const char *Verdict = !Row.Eligible ? "n/a"
                          : Row.Robust  ? "robust"
                                        : "NOT ROBUST";
    S += formatString(
        "%-10s %-16s %-14s %-11s %6d %6d %4d\n", Row.Model.c_str(),
        Row.Descriptor.c_str(), delaySetStr(Row).c_str(), Verdict,
        Row.DelayedPairs, Row.CyclePairs, Row.CoherenceHazards);
  }
  for (const AnalysisModelRow &Row : Models) {
    if (Row.Cycles.empty() && Row.Cuts.empty())
      continue;
    S += formatString("\n%s: %s\n", Row.Model.c_str(),
                               Row.Reason.c_str());
    for (const std::string &C : Row.Cycles)
      S += "  cycle: " + C + "\n";
    for (const SynthFence &F : Row.Cuts)
      S += formatString("  cut: %s fence before line %d\n",
                                 F.Kind.c_str(), F.Line);
  }
  return S;
}

//===----------------------------------------------------------------------===//
// ExploreOutcome - thin view over explore::ExploreReport
//===----------------------------------------------------------------------===//

bool ExploreOutcome::ok() const { return Rep && Rep->Ok; }

const std::string &ExploreOutcome::error() const {
  static const std::string NoReport = "no explore report";
  return Rep ? Rep->Error : NoReport;
}

bool ExploreOutcome::cancelled() const { return Rep && Rep->Cancelled; }

unsigned long long ExploreOutcome::seed() const {
  return Rep ? Rep->Seed : 0;
}

int ExploreOutcome::generated() const { return Rep ? Rep->Generated : 0; }

int ExploreOutcome::deduplicated() const {
  return Rep ? Rep->Deduplicated : 0;
}

int ExploreOutcome::run() const { return Rep ? Rep->Run : 0; }

int ExploreOutcome::skips() const { return Rep ? Rep->SkipEntries : 0; }

int ExploreOutcome::shrunk() const { return Rep ? Rep->Shrunk : 0; }

double ExploreOutcome::wallSeconds() const {
  return Rep ? Rep->WallSeconds : 0;
}

std::vector<std::string> ExploreOutcome::warnings() const {
  return Rep ? Rep->Warnings : std::vector<std::string>();
}

std::vector<ExploreDivergence> ExploreOutcome::divergences() const {
  std::vector<ExploreDivergence> Out;
  if (!Rep)
    return Out;
  for (const explore::DivergenceRecord &D : Rep->Divergences) {
    ExploreDivergence E;
    E.Label = D.Label;
    E.Kind = D.Kind;
    E.Model = D.Model;
    E.Detail = D.Detail;
    E.Shrunk = D.Shrunk;
    E.Threads = D.Threads;
    E.Ops = D.Ops;
    E.Notation = D.Notation;
    E.Source = D.Source;
    E.ReproPath = D.ReproPath;
    Out.push_back(std::move(E));
  }
  return Out;
}

std::string ExploreOutcome::json(bool IncludeTimings) const {
  if (!Rep)
    return "{}\n";
  return Rep->json(IncludeTimings);
}
