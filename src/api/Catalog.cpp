//===--- Catalog.cpp - public catalog and version queries --------------------===//
//
// Part of the CheckFence reproduction (PLDI'07).
//
//===----------------------------------------------------------------------===//

#include "checkfence/checkfence.h"

#include "analysis/CriticalCycles.h"
#include "harness/Catalog.h"
#include "impls/Impls.h"
#include "memmodel/MemoryModel.h"

using namespace checkfence;

#define CF_STR2(X) #X
#define CF_STR(X) CF_STR2(X)

const char *checkfence::versionString() {
  return CF_STR(CHECKFENCE_VERSION_MAJOR) "." CF_STR(
      CHECKFENCE_VERSION_MINOR) "." CF_STR(CHECKFENCE_VERSION_PATCH);
}

std::vector<ImplDesc> checkfence::listImplementations() {
  std::vector<ImplDesc> Out;
  for (const impls::ImplInfo &I : impls::allImpls())
    Out.push_back({I.Name, I.Kind, I.Description});
  return Out;
}

std::vector<TestDesc> checkfence::listTests() {
  std::vector<TestDesc> Out;
  for (const std::vector<harness::CatalogEntry> *List :
       {&harness::paperTests(), &harness::extensionTests()})
    for (const harness::CatalogEntry &E : *List)
      Out.push_back({E.Name, E.Kind, E.Notation});
  return Out;
}

std::vector<ModelDesc> checkfence::listModels() {
  std::vector<ModelDesc> Out;
  for (const memmodel::NamedModel &N : memmodel::namedModels())
    Out.push_back({N.Name, N.Params.str(), N.Note, N.FastOracle,
                   analysis::analysisEligible(N.Params)});
  return Out;
}

bool checkfence::validModelName(const std::string &Name) {
  return memmodel::modelFromName(Name).has_value();
}

std::string checkfence::implementationSource(const std::string &Name) {
  if (!impls::findImpl(Name))
    return std::string();
  return impls::sourceFor(Name);
}

std::string checkfence::preludeSource() {
  return impls::preludeSource();
}
