//===--- Verifier.cpp - the verification service -----------------------------===//
//
// Part of the CheckFence reproduction (PLDI'07).
//
//===----------------------------------------------------------------------===//

#include "checkfence/Verifier.h"

#include "analysis/CriticalCycles.h"
#include "api/ApiInternal.h"
#include "api/Cache.h"
#include "checker/Encoder.h"
#include "trans/Flattener.h"
#include "engine/CheckSession.h"
#include "engine/MatrixRunner.h"
#include "engine/WeakestModelSearch.h"
#include "explore/Explore.h"
#include "frontend/Lowering.h"
#include "harness/Catalog.h"
#include "harness/FenceSynth.h"
#include "impls/Impls.h"
#include "obs/Trace.h"
#include "support/Format.h"
#include "support/Timing.h"

#include <memory>

#include <atomic>
#include <chrono>
#include <fstream>
#include <map>
#include <mutex>
#include <set>
#include <vector>

using namespace checkfence;
using namespace checkfence::api;

namespace {

using Clock = std::chrono::steady_clock;

/// Per-request cancellation state: token + optional deadline.
struct RunControl {
  CancelToken Token;
  bool HasDeadline = false;
  Clock::time_point Deadline;

  static RunControl make(CancelToken Token, double DeadlineSeconds) {
    RunControl C;
    C.Token = std::move(Token);
    if (DeadlineSeconds > 0) {
      C.HasDeadline = true;
      C.Deadline = Clock::now() + std::chrono::duration_cast<
                                      Clock::duration>(
                                      std::chrono::duration<double>(
                                          DeadlineSeconds));
    }
    return C;
  }

  bool expired() const {
    return HasDeadline && Clock::now() >= Deadline;
  }
  bool stopRequested() const { return Token.cancelled() || expired(); }
};

/// Per-request tracing scope. When the request asked for a trace file
/// this owns a fresh Tracer, installs it for the calling thread (worker
/// fan-out points re-install it in their threads), and writes the file
/// on destruction. When TraceFile is empty it is fully inert - in
/// particular it does NOT displace a tracer installed by an enclosing
/// scope (the checkfenced server installs one per traced RPC), so
/// library-internal reuse of the public entry points keeps tracing.
class TraceFileScope {
public:
  explicit TraceFileScope(const std::string &Path)
      : Path(Path), T(Path.empty() ? nullptr : new obs::Tracer()),
        Ctx(T.get()) {}
  ~TraceFileScope() {
    if (T)
      T->writeFile(Path);
  }
  obs::Tracer *tracer() { return T.get(); }

private:
  std::string Path;
  std::unique_ptr<obs::Tracer> T;
  obs::TraceContext Ctx;
};

/// Wires a sink + control into the engine's hook structure.
checker::CheckHooks makeHooks(const std::string &Label, EventSink *Sink,
                              const RunControl &Control) {
  checker::CheckHooks Hooks;
  Hooks.Cancelled = [Control] { return Control.stopRequested(); };
  if (Sink) {
    Hooks.OnRoundStarted = [Label, Sink](int Round) {
      Sink->onRoundStarted({Label, Round});
    };
    Hooks.OnObservationsMined = [Label, Sink](int Count) {
      Sink->onObservationsMined({Label, Count});
    };
    Hooks.OnBoundGrown = [Label, Sink](const std::string &Loop, int B) {
      Sink->onBoundGrown({Label, Loop, B});
    };
  }
  return Hooks;
}

void fireVerdict(EventSink *Sink, const std::string &Label, Status S,
                 const std::string &Message, bool FromCache) {
  if (Sink)
    Sink->onVerdict({Label, S, Message, FromCache});
}

/// A ready-made Cancelled result for cells whose run was never started
/// (the stop request arrived first) - skips the per-cell compile.
checker::CheckResult cancelledCell() {
  checker::CheckResult R;
  R.Status = checker::CheckStatus::Cancelled;
  R.Message = "check cancelled";
  return R;
}

/// Expands model-axis strings ("tso", "po:ll,fwd", "all", "lattice");
/// empty input falls back to \p Fallback. False + Error on bad names.
bool resolveModelAxis(const std::vector<std::string> &Names,
                      memmodel::ModelParams Fallback,
                      std::vector<memmodel::ModelParams> &Out,
                      std::string &Error) {
  for (const std::string &M : Names) {
    if (M == "all") {
      for (const memmodel::NamedModel &N : memmodel::namedModels())
        Out.push_back(N.Params);
      continue;
    }
    if (M == "lattice") {
      for (const memmodel::ModelParams &P : memmodel::latticeModels())
        Out.push_back(P);
      continue;
    }
    auto K = memmodel::modelFromName(M);
    if (!K) {
      Error = "unknown model '" + M + "'";
      return false;
    }
    Out.push_back(*K);
  }
  if (Out.empty())
    Out.push_back(Fallback);
  return true;
}

Result errorResult(const Request &Req, std::string Message);

/// Error results are terminal verdicts too: consumers correlating
/// requests with onVerdict events must see one even when the request
/// never ran.
Result failRequest(const Request &Req, EventSink *Sink,
                   std::string Message) {
  Result R = errorResult(Req, std::move(Message));
  fireVerdict(Sink, R.Impl + ":" + R.Test + ":" + R.Model,
              Status::Error, R.Message, false);
  return R;
}

Result errorResult(const Request &Req, std::string Message) {
  Result R;
  R.Verdict = Status::Error;
  R.Message = std::move(Message);
  R.Impl = !Req.ImplName.empty()
               ? Req.ImplName
               : (Req.Label.empty() ? "<source>" : Req.Label);
  R.Test = Req.TestName.empty() ? "custom" : Req.TestName;
  // Canonical model name where possible, matching the success paths
  // (empty request model = the library default).
  if (Req.ModelName.empty())
    R.Model = memmodel::modelName(checker::CheckOptions{}.Model);
  else if (auto M = memmodel::modelFromName(Req.ModelName))
    R.Model = memmodel::modelName(*M);
  else
    R.Model = Req.ModelName; // the unresolvable name the error is about
  return R;
}

int preludeLineCount() {
  int Lines = 0;
  for (char C : impls::preludeSource())
    Lines += C == '\n';
  return Lines;
}

} // namespace

//===----------------------------------------------------------------------===//
// Verifier::Impl - session pool + cache
//===----------------------------------------------------------------------===//

struct Verifier::Impl {
  VerifierConfig Cfg;
  /// The result cache: private by default, or the handle from
  /// VerifierConfig::SharedCache (several Verifiers then fill one cache;
  /// the checkfenced server shards do this). Never null.
  std::shared_ptr<ResultCache> Cache;
  /// Persistence belongs to whoever owns the cache: a Verifier on a
  /// shared handle never loads or saves CachePath.
  bool OwnsCache = true;
  /// Cleared when CachePath named an existing file we could not parse:
  /// saving on destruction would clobber it (wrong file, or a future
  /// cache format) - an explicit saveCache() still can.
  bool SaveCacheOnExit = true;

  std::mutex PoolMu;
  /// Idle sessions keyed by options fingerprint. A leased session is
  /// removed from the pool and returned after the check, so concurrent
  /// requests never share a session. The pool is bounded two ways:
  /// persistent solvers only ever grow, and a long-lived service sees
  /// many distinct option/bounds keys - sessions beyond the count caps
  /// are simply freed, and a session whose solvers grew past
  /// MaxSessionClauses is retired instead of re-pooled (re-leasing it
  /// onto yet another program would keep re-solving an ever-larger
  /// formula; explore runs hit this with hundreds of distinct
  /// programs).
  static constexpr size_t MaxIdlePerKey = 4;
  static constexpr size_t MaxIdleTotal = 64;
  static constexpr size_t MaxSessionClauses = 1u << 21; // ~2M
  std::map<std::string, std::vector<std::unique_ptr<engine::CheckSession>>>
      Pool;
  size_t IdleSessions = 0; // total across Pool, under PoolMu

  std::unique_ptr<engine::CheckSession>
  leaseSession(const std::string &Key, const checker::CheckOptions &O) {
    {
      std::lock_guard<std::mutex> Lock(PoolMu);
      auto It = Pool.find(Key);
      if (It != Pool.end() && !It->second.empty()) {
        std::unique_ptr<engine::CheckSession> S =
            std::move(It->second.back());
        It->second.pop_back();
        --IdleSessions;
        return S;
      }
    }
    return std::make_unique<engine::CheckSession>(O);
  }

  void returnSession(const std::string &Key,
                     std::unique_ptr<engine::CheckSession> S) {
    if (S->totalClauses() > MaxSessionClauses)
      return; // retired: grown past useful reuse size
    S->setHooks(checker::CheckHooks{}); // drop request-scoped callbacks
    // The worker budget lives on the request's stack frame; a pooled
    // session must not carry the dangling pointer into its next lease.
    S->setParallelism(checker::CheckOptions{}.PortfolioWidth, nullptr);
    std::lock_guard<std::mutex> Lock(PoolMu);
    auto &Idle = Pool[Key];
    if (Idle.size() >= MaxIdlePerKey || IdleSessions >= MaxIdleTotal)
      return; // over budget: let the session (and its solvers) free
    Idle.push_back(std::move(S));
    ++IdleSessions;
  }

  int jobsFor(const Request &Req) const {
    int J = Req.Jobs > 0 ? Req.Jobs : Cfg.Jobs;
    return J < 1 ? 1 : J;
  }
};

Verifier::Verifier(VerifierConfig Config)
    : Self(std::make_unique<Impl>()) {
  Self->Cfg = std::move(Config);
  if (Self->Cfg.SharedCache.valid()) {
    Self->Cache = Self->Cfg.SharedCache.Cache;
    Self->OwnsCache = false;
  } else {
    Self->Cache = std::make_shared<ResultCache>();
  }
  if (Self->OwnsCache && Self->Cfg.EnableCache &&
      !Self->Cfg.CachePath.empty()) {
    bool Exists = std::ifstream(Self->Cfg.CachePath).good();
    if (!Self->Cache->load(Self->Cfg.CachePath) && Exists)
      Self->SaveCacheOnExit = false;
  }
}

Verifier::~Verifier() {
  if (Self->OwnsCache && Self->Cfg.EnableCache &&
      !Self->Cfg.CachePath.empty() && Self->SaveCacheOnExit)
    Self->Cache->save(Self->Cfg.CachePath);
}

CacheStats Verifier::cacheStats() const { return Self->Cache->stats(); }

void Verifier::clearCache() { Self->Cache->clear(); }

bool Verifier::saveCache(const std::string &Path) const {
  std::string Target = Path.empty() ? Self->Cfg.CachePath : Path;
  if (Target.empty())
    return false;
  return Self->Cache->save(Target);
}

PoolStats Verifier::poolStats() const {
  PoolStats S;
  std::lock_guard<std::mutex> Lock(Self->PoolMu);
  for (const auto &[Key, Idle] : Self->Pool)
    for (const auto &Session : Idle) {
      ++S.IdleSessions;
      S.IdleClauses += Session->totalClauses();
    }
  return S;
}

//===----------------------------------------------------------------------===//
// SharedResultCache - a copyable handle over api::ResultCache
//===----------------------------------------------------------------------===//

SharedResultCache::SharedResultCache() = default;
SharedResultCache::~SharedResultCache() = default;
SharedResultCache::SharedResultCache(const SharedResultCache &) = default;
SharedResultCache &
SharedResultCache::operator=(const SharedResultCache &) = default;

SharedResultCache SharedResultCache::create() {
  SharedResultCache H;
  H.Cache = std::make_shared<ResultCache>();
  return H;
}

bool SharedResultCache::load(const std::string &Path) {
  return Cache && Cache->load(Path);
}

bool SharedResultCache::save(const std::string &Path) const {
  return Cache && Cache->save(Path);
}

CacheStats SharedResultCache::stats() const {
  return Cache ? Cache->stats() : CacheStats{};
}

void SharedResultCache::clear() {
  if (Cache)
    Cache->clear();
}

//===----------------------------------------------------------------------===//
// Single checks
//===----------------------------------------------------------------------===//

Result Verifier::check(const Request &Req, EventSink *Sink,
                       CancelToken Token) {
  TraceFileScope Trace(Req.TraceFile);
  obs::Span RequestSpan("request", "request:check");
  checker::CheckOptions Opts;
  std::string Error;
  if (!checkOptionsFrom(Req, Opts, Error))
    return failRequest(Req, Sink, Error);

  CompiledCase Case = buildCase(Req);
  if (!Case.Ok)
    return failRequest(Req, Sink, Case.Error);

  const std::string ModelStr = memmodel::modelName(Opts.Model);
  const std::string Label =
      Case.ImplLabel + ":" + Case.Test.Name + ":" + ModelStr;
  const std::string OptsFp = optionsFingerprint(Opts, Req.Fresh);
  const std::string Key = Case.ProgramFp + "|" + OptsFp;
  const bool Caching = Self->Cfg.EnableCache && Req.UseCache;

  if (Caching) {
    if (std::optional<Result> Hit = Self->Cache->lookup(Key)) {
      fireVerdict(Sink, Label, Hit->Verdict, Hit->Message, true);
      return *Hit;
    }
    // Miss with a matching program fingerprint: seed the lazy unrolling
    // from the earlier passing run's final bounds (Fig. 10 workflow).
    if (Self->Cfg.ReuseBounds) {
      if (auto Bounds = Self->Cache->boundsFor(Case.ProgramFp)) {
        for (const auto &[Loop, Bound] : *Bounds)
          Opts.InitialBounds[Loop] = Bound;
        Self->Cache->noteSeed();
      }
    }
  }

  RunControl Control = RunControl::make(Token, Req.DeadlineSeconds);
  Opts.Hooks = makeHooks(Label, Sink, Control);

  // One worker budget for the whole request: `--jobs N` buys N threads
  // total, and the check's portfolio helpers are the only other layer
  // here. Outlives the run (stack), cleared on session return.
  support::WorkerBudget Budget(Self->jobsFor(Req) - 1);
  Opts.Budget = &Budget;

  checker::CheckResult R;
  if (Req.Fresh) {
    R = checker::runCheckFresh(Case.Impl, Case.Threads, Opts,
                               Case.HasSpec ? &Case.Spec : nullptr);
  } else {
    // Sessions are pooled by options AND program (and any seeded
    // bounds, which are construction state). Reuse across *different*
    // programs is deliberately excluded: a session warmed by another
    // program carries its grown loop bounds and solver state, which
    // perturbs budget-sensitive verdicts (BoundsExhausted vs Pass
    // could then depend on worker scheduling) and piles unrelated
    // encodings into one ever-larger solver. Same-program reuse -
    // cache-miss re-runs, explore shrink candidates, repeated service
    // requests - keeps the full incremental win.
    std::string PoolKey = Case.ProgramFp + "|" + OptsFp;
    for (const auto &[Loop, Bound] : Opts.InitialBounds)
      PoolKey += formatString("|%s=%d", Loop.c_str(), Bound);
    std::unique_ptr<engine::CheckSession> Session;
    {
      obs::Span LeaseSpan("api", "session_lease");
      Session = Self->leaseSession(PoolKey, Opts);
    }
    Session->setHooks(Opts.Hooks);
    Session->setParallelism(Opts.PortfolioWidth, &Budget);
    R = Session->check(Case.Impl, Case.Threads,
                       Case.HasSpec ? &Case.Spec : nullptr);
    Self->returnSession(PoolKey, std::move(Session));
  }

  Result Out = convertResult(R, Case.ImplLabel, Case.Test.Name, ModelStr);
  if (Out.Verdict == Status::Cancelled && Control.expired() &&
      !Token.cancelled())
    Out.Message = "deadline exceeded";
  if (Caching && Out.Verdict != Status::Cancelled)
    Self->Cache->insert(Key, Case.ProgramFp, Out);
  fireVerdict(Sink, Label, Out.Verdict, Out.Message, false);
  return Out;
}

//===----------------------------------------------------------------------===//
// Batched matrices and sweeps
//===----------------------------------------------------------------------===//

Report Verifier::matrix(const Request &Req, EventSink *Sink,
                        CancelToken Token) {
  TraceFileScope Trace(Req.TraceFile);
  obs::Span RequestSpan("request", "request:matrix");
  auto Fail = [Sink](std::string Message) {
    fireVerdict(Sink, "matrix", Status::Error, Message, false);
    return Report::makeError(std::move(Message));
  };
  checker::CheckOptions Opts;
  std::string Error;
  if (!checkOptionsFrom(Req, Opts, Error))
    return Fail(Error);

  std::vector<memmodel::ModelParams> Models;
  if (Req.RequestKind == Request::Kind::Sweep) {
    for (const memmodel::ModelParams &P : memmodel::latticeModels())
      Models.push_back(P);
  } else if (!resolveModelAxis(Req.Models, Opts.Model, Models, Error)) {
    return Fail(Error);
  }

  std::vector<engine::MatrixCell> Cells =
      harness::expandMatrix(Req.Impls, Req.Tests, Models);
  if (Cells.empty())
    return Fail("matrix is empty (check impls/tests)");

  // One budget for both parallel layers: the cell fan-out borrows extra
  // workers from it, and each cell's check portfolio borrows whatever is
  // left - never cells x width threads.
  support::WorkerBudget Budget(Self->jobsFor(Req) - 1);

  harness::RunOptions Base;
  Base.Check = Opts;
  Base.Check.Budget = &Budget;
  Base.StripFences = Req.StripAllFences;
  for (int Line : Req.StripLines)
    Base.StripFenceLines.insert(Line);
  Base.Defines.insert(Req.Defines.begin(), Req.Defines.end());

  RunControl Control = RunControl::make(Token, Req.DeadlineSeconds);
  std::atomic<size_t> Finished{0};
  const size_t Total = Cells.size();

  // Matrix cells deliberately skip the result cache and bounds seeding:
  // each cell runs clean so the timing-free report stays byte-identical
  // across job counts and cache states.
  engine::CellFn Fn =
      [Base, Sink, Control, &Finished,
       Total](const engine::MatrixCell &Cell) -> checker::CheckResult {
    if (Control.stopRequested()) {
      // Skipped cells still complete the progress contract: Finished
      // reaches Total even when a deadline wipes out the tail.
      if (Sink)
        Sink->onCellFinished({Cell.label(), Finished.fetch_add(1) + 1,
                              Total, Status::Cancelled, 0});
      return cancelledCell();
    }
    harness::RunOptions O = Base;
    O.Check.Hooks = makeHooks(Cell.label(), Sink, Control);
    Timer T;
    checker::CheckResult R = harness::catalogCellRunner(O)(Cell);
    if (Sink)
      Sink->onCellFinished({Cell.label(), Finished.fetch_add(1) + 1,
                            Total, toStatus(R.Status), T.seconds()});
    return R;
  };

  auto Rep = std::make_shared<engine::MatrixReport>(
      engine::MatrixRunner(Self->jobsFor(Req))
          .withBudget(&Budget)
          .run(Cells, Fn));
  Status Overall =
      Control.stopRequested()
          ? Status::Cancelled
          : (Rep->allCompleted() ? Status::Pass : Status::Error);
  fireVerdict(Sink, "matrix", Overall,
              formatString("%d cells", static_cast<int>(Total)), false);
  return Report(std::move(Rep));
}

//===----------------------------------------------------------------------===//
// Weakest-model search
//===----------------------------------------------------------------------===//

WeakestOutcome Verifier::weakestModels(const Request &Req,
                                       EventSink *Sink,
                                       CancelToken Token) {
  TraceFileScope Trace(Req.TraceFile);
  obs::Span RequestSpan("request", "request:weakest");
  WeakestOutcome Out;
  Out.Impl = Req.ImplName;
  Out.Test = Req.TestName;
  if (!impls::findImpl(Req.ImplName)) {
    Out.Error = "unknown implementation '" + Req.ImplName + "'";
    return Out;
  }
  if (!harness::findCatalogEntry(Req.TestName)) {
    Out.Error = "unknown catalog test '" + Req.TestName + "'";
    return Out;
  }
  checker::CheckOptions Opts;
  if (!checkOptionsFrom(Req, Opts, Out.Error))
    return Out;

  // The lattice walk itself is sequential (each verdict prunes the next
  // frontier), so the whole `--jobs` allowance goes to each cell's
  // portfolio.
  support::WorkerBudget Budget(Self->jobsFor(Req) - 1);

  harness::RunOptions Base;
  Base.Check = Opts;
  Base.Check.Budget = &Budget;
  Base.StripFences = Req.StripAllFences;
  for (int Line : Req.StripLines)
    Base.StripFenceLines.insert(Line);
  Base.Defines.insert(Req.Defines.begin(), Req.Defines.end());

  RunControl Control = RunControl::make(Token, Req.DeadlineSeconds);
  engine::CellFn Fn =
      [Base, Sink,
       Control](const engine::MatrixCell &Cell) -> checker::CheckResult {
    if (Control.stopRequested())
      return cancelledCell();
    harness::RunOptions O = Base;
    O.Check.Hooks = makeHooks(Cell.label(), Sink, Control);
    return harness::catalogCellRunner(O)(Cell);
  };

  std::vector<memmodel::ModelParams> Lattice;
  if (!Req.Models.empty()) {
    if (!resolveModelAxis(Req.Models, Opts.Model, Lattice, Out.Error))
      return Out;
  } else {
    Lattice = memmodel::latticeModels();
  }

  engine::WeakestSummary S =
      engine::WeakestModelSearch(Lattice).run(Req.ImplName, Req.TestName,
                                              Fn);
  for (const memmodel::ModelParams &M : S.Weakest)
    Out.Weakest.push_back(memmodel::modelName(M));
  Out.ModelsPassed = S.ModelsPassed;
  Out.ModelsChecked = S.ModelsChecked;
  Out.CellsRun = S.CellsRun;
  Out.CellsInferred = S.CellsInferred;
  Out.Cancelled = Control.stopRequested();
  Out.Ok = true;
  return Out;
}

//===----------------------------------------------------------------------===//
// Fence synthesis
//===----------------------------------------------------------------------===//

SynthOutcome Verifier::synthesize(const Request &Req, EventSink *Sink,
                                  CancelToken Token) {
  TraceFileScope Trace(Req.TraceFile);
  obs::Span RequestSpan("request", "request:synth");
  SynthOutcome Out;
  // Setup failures are terminal verdicts too (see failRequest).
  auto Fail = [&]() -> SynthOutcome & {
    fireVerdict(Sink, Req.ImplName + ":synth", Status::Error,
                Out.Message, false);
    return Out;
  };
  checker::CheckOptions Opts;
  if (!checkOptionsFrom(Req, Opts, Out.Message))
    return Fail();

  // Resolve the source and the tests (one, or a Tests list).
  Request Probe = Req;
  std::vector<std::string> TestNames = Req.Tests;
  if (TestNames.empty() && !Req.TestName.empty())
    TestNames.push_back(Req.TestName);
  if (TestNames.empty() && Req.Notation.empty()) {
    Out.Message = "synthesis request names no test";
    return Fail();
  }
  if (!TestNames.empty())
    Probe.TestName = TestNames[0];
  CompiledCase Case = buildCase(Probe);
  if (!Case.Ok) {
    Out.Message = Case.Error;
    return Fail();
  }

  std::vector<harness::TestSpec> Tests;
  if (!Req.Notation.empty()) {
    Tests.push_back(Case.Test);
  } else {
    for (const std::string &Name : TestNames) {
      const harness::CatalogEntry *E = harness::findCatalogEntry(Name);
      if (!E) {
        Out.Message = "unknown catalog test '" + Name + "'";
        return Fail();
      }
      harness::TestSpec Spec;
      std::string Err;
      if (!harness::parseTestNotation(
              E->Notation, harness::alphabetFor(E->Kind), Spec, Err)) {
        Out.Message = "catalog test " + Name + " failed to parse: " + Err;
        return Fail();
      }
      Spec.Name = E->Name;
      Tests.push_back(std::move(Spec));
    }
  }

  harness::SynthOptions SO;
  SO.Check = Opts;
  SO.Defines.insert(Req.Defines.begin(), Req.Defines.end());
  SO.StripFences = Req.SynthStrip;
  SO.MinLine = Req.SynthMinLine ? *Req.SynthMinLine
                                : preludeLineCount() + 1;
  if (Req.SynthMaxFences)
    SO.MaxFences = *Req.SynthMaxFences;
  SO.Minimize = Req.SynthMinimize;
  SO.Jobs = Self->jobsFor(Req);
  // Shared by the minimization fan-out and every check's portfolio.
  support::WorkerBudget Budget(SO.Jobs - 1);
  SO.Budget = &Budget;
  SO.Check.Budget = &Budget;

  RunControl Control = RunControl::make(Token, Req.DeadlineSeconds);
  SO.Check.Hooks =
      makeHooks(Case.ImplLabel + ":synth", Sink, Control);

  harness::SynthResult S =
      harness::synthesizeFences(Case.FullSource, Tests, SO);
  Out.Success = S.Success;
  Out.Message = S.Message;
  for (const harness::FencePlacement &P : S.Fences)
    Out.Fences.push_back({P.Line, lsl::fenceKindName(P.Kind)});
  for (const harness::FencePlacement &P : S.Removed)
    Out.Removed.push_back({P.Line, lsl::fenceKindName(P.Kind)});
  Out.ChecksRun = S.ChecksRun;
  Out.TotalSeconds = S.TotalSeconds;
  Out.RepairSeconds = S.RepairSeconds;
  Out.MinimizeSeconds = S.MinimizeSeconds;
  Out.Log = S.Log;
  if (Control.stopRequested()) {
    // A stop mid-run poisons whatever phase it interrupted: repair-loop
    // probes come back Cancelled (non-pass), and minimization removal
    // probes read as refutations, silently skipping the necessity
    // checks. Never report such a run as a completed success.
    Out.Cancelled = true;
    Out.Success = false;
    Out.Message = "synthesis cancelled: " + Out.Message;
  }
  fireVerdict(Sink, Case.ImplLabel + ":synth",
              Out.Cancelled ? Status::Cancelled
                            : (Out.Success ? Status::Pass : Status::Error),
              Out.Message, false);
  return Out;
}

//===----------------------------------------------------------------------===//
// Static critical-cycle robustness analysis
//===----------------------------------------------------------------------===//

AnalysisOutcome Verifier::analyze(const Request &Req) {
  TraceFileScope Trace(Req.TraceFile);
  obs::Span RequestSpan("request", "request:analyze");
  AnalysisOutcome Out;

  // Model axis: explicit models() > a single model() > the full lattice
  // (the lint default: one verdict per relaxation point).
  std::vector<memmodel::ModelParams> Axis;
  if (!Req.Models.empty()) {
    if (!resolveModelAxis(Req.Models, checker::CheckOptions{}.Model, Axis,
                          Out.Error))
      return Out;
  } else if (!Req.ModelName.empty()) {
    auto M = memmodel::modelFromName(Req.ModelName);
    if (!M) {
      Out.Error = "unknown model '" + Req.ModelName + "'";
      return Out;
    }
    Axis.push_back(*M);
  } else {
    Axis = memmodel::latticeModels();
  }

  CompiledCase Case = buildCase(Req);
  if (!Case.Ok) {
    Out.Error = Case.Error;
    return Out;
  }
  Out.Impl = Case.ImplLabel;
  Out.Test = Case.Test.Name.empty() ? Req.TestName : Case.Test.Name;

  // One flattening at the default initial bounds serves every model row:
  // the graph construction is model-independent, only the delay set (and
  // with it the enforced-order closure) varies per row. Larger unrolling
  // bounds only replicate loop bodies, which adds instances of the same
  // static pairs, so the verdict is bound-independent.
  trans::FlatProgram Flat;
  trans::LoopBounds Bounds = checker::CheckOptions{}.InitialBounds;
  trans::Flattener F(Case.Impl, Flat, Bounds); // Flattener keeps a ref
  for (size_t T = 0; T < Case.Threads.size(); ++T)
    if (!F.flattenThread(Case.Threads[T], static_cast<int>(T))) {
      Out.Error = "flattening failed: " + F.error();
      return Out;
    }
  trans::RangeInfo Ranges = trans::analyzeRanges(Flat);
  for (const trans::FlatEvent &E : Flat.Events) {
    Out.Loads += E.isLoad();
    Out.Stores += E.isStore();
    Out.Fences += !E.isAccess();
  }

  analysis::AnalysisOptions AO;
  AO.MinLine = Req.SynthMinLine ? *Req.SynthMinLine
                                : preludeLineCount() + 1;

  // The rows are independent and the results land in indexed slots, so
  // the fan-out is observation-free: any job count produces identical
  // outcomes (the --analyze determinism contract).
  Out.Models.resize(Axis.size());
  engine::parallelFor(Self->jobsFor(Req), Axis.size(), [&](size_t I) {
    const memmodel::ModelParams &M = Axis[I];
    AnalysisModelRow &Row = Out.Models[I];
    Row.Model = memmodel::modelName(M);
    Row.Descriptor = M.str();
    analysis::DelaySet D = analysis::delaySetFor(M);
    Row.DelayLoadLoad = D.LoadLoad;
    Row.DelayLoadStore = D.LoadStore;
    Row.DelayStoreLoad = D.StoreLoad;
    Row.DelayStoreStore = D.StoreStore;
    Row.Forwarding = D.Forwarding;
    Row.Eligible = analysis::analysisEligible(M);
    if (!Row.Eligible) {
      Row.Reason = M.SerialOps
                       ? "outside the analysis fragment: serial "
                         "operation granularity has no per-access "
                         "memory order"
                       : "outside the analysis fragment: no single "
                         "total memory order without multi-copy "
                         "atomicity";
      return;
    }
    analysis::RobustnessResult RR =
        analysis::analyzeRobustness(Flat, Ranges, M, AO);
    Row.Robust = RR.Robust;
    Row.Reason = RR.Reason;
    Row.DelayedPairs = RR.DelayedPairs;
    Row.CyclePairs = RR.CyclePairs;
    Row.CoherenceHazards = RR.CoherenceHazards;
    for (const analysis::CriticalCycle &C : RR.Cycles)
      Row.Cycles.push_back(C.str());
    for (const analysis::SuggestedCut &C : RR.Cuts)
      Row.Cuts.push_back({C.Line, lsl::fenceKindName(C.Kind)});
  });

  Out.Ok = true;
  return Out;
}

//===----------------------------------------------------------------------===//
// Randomized differential exploration
//===----------------------------------------------------------------------===//

ExploreOutcome Verifier::explore(const Request &Req, EventSink *Sink,
                                 CancelToken Token) {
  TraceFileScope Trace(Req.TraceFile);
  obs::Span RequestSpan("request", "request:explore");
  explore::ExploreOptions EO;
  EO.Seed = Req.ExploreSeed;
  EO.Budget = Req.ExploreBudget;
  EO.Jobs = Self->jobsFor(Req);
  EO.Shrink = Req.ExploreShrink;
  EO.CorpusDir = Req.CorpusDir;
  EO.Sink = Sink;
  EO.Token = Token;
  EO.Diff.UseFastOracle = Req.UseFastOracle;
  EO.Diff.EnumeratorSamplePeriod = Req.OracleSamplePeriod;
  if (Req.SymbolicPerMille >= 0)
    EO.Limits.SymbolicPerMille = Req.SymbolicPerMille;

  // Empty = the explore default axis (sc/tso/relaxed), not the single
  // default model the other request kinds fall back to.
  std::string Error;
  if (!Req.Models.empty() &&
      !resolveModelAxis(Req.Models, checker::CheckOptions{}.Model,
                        EO.Models, Error)) {
    auto Rep = std::make_shared<explore::ExploreReport>();
    Rep->Ok = false;
    Rep->Error = Error;
    fireVerdict(Sink, "explore", Status::Error, Error, false);
    return ExploreOutcome(std::move(Rep));
  }

  RunControl Control = RunControl::make(Token, Req.DeadlineSeconds);
  EO.Stop = [Control] { return Control.stopRequested(); };
  if (Control.HasDeadline) {
    // Also forwarded into each inner engine check, so a slow scenario
    // stops near the deadline instead of overshooting by its runtime.
    EO.Diff.HasDeadline = true;
    EO.Diff.Deadline = Control.Deadline;
  }

  auto Rep = std::make_shared<explore::ExploreReport>(
      explore::runExplore(*this, EO));
  Status Overall = !Rep->Ok ? Status::Error
                   : Rep->Cancelled
                       ? Status::Cancelled
                       : (Rep->Divergences.empty() ? Status::Pass
                                                   : Status::Fail);
  fireVerdict(Sink, "explore", Overall,
              formatString("%d scenarios, %d divergences", Rep->Run,
                           Rep->divergenceCount()),
              false);
  return ExploreOutcome(std::move(Rep));
}

//===----------------------------------------------------------------------===//
// Litmus reachability
//===----------------------------------------------------------------------===//

LitmusOutcome Verifier::observable(const Request &Req) {
  TraceFileScope Trace(Req.TraceFile);
  obs::Span RequestSpan("request", "request:litmus");
  LitmusOutcome Out;
  checker::CheckOptions Opts;
  if (!checkOptionsFrom(Req, Opts, Out.Error))
    return Out;
  if (Req.SourceText.empty() || Req.LitmusThreads.empty()) {
    Out.Error = "litmus requests need source() and at least one thread()";
    return Out;
  }

  frontend::DiagEngine Diags;
  lsl::Program Prog;
  std::set<std::string> Defines(Req.Defines.begin(), Req.Defines.end());
  if (!frontend::compileC(Req.SourceText, Defines, Prog, Diags)) {
    Out.Error = "frontend error:\n" + Diags.str();
    return Out;
  }
  harness::TestSpec Spec;
  Spec.Name = "litmus";
  for (const std::string &Op : Req.LitmusThreads)
    Spec.Threads.push_back({harness::OpSpec{Op, 0, false, false}});
  std::vector<std::string> Threads =
      harness::buildTestThreads(Prog, Spec);

  checker::ProblemConfig Cfg;
  Cfg.Model = Opts.Model;
  Cfg.Order = Opts.Order;
  Cfg.RangeAnalysis = Opts.RangeAnalysis;
  Cfg.ConflictBudget = Opts.ConflictBudget;
  checker::EncodedProblem Prob(Prog, Threads, {}, Cfg);
  checker::Observation O;
  for (long long V : Req.ExpectedValues)
    O.Values.push_back(lsl::Value::integer(V));
  Prob.requireObservation(O);
  if (!Prob.ok()) {
    Out.Error = Prob.error();
    return Out;
  }
  sat::SolveResult R = Prob.solve();
  if (R == sat::SolveResult::Unknown) {
    Out.Error = "solver budget exhausted";
    return Out;
  }
  Out.Ok = true;
  Out.Reachable = R == sat::SolveResult::Sat;
  return Out;
}
