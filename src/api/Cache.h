//===--- Cache.h - cross-run result cache -----------------------*- C++ -*-==//
//
// Part of the CheckFence reproduction (PLDI'07).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Verifier's cross-run result cache. Entries are complete public
/// Results keyed by (program fingerprint | options fingerprint), so a hit
/// reproduces the original run byte-for-byte in timing-free JSON.
/// Passing entries additionally publish their final loop bounds under the
/// program fingerprint alone: a later run of the same program under
/// different options seeds its lazy unrolling from them (the paper's
/// Fig. 10 re-run workflow).
///
/// The cache serializes to a line-oriented text file (load/save), making
/// it persistent across processes when the Verifier is configured with a
/// cache path. Thread-safe.
///
/// Persistence is safe for concurrent multi-process use: load() *merges*
/// the file into memory (in-memory entries win on key collisions), and
/// save() re-reads the file, overlays the in-memory entries, and writes
/// the union via a temp file + atomic rename, all under an advisory
/// flock on `<path>.lock`. A daemon and ad-hoc CLI runs sharing one
/// cache file can therefore never corrupt it or silently drop each
/// other's entries - the worst case is reading a slightly stale view.
///
//===----------------------------------------------------------------------===//

#ifndef CHECKFENCE_API_CACHE_H
#define CHECKFENCE_API_CACHE_H

#include "checkfence/Result.h"
#include "checkfence/Verifier.h"

#include <map>
#include <mutex>
#include <optional>
#include <string>

namespace checkfence {
namespace api {

class ResultCache {
public:
  /// The stored result for \p Key (FromCache set), or nullopt. Counts a
  /// hit or a miss.
  std::optional<Result> lookup(const std::string &Key);

  /// Stores \p R under \p Key; a passing result also publishes its
  /// FinalBounds under \p ProgramFp.
  void insert(const std::string &Key, const std::string &ProgramFp,
              const Result &R);

  /// Final bounds of a previous passing run of this program, if any.
  std::optional<std::map<std::string, int>>
  boundsFor(const std::string &ProgramFp);

  /// Records that a run's initial bounds were seeded from the cache.
  void noteSeed();

  CacheStats stats() const;
  void clear();

  /// Text-file persistence. load() merges the file into the current
  /// contents (in-memory entries win) and is tolerant of missing files
  /// (returns false, cache left unchanged). save() merges the current
  /// contents into the file atomically (see the class comment).
  bool load(const std::string &Path);
  bool save(const std::string &Path) const;

private:
  mutable std::mutex Mu;
  std::map<std::string, Result> Entries;
  std::map<std::string, std::map<std::string, int>> PassBounds;
  CacheStats Counters;
};

} // namespace api
} // namespace checkfence

#endif // CHECKFENCE_API_CACHE_H
