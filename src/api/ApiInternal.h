//===--- ApiInternal.h - facade implementation helpers ----------*- C++ -*-==//
//
// Part of the CheckFence reproduction (PLDI'07).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Internal glue between the public facade (include/checkfence/) and the
/// engine layers: request resolution (names -> compiled programs),
/// fingerprinting for the result cache and the session pool, and the
/// checker::CheckResult -> checkfence::Result conversion. Not installed.
///
//===----------------------------------------------------------------------===//

#ifndef CHECKFENCE_API_APIINTERNAL_H
#define CHECKFENCE_API_APIINTERNAL_H

#include "checkfence/Request.h"
#include "checkfence/Result.h"

#include "checker/CheckFence.h"
#include "harness/TestSpec.h"

#include <cstdint>
#include <string>
#include <vector>

namespace checkfence {
namespace api {

/// Public Status for an internal CheckStatus.
Status toStatus(checker::CheckStatus S);

/// A request resolved to compiled programs, ready to check.
struct CompiledCase {
  bool Ok = false;
  std::string Error;

  lsl::Program Impl;
  std::vector<std::string> Threads;
  bool HasSpec = false;
  lsl::Program Spec;

  harness::TestSpec Test;
  std::string ImplLabel; ///< display name ("msn" or "<source>")
  std::string KindStr;   ///< data-type kind when known
  std::string FullSource; ///< prelude + implementation (for synthesis)

  /// Fingerprint of the *lowered* programs (implementation, thread
  /// procedures, optional reference): any semantic change - a removed
  /// fence, a define, a different test - changes it.
  std::string ProgramFp;
};

/// Resolves a check/synthesis request's implementation, test, variant
/// defines, and optional reference spec into compiled LSL programs.
CompiledCase buildCase(const Request &Req);

/// Builds engine options from a request; unset request fields keep the
/// one library-default CheckOptions{} value. False + \p Error on an
/// unresolvable model name.
bool checkOptionsFrom(const Request &Req, checker::CheckOptions &Out,
                      std::string &Error);

/// Deterministic options fingerprint for cache keys and the session
/// pool. Ignores Hooks and InitialBounds (per-request state).
std::string optionsFingerprint(const checker::CheckOptions &O,
                               bool Fresh);

/// Converts an engine result; \p ImplLabel / \p TestName / \p ModelName
/// become the result's identity fields.
Result convertResult(const checker::CheckResult &R,
                     const std::string &ImplLabel,
                     const std::string &TestName,
                     const std::string &ModelName);

/// Renders the shared one-cell report body used by Result::json (the
/// exact shape of engine::MatrixReport::json for a single cell).
std::string renderSingleCellJson(const Result &R, bool IncludeTimings);

} // namespace api
} // namespace checkfence

#endif // CHECKFENCE_API_APIINTERNAL_H
