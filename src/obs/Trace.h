//===- obs/Trace.h - Span tracer emitting Chrome trace-event JSON ---------===//
//
// A lightweight, thread-safe span tracer for the verification pipeline.
//
// Design goals:
//  - Zero cost when disabled: a Span constructed while no Tracer is
//    installed reads no clock, takes no lock, and allocates nothing.
//  - Lock-cheap when enabled: events land in sharded mutex-protected
//    buffers selected by thread identity, so concurrent workers rarely
//    contend.
//  - Purely observational: tracing records wall-clock timings but never
//    influences scheduling, verdicts, or report contents. Timing-free
//    JSON output is byte-identical with tracing on or off.
//
// The output is Chrome trace-event format ("traceEvents" with "X"
// complete events), loadable in Perfetto (https://ui.perfetto.dev) and
// chrome://tracing. Span names are deterministic (derived from request
// structure, never from pointers or timings); only ts/dur vary run to
// run.
//
// Installation is per-thread via a thread-local current-tracer pointer.
// `TraceContext` installs a tracer for a scope (RAII); thread fan-out
// points (engine::parallelFor, the solver portfolio, server shard
// workers) capture the parent's tracer and reinstall it in each worker
// so spans from all threads land in the same trace.
//
//===----------------------------------------------------------------------===//

#ifndef CHECKFENCE_OBS_TRACE_H
#define CHECKFENCE_OBS_TRACE_H

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

namespace checkfence {
namespace support {
class JsonValue;
} // namespace support
namespace obs {

/// One recorded span. Times are nanoseconds since the owning tracer's
/// epoch (its construction time).
struct TraceEvent {
  std::string Name;
  std::string Cat;
  uint64_t StartNs = 0;
  uint64_t DurNs = 0;
  uint32_t Tid = 0;
  /// Process lane. 0 is the local process; events imported from a
  /// remote server are shifted to a distinct lane so Perfetto shows
  /// client and server timelines side by side.
  uint32_t Pid = 0;
  /// Optional pre-rendered JSON object for the "args" field ("" = none).
  std::string Args;
};

/// Collects spans from many threads and renders Chrome trace JSON.
class Tracer {
public:
  Tracer();
  Tracer(const Tracer &) = delete;
  Tracer &operator=(const Tracer &) = delete;

  /// Nanoseconds since this tracer's epoch (steady clock).
  uint64_t nowNs() const;

  /// Record a completed span with explicit endpoints. Used by the RAII
  /// Span and by manual interval recording (e.g. server queue wait,
  /// whose start predates the worker picking the job up).
  void record(const char *Cat, std::string Name, uint64_t StartNs,
              uint64_t EndNs, std::string Args = std::string());

  /// Record an event imported from another process, placing it in lane
  /// `Pid` and shifting its timestamps by `ShiftNs` to line up with the
  /// local timeline.
  void recordForeign(const TraceEvent &Ev, uint32_t Pid, int64_t ShiftNs);

  /// Number of events recorded so far.
  size_t eventCount() const;

  /// Snapshot all events (sorted by lane, thread, then start time).
  std::vector<TraceEvent> events() const;

  /// Render the bare JSON array of trace events (wire form, used to
  /// ship server-side spans back to the client inside the RPC result
  /// envelope).
  std::string eventsJson() const;

  /// Render a complete Chrome trace-event document:
  ///   {"traceEvents":[...],"displayTimeUnit":"ms"}
  std::string json() const;

  /// Write `json()` to a file. Returns false on I/O error.
  bool writeFile(const std::string &Path) const;

  /// Parse a JSON array of trace events (the `eventsJson()` wire form).
  /// Returns false if `Text` is not a valid event array; on success the
  /// parsed events are appended to `Out`.
  static bool parseEvents(const std::string &Text,
                          std::vector<TraceEvent> &Out);
  /// Same, over an already-parsed JSON array (the RPC envelope's
  /// "trace" member).
  static bool parseEvents(const support::JsonValue &Arr,
                          std::vector<TraceEvent> &Out);

private:
  static constexpr size_t NumShards = 8;
  struct Shard {
    mutable std::mutex Mu;
    std::vector<TraceEvent> Events;
  };
  Shard &shardForThisThread() const;

  mutable Shard Shards[NumShards];
  std::chrono::steady_clock::time_point Epoch;
};

/// The tracer currently installed on this thread, or nullptr when
/// tracing is disabled (the common case).
Tracer *currentTracer();

/// Stable small integer identifying the calling thread in trace output.
uint32_t currentTraceTid();

/// RAII: installs `T` as the current tracer for this thread for the
/// lifetime of the scope. Passing nullptr is a no-op (the previously
/// installed tracer, if any, stays active) so callers can compose
/// optional tracing without special cases.
class TraceContext {
public:
  explicit TraceContext(Tracer *T);
  ~TraceContext();
  TraceContext(const TraceContext &) = delete;
  TraceContext &operator=(const TraceContext &) = delete;

private:
  Tracer *Prev = nullptr;
  bool Installed = false;
};

/// RAII span. Captures the current tracer at construction; if none is
/// installed the span is inert (no clock read, no allocation).
class Span {
public:
  /// Span with a static name. `Cat` and `Name` must outlive the span
  /// (string literals in practice).
  Span(const char *Cat, const char *Name) : T(currentTracer()) {
    if (!T)
      return;
    Cat_ = Cat;
    Name_ = Name;
    StartNs = T->nowNs();
  }

  /// Span with a lazily computed name: `NameFn` is only invoked (and
  /// its result only allocated) when a tracer is installed.
  template <typename NameFn,
            typename = std::enable_if_t<!std::is_convertible<
                NameFn, const char *>::value>>
  Span(const char *Cat, NameFn &&Fn) : T(currentTracer()) {
    if (!T)
      return;
    Cat_ = Cat;
    Name_ = std::forward<NameFn>(Fn)();
    StartNs = T->nowNs();
  }

  Span(const Span &) = delete;
  Span &operator=(const Span &) = delete;

  /// Whether this span will be recorded. Lets callers skip building
  /// args strings when tracing is off.
  bool active() const { return T != nullptr; }

  /// Attach a pre-rendered JSON object as the span's "args". No-op when
  /// inert.
  void args(std::string JsonObject) {
    if (T)
      Args_ = std::move(JsonObject);
  }

  ~Span() {
    if (T)
      T->record(Cat_ ? Cat_ : "", std::move(Name_), StartNs, T->nowNs(),
                std::move(Args_));
  }

private:
  Tracer *T;
  const char *Cat_ = nullptr;
  std::string Name_;
  std::string Args_;
  uint64_t StartNs = 0;
};

} // namespace obs
} // namespace checkfence

#endif // CHECKFENCE_OBS_TRACE_H
