//===- obs/Metrics.cpp - Metrics registry implementation ------------------===//

#include "obs/Metrics.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

namespace checkfence {
namespace obs {

namespace {

/// Renders a double the way Prometheus expects: integral values without
/// a trailing ".000000", others with enough digits to round-trip the
/// bucket bounds in use.
std::string promDouble(double V) {
  if (V == static_cast<int64_t>(V)) {
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%lld", static_cast<long long>(V));
    return Buf;
  }
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%g", V);
  return Buf;
}

double atomicSumLoad(const std::atomic<uint64_t> &Bits) {
  uint64_t Raw = Bits.load(std::memory_order_relaxed);
  double V;
  std::memcpy(&V, &Raw, sizeof(V));
  return V;
}

void atomicSumAdd(std::atomic<uint64_t> &Bits, double Delta) {
  uint64_t Old = Bits.load(std::memory_order_relaxed);
  for (;;) {
    double Cur;
    std::memcpy(&Cur, &Old, sizeof(Cur));
    double Next = Cur + Delta;
    uint64_t NewBits;
    std::memcpy(&NewBits, &Next, sizeof(NewBits));
    if (Bits.compare_exchange_weak(Old, NewBits, std::memory_order_relaxed))
      return;
  }
}

} // namespace

const std::vector<double> &latencyBuckets() {
  static const std::vector<double> Buckets = {
      0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25,
      0.5,   1,      2.5,   5,    10,    30,   60,  120};
  return Buckets;
}

Histogram::Histogram(std::string Name, std::string Help,
                     std::vector<double> Bounds, std::string LabelKey,
                     std::string LabelValue)
    : Name(std::move(Name)), Help(std::move(Help)),
      LabelKey(std::move(LabelKey)), LabelValue(std::move(LabelValue)),
      Bounds(std::move(Bounds)),
      Buckets(new std::atomic<uint64_t>[this->Bounds.size() + 1]) {
  for (size_t I = 0; I <= this->Bounds.size(); ++I)
    Buckets[I].store(0, std::memory_order_relaxed);
}

void Histogram::observe(double V) {
  size_t I = std::upper_bound(Bounds.begin(), Bounds.end(), V) -
             Bounds.begin();
  // upper_bound gives the first bound strictly greater than V, but
  // Prometheus buckets are `le` (inclusive): V exactly on a bound
  // belongs in that bound's bucket.
  if (I > 0 && Bounds[I - 1] == V)
    --I;
  Buckets[I].fetch_add(1, std::memory_order_relaxed);
  atomicSumAdd(SumBits, V);
}

uint64_t Histogram::count() const {
  uint64_t N = 0;
  for (size_t I = 0; I <= Bounds.size(); ++I)
    N += Buckets[I].load(std::memory_order_relaxed);
  return N;
}

double Histogram::sum() const { return atomicSumLoad(SumBits); }

double Histogram::quantile(double Q) const {
  uint64_t Total = count();
  if (Total == 0)
    return 0;
  double Rank = Q * static_cast<double>(Total);
  uint64_t Seen = 0;
  for (size_t I = 0; I <= Bounds.size(); ++I) {
    uint64_t InBucket = Buckets[I].load(std::memory_order_relaxed);
    if (Seen + InBucket >= Rank && InBucket > 0) {
      double Lo = I == 0 ? 0 : Bounds[I - 1];
      // The +Inf bucket has no upper edge; report its lower edge, as
      // histogram_quantile() does.
      if (I == Bounds.size())
        return Lo;
      double Hi = Bounds[I];
      double Within = (Rank - static_cast<double>(Seen)) /
                      static_cast<double>(InBucket);
      return Lo + (Hi - Lo) * Within;
    }
    Seen += InBucket;
  }
  return Bounds.empty() ? 0 : Bounds.back();
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot S;
  S.Count = count();
  S.Sum = sum();
  if (S.Count > 0) {
    S.P50 = quantile(0.50);
    S.P90 = quantile(0.90);
    S.P99 = quantile(0.99);
  }
  return S;
}

Histogram &HistogramFamily::withLabel(const std::string &LabelValue) {
  std::lock_guard<std::mutex> Lock(Mu);
  for (const std::unique_ptr<Histogram> &H : Members)
    if (H->LabelValue == LabelValue)
      return *H;
  Members.emplace_back(
      new Histogram(Name, Help, Bounds, LabelKey, LabelValue));
  return *Members.back();
}

std::vector<Histogram *> HistogramFamily::all() const {
  std::lock_guard<std::mutex> Lock(Mu);
  std::vector<Histogram *> Out;
  Out.reserve(Members.size());
  for (const std::unique_ptr<Histogram> &H : Members)
    Out.push_back(H.get());
  return Out;
}

Counter &MetricsRegistry::counter(const std::string &Name,
                                  const std::string &Help) {
  std::lock_guard<std::mutex> Lock(Mu);
  for (Entry &E : Entries)
    if (E.K == Entry::Kind::Counter && E.C->Name == Name)
      return *E.C;
  Entries.push_back(Entry{Entry::Kind::Counter,
                          std::unique_ptr<Counter>(new Counter(Name, Help)),
                          nullptr, nullptr, nullptr});
  return *Entries.back().C;
}

Gauge &MetricsRegistry::gauge(const std::string &Name,
                              const std::string &Help) {
  std::lock_guard<std::mutex> Lock(Mu);
  for (Entry &E : Entries)
    if (E.K == Entry::Kind::Gauge && E.G->Name == Name)
      return *E.G;
  Entries.push_back(Entry{Entry::Kind::Gauge, nullptr,
                          std::unique_ptr<Gauge>(new Gauge(Name, Help)),
                          nullptr, nullptr});
  return *Entries.back().G;
}

Histogram &MetricsRegistry::histogram(const std::string &Name,
                                      const std::string &Help,
                                      std::vector<double> Bounds) {
  std::lock_guard<std::mutex> Lock(Mu);
  for (Entry &E : Entries)
    if (E.K == Entry::Kind::Histogram && E.H->Name == Name)
      return *E.H;
  Entries.push_back(
      Entry{Entry::Kind::Histogram, nullptr, nullptr,
            std::unique_ptr<Histogram>(
                new Histogram(Name, Help, std::move(Bounds))),
            nullptr});
  return *Entries.back().H;
}

HistogramFamily &MetricsRegistry::histogramFamily(
    const std::string &Name, const std::string &Help,
    const std::string &LabelKey, std::vector<double> Bounds) {
  std::lock_guard<std::mutex> Lock(Mu);
  for (Entry &E : Entries)
    if (E.K == Entry::Kind::Family && E.F->Name == Name)
      return *E.F;
  Entries.push_back(
      Entry{Entry::Kind::Family, nullptr, nullptr, nullptr,
            std::unique_ptr<HistogramFamily>(new HistogramFamily(
                Name, Help, LabelKey, std::move(Bounds)))});
  return *Entries.back().F;
}

namespace {

void renderHistogram(std::string &Out, const Histogram &H,
                     const std::string &Name,
                     const std::vector<double> &Bounds,
                     const std::string &LabelKey,
                     const std::string &LabelValue,
                     const std::unique_ptr<std::atomic<uint64_t>[]> &Buckets) {
  std::string Label;
  std::string LabelOnly;
  if (!LabelKey.empty()) {
    LabelOnly = LabelKey + "=\"" + LabelValue + "\"";
    Label = LabelOnly + ",";
  }
  uint64_t Cumulative = 0;
  char Buf[160];
  for (size_t I = 0; I < Bounds.size(); ++I) {
    Cumulative += Buckets[I].load(std::memory_order_relaxed);
    std::snprintf(Buf, sizeof(Buf), "%s_bucket{%sle=\"%s\"} %llu\n",
                  Name.c_str(), Label.c_str(),
                  promDouble(Bounds[I]).c_str(),
                  static_cast<unsigned long long>(Cumulative));
    Out += Buf;
  }
  Cumulative += Buckets[Bounds.size()].load(std::memory_order_relaxed);
  std::snprintf(Buf, sizeof(Buf), "%s_bucket{%sle=\"+Inf\"} %llu\n",
                Name.c_str(), Label.c_str(),
                static_cast<unsigned long long>(Cumulative));
  Out += Buf;
  std::string Braced = LabelOnly.empty() ? "" : "{" + LabelOnly + "}";
  std::snprintf(Buf, sizeof(Buf), "%s_sum%s %s\n", Name.c_str(),
                Braced.c_str(), promDouble(H.sum()).c_str());
  Out += Buf;
  std::snprintf(Buf, sizeof(Buf), "%s_count%s %llu\n", Name.c_str(),
                Braced.c_str(), static_cast<unsigned long long>(Cumulative));
  Out += Buf;
}

} // namespace

std::string MetricsRegistry::renderPrometheus() const {
  std::lock_guard<std::mutex> Lock(Mu);
  std::string Out;
  char Buf[160];
  for (const Entry &E : Entries) {
    switch (E.K) {
    case Entry::Kind::Counter:
      Out += "# HELP " + E.C->Name + " " + E.C->Help + "\n";
      Out += "# TYPE " + E.C->Name + " counter\n";
      std::snprintf(Buf, sizeof(Buf), "%s %llu\n", E.C->Name.c_str(),
                    static_cast<unsigned long long>(E.C->value()));
      Out += Buf;
      break;
    case Entry::Kind::Gauge:
      Out += "# HELP " + E.G->Name + " " + E.G->Help + "\n";
      Out += "# TYPE " + E.G->Name + " gauge\n";
      std::snprintf(Buf, sizeof(Buf), "%s %lld\n", E.G->Name.c_str(),
                    static_cast<long long>(E.G->value()));
      Out += Buf;
      break;
    case Entry::Kind::Histogram:
      Out += "# HELP " + E.H->Name + " " + E.H->Help + "\n";
      Out += "# TYPE " + E.H->Name + " histogram\n";
      renderHistogram(Out, *E.H, E.H->Name, E.H->Bounds, E.H->LabelKey,
                      E.H->LabelValue, E.H->Buckets);
      break;
    case Entry::Kind::Family: {
      Out += "# HELP " + E.F->Name + " " + E.F->Help + "\n";
      Out += "# TYPE " + E.F->Name + " histogram\n";
      for (Histogram *H : E.F->all())
        renderHistogram(Out, *H, H->Name, H->Bounds, H->LabelKey,
                        H->LabelValue, H->Buckets);
      break;
    }
    }
  }
  return Out;
}

MetricsRegistry &MetricsRegistry::global() {
  static MetricsRegistry Reg;
  return Reg;
}

} // namespace obs
} // namespace checkfence
