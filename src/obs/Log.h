//===- obs/Log.h - Leveled structured logging -----------------------------===//
//
// A minimal leveled logger for the library and the daemon. One line per
// record:
//
//   2026-08-07T12:34:56.789Z warn  [server] queue full, rejecting request
//
// The level check is a single relaxed atomic load, so disabled levels
// cost one branch. The default level is Warn: library diagnostics that
// previously went to stderr unconditionally (catalog parse failures,
// unknown-implementation aborts) still print by default, but callers can
// silence or expand them. The sink is replaceable for tests and for the
// daemon (which may later want file output); the default sink writes to
// stderr.
//
//===----------------------------------------------------------------------===//

#ifndef CHECKFENCE_OBS_LOG_H
#define CHECKFENCE_OBS_LOG_H

#include <functional>
#include <string>

namespace checkfence {
namespace obs {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Current minimum level; records below it are dropped.
LogLevel logLevel();
void setLogLevel(LogLevel L);

/// Parses "debug"/"info"/"warn"/"error"/"off" (case-sensitive). Returns
/// false and leaves `Out` untouched on anything else.
bool parseLogLevel(const std::string &Text, LogLevel &Out);
const char *logLevelName(LogLevel L);

/// Replaces the sink (nullptr restores the default stderr sink). The
/// sink receives the fully formatted line, newline included.
void setLogSink(std::function<void(const std::string &)> Sink);

/// True when `L` would be emitted — lets callers skip building
/// expensive messages.
bool logEnabled(LogLevel L);

/// Emits one record. `Subsystem` is a short static tag ("server",
/// "harness", "impls", ...).
void log(LogLevel L, const char *Subsystem, const std::string &Message);

/// printf-style convenience.
#if defined(__GNUC__) || defined(__clang__)
__attribute__((format(printf, 3, 4)))
#endif
void logf(LogLevel L, const char *Subsystem, const char *Fmt, ...);

} // namespace obs
} // namespace checkfence

#endif // CHECKFENCE_OBS_LOG_H
