//===- obs/Log.cpp - Leveled structured logging implementation ------------===//

#include "obs/Log.h"

#include <atomic>
#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <ctime>
#include <mutex>

namespace checkfence {
namespace obs {

namespace {

std::atomic<int> CurrentLevel{static_cast<int>(LogLevel::Warn)};

std::mutex SinkMu;
std::function<void(const std::string &)> CurrentSink;

void defaultSink(const std::string &Line) {
  std::fwrite(Line.data(), 1, Line.size(), stderr);
  std::fflush(stderr);
}

std::string timestampUtc() {
  using namespace std::chrono;
  system_clock::time_point Now = system_clock::now();
  std::time_t Secs = system_clock::to_time_t(Now);
  int Millis = static_cast<int>(
      duration_cast<milliseconds>(Now.time_since_epoch()).count() % 1000);
  std::tm Tm{};
#if defined(_WIN32)
  gmtime_s(&Tm, &Secs);
#else
  gmtime_r(&Secs, &Tm);
#endif
  char Buf[40];
  std::snprintf(Buf, sizeof(Buf), "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                Tm.tm_year + 1900, Tm.tm_mon + 1, Tm.tm_mday, Tm.tm_hour,
                Tm.tm_min, Tm.tm_sec, Millis);
  return Buf;
}

} // namespace

LogLevel logLevel() {
  return static_cast<LogLevel>(CurrentLevel.load(std::memory_order_relaxed));
}

void setLogLevel(LogLevel L) {
  CurrentLevel.store(static_cast<int>(L), std::memory_order_relaxed);
}

bool parseLogLevel(const std::string &Text, LogLevel &Out) {
  if (Text == "debug")
    Out = LogLevel::Debug;
  else if (Text == "info")
    Out = LogLevel::Info;
  else if (Text == "warn")
    Out = LogLevel::Warn;
  else if (Text == "error")
    Out = LogLevel::Error;
  else if (Text == "off")
    Out = LogLevel::Off;
  else
    return false;
  return true;
}

const char *logLevelName(LogLevel L) {
  switch (L) {
  case LogLevel::Debug:
    return "debug";
  case LogLevel::Info:
    return "info";
  case LogLevel::Warn:
    return "warn";
  case LogLevel::Error:
    return "error";
  case LogLevel::Off:
    return "off";
  }
  return "?";
}

void setLogSink(std::function<void(const std::string &)> Sink) {
  std::lock_guard<std::mutex> Lock(SinkMu);
  CurrentSink = std::move(Sink);
}

bool logEnabled(LogLevel L) {
  return static_cast<int>(L) >= CurrentLevel.load(std::memory_order_relaxed) &&
         L != LogLevel::Off;
}

void log(LogLevel L, const char *Subsystem, const std::string &Message) {
  if (!logEnabled(L))
    return;
  std::string Line = timestampUtc();
  Line += " ";
  std::string Level = logLevelName(L);
  // Pad level names to a fixed width so columns line up.
  Level.resize(6, ' ');
  Line += Level;
  Line += "[";
  Line += Subsystem ? Subsystem : "?";
  Line += "] ";
  Line += Message;
  Line += "\n";
  std::lock_guard<std::mutex> Lock(SinkMu);
  if (CurrentSink)
    CurrentSink(Line);
  else
    defaultSink(Line);
}

void logf(LogLevel L, const char *Subsystem, const char *Fmt, ...) {
  if (!logEnabled(L))
    return;
  char Buf[1024];
  va_list Args;
  va_start(Args, Fmt);
  std::vsnprintf(Buf, sizeof(Buf), Fmt, Args);
  va_end(Args);
  log(L, Subsystem, Buf);
}

} // namespace obs
} // namespace checkfence
