//===- obs/Metrics.h - Counters, gauges, histograms, Prometheus text ------===//
//
// A small process-wide metrics registry. Three instrument kinds:
//
//  * Counter   - monotone u64, lock-free increment.
//  * Gauge     - i64 set/add, lock-free.
//  * Histogram - fixed bucket bounds, atomic per-bucket counts plus a
//                CAS-accumulated double sum; renders the standard
//                Prometheus `_bucket`/`_sum`/`_count` series with
//                cumulative `le` labels including `+Inf`, and supports
//                quantile estimation by linear interpolation within a
//                bucket (the same estimate Prometheus'
//                histogram_quantile() computes server-side).
//
// Instruments are registered once (construction order = render order,
// so /metrics output is deterministic given the same sequence of
// observations) and then updated without any registry lock. A histogram
// *family* shares help/type text across label values of one label key
// (e.g. checkfence_request_seconds{kind="check"}).
//
// The registry is available process-wide via MetricsRegistry::global();
// components that need isolation (each CheckServer instance, tests) own
// their own registry instead.
//
//===----------------------------------------------------------------------===//

#ifndef CHECKFENCE_OBS_METRICS_H
#define CHECKFENCE_OBS_METRICS_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace checkfence {
namespace obs {

class MetricsRegistry;

/// Monotone counter. `set()` exists for mirroring an external source of
/// truth (e.g. server atomics snapshot) into the registry at scrape
/// time; normal instrumentation uses `add()`.
class Counter {
public:
  void add(uint64_t N = 1) { Value.fetch_add(N, std::memory_order_relaxed); }
  void set(uint64_t N) { Value.store(N, std::memory_order_relaxed); }
  uint64_t value() const { return Value.load(std::memory_order_relaxed); }

private:
  friend class MetricsRegistry;
  Counter(std::string Name, std::string Help)
      : Name(std::move(Name)), Help(std::move(Help)) {}
  std::string Name;
  std::string Help;
  std::atomic<uint64_t> Value{0};
};

/// Instantaneous value.
class Gauge {
public:
  void set(int64_t N) { Value.store(N, std::memory_order_relaxed); }
  void add(int64_t N) { Value.fetch_add(N, std::memory_order_relaxed); }
  int64_t value() const { return Value.load(std::memory_order_relaxed); }

private:
  friend class MetricsRegistry;
  Gauge(std::string Name, std::string Help)
      : Name(std::move(Name)), Help(std::move(Help)) {}
  std::string Name;
  std::string Help;
  std::atomic<int64_t> Value{0};
};

/// Summary of a histogram's state at one instant.
struct HistogramSnapshot {
  uint64_t Count = 0;
  double Sum = 0;
  /// Estimated quantiles (linear interpolation inside the bucket that
  /// crosses rank q*Count). 0 when Count == 0.
  double P50 = 0, P90 = 0, P99 = 0;
};

/// Bucketed histogram with fixed upper bounds (exclusive of +Inf, which
/// is implicit). Thread-safe observation, no locks.
class Histogram {
public:
  void observe(double V);
  uint64_t count() const;
  double sum() const;
  /// Quantile estimate in [0,1]; 0 when empty.
  double quantile(double Q) const;
  HistogramSnapshot snapshot() const;
  const std::string &labelValue() const { return LabelValue; }

private:
  friend class MetricsRegistry;
  friend class HistogramFamily;
  Histogram(std::string Name, std::string Help, std::vector<double> Bounds,
            std::string LabelKey = std::string(),
            std::string LabelValue = std::string());
  std::string Name;
  std::string Help;
  std::string LabelKey;   ///< "" for an unlabelled histogram
  std::string LabelValue;
  std::vector<double> Bounds;
  /// One count per finite bound plus the +Inf overflow bucket.
  std::unique_ptr<std::atomic<uint64_t>[]> Buckets;
  std::atomic<uint64_t> SumBits{0}; ///< bit pattern of the double sum
};

/// Histograms sharing one metric name, distinguished by one label.
class HistogramFamily {
public:
  /// The histogram for `LabelValue`, creating it on first use. Creation
  /// takes the family lock; the returned pointer is stable thereafter,
  /// so callers on hot paths should resolve it once and cache it.
  Histogram &withLabel(const std::string &LabelValue);
  /// All histograms, in creation order.
  std::vector<Histogram *> all() const;

private:
  friend class MetricsRegistry;
  HistogramFamily(std::string Name, std::string Help, std::string LabelKey,
                  std::vector<double> Bounds)
      : Name(std::move(Name)), Help(std::move(Help)),
        LabelKey(std::move(LabelKey)), Bounds(std::move(Bounds)) {}
  std::string Name;
  std::string Help;
  std::string LabelKey;
  std::vector<double> Bounds;
  mutable std::mutex Mu;
  std::vector<std::unique_ptr<Histogram>> Members;
};

/// Latency bucket bounds (seconds) shared by the request and queue-wait
/// histograms: 1ms .. 120s, roughly 1-2.5-5 per decade.
const std::vector<double> &latencyBuckets();

/// Owns instruments and renders them in Prometheus text format.
/// Registration locks; updates via the returned references do not.
class MetricsRegistry {
public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry &) = delete;
  MetricsRegistry &operator=(const MetricsRegistry &) = delete;

  Counter &counter(const std::string &Name, const std::string &Help);
  Gauge &gauge(const std::string &Name, const std::string &Help);
  Histogram &histogram(const std::string &Name, const std::string &Help,
                       std::vector<double> Bounds);
  HistogramFamily &histogramFamily(const std::string &Name,
                                   const std::string &Help,
                                   const std::string &LabelKey,
                                   std::vector<double> Bounds);

  /// Prometheus text exposition: every instrument with # HELP / # TYPE
  /// headers, in registration order.
  std::string renderPrometheus() const;

  /// The process-wide registry.
  static MetricsRegistry &global();

private:
  struct Entry {
    enum class Kind { Counter, Gauge, Histogram, Family } K;
    std::unique_ptr<Counter> C;
    std::unique_ptr<Gauge> G;
    std::unique_ptr<Histogram> H;
    std::unique_ptr<HistogramFamily> F;
  };
  mutable std::mutex Mu;
  std::vector<Entry> Entries;
};

} // namespace obs
} // namespace checkfence

#endif // CHECKFENCE_OBS_METRICS_H
