//===- obs/Trace.cpp - Span tracer implementation -------------------------===//

#include "obs/Trace.h"

#include "support/Json.h"
#include "support/JsonParse.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>

namespace checkfence {
namespace obs {

namespace {

thread_local Tracer *CurrentTracer = nullptr;

/// Stable small thread ids, assigned in first-use order. std::thread::id
/// values are opaque and unstable; small dense ids keep trace output
/// readable and per-run reproducible in single-threaded paths.
std::atomic<uint32_t> NextTid{1};
thread_local uint32_t ThisTid = 0;

} // namespace

Tracer *currentTracer() { return CurrentTracer; }

uint32_t currentTraceTid() {
  if (ThisTid == 0)
    ThisTid = NextTid.fetch_add(1, std::memory_order_relaxed);
  return ThisTid;
}

TraceContext::TraceContext(Tracer *T) {
  if (!T)
    return;
  Prev = CurrentTracer;
  CurrentTracer = T;
  Installed = true;
}

TraceContext::~TraceContext() {
  if (Installed)
    CurrentTracer = Prev;
}

Tracer::Tracer() : Epoch(std::chrono::steady_clock::now()) {}

uint64_t Tracer::nowNs() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - Epoch)
          .count());
}

Tracer::Shard &Tracer::shardForThisThread() const {
  return Shards[currentTraceTid() % NumShards];
}

void Tracer::record(const char *Cat, std::string Name, uint64_t StartNs,
                    uint64_t EndNs, std::string Args) {
  TraceEvent Ev;
  Ev.Name = std::move(Name);
  Ev.Cat = Cat ? Cat : "";
  Ev.StartNs = StartNs;
  Ev.DurNs = EndNs >= StartNs ? EndNs - StartNs : 0;
  Ev.Tid = currentTraceTid();
  Ev.Pid = 0;
  Ev.Args = std::move(Args);
  Shard &S = shardForThisThread();
  std::lock_guard<std::mutex> Lock(S.Mu);
  S.Events.push_back(std::move(Ev));
}

void Tracer::recordForeign(const TraceEvent &In, uint32_t Pid,
                           int64_t ShiftNs) {
  TraceEvent Ev = In;
  Ev.Pid = Pid;
  int64_t Shifted = static_cast<int64_t>(Ev.StartNs) + ShiftNs;
  Ev.StartNs = Shifted > 0 ? static_cast<uint64_t>(Shifted) : 0;
  Shard &S = shardForThisThread();
  std::lock_guard<std::mutex> Lock(S.Mu);
  S.Events.push_back(std::move(Ev));
}

size_t Tracer::eventCount() const {
  size_t N = 0;
  for (const Shard &S : Shards) {
    std::lock_guard<std::mutex> Lock(S.Mu);
    N += S.Events.size();
  }
  return N;
}

std::vector<TraceEvent> Tracer::events() const {
  std::vector<TraceEvent> All;
  for (const Shard &S : Shards) {
    std::lock_guard<std::mutex> Lock(S.Mu);
    All.insert(All.end(), S.Events.begin(), S.Events.end());
  }
  std::stable_sort(All.begin(), All.end(),
                   [](const TraceEvent &A, const TraceEvent &B) {
                     if (A.Pid != B.Pid)
                       return A.Pid < B.Pid;
                     if (A.Tid != B.Tid)
                       return A.Tid < B.Tid;
                     if (A.StartNs != B.StartNs)
                       return A.StartNs < B.StartNs;
                     // Longer spans first so parents precede children.
                     return A.DurNs > B.DurNs;
                   });
  return All;
}

namespace {

std::string eventJson(const TraceEvent &Ev) {
  support::JsonObject O;
  O.field("name", Ev.Name)
      .field("cat", Ev.Cat.empty() ? std::string("checkfence") : Ev.Cat)
      .field("ph", "X")
      // Chrome trace timestamps are microseconds; keep sub-microsecond
      // resolution with three decimals.
      .fixed("ts", static_cast<double>(Ev.StartNs) / 1000.0, 3)
      .fixed("dur", static_cast<double>(Ev.DurNs) / 1000.0, 3)
      .field("pid", static_cast<long long>(Ev.Pid))
      .field("tid", static_cast<long long>(Ev.Tid));
  if (!Ev.Args.empty())
    O.raw("args", Ev.Args);
  return O.str();
}

std::string processName(uint32_t Pid) {
  return Pid == 0 ? "checkfence" : "checkfenced (remote)";
}

} // namespace

std::string Tracer::eventsJson() const {
  support::JsonArray Arr;
  for (const TraceEvent &Ev : events())
    Arr.item(eventJson(Ev));
  return Arr.str();
}

std::string Tracer::json() const {
  std::vector<TraceEvent> All = events();
  std::string Out = "{\"traceEvents\": [";
  bool First = true;
  // Metadata events naming each process lane, so Perfetto labels the
  // client and server timelines.
  uint32_t LastPid = ~0u;
  for (const TraceEvent &Ev : All) {
    if (Ev.Pid != LastPid) {
      LastPid = Ev.Pid;
      support::JsonObject Meta;
      Meta.field("name", "process_name")
          .field("ph", "M")
          .field("pid", static_cast<long long>(Ev.Pid))
          .raw("args", support::JsonObject()
                           .field("name", processName(Ev.Pid))
                           .str());
      Out += First ? "\n  " : ",\n  ";
      Out += Meta.str();
      First = false;
    }
    Out += First ? "\n  " : ",\n  ";
    Out += eventJson(Ev);
    First = false;
  }
  Out += "\n], \"displayTimeUnit\": \"ms\"}\n";
  return Out;
}

bool Tracer::writeFile(const std::string &Path) const {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  if (!Out)
    return false;
  Out << json();
  return static_cast<bool>(Out);
}

bool Tracer::parseEvents(const std::string &Text,
                         std::vector<TraceEvent> &Out) {
  support::JsonValue Doc;
  std::string Err;
  if (!support::parseJson(Text, Doc, Err))
    return false;
  return parseEvents(Doc, Out);
}

bool Tracer::parseEvents(const support::JsonValue &Doc,
                         std::vector<TraceEvent> &Out) {
  if (!Doc.isArray())
    return false;
  for (const support::JsonValue &Item : Doc.Items) {
    if (!Item.isObject())
      return false;
    TraceEvent Ev;
    if (const support::JsonValue *V = Item.find("name"))
      Ev.Name = V->asString();
    if (const support::JsonValue *V = Item.find("cat"))
      Ev.Cat = V->asString();
    if (const support::JsonValue *V = Item.find("ts"))
      Ev.StartNs = static_cast<uint64_t>(V->asDouble() * 1000.0);
    if (const support::JsonValue *V = Item.find("dur"))
      Ev.DurNs = static_cast<uint64_t>(V->asDouble() * 1000.0);
    if (const support::JsonValue *V = Item.find("tid"))
      Ev.Tid = static_cast<uint32_t>(V->asU64());
    if (const support::JsonValue *V = Item.find("pid"))
      Ev.Pid = static_cast<uint32_t>(V->asU64());
    if (const support::JsonValue *V = Item.find("args")) {
      // Re-render the args object so imported events round-trip through
      // the same writer as local ones.
      if (V->isObject()) {
        support::JsonObject O;
        for (const auto &M : V->Members) {
          if (M.second.isString())
            O.field(M.first.c_str(), M.second.asString());
          else if (M.second.isBool())
            O.field(M.first.c_str(), M.second.asBool());
          else if (M.second.isNumber())
            O.field(M.first.c_str(),
                    static_cast<long long>(M.second.asI64()));
        }
        Ev.Args = O.str();
      }
    }
    Out.push_back(std::move(Ev));
  }
  return true;
}

} // namespace obs
} // namespace checkfence
