//===--- CriticalCycles.cpp - delay-set robustness analysis -----------------===//
//
// Part of the CheckFence reproduction (PLDI'07).
//
//===----------------------------------------------------------------------===//

#include "analysis/CriticalCycles.h"

#include "support/Format.h"

#include <algorithm>
#include <deque>
#include <map>
#include <set>

using namespace checkfence;
using namespace checkfence::analysis;
using namespace checkfence::trans;

DelaySet checkfence::analysis::delaySetFor(const memmodel::ModelParams &M) {
  DelaySet D;
  D.LoadLoad = !M.OrderLoadLoad;
  D.LoadStore = !M.OrderLoadStore;
  D.StoreLoad = !M.OrderStoreLoad;
  D.StoreStore = !M.OrderStoreStore;
  D.Forwarding = M.effectiveForwarding();
  D.MultiCopyAtomic = M.MultiCopyAtomic;
  return D;
}

namespace {

/// True when \p G is truthy in every execution: its value set contains
/// only defined non-zero integers. Guards of straight-line code are the
/// constant 1; anything data-dependent stays conservative.
bool alwaysExecuted(const RangeInfo &R, ValueId G) {
  if (G < 0 || G >= static_cast<ValueId>(R.DefSets.size()))
    return false;
  const ValueSet &VS = R.DefSets[G];
  if (VS.Top || VS.Values.empty())
    return false;
  for (const lsl::Value &V : VS.Values)
    if (!V.isInt() || V.intValue() == 0)
      return false;
  return true;
}

/// Sorted candidate-cell intersection (same test the encoder's alias
/// pruning uses).
bool cellsIntersect(const RangeInfo &R, int EventA, int EventB) {
  const std::vector<int> &A = R.EventCells[EventA];
  const std::vector<int> &B = R.EventCells[EventB];
  size_t I = 0, J = 0;
  while (I < A.size() && J < B.size()) {
    if (A[I] == B[J])
      return true;
    if (A[I] < B[J])
      ++I;
    else
      ++J;
  }
  return false;
}

/// Must-alias: both address sets are the same singleton pointer (the
/// statically decided case of Relaxed axiom 1).
bool mustAlias(const RangeInfo &R, const FlatEvent &A, const FlatEvent &B) {
  const ValueSet &SA = R.DefSets[A.Addr];
  const ValueSet &SB = R.DefSets[B.Addr];
  return SA.isSingleton() && SB.isSingleton() &&
         *SA.Values.begin() == *SB.Values.begin() &&
         SA.Values.begin()->isPtr();
}

lsl::FenceKind fenceKindFor(bool EarlierIsLoad, bool LaterIsLoad) {
  if (EarlierIsLoad)
    return LaterIsLoad ? lsl::FenceKind::LoadLoad
                       : lsl::FenceKind::LoadStore;
  return LaterIsLoad ? lsl::FenceKind::StoreLoad
                     : lsl::FenceKind::StoreStore;
}

/// The innermost source line of \p E inside [MinLine, MaxLine], or -1.
/// Accesses inlined from shared builtins attribute to their call sites,
/// innermost first — the same policy FenceSynth uses for trace entries.
int attributedLine(const FlatEvent &E, const AnalysisOptions &Opts) {
  if (E.Loc.Line >= Opts.MinLine && E.Loc.Line <= Opts.MaxLine)
    return E.Loc.Line;
  for (auto It = E.CallLines.rbegin(); It != E.CallLines.rend(); ++It)
    if (*It >= Opts.MinLine && *It <= Opts.MaxLine)
      return *It;
  return -1;
}

CycleNode nodeFor(const FlatProgram &P, int EventIdx) {
  const FlatEvent &E = P.Events[EventIdx];
  CycleNode N;
  N.EventIndex = EventIdx;
  N.Thread = E.Thread;
  N.IndexInThread = E.IndexInThread;
  N.IsStore = E.isStore();
  N.Line = E.Loc.Line;
  return N;
}

/// Per-thread accesses plus the enforced-order closure among them.
struct ThreadGraph {
  std::vector<int> Events;        ///< access event indices, po order
  std::vector<char> Enforced;     ///< n*n matrix, row-major
  bool enforced(size_t I, size_t J) const {
    return Enforced[I * Events.size() + J] != 0;
  }
};

ThreadGraph buildThreadGraph(const FlatProgram &P, const RangeInfo &R,
                             const memmodel::ModelParams &M,
                             const std::vector<int> &AccessEvents,
                             const std::vector<int> &FenceEvents) {
  ThreadGraph G;
  G.Events = AccessEvents;
  size_t N = G.Events.size();
  G.Enforced.assign(N * N, 0);
  auto Set = [&](size_t I, size_t J) { G.Enforced[I * N + J] = 1; };

  if (M.fullProgramOrder()) {
    for (size_t I = 0; I < N; ++I)
      for (size_t J = I + 1; J < N; ++J)
        Set(I, J);
    return G;
  }

  for (size_t I = 0; I < N; ++I) {
    const FlatEvent &EA = P.Events[G.Events[I]];
    for (size_t J = I + 1; J < N; ++J) {
      const FlatEvent &EB = P.Events[G.Events[J]];
      // The model's unconditional program-order edge bits.
      if (M.ordersEdge(EA.isLoad(), EB.isLoad())) {
        Set(I, J);
        continue;
      }
      // Atomic-block interiors execute in program order.
      if (EA.AtomicId >= 0 && EA.AtomicId == EB.AtomicId) {
        Set(I, J);
        continue;
      }
      // Relaxed axiom 1, statically decided: must-alias, later is store.
      if (EB.isStore() && mustAlias(R, EA, EB))
        Set(I, J);
    }
  }

  // Always-executed fences order matching-kind accesses around them.
  for (int F : FenceEvents) {
    const FlatEvent &EF = P.Events[F];
    if (!alwaysExecuted(R, EF.Guard))
      continue;
    bool XIsLoad = EF.FenceK == lsl::FenceKind::LoadLoad ||
                   EF.FenceK == lsl::FenceKind::LoadStore;
    bool YIsLoad = EF.FenceK == lsl::FenceKind::LoadLoad ||
                   EF.FenceK == lsl::FenceKind::StoreLoad;
    for (size_t I = 0; I < N; ++I) {
      const FlatEvent &EA = P.Events[G.Events[I]];
      if (EA.isLoad() != XIsLoad || EA.IndexInThread > EF.IndexInThread)
        continue;
      for (size_t J = I + 1; J < N; ++J) {
        const FlatEvent &EB = P.Events[G.Events[J]];
        if (EB.isLoad() == YIsLoad && EB.IndexInThread > EF.IndexInThread)
          Set(I, J);
      }
    }
  }

  // Transitive closure: guaranteed <M edges compose (<M is total).
  for (size_t K = 0; K < N; ++K)
    for (size_t I = 0; I < N; ++I) {
      if (!G.Enforced[I * N + K])
        continue;
      for (size_t J = 0; J < N; ++J)
        if (G.Enforced[K * N + J])
          G.Enforced[I * N + J] = 1;
    }
  return G;
}

/// The cycle graph: program-order successor chains plus inter-thread
/// may-alias conflict edges (at least one store). The init thread is
/// excluded from conflicts — it is unconditionally <M-before every other
/// thread, so no cycle can pass through it.
struct CycleGraph {
  std::vector<int> Nodes; ///< access event indices (global po order)
  std::vector<std::vector<std::pair<int, bool>>> Adj; ///< (node, IsConflict)
  std::vector<int> Comp; ///< SCC id per node
  std::vector<int> NodeOf; ///< event index -> node id (-1 for fences)
};

CycleGraph buildCycleGraph(const FlatProgram &P, const RangeInfo &R,
                           const std::vector<ThreadGraph> &Threads) {
  CycleGraph G;
  G.NodeOf.assign(P.Events.size(), -1);
  for (const ThreadGraph &T : Threads)
    for (int E : T.Events) {
      G.NodeOf[E] = static_cast<int>(G.Nodes.size());
      G.Nodes.push_back(E);
    }
  size_t N = G.Nodes.size();
  G.Adj.resize(N);

  // Program order: consecutive same-thread accesses chain the rest.
  for (const ThreadGraph &T : Threads)
    for (size_t I = 0; I + 1 < T.Events.size(); ++I)
      G.Adj[G.NodeOf[T.Events[I]]].push_back(
          {G.NodeOf[T.Events[I + 1]], false});

  // Conflict edges, both directions.
  for (size_t U = 0; U < N; ++U) {
    const FlatEvent &EU = P.Events[G.Nodes[U]];
    if (P.ThreadZeroIsInit && EU.Thread == 0)
      continue;
    for (size_t V = U + 1; V < N; ++V) {
      const FlatEvent &EV = P.Events[G.Nodes[V]];
      if (EV.Thread == EU.Thread ||
          (P.ThreadZeroIsInit && EV.Thread == 0))
        continue;
      if (!EU.isStore() && !EV.isStore())
        continue;
      if (!cellsIntersect(R, G.Nodes[U], G.Nodes[V]))
        continue;
      G.Adj[U].push_back({static_cast<int>(V), true});
      G.Adj[V].push_back({static_cast<int>(U), true});
    }
  }
  for (auto &A : G.Adj)
    std::sort(A.begin(), A.end());

  // Iterative Tarjan SCC.
  G.Comp.assign(N, -1);
  std::vector<int> Index(N, -1), Low(N, 0), Stack, CallNode, CallEdge;
  std::vector<char> OnStack(N, 0);
  int NextIndex = 0, NextComp = 0;
  for (size_t Root = 0; Root < N; ++Root) {
    if (Index[Root] >= 0)
      continue;
    CallNode.push_back(static_cast<int>(Root));
    CallEdge.push_back(0);
    while (!CallNode.empty()) {
      int U = CallNode.back();
      if (CallEdge.back() == 0) {
        Index[U] = Low[U] = NextIndex++;
        Stack.push_back(U);
        OnStack[U] = 1;
      }
      bool Descended = false;
      while (CallEdge.back() < static_cast<int>(G.Adj[U].size())) {
        int V = G.Adj[U][CallEdge.back()].first;
        ++CallEdge.back();
        if (Index[V] < 0) {
          CallNode.push_back(V);
          CallEdge.push_back(0);
          Descended = true;
          break;
        }
        if (OnStack[V])
          Low[U] = std::min(Low[U], Index[V]);
      }
      if (Descended)
        continue;
      if (Low[U] == Index[U]) {
        for (;;) {
          int W = Stack.back();
          Stack.pop_back();
          OnStack[W] = 0;
          G.Comp[W] = NextComp;
          if (W == U)
            break;
        }
        ++NextComp;
      }
      CallNode.pop_back();
      CallEdge.pop_back();
      if (!CallNode.empty())
        Low[CallNode.back()] = std::min(Low[CallNode.back()], Low[U]);
    }
  }
  return G;
}

/// Shortest path From -> To by BFS (deterministic: sorted adjacency).
/// Returns the node sequence excluding From, including To, with each
/// step's conflict flag; empty when unreachable.
std::vector<std::pair<int, bool>> shortestPath(const CycleGraph &G, int From,
                                               int To) {
  std::vector<int> Parent(G.Nodes.size(), -1);
  std::vector<char> ParentConflict(G.Nodes.size(), 0);
  std::deque<int> Queue{From};
  std::vector<char> Seen(G.Nodes.size(), 0);
  Seen[From] = 1;
  while (!Queue.empty()) {
    int U = Queue.front();
    Queue.pop_front();
    if (U == To)
      break;
    for (auto [V, Conflict] : G.Adj[U]) {
      if (Seen[V])
        continue;
      Seen[V] = 1;
      Parent[V] = U;
      ParentConflict[V] = Conflict ? 1 : 0;
      Queue.push_back(V);
    }
  }
  std::vector<std::pair<int, bool>> Path;
  if (!Seen[To] || From == To)
    return Path;
  for (int U = To; U != From; U = Parent[U])
    Path.push_back({U, ParentConflict[U] != 0});
  std::reverse(Path.begin(), Path.end());
  return Path;
}

} // namespace

std::string CriticalCycle::str() const {
  std::string Out;
  for (size_t I = 0; I < Nodes.size(); ++I) {
    const CycleNode &N = Nodes[I];
    Out += formatString("t%d[%d]:%s@L%d", N.Thread, N.IndexInThread,
                        N.IsStore ? "store" : "load", N.Line);
    Out += I == 0 ? " =po:delayed=> "
                  : (EdgeIsConflict[I] ? " -cf-> " : " -po-> ");
  }
  if (!Nodes.empty()) {
    const CycleNode &N = Nodes[0];
    Out += formatString("t%d[%d]:%s@L%d", N.Thread, N.IndexInThread,
                        N.IsStore ? "store" : "load", N.Line);
  }
  return Out;
}

RobustnessResult
checkfence::analysis::analyzeRobustness(const FlatProgram &P,
                                        const RangeInfo &R,
                                        const memmodel::ModelParams &M,
                                        const AnalysisOptions &Opts) {
  RobustnessResult Res;
  if (!analysisEligible(M)) {
    Res.Reason = "model is outside the analysis fragment (serial-"
                 "granularity or non-multi-copy-atomic)";
    return Res;
  }
  Res.Eligible = true;

  // Split each thread's events into accesses and fences, in po order.
  std::vector<std::vector<int>> AccessesOf(P.NumThreads);
  std::vector<std::vector<int>> FencesOf(P.NumThreads);
  for (size_t E = 0; E < P.Events.size(); ++E) {
    if (P.Events[E].isAccess())
      AccessesOf[P.Events[E].Thread].push_back(static_cast<int>(E));
    else
      FencesOf[P.Events[E].Thread].push_back(static_cast<int>(E));
  }

  std::vector<ThreadGraph> Threads;
  Threads.reserve(P.NumThreads);
  for (int T = 0; T < P.NumThreads; ++T)
    Threads.push_back(
        buildThreadGraph(P, R, M, AccessesOf[T], FencesOf[T]));

  CycleGraph G = buildCycleGraph(P, R, Threads);

  std::map<SuggestedCut, int> Cuts;
  for (const ThreadGraph &TG : Threads) {
    size_t N = TG.Events.size();
    for (size_t I = 0; I < N; ++I) {
      const FlatEvent &EA = P.Events[TG.Events[I]];
      for (size_t J = I + 1; J < N; ++J) {
        if (TG.enforced(I, J))
          continue;
        const FlatEvent &EB = P.Events[TG.Events[J]];
        ++Res.DelayedPairs;

        // Without store forwarding a load may overtake a same-address
        // store of its own thread and read stale or uninitialized
        // memory — a per-location hazard needing no inter-thread cycle.
        bool Hazard = !M.StoreForwarding && EA.isStore() && EB.isLoad() &&
                      cellsIntersect(R, TG.Events[I], TG.Events[J]);
        if (Hazard)
          ++Res.CoherenceHazards;

        int U = G.NodeOf[TG.Events[I]];
        int V = G.NodeOf[TG.Events[J]];
        bool OnCycle = G.Comp[U] == G.Comp[V];
        if (OnCycle)
          ++Res.CyclePairs;
        if (!Hazard && !OnCycle)
          continue;

        // A fence inserted before the statement of any access strictly
        // between the pair (or before the later access itself) separates
        // the two, so every such line is a candidate cut and its score
        // counts the harmful pairs it separates. Scoring only the later
        // access's line would systematically misrank cuts: a fence
        // between two hot lines cuts the pairs of both.
        lsl::FenceKind Kind = fenceKindFor(EA.isLoad(), EB.isLoad());
        int PrevLine = -1; // lines repeat consecutively; cheap dedup
        std::set<int> PairLines;
        for (size_t K = I + 1; K <= J; ++K) {
          int Line = attributedLine(P.Events[TG.Events[K]], Opts);
          if (Line >= 0 && Line != PrevLine)
            PairLines.insert(Line);
          PrevLine = Line;
        }
        for (int Line : PairLines)
          ++Cuts[{Line, Kind}];

        if (OnCycle &&
            static_cast<int>(Res.Cycles.size()) < Opts.MaxCycleWitnesses) {
          std::vector<std::pair<int, bool>> Path = shortestPath(G, V, U);
          if (!Path.empty()) {
            CriticalCycle C;
            C.Nodes.push_back(nodeFor(P, TG.Events[I]));
            C.EdgeIsConflict.push_back(false); // the delayed po edge
            C.Nodes.push_back(nodeFor(P, TG.Events[J]));
            for (size_t S = 0; S + 1 < Path.size(); ++S) {
              C.EdgeIsConflict.push_back(Path[S].second);
              C.Nodes.push_back(nodeFor(P, G.Nodes[Path[S].first]));
            }
            C.EdgeIsConflict.push_back(Path.back().second);
            Res.Cycles.push_back(std::move(C));
          }
        }
      }
    }
  }

  for (const auto &[Cut, Score] : Cuts) {
    Res.Cuts.push_back(Cut);
    Res.CutScores.push_back(Score);
  }
  Res.Robust = Res.CyclePairs == 0 && Res.CoherenceHazards == 0;
  if (Res.Robust) {
    Res.Reason =
        Res.DelayedPairs == 0
            ? "no delay pairs: the model enforces every program-order edge"
            : formatString("%d delay pairs, none on a critical cycle",
                           Res.DelayedPairs);
  } else {
    Res.Reason = formatString("%d of %d delay pairs lie on a critical cycle",
                              Res.CyclePairs, Res.DelayedPairs);
    if (Res.CoherenceHazards > 0)
      Res.Reason += formatString(" (plus %d store-load coherence hazards)",
                                 Res.CoherenceHazards);
  }
  return Res;
}
