//===--- CriticalCycles.h - delay-set robustness analysis -------*- C++ -*-==//
//
// Part of the CheckFence reproduction (PLDI'07).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A static critical-cycle (Shasha–Snir delay-set) analysis over the
/// flattened program, in the style of "Don't sit on the fence" (Alglave,
/// Kroening, Nimal, Poetzl): build the conflict/program-order graph of a
/// FlatProgram, compute which program-order edges a ModelParams lattice
/// point may delay, and decide *robustness* — whether any execution the
/// weak model admits can differ observationally from a sequentially
/// consistent one.
///
/// The enforced-order relation mirrors exactly the constraints the SAT
/// encoder (memmodel::MemoryModelEncoder) emits *unconditionally*:
///
///   * the model's program-order edge bits (ordersEdge),
///   * atomic-block interiors,
///   * the statically decided cases of Relaxed axiom 1 (must-alias
///     same-thread pairs whose later access is a store), and
///   * fences that execute in every run (guard provably truthy), ordering
///     matching-kind accesses around them,
///
/// closed under transitivity (the memory order <M is total per execution,
/// so guaranteed edges compose). A same-thread program-order pair outside
/// this closure is a *delay pair*: the model may commit the two accesses
/// to <M out of order. A delay pair is harmful only when it lies on a
/// critical cycle — a cycle through program-order edges and inter-thread
/// conflict edges (may-alias accesses, at least one a store) — or, for
/// models without store forwarding, when a load may overtake a same-
/// address store of its own thread (a per-location coherence hazard with
/// no inter-thread cycle at all). When neither exists the program is
/// robust: every execution under the model is observationally equivalent
/// to a sequentially consistent one, so the weak-model verdict can be
/// inherited from sc. Everything here is a conservative over-
/// approximation (may-alias conflicts, guard-blind program order), so
/// "robust" is trustworthy while "not robust" may be a false alarm.
///
/// Consumers: the CheckSession phase-0 pruner (discharge the SAT
/// inclusion loop on robust cells), FenceSynth (seed candidate placements
/// from cycle cuts), and the `--analyze` lint surface (witness cycles and
/// per-lattice-point verdicts). See docs/ANALYSIS.md.
///
//===----------------------------------------------------------------------===//

#ifndef CHECKFENCE_ANALYSIS_CRITICALCYCLES_H
#define CHECKFENCE_ANALYSIS_CRITICALCYCLES_H

#include "memmodel/MemoryModel.h"
#include "trans/FlatProgram.h"
#include "trans/RangeAnalysis.h"

#include <climits>
#include <string>
#include <vector>

namespace checkfence {
namespace analysis {

/// True when \p M is within the analysis' semantic reach: a single total
/// memory order (multi-copy atomic) at plain access granularity. The
/// Serial mining model orders whole operation invocations, which the
/// event-level graph does not represent; non-MCA points have no single
/// <M for the delay-set argument to talk about.
constexpr bool analysisEligible(const memmodel::ModelParams &M) {
  return M.MultiCopyAtomic && !M.SerialOps;
}

/// The program-order edge kinds a lattice point may delay (the complement
/// of its order bits), plus the semantic flags the delay-set argument
/// cares about. Program-independent; see also RobustnessResult for the
/// program-specific delay pairs.
struct DelaySet {
  bool LoadLoad = false;
  bool LoadStore = false;
  bool StoreLoad = false;
  bool StoreStore = false;
  bool Forwarding = false;      ///< effectiveForwarding() of the point
  bool MultiCopyAtomic = true;

  int count() const {
    return (LoadLoad ? 1 : 0) + (LoadStore ? 1 : 0) + (StoreLoad ? 1 : 0) +
           (StoreStore ? 1 : 0);
  }
};

DelaySet delaySetFor(const memmodel::ModelParams &M);

struct AnalysisOptions {
  /// Source-line window for suggested cuts (FenceSynth's eligible region);
  /// accesses attribute through their inline call sites like the trace-
  /// based candidate mining does. Cuts outside the window are dropped
  /// (the verdict is unaffected).
  int MinLine = 0;
  int MaxLine = INT_MAX;
  /// Cap on rendered cycle witnesses (the verdict always accounts for
  /// every delay pair; only the witness list is truncated).
  int MaxCycleWitnesses = 16;
};

/// One node of a witness cycle.
struct CycleNode {
  int EventIndex = -1; ///< into FlatProgram::Events
  int Thread = 0;
  int IndexInThread = 0;
  bool IsStore = false;
  int Line = 0; ///< Loc.Line of the event (0 when unknown)
};

/// A critical cycle certifying one delay pair: Nodes[0] -> Nodes[1] is
/// the delayed program-order edge, and the remaining edges walk back to
/// Nodes[0] through program-order and conflict edges. Edge i runs from
/// Nodes[i] to Nodes[(i+1) % size].
struct CriticalCycle {
  std::vector<CycleNode> Nodes;
  std::vector<bool> EdgeIsConflict; ///< size() == Nodes.size()

  /// Deterministic one-line rendering ("t1[2]:store@L12 =po:delayed=> ...").
  std::string str() const;
};

/// A fence placement that cuts at least one critical cycle: a fence of
/// kind \p Kind directly before source line \p Line.
struct SuggestedCut {
  int Line = 0;
  lsl::FenceKind Kind = lsl::FenceKind::StoreStore;

  friend bool operator<(const SuggestedCut &A, const SuggestedCut &B) {
    if (A.Line != B.Line)
      return A.Line < B.Line;
    return static_cast<int>(A.Kind) < static_cast<int>(B.Kind);
  }
  friend bool operator==(const SuggestedCut &A, const SuggestedCut &B) {
    return A.Line == B.Line && A.Kind == B.Kind;
  }
};

struct RobustnessResult {
  /// analysisEligible(Model): when false nothing else is meaningful.
  bool Eligible = false;
  /// True when no delay pair lies on a critical cycle and no local
  /// coherence hazard exists: the program with its current fences cannot
  /// exhibit non-sequentially-consistent behaviour under the model.
  bool Robust = false;
  /// One-line explanation of the verdict (always set).
  std::string Reason;
  /// Same-thread program-order pairs outside the enforced-order closure.
  int DelayedPairs = 0;
  /// Delay pairs that lie on a critical cycle (harmful).
  int CyclePairs = 0;
  /// Store->load may-alias pairs a forwarding-free model lets the load
  /// overtake (harmful without any inter-thread cycle).
  int CoherenceHazards = 0;
  /// Shortest-path witness per harmful delay pair, deterministic order,
  /// capped at AnalysisOptions::MaxCycleWitnesses.
  std::vector<CriticalCycle> Cycles;
  /// Deduplicated, sorted cuts covering every harmful pair whose later
  /// access attributes to a line inside the window.
  std::vector<SuggestedCut> Cuts;
  /// Harmful pairs each cut addresses (parallel to Cuts) — the coverage
  /// score the `--analyze` surface ranks suggested cuts by. FenceSynth
  /// seeding uses only cut membership: the counterexample trace supplies
  /// the ranking among statically backed candidates.
  std::vector<int> CutScores;
};

/// Runs the analysis of \p P (with its existing fences) under \p M.
/// \p R must be analyzeRanges(P).
RobustnessResult analyzeRobustness(const trans::FlatProgram &P,
                                   const trans::RangeInfo &R,
                                   const memmodel::ModelParams &M,
                                   const AnalysisOptions &Opts = {});

} // namespace analysis
} // namespace checkfence

#endif // CHECKFENCE_ANALYSIS_CRITICALCYCLES_H
