//===--- FlatProgram.cpp - unrolled guarded-SSA form ------------------------===//

#include "trans/FlatProgram.h"

#include "support/Format.h"

using namespace checkfence;
using namespace checkfence::trans;

std::string FlatProgram::str() const {
  std::string Out = formatString(
      "flat program: %d threads, %zu defs, %zu events (%d loads, %d "
      "stores), %zu checks, %zu obs, %zu bound marks\n",
      NumThreads, Defs.size(), Events.size(), numLoads(), numStores(),
      Checks.size(), Observations.size(), BoundMarks.size());

  auto DefStr = [&](ValueId V) {
    if (V == NoValue)
      return std::string("-");
    return formatString("v%d", V);
  };

  for (size_t I = 0; I < Defs.size(); ++I) {
    const FlatDef &D = Defs[I];
    Out += formatString("  v%zu = ", I);
    switch (D.K) {
    case FlatDef::Kind::Const:
      Out += D.Val.str();
      break;
    case FlatDef::Kind::Choice: {
      std::vector<std::string> Opts;
      for (const lsl::Value &V : D.Options)
        Opts.push_back(V.str());
      Out += "choice(" + joinStrings(Opts, ", ") + ")";
      break;
    }
    case FlatDef::Kind::Op: {
      std::vector<std::string> Ops;
      for (ValueId O : D.Operands)
        Ops.push_back(DefStr(O));
      if (D.Op == lsl::PrimOpKind::PtrField)
        Ops.push_back(formatString("#%lld", static_cast<long long>(D.Imm)));
      Out += formatString("%s(%s)", lsl::primOpName(D.Op),
                          joinStrings(Ops, ", ").c_str());
      break;
    }
    case FlatDef::Kind::LoadVal:
      Out += formatString("loadval(event %d)", D.EventIndex);
      break;
    }
    if (!D.Name.empty())
      Out += "  ; " + D.Name;
    Out += "\n";
  }

  for (size_t I = 0; I < Events.size(); ++I) {
    const FlatEvent &E = Events[I];
    const char *KindStr = E.isLoad() ? "load" : E.isStore() ? "store"
                                                            : "fence";
    Out += formatString("  event %zu: t%d #%d %s", I, E.Thread,
                        E.IndexInThread, KindStr);
    if (E.K == FlatEvent::Kind::Fence)
      Out += formatString(" %s", lsl::fenceKindName(E.FenceK));
    else
      Out += formatString(" addr=%s data=%s", DefStr(E.Addr).c_str(),
                          DefStr(E.Data).c_str());
    Out += formatString(" guard=%s atomic=%d inv=%d\n",
                        DefStr(E.Guard).c_str(), E.AtomicId, E.OpInvId);
  }
  return Out;
}
