//===--- Flattener.h - inline + unroll + SSA-convert LSL --------*- C++ -*-==//
//
// Part of the CheckFence reproduction (PLDI'07).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Transforms LSL thread procedures into a FlatProgram (Sec. 3.2): inlines
/// all calls, unrolls labeled blocks up to per-loop-instance bounds, turns
/// control flow into guard expressions, and renames registers into SSA form
/// with explicit Select (mux) chains.
///
/// Loop instances are identified by stable string keys built from the call
/// path, so the lazy unrolling driver (Sec. 3.3) can grow exactly the bound
/// of the loop instance that was exceeded and re-flatten.
///
//===----------------------------------------------------------------------===//

#ifndef CHECKFENCE_TRANS_FLATTENER_H
#define CHECKFENCE_TRANS_FLATTENER_H

#include "lsl/Program.h"
#include "trans/FlatProgram.h"

#include <map>
#include <string>
#include <vector>

namespace checkfence {
namespace trans {

/// Per-loop-instance unroll bounds, keyed by the stable loop key.
/// Missing entries default to 1 (paper: "for the first run, we unroll each
/// loop exactly once").
using LoopBounds = std::map<std::string, int>;

class Flattener {
public:
  Flattener(const lsl::Program &Prog, FlatProgram &Out,
            const LoopBounds &Bounds)
      : Prog(Prog), Out(Out), Bounds(Bounds) {}

  /// Flattens the body of procedure \p ProcName as thread \p ThreadIdx.
  /// Returns false (with an error message available via error()) on
  /// malformed input (unknown procedure, recursion, bad registers).
  bool flattenThread(const std::string &ProcName, int ThreadIdx);

  const std::string &error() const { return ErrorMsg; }

private:
  struct Frame {
    const lsl::Proc *P = nullptr;
    std::vector<ValueId> RegMap;
  };

  struct BlockCtx {
    const Frame *F = nullptr;
    int Tag = -1;
    ValueId BreakAccum = NoValue;
    ValueId ContinueAccum = NoValue;
  };

  // Value construction with constant folding / dedup.
  ValueId constVal(const lsl::Value &V);
  ValueId trueVal() { return constVal(lsl::Value::integer(1)); }
  ValueId falseVal() { return constVal(lsl::Value::integer(0)); }
  bool isTrue(ValueId V) const { return Out.isConstInt(V, 1); }
  bool isFalse(ValueId V) const { return Out.isConstInt(V, 0); }
  ValueId opVal(lsl::PrimOpKind Op, std::vector<ValueId> Operands,
                int64_t Imm, const std::string &Name = "");
  ValueId notVal(ValueId A);
  ValueId andVal(ValueId A, ValueId B);
  ValueId orVal(ValueId A, ValueId B);
  ValueId truthyVal(ValueId A);
  ValueId selectVal(ValueId G, ValueId A, ValueId B);

  // Statement walk.
  void flattenStmts(const std::vector<lsl::Stmt *> &Body, Frame &F);
  void flattenStmt(const lsl::Stmt *S, Frame &F);
  void flattenBlock(const lsl::Stmt *S, Frame &F);
  void flattenCall(const lsl::Stmt *S, Frame &F);
  void assignReg(Frame &F, lsl::Reg R, ValueId V);
  ValueId readReg(Frame &F, lsl::Reg R);
  void emitCheck(FlatCheck::Kind K, ValueId Cond, SourceLoc Loc);
  void fail(const std::string &Msg);

  const lsl::Program &Prog;
  FlatProgram &Out;
  const LoopBounds &Bounds;

  std::map<lsl::Value, ValueId> ConstCache;
  std::vector<BlockCtx> BlockStack;
  ValueId CurGuard = NoValue;
  int CurThread = 0;
  int CurAtomic = -1;
  int CurInv = -1;
  int FrameDepth = 0;
  int RestrictDepth = 0;
  int NextEventIndexInThread = 0;
  std::vector<int> AccessHistoryInThread;
  int AllocCounter = 0;
  std::string CurPath;
  std::vector<int> CurCallLines; ///< inline stack, outermost call first
  std::string ErrorMsg;
};

} // namespace trans
} // namespace checkfence

#endif // CHECKFENCE_TRANS_FLATTENER_H
