//===--- RangeAnalysis.cpp - flow-insensitive value-set analysis ----------===//
//
// Part of the CheckFence reproduction (PLDI'07).
//
//===----------------------------------------------------------------------===//

#include "trans/RangeAnalysis.h"

#include <algorithm>
#include <cassert>

using namespace checkfence;
using namespace checkfence::trans;

using lsl::Value;

int RangeInfo::bitsFor(uint64_t MaxValue) {
  int Bits = 1;
  while ((MaxValue >> Bits) != 0)
    ++Bits;
  return Bits;
}

int RangeInfo::intBitsFor(const ValueSet &S, const RangeOptions &Opts) const {
  if (S.Top)
    return Opts.TopIntBits;
  uint64_t Max = 0;
  for (const Value &V : S.Values)
    if (V.isInt() && V.intValue() > 0)
      Max = std::max(Max, static_cast<uint64_t>(V.intValue()));
  return bitsFor(Max);
}

namespace {

/// Whether an operation can generate genuinely new values from its inputs
/// without bound ("assignments that have unbounded range" in Sec. 3.4).
/// Values are tagged with the number of such operations they traversed;
/// a value that traverses more of them than exist in the unrolled program
/// must have cycled through a spurious flow-insensitive loop and is
/// discarded - every unrolled instruction executes at most once.
bool isExpandingOp(lsl::PrimOpKind K) {
  switch (K) {
  case lsl::PrimOpKind::Add:
  case lsl::PrimOpKind::Sub:
  case lsl::PrimOpKind::Mul:
  case lsl::PrimOpKind::Shl:
  case lsl::PrimOpKind::PtrField:
  case lsl::PrimOpKind::PtrIndex:
    return true;
  default:
    return false;
  }
}

/// A value set where every member carries the traversal tag (minimum over
/// all ways the value was derived).
struct TaggedSet {
  bool Top = false;
  std::map<Value, int> Values; // value -> min tag

  /// Returns true if the set changed.
  bool insert(const Value &V, int Tag, size_t Cap) {
    if (Top)
      return false;
    auto It = Values.find(V);
    if (It != Values.end()) {
      if (Tag >= It->second)
        return false;
      It->second = Tag;
      return true;
    }
    if (Values.size() >= Cap) {
      Top = true;
      Values.clear();
      return true;
    }
    Values.emplace(V, Tag);
    return true;
  }

  bool widenToTop() {
    if (Top)
      return false;
    Top = true;
    Values.clear();
    return true;
  }
};

/// Fixpoint engine. Cells are discovered on the fly: any pointer value in
/// a load/store address set becomes a memory location.
class Analyzer {
public:
  Analyzer(const FlatProgram &P, const RangeOptions &Opts)
      : P(P), Opts(Opts) {
    DefSets.resize(P.Defs.size());
    for (const FlatDef &D : P.Defs)
      if (D.K == FlatDef::Kind::Op && isExpandingOp(D.Op))
        ++NumExpandingOps;
  }

  RangeInfo run() {
    bool Changed = true;
    // The tag mechanism makes the lattice finite, so the fixpoint
    // terminates; MaxPasses is a safety net only.
    int Pass = 0;
    int Budget = std::max(Opts.MaxPasses, NumExpandingOps + 8);
    while (Changed && Pass++ < Budget) {
      Changed = false;
      for (size_t I = 0; I < P.Defs.size(); ++I)
        Changed |= updateDef(static_cast<ValueId>(I));
      for (const FlatEvent &E : P.Events)
        if (E.isStore())
          Changed |= updateStore(E);
    }
    if (Pass >= Budget)
      for (TaggedSet &S : DefSets)
        S.widenToTop();
    finalize();
    return std::move(Info);
  }

private:
  const FlatProgram &P;
  const RangeOptions &Opts;
  RangeInfo Info;
  std::vector<TaggedSet> DefSets;
  std::map<Value, TaggedSet> CellSets;
  std::set<Value> CellUniverse; // all dereferenced pointer values
  int NumExpandingOps = 0;

  bool mergeInto(TaggedSet &Dst, const TaggedSet &Src) {
    if (Src.Top)
      return Dst.widenToTop();
    bool Changed = false;
    for (const auto &[V, Tag] : Src.Values)
      Changed |= Dst.insert(V, Tag, Opts.SetCap);
    return Changed;
  }

  /// Registers the pointer members of an address set as memory cells.
  bool registerCells(const TaggedSet &AddrSet) {
    if (AddrSet.Top)
      return false;
    bool Changed = false;
    for (const auto &[V, Tag] : AddrSet.Values)
      if (V.isPtr())
        Changed |= CellUniverse.insert(V).second;
    return Changed;
  }

  bool updateDef(ValueId Id) {
    const FlatDef &D = P.Defs[Id];
    TaggedSet &S = DefSets[Id];
    if (S.Top)
      return false;
    bool Changed = false;
    switch (D.K) {
    case FlatDef::Kind::Const:
      Changed |= S.insert(D.Val, 0, Opts.SetCap);
      break;
    case FlatDef::Kind::Choice:
      for (const Value &V : D.Options)
        Changed |= S.insert(V, 0, Opts.SetCap);
      break;
    case FlatDef::Kind::Op:
      Changed |= applyOp(D, S);
      break;
    case FlatDef::Kind::LoadVal: {
      const FlatEvent &E = P.Events[D.EventIndex];
      const TaggedSet &AddrSet = DefSets[E.Addr];
      // A load may observe the initial (undefined) contents.
      Changed |= S.insert(Value::undef(), 0, Opts.SetCap);
      if (AddrSet.Top) {
        Changed |= S.widenToTop();
        break;
      }
      Changed |= registerCells(AddrSet);
      for (const auto &[A, Tag] : AddrSet.Values) {
        if (!A.isPtr())
          continue;
        auto It = CellSets.find(A);
        if (It != CellSets.end())
          Changed |= mergeInto(S, It->second);
      }
      break;
    }
    }
    return Changed;
  }

  bool applyOp(const FlatDef &D, TaggedSet &S) {
    // Product application of evalPrimOp over small operand sets.
    int TagBump = isExpandingOp(D.Op) ? 1 : 0;
    std::vector<const TaggedSet *> Ops;
    size_t Product = 1;
    for (ValueId O : D.Operands) {
      const TaggedSet *OS = &DefSets[O];
      if (OS->Top)
        return S.widenToTop();
      if (OS->Values.empty())
        return false; // operand not yet populated
      Ops.push_back(OS);
      Product *= OS->Values.size();
      if (Product > 4096)
        return S.widenToTop();
    }
    bool Changed = false;
    std::vector<std::map<Value, int>::const_iterator> Iter(Ops.size());
    for (size_t I = 0; I < Ops.size(); ++I)
      Iter[I] = Ops[I]->Values.begin();
    std::vector<Value> Args(Ops.size());
    for (;;) {
      int Tag = TagBump;
      for (size_t I = 0; I < Ops.size(); ++I) {
        Args[I] = Iter[I]->first;
        Tag = std::max(Tag, Iter[I]->second + TagBump);
      }
      // Discard values that traversed more expanding operations than the
      // program contains (Sec. 3.4 termination mechanism).
      if (Tag <= NumExpandingOps) {
        Changed |= S.insert(lsl::evalPrimOp(D.Op, Args, D.Imm), Tag,
                            Opts.SetCap);
        if (S.Top)
          return Changed;
      }
      // Advance the odometer.
      size_t I = 0;
      for (; I < Ops.size(); ++I) {
        if (++Iter[I] != Ops[I]->Values.end())
          break;
        Iter[I] = Ops[I]->Values.begin();
      }
      if (I == Ops.size())
        break;
    }
    return Changed;
  }

  bool updateStore(const FlatEvent &E) {
    const TaggedSet &AddrSet = DefSets[E.Addr];
    const TaggedSet &DataSet = DefSets[E.Data];
    bool Changed = registerCells(AddrSet);
    if (AddrSet.Top) {
      // Unknown target: every known cell may receive the data.
      for (const Value &Cell : CellUniverse)
        Changed |= mergeInto(CellSets[Cell], DataSet);
      return Changed;
    }
    for (const auto &[A, Tag] : AddrSet.Values) {
      if (!A.isPtr())
        continue;
      Changed |= mergeInto(CellSets[A], DataSet);
    }
    return Changed;
  }

  void finalize() {
    // Strip tags into the public interface.
    Info.DefSets.resize(P.Defs.size());
    for (size_t I = 0; I < DefSets.size(); ++I) {
      Info.DefSets[I].Top = DefSets[I].Top;
      for (const auto &[V, Tag] : DefSets[I].Values)
        Info.DefSets[I].Values.insert(V);
    }

    // Pointer universe: every pointer value in any def set or cell content.
    std::set<Value> Universe(CellUniverse.begin(), CellUniverse.end());
    auto Collect = [&](const TaggedSet &S) {
      if (S.Top)
        return;
      for (const auto &[V, Tag] : S.Values)
        if (V.isPtr())
          Universe.insert(V);
    };
    for (const TaggedSet &S : DefSets)
      Collect(S);
    for (const auto &[Cell, Set] : CellSets)
      Collect(Set);

    for (const Value &V : Universe) {
      Info.UniverseIndexMap[V] =
          static_cast<int>(Info.PointerUniverse.size());
      Info.PointerUniverse.push_back(V);
    }
    for (const Value &V : CellUniverse) {
      Info.CellIndexMap[V] = static_cast<int>(Info.Cells.size());
      Info.Cells.push_back(V);
    }

    // Per-event candidate cells.
    Info.EventCells.resize(P.Events.size());
    for (size_t I = 0; I < P.Events.size(); ++I) {
      const FlatEvent &E = P.Events[I];
      if (!E.isAccess())
        continue;
      const ValueSet &AddrSet = Info.DefSets[E.Addr];
      std::vector<int> &Cand = Info.EventCells[I];
      if (AddrSet.Top) {
        for (size_t C = 0; C < Info.Cells.size(); ++C)
          Cand.push_back(static_cast<int>(C));
        continue;
      }
      for (const Value &A : AddrSet.Values) {
        if (!A.isPtr())
          continue;
        int Idx = Info.cellIndex(A);
        assert(Idx >= 0 && "dereferenced cell missing from universe");
        Cand.push_back(Idx);
      }
      std::sort(Cand.begin(), Cand.end());
    }

    // Global integer width.
    int Bits = 1;
    for (const ValueSet &S : Info.DefSets) {
      if (S.Top) {
        Bits = std::max(Bits, Opts.TopIntBits);
        continue;
      }
      for (const Value &V : S.Values)
        if (V.isInt() && V.intValue() > 0)
          Bits = std::max(Bits, RangeInfo::bitsFor(
                                    static_cast<uint64_t>(V.intValue())));
    }
    Info.GlobalIntBits = Bits;
  }
};

} // namespace

RangeInfo checkfence::trans::analyzeRanges(const FlatProgram &P,
                                           const RangeOptions &Opts) {
  Analyzer A(P, Opts);
  return A.run();
}
