//===--- RangeAnalysis.h - flow-insensitive value-set analysis --*- C++ -*-==//
//
// Part of the CheckFence reproduction (PLDI'07).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The range analysis of Sec. 3.4: a light-weight flow-insensitive
/// propagation that computes, for every SSA definition and every memory
/// location, a conservative set of the values it may hold in any valid
/// execution. The encoder uses the result to
///   (1) size integer bitvectors,
///   (2) bound pointer shapes (the pointer-value universe),
///   (3) fix constant definitions outright, and
///   (4) prune aliasing (only loads/stores with intersecting address sets
///       need visibility clauses).
///
/// Termination: the paper tags values with a traversal count; we instead
/// cap the set size and widen to Top, which is equivalent in effect for
/// the bounded unrolled programs we analyze.
///
//===----------------------------------------------------------------------===//

#ifndef CHECKFENCE_TRANS_RANGEANALYSIS_H
#define CHECKFENCE_TRANS_RANGEANALYSIS_H

#include "trans/FlatProgram.h"

#include <map>
#include <set>
#include <vector>

namespace checkfence {
namespace trans {

/// A conservative set of possible values; Top means "any value".
struct ValueSet {
  bool Top = false;
  std::set<lsl::Value> Values;

  bool insert(const lsl::Value &V, size_t Cap) {
    if (Top)
      return false;
    if (Values.size() >= Cap) {
      Top = true;
      Values.clear();
      return true;
    }
    return Values.insert(V).second;
  }

  bool widenToTop() {
    if (Top)
      return false;
    Top = true;
    Values.clear();
    return true;
  }

  bool mayBeUndef() const {
    return Top || Values.count(lsl::Value::undef());
  }
  bool mayBeInt() const {
    if (Top)
      return true;
    for (const lsl::Value &V : Values)
      if (V.isInt())
        return true;
    return false;
  }
  bool mayBePtr() const {
    if (Top)
      return true;
    for (const lsl::Value &V : Values)
      if (V.isPtr())
        return true;
    return false;
  }
  bool isSingleton() const { return !Top && Values.size() == 1; }
};

struct RangeOptions {
  size_t SetCap = 256;  ///< per-set size before widening to Top
  int MaxPasses = 64;   ///< fixpoint iteration limit (then widen)
  int TopIntBits = 32;  ///< integer width assumed for Top sets
};

/// Result of the analysis.
class RangeInfo {
public:
  /// Per-definition value sets (indexed by ValueId).
  std::vector<ValueSet> DefSets;

  /// All pointer values that can occur anywhere (addresses or data).
  /// The encoder represents a pointer payload as an index into this table.
  std::vector<lsl::Value> PointerUniverse;

  /// Pointer values that are actually dereferenced: the memory locations.
  /// Subset of PointerUniverse (by value, separately indexed).
  std::vector<lsl::Value> Cells;

  /// Per-event candidate cell indices (into Cells); only meaningful for
  /// load/store events. Used for alias pruning and value routing.
  std::vector<std::vector<int>> EventCells;

  /// Bits needed for the largest integer in any set (>= 1).
  int GlobalIntBits = 1;

  int universeIndex(const lsl::Value &V) const {
    auto It = UniverseIndexMap.find(V);
    return It == UniverseIndexMap.end() ? -1 : It->second;
  }
  int cellIndex(const lsl::Value &V) const {
    auto It = CellIndexMap.find(V);
    return It == CellIndexMap.end() ? -1 : It->second;
  }

  /// Number of bits needed to count to N-1 (at least 1).
  static int bitsFor(uint64_t MaxValue);

  /// Bits needed for the integers of \p S (TopIntBits if Top).
  int intBitsFor(const ValueSet &S, const RangeOptions &Opts) const;

  std::map<lsl::Value, int> UniverseIndexMap;
  std::map<lsl::Value, int> CellIndexMap;
};

/// Runs the analysis over \p P.
RangeInfo analyzeRanges(const FlatProgram &P,
                        const RangeOptions &Opts = RangeOptions());

} // namespace trans
} // namespace checkfence

#endif // CHECKFENCE_TRANS_RANGEANALYSIS_H
