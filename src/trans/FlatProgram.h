//===--- FlatProgram.h - unrolled guarded-SSA form --------------*- C++ -*-==//
//
// Part of the CheckFence reproduction (PLDI'07).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// After inlining and loop unrolling (Sec. 3.2), each thread is a simple
/// sequence of machine-level instructions. We represent this as:
///
///  * a pool of pure SSA \e definitions (constants, nondeterministic
///    choices, primitive ops, and load results) shared by all threads, and
///  * per-thread lists of \e events (loads, stores, fences) and \e checks
///    (assert / assume / definedness), each carrying a \e guard: an SSA
///    value that is truthy exactly when the instruction executes.
///
/// Register assignment was resolved into Select (mux) chains by the
/// flattener, so the encoder never sees control flow: condition (2) of the
/// execution definition in Sec. 2.3.1 becomes a pure dataflow formula
/// (the Delta_k of Sec. 3.2.1) and condition (3) ranges over the events.
///
//===----------------------------------------------------------------------===//

#ifndef CHECKFENCE_TRANS_FLATPROGRAM_H
#define CHECKFENCE_TRANS_FLATPROGRAM_H

#include "lsl/Value.h"
#include "support/SourceLoc.h"

#include <cassert>
#include <map>
#include <string>
#include <vector>

namespace checkfence {
namespace trans {

/// Index of an SSA definition in FlatProgram::Defs.
using ValueId = int;
constexpr ValueId NoValue = -1;

/// A pure SSA definition.
struct FlatDef {
  enum class Kind : uint8_t {
    Const,   ///< the LSL value Val
    Choice,  ///< nondeterministically one of Options
    Op,      ///< PrimOp(Operands..., Imm)
    LoadVal, ///< the value returned by memory for load event EventIndex
  };

  Kind K = Kind::Const;
  lsl::Value Val;                   // Const
  std::vector<lsl::Value> Options;  // Choice
  lsl::PrimOpKind Op = lsl::PrimOpKind::Copy;
  std::vector<ValueId> Operands;    // Op
  int64_t Imm = 0;                  // Op (PtrField)
  int EventIndex = -1;              // LoadVal
  std::string Name;                 // debug hint
};

/// A memory access or fence, annotated with its guard.
struct FlatEvent {
  enum class Kind : uint8_t { Load, Store, Fence };

  Kind K = Kind::Load;
  ValueId Guard = NoValue;
  ValueId Addr = NoValue;  // Load/Store
  ValueId Data = NoValue;  // Store: stored value; Load: the LoadVal def
  lsl::FenceKind FenceK = lsl::FenceKind::LoadLoad;
  int Thread = 0;
  int IndexInThread = 0; ///< program-order position within the thread
  int AtomicId = -1;     ///< enclosing atomic-block instance, -1 if none
  int OpInvId = -1;      ///< enclosing operation invocation, -1 if none
  SourceLoc Loc;
  /// Source lines of the call sites this event was inlined through,
  /// outermost first (empty for top-level statements). Lets tools
  /// attribute an access inside a shared builtin (cas, lock) back to the
  /// implementation line that invoked it (used by fence synthesis).
  std::vector<int> CallLines;

  bool isAccess() const { return K != Kind::Fence; }
  bool isLoad() const { return K == Kind::Load; }
  bool isStore() const { return K == Kind::Store; }
};

/// A side condition: assertion, assumption, or runtime-type check.
struct FlatCheck {
  enum class Kind : uint8_t {
    Assert,      ///< error if guard && !truthy(Cond); error if Cond undef
    Assume,      ///< execution infeasible unless guard -> truthy(Cond)
    CheckAddr,   ///< error if guard && Cond is not a pointer
    CheckBranch, ///< error if guard && Cond is undefined
    CheckDef,    ///< error if guard && Cond is undefined (computation use)
  };

  Kind K = Kind::Assert;
  ValueId Guard = NoValue;
  ValueId Cond = NoValue;
  int Thread = 0;
  SourceLoc Loc;
};

/// One slot of the observation vector (an operation argument or result).
struct FlatObservation {
  ValueId Val = NoValue;
  int OpInvId = -1;
  std::string Label;
};

/// Marks "execution wanted to run loop instance LoopId past its current
/// unroll bound" (guard truthy). Used by the lazy unrolling driver
/// (Sec. 3.3): normal checks assume all marks false; the bound probe asks
/// for any mark true.
struct FlatBoundMark {
  ValueId Guard = NoValue;
  std::string LoopKey; ///< stable identity of the loop instance
  bool Restricted = false; ///< primed ops: bound is fixed, never grown
  int Thread = 0;
  SourceLoc Loc;
};

/// An operation invocation of the symbolic test (for seriality and traces).
struct FlatOpInvocation {
  int Id = 0;
  int Thread = 0;
  std::string Name;
};

/// A commit-point marker (baseline method): when its guard holds, the
/// immediately preceding access of its thread is the operation's commit
/// access candidate.
struct FlatCommitMark {
  ValueId Guard = NoValue;
  int OpInvId = -1;
  int PrecedingEvent = -1; ///< event index of the preceding access, or -1
  int Thread = 0;
  SourceLoc Loc;
};

/// The unrolled test program.
class FlatProgram {
public:
  std::vector<FlatDef> Defs;
  std::vector<FlatEvent> Events;
  std::vector<FlatCheck> Checks;
  std::vector<FlatObservation> Observations;
  std::vector<FlatBoundMark> BoundMarks;
  std::vector<FlatOpInvocation> OpInvocations;
  std::vector<FlatCommitMark> CommitMarks;
  int NumThreads = 0;
  int NumAtomicInstances = 0;
  /// Thread 0 is the initialization sequence: its events are ordered before
  /// all other threads' events.
  bool ThreadZeroIsInit = true;
  /// Number of distinct unrolled instructions (paper Fig. 10 "instrs"): the
  /// flattener counts every flattened LSL statement instance.
  int UnrolledInstrCount = 0;

  const FlatDef &def(ValueId V) const {
    assert(V >= 0 && V < static_cast<int>(Defs.size()));
    return Defs[V];
  }

  ValueId addDef(FlatDef D) {
    Defs.push_back(std::move(D));
    return static_cast<ValueId>(Defs.size() - 1);
  }

  /// True if \p V is a Const def; if so *Out receives the value.
  bool isConst(ValueId V, lsl::Value *Out = nullptr) const {
    if (V < 0 || Defs[V].K != FlatDef::Kind::Const)
      return false;
    if (Out)
      *Out = Defs[V].Val;
    return true;
  }

  /// True if \p V is the constant integer \p N.
  bool isConstInt(ValueId V, int64_t N) const {
    lsl::Value Val;
    return isConst(V, &Val) && Val.isInt() && Val.intValue() == N;
  }

  int numLoads() const {
    int N = 0;
    for (const FlatEvent &E : Events)
      N += E.isLoad();
    return N;
  }
  int numStores() const {
    int N = 0;
    for (const FlatEvent &E : Events)
      N += E.isStore();
    return N;
  }
  int numAccesses() const { return numLoads() + numStores(); }

  /// Debug dump.
  std::string str() const;
};

} // namespace trans
} // namespace checkfence

#endif // CHECKFENCE_TRANS_FLATPROGRAM_H
