//===--- Flattener.cpp - inline + unroll + SSA-convert LSL -----------------===//
//
// Part of the CheckFence reproduction (PLDI'07).
//
//===----------------------------------------------------------------------===//

#include "trans/Flattener.h"

#include "support/Format.h"

#include <cassert>

using namespace checkfence;
using namespace checkfence::trans;

using lsl::PrimOpKind;
using lsl::StmtKind;
using lsl::Value;

//===----------------------------------------------------------------------===//
// Value construction with constant folding
//===----------------------------------------------------------------------===//

ValueId Flattener::constVal(const Value &V) {
  auto It = ConstCache.find(V);
  if (It != ConstCache.end())
    return It->second;
  FlatDef D;
  D.K = FlatDef::Kind::Const;
  D.Val = V;
  ValueId Id = Out.addDef(std::move(D));
  ConstCache.emplace(V, Id);
  return Id;
}

ValueId Flattener::opVal(PrimOpKind Op, std::vector<ValueId> Operands,
                         int64_t Imm, const std::string &Name) {
  // Fold when all operands are constants (LSL semantics are defined by
  // evalPrimOp; the encoder uses the same function for its tables).
  bool AllConst = true;
  std::vector<Value> Vals;
  for (ValueId O : Operands) {
    Value V;
    if (!Out.isConst(O, &V)) {
      AllConst = false;
      break;
    }
    Vals.push_back(V);
  }
  if (AllConst)
    return constVal(lsl::evalPrimOp(Op, Vals, Imm));

  FlatDef D;
  D.K = FlatDef::Kind::Op;
  D.Op = Op;
  D.Operands = std::move(Operands);
  D.Imm = Imm;
  D.Name = Name;
  return Out.addDef(std::move(D));
}

/// Boolean helpers. Operands must be boolean-valued (integer 0/1), which
/// holds by construction: guards are built from truthy/and/or/not.
ValueId Flattener::notVal(ValueId A) {
  if (isTrue(A))
    return falseVal();
  if (isFalse(A))
    return trueVal();
  return opVal(PrimOpKind::LNot, {A}, 0);
}

ValueId Flattener::andVal(ValueId A, ValueId B) {
  if (isTrue(A))
    return B;
  if (isTrue(B))
    return A;
  if (isFalse(A) || isFalse(B))
    return falseVal();
  if (A == B)
    return A;
  return opVal(PrimOpKind::LAnd, {A, B}, 0);
}

ValueId Flattener::orVal(ValueId A, ValueId B) {
  if (isFalse(A))
    return B;
  if (isFalse(B))
    return A;
  if (isTrue(A) || isTrue(B))
    return trueVal();
  if (A == B)
    return A;
  return opVal(PrimOpKind::LOr, {A, B}, 0);
}

/// Coerces an arbitrary LSL value to a 0/1 boolean (undefined coerces to 0;
/// a CheckBranch is emitted separately where the semantics require flagging
/// undefined conditions).
ValueId Flattener::truthyVal(ValueId A) {
  Value V;
  if (Out.isConst(A, &V) && !V.isUndef())
    return V.isTruthy() ? trueVal() : falseVal();
  return opVal(PrimOpKind::LNot, {opVal(PrimOpKind::LNot, {A}, 0)}, 0);
}

ValueId Flattener::selectVal(ValueId G, ValueId A, ValueId B) {
  if (isTrue(G))
    return A;
  if (isFalse(G))
    return B;
  if (A == B)
    return A;
  return opVal(PrimOpKind::Select, {G, A, B}, 0);
}

//===----------------------------------------------------------------------===//
// Registers and checks
//===----------------------------------------------------------------------===//

void Flattener::assignReg(Frame &F, lsl::Reg R, ValueId V) {
  assert(R >= 0 && R < static_cast<int>(F.RegMap.size()));
  F.RegMap[R] = selectVal(CurGuard, V, F.RegMap[R]);
}

ValueId Flattener::readReg(Frame &F, lsl::Reg R) {
  if (R < 0 || R >= static_cast<int>(F.RegMap.size())) {
    fail("read of invalid register");
    return constVal(Value::undef());
  }
  return F.RegMap[R];
}

void Flattener::emitCheck(FlatCheck::Kind K, ValueId Cond, SourceLoc Loc) {
  if (isFalse(CurGuard))
    return;
  // Statically discharge trivially-true runtime-type checks.
  Value V;
  if (Out.isConst(Cond, &V)) {
    if (K == FlatCheck::Kind::CheckAddr && V.isPtr())
      return;
    if ((K == FlatCheck::Kind::CheckBranch ||
         K == FlatCheck::Kind::CheckDef) &&
        !V.isUndef())
      return;
    if (K == FlatCheck::Kind::Assert && !V.isUndef() && V.isTruthy())
      return;
    if (K == FlatCheck::Kind::Assume && !V.isUndef() && V.isTruthy())
      return;
  }
  FlatCheck C;
  C.K = K;
  C.Guard = CurGuard;
  C.Cond = Cond;
  C.Thread = CurThread;
  C.Loc = Loc;
  Out.Checks.push_back(C);
}

void Flattener::fail(const std::string &Msg) {
  if (ErrorMsg.empty())
    ErrorMsg = Msg;
}

//===----------------------------------------------------------------------===//
// Statement walk
//===----------------------------------------------------------------------===//

bool Flattener::flattenThread(const std::string &ProcName, int ThreadIdx) {
  const lsl::Proc *P = Prog.findProc(ProcName);
  if (!P) {
    fail("unknown thread procedure '" + ProcName + "'");
    return false;
  }
  if (P->NumParams != 0) {
    fail("thread procedure '" + ProcName + "' must take no parameters");
    return false;
  }
  CurThread = ThreadIdx;
  CurGuard = trueVal();
  CurAtomic = -1;
  CurInv = -1;
  FrameDepth = 0;
  RestrictDepth = 0;
  NextEventIndexInThread = 0;
  AccessHistoryInThread.clear();
  CurPath = formatString("t%d", ThreadIdx);

  Frame F;
  F.P = P;
  F.RegMap.assign(P->NumRegs, constVal(Value::undef()));
  flattenStmts(P->Body, F);

  if (ThreadIdx + 1 > Out.NumThreads)
    Out.NumThreads = ThreadIdx + 1;
  return ErrorMsg.empty();
}

void Flattener::flattenStmts(const std::vector<lsl::Stmt *> &Body,
                             Frame &F) {
  for (const lsl::Stmt *S : Body) {
    if (!ErrorMsg.empty())
      return;
    flattenStmt(S, F);
  }
}

void Flattener::flattenStmt(const lsl::Stmt *S, Frame &F) {
  ++Out.UnrolledInstrCount;
  switch (S->K) {
  case StmtKind::Const:
    assignReg(F, S->Def, constVal(S->ConstVal));
    return;

  case StmtKind::Choice: {
    FlatDef D;
    D.K = FlatDef::Kind::Choice;
    D.Options = S->Choices;
    assignReg(F, S->Def, Out.addDef(std::move(D)));
    return;
  }

  case StmtKind::PrimOp: {
    std::vector<ValueId> Ops;
    for (lsl::Reg R : S->Args)
      Ops.push_back(readReg(F, R));
    // The paper flags uses of undefined values in computations (Sec. 3.1).
    // Register copies are exempt: moving a dead value is not a use.
    if (S->Op != PrimOpKind::Copy && S->Op != PrimOpKind::Select)
      for (ValueId O : Ops)
        emitCheck(FlatCheck::Kind::CheckDef, O, S->Loc);
    std::string Name = F.P->regName(S->Def);
    assignReg(F, S->Def, opVal(S->Op, std::move(Ops), S->Imm, Name));
    return;
  }

  case StmtKind::Load: {
    if (isFalse(CurGuard)) {
      assignReg(F, S->Def, constVal(Value::undef()));
      return;
    }
    ValueId Addr = readReg(F, S->Addr);
    emitCheck(FlatCheck::Kind::CheckAddr, Addr, S->Loc);
    FlatEvent E;
    E.K = FlatEvent::Kind::Load;
    E.Guard = CurGuard;
    E.Addr = Addr;
    E.Thread = CurThread;
    E.IndexInThread = NextEventIndexInThread++;
    E.AtomicId = CurAtomic;
    E.OpInvId = CurInv;
    E.Loc = S->Loc;
    E.CallLines = CurCallLines;
    int Idx = static_cast<int>(Out.Events.size());
    Out.Events.push_back(E);
    AccessHistoryInThread.push_back(Idx);
    FlatDef D;
    D.K = FlatDef::Kind::LoadVal;
    D.EventIndex = Idx;
    D.Name = F.P->regName(S->Def);
    ValueId LoadVal = Out.addDef(std::move(D));
    Out.Events[Idx].Data = LoadVal;
    assignReg(F, S->Def, LoadVal);
    return;
  }

  case StmtKind::Store: {
    if (isFalse(CurGuard))
      return;
    ValueId Addr = readReg(F, S->Addr);
    ValueId Data = readReg(F, S->Args[0]);
    emitCheck(FlatCheck::Kind::CheckAddr, Addr, S->Loc);
    FlatEvent E;
    E.K = FlatEvent::Kind::Store;
    E.Guard = CurGuard;
    E.Addr = Addr;
    E.Data = Data;
    E.Thread = CurThread;
    E.IndexInThread = NextEventIndexInThread++;
    E.AtomicId = CurAtomic;
    E.OpInvId = CurInv;
    E.Loc = S->Loc;
    E.CallLines = CurCallLines;
    AccessHistoryInThread.push_back(
        static_cast<int>(Out.Events.size()));
    Out.Events.push_back(E);
    return;
  }

  case StmtKind::Fence: {
    if (isFalse(CurGuard))
      return;
    FlatEvent E;
    E.K = FlatEvent::Kind::Fence;
    E.FenceK = S->FenceK;
    E.Guard = CurGuard;
    E.Thread = CurThread;
    E.IndexInThread = NextEventIndexInThread++;
    E.AtomicId = CurAtomic;
    E.OpInvId = CurInv;
    E.Loc = S->Loc;
    E.CallLines = CurCallLines;
    Out.Events.push_back(E);
    return;
  }

  case StmtKind::Atomic: {
    if (CurAtomic != -1) {
      fail("nested atomic blocks are not supported");
      return;
    }
    CurAtomic = Out.NumAtomicInstances++;
    flattenStmts(S->Body, F);
    CurAtomic = -1;
    return;
  }

  case StmtKind::Block:
    flattenBlock(S, F);
    return;

  case StmtKind::Break:
  case StmtKind::Continue: {
    ValueId Cond = readReg(F, S->Cond);
    emitCheck(FlatCheck::Kind::CheckBranch, Cond, S->Loc);
    ValueId Taken = andVal(CurGuard, truthyVal(Cond));
    // Find the innermost enclosing block of this frame with the target tag.
    BlockCtx *Ctx = nullptr;
    for (size_t I = BlockStack.size(); I > 0; --I) {
      BlockCtx &C = BlockStack[I - 1];
      if (C.F == &F && C.Tag == S->TargetTag) {
        Ctx = &C;
        break;
      }
    }
    if (!Ctx) {
      fail(formatString("break/continue target t%d not in scope",
                        S->TargetTag));
      return;
    }
    if (S->K == StmtKind::Break)
      Ctx->BreakAccum = orVal(Ctx->BreakAccum, Taken);
    else
      Ctx->ContinueAccum = orVal(Ctx->ContinueAccum, Taken);
    CurGuard = andVal(CurGuard, notVal(truthyVal(Cond)));
    return;
  }

  case StmtKind::Assert:
    emitCheck(FlatCheck::Kind::Assert, readReg(F, S->Cond), S->Loc);
    return;

  case StmtKind::Assume:
    emitCheck(FlatCheck::Kind::Assume, readReg(F, S->Cond), S->Loc);
    return;

  case StmtKind::Observe: {
    FlatObservation O;
    O.Val = readReg(F, S->Args[0]);
    O.OpInvId = CurInv;
    O.Label = S->Callee; // label hint reuses the Callee slot
    Out.Observations.push_back(O);
    return;
  }

  case StmtKind::Alloc: {
    uint32_t Base = Prog.heapBase() + static_cast<uint32_t>(AllocCounter++);
    assignReg(F, S->Def, constVal(Value::pointer({Base})));
    return;
  }

  case StmtKind::Commit: {
    if (isFalse(CurGuard))
      return;
    FlatCommitMark M;
    M.Guard = CurGuard;
    M.OpInvId = CurInv;
    size_t Back = static_cast<size_t>(S->Imm);
    M.PrecedingEvent =
        Back < AccessHistoryInThread.size()
            ? AccessHistoryInThread[AccessHistoryInThread.size() - 1 - Back]
            : -1;
    M.Thread = CurThread;
    M.Loc = S->Loc;
    Out.CommitMarks.push_back(M);
    return;
  }

  case StmtKind::Call:
    flattenCall(S, F);
    return;
  }
}

void Flattener::flattenBlock(const lsl::Stmt *S, Frame &F) {
  std::string Key =
      CurPath + formatString("/b%d@%d", S->BlockTag, S->Loc.Line);

  // Determine whether this block can repeat at all (contains a continue
  // targeting it); plain blocks take a single pass and no bound key.
  int Bound = 1;
  bool Restricted = RestrictDepth > 0;
  auto It = Bounds.find(Key);
  if (It != Bounds.end())
    Bound = It->second;
  if (Restricted)
    Bound = 1;

  ValueId EntryGuard = CurGuard;
  (void)EntryGuard;
  BlockStack.push_back(BlockCtx{&F, S->BlockTag, falseVal(), falseVal()});
  size_t CtxIdx = BlockStack.size() - 1;

  ValueId ExitAccum = falseVal();
  ValueId IterGuard = CurGuard;
  std::string SavedPath = CurPath;
  for (int I = 0; I < Bound; ++I) {
    if (isFalse(IterGuard))
      break;
    BlockStack[CtxIdx].ContinueAccum = falseVal();
    CurGuard = IterGuard;
    CurPath = SavedPath + formatString("/b%d.i%d", S->BlockTag, I);
    flattenStmts(S->Body, F);
    ExitAccum = orVal(ExitAccum, CurGuard);
    IterGuard = BlockStack[CtxIdx].ContinueAccum;
  }
  CurPath = SavedPath;

  // IterGuard now holds the guard of "continued out of the last unrolled
  // copy", i.e. the execution exceeds the current bound.
  if (!isFalse(IterGuard)) {
    FlatBoundMark M;
    M.Guard = IterGuard;
    M.LoopKey = Key;
    M.Restricted = Restricted;
    M.Thread = CurThread;
    M.Loc = S->Loc;
    Out.BoundMarks.push_back(M);
  }

  ExitAccum = orVal(ExitAccum, BlockStack[CtxIdx].BreakAccum);
  BlockStack.pop_back();
  CurGuard = ExitAccum;
}

void Flattener::flattenCall(const lsl::Stmt *S, Frame &F) {
  const lsl::Proc *Callee = Prog.findProc(S->Callee);
  if (!Callee) {
    fail("call to unknown procedure '" + S->Callee + "'");
    return;
  }
  if (FrameDepth > 64) {
    fail("call nesting too deep (recursion is not supported)");
    return;
  }
  if (static_cast<int>(S->Args.size()) != Callee->NumParams) {
    fail("arity mismatch calling '" + S->Callee + "'");
    return;
  }

  bool TopLevel = FrameDepth == 0;
  int SavedInv = CurInv;
  if (TopLevel) {
    CurInv = static_cast<int>(Out.OpInvocations.size());
    FlatOpInvocation Inv;
    Inv.Id = CurInv;
    Inv.Thread = CurThread;
    Inv.Name = S->Callee;
    Out.OpInvocations.push_back(Inv);
  }
  bool Restrict = S->Imm == 1; // primed (no-retry) invocation
  if (Restrict)
    ++RestrictDepth;

  Frame NF;
  NF.P = Callee;
  NF.RegMap.assign(Callee->NumRegs, constVal(Value::undef()));
  for (int I = 0; I < Callee->NumParams; ++I)
    NF.RegMap[I] = readReg(F, S->Args[I]);

  std::string SavedPath = CurPath;
  CurPath += formatString("/%s@%d", S->Callee.c_str(), S->Loc.Line);
  CurCallLines.push_back(S->Loc.Line);
  ++FrameDepth;
  flattenStmts(Callee->Body, NF);
  --FrameDepth;
  CurCallLines.pop_back();
  CurPath = SavedPath;

  if (S->Rets.size() > Callee->RetRegs.size()) {
    fail("return-arity mismatch calling '" + S->Callee + "'");
    return;
  }
  for (size_t I = 0; I < S->Rets.size(); ++I)
    assignReg(F, S->Rets[I], NF.RegMap[Callee->RetRegs[I]]);

  if (Restrict)
    --RestrictDepth;
  CurInv = SavedInv;
}
