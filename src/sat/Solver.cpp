//===--- Solver.cpp - CDCL SAT solver implementation ----------------------===//
//
// Part of the CheckFence reproduction (PLDI'07).
//
//===----------------------------------------------------------------------===//

#include "sat/Solver.h"

#include "sat/Proof.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>

using namespace checkfence;
using namespace checkfence::sat;

/// In-memory clause layout: a small header followed by the literal array.
/// Clauses are allocated with malloc so the solver works without exceptions.
struct Solver::Clause {
  uint32_t Size;
  uint8_t Learnt;
  uint8_t Deleted;
  float Activity;
  Lit Lits[1]; // actually Size entries

  Lit &operator[](size_t I) { return Lits[I]; }
  const Lit &operator[](size_t I) const { return Lits[I]; }

  static size_t bytesFor(size_t NumLits) {
    return sizeof(Clause) + (NumLits > 0 ? NumLits - 1 : 0) * sizeof(Lit);
  }
};

Solver::Solver() = default;

void Solver::enableProofLog() {
  if (!Proof)
    Proof = std::make_unique<ProofLog>();
}

Solver::~Solver() {
  for (Clause *C : Clauses)
    freeClause(C);
  for (Clause *C : Learnts)
    freeClause(C);
}

Var Solver::newVar() {
  Var V = static_cast<Var>(Assigns.size());
  Assigns.push_back(LBool::Undef);
  Polarity.push_back(static_cast<char>(DefaultPhase));
  Seen.push_back(0);
  VarInfo.push_back(VarData());
  Activity.push_back(0.0);
  HeapIndex.push_back(-1);
  Watches.emplace_back();
  Watches.emplace_back();
  Model.push_back(LBool::Undef);
  heapInsert(V);
  return V;
}

size_t Solver::numFixedVars() const {
  size_t N = TrailLim.empty() ? Trail.size() : TrailLim[0];
  return N;
}

Solver::Clause *Solver::allocClause(const std::vector<Lit> &Lits,
                                    bool Learnt) {
  size_t Bytes = Clause::bytesFor(Lits.size());
  Clause *C = static_cast<Clause *>(std::malloc(Bytes));
  assert(C && "out of memory allocating clause");
  C->Size = static_cast<uint32_t>(Lits.size());
  C->Learnt = Learnt;
  C->Deleted = 0;
  C->Activity = 0;
  std::memcpy(C->Lits, Lits.data(), Lits.size() * sizeof(Lit));
  AllocatedBytes += Bytes;
  return C;
}

void Solver::freeClause(Clause *C) {
  AllocatedBytes -= Clause::bytesFor(C->Size);
  std::free(C);
}

void Solver::attachClause(Clause *C) {
  assert(C->Size >= 2 && "cannot watch a unit clause");
  Watches[(~(*C)[0]).Code].push_back(Watcher{C, (*C)[1]});
  Watches[(~(*C)[1]).Code].push_back(Watcher{C, (*C)[0]});
  WatchBytes += 2 * sizeof(Watcher);
}

void Solver::detachClause(Clause *C) {
  auto Strip = [&](Lit W) {
    std::vector<Watcher> &WS = Watches[(~W).Code];
    for (size_t I = 0; I < WS.size(); ++I) {
      if (WS[I].C == C) {
        WS[I] = WS.back();
        WS.pop_back();
        break;
      }
    }
  };
  Strip((*C)[0]);
  Strip((*C)[1]);
  WatchBytes -= 2 * sizeof(Watcher);
}

bool Solver::locked(const Clause *C) const {
  Var V = (*C)[0].var();
  return value((*C)[0]) == LBool::True && VarInfo[V].Reason == C;
}

void Solver::removeClause(Clause *C) {
  detachClause(C);
  if (locked(C))
    VarInfo[(*C)[0].var()].Reason = nullptr;
  C->Deleted = 1;
  freeClause(C);
}

bool Solver::addClause(const std::vector<Lit> &Lits) {
  assert(decisionLevel() == 0 && "clauses must be added at level 0");
  if (!Ok)
    return false;
  if (Proof)
    Proof->addInput(Lits);

  // Simplify: sort, strip duplicates and false literals, detect tautology.
  std::vector<Lit> Ls(Lits);
  std::sort(Ls.begin(), Ls.end());
  std::vector<Lit> Out;
  Lit Prev = LitUndef;
  for (Lit L : Ls) {
    assert(L.var() < numVars() && "literal over unknown variable");
    if (value(L) == LBool::True || L == ~Prev)
      return true; // satisfied or tautological
    if (value(L) != LBool::False && L != Prev)
      Out.push_back(L);
    Prev = L;
  }

  if (Out.empty()) {
    Ok = false;
    if (Proof)
      Proof->addDerived({});
    return false;
  }
  if (Out.size() == 1) {
    uncheckedEnqueue(Out[0], nullptr);
    Ok = (propagate() == nullptr);
    if (!Ok && Proof)
      Proof->addDerived({});
    return Ok;
  }
  Clause *C = allocClause(Out, /*Learnt=*/false);
  Clauses.push_back(C);
  attachClause(C);
  return true;
}

void Solver::uncheckedEnqueue(Lit L, Clause *Reason) {
  assert(value(L) == LBool::Undef && "enqueue of assigned literal");
  Assigns[L.var()] = boolToLBool(!L.negated());
  VarInfo[L.var()].Reason = Reason;
  VarInfo[L.var()].Level = decisionLevel();
  Trail.push_back(L);
}

bool Solver::enqueue(Lit L, Clause *Reason) {
  if (value(L) != LBool::Undef)
    return value(L) == LBool::True;
  uncheckedEnqueue(L, Reason);
  return true;
}

void Solver::cancelUntil(int Level) {
  if (decisionLevel() <= Level)
    return;
  for (size_t I = Trail.size(); I > TrailLim[Level];) {
    --I;
    Var V = Trail[I].var();
    Assigns[V] = LBool::Undef;
    Polarity[V] = static_cast<char>(!Trail[I].negated()); // phase saving
    if (!heapContains(V))
      heapInsert(V);
  }
  QHead = TrailLim[Level];
  Trail.resize(TrailLim[Level]);
  TrailLim.resize(Level);
}

Solver::Clause *Solver::propagate() {
  Clause *Conflict = nullptr;
  while (QHead < Trail.size()) {
    Lit P = Trail[QHead++]; // P is true; visit watchers of ~P... (see below)
    ++Stats.Propagations;
    std::vector<Watcher> &WS = Watches[P.Code];
    size_t I = 0, J = 0;
    while (I < WS.size()) {
      Watcher W = WS[I++];
      // Blocker optimization: clause already satisfied.
      if (value(W.Blocker) == LBool::True) {
        WS[J++] = W;
        continue;
      }
      Clause &C = *W.C;
      // Normalize: make sure the false literal (~P) is at position 1.
      Lit FalseLit = ~P;
      if (C[0] == FalseLit)
        std::swap(C[0], C[1]);
      assert(C[1] == FalseLit && "watched literal invariant broken");

      Lit First = C[0];
      if (First != W.Blocker && value(First) == LBool::True) {
        WS[J++] = Watcher{&C, First};
        continue;
      }

      // Look for a new literal to watch.
      bool FoundWatch = false;
      for (uint32_t K = 2; K < C.Size; ++K) {
        if (value(C[K]) != LBool::False) {
          std::swap(C[1], C[K]);
          Watches[(~C[1]).Code].push_back(Watcher{&C, First});
          FoundWatch = true;
          break;
        }
      }
      if (FoundWatch)
        continue;

      // Clause is unit or conflicting.
      WS[J++] = Watcher{&C, First};
      if (value(First) == LBool::False) {
        Conflict = &C;
        QHead = Trail.size();
        while (I < WS.size())
          WS[J++] = WS[I++];
      } else {
        uncheckedEnqueue(First, &C);
      }
    }
    WS.resize(J);
    if (Conflict)
      break;
  }
  return Conflict;
}

void Solver::varBumpActivity(Var V) {
  Activity[V] += VarInc;
  if (Activity[V] > 1e100) {
    for (double &A : Activity)
      A *= 1e-100;
    VarInc *= 1e-100;
  }
  if (heapContains(V))
    heapDecrease(V);
}

void Solver::varDecayActivity() { VarInc *= (1.0 / 0.95); }

void Solver::claBumpActivity(Clause *C) {
  C->Activity += static_cast<float>(ClaInc);
  if (C->Activity > 1e20f) {
    for (Clause *L : Learnts)
      L->Activity *= 1e-20f;
    ClaInc *= 1e-20;
  }
}

void Solver::claDecayActivity() { ClaInc *= (1.0 / 0.999); }

// Indexed binary min-heap on activity (higher activity = smaller key).
void Solver::heapInsert(Var V) {
  assert(!heapContains(V));
  HeapIndex[V] = static_cast<int>(Heap.size());
  Heap.push_back(V);
  heapPercolateUp(HeapIndex[V]);
}

void Solver::heapDecrease(Var V) { heapPercolateUp(HeapIndex[V]); }

Var Solver::heapRemoveMin() {
  Var Top = Heap[0];
  Heap[0] = Heap.back();
  HeapIndex[Heap[0]] = 0;
  Heap.pop_back();
  HeapIndex[Top] = -1;
  if (!Heap.empty())
    heapPercolateDown(0);
  return Top;
}

void Solver::heapPercolateUp(int I) {
  Var V = Heap[I];
  while (I > 0) {
    int Parent = (I - 1) >> 1;
    if (!heapLess(V, Heap[Parent]))
      break;
    Heap[I] = Heap[Parent];
    HeapIndex[Heap[I]] = I;
    I = Parent;
  }
  Heap[I] = V;
  HeapIndex[V] = I;
}

void Solver::heapPercolateDown(int I) {
  Var V = Heap[I];
  int N = static_cast<int>(Heap.size());
  while (2 * I + 1 < N) {
    int Child = 2 * I + 1;
    if (Child + 1 < N && heapLess(Heap[Child + 1], Heap[Child]))
      ++Child;
    if (!heapLess(Heap[Child], V))
      break;
    Heap[I] = Heap[Child];
    HeapIndex[Heap[I]] = I;
    I = Child;
  }
  Heap[I] = V;
  HeapIndex[V] = I;
}

void Solver::rebuildOrderHeap() {
  Heap.clear();
  for (Var V = 0; V < numVars(); ++V) {
    HeapIndex[V] = -1;
    if (value(V) == LBool::Undef)
      heapInsert(V);
  }
}

double Solver::nextRandom() {
  // xorshift64; good enough for decision diversification.
  if (RandSeed == 0)
    RandSeed = 88172645463325252ull;
  RandSeed ^= RandSeed << 13;
  RandSeed ^= RandSeed >> 7;
  RandSeed ^= RandSeed << 17;
  return static_cast<double>(RandSeed >> 11) * (1.0 / 9007199254740992.0);
}

Lit Solver::pickBranchLit() {
  if (RandomVarFreq > 0 && !heapEmpty() && nextRandom() < RandomVarFreq) {
    // Random pick (variable stays heap-resident; the VSIDS loop below
    // drops assigned variables lazily anyway).
    Var V = Heap[static_cast<size_t>(nextRandom() *
                                     static_cast<double>(Heap.size()))];
    if (value(V) == LBool::Undef)
      return Lit::make(V, !Polarity[V]);
  }
  while (!heapEmpty()) {
    Var V = heapRemoveMin();
    if (value(V) == LBool::Undef)
      return Lit::make(V, !Polarity[V]);
  }
  return LitUndef;
}

/// First-UIP conflict analysis producing an asserting learnt clause and the
/// backtrack level, with recursive clause minimization.
void Solver::analyze(Clause *Conflict, std::vector<Lit> &OutLearnt,
                     int &OutBtLevel) {
  int PathCount = 0;
  Lit P = LitUndef;
  OutLearnt.clear();
  OutLearnt.push_back(LitUndef); // slot for the asserting literal
  size_t Index = Trail.size();

  Clause *Reason = Conflict;
  do {
    assert(Reason && "reached decision without exhausting paths");
    if (Reason->Learnt)
      claBumpActivity(Reason);
    for (uint32_t I = (P == LitUndef ? 0 : 1); I < Reason->Size; ++I) {
      Lit Q = (*Reason)[I];
      Var V = Q.var();
      if (Seen[V] || VarInfo[V].Level == 0)
        continue;
      Seen[V] = 1;
      varBumpActivity(V);
      if (VarInfo[V].Level >= decisionLevel())
        ++PathCount;
      else
        OutLearnt.push_back(Q);
    }
    // Select next literal on the trail to expand.
    while (!Seen[Trail[--Index].var()]) {
    }
    P = Trail[Index];
    Reason = VarInfo[P.var()].Reason;
    Seen[P.var()] = 0;
    --PathCount;
  } while (PathCount > 0);
  OutLearnt[0] = ~P;

  // Minimization: drop literals implied by the rest of the clause.
  AnalyzeToClear = OutLearnt;
  uint32_t AbstractLevels = 0;
  for (size_t I = 1; I < OutLearnt.size(); ++I)
    AbstractLevels |= 1u << (VarInfo[OutLearnt[I].var()].Level & 31);
  size_t KeepJ = 1;
  for (size_t I = 1; I < OutLearnt.size(); ++I) {
    Var V = OutLearnt[I].var();
    if (VarInfo[V].Reason == nullptr ||
        !litRedundant(OutLearnt[I], AbstractLevels))
      OutLearnt[KeepJ++] = OutLearnt[I];
  }
  Stats.MinimizedLiterals += OutLearnt.size() - KeepJ;
  OutLearnt.resize(KeepJ);
  Stats.LearntLiterals += OutLearnt.size();

  // Find backtrack level: the max level among the non-asserting literals.
  if (OutLearnt.size() == 1) {
    OutBtLevel = 0;
  } else {
    size_t MaxI = 1;
    for (size_t I = 2; I < OutLearnt.size(); ++I)
      if (VarInfo[OutLearnt[I].var()].Level >
          VarInfo[OutLearnt[MaxI].var()].Level)
        MaxI = I;
    std::swap(OutLearnt[1], OutLearnt[MaxI]);
    OutBtLevel = VarInfo[OutLearnt[1].var()].Level;
  }

  for (Lit L : AnalyzeToClear)
    if (L != LitUndef)
      Seen[L.var()] = 0;
  // Seen[] may still be set for vars visited by litRedundant; it clears them
  // itself on both paths.
}

/// Checks whether \p L is redundant in the current learnt clause, i.e. it is
/// implied by the other literals through the implication graph.
bool Solver::litRedundant(Lit L, uint32_t AbstractLevels) {
  AnalyzeStack.clear();
  AnalyzeStack.push_back(L);
  size_t TopOfClear = AnalyzeToClear.size();
  while (!AnalyzeStack.empty()) {
    Lit Cur = AnalyzeStack.back();
    AnalyzeStack.pop_back();
    assert(VarInfo[Cur.var()].Reason != nullptr);
    Clause &C = *VarInfo[Cur.var()].Reason;
    for (uint32_t I = 1; I < C.Size; ++I) {
      Lit Q = C[I];
      Var V = Q.var();
      if (Seen[V] || VarInfo[V].Level == 0)
        continue;
      if (VarInfo[V].Reason != nullptr &&
          ((1u << (VarInfo[V].Level & 31)) & AbstractLevels) != 0) {
        Seen[V] = 1;
        AnalyzeStack.push_back(Q);
        AnalyzeToClear.push_back(Q);
        continue;
      }
      // Not redundant: undo the marks added during this check.
      for (size_t J = AnalyzeToClear.size(); J > TopOfClear; --J)
        Seen[AnalyzeToClear[J - 1].var()] = 0;
      AnalyzeToClear.resize(TopOfClear);
      return false;
    }
  }
  return true;
}

/// Specialized analysis when a conflict is caused directly by assumptions:
/// collects the subset of assumptions responsible.
void Solver::analyzeFinal(Lit P, std::vector<Lit> &OutConflict) {
  OutConflict.clear();
  OutConflict.push_back(P);
  if (decisionLevel() == 0)
    return;
  Seen[P.var()] = 1;
  for (size_t I = Trail.size(); I > TrailLim[0];) {
    --I;
    Var V = Trail[I].var();
    if (!Seen[V])
      continue;
    if (VarInfo[V].Reason == nullptr) {
      assert(VarInfo[V].Level > 0);
      OutConflict.push_back(~Trail[I]);
    } else {
      Clause &C = *VarInfo[V].Reason;
      for (uint32_t K = 1; K < C.Size; ++K)
        if (VarInfo[C[K].var()].Level > 0)
          Seen[C[K].var()] = 1;
    }
    Seen[V] = 0;
  }
  Seen[P.var()] = 0;
}

void Solver::reduceDB() {
  // Remove roughly half of the learnt clauses, lowest activity first;
  // keep binary and locked (reason) clauses.
  std::sort(Learnts.begin(), Learnts.end(), [](Clause *A, Clause *B) {
    if ((A->Size > 2) != (B->Size > 2))
      return A->Size > 2;
    return A->Activity < B->Activity;
  });
  size_t I = 0, J = 0;
  double ExtraLim = ClaInc / std::max<size_t>(Learnts.size(), 1);
  for (; I < Learnts.size(); ++I) {
    Clause *C = Learnts[I];
    if (C->Size > 2 && !locked(C) &&
        (I < Learnts.size() / 2 || C->Activity < ExtraLim)) {
      if (Proof)
        Proof->addDelete(std::vector<Lit>(&(*C)[0], &(*C)[0] + C->Size));
      removeClause(C);
    }
    else
      Learnts[J++] = C;
  }
  Learnts.resize(J);
}

SolveResult Solver::search(int64_t ConflictsBeforeRestart) {
  assert(Ok);
  int64_t ConflictCount = 0;
  std::vector<Lit> Learnt;

  for (;;) {
    if (Interrupt && Interrupt->load(std::memory_order_relaxed)) {
      Interrupted = true;
      cancelUntil(0);
      return SolveResult::Unknown;
    }
    Clause *Conflict = propagate();
    if (Conflict != nullptr) {
      // Conflict.
      ++Stats.Conflicts;
      ++ConflictCount;
      if (decisionLevel() == 0) {
        Ok = false;
        if (Proof)
          Proof->addDerived({});
        return SolveResult::Unsat;
      }
      int BtLevel;
      analyze(Conflict, Learnt, BtLevel);
      if (Proof)
        Proof->addDerived(Learnt);
      if (OnLearnt &&
          Learnt.size() <= static_cast<size_t>(ShareMaxLits)) {
        OnLearnt(Learnt);
        ++Stats.LearntsExported;
      }
      cancelUntil(BtLevel);
      if (Learnt.size() == 1) {
        uncheckedEnqueue(Learnt[0], nullptr);
      } else {
        Clause *C = allocClause(Learnt, /*Learnt=*/true);
        Learnts.push_back(C);
        attachClause(C);
        claBumpActivity(C);
        uncheckedEnqueue(Learnt[0], C);
      }
      varDecayActivity();
      claDecayActivity();
      continue;
    }

    // No conflict.
    if (ConflictsBeforeRestart >= 0 &&
        ConflictCount >= ConflictsBeforeRestart) {
      cancelUntil(0);
      ++Stats.Restarts;
      return SolveResult::Unknown;
    }
    if (ConflictBudget >= 0 &&
        Stats.Conflicts >= static_cast<uint64_t>(ConflictBudget)) {
      cancelUntil(0);
      return SolveResult::Unknown;
    }
    if (static_cast<double>(Learnts.size()) >= MaxLearnts + Trail.size())
      reduceDB();

    // Extend with the next assumption, if any.
    Lit Next = LitUndef;
    while (decisionLevel() < static_cast<int>(AssumptionVec.size())) {
      Lit A = AssumptionVec[decisionLevel()];
      if (value(A) == LBool::True) {
        newDecisionLevel(); // dummy level, assumption already satisfied
      } else if (value(A) == LBool::False) {
        analyzeFinal(~A, ConflictVec);
        // ConflictVec is the implied clause over the negated assumptions;
        // it follows from the database by propagation alone.
        if (Proof)
          Proof->addDerived(ConflictVec);
        return SolveResult::Unsat;
      } else {
        Next = A;
        break;
      }
    }

    if (Next == LitUndef) {
      ++Stats.Decisions;
      Next = pickBranchLit();
      if (Next == LitUndef)
        return SolveResult::Sat; // all variables assigned
    }
    newDecisionLevel();
    uncheckedEnqueue(Next, nullptr);
  }
}

/// Luby restart sequence: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...
static int64_t lubyNumber(int64_t I) {
  int64_t K = 1;
  while ((((int64_t)1 << K) - 1) < I + 1)
    ++K;
  while ((((int64_t)1 << K) - 1) != I + 1) {
    --K;
    I = I - (((int64_t)1 << K) - 1);
  }
  return (int64_t)1 << (K - 1);
}

/// Adopts clauses learnt by other solvers over the same problem-clause
/// database. Runs at decision level 0 with the standard level-0
/// simplification; an empty import proves top-level unsatisfiability.
bool Solver::importShared() {
  assert(decisionLevel() == 0);
  if (!FetchShared || Proof)
    return Ok;
  ImportBuf.clear();
  FetchShared(ImportBuf);
  for (std::vector<Lit> &Ls : ImportBuf) {
    if (!Ok)
      return false;
    bool Drop = false;
    size_t J = 0;
    for (Lit L : Ls) {
      if (L.var() >= numVars() || value(L) == LBool::True) {
        Drop = true; // unknown variable (stale share) or satisfied
        break;
      }
      if (value(L) == LBool::Undef)
        Ls[J++] = L;
    }
    if (Drop)
      continue;
    Ls.resize(J);
    if (Ls.empty()) {
      Ok = false;
      return false;
    }
    if (Ls.size() == 1) {
      if (value(Ls[0]) == LBool::Undef) {
        uncheckedEnqueue(Ls[0], nullptr);
        if (propagate() != nullptr) {
          Ok = false;
          return false;
        }
      }
    } else {
      Clause *C = allocClause(Ls, /*Learnt=*/true);
      Learnts.push_back(C);
      attachClause(C);
      claBumpActivity(C);
    }
    ++Stats.LearntsImported;
  }
  return Ok;
}

SolveResult Solver::solve(const std::vector<Lit> &Assumptions) {
  cancelUntil(0);
  ConflictVec.clear();
  Interrupted = false;
  if (!Ok)
    return SolveResult::Unsat;

  AssumptionVec = Assumptions;
  MaxLearnts = std::max(
      static_cast<double>(Clauses.size()) * LearntSizeFactor, 5000.0);
  rebuildOrderHeap();

  SolveResult Result = SolveResult::Unknown;
  for (int64_t RestartIdx = 0; Result == SolveResult::Unknown; ++RestartIdx) {
    if (!importShared()) {
      Result = SolveResult::Unsat;
      break;
    }
    int64_t Budget = lubyNumber(RestartIdx) * 100;
    Result = search(Budget);
    if (Interrupted && Result == SolveResult::Unknown)
      break;
    if (ConflictBudget >= 0 &&
        Stats.Conflicts >= static_cast<uint64_t>(ConflictBudget) &&
        Result == SolveResult::Unknown)
      break;
    MaxLearnts *= LearntSizeInc;
  }

  if (Result == SolveResult::Sat) {
    for (Var V = 0; V < numVars(); ++V)
      Model[V] = value(V);
  }
  cancelUntil(0);
  AssumptionVec.clear();
  return Result;
}
