//===--- Dimacs.h - DIMACS CNF reading/writing ------------------*- C++ -*-==//
///
/// \file
/// Serialization of CNF formulas in DIMACS format. Useful for debugging the
/// encoder output with external solvers and for the SAT solver test suite.
///
//===----------------------------------------------------------------------===//

#ifndef CHECKFENCE_SAT_DIMACS_H
#define CHECKFENCE_SAT_DIMACS_H

#include "sat/Solver.h"

#include <string>
#include <vector>

namespace checkfence {
namespace sat {

/// A raw CNF: clause list over variables 0..NumVars-1.
struct Cnf {
  int NumVars = 0;
  std::vector<std::vector<Lit>> Clauses;

  Var addVar() { return NumVars++; }
  void addClause(std::vector<Lit> Ls) { Clauses.push_back(std::move(Ls)); }
};

/// Renders \p Formula in DIMACS "p cnf" format.
std::string writeDimacs(const Cnf &Formula);

/// Parses DIMACS text. Returns false on malformed input.
bool parseDimacs(const std::string &Text, Cnf &Out);

/// Loads all clauses of \p Formula into \p S (creating variables as needed).
/// Returns false if the solver became unsatisfiable during loading.
bool loadIntoSolver(const Cnf &Formula, Solver &S);

} // namespace sat
} // namespace checkfence

#endif // CHECKFENCE_SAT_DIMACS_H
