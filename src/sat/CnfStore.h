//===--- CnfStore.h - solver-free CNF capture -------------------*- C++ -*-==//
//
// Part of the CheckFence reproduction (PLDI'07).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A ClauseSink that records variables and clauses instead of solving them.
/// The checker's ProblemEncoding can be built against a CnfStore to obtain a
/// pure CNF artifact (exportable as DIMACS, replayable into any number of
/// solvers) with the decode maps kept separately - the solver-free half of
/// the encoding/solving split.
///
/// Replaying into a fresh solver preserves variable numbering, so decode
/// maps recorded against the store remain valid against the replayed
/// solver's models.
///
//===----------------------------------------------------------------------===//

#ifndef CHECKFENCE_SAT_CNFSTORE_H
#define CHECKFENCE_SAT_CNFSTORE_H

#include "sat/Dimacs.h"
#include "sat/Solver.h"

namespace checkfence {
namespace sat {

/// Records the CNF stream instead of solving it.
class CnfStore : public ClauseSink {
public:
  Var newVar() override { return Formula.addVar(); }
  bool addClause(const std::vector<Lit> &Lits) override {
    Formula.addClause(Lits);
    return true;
  }
  using ClauseSink::addClause;

  int numVars() const { return Formula.NumVars; }
  std::size_t numClauses() const { return Formula.Clauses.size(); }

  /// The recorded formula (DIMACS-writable via sat::writeDimacs).
  const Cnf &cnf() const { return Formula; }

  /// Feeds every recorded variable and clause into \p Sink, in recording
  /// order. When \p Sink starts empty this reproduces the store's variable
  /// numbering exactly. Returns false if the sink reported unsatisfiability.
  bool replayInto(ClauseSink &Sink) const;

  /// Position inside a store for incremental replay: how many variables
  /// and clauses a sink has already consumed.
  struct ReplayCursor {
    int NextVar = 0;
    std::size_t NextClause = 0;
  };

  /// Replays only the suffix recorded since \p Cur, then advances the
  /// cursor. A persistent replica solver calls this before every race to
  /// catch up with the primary's appends without rebuilding its database.
  /// Returns false if the sink reported unsatisfiability.
  bool replayInto(ClauseSink &Sink, ReplayCursor &Cur) const;

private:
  Cnf Formula;
};

} // namespace sat
} // namespace checkfence

#endif // CHECKFENCE_SAT_CNFSTORE_H
