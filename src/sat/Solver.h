//===--- Solver.h - CDCL SAT solver with incremental solving ----*- C++ -*-==//
//
// Part of the CheckFence reproduction (PLDI'07).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A conflict-driven clause-learning SAT solver in the Chaff/MiniSat
/// tradition. CheckFence hands its CNF encodings to this solver; the paper
/// used zChaff (2004.11.15). Features: two-watched-literal propagation,
/// first-UIP clause learning with recursive minimization, VSIDS branching,
/// phase saving, Luby restarts, learnt-clause database reduction, and
/// incremental solving under assumptions (required by the specification
/// mining loop, which repeatedly re-solves with added blocking clauses).
///
//===----------------------------------------------------------------------===//

#ifndef CHECKFENCE_SAT_SOLVER_H
#define CHECKFENCE_SAT_SOLVER_H

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

namespace checkfence {
namespace sat {

class ProofLog;

/// A boolean variable, numbered from 0.
using Var = int;

constexpr Var VarUndef = -1;

/// A literal: a variable together with a sign. Encoded as 2*var+sign where
/// sign==1 means the negated literal.
struct Lit {
  int Code = -2;

  Lit() = default;

  static Lit make(Var V, bool Negated = false) {
    assert(V >= 0 && "literal over undefined variable");
    Lit L;
    L.Code = V + V + static_cast<int>(Negated);
    return L;
  }

  Var var() const { return Code >> 1; }
  bool negated() const { return Code & 1; }

  bool operator==(const Lit &O) const { return Code == O.Code; }
  bool operator!=(const Lit &O) const { return Code != O.Code; }
  bool operator<(const Lit &O) const { return Code < O.Code; }

  /// The opposite-sign literal on the same variable.
  Lit operator~() const {
    Lit L;
    L.Code = Code ^ 1;
    return L;
  }

  /// L ^ true flips the sign, L ^ false is the identity.
  Lit operator^(bool Flip) const {
    Lit L;
    L.Code = Code ^ static_cast<int>(Flip);
    return L;
  }
};

const Lit LitUndef = [] { Lit L; L.Code = -2; return L; }();

/// Three-valued truth: True, False, or Undef (unassigned).
enum class LBool : uint8_t { False = 0, True = 1, Undef = 2 };

inline LBool boolToLBool(bool B) { return B ? LBool::True : LBool::False; }

/// Negates a defined LBool; Undef stays Undef.
inline LBool negate(LBool B) {
  if (B == LBool::Undef)
    return LBool::Undef;
  return B == LBool::True ? LBool::False : LBool::True;
}

/// Result of a solve() call.
enum class SolveResult { Sat, Unsat, Unknown };

/// Anything that accepts fresh variables and clauses: the live Solver, or a
/// CnfStore (sat/CnfStore.h) capturing a solver-free CNF artifact that can
/// later be replayed into a solver. The encoding layers (encode/, memmodel/,
/// checker/) build against this interface so the same encoder can target
/// either destination.
class ClauseSink {
public:
  virtual ~ClauseSink() = default;

  /// Creates a fresh variable and returns it.
  virtual Var newVar() = 0;

  /// Adds a clause. Returns false if the sink is now known unsatisfiable
  /// (always true for pure stores, which do no reasoning).
  virtual bool addClause(const std::vector<Lit> &Lits) = 0;

  bool addClause(Lit A) { return addClause(std::vector<Lit>{A}); }
  bool addClause(Lit A, Lit B) { return addClause(std::vector<Lit>{A, B}); }
  bool addClause(Lit A, Lit B, Lit C) {
    return addClause(std::vector<Lit>{A, B, C});
  }
};

/// Aggregate counters exposed for the statistics tables (Fig. 10).
struct SolverStats {
  uint64_t Conflicts = 0;
  uint64_t Decisions = 0;
  uint64_t Propagations = 0;
  uint64_t Restarts = 0;
  uint64_t LearntLiterals = 0;
  uint64_t MinimizedLiterals = 0;
  /// Learnt clauses handed to OnLearnt / adopted via FetchShared.
  uint64_t LearntsExported = 0;
  uint64_t LearntsImported = 0;
};

/// CDCL SAT solver. Typical use:
/// \code
///   Solver S;
///   Var A = S.newVar(), B = S.newVar();
///   S.addClause({Lit::make(A), Lit::make(B, true)});
///   if (S.solve() == SolveResult::Sat) { ... S.modelValue(...) ... }
/// \endcode
/// After solve() returns, more clauses and variables may be added and
/// solve() called again (incremental use).
class Solver : public ClauseSink {
public:
  Solver();
  ~Solver() override;

  Solver(const Solver &) = delete;
  Solver &operator=(const Solver &) = delete;

  /// Creates a fresh variable and returns it.
  Var newVar() override;

  int numVars() const { return static_cast<int>(Assigns.size()); }

  /// Adds a clause. Returns false if the solver is now known unsatisfiable
  /// (e.g. the clause is empty after level-0 simplification).
  bool addClause(const std::vector<Lit> &Lits) override;
  using ClauseSink::addClause;

  /// Solves under the given assumptions. Assumptions are temporary unit
  /// clauses for this call only.
  SolveResult solve(const std::vector<Lit> &Assumptions);
  SolveResult solve() { return solve({}); }

  /// True while no top-level contradiction has been derived.
  bool okay() const { return Ok; }

  /// Value of a variable/literal in the most recent satisfying model.
  LBool modelValue(Var V) const {
    assert(V >= 0 && V < static_cast<int>(Model.size()));
    return Model[V];
  }
  LBool modelValue(Lit L) const {
    LBool B = modelValue(L.var());
    return L.negated() ? negate(B) : B;
  }
  bool modelTrue(Lit L) const { return modelValue(L) == LBool::True; }

  /// Assumptions that were found inconsistent in the last Unsat answer
  /// (subset of the assumption set, negated form not applied).
  const std::vector<Lit> &conflictAssumptions() const { return ConflictVec; }

  /// Problem clauses currently in the database (excludes learnt clauses and
  /// level-0 units).
  std::size_t numClauses() const { return Clauses.size(); }
  std::size_t numLearnts() const { return Learnts.size(); }
  /// Number of level-0 fixed variables.
  size_t numFixedVars() const;
  /// Approximate bytes held by the clause database and watcher lists;
  /// stands in for the "zchaff memory" column of Fig. 10.
  size_t memoryBytes() const { return AllocatedBytes + WatchBytes; }

  const SolverStats &stats() const { return Stats; }

  /// If >= 0, search gives up (returns Unknown) after this many conflicts.
  int64_t ConflictBudget = -1;

  /// Default polarity for fresh variables when no saved phase exists.
  bool DefaultPhase = false;

  // --- Portfolio hooks (engine::SolverPortfolio) ------------------------
  // All default-off; with every hook unset the solver's behavior is
  // bit-identical to a hook-free build.

  /// Cooperative interrupt: while the pointed-to flag is true, solve()
  /// returns Unknown at the next propagation-fixpoint boundary. The flag
  /// may be set from another thread; pass nullptr to detach.
  void setInterrupt(const std::atomic<bool> *Flag) { Interrupt = Flag; }
  /// True when the last solve() returned Unknown because of the interrupt
  /// flag rather than the conflict budget.
  bool wasInterrupted() const { return Interrupted; }

  /// Export hook: called (on the solving thread) for every learnt clause
  /// of at most ShareMaxLits literals, right after it is derived. Racing
  /// solvers with identical problem-clause databases may adopt such
  /// clauses soundly - they are implied by the database alone (assumption
  /// dependence surfaces as negated assumption literals inside the
  /// clause).
  std::function<void(const std::vector<Lit> &)> OnLearnt;
  int ShareMaxLits = 8;

  /// Import hook: drained at every restart (decision level 0). The callee
  /// appends clauses learnt elsewhere; each is adopted after level-0
  /// simplification. Ignored while proof logging is active (imports have
  /// no local derivation to log).
  std::function<void(std::vector<std::vector<Lit>> &)> FetchShared;

  /// Probability of replacing a VSIDS decision with a random heap pick;
  /// 0 keeps branching fully deterministic. Seeded by RandSeed - give
  /// portfolio members distinct seeds to diversify their search paths.
  double RandomVarFreq = 0;
  uint64_t RandSeed = 88172645463325252ull;

  /// Starts recording a DRAT-style clausal proof (sat/Proof.h) of every
  /// clause added or derived from now on. Call before adding clauses so
  /// the log sees the whole problem.
  void enableProofLog();
  /// The recorded proof, or nullptr when logging was never enabled.
  const ProofLog *proofLog() const { return Proof.get(); }

private:
  struct Clause; // defined in Solver.cpp

  struct Watcher {
    Clause *C;
    Lit Blocker;
  };

  struct VarData {
    Clause *Reason = nullptr;
    int Level = 0;
  };

  // Clause management.
  Clause *allocClause(const std::vector<Lit> &Lits, bool Learnt);
  void freeClause(Clause *C);
  void attachClause(Clause *C);
  void detachClause(Clause *C);
  void removeClause(Clause *C);
  bool locked(const Clause *C) const;

  // Assignment trail.
  LBool value(Var V) const { return Assigns[V]; }
  LBool value(Lit L) const {
    LBool B = Assigns[L.var()];
    return L.negated() ? negate(B) : B;
  }
  int decisionLevel() const { return static_cast<int>(TrailLim.size()); }
  void newDecisionLevel() { TrailLim.push_back(Trail.size()); }
  void uncheckedEnqueue(Lit L, Clause *Reason);
  bool enqueue(Lit L, Clause *Reason);
  void cancelUntil(int Level);

  // Search.
  Clause *propagate();
  void analyze(Clause *Conflict, std::vector<Lit> &OutLearnt,
               int &OutBtLevel);
  void analyzeFinal(Lit P, std::vector<Lit> &OutConflict);
  bool litRedundant(Lit L, uint32_t AbstractLevels);
  SolveResult search(int64_t ConflictsBeforeRestart);
  Lit pickBranchLit();
  bool importShared();
  double nextRandom();
  void reduceDB();
  void rebuildOrderHeap();

  // VSIDS.
  void varBumpActivity(Var V);
  void varDecayActivity();
  void claBumpActivity(Clause *C);
  void claDecayActivity();
  void heapInsert(Var V);
  void heapDecrease(Var V);
  Var heapRemoveMin();
  bool heapEmpty() const { return Heap.empty(); }
  bool heapContains(Var V) const {
    return HeapIndex[V] >= 0;
  }
  void heapPercolateUp(int I);
  void heapPercolateDown(int I);
  bool heapLess(Var A, Var B) const { return Activity[A] > Activity[B]; }

  // State.
  bool Ok = true;
  std::vector<Clause *> Clauses;
  std::vector<Clause *> Learnts;
  std::vector<std::vector<Watcher>> Watches; // indexed by Lit::Code
  std::vector<LBool> Assigns;
  std::vector<char> Polarity;
  std::vector<char> Seen;
  std::vector<VarData> VarInfo;
  std::vector<Lit> Trail;
  std::vector<size_t> TrailLim;
  std::vector<Lit> AssumptionVec;
  std::vector<Lit> ConflictVec;
  std::vector<LBool> Model;
  size_t QHead = 0;

  // Heap of decision variables ordered by activity.
  std::vector<Var> Heap;
  std::vector<int> HeapIndex;
  std::vector<double> Activity;
  double VarInc = 1.0;
  double ClaInc = 1.0;

  // Learnt DB management.
  double MaxLearnts = 0;
  double LearntSizeFactor = 1.0 / 3.0;
  double LearntSizeInc = 1.1;

  size_t AllocatedBytes = 0;
  size_t WatchBytes = 0;

  std::unique_ptr<ProofLog> Proof;

  const std::atomic<bool> *Interrupt = nullptr;
  bool Interrupted = false;
  std::vector<std::vector<Lit>> ImportBuf;

  SolverStats Stats;

  // Scratch for analyze().
  std::vector<Lit> AnalyzeStack;
  std::vector<Lit> AnalyzeToClear;
};

} // namespace sat
} // namespace checkfence

#endif // CHECKFENCE_SAT_SOLVER_H
