//===--- Proof.h - clausal proof logging and checking -----------*- C++ -*-==//
//
// Part of the CheckFence reproduction (PLDI'07).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// DRAT-style clausal proofs for the CDCL solver. When proof logging is
/// enabled, the solver records every input clause and every clause it
/// derives (learnt clauses, assumption conflicts, and the final empty
/// clause of an unsatisfiable run). RupChecker then replays the log with
/// an independent unit-propagation engine and validates each derived
/// clause by *reverse unit propagation* (RUP): asserting the clause's
/// negation must propagate to a conflict under the clauses available so
/// far.
///
/// CheckFence's verdicts hinge on unsatisfiability twice over - the
/// specification mining loop ends on Unsat, and a PASS of the inclusion
/// check *is* an Unsat answer - so a checkable certificate turns "the
/// solver said so" into an independently validated result. The checker
/// shares no propagation code with the solver.
///
/// Deletion events are recorded (for completeness and DRAT export) but
/// ignored during checking: every deleted clause was itself validated as
/// implied, so keeping it can only make RUP checks succeed for other
/// implied clauses - soundness is unaffected, only checker speed.
///
//===----------------------------------------------------------------------===//

#ifndef CHECKFENCE_SAT_PROOF_H
#define CHECKFENCE_SAT_PROOF_H

#include "sat/Solver.h"

#include <string>
#include <vector>

namespace checkfence {
namespace sat {

/// A chronological clausal proof trace.
class ProofLog {
public:
  enum class EventKind : uint8_t {
    Input,   ///< problem clause, taken as an axiom
    Derived, ///< clause the solver claims is implied (RUP-checked)
    Delete,  ///< clause dropped from the database
  };

  struct Event {
    EventKind K = EventKind::Input;
    std::vector<Lit> Clause;
  };

  void addInput(const std::vector<Lit> &C) {
    Events.push_back({EventKind::Input, C});
  }
  void addDerived(const std::vector<Lit> &C) {
    Events.push_back({EventKind::Derived, C});
    ++NumDerived;
    if (C.empty())
      HasEmpty = true;
  }
  void addDelete(const std::vector<Lit> &C) {
    Events.push_back({EventKind::Delete, C});
  }

  const std::vector<Event> &events() const { return Events; }
  size_t numDerived() const { return NumDerived; }
  /// True once the empty clause was derived (the refutation is complete).
  bool hasEmptyClause() const { return HasEmpty; }

  /// Serializes the derivation in the standard DRAT text format (derived
  /// clauses as DIMACS lines, deletions prefixed with "d"); input clauses
  /// are omitted, as in a .drat file accompanying a .cnf file.
  std::string toDratText() const;

private:
  std::vector<Event> Events;
  size_t NumDerived = 0;
  bool HasEmpty = false;
};

/// Independent RUP validation of a ProofLog.
class RupChecker {
public:
  struct Outcome {
    bool Ok = false;
    size_t CheckedDerivations = 0;
    std::string Error;
  };

  /// Replays \p Log. With \p RequireEmptyClause, additionally demands
  /// that the log culminates in the empty clause (a complete refutation,
  /// as produced by an assumption-free Unsat run).
  static Outcome check(const ProofLog &Log, bool RequireEmptyClause);
};

} // namespace sat
} // namespace checkfence

#endif // CHECKFENCE_SAT_PROOF_H
