//===--- Proof.cpp - clausal proof logging and checking ---------------------===//
//
// Part of the CheckFence reproduction (PLDI'07).
//
//===----------------------------------------------------------------------===//

#include "sat/Proof.h"

#include "support/Format.h"

#include <algorithm>

using namespace checkfence;
using namespace checkfence::sat;

std::string ProofLog::toDratText() const {
  std::string Out;
  for (const Event &E : Events) {
    if (E.K == EventKind::Input)
      continue;
    if (E.K == EventKind::Delete)
      Out += "d ";
    for (Lit L : E.Clause)
      Out += formatString("%s%d ", L.negated() ? "-" : "", L.var() + 1);
    Out += "0\n";
  }
  return Out;
}

namespace {

/// A minimal two-watched-literal propagation engine, independent of the
/// solver's. Assignments live on a trail with one persistent segment
/// (consequences of unit clauses) and a temporary segment per RUP check.
class Propagator {
public:
  void ensureVar(Var V) {
    if (V < static_cast<int>(Assigns.size()))
      return;
    Assigns.resize(V + 1, LBool::Undef);
    Watches.resize(2 * (V + 1));
  }

  /// Adds a clause (assumed nonempty) and propagates any immediate unit
  /// consequence persistently. Returns false on a permanent conflict
  /// (the database is unsatisfiable by propagation alone). Raw input
  /// clauses may contain duplicate literals or be tautological.
  bool addClause(const std::vector<Lit> &Raw) {
    std::vector<Lit> C(Raw);
    std::sort(C.begin(), C.end());
    C.erase(std::unique(C.begin(), C.end()), C.end());
    for (size_t I = 0; I + 1 < C.size(); ++I)
      if (C[I + 1] == ~C[I])
        return true; // tautology: trivially satisfied
    for (Lit L : C)
      ensureVar(L.var());
    if (C.size() == 1)
      return enqueuePersistent(C[0]);
    Clauses.push_back(std::move(C));
    size_t Idx = Clauses.size() - 1;
    // Prefer true/unassigned literals as watches so the invariant "a
    // falsified watch triggers inspection" holds from the start.
    std::vector<Lit> &Stored = Clauses.back();
    auto Better = [&](Lit A, Lit B) {
      return rank(value(A)) > rank(value(B));
    };
    for (int W = 0; W < 2; ++W)
      for (size_t I = W + 1; I < Stored.size(); ++I)
        if (Better(Stored[I], Stored[W]))
          std::swap(Stored[I], Stored[W]);
    Watches[code(~Stored[0])].push_back(Idx);
    Watches[code(~Stored[1])].push_back(Idx);
    if (value(Stored[0]) == LBool::True)
      return true;
    if (value(Stored[0]) == LBool::False) {
      PermConflict = true; // every literal is false already
      return false;
    }
    if (value(Stored[1]) == LBool::False)
      return enqueuePersistent(Stored[0]); // unit under persistent units
    return true;
  }

  /// RUP check: asserting ~L for every L in \p C must yield a conflict.
  bool refutes(const std::vector<Lit> &C) {
    for (Lit L : C)
      ensureVar(L.var());
    size_t Mark = Trail.size();
    bool Conflict = false;
    for (Lit L : C) {
      if (value(L) == LBool::True) {
        // The clause is satisfied by persistent units: vacuously implied.
        Conflict = true;
        break;
      }
      if (value(L) == LBool::False)
        continue;
      Assigns[L.var()] = L.negated() ? LBool::True : LBool::False;
      Trail.push_back(~L);
    }
    if (!Conflict)
      Conflict = !propagate(Mark);
    for (size_t I = Trail.size(); I > Mark;) {
      --I;
      Assigns[Trail[I].var()] = LBool::Undef;
    }
    Trail.resize(Mark);
    QHead = Mark;
    return Conflict;
  }

  bool permanentConflict() const { return PermConflict; }

  /// Marks the database permanently conflicting (used once the empty
  /// clause situation arises from persistent propagation).
  void notePermanentConflict() { PermConflict = true; }

private:
  static int code(Lit L) { return L.Code; }
  static int rank(LBool B) {
    if (B == LBool::True)
      return 2;
    return B == LBool::Undef ? 1 : 0;
  }

  LBool value(Lit L) const {
    LBool B = Assigns[L.var()];
    if (B == LBool::Undef)
      return B;
    bool T = (B == LBool::True) != L.negated();
    return T ? LBool::True : LBool::False;
  }

  bool enqueuePersistent(Lit L) {
    if (value(L) == LBool::True)
      return true;
    if (value(L) == LBool::False) {
      PermConflict = true;
      return false;
    }
    Assigns[L.var()] = L.negated() ? LBool::False : LBool::True;
    Trail.push_back(L);
    if (!propagate(QHead)) {
      PermConflict = true;
      return false;
    }
    return true;
  }

  /// Standard two-watch propagation from trail position \p From. Returns
  /// false on conflict. Enqueued literals extend the current segment.
  bool propagate(size_t From) {
    QHead = std::max(QHead, From);
    while (QHead < Trail.size()) {
      Lit P = Trail[QHead++];
      std::vector<size_t> &WList = Watches[code(P)];
      size_t Out = 0;
      for (size_t WI = 0; WI < WList.size(); ++WI) {
        size_t CI = WList[WI];
        std::vector<Lit> &C = Clauses[CI];
        // Normalize: the falsified watch goes to slot 1.
        if (C[0] == ~P)
          std::swap(C[0], C[1]);
        if (value(C[0]) == LBool::True) {
          WList[Out++] = CI;
          continue;
        }
        bool Moved = false;
        for (size_t I = 2; I < C.size(); ++I) {
          if (value(C[I]) != LBool::False) {
            std::swap(C[1], C[I]);
            Watches[code(~C[1])].push_back(CI);
            Moved = true;
            break;
          }
        }
        if (Moved)
          continue;
        WList[Out++] = CI;
        if (value(C[0]) == LBool::False) {
          for (size_t Rest = WI + 1; Rest < WList.size(); ++Rest)
            WList[Out++] = WList[Rest];
          WList.resize(Out);
          return false;
        }
        Assigns[C[0].var()] =
            C[0].negated() ? LBool::False : LBool::True;
        Trail.push_back(C[0]);
      }
      WList.resize(Out);
    }
    return true;
  }

  std::vector<LBool> Assigns;
  std::vector<std::vector<size_t>> Watches; // indexed by Lit::Code
  std::vector<std::vector<Lit>> Clauses;
  std::vector<Lit> Trail;
  size_t QHead = 0;
  bool PermConflict = false;
};

} // namespace

RupChecker::Outcome RupChecker::check(const ProofLog &Log,
                                      bool RequireEmptyClause) {
  Outcome Result;
  Propagator Prop;
  bool SawEmpty = false;

  for (const ProofLog::Event &E : Log.events()) {
    switch (E.K) {
    case ProofLog::EventKind::Delete:
      break; // ignored; see the file comment
    case ProofLog::EventKind::Input:
      if (Prop.permanentConflict())
        break;
      if (E.Clause.empty()) {
        Prop.notePermanentConflict();
        break;
      }
      if (!Prop.addClause(E.Clause))
        Prop.notePermanentConflict();
      break;
    case ProofLog::EventKind::Derived: {
      ++Result.CheckedDerivations;
      if (Prop.permanentConflict()) {
        // Everything is implied by an unsatisfiable database.
        if (E.Clause.empty())
          SawEmpty = true;
        break;
      }
      if (E.Clause.empty()) {
        // The empty clause: propagation alone must already conflict.
        Result.Error = "derived empty clause without a conflict";
        // A permanent conflict would have been flagged by addClause; an
        // explicit re-check distinguishes "not yet propagated".
        if (Prop.refutes(E.Clause) || Prop.permanentConflict()) {
          Result.Error.clear();
          SawEmpty = true;
          Prop.notePermanentConflict();
          break;
        }
        return Result;
      }
      if (!Prop.refutes(E.Clause)) {
        Result.Error = formatString(
            "derivation %zu is not RUP", Result.CheckedDerivations);
        return Result;
      }
      if (!Prop.addClause(E.Clause))
        Prop.notePermanentConflict();
      break;
    }
    }
  }

  if (RequireEmptyClause && !SawEmpty && !Prop.permanentConflict()) {
    Result.Error = "proof does not derive the empty clause";
    return Result;
  }
  Result.Ok = true;
  return Result;
}
