//===--- Dimacs.cpp - DIMACS CNF reading/writing --------------------------===//

#include "sat/Dimacs.h"

#include "support/Format.h"

#include <cctype>
#include <cstdlib>

using namespace checkfence;
using namespace checkfence::sat;

std::string checkfence::sat::writeDimacs(const Cnf &Formula) {
  std::string Out = formatString("p cnf %d %zu\n", Formula.NumVars,
                                 Formula.Clauses.size());
  for (const auto &C : Formula.Clauses) {
    for (Lit L : C)
      Out += formatString("%s%d ", L.negated() ? "-" : "", L.var() + 1);
    Out += "0\n";
  }
  return Out;
}

bool checkfence::sat::parseDimacs(const std::string &Text, Cnf &Out) {
  Out = Cnf();
  size_t Pos = 0;
  const size_t N = Text.size();
  auto SkipWs = [&] {
    while (Pos < N && std::isspace(static_cast<unsigned char>(Text[Pos])))
      ++Pos;
  };
  auto SkipLine = [&] {
    while (Pos < N && Text[Pos] != '\n')
      ++Pos;
  };

  bool SawHeader = false;
  std::vector<Lit> Cur;
  for (;;) {
    SkipWs();
    if (Pos >= N)
      break;
    char C = Text[Pos];
    if (C == 'c') {
      SkipLine();
      continue;
    }
    if (C == 'p') {
      // "p cnf <vars> <clauses>"
      SkipLine(); // values are advisory; we size from the literals
      size_t HeaderEnd = Pos;
      (void)HeaderEnd;
      SawHeader = true;
      continue;
    }
    // A literal.
    char *End = nullptr;
    long V = std::strtol(Text.c_str() + Pos, &End, 10);
    if (End == Text.c_str() + Pos)
      return false;
    Pos = static_cast<size_t>(End - Text.c_str());
    if (V == 0) {
      Out.Clauses.push_back(Cur);
      Cur.clear();
      continue;
    }
    int AbsV = static_cast<int>(V < 0 ? -V : V);
    if (AbsV > Out.NumVars)
      Out.NumVars = AbsV;
    Cur.push_back(Lit::make(AbsV - 1, V < 0));
  }
  return SawHeader || !Out.Clauses.empty() || Out.NumVars == 0;
}

bool checkfence::sat::loadIntoSolver(const Cnf &Formula, Solver &S) {
  while (S.numVars() < Formula.NumVars)
    S.newVar();
  bool Ok = true;
  for (const auto &C : Formula.Clauses)
    Ok = S.addClause(C) && Ok;
  return Ok && S.okay();
}
