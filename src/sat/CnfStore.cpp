//===--- CnfStore.cpp - solver-free CNF capture ------------------------------===//
//
// Part of the CheckFence reproduction (PLDI'07).
//
//===----------------------------------------------------------------------===//

#include "sat/CnfStore.h"

using namespace checkfence;
using namespace checkfence::sat;

bool CnfStore::replayInto(ClauseSink &Sink) const {
  for (int V = 0; V < Formula.NumVars; ++V)
    Sink.newVar();
  bool Ok = true;
  for (const std::vector<Lit> &C : Formula.Clauses)
    Ok = Sink.addClause(C) && Ok;
  return Ok;
}
