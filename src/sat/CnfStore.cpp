//===--- CnfStore.cpp - solver-free CNF capture ------------------------------===//
//
// Part of the CheckFence reproduction (PLDI'07).
//
//===----------------------------------------------------------------------===//

#include "sat/CnfStore.h"

using namespace checkfence;
using namespace checkfence::sat;

bool CnfStore::replayInto(ClauseSink &Sink) const {
  ReplayCursor Cur;
  return replayInto(Sink, Cur);
}

bool CnfStore::replayInto(ClauseSink &Sink, ReplayCursor &Cur) const {
  for (int V = Cur.NextVar; V < Formula.NumVars; ++V)
    Sink.newVar();
  Cur.NextVar = Formula.NumVars;
  bool Ok = true;
  for (std::size_t I = Cur.NextClause; I < Formula.Clauses.size(); ++I)
    Ok = Sink.addClause(Formula.Clauses[I]) && Ok;
  Cur.NextClause = Formula.Clauses.size();
  return Ok;
}
