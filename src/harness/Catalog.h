//===--- Catalog.h - the paper's test catalog (Fig. 8) ----------*- C++ -*-==//
//
// Part of the CheckFence reproduction (PLDI'07).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The symbolic tests of Fig. 8 (queue, set, and deque families) and the
/// operation alphabets used to write them, plus a convenience wrapper that
/// compiles an implementation, builds a test, and runs the full check.
///
//===----------------------------------------------------------------------===//

#ifndef CHECKFENCE_HARNESS_CATALOG_H
#define CHECKFENCE_HARNESS_CATALOG_H

#include "checker/CheckFence.h"
#include "engine/MatrixRunner.h"
#include "harness/TestSpec.h"

#include <set>
#include <string>
#include <vector>

namespace checkfence {
namespace harness {

/// e = enqueue(v), d = dequeue()->v.
OpAlphabet queueAlphabet();
/// a = add(v)->b, c = contains(v)->b, r = remove(v)->b.
OpAlphabet setAlphabet();
/// al/ar = push left/right(v), rl/rr = pop left/right()->v.
OpAlphabet dequeAlphabet();
/// u = push(v), o = pop()->v (the stack extension, not in the paper).
OpAlphabet stackAlphabet();

struct CatalogEntry {
  std::string Name;     ///< e.g. "Ti2"
  std::string Kind;     ///< "queue", "set", or "deque"
  std::string Notation; ///< e.g. "e ( ed | de )"
};

/// All tests of Fig. 8 (plus Saa, which appears in the Fig. 10 table).
const std::vector<CatalogEntry> &paperTests();

/// Additional tests for the data types this repository adds beyond the
/// paper (currently the Treiber stack).
const std::vector<CatalogEntry> &extensionTests();

/// Parses a catalog test by name (paper tests first, then extensions);
/// aborts on unknown names (programming error in callers).
TestSpec testByName(const std::string &Name);

/// Looks a catalog test up by name; nullptr for unknown names.
const CatalogEntry *findCatalogEntry(const std::string &Name);

/// Alphabet for a data-type kind ("queue"/"set"/"deque"/"stack").
OpAlphabet alphabetFor(const std::string &Kind);

/// End-to-end convenience: compile \p ImplSource (CheckFence-C), build
/// \p Test, and run the full check. \p Defines selects #ifdef variants.
/// If \p SpecSource is non-empty, the specification is mined from it
/// instead (the "refset" mode).
struct RunOptions {
  checker::CheckOptions Check;
  std::set<std::string> Defines;
  bool StripFences = false;
  std::set<int> StripFenceLines;
  std::string SpecSource;
};

checker::CheckResult runTest(const std::string &ImplSource,
                             const TestSpec &Test, const RunOptions &Opts);

/// Expands an evaluation matrix over catalog names: every (impl, test,
/// model) combination whose test kind matches the implementation's
/// data-type kind. An empty \p Impls means every implementation, an empty
/// \p Tests means every catalog test of the implementation's kind (paper
/// and extension tests), and an empty \p Models means the Relaxed model.
std::vector<engine::MatrixCell>
expandMatrix(const std::vector<std::string> &Impls,
             const std::vector<std::string> &Tests,
             const std::vector<memmodel::ModelParams> &Models);

/// A thread-safe engine::CellFn that resolves cell names against the
/// implementation table and the Fig. 8 catalog and runs the full check
/// with \p Base options (the cell's model overrides Base.Check.Model).
/// Unknown names produce CheckStatus::Error results instead of aborting.
engine::CellFn catalogCellRunner(const RunOptions &Base);

} // namespace harness
} // namespace checkfence

#endif // CHECKFENCE_HARNESS_CATALOG_H
