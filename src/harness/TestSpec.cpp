//===--- TestSpec.cpp - symbolic test programs -------------------------------===//
//
// Part of the CheckFence reproduction (PLDI'07).
//
//===----------------------------------------------------------------------===//

#include "harness/TestSpec.h"

#include "support/Format.h"

#include <algorithm>
#include <cctype>

using namespace checkfence;
using namespace checkfence::harness;

using lsl::StmtKind;
using lsl::Value;

bool checkfence::harness::parseTestNotation(const std::string &Text,
                                            const OpAlphabet &Alphabet,
                                            TestSpec &Out,
                                            std::string &Error) {
  Out = TestSpec();
  // Longest-match ordering.
  OpAlphabet Sorted = Alphabet;
  std::sort(Sorted.begin(), Sorted.end(),
            [](const OpBinding &A, const OpBinding &B) {
              return A.Token.size() > B.Token.size();
            });

  size_t Pos = 0;
  bool InThreads = false;
  bool SawThreads = false;
  std::vector<OpSpec> Current;

  while (Pos < Text.size()) {
    char C = Text[Pos];
    if (std::isspace(static_cast<unsigned char>(C))) {
      ++Pos;
      continue;
    }
    if (C == '(') {
      if (InThreads) {
        Error = "nested '(' in test notation";
        return false;
      }
      if (SawThreads) {
        Error = "second thread section in test notation";
        return false;
      }
      Out.Init = Current; // init sequence done
      Current.clear();
      InThreads = true;
      ++Pos;
      continue;
    }
    if (C == '|') {
      if (!InThreads) {
        Error = "'|' outside of thread section";
        return false;
      }
      Out.Threads.push_back(Current);
      Current.clear();
      ++Pos;
      continue;
    }
    if (C == ')') {
      if (!InThreads) {
        Error = "unmatched ')'";
        return false;
      }
      Out.Threads.push_back(Current);
      Current.clear();
      InThreads = false;
      SawThreads = true;
      ++Pos;
      continue;
    }
    if (SawThreads) {
      Error = "operation after the closing ')'";
      return false;
    }
    // An operation token. The paper typesets primes both after the base
    // letter (a'l) and after the whole token (al'); accept either.
    const OpBinding *Match = nullptr;
    bool Primed = false;
    for (const OpBinding &B : Sorted) {
      const std::string &T = B.Token;
      if (Text.compare(Pos, T.size(), T) == 0) {
        Match = &B;
        Pos += T.size();
        break;
      }
      if (T.size() == 2 && Pos + 2 < Text.size() && Text[Pos] == T[0] &&
          Text[Pos + 1] == '\'' && Text[Pos + 2] == T[1]) {
        Match = &B;
        Primed = true;
        Pos += 3;
        break;
      }
    }
    if (!Match) {
      Error = formatString("unknown operation token at position %zu", Pos);
      return false;
    }
    if (Pos < Text.size() && Text[Pos] == '\'') {
      Primed = true;
      ++Pos;
    }
    OpSpec Op;
    Op.Proc = Match->Proc;
    Op.NumArgs = Match->NumArgs;
    Op.HasRet = Match->HasRet;
    Op.Primed = Primed;
    Current.push_back(Op);
  }
  if (InThreads) {
    Error = "missing ')' in test notation";
    return false;
  }
  if (!SawThreads) {
    Error = "test has no threads";
    return false;
  }
  return true;
}

std::string
checkfence::harness::renderTestNotation(const TestSpec &Spec,
                                        const OpAlphabet &Alphabet) {
  auto TokenFor = [&](const OpSpec &Op) -> std::string {
    for (const OpBinding &B : Alphabet)
      if (B.Proc == Op.Proc)
        return Op.Primed ? B.Token + "'" : B.Token;
    return "?";
  };
  // Tokens are space-separated so primes stay attached to their own
  // token; the parser skips the whitespace.
  std::vector<std::string> Parts;
  for (const OpSpec &Op : Spec.Init)
    Parts.push_back(TokenFor(Op));
  Parts.push_back("(");
  for (size_t T = 0; T < Spec.Threads.size(); ++T) {
    if (T)
      Parts.push_back("|");
    for (const OpSpec &Op : Spec.Threads[T])
      Parts.push_back(TokenFor(Op));
  }
  Parts.push_back(")");
  return joinStrings(Parts, " ");
}

namespace {

/// Emits the LSL for one operation invocation into \p P.
void emitOp(lsl::Program &Prog, lsl::Proc *P, const OpSpec &Op,
            int GlobalIdx) {
  std::vector<lsl::Reg> Args;
  for (int A = 0; A < Op.NumArgs; ++A) {
    lsl::Stmt *Choice = Prog.create(StmtKind::Choice);
    Choice->Def = P->newReg(formatString("arg%d_%d", GlobalIdx, A));
    Choice->Choices = {Value::integer(0), Value::integer(1)};
    Choice->Loc = SourceLoc{1000 + GlobalIdx, 1};
    P->Body.push_back(Choice);

    lsl::Stmt *Obs = Prog.create(StmtKind::Observe);
    Obs->Args = {Choice->Def};
    Obs->Callee = formatString("%s.%d.arg%d", Op.Proc.c_str(), GlobalIdx, A);
    P->Body.push_back(Obs);
    Args.push_back(Choice->Def);
  }

  lsl::Stmt *Call = Prog.create(StmtKind::Call);
  Call->Callee = Op.Proc;
  Call->Args = Args;
  Call->Imm = Op.Primed ? 1 : 0;
  // Distinct synthetic lines keep per-invocation loop keys distinct.
  Call->Loc = SourceLoc{1000 + GlobalIdx, 1};
  lsl::Reg Ret = lsl::RegNone;
  if (Op.HasRet) {
    Ret = P->newReg(formatString("ret%d", GlobalIdx));
    Call->Rets = {Ret};
  }
  P->Body.push_back(Call);

  if (Op.HasRet) {
    lsl::Stmt *Obs = Prog.create(StmtKind::Observe);
    Obs->Args = {Ret};
    Obs->Callee = formatString("%s.%d.ret", Op.Proc.c_str(), GlobalIdx);
    P->Body.push_back(Obs);
  }
}

} // namespace

std::vector<std::string>
checkfence::harness::buildTestThreads(lsl::Program &Prog,
                                      const TestSpec &Test) {
  std::vector<std::string> Names;
  int GlobalIdx = 0;

  // Init thread: global initializers, the data structure constructor, and
  // the test's initialization sequence.
  {
    std::string Name = "__cf_init";
    lsl::Proc *P = Prog.getOrCreateProc(Name);
    P->Body.clear();
    auto Call = [&](const std::string &Callee) {
      lsl::Stmt *S = Prog.create(StmtKind::Call);
      S->Callee = Callee;
      S->Loc = SourceLoc{900 + GlobalIdx, 1};
      P->Body.push_back(S);
    };
    Call("__global_init");
    Call("init_op");
    for (const OpSpec &Op : Test.Init)
      emitOp(Prog, P, Op, GlobalIdx++);
    Names.push_back(Name);
  }

  for (size_t T = 0; T < Test.Threads.size(); ++T) {
    std::string Name = formatString("__cf_t%zu", T + 1);
    lsl::Proc *P = Prog.getOrCreateProc(Name);
    P->Body.clear();
    for (const OpSpec &Op : Test.Threads[T])
      emitOp(Prog, P, Op, GlobalIdx++);
    Names.push_back(Name);
  }
  return Names;
}
