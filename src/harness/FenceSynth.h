//===--- FenceSynth.h - automatic fence placement ---------------*- C++ -*-==//
//
// Part of the CheckFence reproduction (PLDI'07).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Automates the workflow the paper performs by hand in Sec. 4.2/4.3:
/// starting from an implementation without memory-ordering fences, find a
/// placement of fences that makes the given symbolic tests pass on a
/// relaxed model, and then verify that every placed fence is necessary.
///
/// The search is counterexample-guided. Each failing check yields a trace
/// whose accesses are ordered by the memory order <M; every same-thread
/// pair that appears *inverted* relative to program order is a relaxation
/// the execution exploited. For each inversion (x before y in program
/// order, y before x in <M) the candidate repair is an X-Y fence inserted
/// immediately before y's statement, where X/Y are the access kinds of
/// x/y. Accesses inside shared builtins (cas, locks) are attributed to
/// the implementation source line that invoked them via the inline
/// call-line stack recorded by the flattener.
///
/// Because fences only restrict the execution set, tests are repaired in
/// order: once a test passes it can never regress when later fences are
/// added. A final minimization pass removes fences whose absence does not
/// break any test, so the result is sufficient and 1-minimal ("necessary"
/// in the paper's sense) for the given tests and model.
///
//===----------------------------------------------------------------------===//

#ifndef CHECKFENCE_HARNESS_FENCESYNTH_H
#define CHECKFENCE_HARNESS_FENCESYNTH_H

#include "harness/Catalog.h"
#include "support/WorkerBudget.h"

#include <climits>
#include <string>
#include <vector>

namespace checkfence {
namespace harness {

/// One synthesized fence: insert fence(Kind) immediately before the first
/// statement on source line \p Line.
struct FencePlacement {
  int Line = 0;
  lsl::FenceKind Kind = lsl::FenceKind::LoadLoad;

  bool operator<(const FencePlacement &O) const {
    return Line != O.Line ? Line < O.Line : Kind < O.Kind;
  }
  bool operator==(const FencePlacement &O) const {
    return Line == O.Line && Kind == O.Kind;
  }
};

std::string placementStr(const FencePlacement &P);

struct SynthOptions {
  checker::CheckOptions Check;
  std::set<std::string> Defines;
  /// Remove the implementation's own fence() calls first (synthesize from
  /// scratch). With false, synthesis repairs an existing placement.
  bool StripFences = true;
  /// Insertion region: only source lines within [MinLine, MaxLine] are
  /// eligible (use this to exclude the shared prelude).
  int MinLine = 0;
  int MaxLine = INT_MAX;
  /// Give up after placing this many fences.
  int MaxFences = 24;
  /// Seed candidate placements from the static critical-cycle analysis
  /// (analysis/CriticalCycles.h): each repair round intersects the
  /// counterexample's candidates with the cuts that address a statically
  /// harmful delay pair of the currently placed program, so placements no
  /// critical cycle runs through — which the necessity pass would only
  /// remove again — are never placed and never burn a counterexample
  /// round. The SAT checks are left to confirm the placement and prove
  /// minimality. When the analysis backs none of the candidates (or the
  /// model is outside the analysis fragment) the round falls back to the
  /// unrestricted pick, so the final placement is the same 1-minimal
  /// result with strictly fewer checker runs on seedable workloads.
  bool SeedFromAnalysis = true;
  /// Drop fences that are not needed by any test (necessity check).
  bool Minimize = true;
  /// Worker threads for the minimization pass (each removal candidate
  /// re-checks every test; the per-test checks run in parallel). The
  /// repair loop itself is inherently sequential (each placement depends
  /// on the previous counterexample) - but its checks still exploit
  /// Check.PortfolioWidth, so a lone hard check saturates the budget.
  int Jobs = 1;
  /// Worker budget shared with every other parallel layer of the request.
  /// The minimization fan-out and the per-check portfolios (via
  /// Check.Budget) draw from the same pool, so synthesis never runs more
  /// than `--jobs` threads in total. May be null.
  support::WorkerBudget *Budget = nullptr;
};

struct SynthResult {
  bool Success = false;
  /// Diagnosis when Success is false: sequential bug, non-fence-fixable
  /// counterexample, or budget exhaustion.
  std::string Message;
  /// The final (minimized) placement, sorted by line.
  std::vector<FencePlacement> Fences;
  /// Candidate fences that were placed during the search but removed by
  /// the minimization pass.
  std::vector<FencePlacement> Removed;
  int ChecksRun = 0;
  double TotalSeconds = 0;
  /// Per-phase wall clock: the counterexample-guided repair loop and the
  /// necessity (minimization) pass.
  double RepairSeconds = 0;
  double MinimizeSeconds = 0;
  /// Human-readable narrative of the search (one entry per step).
  std::vector<std::string> Log;
};

/// Inserts fences into \p Prog: each placement adds a Fence statement
/// immediately before the first statement whose source line matches.
/// Returns the number of placements that found their line.
int applyFencePlacements(lsl::Program &Prog,
                         const std::vector<FencePlacement> &Fences);

/// Synthesizes a fence placement for \p ImplSource that makes every test
/// in \p Tests pass under Opts.Check.Model.
SynthResult synthesizeFences(const std::string &ImplSource,
                             const std::vector<TestSpec> &Tests,
                             const SynthOptions &Opts);

} // namespace harness
} // namespace checkfence

#endif // CHECKFENCE_HARNESS_FENCESYNTH_H
