//===--- TestSpec.h - symbolic test programs --------------------*- C++ -*-==//
//
// Part of the CheckFence reproduction (PLDI'07).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Symbolic tests (Sec. 2.1, Fig. 8): a finite sequence of operation calls
/// per thread, plus an optional initialization sequence. Operation
/// arguments are chosen nondeterministically from {0,1}; primed operations
/// restrict retry loops to a single iteration.
///
/// Tests are written in the paper's compact notation, e.g.
///   "e ( ed | de )"      (queue test Ti2)
///   "(a' | a' | c' | c' | r' | r')"   (set test S1)
/// and expanded into LSL thread procedures by buildTestThreads().
///
//===----------------------------------------------------------------------===//

#ifndef CHECKFENCE_HARNESS_TESTSPEC_H
#define CHECKFENCE_HARNESS_TESTSPEC_H

#include "lsl/Program.h"

#include <string>
#include <vector>

namespace checkfence {
namespace harness {

/// One operation invocation in a test.
struct OpSpec {
  std::string Proc;   ///< wrapper procedure, e.g. "enqueue_op"
  int NumArgs = 0;    ///< symbolic {0,1} arguments
  bool HasRet = false;
  bool Primed = false; ///< retry loops restricted to one iteration

  friend bool operator==(const OpSpec &A, const OpSpec &B) {
    return A.Proc == B.Proc && A.NumArgs == B.NumArgs &&
           A.HasRet == B.HasRet && A.Primed == B.Primed;
  }
  friend bool operator!=(const OpSpec &A, const OpSpec &B) {
    return !(A == B);
  }
};

struct TestSpec {
  std::string Name;
  std::vector<OpSpec> Init; ///< runs in the init thread, after init_op
  std::vector<std::vector<OpSpec>> Threads;

  int numOperations() const {
    int N = static_cast<int>(Init.size());
    for (const auto &T : Threads)
      N += static_cast<int>(T.size());
    return N;
  }

  /// Structural equality: the operation sequences only. Name is display
  /// metadata (the notation does not carry it), so parse(render(spec))
  /// compares equal to spec regardless of naming.
  friend bool operator==(const TestSpec &A, const TestSpec &B) {
    return A.Init == B.Init && A.Threads == B.Threads;
  }
  friend bool operator!=(const TestSpec &A, const TestSpec &B) {
    return !(A == B);
  }
};

/// Binding of a notation token to an operation wrapper.
struct OpBinding {
  std::string Token; ///< "e", "d", "al", ...
  std::string Proc;
  int NumArgs = 0;
  bool HasRet = false;
};
using OpAlphabet = std::vector<OpBinding>;

/// Parses the paper's test notation over \p Alphabet. Tokens are matched
/// longest-first; a prime (') after a token marks a no-retry invocation.
/// Format: [init-ops] '(' thread { '|' thread } ')'.
bool parseTestNotation(const std::string &Text, const OpAlphabet &Alphabet,
                       TestSpec &Out, std::string &Error);

/// Renders \p Spec back into the paper's notation over \p Alphabet, e.g.
/// "e ( e d | d e' )". The inverse of parseTestNotation up to whitespace:
/// parse(render(S)) == S for every spec whose operations are all bound in
/// the alphabet. Operations without a token render as "?" (and then do
/// not re-parse) - callers generating specs from an alphabet never hit
/// this.
std::string renderTestNotation(const TestSpec &Spec,
                               const OpAlphabet &Alphabet);

/// Builds the test's thread procedures into \p Prog and returns their
/// names; index 0 is the initialization thread (calls "__global_init" and
/// "init_op" before the init-sequence operations).
std::vector<std::string> buildTestThreads(lsl::Program &Prog,
                                          const TestSpec &Test);

} // namespace harness
} // namespace checkfence

#endif // CHECKFENCE_HARNESS_TESTSPEC_H
