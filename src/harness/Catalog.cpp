//===--- Catalog.cpp - the paper's test catalog (Fig. 8) --------------------===//
//
// Part of the CheckFence reproduction (PLDI'07).
//
//===----------------------------------------------------------------------===//

#include "harness/Catalog.h"

#include "frontend/Lowering.h"
#include "impls/Impls.h"
#include "obs/Log.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>

using namespace checkfence;
using namespace checkfence::harness;

OpAlphabet checkfence::harness::queueAlphabet() {
  return {
      {"e", "enqueue_op", 1, false},
      {"d", "dequeue_op", 0, true},
  };
}

OpAlphabet checkfence::harness::setAlphabet() {
  return {
      {"a", "add_op", 1, true},
      {"c", "contains_op", 1, true},
      {"r", "remove_op", 1, true},
  };
}

OpAlphabet checkfence::harness::dequeAlphabet() {
  return {
      {"al", "pushleft_op", 1, false},
      {"ar", "pushright_op", 1, false},
      {"rl", "popleft_op", 0, true},
      {"rr", "popright_op", 0, true},
  };
}

OpAlphabet checkfence::harness::stackAlphabet() {
  return {
      {"u", "push_op", 1, false},
      {"o", "pop_op", 0, true},
  };
}

OpAlphabet checkfence::harness::alphabetFor(const std::string &Kind) {
  if (Kind == "queue")
    return queueAlphabet();
  if (Kind == "set")
    return setAlphabet();
  if (Kind == "deque")
    return dequeAlphabet();
  if (Kind == "stack")
    return stackAlphabet();
  assert(false && "unknown data-type kind");
  return {};
}

const std::vector<CatalogEntry> &checkfence::harness::paperTests() {
  static const std::vector<CatalogEntry> Tests = {
      // Queue tests (Fig. 8, left column).
      {"T0", "queue", "( e | d )"},
      {"T1", "queue", "( e | e | d | d )"},
      {"Tpc2", "queue", "( ee | dd )"},
      {"Tpc3", "queue", "( eee | ddd )"},
      {"Tpc4", "queue", "( eeee | dddd )"},
      {"Tpc5", "queue", "( eeeee | ddddd )"},
      {"Tpc6", "queue", "( eeeeee | dddddd )"},
      {"Ti2", "queue", "e ( ed | de )"},
      {"Ti3", "queue", "e ( de | dde )"},
      {"T53", "queue", "( eeee | d | d )"},
      {"T54", "queue", "( eee | e | d | d )"},
      {"T55", "queue", "( ee | e | e | d | d )"},
      {"T56", "queue", "( e | e | e | e | d | d )"},
      // Set tests.
      {"Sac", "set", "( a | c )"},
      {"Sar", "set", "( a | r )"},
      {"Sacr", "set", "( a | c | r )"},
      {"Saa", "set", "( a | a )"},
      {"Saacr", "set", "a ( a | c | r )"},
      {"Sacr2", "set", "aar ( a | c | r )"},
      {"Saaarr", "set", "aaa ( r | rc )"},
      {"S1", "set", "(a' | a' | c' | c' | r' | r')"},
      {"Sarr", "set", "( a | r | r )"},
      // Deque tests.
      {"D0", "deque", "(al rr | ar rl)"},
      {"Da", "deque", "al al (rr rr | rl rl)"},
      {"Db", "deque", "(rr rl | ar | al)"},
      {"Dm", "deque", "(a'l a'l a'l | r'r r'r r'r | r'l | a'r)"},
      {"Dq", "deque", "(a'l | a'l | a'r | a'r | r'l | r'l | r'r | r'r )"},
  };
  return Tests;
}

const std::vector<CatalogEntry> &checkfence::harness::extensionTests() {
  // The larger tests use primed (no-retry) operations, the paper's device
  // for loops whose lazy unrolling does not converge (Fig. 8 uses it for
  // S1 and the deque tests Dm/Dq). Treiber's push loop carries no
  // load-load fence chain, so unprimed multi-retry tests diverge on
  // Relaxed (see EXPERIMENTS.md).
  static const std::vector<CatalogEntry> Tests = {
      {"U0", "stack", "( u | o )"},
      {"U1", "stack", "( u' | u' | o' | o' )"},
      {"Upc2", "stack", "( u'u' | o'o' )"},
      {"Upc3", "stack", "( u'u'u' | o'o'o' )"},
      {"Ui2", "stack", "u ( u'o' | o'u' )"},
      {"U53", "stack", "( u'u'u'u' | o' | o' )"},
  };
  return Tests;
}

const CatalogEntry *
checkfence::harness::findCatalogEntry(const std::string &Name) {
  for (const std::vector<CatalogEntry> *List :
       {&paperTests(), &extensionTests()})
    for (const CatalogEntry &E : *List)
      if (E.Name == Name)
        return &E;
  return nullptr;
}

TestSpec checkfence::harness::testByName(const std::string &Name) {
  if (const CatalogEntry *E = findCatalogEntry(Name)) {
    TestSpec Spec;
    std::string Err;
    if (!parseTestNotation(E->Notation, alphabetFor(E->Kind), Spec, Err)) {
      obs::logf(obs::LogLevel::Error, "harness",
                "catalog test %s failed to parse: %s", Name.c_str(),
                Err.c_str());
      std::abort();
    }
    Spec.Name = Name;
    return Spec;
  }
  obs::logf(obs::LogLevel::Error, "harness", "unknown catalog test '%s'",
            Name.c_str());
  std::abort();
}

checker::CheckResult
checkfence::harness::runTest(const std::string &ImplSource,
                             const TestSpec &Test, const RunOptions &Opts) {
  checker::CheckResult Result;

  frontend::LoweringOptions LO;
  LO.StripFences = Opts.StripFences;
  LO.StripFenceLines = Opts.StripFenceLines;

  frontend::DiagEngine Diags;
  lsl::Program Impl;
  if (!frontend::compileC(ImplSource, Opts.Defines, Impl, Diags, LO)) {
    Result.Status = checker::CheckStatus::Error;
    Result.Message = "frontend error:\n" + Diags.str();
    return Result;
  }
  std::vector<std::string> Threads = buildTestThreads(Impl, Test);

  lsl::Program SpecProg;
  bool UseSpec = !Opts.SpecSource.empty();
  if (UseSpec) {
    frontend::DiagEngine SpecDiags;
    if (!frontend::compileC(Opts.SpecSource, Opts.Defines, SpecProg,
                            SpecDiags, frontend::LoweringOptions())) {
      Result.Status = checker::CheckStatus::Error;
      Result.Message = "frontend error in reference:\n" + SpecDiags.str();
      return Result;
    }
    std::vector<std::string> SpecThreads =
        buildTestThreads(SpecProg, Test);
    (void)SpecThreads; // same names by construction
  }

  return checker::runCheck(Impl, Threads, Opts.Check,
                           UseSpec ? &SpecProg : nullptr);
}

std::vector<engine::MatrixCell> checkfence::harness::expandMatrix(
    const std::vector<std::string> &Impls,
    const std::vector<std::string> &Tests,
    const std::vector<memmodel::ModelParams> &Models) {
  std::vector<std::string> UseImpls = Impls;
  if (UseImpls.empty())
    for (const impls::ImplInfo &I : impls::allImpls())
      UseImpls.push_back(I.Name);
  std::vector<memmodel::ModelParams> UseModels = Models;
  if (UseModels.empty())
    UseModels.push_back(checker::CheckOptions{}.Model); // the one default

  std::vector<engine::MatrixCell> Cells;
  for (const std::string &Impl : UseImpls) {
    const impls::ImplInfo *Info = impls::findImpl(Impl);
    std::string Kind = Info ? Info->Kind : "";
    std::vector<std::string> UseTests = Tests;
    if (UseTests.empty()) {
      for (const std::vector<CatalogEntry> *List :
           {&paperTests(), &extensionTests()})
        for (const CatalogEntry &E : *List)
          if (E.Kind == Kind)
            UseTests.push_back(E.Name);
    }
    if (!Info && UseTests.empty())
      UseTests.push_back("?"); // keep a cell so the runner reports the typo
    for (const std::string &Test : UseTests) {
      const CatalogEntry *E = findCatalogEntry(Test);
      if (E && !Kind.empty() && E->Kind != Kind)
        continue; // kind mismatch: the impl cannot run this test
      for (memmodel::ModelParams Model : UseModels) {
        engine::MatrixCell Cell;
        Cell.Impl = Impl;
        Cell.Test = Test;
        Cell.Model = Model;
        Cells.push_back(Cell);
      }
    }
  }
  return Cells;
}

engine::CellFn
checkfence::harness::catalogCellRunner(const RunOptions &Base) {
  return [Base](const engine::MatrixCell &Cell) -> checker::CheckResult {
    checker::CheckResult R;
    if (!impls::findImpl(Cell.Impl)) {
      R.Status = checker::CheckStatus::Error;
      R.Message = "unknown implementation '" + Cell.Impl + "'";
      return R;
    }
    const CatalogEntry *E = findCatalogEntry(Cell.Test);
    if (!E) {
      R.Status = checker::CheckStatus::Error;
      R.Message = "unknown catalog test '" + Cell.Test + "'";
      return R;
    }
    TestSpec Spec;
    std::string Err;
    if (!parseTestNotation(E->Notation, alphabetFor(E->Kind), Spec, Err)) {
      R.Status = checker::CheckStatus::Error;
      R.Message = "catalog test " + Cell.Test + " failed to parse: " + Err;
      return R;
    }
    Spec.Name = E->Name;
    RunOptions Opts = Base;
    Opts.Check.Model = Cell.Model;
    return runTest(impls::sourceFor(Cell.Impl), Spec, Opts);
  };
}
