//===--- FenceSynth.cpp - automatic fence placement -------------------------===//
//
// Part of the CheckFence reproduction (PLDI'07).
//
//===----------------------------------------------------------------------===//

#include "harness/FenceSynth.h"

#include "analysis/CriticalCycles.h"
#include "engine/MatrixRunner.h"
#include "frontend/Lowering.h"
#include "obs/Trace.h"
#include "support/Format.h"
#include "support/Timing.h"
#include "trans/Flattener.h"
#include "trans/RangeAnalysis.h"

#include <algorithm>
#include <atomic>
#include <map>

using namespace checkfence;
using namespace checkfence::harness;
using checker::CheckResult;
using checker::CheckStatus;

std::string checkfence::harness::placementStr(const FencePlacement &P) {
  return formatString("%s fence before line %d", fenceKindName(P.Kind),
                      P.Line);
}

namespace {

/// Recursively finds the insertion point for \p Line: the first statement
/// in pre-order whose source line matches. Non-block statements are
/// preferred (the fence should sit directly before the access, not before
/// an enclosing loop that merely starts on the same line).
struct InsertionPoint {
  std::vector<lsl::Stmt *> *Body = nullptr;
  size_t Index = 0;
  bool IsBlockLike = false;
};

void findLine(std::vector<lsl::Stmt *> &Body, int Line,
              InsertionPoint &Best) {
  for (size_t I = 0; I < Body.size(); ++I) {
    lsl::Stmt *S = Body[I];
    if (S->Loc.Line == Line && S->K != lsl::StmtKind::Fence) {
      bool BlockLike = S->isBlockLike();
      if (!Best.Body || (Best.IsBlockLike && !BlockLike)) {
        Best.Body = &Body;
        Best.Index = I;
        Best.IsBlockLike = BlockLike;
      }
      if (!BlockLike)
        return; // pre-order first non-block match wins
    }
    if (!S->Body.empty()) {
      findLine(S->Body, Line, Best);
      if (Best.Body && !Best.IsBlockLike)
        return;
    }
  }
}

} // namespace

int checkfence::harness::applyFencePlacements(
    lsl::Program &Prog, const std::vector<FencePlacement> &Fences) {
  int Applied = 0;
  for (const FencePlacement &F : Fences) {
    InsertionPoint Best;
    for (const auto &[Name, Proc] : Prog.procs()) {
      findLine(Proc->Body, F.Line, Best);
      if (Best.Body && !Best.IsBlockLike)
        break;
    }
    if (!Best.Body)
      continue;
    lsl::Stmt *Fence = Prog.create(lsl::StmtKind::Fence);
    Fence->FenceK = F.Kind;
    Fence->Loc.Line = F.Line;
    Best.Body->insert(Best.Body->begin() + Best.Index, Fence);
    ++Applied;
  }
  return Applied;
}

namespace {

/// The innermost source line of \p E that lies in the eligible region, or
/// -1. Accesses inside shared builtins resolve to their call sites.
int attributedLine(const checker::TraceEntry &E, const SynthOptions &Opts) {
  if (E.Loc.Line >= Opts.MinLine && E.Loc.Line <= Opts.MaxLine)
    return E.Loc.Line;
  for (auto It = E.CallLines.rbegin(); It != E.CallLines.rend(); ++It)
    if (*It >= Opts.MinLine && *It <= Opts.MaxLine)
      return *It;
  return -1;
}

lsl::FenceKind fenceKindFor(bool EarlierIsLoad, bool LaterIsLoad) {
  if (EarlierIsLoad)
    return LaterIsLoad ? lsl::FenceKind::LoadLoad
                       : lsl::FenceKind::LoadStore;
  return LaterIsLoad ? lsl::FenceKind::StoreLoad
                     : lsl::FenceKind::StoreStore;
}

/// Ranks fence kinds by how often the paper's algorithms need them
/// (store-store and load-load account for all placed fences in Sec. 4.2).
int kindPreference(lsl::FenceKind K) {
  switch (K) {
  case lsl::FenceKind::StoreStore:
    return 0;
  case lsl::FenceKind::LoadLoad:
    return 1;
  case lsl::FenceKind::LoadStore:
    return 2;
  case lsl::FenceKind::StoreLoad:
    return 3;
  }
  return 4;
}

/// Collects candidate repairs from the program-order/memory-order
/// inversions of a counterexample trace, scored by how many inversions
/// each one addresses.
std::map<FencePlacement, int>
candidatesFromTrace(const checker::Trace &T, const SynthOptions &Opts,
                    const std::set<FencePlacement> &Placed) {
  std::map<FencePlacement, int> Cands;
  const std::vector<checker::TraceEntry> &M = T.MemoryOrder;
  for (size_t I = 0; I < M.size(); ++I) {
    // The init thread (thread 0 by the test-builder convention) precedes
    // every other access; its internal order is unobservable, so its
    // inversions are noise.
    if (M[I].Thread == 0)
      continue;
    for (size_t J = I + 1; J < M.size(); ++J) {
      // M[I] is <M-before M[J]; an inversion means M[J] is po-before M[I].
      if (M[I].Thread != M[J].Thread || M[J].PoIndex >= M[I].PoIndex)
        continue;
      const checker::TraceEntry &X = M[J]; // po-earlier, <M-later
      const checker::TraceEntry &Y = M[I]; // po-later, <M-earlier
      int Line = attributedLine(Y, Opts);
      if (Line < 0)
        continue;
      FencePlacement P;
      P.Line = Line;
      P.Kind = fenceKindFor(!X.IsStore, !Y.IsStore);
      if (Placed.count(P))
        continue;
      ++Cands[P];
    }
  }
  return Cands;
}

bool pickCandidate(const std::map<FencePlacement, int> &Cands,
                   FencePlacement &Out) {
  bool Have = false;
  int BestScore = 0;
  for (const auto &[P, Score] : Cands) {
    bool Better = !Have || Score > BestScore ||
                  (Score == BestScore &&
                   (kindPreference(P.Kind) < kindPreference(Out.Kind) ||
                    (kindPreference(P.Kind) == kindPreference(Out.Kind) &&
                     P.Line < Out.Line)));
    if (Better) {
      Out = P;
      BestScore = Score;
      Have = true;
    }
  }
  return Have;
}

} // namespace

SynthResult
checkfence::harness::synthesizeFences(const std::string &ImplSource,
                                      const std::vector<TestSpec> &Tests,
                                      const SynthOptions &Opts) {
  SynthResult Result;
  Timer Total;
  std::atomic<int> ChecksRun{0};

  // Thread-safe: compiles its own program and runs its own CheckSession,
  // so the minimization pass can fan these out across workers.
  auto RunOnce = [&](const TestSpec &Test,
                     const std::vector<FencePlacement> &Fences)
      -> CheckResult {
    ++ChecksRun;
    frontend::LoweringOptions LO;
    LO.StripFences = Opts.StripFences;
    frontend::DiagEngine Diags;
    lsl::Program Impl;
    CheckResult R;
    if (!frontend::compileC(ImplSource, Opts.Defines, Impl, Diags, LO)) {
      R.Status = CheckStatus::Error;
      R.Message = "frontend error:\n" + Diags.str();
      return R;
    }
    applyFencePlacements(Impl, Fences);
    std::vector<std::string> Threads = buildTestThreads(Impl, Test);
    return checker::runCheck(Impl, Threads, Opts.Check);
  };

  auto Fail = [&](const std::string &Msg) {
    Result.Success = false;
    Result.Message = Msg;
    Result.ChecksRun = ChecksRun;
    Result.TotalSeconds = Total.seconds();
    return Result;
  };

  std::vector<FencePlacement> Placed;
  std::set<FencePlacement> PlacedSet;

  // Seed placements from the critical-cycle analysis: the set of
  // (line, kind) cuts that address at least one statically harmful delay
  // pair - a pair on a critical cycle or a store-load coherence hazard -
  // of the program with the current fences. candidatesFromTrace mines
  // every program-order inversion of a counterexample, most of which are
  // incidental (the execution reordered them, but no cycle runs through
  // them, so a fence there cannot be load-bearing and the necessity pass
  // would remove it again); intersecting the candidates with these cuts
  // steers each round toward the placements that can actually survive.
  auto SeedCuts = [&](const TestSpec &Test) {
    std::set<FencePlacement> Cuts;
    frontend::LoweringOptions LO;
    LO.StripFences = Opts.StripFences;
    frontend::DiagEngine Diags;
    lsl::Program Impl;
    if (!frontend::compileC(ImplSource, Opts.Defines, Impl, Diags, LO))
      return Cuts;
    applyFencePlacements(Impl, Placed);
    std::vector<std::string> Threads = buildTestThreads(Impl, Test);
    trans::FlatProgram Flat;
    trans::Flattener F(Impl, Flat, Opts.Check.InitialBounds);
    for (size_t T = 0; T < Threads.size(); ++T)
      if (!F.flattenThread(Threads[T], static_cast<int>(T)))
        return Cuts;
    trans::RangeInfo Ranges = trans::analyzeRanges(Flat);
    analysis::AnalysisOptions AO;
    AO.MinLine = Opts.MinLine;
    AO.MaxLine = Opts.MaxLine;
    analysis::RobustnessResult RR =
        analysis::analyzeRobustness(Flat, Ranges, Opts.Check.Model, AO);
    for (const analysis::SuggestedCut &C : RR.Cuts) {
      FencePlacement P;
      P.Line = C.Line;
      P.Kind = C.Kind;
      Cuts.insert(P);
    }
    return Cuts;
  };

  // Repair the tests in order. Fences only restrict the execution set, so
  // a repaired test never regresses when later fences are added.
  Timer RepairTimer;
  for (const TestSpec &Test : Tests) {
    obs::Span RepairSpan("synth",
                         [&] { return "repair:" + Test.Name; });
    for (;;) {
      obs::Span RoundSpan("synth", "repair_round");
      CheckResult R = RunOnce(Test, Placed);
      if (R.Status == CheckStatus::Pass) {
        Result.Log.push_back(
            formatString("%s: PASS with %d fences", Test.Name.c_str(),
                         static_cast<int>(Placed.size())));
        break;
      }
      if (R.Status == CheckStatus::SequentialBug)
        return Fail(Test.Name +
                    ": implementation misbehaves on a serial execution; "
                    "no fence placement can repair it");
      if (R.Status != CheckStatus::Fail)
        return Fail(Test.Name + ": " + checkStatusName(R.Status) + ": " +
                    R.Message);
      if (!R.Counterexample)
        return Fail(Test.Name + ": counterexample unavailable");
      if (static_cast<int>(Placed.size()) >= Opts.MaxFences)
        return Fail(formatString("fence budget (%d) exhausted on %s",
                                 Opts.MaxFences, Test.Name.c_str()));

      std::map<FencePlacement, int> Cands =
          candidatesFromTrace(*R.Counterexample, Opts, PlacedSet);
      if (Cands.empty())
        return Fail(Test.Name +
                    ": counterexample has no program-order inversion in "
                    "the eligible region; the failure is not fixable by "
                    "fences (algorithmic bug?)");

      // When the model is in the analysis fragment, restrict the pick to
      // the candidates the static analysis can vouch for (the counter-
      // example gives no weight to the candidates it deems incidental,
      // so the placement order among the survivors is unchanged). If the
      // conservative analysis backs none of the candidates - its line
      // attribution can disagree with the trace's on inlined builtins -
      // fall back to the unrestricted pick rather than stall.
      bool Steered = false;
      if (Opts.SeedFromAnalysis &&
          analysis::analysisEligible(Opts.Check.Model)) {
        std::set<FencePlacement> Seeds = SeedCuts(Test);
        std::map<FencePlacement, int> Cut;
        for (const auto &[P, Score] : Cands)
          if (Seeds.count(P))
            Cut[P] = Score;
        if (!Cut.empty()) {
          Steered = Cut.size() < Cands.size();
          Cands = std::move(Cut);
        }
      }

      FencePlacement Pick;
      pickCandidate(Cands, Pick);
      Placed.push_back(Pick);
      PlacedSet.insert(Pick);
      Result.Log.push_back(formatString(
          "%s: FAIL; placing %s (%d candidate inversions%s)",
          Test.Name.c_str(), placementStr(Pick).c_str(),
          static_cast<int>(Cands.size()),
          Steered ? ", cycle-backed" : ""));
    }
  }

  Result.RepairSeconds = RepairTimer.seconds();

  // Necessity pass: drop any fence whose removal keeps all tests passing.
  // Candidates are tried one at a time (each removal changes the baseline
  // for the next), but the per-test re-checks of one candidate are
  // independent and fan out across the shared worker budget (each check
  // additionally racing its portfolio within the same budget).
  Timer MinimizeTimer;
  if (Opts.Minimize) {
    obs::Span MinimizeSpan("synth", "minimize");
    for (size_t I = Placed.size(); I-- > 0;) {
      std::vector<FencePlacement> Without = Placed;
      Without.erase(Without.begin() + I);
      std::atomic<bool> AnyFail{false};
      engine::parallelFor(Opts.Budget, Opts.Jobs, Tests.size(), [&](size_t T) {
        if (AnyFail.load())
          return; // a sibling already refuted this removal
        if (!RunOnce(Tests[T], Without).passed())
          AnyFail.store(true);
      });
      if (!AnyFail) {
        Result.Log.push_back(
            formatString("minimize: %s is redundant, removing",
                         placementStr(Placed[I]).c_str()));
        Result.Removed.push_back(Placed[I]);
        Placed = std::move(Without);
      }
    }
  }

  Result.MinimizeSeconds = MinimizeTimer.seconds();

  std::sort(Placed.begin(), Placed.end());
  Result.Fences = std::move(Placed);
  Result.Success = true;
  Result.Message = formatString("%d fences suffice",
                                static_cast<int>(Result.Fences.size()));
  Result.ChecksRun = ChecksRun;
  Result.TotalSeconds = Total.seconds();
  return Result;
}
