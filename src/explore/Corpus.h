//===--- Corpus.h - scenario dedup and repro persistence --------*- C++ -*-==//
//
// Part of the CheckFence reproduction (PLDI'07).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The explore corpus: dedupes scenarios by lowered-program fingerprint
/// (two textually different generations of the same program are the same
/// work) and persists shrunk divergence reproducers as re-checkable
/// files.
///
/// A repro file is self-contained: the litmus source (re-rendered from
/// the lowered program via lsl::printCSource so it re-compiles to a
/// byte-identical program), or the implementation name plus the TestSpec
/// notation for symbolic scenarios, together with the model axis and the
/// divergence that was observed. loadRepro() turns the file back into a
/// runnable Scenario.
///
/// With a corpus directory configured, seen fingerprints persist across
/// runs ("seen.txt"), so repeated explore sessions spend their budget on
/// fresh scenarios. Without one the corpus is in-memory only.
///
//===----------------------------------------------------------------------===//

#ifndef CHECKFENCE_EXPLORE_CORPUS_H
#define CHECKFENCE_EXPLORE_CORPUS_H

#include "explore/Differential.h"
#include "explore/Generator.h"

#include <set>
#include <string>

namespace checkfence {
namespace explore {

/// A persisted (or to-be-persisted) divergence reproducer.
struct Repro {
  std::string Label;
  Divergence Div;
  std::vector<std::string> Models; ///< model axis the divergence needs
  int Threads = 0;
  int Ops = 0;
  /// Exactly one of these is set: litmus source, or impl + notation.
  std::string Source;
  std::string Impl;
  std::string Notation;

  /// A runnable scenario equivalent to this repro (litmus scenarios
  /// come back without shrinkable structure).
  Scenario toScenario() const;
};

/// Fingerprint of the scenario's lowered program(s) - the corpus dedup
/// key. Empty + \p Error on frontend failures.
std::string scenarioFingerprint(const Scenario &S, std::string &Error);

/// Builds the repro record for a (typically shrunk) divergent scenario.
/// Litmus sources are re-rendered through lsl::printCSource from the
/// compiled program. False + \p Error when the scenario cannot be
/// persisted (outside the printer fragment).
bool buildRepro(const Scenario &S, const Divergence &D,
                const std::vector<memmodel::ModelParams> &Models,
                Repro &Out, std::string &Error);

class Corpus {
public:
  /// \p Dir empty = in-memory dedup only, nothing persisted.
  explicit Corpus(std::string Dir);

  /// Loads seen fingerprints from the directory (no-op without one).
  void load();

  /// True when the fingerprint was already noted (this run or, with a
  /// directory, a previous one).
  bool seen(const std::string &Fp) const;
  void note(const std::string &Fp);
  size_t size() const { return Seen.size(); }

  /// Appends newly noted fingerprints to seen.txt (no-op without a
  /// directory). False on I/O failure.
  bool persist();

  /// Writes a repro file ("repro-<fp>.txt"); returns its path, or ""
  /// without a directory, with \p Error set on I/O failure.
  std::string saveRepro(const Repro &R, const std::string &Fp,
                        std::string &Error) const;

private:
  std::string Dir;
  std::set<std::string> Seen;
};

/// Serializes \p R into the repro file format (also used by tests to
/// round-trip without touching disk).
std::string renderRepro(const Repro &R);

/// Parses a repro file's contents. False + \p Error on malformed input.
bool parseRepro(const std::string &Text, Repro &Out, std::string &Error);

/// Reads and parses a repro file from disk.
bool loadRepro(const std::string &Path, Repro &Out, std::string &Error);

} // namespace explore
} // namespace checkfence

#endif // CHECKFENCE_EXPLORE_CORPUS_H
