//===--- Differential.h - oracle-checked scenario execution -----*- C++ -*-==//
//
// Part of the CheckFence reproduction (PLDI'07).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs one explore scenario across a configurable set of relaxation-
/// lattice points and cross-checks independent implementations of the
/// semantics against each other:
///
///  * \b Litmus scenarios: the SAT-mined observation set of every model
///    point must equal the AxiomaticEnumerator's brute-force enumeration
///    (two implementations of the Sec. 2.3.2 axioms that share no code
///    beyond FlatProgram), and under sc additionally the
///    ReferenceExecutor's interleaving enumeration. Observation sets
///    must also nest along the lattice order (stronger subset-of
///    weaker).
///  * \b Symbolic scenarios: the full checker verdict per model point,
///    run on the Verifier's session pool; verdicts must be monotone
///    along the lattice (pass under a weaker model implies pass under
///    every stronger one) and sequential-bug verdicts must agree across
///    models. The serial mined specification is additionally compared
///    against the ReferenceExecutor at invocation granularity.
///
/// Any disagreement, unexpected engine error, or broken invariant is
/// reported as a Divergence; fragment/budget limits are reported as
/// skips (never silently dropped).
///
//===----------------------------------------------------------------------===//

#ifndef CHECKFENCE_EXPLORE_DIFFERENTIAL_H
#define CHECKFENCE_EXPLORE_DIFFERENTIAL_H

#include "checkfence/Events.h"
#include "checkfence/Verifier.h"
#include "explore/Generator.h"
#include "memmodel/MemoryModel.h"

#include <chrono>
#include <functional>
#include <string>
#include <vector>

namespace checkfence {
namespace lsl {
class Program;
}
namespace explore {

struct DiffOptions {
  /// Lattice points every scenario fans out across. Must be non-empty
  /// and multi-copy atomic (the encoder's supported half-lattice).
  std::vector<memmodel::ModelParams> Models;
  /// Brute-force budgets; scenarios over budget are skipped, not failed.
  uint64_t OracleMaxOrders = 20'000'000;
  uint64_t RefMaxSteps = 20'000'000;
  /// Use the polynomial ReadsFromOracle as the primary litmus oracle on
  /// readsFromEligible() lattice points (sc/tso/pso and the po:
  /// descriptors they cover); ineligible points stay on the
  /// AxiomaticEnumerator. Off = enumerator everywhere (the pre-oracle
  /// behaviour, kept for differential runs against the fast path).
  bool UseFastOracle = true;
  /// With the fast oracle on, additionally run the AxiomaticEnumerator
  /// as a differential reference on every Nth eligible litmus scenario
  /// (keyed on Scenario::Index, so the sample set is identical at any
  /// job count); a disagreement is an "oracle-vs-enumerator"
  /// divergence. 0 = never sample. Sampled runs never add skips or
  /// otherwise alter the report, so the report is byte-identical across
  /// sample periods.
  int EnumeratorSamplePeriod = 8;
  /// Engine budgets for symbolic checks (small: generated tests either
  /// converge quickly or are reported as bounds-exhausted skips - the
  /// bounds of converging tests stabilize within the first two
  /// mine/include/probe rounds).
  int MaxBoundIterations = 2;
  /// Also caps how far lazy unrolling can grow a generated test: every
  /// probe appends a re-unrolling, and unprimed retry loops that never
  /// converge would otherwise inflate the encoding by orders of
  /// magnitude before any budget fires.
  int MaxProbes = 8;
  /// Conflict budget per engine solve: random unprimed tests can hit
  /// pathologically hard SAT instances (minutes on one scenario);
  /// exhaustion is recorded as a deterministic skip, never a
  /// divergence. Conflict counts are solver-deterministic, so the
  /// skip set is identical at any job count.
  long long EngineConflictBudget = 200'000;
  /// Cooperative cancellation, polled between models. Token cancels the
  /// inner engine runs too; Stop (optional) is polled alongside it -
  /// the facade routes deadline expiry through it.
  CancelToken Token;
  std::function<bool()> Stop;
  /// Absolute soft deadline (facade-set). Beyond the coarse Stop polls,
  /// the remaining time is forwarded into each inner engine check so a
  /// single slow generated check cannot overshoot by its full runtime.
  bool HasDeadline = false;
  std::chrono::steady_clock::time_point Deadline{};

  bool stopRequested() const {
    return Token.cancelled() || (Stop && Stop()) ||
           (HasDeadline && std::chrono::steady_clock::now() >= Deadline);
  }
  /// Seconds until the deadline (0 = no deadline configured). Never
  /// returns a negative value; expiry shows up via stopRequested().
  double remainingSeconds() const {
    if (!HasDeadline)
      return 0;
    double S = std::chrono::duration<double>(
                   Deadline - std::chrono::steady_clock::now())
                   .count();
    return S > 0.001 ? S : 0.001;
  }
  /// Test seam: when set, a non-empty return is reported as an
  /// "injected" divergence for the scenario (litmus scenarios only; the
  /// argument is the compiled program before thread building). Lets the
  /// shrinker and repro persistence be exercised without a real
  /// checker bug.
  std::function<std::string(const lsl::Program &)> Inject;
};

/// One checker-vs-oracle disagreement (or broken cross-model invariant).
struct Divergence {
  std::string Kind;  ///< "sat-vs-axiomatic", "oracle-vs-enumerator",
                     ///< "sat-vs-reference", "serial-vs-reference",
                     ///< "lattice-monotonicity", "seqbug-inconsistency",
                     ///< "engine-error", "frontend-error", "injected"
  std::string Model; ///< display name; empty for cross-model kinds
  std::string Detail;
};

struct ScenarioOutcome {
  bool Ran = false;       ///< compiled and at least one model compared
  bool Cancelled = false; ///< stopped by the token before finishing
  std::vector<Divergence> Divergences;
  /// "model: reason" fragment/budget skips (deterministic order).
  std::vector<std::string> Skips;
  /// Deterministic one-line summary for the report ("sc=4 tso=5 ..."
  /// observation counts, or "sc=PASS tso=FAIL ..." verdicts).
  std::string Summary;
};

class DifferentialRunner {
public:
  DifferentialRunner(Verifier &V, DiffOptions Opts);

  ScenarioOutcome run(const Scenario &S) const;

private:
  ScenarioOutcome runLitmus(const Scenario &S) const;
  ScenarioOutcome runSymbolic(const Scenario &S) const;

  Verifier &V;
  DiffOptions Opts;
};

} // namespace explore
} // namespace checkfence

#endif // CHECKFENCE_EXPLORE_DIFFERENTIAL_H
