//===--- Shrinker.h - delta-debugging divergent scenarios -------*- C++ -*-==//
//
// Part of the CheckFence reproduction (PLDI'07).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reduces a divergent scenario to a minimal reproducer by greedy delta
/// debugging: repeatedly apply the smallest-first reduction whose result
/// still diverges, until no reduction applies. Reductions:
///
///  * drop a whole thread (litmus threads / symbolic test threads)
///  * drop one statement (litmus) or one operation (symbolic)
///  * drop a symbolic init-sequence operation, or prime an operation
///  * shrink stored constants (2 -> 1)
///  * narrow the model set to the single diverging point
///
/// Every candidate is re-validated through the same DifferentialRunner
/// that found the divergence, so a shrunk repro is divergent by
/// construction, not by assumption. The step budget bounds pathological
/// cases; the partially shrunk scenario is still returned.
///
//===----------------------------------------------------------------------===//

#ifndef CHECKFENCE_EXPLORE_SHRINKER_H
#define CHECKFENCE_EXPLORE_SHRINKER_H

#include "explore/Differential.h"
#include "explore/Generator.h"

namespace checkfence {
namespace explore {

struct ShrinkResult {
  Scenario Min;          ///< the reduced scenario (== input if nothing held)
  Divergence Repro;      ///< a divergence of the reduced scenario
  /// The (possibly narrowed) model axis the repro diverges under.
  std::vector<memmodel::ModelParams> Models;
  int Steps = 0;         ///< successful reductions applied
  int Attempts = 0;      ///< differential re-runs spent
  bool HitBudget = false;
};

struct ShrinkOptions {
  int MaxAttempts = 250;
};

/// Shrinks \p S, whose differential run produced at least one
/// divergence, re-running candidates on \p Runner's verifier with the
/// (possibly narrowed) model set. \p Opts is the differential
/// configuration the divergence was found under.
ShrinkResult shrinkScenario(const Scenario &S, Verifier &V,
                            const DiffOptions &Opts,
                            const ShrinkOptions &SO = ShrinkOptions());

} // namespace explore
} // namespace checkfence

#endif // CHECKFENCE_EXPLORE_SHRINKER_H
