//===--- Corpus.cpp - scenario dedup and repro persistence -------------------===//
//
// Part of the CheckFence reproduction (PLDI'07).
//
//===----------------------------------------------------------------------===//

#include "explore/Corpus.h"

#include "frontend/Lowering.h"
#include "harness/Catalog.h"
#include "impls/Impls.h"
#include "lsl/Printer.h"
#include "support/Fingerprint.h"
#include "support/Format.h"

#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <sys/stat.h>

using namespace checkfence;
using namespace checkfence::explore;

Scenario Repro::toScenario() const {
  Scenario S;
  if (!Source.empty()) {
    S.K = Scenario::Kind::Litmus;
    S.Source = Source;
    S.HasStructure = false;
  } else {
    S.K = Scenario::Kind::Symbolic;
    S.Impl = Impl;
    S.Notation = Notation;
  }
  return S;
}

namespace {

/// Lowered text of a built-in implementation, compiled once per process
/// (the selection phase fingerprints hundreds of symbolic scenarios
/// drawn from a handful of implementations). Thread-safe.
const std::string *loweredImplText(const std::string &Impl,
                                   std::string &Error) {
  static std::mutex Mu;
  static std::map<std::string, std::string> Cache;
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Cache.find(Impl);
  if (It != Cache.end())
    return &It->second;
  frontend::DiagEngine Diags;
  lsl::Program Prog;
  if (!frontend::compileC(impls::sourceFor(Impl), {}, Prog, Diags)) {
    Error = "frontend error:\n" + Diags.str();
    return nullptr;
  }
  return &(Cache[Impl] = lsl::printProgram(Prog));
}

} // namespace

std::string checkfence::explore::scenarioFingerprint(const Scenario &S,
                                                     std::string &Error) {
  if (S.K == Scenario::Kind::Litmus) {
    frontend::DiagEngine Diags;
    lsl::Program Prog;
    if (!frontend::compileC(S.Source, {}, Prog, Diags)) {
      Error = "frontend error:\n" + Diags.str();
      return std::string();
    }
    return support::loweredProgramFingerprint(Prog, {});
  }
  const impls::ImplInfo *Info = impls::findImpl(S.Impl);
  if (!Info) {
    Error = "unknown implementation '" + S.Impl + "'";
    return std::string();
  }
  // Parse (rejecting bad notation) but fingerprint over the impl's
  // cached lowered text plus the canonical notation rendering: the
  // thread procedures are a pure function of the two, so recompiling
  // the implementation per scenario would add nothing but time.
  harness::TestSpec Spec;
  harness::OpAlphabet Alphabet = harness::alphabetFor(Info->Kind);
  if (!harness::parseTestNotation(S.Notation, Alphabet, Spec, Error))
    return std::string();
  const std::string *ImplText = loweredImplText(S.Impl, Error);
  if (!ImplText)
    return std::string();
  std::string Blob = *ImplText;
  Blob += '\x1f';
  Blob += S.Impl;
  Blob += '\x1f';
  Blob += harness::renderTestNotation(Spec, Alphabet);
  return support::fnv1aHex(Blob);
}

bool checkfence::explore::buildRepro(
    const Scenario &S, const Divergence &D,
    const std::vector<memmodel::ModelParams> &Models, Repro &Out,
    std::string &Error) {
  Out = Repro();
  Out.Label = S.label();
  Out.Div = D;
  for (const memmodel::ModelParams &M : Models)
    Out.Models.push_back(memmodel::modelName(M));
  Out.Threads = S.threadCount();
  Out.Ops = S.opCount();
  if (S.K == Scenario::Kind::Symbolic) {
    Out.Impl = S.Impl;
    Out.Notation = S.Notation;
    return true;
  }
  // Round-trip the litmus program through the printer so the persisted
  // source is the canonical fragment rendering of the *lowered* program
  // (and re-checks under the same fingerprint).
  frontend::DiagEngine Diags;
  lsl::Program Prog;
  if (!frontend::compileC(S.Source, {}, Prog, Diags)) {
    Error = "frontend error:\n" + Diags.str();
    return false;
  }
  if (!lsl::printCSource(Prog, Out.Source, Error))
    return false;
  return true;
}

//===----------------------------------------------------------------------===//
// Repro file format
//===----------------------------------------------------------------------===//

std::string checkfence::explore::renderRepro(const Repro &R) {
  std::string Out;
  Out += "checkfence-explore-repro 1\n";
  Out += "label " + escapeLine(R.Label) + "\n";
  Out += "models " + joinStrings(R.Models, ",") + "\n";
  Out += "divkind " + escapeLine(R.Div.Kind) + "\n";
  Out += "divmodel " + escapeLine(R.Div.Model) + "\n";
  Out += "detail " + escapeLine(R.Div.Detail) + "\n";
  Out += formatString("threads %d\n", R.Threads);
  Out += formatString("ops %d\n", R.Ops);
  if (!R.Source.empty()) {
    // Normalize the trailing newline before counting, so the declared
    // line count always matches what the parser will consume.
    std::string Src = R.Source;
    if (Src.back() != '\n')
      Src += '\n';
    int Lines = 0;
    for (char C : Src)
      Lines += C == '\n';
    Out += formatString("source %d\n", Lines);
    Out += Src;
  } else {
    Out += "impl " + escapeLine(R.Impl) + "\n";
    Out += "notation " + escapeLine(R.Notation) + "\n";
  }
  Out += "end\n";
  return Out;
}

bool checkfence::explore::parseRepro(const std::string &Text, Repro &Out,
                                     std::string &Error) {
  Out = Repro();
  std::istringstream In(Text);
  std::string Line;
  if (!std::getline(In, Line) || Line != "checkfence-explore-repro 1") {
    Error = "not a checkfence explore repro file";
    return false;
  }
  bool Ended = false;
  while (std::getline(In, Line)) {
    if (Line.empty())
      continue;
    size_t Sp = Line.find(' ');
    std::string Tag = Line.substr(0, Sp);
    std::string Rest =
        Sp == std::string::npos ? std::string() : Line.substr(Sp + 1);
    if (Tag == "label") {
      Out.Label = unescapeLine(Rest);
    } else if (Tag == "models") {
      std::string Cur;
      for (char C : Rest + ",") {
        if (C == ',') {
          if (!Cur.empty())
            Out.Models.push_back(Cur);
          Cur.clear();
        } else {
          Cur += C;
        }
      }
    } else if (Tag == "divkind") {
      Out.Div.Kind = unescapeLine(Rest);
    } else if (Tag == "divmodel") {
      Out.Div.Model = unescapeLine(Rest);
    } else if (Tag == "detail") {
      Out.Div.Detail = unescapeLine(Rest);
    } else if (Tag == "threads") {
      Out.Threads = std::atoi(Rest.c_str());
    } else if (Tag == "ops") {
      Out.Ops = std::atoi(Rest.c_str());
    } else if (Tag == "impl") {
      Out.Impl = unescapeLine(Rest);
    } else if (Tag == "notation") {
      Out.Notation = unescapeLine(Rest);
    } else if (Tag == "source") {
      int Lines = std::atoi(Rest.c_str());
      for (int I = 0; I < Lines; ++I) {
        if (!std::getline(In, Line)) {
          Error = "truncated source section";
          return false;
        }
        Out.Source += Line + "\n";
      }
    } else if (Tag == "end") {
      Ended = true;
      break;
    } else {
      Error = "unknown tag '" + Tag + "'";
      return false;
    }
  }
  if (!Ended) {
    Error = "missing end marker";
    return false;
  }
  if (Out.Source.empty() && (Out.Impl.empty() || Out.Notation.empty())) {
    Error = "repro names neither a source nor an impl+notation";
    return false;
  }
  return true;
}

bool checkfence::explore::loadRepro(const std::string &Path, Repro &Out,
                                    std::string &Error) {
  std::ifstream In(Path);
  if (!In) {
    Error = "cannot open " + Path;
    return false;
  }
  std::ostringstream SS;
  SS << In.rdbuf();
  return parseRepro(SS.str(), Out, Error);
}

//===----------------------------------------------------------------------===//
// Corpus
//===----------------------------------------------------------------------===//

Corpus::Corpus(std::string Dir) : Dir(std::move(Dir)) {
  if (!this->Dir.empty())
    ::mkdir(this->Dir.c_str(), 0755); // EEXIST is fine
}

void Corpus::load() {
  if (Dir.empty())
    return;
  std::ifstream In(Dir + "/seen.txt");
  std::string Line;
  while (std::getline(In, Line))
    if (!Line.empty())
      Seen.insert(Line);
}

bool Corpus::seen(const std::string &Fp) const {
  return Seen.count(Fp) != 0;
}

void Corpus::note(const std::string &Fp) { Seen.insert(Fp); }

bool Corpus::persist() {
  if (Dir.empty())
    return true;
  std::ofstream Out(Dir + "/seen.txt", std::ios::trunc);
  if (!Out)
    return false;
  for (const std::string &Fp : Seen)
    Out << Fp << "\n";
  return static_cast<bool>(Out);
}

std::string Corpus::saveRepro(const Repro &R, const std::string &Fp,
                              std::string &Error) const {
  if (Dir.empty())
    return std::string();
  std::string Path = Dir + "/repro-" + Fp + ".txt";
  std::ofstream Out(Path, std::ios::trunc);
  if (!Out) {
    Error = "cannot write " + Path;
    return std::string();
  }
  Out << renderRepro(R);
  if (!Out) {
    Error = "short write to " + Path;
    return std::string();
  }
  return Path;
}
