//===--- Generator.h - seeded random scenario generation --------*- C++ -*-==//
//
// Part of the CheckFence reproduction (PLDI'07).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The explore subsystem's scenario source: a seeded, deterministic
/// generator of check workloads. Two scenario kinds are produced:
///
///  * \b Litmus - branch-free programs over a few scalar globals (stores
///    of constants/arguments/loaded values, fences, atomic increments,
///    observations), inside both the frontend's explore fragment
///    (lsl::printCSource) and the AxiomaticEnumerator's supported input
///    shape, so every memory-model point can be differentially checked
///    against the brute-force oracle.
///  * \b Symbolic - random Fig. 8-style operation sequences (TestSpec)
///    over the built-in catalog implementations, bounded in threads,
///    operations, and primes, checked end-to-end through the Verifier.
///
/// Determinism contract: scenario #I under seed S is a pure function of
/// (S, I) - generation order, thread count, and previously generated
/// scenarios do not influence it. Reports built from the scenarios are
/// therefore byte-identical across runs and job counts.
///
//===----------------------------------------------------------------------===//

#ifndef CHECKFENCE_EXPLORE_GENERATOR_H
#define CHECKFENCE_EXPLORE_GENERATOR_H

#include "lsl/Value.h"

#include <cstdint>
#include <string>
#include <vector>

namespace checkfence {
namespace explore {

/// Deterministic 64-bit mixer (SplitMix64). Used instead of <random> so
/// scenario streams are identical across standard libraries.
struct Rand {
  uint64_t State = 0;

  explicit Rand(uint64_t Seed) : State(Seed) {}

  uint64_t next() {
    State += 0x9e3779b97f4a7c15ull;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
    return Z ^ (Z >> 31);
  }
  /// Uniform in [0, N); N < 1 yields 0 (never a modulo-by-zero).
  int below(int N) {
    if (N < 1)
      return 0;
    return static_cast<int>(next() % static_cast<uint64_t>(N));
  }
  bool chance(int Num, int Den) { return below(Den) < Num; }

  /// Stateless combination of a seed and an index into a sub-seed.
  static uint64_t mix(uint64_t Seed, uint64_t Index);
};

/// One statement of a litmus thread.
struct LitmusStmt {
  enum class Kind {
    StoreConst, ///< Var = Value
    StoreArg,   ///< Var = v (the symbolic {0,1} operation argument)
    LoadObserve,///< int r = Var; observe(r)
    LoadStore,  ///< int r = Var; Var2 = r (dependent store data)
    Fence,      ///< fence(Fence)
    AtomicIncr, ///< atomic { int r = Var; Var = r + 1; } observe(r)
  };
  Kind K = Kind::StoreConst;
  int Var = 0;
  int Var2 = 0;
  long long Value = 1;
  lsl::FenceKind Fence = lsl::FenceKind::LoadLoad;
};

struct LitmusThread {
  std::vector<LitmusStmt> Stmts;
  bool usesArg() const;
};

/// A structured litmus program; the shrinker edits this representation
/// and re-renders, so every reduction stays inside the fragment.
struct LitmusProgram {
  int NumVars = 2;
  std::vector<LitmusThread> Threads;

  /// Canonical CheckFence-C source of the program (the explore
  /// fragment): globals, init_op zeroing them, one tN_op per thread.
  std::string render() const;
  /// Total statements across threads (the shrinker's size metric).
  int opCount() const;
};

/// One generated (or reloaded) check workload.
struct Scenario {
  enum class Kind { Litmus, Symbolic };
  Kind K = Kind::Litmus;
  int Index = 0;    ///< position in the generation stream
  uint64_t Seed = 0;///< sub-seed the scenario was generated from

  // Litmus scenarios. Source is always set; Litmus may be empty for
  // scenarios reloaded from a persisted repro (then unshrinkable).
  LitmusProgram Litmus;
  bool HasStructure = false;
  std::string Source;
  std::vector<int> ThreadArgs; ///< NumArgs per op thread (0 or 1)

  // Symbolic scenarios.
  std::string Impl;     ///< catalog implementation name
  std::string Notation; ///< Fig. 8 notation (TestSpec string)

  std::string label() const;
  int threadCount() const;
  int opCount() const;
};

/// Bounds on generated scenarios. Out-of-range values are clamped by
/// the Generator (threads/vars to [2, ...], vars to at most 4 - the
/// litmus namespace has four global names).
struct GeneratorLimits {
  int MaxThreads = 3;      ///< litmus threads / symbolic test threads
  int MaxVars = 3;         ///< litmus shared variables (2..4)
  int AccessBudget = 7;    ///< litmus shared-memory accesses per program
  int MaxOpsPerThread = 2; ///< symbolic operations per thread
  int MaxInitOps = 1;      ///< symbolic init-sequence operations
  /// Out of 1000 scenarios, how many are symbolic catalog tests (the
  /// rest are litmus programs).
  int SymbolicPerMille = 300;
  /// Implementations symbolic scenarios draw from. Empty = the fast
  /// default subset (ms2, msn, treiber, lazylist).
  std::vector<std::string> Impls;
};

class Generator {
public:
  Generator(uint64_t Seed, GeneratorLimits Limits);

  /// Scenario #Index - a pure function of the seed and the index.
  Scenario at(int Index) const;

private:
  Scenario litmusAt(Rand &Rng, int Index) const;
  Scenario symbolicAt(Rand &Rng, int Index) const;

  uint64_t Seed;
  GeneratorLimits Limits;
};

} // namespace explore
} // namespace checkfence

#endif // CHECKFENCE_EXPLORE_GENERATOR_H
