//===--- Generator.cpp - seeded random scenario generation -------------------===//
//
// Part of the CheckFence reproduction (PLDI'07).
//
//===----------------------------------------------------------------------===//

#include "explore/Generator.h"

#include "harness/Catalog.h"
#include "impls/Impls.h"
#include "support/Format.h"

using namespace checkfence;
using namespace checkfence::explore;

uint64_t Rand::mix(uint64_t Seed, uint64_t Index) {
  // One SplitMix64 round over the combined words; good enough to make
  // per-index streams statistically independent.
  uint64_t Z = Seed ^ (Index * 0x9e3779b97f4a7c15ull);
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
  return Z ^ (Z >> 31);
}

bool LitmusThread::usesArg() const {
  for (const LitmusStmt &S : Stmts)
    if (S.K == LitmusStmt::Kind::StoreArg)
      return true;
  return false;
}

namespace {

const char *varName(int V) {
  static const char *Names[] = {"x", "y", "z", "w"};
  return Names[V & 3];
}

} // namespace

std::string LitmusProgram::render() const {
  std::string Src;
  Src += "extern void observe(int v);\n";
  Src += "extern void fence(char *type);\n";
  for (int V = 0; V < NumVars; ++V)
    Src += formatString("int %s;\n", varName(V));
  Src += "void init_op(void) {\n";
  for (int V = 0; V < NumVars; ++V)
    Src += formatString("  %s = 0;\n", varName(V));
  Src += "}\n";

  int Tmp = 0;
  for (size_t T = 0; T < Threads.size(); ++T) {
    const LitmusThread &Th = Threads[T];
    Src += formatString("void t%zu_op(%s) {\n", T,
                        Th.usesArg() ? "int v" : "void");
    for (const LitmusStmt &S : Th.Stmts) {
      switch (S.K) {
      case LitmusStmt::Kind::StoreConst:
        Src += formatString("  %s = %lld;\n", varName(S.Var), S.Value);
        break;
      case LitmusStmt::Kind::StoreArg:
        Src += formatString("  %s = v;\n", varName(S.Var));
        break;
      case LitmusStmt::Kind::LoadObserve:
        Src += formatString("  int r%d = %s;\n  observe(r%d);\n", Tmp,
                            varName(S.Var), Tmp);
        ++Tmp;
        break;
      case LitmusStmt::Kind::LoadStore:
        Src += formatString("  int r%d = %s;\n  %s = r%d;\n", Tmp,
                            varName(S.Var), varName(S.Var2), Tmp);
        ++Tmp;
        break;
      case LitmusStmt::Kind::Fence:
        Src += formatString("  fence(\"%s\");\n",
                            lsl::fenceKindName(S.Fence));
        break;
      case LitmusStmt::Kind::AtomicIncr:
        Src += formatString("  atomic {\n    int r%d = %s;\n"
                            "    %s = r%d + 1;\n  }\n  observe(r%d);\n",
                            Tmp, varName(S.Var), varName(S.Var), Tmp,
                            Tmp);
        ++Tmp;
        break;
      }
    }
    Src += "}\n";
  }
  return Src;
}

int LitmusProgram::opCount() const {
  int N = 0;
  for (const LitmusThread &T : Threads)
    N += static_cast<int>(T.Stmts.size());
  return N;
}

std::string Scenario::label() const {
  if (K == Kind::Litmus)
    return formatString("litmus-%d", Index);
  return formatString("sym-%d:%s:%s", Index, Impl.c_str(),
                      Notation.c_str());
}

int Scenario::threadCount() const {
  if (K == Kind::Litmus) {
    if (HasStructure)
      return static_cast<int>(Litmus.Threads.size());
    return static_cast<int>(ThreadArgs.size());
  }
  // Thread count of the notation: 1 + the number of '|' separators.
  int N = 1;
  for (char C : Notation)
    N += C == '|';
  return N;
}

int Scenario::opCount() const {
  if (K == Kind::Litmus) {
    if (HasStructure)
      return Litmus.opCount();
    // Reloaded repro: count statement lines (approximate but only used
    // for reporting).
    int N = 0;
    for (size_t I = 0; I + 1 < Source.size(); ++I)
      N += Source[I] == ';' ? 1 : 0;
    return N;
  }
  int N = 0;
  for (char C : Notation)
    N += (C != ' ' && C != '(' && C != ')' && C != '|' && C != '\'') ? 1
                                                                    : 0;
  return N;
}

//===----------------------------------------------------------------------===//
// Generation
//===----------------------------------------------------------------------===//

namespace {
int clampInt(int V, int Lo, int Hi) {
  return V < Lo ? Lo : (V > Hi ? Hi : V);
}
} // namespace

Generator::Generator(uint64_t Seed, GeneratorLimits Limits)
    : Seed(Seed), Limits(std::move(Limits)) {
  GeneratorLimits &L = this->Limits;
  if (L.Impls.empty())
    L.Impls = {"ms2", "msn", "treiber", "lazylist"};
  // Keep every downstream `below(X - k)` well-defined and the litmus
  // variable names unique (varName covers four globals).
  L.MaxThreads = clampInt(L.MaxThreads, 2, 8);
  L.MaxVars = clampInt(L.MaxVars, 2, 4);
  L.AccessBudget = clampInt(L.AccessBudget, 1, 64);
  L.MaxOpsPerThread = clampInt(L.MaxOpsPerThread, 1, 8);
  L.MaxInitOps = clampInt(L.MaxInitOps, 0, 8);
  L.SymbolicPerMille = clampInt(L.SymbolicPerMille, 0, 1000);
}

Scenario Generator::at(int Index) const {
  Rand Rng(Rand::mix(Seed, static_cast<uint64_t>(Index) + 1));
  if (Rng.below(1000) < Limits.SymbolicPerMille)
    return symbolicAt(Rng, Index);
  return litmusAt(Rng, Index);
}

Scenario Generator::litmusAt(Rand &Rng, int Index) const {
  Scenario S;
  S.K = Scenario::Kind::Litmus;
  S.Index = Index;
  S.Seed = Rng.State;

  LitmusProgram P;
  P.NumVars = 2 + Rng.below(Limits.MaxVars - 1);
  int NumThreads = 2 + Rng.below(Limits.MaxThreads - 1);
  int Budget = Limits.AccessBudget;
  bool HasObserve = false;

  static const lsl::FenceKind Fences[] = {
      lsl::FenceKind::LoadLoad, lsl::FenceKind::LoadStore,
      lsl::FenceKind::StoreLoad, lsl::FenceKind::StoreStore};

  for (int T = 0; T < NumThreads; ++T) {
    LitmusThread Th;
    int Len = 1 + Rng.below(3);
    for (int I = 0; I < Len && Budget > 0; ++I) {
      LitmusStmt St;
      switch (Rng.below(6)) {
      case 0:
        St.K = LitmusStmt::Kind::StoreConst;
        St.Var = Rng.below(P.NumVars);
        St.Value = 1 + Rng.below(2);
        Budget -= 1;
        break;
      case 1:
        St.K = LitmusStmt::Kind::StoreArg;
        St.Var = Rng.below(P.NumVars);
        Budget -= 1;
        break;
      case 2:
        St.K = LitmusStmt::Kind::LoadObserve;
        St.Var = Rng.below(P.NumVars);
        Budget -= 1;
        HasObserve = true;
        break;
      case 3:
        St.K = LitmusStmt::Kind::LoadStore;
        St.Var = Rng.below(P.NumVars);
        St.Var2 = Rng.below(P.NumVars);
        Budget -= 2;
        break;
      case 4:
        St.K = LitmusStmt::Kind::Fence;
        St.Fence = Fences[Rng.below(4)];
        break;
      case 5:
        St.K = LitmusStmt::Kind::AtomicIncr;
        St.Var = Rng.below(P.NumVars);
        Budget -= 2;
        HasObserve = true;
        break;
      }
      Th.Stmts.push_back(St);
    }
    P.Threads.push_back(std::move(Th));
  }
  if (!HasObserve) {
    // Observation-free programs compare only the error flag; keep the
    // differential signal by always observing at least one variable.
    LitmusStmt St;
    St.K = LitmusStmt::Kind::LoadObserve;
    St.Var = Rng.below(P.NumVars);
    P.Threads.back().Stmts.push_back(St);
  }

  S.Litmus = P;
  S.HasStructure = true;
  S.Source = P.render();
  for (const LitmusThread &Th : P.Threads)
    S.ThreadArgs.push_back(Th.usesArg() ? 1 : 0);
  return S;
}

Scenario Generator::symbolicAt(Rand &Rng, int Index) const {
  Scenario S;
  S.K = Scenario::Kind::Symbolic;
  S.Index = Index;
  S.Seed = Rng.State;

  S.Impl = Limits.Impls[Rng.below(static_cast<int>(Limits.Impls.size()))];
  const impls::ImplInfo *Info = impls::findImpl(S.Impl);
  harness::OpAlphabet Alphabet =
      harness::alphabetFor(Info ? Info->Kind : "queue");

  // Primes bound retry loops to one iteration. An unprimed op whose
  // unrolling does not converge makes every probe append a larger
  // re-encoding, so at most ONE op per scenario stays unprimed (the
  // paper's own device for the larger Fig. 8 tests), and never on the
  // set implementations, whose list-traversal loops are the most
  // expensive to unroll on the weak models.
  const bool AlwaysPrime = Info && Info->Kind == "set";
  bool UnprimedSpent = false;

  auto RandomOp = [&](bool ForcePrime) {
    const harness::OpBinding &B =
        Alphabet[Rng.below(static_cast<int>(Alphabet.size()))];
    harness::OpSpec Op;
    Op.Proc = B.Proc;
    Op.NumArgs = B.NumArgs;
    Op.HasRet = B.HasRet;
    Op.Primed = ForcePrime || AlwaysPrime || UnprimedSpent ||
                Rng.chance(3, 4);
    UnprimedSpent |= !Op.Primed;
    return Op;
  };

  harness::TestSpec Spec;
  int InitOps = Rng.below(Limits.MaxInitOps + 1);
  for (int I = 0; I < InitOps; ++I)
    Spec.Init.push_back(RandomOp(/*ForcePrime=*/true));
  int Threads = 1 + Rng.below(Limits.MaxThreads);
  for (int T = 0; T < Threads; ++T) {
    std::vector<harness::OpSpec> Ops;
    int Len = 1 + Rng.below(Limits.MaxOpsPerThread);
    for (int I = 0; I < Len; ++I)
      Ops.push_back(RandomOp(/*ForcePrime=*/false));
    Spec.Threads.push_back(std::move(Ops));
  }
  S.Notation = harness::renderTestNotation(Spec, Alphabet);
  return S;
}
