//===--- Differential.cpp - oracle-checked scenario execution ----------------===//
//
// Part of the CheckFence reproduction (PLDI'07).
//
//===----------------------------------------------------------------------===//

#include "explore/Differential.h"

#include "checker/Encoder.h"
#include "checker/SpecMiner.h"
#include "frontend/Lowering.h"
#include "harness/Catalog.h"
#include "impls/Impls.h"
#include "memmodel/AxiomaticEnumerator.h"
#include "memmodel/ReadsFromOracle.h"
#include "memmodel/ReferenceExecutor.h"
#include "support/Format.h"

#include <algorithm>
#include <map>

using namespace checkfence;
using namespace checkfence::explore;

DifferentialRunner::DifferentialRunner(Verifier &V, DiffOptions Opts)
    : V(V), Opts(std::move(Opts)) {}

namespace {

std::set<memmodel::RefObservation> toRef(const checker::ObservationSet &S) {
  std::set<memmodel::RefObservation> Out;
  for (const checker::Observation &O : S) {
    memmodel::RefObservation R;
    R.Error = O.Error;
    R.Values = O.Values;
    Out.insert(std::move(R));
  }
  return Out;
}

bool hasError(const std::set<memmodel::RefObservation> &S) {
  for (const memmodel::RefObservation &O : S)
    if (O.Error)
      return true;
  return false;
}

/// Compact rendering of an observation set for divergence details,
/// truncated so a pathological set cannot explode the report.
std::string show(const std::set<memmodel::RefObservation> &S) {
  std::string Out;
  for (const memmodel::RefObservation &O : S) {
    if (Out.size() > 360) {
      Out += "...";
      break;
    }
    Out += O.Error ? "E(" : "(";
    for (size_t I = 0; I < O.Values.size(); ++I)
      Out += (I ? "," : "") + O.Values[I].str();
    Out += ") ";
  }
  return Out;
}

bool isSubset(const std::set<memmodel::RefObservation> &A,
              const std::set<memmodel::RefObservation> &B) {
  return std::includes(B.begin(), B.end(), A.begin(), A.end());
}

/// The op-procedure threads of a compiled litmus program: t0_op, t1_op,
/// ... in index order. Derived from the program (not the scenario) so
/// repros reloaded from persisted source run identically.
std::vector<std::pair<std::string, int>>
litmusOps(const lsl::Program &Prog) {
  std::vector<std::pair<std::string, int>> Ops;
  for (int T = 0;; ++T) {
    std::string Name = formatString("t%d_op", T);
    const lsl::Proc *P = Prog.findProc(Name);
    if (!P)
      break;
    Ops.emplace_back(Name, P->NumParams);
  }
  return Ops;
}

} // namespace

ScenarioOutcome DifferentialRunner::run(const Scenario &S) const {
  if (S.K == Scenario::Kind::Litmus)
    return runLitmus(S);
  return runSymbolic(S);
}

//===----------------------------------------------------------------------===//
// Litmus scenarios: mined observation sets vs. the brute-force oracles.
//===----------------------------------------------------------------------===//

ScenarioOutcome DifferentialRunner::runLitmus(const Scenario &S) const {
  ScenarioOutcome Out;

  frontend::DiagEngine Diags;
  lsl::Program Prog;
  if (!frontend::compileC(S.Source, {}, Prog, Diags)) {
    Out.Divergences.push_back(
        {"frontend-error", "", "generated source failed to compile:\n" +
                                   Diags.str()});
    return Out;
  }
  if (Opts.Inject) {
    std::string Detail = Opts.Inject(Prog);
    if (!Detail.empty())
      Out.Divergences.push_back({"injected", "", Detail});
  }

  std::vector<std::pair<std::string, int>> OpProcs = litmusOps(Prog);
  if (OpProcs.empty() || !Prog.findProc("init_op")) {
    Out.Divergences.push_back(
        {"frontend-error", "",
         "litmus program lacks t0_op/init_op procedures"});
    return Out;
  }
  harness::TestSpec Spec;
  Spec.Name = "explore";
  for (const auto &[Proc, NumArgs] : OpProcs)
    Spec.Threads.push_back(
        {harness::OpSpec{Proc, NumArgs, false, false}});
  std::vector<std::string> Threads =
      harness::buildTestThreads(Prog, Spec);

  // Per-model observation sets that compared cleanly, for the lattice
  // nesting check afterwards.
  std::vector<std::pair<memmodel::ModelParams,
                        std::set<memmodel::RefObservation>>>
      CleanSets;

  for (const memmodel::ModelParams &M : Opts.Models) {
    if (Opts.stopRequested()) {
      Out.Cancelled = true;
      return Out;
    }
    const std::string Name = memmodel::modelName(M);

    checker::ProblemConfig Cfg;
    Cfg.Model = M;
    checker::EncodedProblem Prob(Prog, Threads, {}, Cfg);
    if (!Prob.ok()) {
      Out.Divergences.push_back({"engine-error", Name, Prob.error()});
      continue;
    }

    // Primary oracle: the polynomial reads-from checker on eligible
    // lattice points, the brute-force order enumerator elsewhere (or
    // everywhere when the fast path is disabled). Both emit identical
    // skip strings, so the report does not depend on which ran.
    const bool Fast =
        Opts.UseFastOracle && memmodel::readsFromEligible(M);
    std::set<memmodel::RefObservation> OracleObs;
    std::string OracleErr;
    if (Fast) {
      memmodel::ReadsFromOptions RO;
      RO.Model = M;
      RO.MaxAssignments = Opts.OracleMaxOrders;
      memmodel::ReadsFromResult RF =
          memmodel::checkReadsFrom(Prob.flat(), RO);
      if (RF.Ok) {
        OracleObs = std::move(RF.Observations);
        // Differential reference: re-run the enumerator on a sampled
        // fraction of scenarios. Never recorded as a skip (the report
        // must not depend on the sample period); an Ok disagreement is
        // an oracle-vs-enumerator divergence.
        if (Opts.EnumeratorSamplePeriod > 0 &&
            S.Index % Opts.EnumeratorSamplePeriod == 0) {
          memmodel::AxiomaticOptions AO;
          AO.Model = M;
          AO.MaxOrders = Opts.OracleMaxOrders;
          memmodel::AxiomaticResult Slow =
              memmodel::enumerateAxiomatic(Prob.flat(), AO);
          if (Slow.Ok && Slow.Observations != OracleObs) {
            Out.Divergences.push_back(
                {"oracle-vs-enumerator", Name,
                 "reads-from: " + show(OracleObs) +
                     "| enumerator: " + show(Slow.Observations)});
            continue;
          }
        }
      } else {
        OracleErr = RF.Error;
      }
    } else {
      memmodel::AxiomaticOptions AO;
      AO.Model = M;
      AO.MaxOrders = Opts.OracleMaxOrders;
      memmodel::AxiomaticResult Oracle =
          memmodel::enumerateAxiomatic(Prob.flat(), AO);
      if (Oracle.Ok)
        OracleObs = std::move(Oracle.Observations);
      else
        OracleErr = Oracle.Error;
    }
    if (!OracleErr.empty()) {
      // Outside the oracle's fragment (or over budget): a recorded
      // skip, never a silent drop.
      Out.Skips.push_back(Name + ": " + OracleErr);
      continue;
    }

    checker::MiningOutcome Mined = checker::mineSpecification(Prob);
    if (!Mined.Ok && !Mined.SequentialBug) {
      Out.Divergences.push_back({"engine-error", Name, Mined.Error});
      continue;
    }

    const bool OracleHasErr = hasError(OracleObs);
    if (Mined.SequentialBug != OracleHasErr) {
      Out.Divergences.push_back(
          {"sat-vs-axiomatic", Name,
           formatString("error-flag disagreement: sat=%s oracle=%s "
                        "(oracle set: %s)",
                        Mined.SequentialBug ? "error" : "clean",
                        OracleHasErr ? "error" : "clean",
                        show(OracleObs).c_str())});
      continue;
    }
    if (Mined.SequentialBug) {
      // Both sides agree an erroneous execution exists; mining stops at
      // the first one, so the sets are not comparable further.
      Out.Summary += (Out.Summary.empty() ? "" : " ") + Name + "=err";
      Out.Ran = true;
      continue;
    }

    std::set<memmodel::RefObservation> FromSat = toRef(Mined.Spec);
    if (FromSat != OracleObs) {
      Out.Divergences.push_back(
          {"sat-vs-axiomatic", Name,
           "sat: " + show(FromSat) + "| oracle: " + show(OracleObs)});
      continue;
    }

    if (M == memmodel::ModelParams::sc()) {
      memmodel::RefOptions RO;
      RO.MaxSteps = Opts.RefMaxSteps;
      std::set<memmodel::RefObservation> Interleaved =
          memmodel::enumerateExecutions(Prob.flat(), RO);
      if (FromSat != Interleaved) {
        Out.Divergences.push_back(
            {"sat-vs-reference", Name,
             "sat: " + show(FromSat) +
                 "| reference: " + show(Interleaved)});
        continue;
      }
    }

    Out.Ran = true;
    Out.Summary += (Out.Summary.empty() ? "" : " ") + Name + "=" +
                   formatString("%d", static_cast<int>(FromSat.size()));
    CleanSets.emplace_back(M, std::move(FromSat));
  }

  // Lattice nesting: every execution allowed under a stronger point is
  // allowed under a weaker one, so observation sets must be subsets.
  for (size_t A = 0; A < CleanSets.size(); ++A) {
    for (size_t B = 0; B < CleanSets.size(); ++B) {
      if (A == B ||
          !memmodel::atLeastAsStrong(CleanSets[A].first,
                                     CleanSets[B].first))
        continue;
      if (!isSubset(CleanSets[A].second, CleanSets[B].second))
        Out.Divergences.push_back(
            {"lattice-monotonicity", "",
             memmodel::modelName(CleanSets[A].first) + " not-subset-of " +
                 memmodel::modelName(CleanSets[B].first) + ": " +
                 show(CleanSets[A].second) + "| vs " +
                 show(CleanSets[B].second)});
    }
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Symbolic scenarios: checker verdicts on the Verifier's session pool.
//===----------------------------------------------------------------------===//

ScenarioOutcome DifferentialRunner::runSymbolic(const Scenario &S) const {
  ScenarioOutcome Out;

  std::vector<std::pair<memmodel::ModelParams, Status>> Verdicts;
  for (const memmodel::ModelParams &M : Opts.Models) {
    if (Opts.stopRequested()) {
      Out.Cancelled = true;
      return Out;
    }
    const std::string Name = memmodel::modelName(M);
    Request Req = Request::check();
    Req.impl(S.Impl)
        .notation(S.Notation)
        .model(M.str())
        .noCache()
        .maxBoundIterations(Opts.MaxBoundIterations)
        .maxProbes(Opts.MaxProbes)
        .conflictBudget(Opts.EngineConflictBudget)
        .fastOracle(Opts.UseFastOracle);
    if (Opts.HasDeadline)
      Req.deadline(Opts.remainingSeconds());
    Result R = V.check(Req, nullptr, Opts.Token);

    switch (R.Verdict) {
    case Status::Pass:
    case Status::Fail:
    case Status::SequentialBug:
      Out.Ran = true;
      Verdicts.emplace_back(M, R.Verdict);
      Out.Summary += (Out.Summary.empty() ? "" : " ") + Name + "=" +
                     statusName(R.Verdict);
      break;
    case Status::BoundsExhausted:
      Out.Skips.push_back(Name + ": bounds-exhausted");
      break;
    case Status::Cancelled:
      Out.Cancelled = true;
      return Out;
    case Status::Error:
      // Conflict-budget exhaustion is a (deterministic) skip: the
      // scenario is too hard for the configured budget, not evidence
      // of a checker defect.
      if (R.Message.find("solver budget exhausted") !=
          std::string::npos)
        Out.Skips.push_back(Name + ": solver-budget-exhausted");
      else
        Out.Divergences.push_back({"engine-error", Name, R.Message});
      break;
    }
  }

  // The specification is mined under Serial regardless of the target
  // model: a sequential bug must be model-independent.
  bool AnySeqBug = false, AnyClean = false;
  for (const auto &[M, Verdict] : Verdicts) {
    (void)M;
    AnySeqBug |= Verdict == Status::SequentialBug;
    AnyClean |= Verdict != Status::SequentialBug;
  }
  if (AnySeqBug && AnyClean)
    Out.Divergences.push_back(
        {"seqbug-inconsistency", "",
         "sequential-bug verdict differs across models: " + Out.Summary});

  // Verdict monotonicity along the lattice: a pass under a weaker model
  // implies a pass under every stronger one.
  for (const auto &[MA, VA] : Verdicts) {
    for (const auto &[MB, VB] : Verdicts) {
      if (!memmodel::atLeastAsStrong(MA, MB))
        continue;
      if (VB == Status::Pass && VA == Status::Fail)
        Out.Divergences.push_back(
            {"lattice-monotonicity", "",
             memmodel::modelName(MA) + "=FAIL but weaker " +
                 memmodel::modelName(MB) + "=PASS"});
    }
  }

  if (Opts.stopRequested()) {
    Out.Cancelled = true;
    return Out;
  }

  // Serial mined specification vs. the explicit-state interleaving
  // enumeration at invocation granularity, on the identical flattened
  // program (default bounds keep both sides within the same envelope).
  const impls::ImplInfo *Info = impls::findImpl(S.Impl);
  if (!Info) {
    Out.Divergences.push_back(
        {"engine-error", "", "unknown implementation '" + S.Impl + "'"});
    return Out;
  }
  harness::TestSpec Spec;
  std::string Err;
  if (!harness::parseTestNotation(
          S.Notation, harness::alphabetFor(Info->Kind), Spec, Err)) {
    Out.Divergences.push_back(
        {"frontend-error", "",
         "generated notation failed to parse: " + Err});
    return Out;
  }
  frontend::DiagEngine Diags;
  lsl::Program Prog;
  if (!frontend::compileC(impls::sourceFor(S.Impl), {}, Prog, Diags)) {
    Out.Divergences.push_back(
        {"frontend-error", "", "implementation failed to compile:\n" +
                                   Diags.str()});
    return Out;
  }
  std::vector<std::string> Threads =
      harness::buildTestThreads(Prog, Spec);
  checker::ProblemConfig Cfg;
  Cfg.Model = memmodel::ModelParams::serial();
  Cfg.ConflictBudget = Opts.EngineConflictBudget;
  checker::EncodedProblem Prob(Prog, Threads, {}, Cfg);
  if (!Prob.ok()) {
    Out.Divergences.push_back({"engine-error", "serial", Prob.error()});
    return Out;
  }
  checker::MiningOutcome Mined = checker::mineSpecification(Prob);
  if (!Mined.Ok && !Mined.SequentialBug) {
    if (Mined.Error.find("solver budget exhausted") != std::string::npos)
      Out.Skips.push_back("serial: solver-budget-exhausted");
    else
      Out.Divergences.push_back({"engine-error", "serial", Mined.Error});
    return Out;
  }
  memmodel::RefOptions RO;
  RO.InvocationGranularity = true;
  RO.MaxSteps = Opts.RefMaxSteps;
  std::set<memmodel::RefObservation> RefSet =
      memmodel::enumerateExecutions(Prob.flat(), RO);
  const bool RefErr = hasError(RefSet);
  if (Mined.SequentialBug != RefErr) {
    Out.Divergences.push_back(
        {"serial-vs-reference", "serial",
         formatString("error-flag disagreement: sat=%s reference=%s",
                      Mined.SequentialBug ? "error" : "clean",
                      RefErr ? "error" : "clean")});
  } else if (!Mined.SequentialBug) {
    std::set<memmodel::RefObservation> FromSat = toRef(Mined.Spec);
    if (FromSat != RefSet)
      Out.Divergences.push_back(
          {"serial-vs-reference", "serial",
           "sat: " + show(FromSat) + "| reference: " + show(RefSet)});
  }
  Out.Ran = true;
  return Out;
}
