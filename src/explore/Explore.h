//===--- Explore.h - the scenario-exploration driver ------------*- C++ -*-==//
//
// Part of the CheckFence reproduction (PLDI'07).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Orchestrates one explore run: generate a budget of seeded scenarios
/// (deduped against the corpus by lowered-program fingerprint), fan them
/// across the worker pool through the DifferentialRunner, delta-debug
/// every divergence to a minimal repro, persist repros, and aggregate a
/// deterministic report.
///
/// Determinism contract: with timings excluded, the report is a pure
/// function of (seed, budget, models, generator limits) - byte-identical
/// across runs, job counts, machines, and cache states. Generation and
/// dedup run serially in index order; scenario outcomes land at their
/// scenario's slot; shrinking runs serially in index order.
///
//===----------------------------------------------------------------------===//

#ifndef CHECKFENCE_EXPLORE_EXPLORE_H
#define CHECKFENCE_EXPLORE_EXPLORE_H

#include "explore/Corpus.h"
#include "explore/Differential.h"
#include "explore/Generator.h"
#include "explore/Shrinker.h"

namespace checkfence {
namespace explore {

struct ExploreOptions {
  uint64_t Seed = 1;
  /// Distinct scenarios to run (dedup hits do not consume budget).
  int Budget = 100;
  /// Lattice points; empty = the default axis {sc, tso, relaxed}.
  std::vector<memmodel::ModelParams> Models;
  int Jobs = 1;
  bool Shrink = true;
  /// Persist seen fingerprints and repros here; empty = in-memory only.
  std::string CorpusDir;
  GeneratorLimits Limits;
  /// Oracle/engine budgets and the test-only injection seam. Models and
  /// Token are overwritten by the driver from the fields above.
  DiffOptions Diff;
  ShrinkOptions ShrinkLimits;
  /// Streaming progress (onScenarioChecked / onDivergenceFound fire from
  /// worker threads). May be null.
  EventSink *Sink = nullptr;
  CancelToken Token;
  /// Optional extra stop predicate (deadline expiry), polled alongside
  /// the token at scenario boundaries.
  std::function<bool()> Stop;

  bool stopRequested() const {
    return Token.cancelled() || (Stop && Stop());
  }
};

struct ScenarioRecord {
  int Index = 0;
  std::string Label;
  std::string Kind;    ///< "litmus" or "symbolic"
  std::string Result;  ///< "ok", "divergence", "skipped", "cancelled"
  std::string Summary; ///< per-model observation counts / verdicts
  std::vector<std::string> Skips;
  double Seconds = 0;
};

struct DivergenceRecord {
  std::string Label;
  std::string Kind;
  std::string Model;
  std::string Detail;
  bool Shrunk = false;
  int Threads = 0;
  int Ops = 0;
  std::string Notation;  ///< symbolic repros
  std::string Source;    ///< litmus repros (printer-canonical C)
  std::string ReproPath; ///< persisted file; empty without a corpus dir
};

struct ExploreReport {
  bool Ok = true;
  std::string Error;
  bool Cancelled = false;

  unsigned long long Seed = 0;
  int Budget = 0;
  std::vector<std::string> Models;
  int Jobs = 1;

  int Generated = 0;     ///< scenarios drawn from the generator
  int Deduplicated = 0;  ///< dropped as already-seen fingerprints
  int Run = 0;           ///< scenarios that produced a comparison
  int SkipEntries = 0;   ///< per-model fragment/budget skips
  int Shrunk = 0;        ///< divergences reduced by the shrinker

  std::vector<ScenarioRecord> Scenarios;
  std::vector<DivergenceRecord> Divergences;
  /// Non-fatal problems (corpus/repro write failures): the run's
  /// verdicts stand, but persistence did not happen as configured.
  std::vector<std::string> Warnings;
  double WallSeconds = 0;

  int divergenceCount() const {
    return static_cast<int>(Divergences.size());
  }

  /// Versioned JSON (schema_version included). With \p IncludeTimings
  /// false the bytes are machine- and job-count-independent.
  std::string json(bool IncludeTimings = true) const;
};

/// Runs one explore session on \p V (scenario checks share its session
/// pool). Invalid options come back as Ok = false.
ExploreReport runExplore(Verifier &V, const ExploreOptions &Opts);

} // namespace explore
} // namespace checkfence

#endif // CHECKFENCE_EXPLORE_EXPLORE_H
