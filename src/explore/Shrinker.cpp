//===--- Shrinker.cpp - delta-debugging divergent scenarios ------------------===//
//
// Part of the CheckFence reproduction (PLDI'07).
//
//===----------------------------------------------------------------------===//

#include "explore/Shrinker.h"

#include "harness/Catalog.h"
#include "impls/Impls.h"

#include <vector>

using namespace checkfence;
using namespace checkfence::explore;

namespace {

/// Re-derives the rendered source and thread-argument list after a
/// structural edit.
void refreshLitmus(Scenario &S) {
  S.Source = S.Litmus.render();
  S.ThreadArgs.clear();
  for (const LitmusThread &T : S.Litmus.Threads)
    S.ThreadArgs.push_back(T.usesArg() ? 1 : 0);
}

/// Drops globals no thread references and renumbers the rest, keeping
/// repros free of unused state.
bool dropUnusedVars(LitmusProgram &P) {
  std::vector<bool> Used(static_cast<size_t>(P.NumVars), false);
  for (const LitmusThread &T : P.Threads)
    for (const LitmusStmt &S : T.Stmts) {
      if (S.K == LitmusStmt::Kind::Fence)
        continue; // Var is meaningless for fences
      if (S.Var >= 0 && S.Var < P.NumVars)
        Used[static_cast<size_t>(S.Var)] = true;
      if (S.K == LitmusStmt::Kind::LoadStore && S.Var2 >= 0 &&
          S.Var2 < P.NumVars)
        Used[static_cast<size_t>(S.Var2)] = true;
    }
  std::vector<int> Remap(static_cast<size_t>(P.NumVars), -1);
  int Next = 0;
  for (int V = 0; V < P.NumVars; ++V)
    if (Used[static_cast<size_t>(V)])
      Remap[static_cast<size_t>(V)] = Next++;
  if (Next == P.NumVars || Next == 0)
    return false;
  for (LitmusThread &T : P.Threads)
    for (LitmusStmt &S : T.Stmts) {
      S.Var = Remap[static_cast<size_t>(S.Var)];
      if (S.K == LitmusStmt::Kind::LoadStore)
        S.Var2 = Remap[static_cast<size_t>(S.Var2)];
    }
  P.NumVars = Next;
  return true;
}

/// Candidate reductions of a litmus scenario, smallest-step-first in a
/// deterministic order.
std::vector<Scenario> litmusCandidates(const Scenario &S) {
  std::vector<Scenario> Out;
  if (!S.HasStructure)
    return Out;
  const LitmusProgram &P = S.Litmus;

  // Drop a whole thread.
  if (P.Threads.size() > 1) {
    for (size_t T = 0; T < P.Threads.size(); ++T) {
      Scenario C = S;
      C.Litmus.Threads.erase(C.Litmus.Threads.begin() +
                             static_cast<long>(T));
      dropUnusedVars(C.Litmus);
      refreshLitmus(C);
      Out.push_back(std::move(C));
    }
  }
  // Drop one statement.
  for (size_t T = 0; T < P.Threads.size(); ++T) {
    for (size_t I = 0; I < P.Threads[T].Stmts.size(); ++I) {
      if (P.opCount() <= 1)
        break;
      Scenario C = S;
      C.Litmus.Threads[T].Stmts.erase(
          C.Litmus.Threads[T].Stmts.begin() + static_cast<long>(I));
      if (C.Litmus.Threads[T].Stmts.empty() &&
          C.Litmus.Threads.size() > 1)
        C.Litmus.Threads.erase(C.Litmus.Threads.begin() +
                               static_cast<long>(T));
      dropUnusedVars(C.Litmus);
      refreshLitmus(C);
      Out.push_back(std::move(C));
    }
  }
  // Simplify statements: atomic increment -> plain load+observe,
  // constant 2 -> 1.
  for (size_t T = 0; T < P.Threads.size(); ++T) {
    for (size_t I = 0; I < P.Threads[T].Stmts.size(); ++I) {
      const LitmusStmt &St = P.Threads[T].Stmts[I];
      if (St.K == LitmusStmt::Kind::AtomicIncr) {
        Scenario C = S;
        C.Litmus.Threads[T].Stmts[I].K = LitmusStmt::Kind::LoadObserve;
        refreshLitmus(C);
        Out.push_back(std::move(C));
      } else if (St.K == LitmusStmt::Kind::StoreConst && St.Value > 1) {
        Scenario C = S;
        C.Litmus.Threads[T].Stmts[I].Value = 1;
        refreshLitmus(C);
        Out.push_back(std::move(C));
      }
    }
  }
  return Out;
}

/// Candidate reductions of a symbolic scenario.
std::vector<Scenario> symbolicCandidates(const Scenario &S) {
  std::vector<Scenario> Out;
  const impls::ImplInfo *Info = impls::findImpl(S.Impl);
  if (!Info)
    return Out;
  harness::OpAlphabet Alphabet = harness::alphabetFor(Info->Kind);
  harness::TestSpec Spec;
  std::string Err;
  if (!harness::parseTestNotation(S.Notation, Alphabet, Spec, Err))
    return Out;

  auto Push = [&](harness::TestSpec Reduced) {
    if (Reduced.Threads.empty())
      return;
    Scenario C = S;
    C.Notation = harness::renderTestNotation(Reduced, Alphabet);
    Out.push_back(std::move(C));
  };

  if (Spec.Threads.size() > 1) {
    for (size_t T = 0; T < Spec.Threads.size(); ++T) {
      harness::TestSpec R = Spec;
      R.Threads.erase(R.Threads.begin() + static_cast<long>(T));
      Push(std::move(R));
    }
  }
  for (size_t T = 0; T < Spec.Threads.size(); ++T) {
    for (size_t I = 0; I < Spec.Threads[T].size(); ++I) {
      harness::TestSpec R = Spec;
      R.Threads[T].erase(R.Threads[T].begin() + static_cast<long>(I));
      if (R.Threads[T].empty() && R.Threads.size() > 1)
        R.Threads.erase(R.Threads.begin() + static_cast<long>(T));
      Push(std::move(R));
    }
  }
  for (size_t I = 0; I < Spec.Init.size(); ++I) {
    harness::TestSpec R = Spec;
    R.Init.erase(R.Init.begin() + static_cast<long>(I));
    Push(std::move(R));
  }
  // Priming bounds retry loops to one iteration - a semantic reduction
  // that often keeps a divergence while shrinking the unrolling.
  for (size_t T = 0; T < Spec.Threads.size(); ++T) {
    for (size_t I = 0; I < Spec.Threads[T].size(); ++I) {
      if (Spec.Threads[T][I].Primed)
        continue;
      harness::TestSpec R = Spec;
      R.Threads[T][I].Primed = true;
      Push(std::move(R));
    }
  }
  return Out;
}

} // namespace

ShrinkResult checkfence::explore::shrinkScenario(const Scenario &S,
                                                 Verifier &V,
                                                 const DiffOptions &Opts,
                                                 const ShrinkOptions &SO) {
  ShrinkResult Res;
  Res.Min = S;
  Res.Models = Opts.Models;

  DiffOptions Local = Opts;

  auto Diverges = [&](const Scenario &C, Divergence &D) {
    ++Res.Attempts;
    ScenarioOutcome O = DifferentialRunner(V, Local).run(C);
    if (O.Divergences.empty())
      return false;
    D = O.Divergences[0];
    return true;
  };

  // Baseline: confirm (and name) the divergence under the full options.
  if (!Diverges(Res.Min, Res.Repro))
    return Res; // flaky input: nothing to shrink

  // Narrow the model axis to the diverging point first - it divides the
  // cost of every subsequent attempt.
  if (!Res.Repro.Model.empty() && Local.Models.size() > 1) {
    for (const memmodel::ModelParams &M : Local.Models) {
      if (memmodel::modelName(M) != Res.Repro.Model)
        continue;
      DiffOptions Narrow = Local;
      Narrow.Models = {M};
      DiffOptions Saved = Local;
      Local = Narrow;
      Divergence D;
      if (Diverges(Res.Min, D)) {
        Res.Repro = D;
        Res.Models = Local.Models;
        ++Res.Steps;
      } else {
        Local = Saved; // cross-model interaction: keep the full axis
      }
      break;
    }
  }

  bool Progress = true;
  while (Progress) {
    Progress = false;
    std::vector<Scenario> Candidates =
        Res.Min.K == Scenario::Kind::Litmus
            ? litmusCandidates(Res.Min)
            : symbolicCandidates(Res.Min);
    for (const Scenario &C : Candidates) {
      if (Res.Attempts >= SO.MaxAttempts) {
        Res.HitBudget = true;
        return Res;
      }
      Divergence D;
      if (Diverges(C, D)) {
        Res.Min = C;
        Res.Repro = D;
        ++Res.Steps;
        Progress = true;
        break; // restart candidate generation from the smaller scenario
      }
    }
  }
  return Res;
}
