//===--- Explore.cpp - the scenario-exploration driver -----------------------===//
//
// Part of the CheckFence reproduction (PLDI'07).
//
//===----------------------------------------------------------------------===//

#include "explore/Explore.h"

#include "engine/MatrixRunner.h"
#include "obs/Trace.h"
#include "support/Format.h"
#include "support/Json.h"
#include "support/Timing.h"

#include <atomic>

using namespace checkfence;
using namespace checkfence::explore;

namespace {

ExploreReport errorReport(ExploreReport Rep, std::string Message) {
  Rep.Ok = false;
  Rep.Error = std::move(Message);
  return Rep;
}

} // namespace

ExploreReport checkfence::explore::runExplore(Verifier &V,
                                              const ExploreOptions &Opts) {
  Timer Wall;
  ExploreReport Rep;
  Rep.Seed = Opts.Seed;
  Rep.Budget = Opts.Budget;
  Rep.Jobs = Opts.Jobs < 1 ? 1 : Opts.Jobs;

  if (Opts.Budget <= 0)
    return errorReport(std::move(Rep), "explore budget must be positive");

  std::vector<memmodel::ModelParams> Models = Opts.Models;
  if (Models.empty())
    Models = {memmodel::ModelParams::sc(), memmodel::ModelParams::tso(),
              memmodel::ModelParams::relaxed()};
  for (const memmodel::ModelParams &M : Models) {
    if (!M.MultiCopyAtomic)
      return errorReport(std::move(Rep),
                         "explore cannot check non-multi-copy-atomic "
                         "model '" + memmodel::modelName(M) + "'");
    Rep.Models.push_back(memmodel::modelName(M));
  }

  Corpus Corp(Opts.CorpusDir);
  Corp.load();
  Generator Gen(Opts.Seed, Opts.Limits);

  //===------------------------------------------------------------===//
  // Generation + dedup: serial, in index order, so the selected set is
  // a pure function of (seed, limits, corpus contents).
  //===------------------------------------------------------------===//

  std::vector<Scenario> Selected;
  std::vector<std::string> Fingerprints;
  // In-run dedup is tracked separately from the corpus: a fingerprint
  // becomes corpus-seen only once its scenario actually ran, so a
  // cancelled run cannot permanently exclude never-checked scenarios
  // from future sessions.
  std::set<std::string> RunSeen;
  const int GenCap = Opts.Budget * 8 + 16;
  for (int Index = 0;
       static_cast<int>(Selected.size()) < Opts.Budget && Index < GenCap;
       ++Index) {
    if (Opts.stopRequested()) {
      Rep.Cancelled = true;
      break;
    }
    Scenario S = Gen.at(Index);
    ++Rep.Generated;
    std::string Err;
    std::string Fp = scenarioFingerprint(S, Err);
    if (Fp.empty()) {
      // A generator bug: keep the scenario so the differential runner
      // reports the frontend error as a divergence.
      Fp = formatString("invalid-%d", Index);
    }
    if (Corp.seen(Fp) || !RunSeen.insert(Fp).second) {
      ++Rep.Deduplicated;
      continue;
    }
    Selected.push_back(std::move(S));
    Fingerprints.push_back(Fp);
  }

  //===------------------------------------------------------------===//
  // Differential phase: embarrassingly parallel, outcomes land at their
  // scenario's slot.
  //===------------------------------------------------------------===//

  DiffOptions Diff = Opts.Diff;
  Diff.Models = Models;
  Diff.Token = Opts.Token;
  Diff.Stop = Opts.Stop;
  DifferentialRunner Runner(V, Diff);

  std::vector<ScenarioOutcome> Outcomes(Selected.size());
  std::vector<double> Seconds(Selected.size(), 0);
  std::atomic<size_t> Finished{0};
  engine::parallelFor(
      Rep.Jobs, Selected.size(), [&](size_t I) {
        if (Opts.stopRequested()) {
          Outcomes[I].Cancelled = true;
          return;
        }
        obs::Span ScenarioSpan(
            "explore", [&] { return "scenario:" + Selected[I].label(); });
        Timer T;
        Outcomes[I] = Runner.run(Selected[I]);
        Seconds[I] = T.seconds();
        if (Opts.Sink) {
          for (const Divergence &D : Outcomes[I].Divergences)
            Opts.Sink->onDivergenceFound(
                {Selected[I].label(), D.Kind, D.Model, D.Detail});
          Opts.Sink->onScenarioChecked(
              {Selected[I].label(), Finished.fetch_add(1) + 1,
               Selected.size(), !Outcomes[I].Divergences.empty(),
               Outcomes[I].Summary});
        }
      });

  //===------------------------------------------------------------===//
  // Aggregation + shrinking: serial, in index order.
  //===------------------------------------------------------------===//

  for (size_t I = 0; I < Selected.size(); ++I) {
    const Scenario &S = Selected[I];
    ScenarioOutcome &O = Outcomes[I];

    ScenarioRecord R;
    R.Index = S.Index;
    R.Label = S.label();
    R.Kind = S.K == Scenario::Kind::Litmus ? "litmus" : "symbolic";
    R.Summary = O.Summary;
    R.Skips = O.Skips;
    R.Seconds = Seconds[I];
    Rep.SkipEntries += static_cast<int>(O.Skips.size());
    if (O.Cancelled) {
      R.Result = "cancelled";
      Rep.Cancelled = true;
    } else if (!O.Divergences.empty()) {
      R.Result = "divergence";
    } else if (O.Ran) {
      R.Result = "ok";
    } else {
      R.Result = "skipped";
    }
    if (!O.Cancelled)
      Corp.note(Fingerprints[I]); // checked: remember across runs
    if (O.Ran)
      ++Rep.Run;
    Rep.Scenarios.push_back(std::move(R));

    if (O.Divergences.empty())
      continue;

    Divergence D = O.Divergences[0];
    Scenario Min = S;
    std::vector<memmodel::ModelParams> ReproModels = Models;
    bool Shrunk = false;
    if (Opts.Shrink && !Opts.stopRequested()) {
      obs::Span ShrinkSpan("explore",
                           [&] { return "shrink:" + S.label(); });
      ShrinkResult SR = shrinkScenario(S, V, Diff, Opts.ShrinkLimits);
      if (!SR.Repro.Kind.empty()) {
        Min = SR.Min;
        D = SR.Repro;
        ReproModels = SR.Models;
        if (SR.Steps > 0) {
          Shrunk = true;
          ++Rep.Shrunk;
        }
      }
    }

    DivergenceRecord DR;
    DR.Label = S.label();
    DR.Kind = D.Kind;
    DR.Model = D.Model;
    DR.Detail = D.Detail;
    DR.Shrunk = Shrunk;
    DR.Threads = Min.threadCount();
    DR.Ops = Min.opCount();
    Repro RP;
    std::string ReproErr;
    if (buildRepro(Min, D, ReproModels, RP, ReproErr)) {
      DR.Notation = RP.Notation;
      DR.Source = RP.Source;
      std::string FpErr;
      std::string Fp = scenarioFingerprint(Min, FpErr);
      if (!Fp.empty()) {
        std::string SaveErr;
        DR.ReproPath = Corp.saveRepro(RP, Fp, SaveErr);
        if (DR.ReproPath.empty() && !SaveErr.empty())
          Rep.Warnings.push_back("repro for " + DR.Label +
                                 " not persisted: " + SaveErr);
      }
    } else {
      Rep.Warnings.push_back("repro for " + DR.Label +
                             " not renderable: " + ReproErr);
    }
    Rep.Divergences.push_back(std::move(DR));
  }

  if (!Corp.persist())
    Rep.Warnings.push_back("corpus not persisted: cannot write " +
                           Opts.CorpusDir + "/seen.txt");
  Rep.WallSeconds = Wall.seconds();
  return Rep;
}

//===----------------------------------------------------------------------===//
// Report JSON
//===----------------------------------------------------------------------===//

std::string ExploreReport::json(bool IncludeTimings) const {
  using support::JsonArray;
  using support::JsonObject;
  using support::jsonQuote;

  std::string OS;
  OS += "{\n";
  OS += formatString("  \"schema_version\": %d,\n",
                     engine::ReportSchemaVersion);
  OS += "  \"kind\": \"explore\",\n";
  if (!Ok) {
    OS += "  \"error\": " + jsonQuote(Error) + "\n}\n";
    return OS;
  }
  OS += formatString("  \"seed\": %llu,\n", Seed);
  OS += formatString("  \"budget\": %d,\n", Budget);
  {
    JsonArray ModelsArr;
    for (const std::string &M : Models)
      ModelsArr.item(jsonQuote(M));
    OS += "  \"models\": " + ModelsArr.str() + ",\n";
  }
  if (IncludeTimings)
    OS += formatString("  \"jobs\": %d,\n  \"wall_seconds\": %.3f,\n",
                       Jobs, WallSeconds);
  {
    JsonObject Summary;
    Summary.field("generated", Generated)
        .field("deduplicated", Deduplicated)
        .field("run", Run)
        .field("skips", SkipEntries)
        .field("divergences", divergenceCount())
        .field("shrunk", Shrunk)
        .field("cancelled", Cancelled);
    OS += "  \"summary\": " + Summary.str() + ",\n";
  }
  {
    JsonArray Warn;
    for (const std::string &W : Warnings)
      Warn.item(jsonQuote(W));
    OS += "  \"warnings\": " + Warn.str() + ",\n";
  }
  OS += "  \"scenarios\": [\n";
  for (size_t I = 0; I < Scenarios.size(); ++I) {
    const ScenarioRecord &R = Scenarios[I];
    JsonObject Cell;
    Cell.field("index", R.Index)
        .field("label", R.Label)
        .field("kind", R.Kind)
        .field("result", R.Result)
        .field("summary", R.Summary);
    JsonArray Skips;
    for (const std::string &S : R.Skips)
      Skips.item(jsonQuote(S));
    Cell.raw("skips", Skips.str());
    if (IncludeTimings)
      Cell.fixed("seconds", R.Seconds);
    OS += "    " + Cell.str() +
          (I + 1 < Scenarios.size() ? ",\n" : "\n");
  }
  OS += "  ],\n";
  OS += "  \"divergences\": [\n";
  for (size_t I = 0; I < Divergences.size(); ++I) {
    const DivergenceRecord &D = Divergences[I];
    JsonObject Cell;
    Cell.field("label", D.Label)
        .field("kind", D.Kind)
        .field("model", D.Model)
        .field("detail", D.Detail)
        .field("shrunk", D.Shrunk)
        .field("threads", D.Threads)
        .field("ops", D.Ops)
        .field("notation", D.Notation)
        .field("source", D.Source)
        .field("repro", D.ReproPath);
    OS += "    " + Cell.str() +
          (I + 1 < Divergences.size() ? ",\n" : "\n");
  }
  OS += "  ]\n";
  OS += "}\n";
  return OS;
}
