//===--- Encoder.cpp - end-to-end problem encoding --------------------------===//
//
// Part of the CheckFence reproduction (PLDI'07).
//
//===----------------------------------------------------------------------===//

#include "checker/Encoder.h"

#include "support/Format.h"
#include "support/Timing.h"

using namespace checkfence;
using namespace checkfence::checker;
using namespace checkfence::encode;
using namespace checkfence::trans;

EncodedProblem::EncodedProblem(const lsl::Program &Prog,
                               const std::vector<std::string> &ThreadProcs,
                               const LoopBounds &Bounds,
                               const ProblemConfig &Cfg) {
  Timer EncodeTimer;
  if (Cfg.ProofLog)
    Solver.enableProofLog();

  // 1. Flatten every thread (thread 0 is the init sequence).
  Flattener F(Prog, Flat, Bounds);
  for (size_t T = 0; T < ThreadProcs.size(); ++T) {
    if (!F.flattenThread(ThreadProcs[T], static_cast<int>(T))) {
      fail("flattening failed: " + F.error());
      return;
    }
  }
  Stats.UnrolledInstrs = Flat.UnrolledInstrCount;
  Stats.Loads = Flat.numLoads();
  Stats.Stores = Flat.numStores();

  // 2. Range analysis (always computed: the encoding needs the pointer
  //    universe; the Cfg.RangeAnalysis switch controls whether its results
  //    are exploited).
  Ranges = analyzeRanges(Flat);

  // 3. Thread-local encoding.
  Cnf = std::make_unique<CnfBuilder>(Solver);
  EncodeOptions EO;
  EO.FixConstants = Cfg.RangeAnalysis;
  EO.MinimalWidths = Cfg.RangeAnalysis;
  EO.AliasPruning = Cfg.RangeAnalysis;
  Values = std::make_unique<ValueEncoder>(*Cnf, Flat, Ranges, EO);
  if (!Values->encodeAll()) {
    fail("value encoding failed: " + Values->error());
    return;
  }

  // 4. Memory model.
  Model = std::make_unique<memmodel::MemoryModelEncoder>(
      *Values, Flat, Ranges, Cfg.Model, Cfg.Order, EO);
  if (!Model->encode()) {
    fail("memory model encoding failed");
    return;
  }

  // 5. Side conditions, error flag, loop bounds.
  encodeChecksAndBounds(Cfg);

  Solver.ConflictBudget = Cfg.ConflictBudget;
  Stats.EncodeSeconds = EncodeTimer.seconds();
  Stats.SatVars = Solver.numVars();
  Stats.SatClauses = Solver.numClauses();
  Stats.SolverMemBytes = Solver.memoryBytes();
}

void EncodedProblem::encodeChecksAndBounds(const ProblemConfig &Cfg) {
  std::vector<Lit> ErrorTerms;
  for (const FlatCheck &C : Flat.Checks) {
    Lit G = Values->guardLit(C.Guard);
    const EncValue &E = Values->value(C.Cond);
    Lit UndefL = Cnf->andLit(~E.IsInt, ~E.IsPtr);
    switch (C.K) {
    case FlatCheck::Kind::Assume: {
      Lit Truthy = Values->truthyLit(E);
      // Executions continue past an assume only if it holds or its
      // condition is undefined (which raises the error flag).
      Cnf->addClause(~G, UndefL, Truthy);
      Lit Term = Cnf->andLit(G, UndefL);
      if (!Cnf->isFalse(Term)) {
        ErrorTerms.push_back(Term);
        ErrorSources.push_back(
            {Term, formatString("assume() on undefined value (thread %d, "
                                "line %d)",
                                C.Thread, C.Loc.Line)});
      }
      break;
    }
    case FlatCheck::Kind::Assert: {
      Lit Truthy = Values->truthyLit(E);
      Lit Term = Cnf->andLit(G, Cnf->orLit(UndefL, ~Truthy));
      if (!Cnf->isFalse(Term)) {
        ErrorTerms.push_back(Term);
        ErrorSources.push_back(
            {Term, formatString("assertion failed (thread %d, line %d)",
                                C.Thread, C.Loc.Line)});
      }
      break;
    }
    case FlatCheck::Kind::CheckAddr: {
      Lit Term = Cnf->andLit(G, ~E.IsPtr);
      if (!Cnf->isFalse(Term)) {
        ErrorTerms.push_back(Term);
        ErrorSources.push_back(
            {Term, formatString("invalid or undefined address dereferenced "
                                "(thread %d, line %d)",
                                C.Thread, C.Loc.Line)});
      }
      break;
    }
    case FlatCheck::Kind::CheckBranch: {
      Lit Term = Cnf->andLit(G, UndefL);
      if (!Cnf->isFalse(Term)) {
        ErrorTerms.push_back(Term);
        ErrorSources.push_back(
            {Term, formatString("branch on undefined value (thread %d, "
                                "line %d)",
                                C.Thread, C.Loc.Line)});
      }
      break;
    }
    case FlatCheck::Kind::CheckDef: {
      Lit Term = Cnf->andLit(G, UndefL);
      if (!Cnf->isFalse(Term)) {
        ErrorTerms.push_back(Term);
        ErrorSources.push_back(
            {Term, formatString("undefined value used in a computation "
                                "(thread %d, line %d)",
                                C.Thread, C.Loc.Line)});
      }
      break;
    }
    }
  }
  ErrorLit = Cnf->orLits(ErrorTerms);

  // Loop bounds (Sec. 3.3): within-bounds checking assumes no mark fires;
  // the probe asks for at least one non-restricted mark to fire.
  std::vector<Lit> ProbeLits;
  for (const FlatBoundMark &M : Flat.BoundMarks) {
    Lit L = Values->guardLit(M.Guard);
    if (M.Restricted || !Cfg.ProbeBounds) {
      Solver.addClause(~L);
      continue;
    }
    ProbeLits.push_back(L);
    ProbeMarks.push_back({L, M.LoopKey});
  }
  if (Cfg.ProbeBounds)
    Cnf->addClause(ProbeLits.empty() ? std::vector<Lit>{Cnf->falseLit()}
                                     : ProbeLits);
}

sat::SolveResult EncodedProblem::solve() {
  Timer T;
  sat::SolveResult R = Solver.solve();
  Stats.SolveSeconds += T.seconds();
  Stats.SolverMemBytes = std::max(Stats.SolverMemBytes,
                                  Solver.memoryBytes());
  return R;
}

Observation EncodedProblem::decodeObservation() {
  Observation O;
  O.Error = Solver.modelValue(ErrorLit) == sat::LBool::True;
  for (const FlatObservation &Slot : Flat.Observations)
    O.Values.push_back(Values->decode(Solver, Slot.Val));
  return O;
}

std::vector<sat::Lit> EncodedProblem::mismatchClause(const Observation &O) {
  std::vector<Lit> Clause;
  // Error-flag component.
  Clause.push_back(O.Error ? ~ErrorLit : ErrorLit);
  assert(O.Values.size() == Flat.Observations.size() &&
         "observation arity mismatch");
  for (size_t I = 0; I < Flat.Observations.size(); ++I) {
    Lit Match = Values->eqConstLit(Flat.Observations[I].Val, O.Values[I]);
    if (Cnf->isTrue(Match))
      continue; // this component always matches; cannot contribute
    Clause.push_back(~Match);
  }
  return Clause;
}

bool EncodedProblem::requireObservation(const Observation &O) {
  bool Ok = Solver.addClause(O.Error ? ErrorLit : ~ErrorLit);
  assert(O.Values.size() == Flat.Observations.size() &&
         "observation arity mismatch");
  for (size_t I = 0; I < Flat.Observations.size(); ++I) {
    Lit Match = Values->eqConstLit(Flat.Observations[I].Val, O.Values[I]);
    Ok = Solver.addClause(Match) && Ok;
  }
  return Ok;
}

std::vector<std::string> EncodedProblem::observationLabels() const {
  std::vector<std::string> Labels;
  for (const FlatObservation &Slot : Flat.Observations)
    Labels.push_back(Slot.Label);
  return Labels;
}

Trace EncodedProblem::decodeTrace() {
  Trace T;
  T.Obs = decodeObservation();
  T.ObsLabels = observationLabels();
  for (const ErrorSource &E : ErrorSources)
    if (Solver.modelValue(E.L) == sat::LBool::True)
      T.Errors.push_back(E.Description);

  for (int Ev : Model->modelOrderedAccesses(Solver)) {
    const FlatEvent &E = Flat.Events[Ev];
    TraceEntry Entry;
    Entry.Thread = E.Thread;
    Entry.IsStore = E.isStore();
    Entry.Addr = Values->decode(Solver, E.Addr);
    Entry.Data = Values->decode(Solver, E.Data);
    Entry.Loc = E.Loc;
    Entry.PoIndex = E.IndexInThread;
    Entry.CallLines = E.CallLines;
    Entry.OpInvId = E.OpInvId;
    if (E.OpInvId >= 0 &&
        E.OpInvId < static_cast<int>(Flat.OpInvocations.size()))
      Entry.OpName = Flat.OpInvocations[E.OpInvId].Name;
    T.MemoryOrder.push_back(Entry);
  }
  return T;
}

std::vector<std::string> EncodedProblem::exceededLoops() {
  std::vector<std::string> Keys;
  for (const MarkLit &M : ProbeMarks)
    if (Solver.modelValue(M.L) == sat::LBool::True)
      Keys.push_back(M.Key);
  return Keys;
}
