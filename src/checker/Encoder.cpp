//===--- Encoder.cpp - end-to-end problem encoding --------------------------===//
//
// Part of the CheckFence reproduction (PLDI'07).
//
//===----------------------------------------------------------------------===//

#include "checker/Encoder.h"

#include "support/Format.h"
#include "support/Timing.h"

using namespace checkfence;
using namespace checkfence::checker;
using namespace checkfence::encode;
using namespace checkfence::trans;

//===----------------------------------------------------------------------===//
// ProblemEncoding
//===----------------------------------------------------------------------===//

ProblemEncoding::ProblemEncoding(CnfBuilder &CnfB, const lsl::Program &Prog,
                                 const std::vector<std::string> &ThreadProcs,
                                 const LoopBounds &LoopBoundsIn,
                                 const ProblemConfig &Cfg)
    : Cnf(&CnfB), Bounds(LoopBoundsIn) {
  Timer EncodeTimer;

  // 1. Flatten every thread (thread 0 is the init sequence).
  Flattener F(Prog, Flat, Bounds);
  for (size_t T = 0; T < ThreadProcs.size(); ++T) {
    if (!F.flattenThread(ThreadProcs[T], static_cast<int>(T))) {
      fail("flattening failed: " + F.error());
      return;
    }
  }
  Stats.UnrolledInstrs = Flat.UnrolledInstrCount;
  Stats.Loads = Flat.numLoads();
  Stats.Stores = Flat.numStores();

  // 2. Range analysis (always computed: the encoding needs the pointer
  //    universe; the Cfg.RangeAnalysis switch controls whether its results
  //    are exploited).
  Ranges = analyzeRanges(Flat);

  // 3. Thread-local encoding.
  EncodeOptions EO;
  EO.FixConstants = Cfg.RangeAnalysis;
  EO.MinimalWidths = Cfg.RangeAnalysis;
  EO.AliasPruning = Cfg.RangeAnalysis;
  Values = std::make_unique<ValueEncoder>(*Cnf, Flat, Ranges, EO);
  if (!Values->encodeAll()) {
    fail("value encoding failed: " + Values->error());
    return;
  }

  // 4. Memory model.
  Model = std::make_unique<memmodel::MemoryModelEncoder>(
      *Values, Flat, Ranges, Cfg.Model, Cfg.Order, EO);
  if (!Model->encode()) {
    fail("memory model encoding failed for '" +
         memmodel::modelName(Cfg.Model) +
         "' (non-multi-copy-atomic models are not supported by the SAT "
         "encoder)");
    return;
  }

  // 5. Side conditions, error flag, loop bounds.
  encodeChecksAndBounds(Cfg);

  Stats.EncodeSeconds = EncodeTimer.seconds();
}

void ProblemEncoding::encodeChecksAndBounds(const ProblemConfig &Cfg) {
  (void)Cfg;
  std::vector<Lit> ErrorTerms;
  for (const FlatCheck &C : Flat.Checks) {
    Lit G = Values->guardLit(C.Guard);
    const EncValue &E = Values->value(C.Cond);
    Lit UndefL = Cnf->andLit(~E.IsInt, ~E.IsPtr);
    switch (C.K) {
    case FlatCheck::Kind::Assume: {
      Lit Truthy = Values->truthyLit(E);
      // Executions continue past an assume only if it holds or its
      // condition is undefined (which raises the error flag).
      Cnf->addClause(~G, UndefL, Truthy);
      Lit Term = Cnf->andLit(G, UndefL);
      if (!Cnf->isFalse(Term)) {
        ErrorTerms.push_back(Term);
        ErrorSources.push_back(
            {Term, formatString("assume() on undefined value (thread %d, "
                                "line %d)",
                                C.Thread, C.Loc.Line)});
      }
      break;
    }
    case FlatCheck::Kind::Assert: {
      Lit Truthy = Values->truthyLit(E);
      Lit Term = Cnf->andLit(G, Cnf->orLit(UndefL, ~Truthy));
      if (!Cnf->isFalse(Term)) {
        ErrorTerms.push_back(Term);
        ErrorSources.push_back(
            {Term, formatString("assertion failed (thread %d, line %d)",
                                C.Thread, C.Loc.Line)});
      }
      break;
    }
    case FlatCheck::Kind::CheckAddr: {
      Lit Term = Cnf->andLit(G, ~E.IsPtr);
      if (!Cnf->isFalse(Term)) {
        ErrorTerms.push_back(Term);
        ErrorSources.push_back(
            {Term, formatString("invalid or undefined address dereferenced "
                                "(thread %d, line %d)",
                                C.Thread, C.Loc.Line)});
      }
      break;
    }
    case FlatCheck::Kind::CheckBranch: {
      Lit Term = Cnf->andLit(G, UndefL);
      if (!Cnf->isFalse(Term)) {
        ErrorTerms.push_back(Term);
        ErrorSources.push_back(
            {Term, formatString("branch on undefined value (thread %d, "
                                "line %d)",
                                C.Thread, C.Loc.Line)});
      }
      break;
    }
    case FlatCheck::Kind::CheckDef: {
      Lit Term = Cnf->andLit(G, UndefL);
      if (!Cnf->isFalse(Term)) {
        ErrorTerms.push_back(Term);
        ErrorSources.push_back(
            {Term, formatString("undefined value used in a computation "
                                "(thread %d, line %d)",
                                C.Thread, C.Loc.Line)});
      }
      break;
    }
    }
  }
  ErrorLit = Cnf->orLits(ErrorTerms);

  // Loop bounds (Sec. 3.3). Restricted marks are pinned off. Every other
  // mark stays free and is controlled per solve call: within-bounds
  // checking assumes each one off; the probe assumes the activation
  // literal, whose clause demands that at least one mark fires. This keeps
  // both modes available on one incremental solver.
  std::vector<Lit> ProbeLits;
  for (const FlatBoundMark &M : Flat.BoundMarks) {
    Lit L = Values->guardLit(M.Guard);
    if (M.Restricted) {
      Cnf->addClause(~L);
      continue;
    }
    ProbeLits.push_back(L);
    ProbeMarks.push_back({L, M.LoopKey});
    WithinAssumptions.push_back(~L);
  }
  ProbeAct = Cnf->fresh();
  std::vector<Lit> ProbeClause{~ProbeAct};
  ProbeClause.insert(ProbeClause.end(), ProbeLits.begin(), ProbeLits.end());
  Cnf->addClause(ProbeClause);
}

Observation ProblemEncoding::decodeObservation(const sat::Solver &S) const {
  Observation O;
  O.Error = S.modelValue(ErrorLit) == sat::LBool::True;
  for (const FlatObservation &Slot : Flat.Observations)
    O.Values.push_back(Values->decode(S, Slot.Val));
  return O;
}

std::vector<sat::Lit>
ProblemEncoding::mismatchClause(const Observation &O) {
  std::vector<Lit> Clause;
  // Error-flag component.
  Clause.push_back(O.Error ? ~ErrorLit : ErrorLit);
  assert(O.Values.size() == Flat.Observations.size() &&
         "observation arity mismatch");
  for (size_t I = 0; I < Flat.Observations.size(); ++I) {
    Lit Match = Values->eqConstLit(Flat.Observations[I].Val, O.Values[I]);
    if (Cnf->isTrue(Match))
      continue; // this component always matches; cannot contribute
    Clause.push_back(~Match);
  }
  return Clause;
}

bool ProblemEncoding::addMismatch(const Observation &O,
                                  sat::Lit Activation) {
  std::vector<Lit> Clause = mismatchClause(O);
  if (Activation != sat::LitUndef)
    Clause.push_back(~Activation);
  return Cnf->sink().addClause(Clause);
}

bool ProblemEncoding::requireObservation(const Observation &O) {
  sat::ClauseSink &Sink = Cnf->sink();
  bool Ok = Sink.addClause(O.Error ? ErrorLit : ~ErrorLit);
  assert(O.Values.size() == Flat.Observations.size() &&
         "observation arity mismatch");
  for (size_t I = 0; I < Flat.Observations.size(); ++I) {
    Lit Match = Values->eqConstLit(Flat.Observations[I].Val, O.Values[I]);
    Ok = Sink.addClause(Match) && Ok;
  }
  return Ok;
}

std::vector<std::string> ProblemEncoding::observationLabels() const {
  std::vector<std::string> Labels;
  for (const FlatObservation &Slot : Flat.Observations)
    Labels.push_back(Slot.Label);
  return Labels;
}

Trace ProblemEncoding::decodeTrace(const sat::Solver &S) const {
  Trace T;
  T.Obs = decodeObservation(S);
  T.ObsLabels = observationLabels();
  for (const ErrorSource &E : ErrorSources)
    if (S.modelValue(E.L) == sat::LBool::True)
      T.Errors.push_back(E.Description);

  for (int Ev : Model->modelOrderedAccesses(S)) {
    const FlatEvent &E = Flat.Events[Ev];
    TraceEntry Entry;
    Entry.Thread = E.Thread;
    Entry.IsStore = E.isStore();
    Entry.Addr = Values->decode(S, E.Addr);
    Entry.Data = Values->decode(S, E.Data);
    Entry.Loc = E.Loc;
    Entry.PoIndex = E.IndexInThread;
    Entry.CallLines = E.CallLines;
    Entry.OpInvId = E.OpInvId;
    if (E.OpInvId >= 0 &&
        E.OpInvId < static_cast<int>(Flat.OpInvocations.size()))
      Entry.OpName = Flat.OpInvocations[E.OpInvId].Name;
    T.MemoryOrder.push_back(Entry);
  }
  return T;
}

std::vector<std::string>
ProblemEncoding::exceededLoops(const sat::Solver &S) const {
  std::vector<std::string> Keys;
  for (const MarkLit &M : ProbeMarks)
    if (S.modelValue(M.L) == sat::LBool::True)
      Keys.push_back(M.Key);
  return Keys;
}

//===----------------------------------------------------------------------===//
// EncodedProblem
//===----------------------------------------------------------------------===//

EncodedProblem::EncodedProblem(const lsl::Program &Prog,
                               const std::vector<std::string> &ThreadProcs,
                               const LoopBounds &Bounds,
                               const ProblemConfig &Cfg)
    : ProbeMode(Cfg.ProbeBounds) {
  if (Cfg.ProofLog)
    Solver.enableProofLog();
  Cnf = std::make_unique<CnfBuilder>(Solver);
  Enc = std::make_unique<ProblemEncoding>(*Cnf, Prog, ThreadProcs, Bounds,
                                          Cfg);
  // One-shot problems never retract their mode, so the mode literals are
  // hard-asserted here. This reproduces the classic CNF exactly (keeping
  // Unsat answers refutations of the formula alone, as the proof log and
  // its RUP checker require) instead of solving under assumptions.
  if (Enc->ok())
    for (sat::Lit A : ProbeMode ? Enc->probeAssumptions()
                                : Enc->withinBoundsAssumptions())
      Solver.addClause(A);
  Solver.ConflictBudget = Cfg.ConflictBudget;
  EncodeStats &Stats = Enc->stats();
  Stats.SatVars = Solver.numVars();
  Stats.SatClauses = Solver.numClauses();
  Stats.SolverMemBytes = Solver.memoryBytes();
}

sat::SolveResult EncodedProblem::solve() {
  Timer T;
  sat::SolveResult R = Solver.solve();
  EncodeStats &Stats = Enc->stats();
  Stats.SolveSeconds += T.seconds();
  Stats.SolveCalls += 1;
  Stats.LearntClauses = Solver.numLearnts();
  Stats.SolverMemBytes =
      std::max(Stats.SolverMemBytes, Solver.memoryBytes());
  return R;
}
