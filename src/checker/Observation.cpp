//===--- Observation.cpp - observation vectors and sets --------------------===//

#include "checker/Observation.h"

#include "support/Format.h"

using namespace checkfence;
using namespace checkfence::checker;

std::string Observation::str(const std::vector<std::string> &Labels) const {
  std::string Out = formatString("err=%d (", Error ? 1 : 0);
  for (size_t I = 0; I < Values.size(); ++I) {
    if (I != 0)
      Out += ", ";
    if (I < Labels.size() && !Labels[I].empty())
      Out += Labels[I] + "=";
    Out += Values[I].str();
  }
  return Out + ")";
}
