//===--- InclusionChecker.h - the inclusion check ---------------*- C++ -*-==//
//
// Part of the CheckFence reproduction (PLDI'07).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Checks obs(E(T,I,Y)) subseteq S by solving Phi(T,I,Y) conjoined with a
/// mismatch clause for every specification element (Sec. 3.2, "inclusion
/// check"). A satisfying assignment is decoded into a counterexample trace.
///
//===----------------------------------------------------------------------===//

#ifndef CHECKFENCE_CHECKER_INCLUSIONCHECKER_H
#define CHECKFENCE_CHECKER_INCLUSIONCHECKER_H

#include "checker/SolveContext.h"

#include <optional>

namespace checkfence {
namespace checker {

struct InclusionOutcome {
  bool Ok = false;
  std::string Error;
  bool Pass = false;
  std::optional<Trace> Counterexample;
};

/// Runs the inclusion check of \p Spec on \p Prob (built with the target
/// memory model).
InclusionOutcome checkInclusion(EncodedProblem &Prob,
                                const ObservationSet &Spec);

/// Incremental variant: checks inclusion on \p Enc inside \p Ctx, solving
/// under \p Assumptions (normally Enc.withinBoundsAssumptions()). The
/// specification's mismatch clauses are gated by a fresh activation
/// literal, so the context's solver stays usable for the bound probe and
/// later re-checks afterwards.
InclusionOutcome checkInclusion(SolveContext &Ctx, ProblemEncoding &Enc,
                                const ObservationSet &Spec,
                                const std::vector<sat::Lit> &Assumptions);

/// The encoding half of the incremental inclusion check, split out so the
/// session engine can hand the solve itself to a racing solver portfolio:
/// installs the activation-gated mismatch clauses for \p Spec and returns
/// the assumption set (input assumptions + the activation literal) the
/// solve must run under.
struct PreparedInclusion {
  bool Ok = false;     ///< encoding usable (Error holds the message if not)
  std::string Error;
  bool Trivial = false; ///< mismatch clauses alone are unsat: trivially Pass
  std::vector<sat::Lit> Assumptions;
};

PreparedInclusion prepareInclusion(SolveContext &Ctx, ProblemEncoding &Enc,
                                   const ObservationSet &Spec,
                                   const std::vector<sat::Lit> &Assumptions);

} // namespace checker
} // namespace checkfence

#endif // CHECKFENCE_CHECKER_INCLUSIONCHECKER_H
