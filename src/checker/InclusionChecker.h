//===--- InclusionChecker.h - the inclusion check ---------------*- C++ -*-==//
//
// Part of the CheckFence reproduction (PLDI'07).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Checks obs(E(T,I,Y)) subseteq S by solving Phi(T,I,Y) conjoined with a
/// mismatch clause for every specification element (Sec. 3.2, "inclusion
/// check"). A satisfying assignment is decoded into a counterexample trace.
///
//===----------------------------------------------------------------------===//

#ifndef CHECKFENCE_CHECKER_INCLUSIONCHECKER_H
#define CHECKFENCE_CHECKER_INCLUSIONCHECKER_H

#include "checker/Encoder.h"

#include <optional>

namespace checkfence {
namespace checker {

struct InclusionOutcome {
  bool Ok = false;
  std::string Error;
  bool Pass = false;
  std::optional<Trace> Counterexample;
};

/// Runs the inclusion check of \p Spec on \p Prob (built with the target
/// memory model).
InclusionOutcome checkInclusion(EncodedProblem &Prob,
                                const ObservationSet &Spec);

} // namespace checker
} // namespace checkfence

#endif // CHECKFENCE_CHECKER_INCLUSIONCHECKER_H
