//===--- Trace.cpp - counterexample traces ----------------------------------===//

#include "checker/Trace.h"

#include "support/Format.h"

#include <algorithm>

using namespace checkfence;
using namespace checkfence::checker;

std::string Trace::str() const {
  std::string Out = "observation: " + Obs.str(ObsLabels) + "\n";
  for (const std::string &E : Errors)
    Out += "error: " + E + "\n";
  Out += "memory order (executed accesses):\n";
  for (size_t I = 0; I < MemoryOrder.size(); ++I) {
    const TraceEntry &T = MemoryOrder[I];
    Out += formatString("  %2zu. t%d %-5s %-12s %s", I, T.Thread,
                        T.IsStore ? "store" : "load", T.Addr.str().c_str(),
                        T.Data.str().c_str());
    if (!T.OpName.empty())
      Out += formatString("  [%s #%d]", T.OpName.c_str(), T.OpInvId);
    if (T.Loc.isValid())
      Out += formatString("  (line %d)", T.Loc.Line);
    Out += "\n";
  }
  return Out;
}

std::string Trace::columns() const {
  std::string Out = "observation: " + Obs.str(ObsLabels) + "\n";
  for (const std::string &E : Errors)
    Out += "error: " + E + "\n";
  if (MemoryOrder.empty())
    return Out;

  int NumThreads = 0;
  for (const TraceEntry &T : MemoryOrder)
    NumThreads = std::max(NumThreads, T.Thread + 1);

  // One cell per access: "store [a]=v @ln" / "load  [a]->v @ln", with a
  // '^' marker when the access overtook a program-order-earlier one.
  std::vector<std::string> Cells;
  std::vector<int> MaxPoSeen(NumThreads, -1);
  size_t Width = 10;
  for (const TraceEntry &T : MemoryOrder) {
    bool Overtook = T.PoIndex < MaxPoSeen[T.Thread];
    MaxPoSeen[T.Thread] = std::max(MaxPoSeen[T.Thread], T.PoIndex);
    std::string Cell = formatString(
        "%s%s %s%s%s", Overtook ? "^" : "", T.IsStore ? "store" : "load",
        T.Addr.str().c_str(), T.IsStore ? "=" : "->",
        T.Data.str().c_str());
    if (T.Loc.isValid())
      Cell += formatString(" @%d", T.Loc.Line);
    Width = std::max(Width, Cell.size());
    Cells.push_back(std::move(Cell));
  }

  auto Pad = [&](const std::string &S) {
    return S + std::string(Width + 2 - S.size(), ' ');
  };
  std::string Header = "     ";
  for (int T = 0; T < NumThreads; ++T)
    Header += Pad(formatString("thread %d", T));
  Out += Header + "\n";
  for (size_t I = 0; I < MemoryOrder.size(); ++I) {
    Out += formatString("%3zu. ", I);
    for (int T = 0; T < NumThreads; ++T)
      Out += Pad(MemoryOrder[I].Thread == T ? Cells[I] : "");
    while (!Out.empty() && Out.back() == ' ')
      Out.pop_back();
    Out += "\n";
  }
  Out += "('^' marks an access performed before a program-order-earlier "
         "access of its thread)\n";
  return Out;
}
