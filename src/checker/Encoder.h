//===--- Encoder.h - end-to-end problem encoding ---------------*- C++ -*-==//
//
// Part of the CheckFence reproduction (PLDI'07).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Assembles the full formula Phi(T,I,Y) (Sec. 3.2.1) for one test program:
/// flatten the thread procedures, run the range analysis, encode the
/// thread-local dataflow (Delta_k), the memory model (Theta), the side
/// conditions (assumes as hard constraints, asserts and runtime-type checks
/// as the error flag), the loop-bound marks, and the observation vector.
///
/// The encoding is split into two halves:
///
///  * ProblemEncoding - the pure CNF artifact plus its decode maps. Clauses
///    flow through a CnfBuilder into whatever sat::ClauseSink the builder
///    wraps (a live solver, or a CnfStore for a solver-free artifact); no
///    solver is owned. Loop-bound probe marks and mismatch-clause groups
///    are not hard-asserted - they are controlled by activation literals so
///    one encoding serves within-bounds checking, the bound probe, and
///    retractable specification constraints on a single incremental solver.
///
///  * EncodedProblem - the classic one-shot composition (own solver + one
///    encoding), kept as the convenience entry point for tests, litmus
///    runs, and the non-incremental reference pipeline.
///
/// The same encoding serves specification mining (Serial model, iterate
/// with blocking clauses), inclusion checking (weak model, mismatch clauses
/// for every specification element), and the lazy-unrolling bound probe.
///
//===----------------------------------------------------------------------===//

#ifndef CHECKFENCE_CHECKER_ENCODER_H
#define CHECKFENCE_CHECKER_ENCODER_H

#include "checker/Observation.h"
#include "checker/Trace.h"
#include "encode/ValueEncoding.h"
#include "memmodel/MemoryModel.h"
#include "trans/Flattener.h"

#include <memory>
#include <optional>
#include <string>

namespace checkfence {
namespace checker {

struct ProblemConfig {
  memmodel::ModelParams Model = memmodel::ModelParams::relaxed();
  encode::OrderMode Order = encode::OrderMode::Pairwise;
  /// Use the range-analysis results to fix constants, minimize widths, and
  /// prune aliases (Fig. 11c ablation switch).
  bool RangeAnalysis = true;
  /// For the one-shot EncodedProblem: solve() targets the bound-exceed
  /// probe instead of within-bounds checking. (ProblemEncoding always
  /// encodes both modes; assumptions select one per solve call.)
  bool ProbeBounds = false;
  /// Give up (Unknown) after this many conflicts; -1 = no budget.
  int64_t ConflictBudget = -1;
  /// Record a DRAT-style clausal proof (sat/Proof.h); an Unsat inclusion
  /// check (a PASS verdict) can then be validated independently.
  bool ProofLog = false;
};

/// Size/time statistics for one encoded problem (Fig. 10 columns).
struct EncodeStats {
  int UnrolledInstrs = 0;
  int Loads = 0;
  int Stores = 0;
  double EncodeSeconds = 0;
  int SatVars = 0;
  uint64_t SatClauses = 0;
  size_t SolverMemBytes = 0;
  double SolveSeconds = 0;  ///< accumulated over all solve() calls
  uint64_t SolveCalls = 0;  ///< number of solve() calls charged here
  uint64_t LearntClauses = 0; ///< learnt clauses live after the last solve
};

/// The solver-free half: flat program, range info, value/model encoders
/// (the decode maps), the error flag, and the activation literals. All
/// clauses go through the CnfBuilder handed to the constructor; the caller
/// decides whether that builder wraps a live solver or a CnfStore.
class ProblemEncoding {
public:
  ProblemEncoding(encode::CnfBuilder &Cnf, const lsl::Program &Prog,
                  const std::vector<std::string> &ThreadProcs,
                  const trans::LoopBounds &Bounds, const ProblemConfig &Cfg);

  bool ok() const { return ErrorMsg.empty(); }
  const std::string &error() const { return ErrorMsg; }

  /// Assumptions restricting the search to executions within the loop
  /// bounds (one negated mark literal per non-restricted loop instance).
  /// Restricted marks are hard-asserted off in both modes.
  const std::vector<sat::Lit> &withinBoundsAssumptions() const {
    return WithinAssumptions;
  }

  /// Assumptions activating the bound-exceed probe ("at least one
  /// non-restricted mark fires").
  std::vector<sat::Lit> probeAssumptions() const { return {ProbeAct}; }

  /// The probe activation literal itself.
  sat::Lit probeActivation() const { return ProbeAct; }

  /// Decodes the observation of the current model (after Sat).
  Observation decodeObservation(const sat::Solver &S) const;

  /// Clause asserting "observation != O" (used both as the mining blocking
  /// clause and as the inclusion-check constraint). May create comparator
  /// gates through the CnfBuilder.
  std::vector<sat::Lit> mismatchClause(const Observation &O);

  /// Adds the mismatch clause; with a defined \p Activation the clause only
  /// binds while that literal is assumed (retractable constraint group).
  /// Returns false if the sink became unsat.
  bool addMismatch(const Observation &O,
                   sat::Lit Activation = sat::LitUndef);

  /// Constrains the problem to executions with exactly observation \p O
  /// (used by the litmus tests: "is this outcome reachable?"). Hard.
  bool requireObservation(const Observation &O);

  /// Decodes a full counterexample trace (after Sat).
  Trace decodeTrace(const sat::Solver &S) const;

  /// After a Sat probe solve: keys of the loop instances whose bounds were
  /// exceeded in the current model.
  std::vector<std::string> exceededLoops(const sat::Solver &S) const;

  const trans::FlatProgram &flat() const { return Flat; }
  /// Range-analysis results for flat() (always computed; the static
  /// robustness analysis reuses them instead of re-running the pass).
  const trans::RangeInfo &ranges() const { return Ranges; }
  const trans::LoopBounds &bounds() const { return Bounds; }
  const EncodeStats &stats() const { return Stats; }
  EncodeStats &stats() { return Stats; }
  std::vector<std::string> observationLabels() const;
  encode::CnfBuilder &cnf() { return *Cnf; }

private:
  void encodeChecksAndBounds(const ProblemConfig &Cfg);
  void fail(const std::string &Msg) {
    if (ErrorMsg.empty())
      ErrorMsg = Msg;
  }

  encode::CnfBuilder *Cnf = nullptr;
  trans::FlatProgram Flat;
  trans::LoopBounds Bounds;
  trans::RangeInfo Ranges;
  std::unique_ptr<encode::ValueEncoder> Values;
  std::unique_ptr<memmodel::MemoryModelEncoder> Model;

  encode::Lit ErrorLit;
  struct ErrorSource {
    encode::Lit L;
    std::string Description;
  };
  std::vector<ErrorSource> ErrorSources;
  struct MarkLit {
    encode::Lit L;
    std::string Key;
  };
  std::vector<MarkLit> ProbeMarks;
  std::vector<sat::Lit> WithinAssumptions;
  sat::Lit ProbeAct;

  EncodeStats Stats;
  std::string ErrorMsg;
};

/// One fully encoded test problem with its own solver - the one-shot
/// composition used by litmus runs, the test suites, and the
/// non-incremental reference pipeline (checker::runCheckFresh).
class EncodedProblem {
public:
  EncodedProblem(const lsl::Program &Prog,
                 const std::vector<std::string> &ThreadProcs,
                 const trans::LoopBounds &Bounds, const ProblemConfig &Cfg);

  bool ok() const { return Enc->ok(); }
  const std::string &error() const { return Enc->error(); }

  /// Solves under this problem's mode (within-bounds, or the probe when
  /// ProblemConfig::ProbeBounds was set); accumulates solve time.
  sat::SolveResult solve();

  Observation decodeObservation() { return Enc->decodeObservation(Solver); }
  std::vector<sat::Lit> mismatchClause(const Observation &O) {
    return Enc->mismatchClause(O);
  }
  bool addMismatch(const Observation &O) { return Enc->addMismatch(O); }
  bool requireObservation(const Observation &O) {
    return Enc->requireObservation(O);
  }
  Trace decodeTrace() { return Enc->decodeTrace(Solver); }
  std::vector<std::string> exceededLoops() {
    return Enc->exceededLoops(Solver);
  }

  const trans::FlatProgram &flat() const { return Enc->flat(); }
  const EncodeStats &stats() const { return Enc->stats(); }
  std::vector<std::string> observationLabels() const {
    return Enc->observationLabels();
  }

  ProblemEncoding &encoding() { return *Enc; }
  sat::Solver &solver() { return Solver; }

  /// The recorded proof (nullptr unless ProblemConfig::ProofLog was set).
  const sat::ProofLog *proofLog() const { return Solver.proofLog(); }

private:
  sat::Solver Solver;
  std::unique_ptr<encode::CnfBuilder> Cnf;
  std::unique_ptr<ProblemEncoding> Enc;
  bool ProbeMode = false;
};

} // namespace checker
} // namespace checkfence

#endif // CHECKFENCE_CHECKER_ENCODER_H
