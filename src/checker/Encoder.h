//===--- Encoder.h - end-to-end problem encoding ---------------*- C++ -*-==//
//
// Part of the CheckFence reproduction (PLDI'07).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Assembles the full formula Phi(T,I,Y) (Sec. 3.2.1) for one test program:
/// flatten the thread procedures, run the range analysis, encode the
/// thread-local dataflow (Delta_k), the memory model (Theta), the side
/// conditions (assumes as hard constraints, asserts and runtime-type checks
/// as the error flag), the loop-bound marks, and the observation vector.
///
/// The same class serves specification mining (Serial model, iterate with
/// blocking clauses), inclusion checking (weak model, mismatch clauses for
/// every specification element), and the lazy-unrolling bound probe.
///
//===----------------------------------------------------------------------===//

#ifndef CHECKFENCE_CHECKER_ENCODER_H
#define CHECKFENCE_CHECKER_ENCODER_H

#include "checker/Observation.h"
#include "checker/Trace.h"
#include "encode/ValueEncoding.h"
#include "memmodel/MemoryModel.h"
#include "trans/Flattener.h"

#include <memory>
#include <optional>
#include <string>

namespace checkfence {
namespace checker {

struct ProblemConfig {
  memmodel::ModelKind Model = memmodel::ModelKind::Relaxed;
  encode::OrderMode Order = encode::OrderMode::Pairwise;
  /// Use the range-analysis results to fix constants, minimize widths, and
  /// prune aliases (Fig. 11c ablation switch).
  bool RangeAnalysis = true;
  /// Encode the bound-exceed probe instead of within-bounds checking.
  bool ProbeBounds = false;
  /// Give up (Unknown) after this many conflicts; -1 = no budget.
  int64_t ConflictBudget = -1;
  /// Record a DRAT-style clausal proof (sat/Proof.h); an Unsat inclusion
  /// check (a PASS verdict) can then be validated independently.
  bool ProofLog = false;
};

/// Size/time statistics for one encoded problem (Fig. 10 columns).
struct EncodeStats {
  int UnrolledInstrs = 0;
  int Loads = 0;
  int Stores = 0;
  double EncodeSeconds = 0;
  int SatVars = 0;
  uint64_t SatClauses = 0;
  size_t SolverMemBytes = 0;
  double SolveSeconds = 0; ///< accumulated over all solve() calls
};

/// One fully encoded test problem with its solver.
class EncodedProblem {
public:
  EncodedProblem(const lsl::Program &Prog,
                 const std::vector<std::string> &ThreadProcs,
                 const trans::LoopBounds &Bounds, const ProblemConfig &Cfg);

  bool ok() const { return ErrorMsg.empty(); }
  const std::string &error() const { return ErrorMsg; }

  /// Solves under the current constraints; accumulates solve time.
  sat::SolveResult solve();

  /// Decodes the observation of the current model (after Sat).
  Observation decodeObservation();

  /// Clause asserting "observation != O" (used both as the mining blocking
  /// clause and as the inclusion-check constraint).
  std::vector<sat::Lit> mismatchClause(const Observation &O);

  /// Adds the clause; returns false if the solver became unsat.
  bool addMismatch(const Observation &O) {
    return Solver.addClause(mismatchClause(O));
  }

  /// Constrains the problem to executions with exactly observation \p O
  /// (used by the litmus tests: "is this outcome reachable?").
  bool requireObservation(const Observation &O);

  /// Decodes a full counterexample trace (after Sat).
  Trace decodeTrace();

  /// Probe mode, after Sat: keys of the loop instances whose bounds were
  /// exceeded in the current model.
  std::vector<std::string> exceededLoops();

  const trans::FlatProgram &flat() const { return Flat; }
  const EncodeStats &stats() const { return Stats; }
  std::vector<std::string> observationLabels() const;

  /// The recorded proof (nullptr unless ProblemConfig::ProofLog was set).
  const sat::ProofLog *proofLog() const { return Solver.proofLog(); }

private:
  void encodeChecksAndBounds(const ProblemConfig &Cfg);
  void fail(const std::string &Msg) {
    if (ErrorMsg.empty())
      ErrorMsg = Msg;
  }

  sat::Solver Solver;
  std::unique_ptr<encode::CnfBuilder> Cnf;
  trans::FlatProgram Flat;
  trans::RangeInfo Ranges;
  std::unique_ptr<encode::ValueEncoder> Values;
  std::unique_ptr<memmodel::MemoryModelEncoder> Model;

  encode::Lit ErrorLit;
  struct ErrorSource {
    encode::Lit L;
    std::string Description;
  };
  std::vector<ErrorSource> ErrorSources;
  struct MarkLit {
    encode::Lit L;
    std::string Key;
  };
  std::vector<MarkLit> ProbeMarks;

  EncodeStats Stats;
  std::string ErrorMsg;
};

} // namespace checker
} // namespace checkfence

#endif // CHECKFENCE_CHECKER_ENCODER_H
