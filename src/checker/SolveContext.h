//===--- SolveContext.h - persistent incremental solving --------*- C++ -*-==//
//
// Part of the CheckFence reproduction (PLDI'07).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The solver-owning half of the encoding/solving split: one sat::Solver
/// plus one CnfBuilder that live across a *sequence* of related
/// ProblemEncodings. Successive encodings (the lazy-unrolling bound
/// iterations of Sec. 3.3, or the mine/include/probe phases of one bound
/// round) append variables and clauses to the same solver instead of
/// rebuilding the world; phase selection happens through assumptions over
/// the encodings' activation literals, so learnt clauses, saved phases, and
/// variable activities carry over between re-solves.
///
/// Retractable clause groups (specification mismatch sets, mining blocking
/// sets) are gated by activation literals from newActivation(): a group
/// only binds while its literal is assumed, and is abandoned - never
/// deleted - once its phase is over.
///
//===----------------------------------------------------------------------===//

#ifndef CHECKFENCE_CHECKER_SOLVECONTEXT_H
#define CHECKFENCE_CHECKER_SOLVECONTEXT_H

#include "checker/Encoder.h"
#include "sat/CnfStore.h"

#include <memory>
#include <vector>

namespace checkfence {
namespace checker {

class SolveContext {
public:
  /// With \p MirrorCnf set, every variable and clause fed to the solver is
  /// also recorded into a CnfStore, preserving variable numbering. The
  /// portfolio engine replays that store (incrementally, via cursors) into
  /// replica solvers that race the primary, and into the deterministic
  /// shadow solver whose models feed all decoded artifacts.
  explicit SolveContext(bool MirrorCnf = false)
      : Mirror(MirrorCnf ? std::make_unique<MirrorSink>(Solver) : nullptr),
        Cnf(Mirror ? static_cast<sat::ClauseSink &>(*Mirror)
                   : static_cast<sat::ClauseSink &>(Solver)) {}

  SolveContext(const SolveContext &) = delete;
  SolveContext &operator=(const SolveContext &) = delete;

  sat::Solver &solver() { return Solver; }
  const sat::Solver &solver() const { return Solver; }
  encode::CnfBuilder &cnf() { return Cnf; }

  /// The mirrored CNF, or nullptr when constructed without mirroring.
  const sat::CnfStore *mirror() const {
    return Mirror ? &Mirror->Store : nullptr;
  }

  /// Appends a new encoding of the given problem to this context's solver.
  /// Previous encodings stay in the clause database (their activation
  /// literals simply stop being assumed); the solver is never reset. The
  /// returned reference stays valid for the context's lifetime.
  ProblemEncoding &encode(const lsl::Program &Prog,
                          const std::vector<std::string> &ThreadProcs,
                          const trans::LoopBounds &Bounds,
                          const ProblemConfig &Cfg);

  /// The most recent encoding. Must not be called before encode().
  ProblemEncoding &current() {
    assert(!Encodings.empty() && "no encoding in this context");
    return *Encodings.back();
  }

  size_t numEncodings() const { return Encodings.size(); }

  /// A fresh literal for gating a retractable clause group.
  sat::Lit newActivation() { return Cnf.fresh(); }

  /// Re-arms the conflict budget for a new phase (mining enumeration,
  /// inclusion check, or one probe solve). The from-scratch pipeline gives
  /// every phase a fresh solver and hence a fresh allowance; this restores
  /// that semantics on the persistent solver, whose conflict counter never
  /// resets.
  void beginPhase() {
    Solver.ConflictBudget =
        PhaseBudget < 0
            ? -1
            : static_cast<int64_t>(Solver.stats().Conflicts) + PhaseBudget;
  }

  /// Solves under the given assumptions; accumulates solve time and call
  /// count into the current encoding's stats.
  sat::SolveResult solveUnder(const std::vector<sat::Lit> &Assumptions);

  /// Total solve seconds across all solveUnder calls on this context.
  double solveSeconds() const { return SolveSecs; }

private:
  /// Tee sink: forwards to the live solver while recording into a store.
  struct MirrorSink : sat::ClauseSink {
    explicit MirrorSink(sat::Solver &S) : S(S) {}
    sat::Var newVar() override {
      Store.newVar();
      return S.newVar();
    }
    bool addClause(const std::vector<sat::Lit> &Lits) override {
      Store.addClause(Lits);
      return S.addClause(Lits);
    }
    sat::Solver &S;
    sat::CnfStore Store;
  };

  sat::Solver Solver;
  std::unique_ptr<MirrorSink> Mirror; ///< before Cnf: CnfBuilder's ctor emits
  encode::CnfBuilder Cnf;
  std::vector<std::unique_ptr<ProblemEncoding>> Encodings;
  double SolveSecs = 0;
  int64_t PhaseBudget = -1; ///< per-phase allowance from the last encode()
};

} // namespace checker
} // namespace checkfence

#endif // CHECKFENCE_CHECKER_SOLVECONTEXT_H
