//===--- SpecMiner.h - specification mining ---------------------*- C++ -*-==//
//
// Part of the CheckFence reproduction (PLDI'07).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Enumerates the observation set of the serial executions (Sec. 3.2,
/// "specification mining") by iterated incremental SAT solving with
/// blocking clauses. An observation with the error flag set means the
/// implementation is broken even sequentially (e.g. the lazy-list missing
/// initialization, Sec. 4.1) and is reported instead of mined around.
///
//===----------------------------------------------------------------------===//

#ifndef CHECKFENCE_CHECKER_SPECMINER_H
#define CHECKFENCE_CHECKER_SPECMINER_H

#include "checker/SolveContext.h"

#include <optional>

namespace checkfence {
namespace checker {

struct MiningOutcome {
  bool Ok = false;
  std::string Error;
  ObservationSet Spec;
  int Iterations = 0;
  /// The implementation misbehaves on a *serial* execution.
  bool SequentialBug = false;
  std::optional<Trace> BugTrace;
};

/// Mines the observation set on \p Prob (which must have been built with
/// the Serial model). \p MaxObservations caps runaway enumerations.
MiningOutcome mineSpecification(EncodedProblem &Prob,
                                size_t MaxObservations = 1 << 20);

/// Incremental variant: mines on \p Enc inside \p Ctx, solving under
/// \p Assumptions (normally Enc.withinBoundsAssumptions()). The blocking
/// clauses are gated by a fresh activation literal, so the context's
/// solver stays usable for other phases (e.g. the bound probe) afterwards.
MiningOutcome mineSpecification(SolveContext &Ctx, ProblemEncoding &Enc,
                                const std::vector<sat::Lit> &Assumptions,
                                size_t MaxObservations = 1 << 20);

} // namespace checker
} // namespace checkfence

#endif // CHECKFENCE_CHECKER_SPECMINER_H
