//===--- SpecMiner.cpp - specification mining --------------------------------===//

#include "checker/SpecMiner.h"

using namespace checkfence;
using namespace checkfence::checker;

MiningOutcome checkfence::checker::mineSpecification(EncodedProblem &Prob,
                                                     size_t MaxObservations) {
  MiningOutcome Out;
  if (!Prob.ok()) {
    Out.Error = Prob.error();
    return Out;
  }

  for (;;) {
    sat::SolveResult R = Prob.solve();
    if (R == sat::SolveResult::Unknown) {
      Out.Error = "solver budget exhausted during specification mining";
      return Out;
    }
    if (R == sat::SolveResult::Unsat)
      break;

    ++Out.Iterations;
    Observation O = Prob.decodeObservation();
    if (O.Error) {
      // A serial execution misbehaves: report the sequential bug.
      Out.SequentialBug = true;
      Out.BugTrace = Prob.decodeTrace();
      Out.Ok = true;
      return Out;
    }
    Out.Spec.insert(O);
    if (Out.Spec.size() > MaxObservations) {
      Out.Error = "observation set exceeds the configured limit";
      return Out;
    }
    if (!Prob.addMismatch(O))
      break; // blocking clause made the formula unsat: enumeration done
  }

  Out.Ok = true;
  return Out;
}

MiningOutcome checkfence::checker::mineSpecification(
    SolveContext &Ctx, ProblemEncoding &Enc,
    const std::vector<sat::Lit> &Assumptions, size_t MaxObservations) {
  MiningOutcome Out;
  if (!Enc.ok()) {
    Out.Error = Enc.error();
    return Out;
  }

  Ctx.beginPhase();
  // All blocking clauses of this enumeration share one activation literal;
  // once mining is over the literal is never assumed again and the blocked
  // region is released (the probe must be able to revisit any observation).
  sat::Lit Act = Ctx.newActivation();
  std::vector<sat::Lit> SolveAssumptions = Assumptions;
  SolveAssumptions.push_back(Act);

  for (;;) {
    sat::SolveResult R = Ctx.solveUnder(SolveAssumptions);
    if (R == sat::SolveResult::Unknown) {
      Out.Error = "solver budget exhausted during specification mining";
      return Out;
    }
    if (R == sat::SolveResult::Unsat)
      break;

    ++Out.Iterations;
    Observation O = Enc.decodeObservation(Ctx.solver());
    if (O.Error) {
      // A serial execution misbehaves: report the sequential bug.
      Out.SequentialBug = true;
      Out.BugTrace = Enc.decodeTrace(Ctx.solver());
      Out.Ok = true;
      return Out;
    }
    Out.Spec.insert(O);
    if (Out.Spec.size() > MaxObservations) {
      Out.Error = "observation set exceeds the configured limit";
      return Out;
    }
    if (!Enc.addMismatch(O, Act))
      break; // blocking clause made the formula unsat: enumeration done
  }

  Out.Ok = true;
  return Out;
}
