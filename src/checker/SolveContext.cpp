//===--- SolveContext.cpp - persistent incremental solving -------------------===//
//
// Part of the CheckFence reproduction (PLDI'07).
//
//===----------------------------------------------------------------------===//

#include "checker/SolveContext.h"

#include "support/Timing.h"

using namespace checkfence;
using namespace checkfence::checker;

ProblemEncoding &
SolveContext::encode(const lsl::Program &Prog,
                     const std::vector<std::string> &ThreadProcs,
                     const trans::LoopBounds &Bounds,
                     const ProblemConfig &Cfg) {
  Encodings.push_back(std::make_unique<ProblemEncoding>(
      Cnf, Prog, ThreadProcs, Bounds, Cfg));
  // The solver's budget counts lifetime conflicts; remember the per-phase
  // allowance and arm it (phases re-arm again via beginPhase()).
  PhaseBudget = Cfg.ConflictBudget;
  beginPhase();
  EncodeStats &Stats = Encodings.back()->stats();
  // Cumulative solver size: these grow monotonically across encodings,
  // which is exactly the property the session tests assert.
  Stats.SatVars = Solver.numVars();
  Stats.SatClauses = Solver.numClauses();
  Stats.SolverMemBytes = Solver.memoryBytes();
  return *Encodings.back();
}

sat::SolveResult
SolveContext::solveUnder(const std::vector<sat::Lit> &Assumptions) {
  Timer T;
  sat::SolveResult R = Solver.solve(Assumptions);
  double Secs = T.seconds();
  SolveSecs += Secs;
  if (!Encodings.empty()) {
    EncodeStats &Stats = Encodings.back()->stats();
    Stats.SolveSeconds += Secs;
    Stats.SolveCalls += 1;
    Stats.LearntClauses = Solver.numLearnts();
    Stats.SolverMemBytes =
        std::max(Stats.SolverMemBytes, Solver.memoryBytes());
  }
  return R;
}
