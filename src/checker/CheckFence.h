//===--- CheckFence.h - top-level checking driver ---------------*- C++ -*-==//
//
// Part of the CheckFence reproduction (PLDI'07).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The full CheckFence pipeline (Fig. 1/3): given an LSL program containing
/// the implementation and test-thread procedures, it
///
///   1. mines the specification (observation set) under the Serial model,
///   2. checks inclusion of all executions under the target memory model,
///   3. probes for executions exceeding the current loop bounds and grows
///      exactly the exceeded loop instances (lazy unrolling, Sec. 3.3),
///
/// iterating until the bounds are sufficient, a counterexample is found,
/// or a sequential bug is detected during mining.
///
/// Specifications can optionally be mined from a separate (simpler)
/// reference implementation - the "refset" mode of Fig. 11a.
///
//===----------------------------------------------------------------------===//

#ifndef CHECKFENCE_CHECKER_CHECKFENCE_H
#define CHECKFENCE_CHECKER_CHECKFENCE_H

#include "checker/Encoder.h"
#include "checker/InclusionChecker.h"
#include "checker/SpecMiner.h"
#include "support/WorkerBudget.h"

#include <functional>
#include <optional>

namespace checkfence {
namespace checker {

/// Optional instrumentation and cooperative-cancellation hooks threaded
/// through the mine/include/probe loop. Every member may be empty. The
/// hooks fire between solver calls (never inside one), so cancellation is
/// cooperative: a run stops at the next phase boundary with
/// CheckStatus::Cancelled instead of aborting mid-round. Callbacks must be
/// thread-safe when the same options drive parallel matrix cells.
struct CheckHooks {
  /// Polled at phase boundaries; return true to stop the run.
  std::function<bool()> Cancelled;
  /// A mine/include/probe round started (1-based).
  std::function<void(int Round)> OnRoundStarted;
  /// Specification mining completed with this many observations.
  std::function<void(int Count)> OnObservationsMined;
  /// Lazy unrolling grew the bound of one loop instance.
  std::function<void(const std::string &Loop, int NewBound)> OnBoundGrown;
};

struct CheckOptions {
  memmodel::ModelParams Model = memmodel::ModelParams::relaxed();
  encode::OrderMode Order = encode::OrderMode::Pairwise;
  bool RangeAnalysis = true;
  /// Outer mine/include/probe rounds (bounds stabilize in round one via
  /// the inner probe loop, so two rounds usually suffice).
  int MaxBoundIterations = 8;
  /// Cap on individual bound-growing probes across the whole run.
  int MaxProbes = 64;
  int64_t ConflictBudget = -1;
  size_t MaxObservations = 1 << 20;
  /// Starting per-loop bounds (e.g. the FinalBounds of a previous run, to
  /// skip the lazy-unrolling phase as the paper's Fig. 10 timings do).
  trans::LoopBounds InitialBounds;
  /// Streaming/cancellation hooks. Not part of a run's identity: caches
  /// and session pools must ignore this field when fingerprinting options.
  CheckHooks Hooks;
  /// Intra-check solver portfolio width: 1 runs strictly serial; N > 1
  /// races up to N diversified solvers (with learnt-clause sharing and
  /// first-winner cancellation) on each hard inclusion/probe query; 0
  /// means "auto" - one racer per worker the shared budget can spare.
  /// Verdicts, mined observation sets, and timing-free JSON are identical
  /// at any width, so this field - like Hooks - is NOT part of a run's
  /// identity and must be ignored by fingerprints. Forced to 1 when
  /// ConflictBudget >= 0 (budget-exhaustion verdicts must not depend on
  /// racing luck).
  int PortfolioWidth = 1;
  /// Discharge inclusion checks with the polynomial reads-from oracle
  /// where it applies (readsFromEligible() target models whose flattened
  /// problem fits the oracle's fragment): when every reachable
  /// observation is non-erroneous and inside the mined specification,
  /// the SAT inclusion query is Unsat by construction and is skipped.
  /// Any other oracle outcome falls through to the SAT path unchanged,
  /// so verdicts, mined observation sets, and timing-free JSON are
  /// identical either way - like PortfolioWidth, this field is NOT part
  /// of a run's identity and must be ignored by fingerprints. The fresh
  /// reference pipeline ignores it (it stays a pure-SAT differential
  /// baseline).
  bool OraclePrune = true;
  /// Discharge inclusion checks with the static critical-cycle robustness
  /// analysis (analysis/CriticalCycles.h) on the lattice points the
  /// reads-from oracle does not serve: when the flattened program is
  /// provably robust under the target model, the weak-model verdict is
  /// inherited from sc and the SAT loop is skipped. Verdicts, mined
  /// observation sets, and timing-free JSON are identical either way -
  /// like OraclePrune, this field is NOT part of a run's identity and
  /// must be ignored by fingerprints. The fresh reference pipeline
  /// ignores it.
  bool AnalysisPrune = true;
  /// Worker slots shared with the matrix runner and fence synthesis; the
  /// portfolio borrows helper threads from here and runs serially when
  /// none are available. Per-request state like Hooks: never owned, never
  /// fingerprinted. May be null (no extra workers).
  support::WorkerBudget *Budget = nullptr;
};

enum class CheckStatus {
  Pass,            ///< all executions within spec, bounds sufficient
  Fail,            ///< counterexample found
  SequentialBug,   ///< a *serial* execution already misbehaves
  BoundsExhausted, ///< lazy unrolling hit MaxBoundIterations
  Error,           ///< frontend/encoder/solver problem (see Message)
  Cancelled,       ///< stopped by CheckHooks::Cancelled (token/deadline)
};

const char *checkStatusName(CheckStatus S);

/// Aggregate statistics across the whole run (Fig. 10/11 columns).
struct CheckStats {
  /// Inclusion problem (final iteration). Embeds EncodeStats directly so
  /// new per-problem counters propagate here automatically.
  EncodeStats Inclusion;
  // Specification mining (totals across iterations).
  double MiningSeconds = 0;
  double MiningEncodeSeconds = 0;
  double MiningSolveSeconds = 0;
  int ObservationCount = 0;
  // Lazy unrolling.
  int BoundIterations = 0;
  double ProbeSeconds = 0;
  // Per-phase wall clock (encode covers the target-model encodings across
  // all bound iterations; include covers the inclusion phase end to end).
  double EncodeSeconds = 0;
  double IncludeSeconds = 0;
  // Portfolio counters, summed over every raced query of the run.
  uint64_t LearntsExported = 0;
  uint64_t LearntsImported = 0;
  int RacesRun = 0;
  int RacesWonByHelper = 0;
  // Reads-from oracle pruning (timed JSON only; timing-free JSON must
  // not depend on whether the oracle or the SAT solver answered).
  int OracleAttempts = 0;
  int OracleDischarges = 0;
  double OracleSeconds = 0;
  // Critical-cycle robustness pruning (timed JSON only, like the oracle
  // counters above).
  int AnalysisAttempts = 0;
  int AnalysisDischarges = 0;
  double AnalysisSeconds = 0;
  // Whole run.
  double TotalSeconds = 0;
};

struct CheckResult {
  CheckStatus Status = CheckStatus::Error;
  std::string Message;
  ObservationSet Spec;
  std::optional<Trace> Counterexample;
  CheckStats Stats;
  trans::LoopBounds FinalBounds;

  bool passed() const { return Status == CheckStatus::Pass; }
  bool failed() const {
    return Status == CheckStatus::Fail ||
           Status == CheckStatus::SequentialBug;
  }
};

/// Runs the full check. \p ThreadProcs lists the test thread procedures
/// (index 0 is the initialization thread). If \p SpecProg is non-null the
/// specification is mined from it instead of \p ImplProg (both programs
/// must define the same thread procedures and observation layout).
///
/// This is a thin wrapper over engine::CheckSession, the incremental
/// session engine that keeps one persistent solver per memory model across
/// the mine/include/probe phases and the bound iterations.
CheckResult runCheck(const lsl::Program &ImplProg,
                     const std::vector<std::string> &ThreadProcs,
                     const CheckOptions &Opts,
                     const lsl::Program *SpecProg = nullptr);

/// The non-incremental reference pipeline: a fresh EncodedProblem (with a
/// fresh solver) for every phase and every bound iteration, exactly as the
/// paper's original workflow re-ran zChaff per query. Kept for the
/// differential tests that pin the session engine's results to it, and as
/// the ProofLog-compatible path.
CheckResult runCheckFresh(const lsl::Program &ImplProg,
                          const std::vector<std::string> &ThreadProcs,
                          const CheckOptions &Opts,
                          const lsl::Program *SpecProg = nullptr);

} // namespace checker
} // namespace checkfence

#endif // CHECKFENCE_CHECKER_CHECKFENCE_H
