//===--- Trace.h - counterexample traces ------------------------*- C++ -*-==//
//
// Part of the CheckFence reproduction (PLDI'07).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A decoded execution: the observation, the executed memory accesses in
/// memory order (with addresses and values), and descriptions of any fired
/// error checks. Presented to the user when the inclusion check fails.
///
//===----------------------------------------------------------------------===//

#ifndef CHECKFENCE_CHECKER_TRACE_H
#define CHECKFENCE_CHECKER_TRACE_H

#include "checker/Observation.h"
#include "support/SourceLoc.h"

#include <string>
#include <vector>

namespace checkfence {
namespace checker {

struct TraceEntry {
  int Thread = 0;
  bool IsStore = false;
  lsl::Value Addr;
  lsl::Value Data;
  SourceLoc Loc;
  int OpInvId = -1;
  std::string OpName;
  /// Program-order position within the thread (FlatEvent::IndexInThread);
  /// comparing it with the position in Trace::MemoryOrder exposes the
  /// program-order/memory-order inversions of a relaxed execution.
  int PoIndex = 0;
  /// Call-site lines the access was inlined through, outermost first.
  std::vector<int> CallLines;
};

struct Trace {
  Observation Obs;
  std::vector<std::string> ObsLabels;
  std::vector<TraceEntry> MemoryOrder;
  std::vector<std::string> Errors;

  /// Multi-line human-readable rendering.
  std::string str() const;

  /// Columnar rendering: one column per thread, rows in memory order.
  /// Accesses that overtook a program-order-earlier access of their own
  /// thread (the relaxations a weak model permits) are marked with '^'.
  std::string columns() const;
};

} // namespace checker
} // namespace checkfence

#endif // CHECKFENCE_CHECKER_TRACE_H
