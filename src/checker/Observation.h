//===--- Observation.h - observation vectors and sets -----------*- C++ -*-==//
//
// Part of the CheckFence reproduction (PLDI'07).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An observation (Sec. 2.2) is the vector of argument and return values of
/// the operations in an execution, extended with an error flag (assertion
/// failure or undefined-value use). The observation set of the serial
/// executions is the mined specification; the inclusion check asks whether
/// every concurrent execution's observation is in that set.
///
//===----------------------------------------------------------------------===//

#ifndef CHECKFENCE_CHECKER_OBSERVATION_H
#define CHECKFENCE_CHECKER_OBSERVATION_H

#include "lsl/Value.h"

#include <set>
#include <string>
#include <vector>

namespace checkfence {
namespace checker {

struct Observation {
  bool Error = false;
  std::vector<lsl::Value> Values;

  bool operator<(const Observation &O) const {
    if (Error != O.Error)
      return Error < O.Error;
    if (Values.size() != O.Values.size())
      return Values.size() < O.Values.size();
    for (size_t I = 0; I < Values.size(); ++I)
      if (Values[I] != O.Values[I])
        return Values[I] < O.Values[I];
    return false;
  }
  bool operator==(const Observation &O) const {
    return !(*this < O) && !(O < *this);
  }

  /// "err=0 (A=1, X=0, ...)" using \p Labels where available.
  std::string str(const std::vector<std::string> &Labels = {}) const;
};

using ObservationSet = std::set<Observation>;

} // namespace checker
} // namespace checkfence

#endif // CHECKFENCE_CHECKER_OBSERVATION_H
