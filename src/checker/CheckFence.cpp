//===--- CheckFence.cpp - top-level checking driver --------------------------===//
//
// Part of the CheckFence reproduction (PLDI'07).
//
//===----------------------------------------------------------------------===//

#include "checker/CheckFence.h"

#include "engine/CheckSession.h"
#include "support/Timing.h"

using namespace checkfence;
using namespace checkfence::checker;

CheckResult checkfence::checker::runCheck(
    const lsl::Program &ImplProg, const std::vector<std::string> &ThreadProcs,
    const CheckOptions &Opts, const lsl::Program *SpecProg) {
  engine::CheckSession Session(Opts);
  return Session.check(ImplProg, ThreadProcs, SpecProg);
}

const char *checkfence::checker::checkStatusName(CheckStatus S) {
  switch (S) {
  case CheckStatus::Pass:
    return "PASS";
  case CheckStatus::Fail:
    return "FAIL";
  case CheckStatus::SequentialBug:
    return "SEQUENTIAL-BUG";
  case CheckStatus::BoundsExhausted:
    return "BOUNDS-EXHAUSTED";
  case CheckStatus::Error:
    return "ERROR";
  case CheckStatus::Cancelled:
    return "CANCELLED";
  }
  return "<bad-status>";
}

CheckResult checkfence::checker::runCheckFresh(
    const lsl::Program &ImplProg, const std::vector<std::string> &ThreadProcs,
    const CheckOptions &Opts, const lsl::Program *SpecProg) {
  Timer Total;
  CheckResult Result;
  trans::LoopBounds Bounds = Opts.InitialBounds; // implementation bounds
  trans::LoopBounds SpecBounds; // reference-program bounds (refset mode)
  int ProbesLeft = Opts.MaxProbes;

  const CheckHooks &Hooks = Opts.Hooks;
  auto CancelRequested = [&] {
    return Hooks.Cancelled && Hooks.Cancelled();
  };
  auto Cancel = [&] {
    Result.Status = CheckStatus::Cancelled;
    Result.Message = "check cancelled";
    Result.Stats.TotalSeconds = Total.seconds();
    return Result;
  };

  for (int Iter = 0; Iter < Opts.MaxBoundIterations; ++Iter) {
    Result.Stats.BoundIterations = Iter + 1;
    if (CancelRequested())
      return Cancel();
    if (Hooks.OnRoundStarted)
      Hooks.OnRoundStarted(Iter + 1);

    // Phase 1: specification mining under the Serial model.
    ProblemConfig MineCfg;
    MineCfg.Model = memmodel::ModelParams::serial();
    MineCfg.Order = Opts.Order;
    MineCfg.RangeAnalysis = Opts.RangeAnalysis;
    MineCfg.ConflictBudget = Opts.ConflictBudget;
    const lsl::Program &MineProg = SpecProg ? *SpecProg : ImplProg;
    trans::LoopBounds &MineBounds = SpecProg ? SpecBounds : Bounds;
    {
      Timer MineTimer;
      EncodedProblem MineProb(MineProg, ThreadProcs, MineBounds, MineCfg);
      MiningOutcome Mined =
          mineSpecification(MineProb, Opts.MaxObservations);
      Result.Stats.MiningSeconds += MineTimer.seconds();
      Result.Stats.MiningEncodeSeconds += MineProb.stats().EncodeSeconds;
      Result.Stats.MiningSolveSeconds += MineProb.stats().SolveSeconds;
      if (!Mined.Ok) {
        Result.Status = CheckStatus::Error;
        Result.Message = Mined.Error;
        return Result;
      }
      if (Mined.SequentialBug) {
        Result.Status = CheckStatus::SequentialBug;
        Result.Message =
            "a serial execution raises an error (see counterexample)";
        Result.Counterexample = Mined.BugTrace;
        Result.Stats.TotalSeconds = Total.seconds();
        return Result;
      }
      Result.Spec = std::move(Mined.Spec);
      Result.Stats.ObservationCount =
          static_cast<int>(Result.Spec.size());
      if (Hooks.OnObservationsMined)
        Hooks.OnObservationsMined(Result.Stats.ObservationCount);
    }
    if (CancelRequested())
      return Cancel();

    // Phase 2: inclusion check under the target model.
    ProblemConfig IncCfg;
    IncCfg.Model = Opts.Model;
    IncCfg.Order = Opts.Order;
    IncCfg.RangeAnalysis = Opts.RangeAnalysis;
    IncCfg.ConflictBudget = Opts.ConflictBudget;
    {
      EncodedProblem IncProb(ImplProg, ThreadProcs, Bounds, IncCfg);
      InclusionOutcome Inc = checkInclusion(IncProb, Result.Spec);
      Result.Stats.Inclusion = IncProb.stats();
      if (!Inc.Ok) {
        Result.Status = CheckStatus::Error;
        Result.Message = Inc.Error;
        return Result;
      }
      if (!Inc.Pass) {
        // Counterexamples hold regardless of bounds (Sec. 3.3).
        Result.Status = CheckStatus::Fail;
        Result.Message = "inclusion check found a counterexample";
        Result.Counterexample = Inc.Counterexample;
        Result.FinalBounds = Bounds;
        Result.Stats.TotalSeconds = Total.seconds();
        return Result;
      }
    }

    // Phase 3: probe for executions that exceed the current loop bounds,
    // growing exactly the exceeded loop instances until none remain (or
    // the probe budget runs out). Mining and inclusion then re-run once
    // over the stabilized bounds.
    ProblemConfig ProbeCfg;
    ProbeCfg.Model = Opts.Model;
    ProbeCfg.Order = Opts.Order;
    ProbeCfg.RangeAnalysis = Opts.RangeAnalysis;
    ProbeCfg.ProbeBounds = true;
    ProbeCfg.ConflictBudget = Opts.ConflictBudget;
    bool Grown = false;
    while (ProbesLeft-- > 0) {
      if (CancelRequested())
        return Cancel();
      Timer ProbeTimer;
      EncodedProblem Probe(ImplProg, ThreadProcs, Bounds, ProbeCfg);
      if (!Probe.ok()) {
        Result.Status = CheckStatus::Error;
        Result.Message = Probe.error();
        return Result;
      }
      sat::SolveResult R = Probe.solve();
      Result.Stats.ProbeSeconds += ProbeTimer.seconds();
      if (R == sat::SolveResult::Unknown) {
        Result.Status = CheckStatus::Error;
        Result.Message = "solver budget exhausted during bound probe";
        return Result;
      }
      if (R == sat::SolveResult::Unsat)
        break;
      bool GrewThisProbe = false;
      for (const std::string &Key : Probe.exceededLoops()) {
        int &B = Bounds[Key];
        B = (B == 0 ? 1 : B) + 1;
        GrewThisProbe = true;
        if (Hooks.OnBoundGrown)
          Hooks.OnBoundGrown(Key, B);
      }
      if (!GrewThisProbe) {
        Result.Status = CheckStatus::Error;
        Result.Message = "bound probe satisfiable but no mark decoded";
        return Result;
      }
      Grown = true;
    }
    if (ProbesLeft < 0) {
      Result.Status = CheckStatus::BoundsExhausted;
      Result.Message = "loop bounds kept growing past the probe limit";
      Result.FinalBounds = Bounds;
      Result.Stats.TotalSeconds = Total.seconds();
      return Result;
    }

    // Probe the reference program separately when mining from it.
    if (!Grown && SpecProg) {
      ProblemConfig SpecProbeCfg = ProbeCfg;
      SpecProbeCfg.Model = memmodel::ModelParams::serial();
      EncodedProblem Probe(*SpecProg, ThreadProcs, SpecBounds,
                           SpecProbeCfg);
      if (Probe.ok() && Probe.solve() == sat::SolveResult::Sat) {
        for (const std::string &Key : Probe.exceededLoops()) {
          int &B = SpecBounds[Key];
          B = (B == 0 ? 1 : B) + 1;
          Grown = true;
        }
      }
    }

    if (!Grown) {
      Result.Status = CheckStatus::Pass;
      Result.Message = "all executions are observationally serial";
      Result.FinalBounds = Bounds;
      Result.Stats.TotalSeconds = Total.seconds();
      return Result;
    }
  }

  Result.Status = CheckStatus::BoundsExhausted;
  Result.Message = "loop bounds kept growing past the iteration limit";
  Result.FinalBounds = Bounds;
  Result.Stats.TotalSeconds = Total.seconds();
  return Result;
}
