//===--- InclusionChecker.cpp - the inclusion check --------------------------===//

#include "checker/InclusionChecker.h"

using namespace checkfence;
using namespace checkfence::checker;

InclusionOutcome
checkfence::checker::checkInclusion(EncodedProblem &Prob,
                                    const ObservationSet &Spec) {
  InclusionOutcome Out;
  if (!Prob.ok()) {
    Out.Error = Prob.error();
    return Out;
  }

  bool Consistent = true;
  for (const Observation &O : Spec)
    Consistent = Prob.addMismatch(O) && Consistent;
  if (!Consistent) {
    // The constraints alone are unsatisfiable: no execution escapes the
    // specification.
    Out.Ok = true;
    Out.Pass = true;
    return Out;
  }

  sat::SolveResult R = Prob.solve();
  switch (R) {
  case sat::SolveResult::Unknown:
    Out.Error = "solver budget exhausted during inclusion check";
    return Out;
  case sat::SolveResult::Unsat:
    Out.Ok = true;
    Out.Pass = true;
    return Out;
  case sat::SolveResult::Sat:
    Out.Ok = true;
    Out.Pass = false;
    Out.Counterexample = Prob.decodeTrace();
    return Out;
  }
  return Out;
}

PreparedInclusion checkfence::checker::prepareInclusion(
    SolveContext &Ctx, ProblemEncoding &Enc, const ObservationSet &Spec,
    const std::vector<sat::Lit> &Assumptions) {
  PreparedInclusion P;
  if (!Enc.ok()) {
    P.Error = Enc.error();
    return P;
  }

  Ctx.beginPhase();
  // One activation literal covers the whole specification; assumed only
  // for this check, so the probe afterwards sees the unconstrained
  // observation space again.
  sat::Lit Act = Ctx.newActivation();
  bool Consistent = true;
  for (const Observation &O : Spec)
    Consistent = Enc.addMismatch(O, Act) && Consistent;
  P.Ok = true;
  if (!Consistent) {
    // The constraints alone are unsatisfiable: no execution escapes the
    // specification.
    P.Trivial = true;
    return P;
  }
  P.Assumptions = Assumptions;
  P.Assumptions.push_back(Act);
  return P;
}

InclusionOutcome checkfence::checker::checkInclusion(
    SolveContext &Ctx, ProblemEncoding &Enc, const ObservationSet &Spec,
    const std::vector<sat::Lit> &Assumptions) {
  InclusionOutcome Out;
  PreparedInclusion P = prepareInclusion(Ctx, Enc, Spec, Assumptions);
  if (!P.Ok) {
    Out.Error = P.Error;
    return Out;
  }
  if (P.Trivial) {
    Out.Ok = true;
    Out.Pass = true;
    return Out;
  }

  sat::SolveResult R = Ctx.solveUnder(P.Assumptions);
  switch (R) {
  case sat::SolveResult::Unknown:
    Out.Error = "solver budget exhausted during inclusion check";
    return Out;
  case sat::SolveResult::Unsat:
    Out.Ok = true;
    Out.Pass = true;
    return Out;
  case sat::SolveResult::Sat:
    Out.Ok = true;
    Out.Pass = false;
    Out.Counterexample = Enc.decodeTrace(Ctx.solver());
    return Out;
  }
  return Out;
}
