//===--- StoreBufferExecutor.h - operational TSO/PSO oracle -----*- C++ -*-==//
//
// Part of the CheckFence reproduction (PLDI'07).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An *operational* (machine-style) semantics for the TSO and PSO models,
/// in the x86-TSO tradition: threads execute their instructions in
/// program order; stores enter a per-thread store buffer and drain to the
/// single-copy memory at nondeterministic times; loads read the newest
/// same-address buffer entry (forwarding) or memory.
///
///  * TSO: the buffer drains strictly in FIFO order.
///  * PSO: any entry with no older same-address entry and no older
///    store-store barrier may drain (per-address FIFO).
///  * store-store fences insert a barrier token into the buffer (a no-op
///    on TSO, whose FIFO already orders stores).
///  * store-load fences block the thread's subsequent *loads* until every
///    buffer entry present at the fence has drained; later stores are not
///    additionally ordered, matching the axiomatic fence which adds only
///    store-to-load edges.
///  * load-load and load-store fences are no-ops: this machine issues
///    loads in program order.
///
/// The executor enumerates all interleavings of instruction and drain
/// steps and collects the observations. It exists purely as a third,
/// independently-styled semantics to differentially test the *axiomatic*
/// TSO/PSO encodings against (tests/AxiomaticOracleTests) - the
/// equivalence of buffer machines and their axiomatic counterparts is the
/// classic x86-TSO correspondence.
///
/// Restrictions: atomic blocks are not supported (their interaction with
/// buffering is model-dependent; litmus programs do not need them).
///
//======---------------------------------------------------------------------===//

#ifndef CHECKFENCE_MEMMODEL_STOREBUFFEREXECUTOR_H
#define CHECKFENCE_MEMMODEL_STOREBUFFEREXECUTOR_H

#include "memmodel/MemoryModel.h"
#include "memmodel/ReferenceExecutor.h"

#include <set>
#include <string>

namespace checkfence {
namespace memmodel {

struct StoreBufferOptions {
  /// Must be ModelParams::tso() or ModelParams::pso() - the two lattice
  /// points this buffer machine realizes.
  ModelParams Model = ModelParams::tso();
  uint64_t MaxSteps = 50'000'000;
};

struct StoreBufferResult {
  bool Ok = false;
  std::string Error; ///< unsupported feature or budget exhaustion
  std::set<RefObservation> Observations;
};

/// Enumerates all executions of \p P on the buffer machine and returns
/// their observations.
StoreBufferResult enumerateStoreBuffer(const trans::FlatProgram &P,
                                       const StoreBufferOptions &Opts);

} // namespace memmodel
} // namespace checkfence

#endif // CHECKFENCE_MEMMODEL_STOREBUFFEREXECUTOR_H
