//===--- MemoryModel.h - axiomatic memory models ----------------*- C++ -*-==//
//
// Part of the CheckFence reproduction (PLDI'07).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The memory models of Sec. 2.3, in axiomatic form over the memory
/// order <M and the visibility set S(l):
///
///  * \b SeqConsistency: program order embeds into <M; S(l) = stores to the
///    same address ordered before l.
///  * \b Relaxed: only same-address program-order edges ending in a store
///    embed into <M (plus fences and atomic blocks); S(l) additionally
///    contains the thread's own program-order-earlier stores (store
///    forwarding from the local store queue).
///  * \b Serial: sequential consistency at operation granularity - the
///    seriality condition used to mine specifications.
///
/// plus the two intermediate SPARC models the paper names when observing
/// that its fence placements are "automatic" on some architectures
/// (Sec. 4.2): between SC and Relaxed, each model is characterized by the
/// subset of program-order edge kinds (load-load, load-store, store-load,
/// store-store) that embed into <M unconditionally:
///
///  * \b TSO: all but store-load (a FIFO store buffer with forwarding);
///    the paper's load-load and store-store fences are no-ops here, so
///    the unfenced algorithms must verify - a claim we test directly.
///  * \b PSO: load-load and load-store only; store-store order must be
///    restored with explicit fences (same-address stores stay ordered,
///    which is Relaxed axiom 1).
///
/// Shared axioms (2) and (3): a load with empty S(l) returns the initial
/// value (undefined here: memory contents before initialization), otherwise
/// the value of the <M-maximal store in S(l). These are encoded with the
/// Init_l and Flows_{s,l} auxiliary variables of Sec. 3.2.1.
///
//===----------------------------------------------------------------------===//

#ifndef CHECKFENCE_MEMMODEL_MEMORYMODEL_H
#define CHECKFENCE_MEMMODEL_MEMORYMODEL_H

#include "encode/OrderEncoding.h"
#include "encode/ValueEncoding.h"

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace checkfence {
namespace memmodel {

enum class ModelKind {
  SeqConsistency,
  TSO,
  PSO,
  Relaxed,
  Serial,
};

const char *modelName(ModelKind K);

/// Parses "sc" / "tso" / "pso" / "relaxed" / "serial" (as printed by
/// modelName); returns std::nullopt for anything else.
std::optional<ModelKind> modelKindFromName(const std::string &Name);

/// All models, strongest first (every Serial execution is SC, every SC
/// execution is TSO, and so on down to Relaxed).
const std::vector<ModelKind> &allModels();

/// Structural properties that define each model.
struct ModelTraits {
  bool StoreForwarding = false; ///< S(l) includes own earlier stores
  bool SerialOps = false;       ///< invocation-granularity order
  // Program-order edge kinds that embed into <M unconditionally. The
  // first letter is the kind of the earlier access, the second the later.
  bool OrderLoadLoad = false;
  bool OrderLoadStore = false;
  bool OrderStoreLoad = false;
  bool OrderStoreStore = false;

  /// True when every program-order edge embeds into <M (SC and Serial);
  /// fences are no-ops and consecutive-edge closure suffices.
  bool fullProgramOrder() const {
    return OrderLoadLoad && OrderLoadStore && OrderStoreLoad &&
           OrderStoreStore;
  }
  /// The edge flag for an (earlier, later) access-kind pair.
  bool ordersEdge(bool EarlierIsLoad, bool LaterIsLoad) const {
    if (EarlierIsLoad)
      return LaterIsLoad ? OrderLoadLoad : OrderLoadStore;
    return LaterIsLoad ? OrderStoreLoad : OrderStoreStore;
  }
};

ModelTraits traitsOf(ModelKind K);

/// Emits the memory-model formula Theta for a FlatProgram into the CNF
/// being built by a ValueEncoder.
class MemoryModelEncoder {
public:
  MemoryModelEncoder(encode::ValueEncoder &VE, const trans::FlatProgram &P,
                     const trans::RangeInfo &R, ModelKind K,
                     encode::OrderMode OM, const encode::EncodeOptions &EO);

  /// Encodes everything; returns false on unsupported input.
  bool encode();

  /// Execution literal of event \p EventIdx (truthiness of its guard).
  encode::Lit execLit(int EventIdx);

  /// Access index of a load/store event (-1 for fences).
  int accessOfEvent(int EventIdx) const { return EventAccess[EventIdx]; }
  /// Event index of access \p A.
  int eventOfAccess(int A) const { return AccessEvent[A]; }
  int numAccesses() const { return static_cast<int>(AccessEvent.size()); }

  const encode::MemoryOrder *order() const { return Order.get(); }

  /// After a Sat solve: event indices of executed accesses, sorted by the
  /// model's memory order (used for counterexample traces).
  std::vector<int> modelOrderedAccesses(const sat::Solver &S);

private:
  encode::Lit addrEqLit(int AccessA, int AccessB);
  bool cellsIntersect(int EventA, int EventB) const;
  void collectForcedPairs(std::vector<std::pair<int, int>> &Forced);
  void emitConditionalOrderAxioms();
  void emitFenceAxioms();
  void emitAtomicExclusivity();
  void emitValueAxioms();

  encode::ValueEncoder &VE;
  encode::CnfBuilder &Cnf;
  const trans::FlatProgram &P;
  const trans::RangeInfo &R;
  ModelKind Kind;
  ModelTraits Traits;
  encode::OrderMode OMode;
  encode::EncodeOptions EOpts;

  std::vector<int> EventAccess; // event -> access (-1 for fences)
  std::vector<int> AccessEvent; // access -> event
  std::unique_ptr<encode::MemoryOrder> Order;
  std::map<std::pair<int, int>, encode::Lit> AddrEqCache;
};

} // namespace memmodel
} // namespace checkfence

#endif // CHECKFENCE_MEMMODEL_MEMORYMODEL_H
