//===--- MemoryModel.h - parametric axiomatic memory models -----*- C++ -*-==//
//
// Part of the CheckFence reproduction (PLDI'07).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Memory models as *points in a relaxation lattice* rather than a closed
/// enum. A model is a ModelParams descriptor over the axiomatic framework
/// of Sec. 2.3 (memory order <M, visibility set S(l)):
///
///  * Four program-order edge bits (load-load, load-store, store-load,
///    store-store): which same-thread edge kinds embed into <M
///    unconditionally. All four set is sequential consistency; none set is
///    the paper's Relaxed base (only same-address edges ending in a store
///    embed, via axiom 1, plus fences and atomic blocks).
///  * StoreForwarding (read-own-write-early): S(l) additionally contains
///    the thread's own program-order-earlier stores, the local store-queue
///    bypass of the Relaxed/TSO/PSO models. A no-op whenever store-load
///    program order is preserved (the store is then <M-before the load
///    anyway).
///  * MultiCopyAtomic: stores become visible to all other threads at one
///    point in <M. Every model the SAT encoder supports is multi-copy
///    atomic (a single total <M *is* multi-copy atomicity); the bit exists
///    so non-MCA lattice points can be described, parsed, and compared -
///    the encoder rejects them with a clear error until per-thread view
///    orders are implemented.
///  * SerialOps: order at operation-invocation granularity - the seriality
///    condition of Sec. 2.3.2 used to mine specifications.
///
/// Named points of the lattice (the registry, strongest first):
///
///   serial   SerialOps                      specification mining
///   sc       po:all                         Sec. 2.3.1
///   tso      po:ll+ls+ss, fwd               FIFO store buffer (Sec. 4.2)
///   pso      po:ll+ls, fwd                  per-address store buffers
///   rmo      po:ll, fwd                     RMO-like intermediate point
///   relaxed  po:none, fwd                   the paper's Relaxed (Sec. 2.3.2)
///
/// Arbitrary points are written in the descriptor grammar parsed by
/// modelFromName(): `po:<ll|ls|sl|ss joined by +|all|none>[,fwd][,nomca]
/// [,serial]`, e.g. "po:ll+ls,fwd" (which modelName() prints back as
/// "pso"). See docs/MODELS.md for the full table and grammar.
///
/// Shared value axioms (2) and (3): a load with empty S(l) returns the
/// initial value (undefined here: memory contents before initialization),
/// otherwise the value of the <M-maximal store in S(l). These are encoded
/// with the Init_l and Flows_{s,l} auxiliary variables of Sec. 3.2.1.
///
//===----------------------------------------------------------------------===//

#ifndef CHECKFENCE_MEMMODEL_MEMORYMODEL_H
#define CHECKFENCE_MEMMODEL_MEMORYMODEL_H

#include "encode/OrderEncoding.h"
#include "encode/ValueEncoding.h"

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace checkfence {
namespace memmodel {

/// A memory model as a point in the relaxation lattice.
struct ModelParams {
  // Program-order edge kinds that embed into <M unconditionally. The
  // first letter is the kind of the earlier access, the second the later.
  bool OrderLoadLoad = false;
  bool OrderLoadStore = false;
  bool OrderStoreLoad = false;
  bool OrderStoreStore = false;
  /// S(l) includes the thread's own program-order-earlier stores.
  bool StoreForwarding = false;
  /// Stores become visible to all threads at a single point in <M.
  /// Non-MCA points are descriptor-only: parse/print/compare work, the
  /// SAT encoder rejects them (a total <M is inherently multi-copy).
  bool MultiCopyAtomic = true;
  /// Invocation-granularity order (the Serial model).
  bool SerialOps = false;

  /// True when every program-order edge embeds into <M (SC and Serial);
  /// fences are no-ops and consecutive-edge closure suffices.
  bool fullProgramOrder() const {
    return OrderLoadLoad && OrderLoadStore && OrderStoreLoad &&
           OrderStoreStore;
  }
  /// The edge flag for an (earlier, later) access-kind pair.
  bool ordersEdge(bool EarlierIsLoad, bool LaterIsLoad) const {
    if (EarlierIsLoad)
      return LaterIsLoad ? OrderLoadLoad : OrderLoadStore;
    return LaterIsLoad ? OrderStoreLoad : OrderStoreStore;
  }
  /// Forwarding with its no-op cases normalized away: when store-load
  /// program order is preserved (or operations are serial), every own
  /// earlier store is <M-before the load already, so the bypass changes
  /// nothing.
  bool effectiveForwarding() const {
    return StoreForwarding && !OrderStoreLoad && !SerialOps;
  }

  /// Canonical descriptor string ("po:ll+ls,fwd"); parseable by
  /// modelFromName. Registry names are *not* substituted - use modelName
  /// for display.
  std::string str() const;

  friend bool operator==(const ModelParams &A, const ModelParams &B) {
    return A.OrderLoadLoad == B.OrderLoadLoad &&
           A.OrderLoadStore == B.OrderLoadStore &&
           A.OrderStoreLoad == B.OrderStoreLoad &&
           A.OrderStoreStore == B.OrderStoreStore &&
           A.StoreForwarding == B.StoreForwarding &&
           A.MultiCopyAtomic == B.MultiCopyAtomic &&
           A.SerialOps == B.SerialOps;
  }
  friend bool operator!=(const ModelParams &A, const ModelParams &B) {
    return !(A == B);
  }

  // The named lattice points.
  /// Operation-granularity sequential order (specification mining).
  static constexpr ModelParams serial() {
    ModelParams P = sc();
    P.SerialOps = true;
    return P;
  }
  /// Sequential consistency: full program order.
  static constexpr ModelParams sc() {
    ModelParams P;
    P.OrderLoadLoad = P.OrderLoadStore = true;
    P.OrderStoreLoad = P.OrderStoreStore = true;
    return P;
  }
  /// A FIFO store buffer: stores may be delayed past later loads, and
  /// loads may read their own buffered stores.
  static constexpr ModelParams tso() {
    ModelParams P;
    P.OrderLoadLoad = P.OrderLoadStore = P.OrderStoreStore = true;
    P.StoreForwarding = true;
    return P;
  }
  /// Per-address store buffers: additionally relaxes store-store order
  /// (same-address stores stay ordered via Relaxed axiom 1).
  static constexpr ModelParams pso() {
    ModelParams P;
    P.OrderLoadLoad = P.OrderLoadStore = true;
    P.StoreForwarding = true;
    return P;
  }
  /// RMO-like: the lattice point between PSO and Relaxed that additionally
  /// relaxes load-store order while keeping load-load order. Named for its
  /// position in the SPARC family sweep, not for exact RMO semantics
  /// (dependency order is not modeled here).
  static constexpr ModelParams rmo() {
    ModelParams P;
    P.OrderLoadLoad = true;
    P.StoreForwarding = true;
    return P;
  }
  /// The paper's Relaxed model: no unconditional program order at all.
  static constexpr ModelParams relaxed() {
    ModelParams P;
    P.StoreForwarding = true;
    return P;
  }
};

/// True when the polynomial reads-from oracle (ReadsFromOracle.h) is the
/// preferred decision procedure for \p P: the multi-copy-atomic points
/// that keep load-load and load-store program order - sc, tso, pso, and
/// the po: descriptors they cover. On these points the oracle's
/// constraint saturation stays effectively branch-free (per-thread load
/// order plus same-address coherence decide the writer disjunctions), so
/// reads-from enumeration beats order enumeration by orders of magnitude.
/// Callers outside the set should stay on AxiomaticEnumerator.
constexpr bool readsFromEligible(const ModelParams &P) {
  return P.MultiCopyAtomic && !P.SerialOps && P.OrderLoadLoad &&
         P.OrderLoadStore;
}

/// A registry entry naming a lattice point.
struct NamedModel {
  std::string Name;
  ModelParams Params;
  std::string Note; ///< one-line description for --list / docs
  /// readsFromEligible(Params), recorded so front ends can surface the
  /// fast-oracle marker without re-deriving it.
  bool FastOracle = false;
};

/// The named models, strongest first: serial, sc, tso, pso, rmo, relaxed.
const std::vector<NamedModel> &namedModels();

/// Display name: the registry name when \p P matches a named point
/// exactly, otherwise the canonical descriptor string.
std::string modelName(const ModelParams &P);

/// Parses a registry name ("tso") or a descriptor string ("po:ll+ls,fwd",
/// see the file comment for the grammar); std::nullopt on syntax errors.
std::optional<ModelParams> modelFromName(const std::string &Name);

/// The classic four-model sweep (sc, tso, pso, relaxed), strongest first -
/// the default model axis of the paper's evaluation tables.
const std::vector<ModelParams> &allModels();

/// The lattice sweep: the named points plus the unnamed intermediate
/// points worth checking, strongest first. Used by `--models lattice` and
/// the weakest-passing-model search.
const std::vector<ModelParams> &latticeModels();

/// The lattice order: true when every execution allowed under \p A is
/// also allowed under \p B (A is at least as strong as B). Reflexive and
/// transitive; a partial order up to semantic equivalence (e.g. sc with
/// and without the forwarding bit compare equal both ways). A check that
/// passes under B is guaranteed to pass under A, and a counterexample
/// found under A also exists under B.
bool atLeastAsStrong(const ModelParams &A, const ModelParams &B);

/// Strict version: atLeastAsStrong(A, B) but not the converse.
bool strictlyStronger(const ModelParams &A, const ModelParams &B);

/// Emits the memory-model formula Theta for a FlatProgram into the CNF
/// being built by a ValueEncoder.
class MemoryModelEncoder {
public:
  MemoryModelEncoder(encode::ValueEncoder &VE, const trans::FlatProgram &P,
                     const trans::RangeInfo &R, const ModelParams &M,
                     encode::OrderMode OM, const encode::EncodeOptions &EO);

  /// Encodes everything; returns false on unsupported input (currently:
  /// non-multi-copy-atomic models).
  bool encode();

  /// Execution literal of event \p EventIdx (truthiness of its guard).
  encode::Lit execLit(int EventIdx);

  /// Access index of a load/store event (-1 for fences).
  int accessOfEvent(int EventIdx) const { return EventAccess[EventIdx]; }
  /// Event index of access \p A.
  int eventOfAccess(int A) const { return AccessEvent[A]; }
  int numAccesses() const { return static_cast<int>(AccessEvent.size()); }

  const encode::MemoryOrder *order() const { return Order.get(); }

  /// After a Sat solve: event indices of executed accesses, sorted by the
  /// model's memory order (used for counterexample traces).
  std::vector<int> modelOrderedAccesses(const sat::Solver &S);

private:
  encode::Lit addrEqLit(int AccessA, int AccessB);
  bool cellsIntersect(int EventA, int EventB) const;
  void collectForcedPairs(std::vector<std::pair<int, int>> &Forced);
  void emitConditionalOrderAxioms();
  void emitFenceAxioms();
  void emitAtomicExclusivity();
  void emitValueAxioms();

  encode::ValueEncoder &VE;
  encode::CnfBuilder &Cnf;
  const trans::FlatProgram &P;
  const trans::RangeInfo &R;
  ModelParams Params;
  encode::OrderMode OMode;
  encode::EncodeOptions EOpts;

  std::vector<int> EventAccess; // event -> access (-1 for fences)
  std::vector<int> AccessEvent; // access -> event
  std::unique_ptr<encode::MemoryOrder> Order;
  std::map<std::pair<int, int>, encode::Lit> AddrEqCache;
};

} // namespace memmodel
} // namespace checkfence

#endif // CHECKFENCE_MEMMODEL_MEMORYMODEL_H
