//===--- AxiomaticEnumerator.h - brute-force axiom oracle -------*- C++ -*-==//
//
// Part of the CheckFence reproduction (PLDI'07).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A second, independent implementation of the Sec. 2.3.2 memory-model
/// axioms: instead of encoding the memory order <M into SAT, this oracle
/// literally enumerates every total order of the executed accesses, filters
/// by the axioms of the chosen model (program-order embedding, fences,
/// atomic-block exclusivity, seriality), computes each load's value from
/// the <M-maximal element of its visibility set S(l) (with store
/// forwarding where the model allows it), and collects the observations.
///
/// It exists purely for differential testing: on litmus-sized programs the
/// observation set produced here must equal the one mined from the SAT
/// encoding, for every model. Unlike ReferenceExecutor (an operational
/// interleaving oracle, sequentially consistent by construction), this
/// enumerator covers the *relaxed* models too.
///
/// Supported input shape: straight-line unrolled programs whose guards and
/// addresses are known without executing loads (branch-free litmus tests;
/// nondeterministic Choice values are enumerated). Programs outside this
/// fragment are rejected with Ok = false rather than answered wrongly.
///
//===----------------------------------------------------------------------===//

#ifndef CHECKFENCE_MEMMODEL_AXIOMATICENUMERATOR_H
#define CHECKFENCE_MEMMODEL_AXIOMATICENUMERATOR_H

#include "memmodel/MemoryModel.h"
#include "memmodel/OracleSkip.h"
#include "memmodel/ReferenceExecutor.h"
#include "trans/FlatProgram.h"

#include <set>
#include <string>

namespace checkfence {
namespace memmodel {

struct AxiomaticOptions {
  ModelParams Model = ModelParams::sc();
  /// Abort guard: orders explored across all choice assignments.
  uint64_t MaxOrders = 50'000'000;
};

struct AxiomaticResult {
  bool Ok = false;
  /// Why the enumerator declined (None when Ok). The structured form of
  /// Error, for callers that account for skips by cause.
  OracleSkip Reason = OracleSkip::None;
  /// Non-empty when the program is outside the supported fragment (guard
  /// or address depends on a load, cyclic value dependency, budget);
  /// always oracleSkipMessage(Reason).
  std::string Error;
  std::set<RefObservation> Observations;
  /// Valid total orders found (statistics / sanity checking).
  uint64_t Orders = 0;
};

/// Enumerates all executions of \p P allowed by \p Opts.Model and returns
/// their observations. \p P must be within-bounds straight-line code (the
/// flattener output of a loop-free test).
AxiomaticResult enumerateAxiomatic(const trans::FlatProgram &P,
                                   const AxiomaticOptions &Opts);

} // namespace memmodel
} // namespace checkfence

#endif // CHECKFENCE_MEMMODEL_AXIOMATICENUMERATOR_H
