//===--- MemoryModel.cpp - parametric axiomatic memory models ---------------===//
//
// Part of the CheckFence reproduction (PLDI'07).
//
//===----------------------------------------------------------------------===//

#include "memmodel/MemoryModel.h"

#include <algorithm>
#include <cassert>
#include <cctype>
#include <sstream>

using namespace checkfence;
using namespace checkfence::memmodel;
using namespace checkfence::encode;
using namespace checkfence::trans;

//===----------------------------------------------------------------------===//
// Named lattice points
//===----------------------------------------------------------------------===//

const std::vector<NamedModel> &checkfence::memmodel::namedModels() {
  static const std::vector<NamedModel> Models = {
      {"serial", ModelParams::serial(),
       "operation-granularity sequential order (specification mining)",
       readsFromEligible(ModelParams::serial())},
      {"sc", ModelParams::sc(), "sequential consistency",
       readsFromEligible(ModelParams::sc())},
      {"tso", ModelParams::tso(), "total store order (FIFO store buffer)",
       readsFromEligible(ModelParams::tso())},
      {"pso", ModelParams::pso(),
       "partial store order (per-address store buffers)",
       readsFromEligible(ModelParams::pso())},
      {"rmo", ModelParams::rmo(),
       "RMO-like: only load-load order preserved",
       readsFromEligible(ModelParams::rmo())},
      {"relaxed", ModelParams::relaxed(),
       "the paper's Relaxed model (no program order beyond axiom 1)",
       readsFromEligible(ModelParams::relaxed())},
  };
  return Models;
}

std::string ModelParams::str() const {
  std::string Edges;
  auto Add = [&](bool Bit, const char *Name) {
    if (!Bit)
      return;
    if (!Edges.empty())
      Edges += '+';
    Edges += Name;
  };
  Add(OrderLoadLoad, "ll");
  Add(OrderLoadStore, "ls");
  Add(OrderStoreLoad, "sl");
  Add(OrderStoreStore, "ss");
  std::string Out = "po:";
  if (fullProgramOrder())
    Out += "all";
  else if (Edges.empty())
    Out += "none";
  else
    Out += Edges;
  if (StoreForwarding)
    Out += ",fwd";
  if (!MultiCopyAtomic)
    Out += ",nomca";
  if (SerialOps)
    Out += ",serial";
  return Out;
}

std::string checkfence::memmodel::modelName(const ModelParams &P) {
  for (const NamedModel &N : namedModels())
    if (N.Params == P)
      return N.Name;
  return P.str();
}

std::optional<ModelParams>
checkfence::memmodel::modelFromName(const std::string &Name) {
  std::string S;
  S.reserve(Name.size());
  for (char C : Name)
    S += static_cast<char>(std::tolower(static_cast<unsigned char>(C)));

  for (const NamedModel &N : namedModels())
    if (S == N.Name)
      return N.Params;

  // Descriptor grammar: po:<edges>[,fwd|,nofwd][,mca|,nomca][,serial]
  // where <edges> is "all", "none", or a '+'-joined subset of ll/ls/sl/ss.
  if (S.rfind("po:", 0) != 0)
    return std::nullopt;
  // getline never yields the empty clause after a trailing delimiter, so
  // reject "po:ll," style truncations up front.
  if (!S.empty() && S.back() == ',')
    return std::nullopt;
  ModelParams P;
  std::stringstream SS(S.substr(3));
  std::string Clause;
  bool First = true;
  while (std::getline(SS, Clause, ',')) {
    if (First) {
      First = false;
      if (Clause == "all") {
        P.OrderLoadLoad = P.OrderLoadStore = true;
        P.OrderStoreLoad = P.OrderStoreStore = true;
      } else if (Clause != "none") {
        // A '+'-joined edge list; reject empty or dangling tokens
        // ("po:", "po:ll+").
        if (Clause.empty() || Clause.front() == '+' ||
            Clause.back() == '+')
          return std::nullopt;
        std::stringstream ES(Clause);
        std::string Edge;
        while (std::getline(ES, Edge, '+')) {
          if (Edge == "ll")
            P.OrderLoadLoad = true;
          else if (Edge == "ls")
            P.OrderLoadStore = true;
          else if (Edge == "sl")
            P.OrderStoreLoad = true;
          else if (Edge == "ss")
            P.OrderStoreStore = true;
          else
            return std::nullopt;
        }
      }
    } else if (Clause == "fwd") {
      P.StoreForwarding = true;
    } else if (Clause == "nofwd") {
      P.StoreForwarding = false;
    } else if (Clause == "mca") {
      P.MultiCopyAtomic = true;
    } else if (Clause == "nomca") {
      P.MultiCopyAtomic = false;
    } else if (Clause == "serial") {
      P.SerialOps = true;
    } else {
      return std::nullopt;
    }
  }
  if (First)
    return std::nullopt; // bare "po:"
  return P;
}

const std::vector<ModelParams> &checkfence::memmodel::allModels() {
  static const std::vector<ModelParams> Models = {
      ModelParams::sc(), ModelParams::tso(), ModelParams::pso(),
      ModelParams::relaxed()};
  return Models;
}

const std::vector<ModelParams> &checkfence::memmodel::latticeModels() {
  static const std::vector<ModelParams> Models = [] {
    auto Pt = [](const char *S) {
      auto P = modelFromName(S);
      assert(P && "bad lattice point literal");
      return *P;
    };
    return std::vector<ModelParams>{
        ModelParams::serial(),
        ModelParams::sc(),
        Pt("po:ll+ls+sl,fwd"), // only store-store relaxed
        ModelParams::tso(),
        ModelParams::pso(),
        ModelParams::rmo(),
        Pt("po:ls,fwd"), // only load-store order preserved
        Pt("po:ss,fwd"), // only store-store order preserved
        ModelParams::relaxed(),
        Pt("po:none"), // relaxed without the store-queue bypass
    };
  }();
  return Models;
}

bool checkfence::memmodel::atLeastAsStrong(const ModelParams &A,
                                           const ModelParams &B) {
  // Serial *with full program order* (the registry's serial model) is
  // the global top: invocation-granularity total orders then embed all
  // of program order and need no forwarding, so every such execution is
  // an execution of every other model. Degenerate serial points with
  // partial program order (grammar-reachable as e.g. "po:none,serial")
  // order a thread's invocations freely, which full-order models forbid
  // - they are comparable only to themselves.
  if (A.SerialOps && A.fullProgramOrder())
    return true;
  if (A.SerialOps || B.SerialOps)
    return A == B;
  // B's forced program-order edges must be a subset of A's.
  if ((B.OrderLoadLoad && !A.OrderLoadLoad) ||
      (B.OrderLoadStore && !A.OrderLoadStore) ||
      (B.OrderStoreLoad && !A.OrderStoreLoad) ||
      (B.OrderStoreStore && !A.OrderStoreStore))
    return false;
  // Multi-copy-atomic behaviors are a subset of non-MCA behaviors.
  if (!A.MultiCopyAtomic && B.MultiCopyAtomic)
    return false;
  // Forwarding changes which store a load must read, in both directions,
  // so differing effective-forwarding bits are incomparable - except when
  // A preserves store-load order: its executions keep every own earlier
  // store <M-before the load, where B's forwarding is indistinguishable
  // from plain visibility.
  bool FA = A.effectiveForwarding(), FB = B.effectiveForwarding();
  if (FA == FB)
    return true;
  return FB && A.OrderStoreLoad;
}

bool checkfence::memmodel::strictlyStronger(const ModelParams &A,
                                            const ModelParams &B) {
  return atLeastAsStrong(A, B) && !atLeastAsStrong(B, A);
}

//===----------------------------------------------------------------------===//
// MemoryModelEncoder
//===----------------------------------------------------------------------===//

MemoryModelEncoder::MemoryModelEncoder(ValueEncoder &VE,
                                       const FlatProgram &P,
                                       const RangeInfo &R,
                                       const ModelParams &M, OrderMode OM,
                                       const EncodeOptions &EO)
    : VE(VE), Cnf(VE.cnf()), P(P), R(R), Params(M), OMode(OM), EOpts(EO) {
  EventAccess.assign(P.Events.size(), -1);
  for (size_t I = 0; I < P.Events.size(); ++I) {
    if (!P.Events[I].isAccess())
      continue;
    EventAccess[I] = static_cast<int>(AccessEvent.size());
    AccessEvent.push_back(static_cast<int>(I));
  }
}

Lit MemoryModelEncoder::execLit(int EventIdx) {
  return VE.guardLit(P.Events[EventIdx].Guard);
}

bool MemoryModelEncoder::cellsIntersect(int EventA, int EventB) const {
  const std::vector<int> &A = R.EventCells[EventA];
  const std::vector<int> &B = R.EventCells[EventB];
  // Candidate lists are small and sorted (built from ordered sets).
  size_t I = 0, J = 0;
  while (I < A.size() && J < B.size()) {
    if (A[I] == B[J])
      return true;
    if (A[I] < B[J])
      ++I;
    else
      ++J;
  }
  return false;
}

Lit MemoryModelEncoder::addrEqLit(int AccessA, int AccessB) {
  if (AccessA > AccessB)
    std::swap(AccessA, AccessB);
  auto Key = std::make_pair(AccessA, AccessB);
  auto It = AddrEqCache.find(Key);
  if (It != AddrEqCache.end())
    return It->second;
  const FlatEvent &EA = P.Events[AccessEvent[AccessA]];
  const FlatEvent &EB = P.Events[AccessEvent[AccessB]];
  const EncValue &A = VE.value(EA.Addr);
  const EncValue &B = VE.value(EB.Addr);
  Lit L = Cnf.andLits({A.IsPtr, B.IsPtr, bvEq(Cnf, A.PtrBits, B.PtrBits)});
  AddrEqCache[Key] = L;
  return L;
}

void MemoryModelEncoder::collectForcedPairs(
    std::vector<std::pair<int, int>> &Forced) {
  int N = numAccesses();

  // Init thread (thread 0) precedes every other thread.
  if (P.ThreadZeroIsInit) {
    for (int A = 0; A < N; ++A) {
      if (P.Events[AccessEvent[A]].Thread != 0)
        continue;
      for (int B = 0; B < N; ++B)
        if (P.Events[AccessEvent[B]].Thread != 0)
          Forced.push_back({A, B});
    }
  }

  // Program order. Access indices within a thread are already in program
  // order (the flattener appends events in order); consecutive edges
  // suffice, the pairwise builder closes them transitively and the rank
  // builder gets transitivity from arithmetic.
  std::vector<int> LastOfThread; // last access index seen per thread
  LastOfThread.assign(P.NumThreads, -1);
  if (Params.fullProgramOrder()) {
    for (int A = 0; A < N; ++A) {
      int T = P.Events[AccessEvent[A]].Thread;
      if (LastOfThread[T] >= 0)
        Forced.push_back({LastOfThread[T], A});
      LastOfThread[T] = A;
    }
    return;
  }

  // Partial program order (TSO/PSO and other lattice points): every
  // same-thread pair whose edge kind the model preserves. The preserved
  // edge set is not closed under composition with relaxed edges (on TSO,
  // load->store and store->store do not compose into the relaxed
  // store->load), so all pairs are emitted, not just consecutive ones.
  if (Params.OrderLoadLoad || Params.OrderLoadStore ||
      Params.OrderStoreLoad || Params.OrderStoreStore) {
    for (int A = 0; A < N; ++A) {
      const FlatEvent &EA = P.Events[AccessEvent[A]];
      for (int B = A + 1; B < N; ++B) {
        const FlatEvent &EB = P.Events[AccessEvent[B]];
        if (EB.Thread != EA.Thread)
          continue;
        if (Params.ordersEdge(EA.isLoad(), EB.isLoad()))
          Forced.push_back({A, B});
      }
    }
  }

  // Relaxed: atomic-block interiors execute in program order.
  std::map<int, int> LastOfAtomic;
  for (int A = 0; A < N; ++A) {
    const FlatEvent &E = P.Events[AccessEvent[A]];
    if (E.AtomicId < 0)
      continue;
    auto It = LastOfAtomic.find(E.AtomicId);
    if (It != LastOfAtomic.end())
      Forced.push_back({It->second, A});
    LastOfAtomic[E.AtomicId] = A;
  }

  // Relaxed axiom 1, statically decided cases: same-thread accesses to
  // provably identical addresses where the later one is a store.
  for (int A = 0; A < N; ++A) {
    const FlatEvent &EA = P.Events[AccessEvent[A]];
    for (int B = A + 1; B < N; ++B) {
      const FlatEvent &EB = P.Events[AccessEvent[B]];
      if (EB.Thread != EA.Thread || !EB.isStore())
        continue;
      const ValueSet &SA = R.DefSets[EA.Addr];
      const ValueSet &SB = R.DefSets[EB.Addr];
      if (SA.isSingleton() && SB.isSingleton() &&
          *SA.Values.begin() == *SB.Values.begin() &&
          SA.Values.begin()->isPtr())
        Forced.push_back({A, B});
    }
  }
}

/// Relaxed axiom 1, dynamic cases: same-thread, possibly-aliasing pairs
/// whose second access is a store get a conditional order edge.
void MemoryModelEncoder::emitConditionalOrderAxioms() {
  if (Params.fullProgramOrder())
    return; // subsumed by the forced program order
  int N = numAccesses();
  for (int A = 0; A < N; ++A) {
    const FlatEvent &EA = P.Events[AccessEvent[A]];
    for (int B = A + 1; B < N; ++B) {
      const FlatEvent &EB = P.Events[AccessEvent[B]];
      if (EB.Thread != EA.Thread || !EB.isStore())
        continue;
      if (Params.ordersEdge(EA.isLoad(), /*LaterIsLoad=*/false))
        continue; // already forced unconditionally by the model
      if (EOpts.AliasPruning &&
          !cellsIntersect(AccessEvent[A], AccessEvent[B]))
        continue;
      Lit Before = Order->before(A, B);
      if (Cnf.isTrue(Before))
        continue;
      Cnf.addClause(~addrEqLit(A, B), Before);
    }
  }
}

/// Fence axiom: an executed X-Y fence orders every preceding access of
/// kind X before every following access of kind Y (same thread).
void MemoryModelEncoder::emitFenceAxioms() {
  if (Params.fullProgramOrder())
    return; // fences are no-ops under SC / Serial
  for (size_t F = 0; F < P.Events.size(); ++F) {
    const FlatEvent &EF = P.Events[F];
    if (EF.K != FlatEvent::Kind::Fence)
      continue;
    bool XIsLoad = EF.FenceK == lsl::FenceKind::LoadLoad ||
                   EF.FenceK == lsl::FenceKind::LoadStore;
    bool YIsLoad = EF.FenceK == lsl::FenceKind::LoadLoad ||
                   EF.FenceK == lsl::FenceKind::StoreLoad;
    Lit ExecF = execLit(static_cast<int>(F));
    int N = numAccesses();
    for (int A = 0; A < N; ++A) {
      const FlatEvent &EA = P.Events[AccessEvent[A]];
      if (EA.Thread != EF.Thread || EA.IndexInThread > EF.IndexInThread)
        continue;
      if (EA.isLoad() != XIsLoad)
        continue;
      for (int B = 0; B < N; ++B) {
        const FlatEvent &EB = P.Events[AccessEvent[B]];
        if (EB.Thread != EF.Thread || EB.IndexInThread < EF.IndexInThread)
          continue;
        if (EB.isLoad() != YIsLoad)
          continue;
        Lit Before = Order->before(A, B);
        if (Cnf.isTrue(Before))
          continue;
        Cnf.addClause(~ExecF, Before);
      }
    }
  }
}

/// Atomic blocks are indivisible: no outside access falls strictly between
/// two accesses of the same atomic instance.
void MemoryModelEncoder::emitAtomicExclusivity() {
  if (Params.SerialOps)
    return; // whole operations are already indivisible
  std::map<int, std::vector<int>> Members;
  int N = numAccesses();
  for (int A = 0; A < N; ++A) {
    const FlatEvent &E = P.Events[AccessEvent[A]];
    if (E.AtomicId >= 0)
      Members[E.AtomicId].push_back(A);
  }
  for (const auto &[Id, Accs] : Members) {
    if (Accs.size() < 2)
      continue;
    for (size_t I = 0; I + 1 < Accs.size(); ++I) {
      int X = Accs[I], Y = Accs[I + 1];
      for (int Z = 0; Z < N; ++Z) {
        const FlatEvent &EZ = P.Events[AccessEvent[Z]];
        if (EZ.AtomicId == Id)
          continue;
        Lit XZ = Order->before(X, Z);
        Lit ZY = Order->before(Z, Y);
        if (Cnf.isFalse(XZ) || Cnf.isFalse(ZY))
          continue;
        std::vector<Lit> Clause;
        if (!Cnf.isTrue(XZ))
          Clause.push_back(~XZ);
        if (!Cnf.isTrue(ZY))
          Clause.push_back(~ZY);
        assert(!Clause.empty() && "contradictory atomic placement");
        Cnf.addClause(Clause);
      }
    }
  }
}

/// Axioms 2 and 3: the value of each load.
void MemoryModelEncoder::emitValueAxioms() {
  int N = numAccesses();
  // All store accesses, by index.
  std::vector<int> Stores;
  for (int A = 0; A < N; ++A)
    if (P.Events[AccessEvent[A]].isStore())
      Stores.push_back(A);

  for (int L = 0; L < N; ++L) {
    const FlatEvent &EL = P.Events[AccessEvent[L]];
    if (!EL.isLoad())
      continue;
    Lit ExecL = execLit(AccessEvent[L]);

    // Candidate stores (alias-pruned).
    std::vector<int> Cands;
    for (int S : Stores) {
      if (EOpts.AliasPruning &&
          !cellsIntersect(AccessEvent[S], AccessEvent[L]))
        continue;
      Cands.push_back(S);
    }

    // Visibility literals: S(l) membership for each candidate store.
    std::vector<Lit> Vis(Cands.size());
    for (size_t I = 0; I < Cands.size(); ++I) {
      int S = Cands[I];
      const FlatEvent &ES = P.Events[AccessEvent[S]];
      Lit ExecS = execLit(AccessEvent[S]);
      Lit AddrEq = addrEqLit(S, L);
      Lit OrderTerm;
      bool POBefore = ES.Thread == EL.Thread &&
                      ES.IndexInThread < EL.IndexInThread;
      if (Params.StoreForwarding && POBefore)
        OrderTerm = Cnf.trueLit(); // forwarding: s <p l suffices
      else
        OrderTerm = Order->before(S, L);
      Vis[I] = Cnf.andLits({ExecS, AddrEq, OrderTerm});
    }

    // Init_l <-> S(l) empty.
    std::vector<Lit> NoVis;
    NoVis.reserve(Vis.size());
    for (Lit V : Vis)
      NoVis.push_back(~V);
    Lit InitL = Cnf.andLits(NoVis);

    // Axiom 2: empty S(l) loads the initial contents - undefined, since
    // all initialization happens through explicit stores of the init code.
    const EncValue &LV = VE.value(EL.Data);
    Cnf.addClause(~ExecL, ~InitL, ~LV.IsInt);
    Cnf.addClause(~ExecL, ~InitL, ~LV.IsPtr);

    // Flows_{s,l}: s is the <M-maximal element of S(l).
    std::vector<Lit> FlowsAny;
    for (size_t I = 0; I < Cands.size(); ++I) {
      if (Cnf.isFalse(Vis[I]))
        continue;
      std::vector<Lit> MaxTerms{Vis[I]};
      for (size_t J = 0; J < Cands.size(); ++J) {
        if (J == I || Cnf.isFalse(Vis[J]))
          continue;
        // not (vis_j && s_i <M s_j)
        MaxTerms.push_back(
            ~Cnf.andLit(Vis[J], Order->before(Cands[I], Cands[J])));
      }
      Lit Flows = Cnf.andLits(MaxTerms);
      FlowsAny.push_back(Flows);
      // Axiom 3: the load returns the value of the maximal visible store.
      const FlatEvent &ES = P.Events[AccessEvent[Cands[I]]];
      Lit ValEq = VE.eqLit(LV, VE.value(ES.Data));
      Cnf.addClause(~ExecL, ~Flows, ValEq);
    }

    // Completeness: an executed load either sees initial contents or some
    // maximal store flows to it.
    std::vector<Lit> Complete{~ExecL, InitL};
    for (Lit F : FlowsAny)
      Complete.push_back(F);
    Cnf.addClause(Complete);
  }
}

bool MemoryModelEncoder::encode() {
  // A single total <M is multi-copy atomic by construction; modeling
  // non-MCA points needs per-thread view orders, which this encoder does
  // not have yet.
  if (!Params.MultiCopyAtomic)
    return false;

  std::vector<AccessInfo> Infos;
  Infos.reserve(AccessEvent.size());
  for (int Ev : AccessEvent) {
    const FlatEvent &E = P.Events[Ev];
    AccessInfo AI;
    AI.Thread = E.Thread;
    AI.IndexInThread = E.IndexInThread;
    AI.Group = E.OpInvId;
    Infos.push_back(AI);
  }

  std::vector<std::pair<int, int>> Forced;
  collectForcedPairs(Forced);
  Order = std::make_unique<MemoryOrder>(Cnf, std::move(Infos), OMode,
                                        Params.SerialOps, Forced);

  emitConditionalOrderAxioms();
  emitFenceAxioms();
  emitAtomicExclusivity();
  emitValueAxioms();
  return true;
}

std::vector<int> MemoryModelEncoder::modelOrderedAccesses(
    const sat::Solver &S) {
  std::vector<int> Executed;
  for (size_t A = 0; A < AccessEvent.size(); ++A)
    if (S.modelValue(execLit(AccessEvent[A])) == sat::LBool::True)
      Executed.push_back(static_cast<int>(A));
  std::sort(Executed.begin(), Executed.end(), [&](int A, int B) {
    Lit L = Order->before(A, B);
    if (Cnf.isTrue(L))
      return true;
    if (Cnf.isFalse(L))
      return false;
    return S.modelValue(L) == sat::LBool::True;
  });
  std::vector<int> Events;
  Events.reserve(Executed.size());
  for (int A : Executed)
    Events.push_back(AccessEvent[A]);
  return Events;
}
