//===--- AxiomaticEnumerator.cpp - brute-force axiom oracle -----------------===//
//
// Part of the CheckFence reproduction (PLDI'07).
//
//===----------------------------------------------------------------------===//

#include "memmodel/AxiomaticEnumerator.h"

#include <algorithm>
#include <cassert>
#include <map>

using namespace checkfence;
using namespace checkfence::memmodel;
using namespace checkfence::trans;

using lsl::Value;

namespace {

/// One enumeration run for a fixed assignment of the Choice values.
class OrderEnumerator {
public:
  OrderEnumerator(const FlatProgram &P, const ModelParams &Traits,
                  AxiomaticResult &Out, const AxiomaticOptions &Opts,
                  std::vector<Value> &DefVals, std::vector<char> &DefKnown)
      : P(P), Traits(Traits), Out(Out), Opts(Opts), DefVals(DefVals),
        DefKnown(DefKnown) {}

  /// Prepares the executed-access universe and the static edge set.
  /// Returns false (with Out.Error set) on unsupported input.
  bool prepare();

  /// Enumerates all axiom-consistent total orders.
  void run() {
    PosOf.assign(Accesses.size(), -1);
    extend(0);
  }

private:
  struct Access {
    int Event = 0;   ///< index into P.Events
    int Cluster = -1; ///< contiguity cluster (atomic block / invocation)
    bool IsStore = false;
    Value Addr;
    uint64_t Preds = 0; ///< accesses that must come earlier (bitmask)
  };

  bool fail(OracleSkip Reason) {
    Out.Reason = Reason;
    Out.Error = oracleSkipMessage(Reason);
    return false;
  }

  /// Statically evaluates \p Id; fails if the value depends on a load.
  bool evalStatic(ValueId Id, Value &Out_);
  /// Evaluates \p Id given the current total order; loads resolve through
  /// the visibility rule. Fails on cyclic value dependencies.
  bool evalDyn(ValueId Id, Value &Out_);
  /// The value of the load at access index \p A under the current order.
  bool loadValue(int A, Value &Out_);

  void addEdge(int From, int To) {
    if (From != To)
      Accesses[To].Preds |= uint64_t(1) << From;
  }

  void extend(size_t Depth);
  void finalize();

  const FlatProgram &P;
  const ModelParams &Traits;
  AxiomaticResult &Out;
  const AxiomaticOptions &Opts;
  std::vector<Value> &DefVals;   // shared choice/const memo (static part)
  std::vector<char> &DefKnown;

  std::vector<Access> Accesses;       // executed accesses only
  std::vector<int> AccessOfEvent;     // event -> access index or -1
  std::vector<int> ClusterSize;       // accesses per cluster id
  std::vector<int> ClusterPlaced;     // placed so far (during search)

  // Search state.
  std::vector<int> PosOf; // access -> position in <M, or -1
  uint64_t PlacedMask = 0;
  int OpenCluster = -1;

  // Per-leaf evaluation state.
  std::vector<Value> DynVals;
  std::vector<char> DynState; // 0 = unknown, 1 = known, 2 = in progress
};

bool OrderEnumerator::evalStatic(ValueId Id, Value &Out_) {
  if (Id < 0) {
    Out_ = Value::undef();
    return true;
  }
  if (DefKnown[Id]) {
    Out_ = DefVals[Id];
    return true;
  }
  const FlatDef &D = P.def(Id);
  Value V;
  switch (D.K) {
  case FlatDef::Kind::Const:
    V = D.Val;
    break;
  case FlatDef::Kind::Choice:
    V = DefVals[Id]; // bound by the choice enumeration
    break;
  case FlatDef::Kind::LoadVal:
    return false; // not static
  case FlatDef::Kind::Op: {
    std::vector<Value> Args;
    Args.reserve(D.Operands.size());
    for (ValueId O : D.Operands) {
      Args.emplace_back();
      if (!evalStatic(O, Args.back()))
        return false;
    }
    V = lsl::evalPrimOp(D.Op, Args, D.Imm);
    break;
  }
  }
  DefVals[Id] = V;
  DefKnown[Id] = 1;
  Out_ = V;
  return true;
}

bool OrderEnumerator::prepare() {
  AccessOfEvent.assign(P.Events.size(), -1);

  // Collect the executed accesses. Guards and addresses must be static.
  for (size_t I = 0; I < P.Events.size(); ++I) {
    const FlatEvent &E = P.Events[I];
    Value G;
    if (!evalStatic(E.Guard, G))
      return fail(OracleSkip::GuardDependsOnLoad);
    if (G.isUndef() || !G.isTruthy())
      continue;
    if (!E.isAccess())
      continue;
    Value Addr;
    if (!evalStatic(E.Addr, Addr))
      return fail(OracleSkip::AddressDependsOnLoad);
    Access A;
    A.Event = static_cast<int>(I);
    A.IsStore = E.isStore();
    A.Addr = Addr;
    AccessOfEvent[I] = static_cast<int>(Accesses.size());
    Accesses.push_back(A);
  }
  if (Accesses.size() > 62)
    return fail(OracleSkip::TooManyAccesses);

  // Within-bounds semantics: a statically-exceeded loop bound means the
  // program was not fully unrolled - outside the supported fragment.
  for (const FlatBoundMark &M : P.BoundMarks) {
    Value G;
    if (!evalStatic(M.Guard, G))
      return fail(OracleSkip::BoundMarkDependsOnLoad);
    if (!G.isUndef() && G.isTruthy())
      return fail(OracleSkip::ExceedsLoopBounds);
  }

  int N = static_cast<int>(Accesses.size());

  // Contiguity clusters: operation invocations under Serial, atomic-block
  // instances otherwise.
  int NumClusters = 0;
  {
    std::map<int, int> Renumber;
    for (Access &A : Accesses) {
      const FlatEvent &E = P.Events[A.Event];
      int Raw = Traits.SerialOps ? E.OpInvId : E.AtomicId;
      if (Raw < 0)
        continue;
      auto [It, New] = Renumber.emplace(Raw, NumClusters);
      if (New)
        ++NumClusters;
      A.Cluster = It->second;
    }
  }
  ClusterSize.assign(NumClusters, 0);
  for (const Access &A : Accesses)
    if (A.Cluster >= 0)
      ++ClusterSize[A.Cluster];
  ClusterPlaced.assign(NumClusters, 0);

  // Static edges. (1) The init thread precedes everything, and runs
  // sequentially. (The SAT encoding leaves different-address init stores
  // mutually unordered under the relaxed models; since every init access
  // precedes all others, their relative order cannot influence any load,
  // so chaining them here only removes redundant permutations.)
  if (P.ThreadZeroIsInit) {
    int PrevInit = -1;
    for (int A = 0; A < N; ++A) {
      if (P.Events[Accesses[A].Event].Thread != 0)
        continue;
      if (PrevInit >= 0)
        addEdge(PrevInit, A);
      PrevInit = A;
      for (int B = 0; B < N; ++B)
        if (P.Events[Accesses[B].Event].Thread != 0)
          addEdge(A, B);
    }
  }

  // (2) Program order, per edge kind; (3) Relaxed axiom 1 (same-address
  // edges ending in a store); (4) atomic-block interiors.
  for (int A = 0; A < N; ++A) {
    const FlatEvent &EA = P.Events[Accesses[A].Event];
    for (int B = A + 1; B < N; ++B) {
      const FlatEvent &EB = P.Events[Accesses[B].Event];
      if (EA.Thread != EB.Thread)
        continue;
      bool InOrder = EA.IndexInThread < EB.IndexInThread;
      int First = InOrder ? A : B, Second = InOrder ? B : A;
      const FlatEvent &EF = P.Events[Accesses[First].Event];
      const FlatEvent &ES = P.Events[Accesses[Second].Event];
      if (Traits.ordersEdge(EF.isLoad(), ES.isLoad()))
        addEdge(First, Second);
      if (ES.isStore() && Accesses[First].Addr == Accesses[Second].Addr)
        addEdge(First, Second);
      if (EF.AtomicId >= 0 && EF.AtomicId == ES.AtomicId)
        addEdge(First, Second);
    }
  }

  // (5) Fences: executed X-Y fences order earlier X accesses before later
  // Y accesses of the same thread.
  for (size_t I = 0; I < P.Events.size(); ++I) {
    const FlatEvent &EF = P.Events[I];
    if (EF.K != FlatEvent::Kind::Fence)
      continue;
    Value G;
    if (!evalStatic(EF.Guard, G))
      return fail(OracleSkip::FenceGuardDependsOnLoad);
    if (G.isUndef() || !G.isTruthy())
      continue;
    bool XIsLoad = EF.FenceK == lsl::FenceKind::LoadLoad ||
                   EF.FenceK == lsl::FenceKind::LoadStore;
    bool YIsLoad = EF.FenceK == lsl::FenceKind::LoadLoad ||
                   EF.FenceK == lsl::FenceKind::StoreLoad;
    for (int A = 0; A < N; ++A) {
      const FlatEvent &EA = P.Events[Accesses[A].Event];
      if (EA.Thread != EF.Thread || EA.IndexInThread > EF.IndexInThread ||
          EA.isLoad() != XIsLoad)
        continue;
      for (int B = 0; B < N; ++B) {
        const FlatEvent &EB = P.Events[Accesses[B].Event];
        if (EB.Thread != EF.Thread || EB.IndexInThread < EF.IndexInThread ||
            EB.isLoad() != YIsLoad)
          continue;
        addEdge(A, B);
      }
    }
  }
  return true;
}

bool OrderEnumerator::loadValue(int A, Value &Out_) {
  const FlatEvent &EL = P.Events[Accesses[A].Event];
  // The <M-maximal element of S(l): scan for the best candidate position.
  int BestPos = -1, BestAccess = -1;
  for (size_t B = 0; B < Accesses.size(); ++B) {
    const Access &AS = Accesses[B];
    if (!AS.IsStore || !(AS.Addr == Accesses[A].Addr))
      continue;
    const FlatEvent &ES = P.Events[AS.Event];
    bool Visible = PosOf[B] < PosOf[A];
    if (!Visible && Traits.StoreForwarding && ES.Thread == EL.Thread &&
        ES.IndexInThread < EL.IndexInThread)
      Visible = true; // store forwarding: s <p l suffices
    if (!Visible)
      continue;
    if (PosOf[static_cast<int>(B)] > BestPos) {
      BestPos = PosOf[static_cast<int>(B)];
      BestAccess = static_cast<int>(B);
    }
  }
  if (BestAccess < 0) {
    Out_ = Value::undef(); // axiom 2: initial memory contents
    return true;
  }
  return evalDyn(P.Events[Accesses[BestAccess].Event].Data, Out_);
}

bool OrderEnumerator::evalDyn(ValueId Id, Value &Out_) {
  if (Id < 0) {
    Out_ = Value::undef();
    return true;
  }
  if (DefKnown[Id]) { // static part already memoized
    Out_ = DefVals[Id];
    return true;
  }
  if (DynState[Id] == 1) {
    Out_ = DynVals[Id];
    return true;
  }
  if (DynState[Id] == 2)
    return false; // circular value dependency (thin-air shape)
  DynState[Id] = 2;
  const FlatDef &D = P.def(Id);
  Value V;
  bool Ok = true;
  switch (D.K) {
  case FlatDef::Kind::Const:
    V = D.Val;
    break;
  case FlatDef::Kind::Choice:
    V = DefVals[Id]; // bound by the choice enumeration
    break;
  case FlatDef::Kind::LoadVal: {
    int A = D.EventIndex >= 0 ? AccessOfEvent[D.EventIndex] : -1;
    if (A < 0 || PosOf[A] < 0)
      V = Value::undef(); // skipped load (dead guard)
    else
      Ok = loadValue(A, V);
    break;
  }
  case FlatDef::Kind::Op: {
    std::vector<Value> Args;
    Args.reserve(D.Operands.size());
    for (ValueId O : D.Operands) {
      Args.emplace_back();
      if (!evalDyn(O, Args.back())) {
        Ok = false;
        break;
      }
    }
    if (Ok)
      V = lsl::evalPrimOp(D.Op, Args, D.Imm);
    break;
  }
  }
  if (!Ok) {
    DynState[Id] = 0;
    return false;
  }
  DynVals[Id] = V;
  DynState[Id] = 1;
  Out_ = V;
  return true;
}

void OrderEnumerator::finalize() {
  if (++Out.Orders > Opts.MaxOrders) {
    fail(OracleSkip::BudgetExceeded);
    return;
  }
  DynVals.assign(P.Defs.size(), Value::undef());
  DynState.assign(P.Defs.size(), 0);

  bool Error = false;
  for (const FlatCheck &C : P.Checks) {
    Value G;
    if (!evalDyn(C.Guard, G)) {
      fail(OracleSkip::CyclicValueDependency);
      return;
    }
    if (G.isUndef() || !G.isTruthy())
      continue;
    Value Cond;
    if (!evalDyn(C.Cond, Cond)) {
      fail(OracleSkip::CyclicValueDependency);
      return;
    }
    switch (C.K) {
    case FlatCheck::Kind::Assume:
      if (Cond.isUndef()) {
        Error = true;
        break;
      }
      if (!Cond.isTruthy())
        return; // infeasible execution
      break;
    case FlatCheck::Kind::Assert:
      if (Cond.isUndef() || !Cond.isTruthy())
        Error = true;
      break;
    case FlatCheck::Kind::CheckAddr:
      if (!Cond.isPtr())
        Error = true;
      break;
    case FlatCheck::Kind::CheckBranch:
    case FlatCheck::Kind::CheckDef:
      if (Cond.isUndef())
        Error = true;
      break;
    }
  }

  RefObservation Obs;
  Obs.Error = Error;
  for (const FlatObservation &O : P.Observations) {
    Obs.Values.emplace_back();
    if (!evalDyn(O.Val, Obs.Values.back())) {
      fail(OracleSkip::CyclicValueDependency);
      return;
    }
  }
  Out.Observations.insert(std::move(Obs));
}

void OrderEnumerator::extend(size_t Depth) {
  if (!Out.Error.empty())
    return;
  if (Depth == Accesses.size()) {
    finalize();
    return;
  }
  for (size_t A = 0; A < Accesses.size(); ++A) {
    if (PlacedMask & (uint64_t(1) << A))
      continue;
    if ((Accesses[A].Preds & PlacedMask) != Accesses[A].Preds)
      continue;
    int Cluster = Accesses[A].Cluster;
    // Exclusivity/contiguity: an opened cluster must be completed before
    // any outside access is placed.
    if (OpenCluster >= 0 && Cluster != OpenCluster)
      continue;

    int SavedOpen = OpenCluster;
    PlacedMask |= uint64_t(1) << A;
    PosOf[A] = static_cast<int>(Depth);
    if (Cluster >= 0) {
      ++ClusterPlaced[Cluster];
      OpenCluster = ClusterPlaced[Cluster] < ClusterSize[Cluster]
                        ? Cluster
                        : -1;
    }

    extend(Depth + 1);

    if (Cluster >= 0)
      --ClusterPlaced[Cluster];
    OpenCluster = SavedOpen;
    PosOf[A] = -1;
    PlacedMask &= ~(uint64_t(1) << A);
  }
}

/// Enumerates the Choice assignments, then the orders for each.
class ChoiceEnumerator {
public:
  ChoiceEnumerator(const FlatProgram &P, const AxiomaticOptions &Opts)
      : P(P), Traits(Opts.Model), Opts(Opts) {
    for (size_t I = 0; I < P.Defs.size(); ++I)
      if (P.Defs[I].K == FlatDef::Kind::Choice)
        Choices.push_back(static_cast<ValueId>(I));
  }

  AxiomaticResult run() {
    recurse(0);
    if (Out.Error.empty())
      Out.Ok = true;
    return std::move(Out);
  }

private:
  void recurse(size_t Idx) {
    if (!Out.Error.empty())
      return;
    if (Idx == Choices.size()) {
      std::vector<Value> DefVals(P.Defs.size(), Value::undef());
      std::vector<char> DefKnown(P.Defs.size(), 0);
      for (ValueId C : Choices) {
        DefVals[C] = Bound[C];
        DefKnown[C] = 1;
      }
      OrderEnumerator E(P, Traits, Out, Opts, DefVals, DefKnown);
      if (!E.prepare())
        return;
      E.run();
      return;
    }
    ValueId Id = Choices[Idx];
    for (const Value &Option : P.Defs[Id].Options) {
      Bound[Id] = Option;
      recurse(Idx + 1);
    }
  }

  const FlatProgram &P;
  ModelParams Traits;
  AxiomaticOptions Opts;
  std::vector<ValueId> Choices;
  std::map<ValueId, Value> Bound;
  AxiomaticResult Out;
};

} // namespace

AxiomaticResult
checkfence::memmodel::enumerateAxiomatic(const FlatProgram &P,
                                         const AxiomaticOptions &Opts) {
  ChoiceEnumerator E(P, Opts);
  return E.run();
}
