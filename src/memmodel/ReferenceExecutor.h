//===--- ReferenceExecutor.h - explicit-state oracle ------------*- C++ -*-==//
//
// Part of the CheckFence reproduction (PLDI'07).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A brute-force interleaving enumerator over FlatPrograms, used as an
/// independent oracle in the encoder test-suite:
///
///  * at \b event granularity it enumerates sequentially consistent
///    executions (atomic blocks step as units) - feasible only for
///    litmus-sized programs;
///  * at \b invocation granularity it enumerates serial executions - the
///    specification-mining semantics - which is feasible for the real
///    tests (operation counts are small).
///
/// Observations collected here are compared against the SAT-based
/// specification miner to validate the encoding end-to-end.
///
//===----------------------------------------------------------------------===//

#ifndef CHECKFENCE_MEMMODEL_REFERENCEEXECUTOR_H
#define CHECKFENCE_MEMMODEL_REFERENCEEXECUTOR_H

#include "trans/FlatProgram.h"

#include <set>
#include <vector>

namespace checkfence {
namespace memmodel {

/// An observation: the error flag plus the observed values in program
/// declaration order.
struct RefObservation {
  bool Error = false;
  std::vector<lsl::Value> Values;

  bool operator<(const RefObservation &O) const {
    if (Error != O.Error)
      return Error < O.Error;
    if (Values.size() != O.Values.size())
      return Values.size() < O.Values.size();
    for (size_t I = 0; I < Values.size(); ++I) {
      if (Values[I] != O.Values[I])
        return Values[I] < O.Values[I];
    }
    return false;
  }
  bool operator==(const RefObservation &O) const {
    return !(*this < O) && !(O < *this);
  }
};

struct RefOptions {
  bool InvocationGranularity = false; ///< serial semantics when true
  uint64_t MaxSteps = 50'000'000;     ///< exploration budget (aborts over)
};

/// Enumerates all within-bounds executions of \p P under sequential
/// consistency (or seriality) and returns the set of observations.
/// Executions violating an assume or exceeding a loop bound are dropped;
/// assertion failures and undefined-value uses set the error flag.
std::set<RefObservation> enumerateExecutions(const trans::FlatProgram &P,
                                             const RefOptions &Opts);

} // namespace memmodel
} // namespace checkfence

#endif // CHECKFENCE_MEMMODEL_REFERENCEEXECUTOR_H
