//===--- ReferenceExecutor.cpp - explicit-state oracle ----------------------===//
//
// Part of the CheckFence reproduction (PLDI'07).
//
//===----------------------------------------------------------------------===//

#include "memmodel/ReferenceExecutor.h"

#include <cassert>
#include <map>

using namespace checkfence;
using namespace checkfence::memmodel;
using namespace checkfence::trans;

using lsl::Value;

namespace {

class Enumerator {
public:
  Enumerator(const FlatProgram &P, const RefOptions &Opts)
      : P(P), Opts(Opts) {
    ThreadEvents.resize(P.NumThreads);
    for (size_t I = 0; I < P.Events.size(); ++I)
      ThreadEvents[P.Events[I].Thread].push_back(static_cast<int>(I));
    for (size_t I = 0; I < P.Defs.size(); ++I)
      if (P.Defs[I].K == FlatDef::Kind::Choice)
        ChoiceDefs.push_back(static_cast<ValueId>(I));
  }

  std::set<RefObservation> run() {
    // Enumerate all assignments of the nondeterministic choices, then all
    // interleavings for each assignment.
    State Init;
    Init.DefVals.assign(P.Defs.size(), Value::undef());
    Init.DefKnown.assign(P.Defs.size(), 0);
    Init.ThreadPos.assign(P.NumThreads, 0);
    enumerateChoices(Init, 0);
    return std::move(Result);
  }

private:
  struct State {
    std::vector<size_t> ThreadPos;
    std::map<Value, Value> Memory;
    std::vector<Value> DefVals;
    std::vector<char> DefKnown;
  };

  const FlatProgram &P;
  const RefOptions &Opts;
  std::vector<std::vector<int>> ThreadEvents;
  std::vector<ValueId> ChoiceDefs;
  std::set<RefObservation> Result;
  uint64_t Steps = 0;

  void enumerateChoices(State &S, size_t ChoiceIdx) {
    if (ChoiceIdx == ChoiceDefs.size()) {
      dfs(S);
      return;
    }
    ValueId Id = ChoiceDefs[ChoiceIdx];
    for (const Value &Option : P.Defs[Id].Options) {
      S.DefVals[Id] = Option;
      S.DefKnown[Id] = 1;
      enumerateChoices(S, ChoiceIdx + 1);
    }
  }

  Value eval(State &S, ValueId Id) {
    if (Id < 0)
      return Value::undef();
    if (S.DefKnown[Id])
      return S.DefVals[Id];
    const FlatDef &D = P.Defs[Id];
    Value V;
    switch (D.K) {
    case FlatDef::Kind::Const:
      V = D.Val;
      break;
    case FlatDef::Kind::Choice:
      V = Value::undef(); // bound upfront; unreachable
      break;
    case FlatDef::Kind::LoadVal:
      // A load result read before the load executed: can only happen for
      // dead code whose guard is false; undefined is a safe answer.
      V = Value::undef();
      return V;
    case FlatDef::Kind::Op: {
      std::vector<Value> Args;
      Args.reserve(D.Operands.size());
      for (ValueId O : D.Operands)
        Args.push_back(eval(S, O));
      V = lsl::evalPrimOp(D.Op, Args, D.Imm);
      break;
    }
    }
    S.DefVals[Id] = V;
    S.DefKnown[Id] = 1;
    return V;
  }

  bool guardHolds(State &S, ValueId Guard) {
    Value G = eval(S, Guard);
    return !G.isUndef() && G.isTruthy();
  }

  /// Executes the next scheduling unit of thread \p T in place.
  void executeUnit(State &S, int T) {
    const std::vector<int> &Evs = ThreadEvents[T];
    size_t &Pos = S.ThreadPos[T];
    assert(Pos < Evs.size());
    const FlatEvent &First = P.Events[Evs[Pos]];

    // Determine the unit: one event, a whole atomic block, or a whole
    // invocation depending on granularity.
    auto SameUnit = [&](const FlatEvent &E) {
      if (Opts.InvocationGranularity)
        return E.OpInvId == First.OpInvId;
      if (First.AtomicId >= 0)
        return E.AtomicId == First.AtomicId;
      return false; // single event
    };

    bool FirstStep = true;
    while (Pos < Evs.size()) {
      const FlatEvent &E = P.Events[Evs[Pos]];
      if (!FirstStep && !SameUnit(E))
        break;
      FirstStep = false;
      ++Pos;
      ++Steps;
      if (!guardHolds(S, E.Guard))
        continue;
      switch (E.K) {
      case FlatEvent::Kind::Load: {
        Value Addr = eval(S, E.Addr);
        Value Loaded = Value::undef();
        if (Addr.isPtr()) {
          auto It = S.Memory.find(Addr);
          if (It != S.Memory.end())
            Loaded = It->second;
        }
        S.DefVals[E.Data] = Loaded;
        S.DefKnown[E.Data] = 1;
        break;
      }
      case FlatEvent::Kind::Store: {
        Value Addr = eval(S, E.Addr);
        if (Addr.isPtr())
          S.Memory[Addr] = eval(S, E.Data);
        break;
      }
      case FlatEvent::Kind::Fence:
        break;
      }
    }
  }

  void dfs(State &S) {
    if (Steps > Opts.MaxSteps)
      return;

    // The init thread runs to completion before anything else.
    if (P.ThreadZeroIsInit && P.NumThreads > 0 &&
        S.ThreadPos[0] < ThreadEvents[0].size()) {
      State S2 = S;
      while (S2.ThreadPos[0] < ThreadEvents[0].size())
        executeUnit(S2, 0);
      dfs(S2);
      return;
    }

    bool Any = false;
    for (int T = 0; T < P.NumThreads; ++T) {
      if (S.ThreadPos[T] >= ThreadEvents[T].size())
        continue;
      Any = true;
      State S2 = S;
      executeUnit(S2, T);
      dfs(S2);
    }
    if (!Any)
      finalize(S);
  }

  void finalize(State &S) {
    // Within-bounds semantics: drop executions that exceed a loop bound.
    for (const FlatBoundMark &M : P.BoundMarks)
      if (guardHolds(S, M.Guard))
        return;

    bool Error = false;
    for (const FlatCheck &C : P.Checks) {
      if (!guardHolds(S, C.Guard))
        continue;
      Value Cond = eval(S, C.Cond);
      switch (C.K) {
      case FlatCheck::Kind::Assume:
        if (Cond.isUndef()) {
          Error = true;
          break;
        }
        if (!Cond.isTruthy())
          return; // infeasible
        break;
      case FlatCheck::Kind::Assert:
        if (Cond.isUndef() || !Cond.isTruthy())
          Error = true;
        break;
      case FlatCheck::Kind::CheckAddr:
        if (!Cond.isPtr())
          Error = true;
        break;
      case FlatCheck::Kind::CheckBranch:
      case FlatCheck::Kind::CheckDef:
        if (Cond.isUndef())
          Error = true;
        break;
      }
    }

    RefObservation Obs;
    Obs.Error = Error;
    for (const FlatObservation &O : P.Observations)
      Obs.Values.push_back(eval(S, O.Val));
    Result.insert(std::move(Obs));
  }
};

} // namespace

std::set<RefObservation> checkfence::memmodel::enumerateExecutions(
    const FlatProgram &P, const RefOptions &Opts) {
  Enumerator E(P, Opts);
  return E.run();
}
