//===--- ReadsFromOracle.h - polynomial reads-from oracle -------*- C++ -*-==//
//
// Part of the CheckFence reproduction (PLDI'07).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A reads-from-based consistency oracle for the multi-copy-atomic points
/// of the relaxation lattice. Where AxiomaticEnumerator enumerates every
/// total order of the executed accesses (factorial in the access count),
/// this oracle enumerates *reads-from assignments* — one writer (or the
/// initial memory) per executed load — and decides each assignment's
/// consistency by acyclicity of a derived constraint graph, in the style
/// of reads-from consistency checking (Tunç et al., "Optimal Reads-From
/// Consistency Checking"; Chakraborty et al., "How Hard is Weak-Memory
/// Testing?"). Observation values are a pure function of the reads-from
/// assignment, so the observation set over consistent assignments equals
/// the enumerator's observation set over consistent total orders — at a
/// cost that grows with the (vastly smaller) number of assignments.
///
/// Per-assignment consistency is polynomial: rf(l) = s induces definite
/// order edges (s before l unless forwarded; always-forwarded competitors
/// before s) plus one two-literal disjunction per same-address competitor
/// ((s' before s) or (l before s')), and the oracle saturates these over
/// a bitmask transitive closure, branching only on disjunctions that
/// remain genuinely open (rare outside adversarial shapes — on the
/// oracle-eligible lattice points program order decides almost all of
/// them statically). Atomic blocks are contracted to supernodes; their
/// interior order is already total via program order.
///
/// Exactness requires multi-copy atomicity: a single global <M with the
/// visibility rule "max earlier same-address store, own earlier stores
/// forwarded" is precisely the enumerator's semantics. Callers gate usage
/// with readsFromEligible() (see MemoryModel.h), which additionally
/// restricts to the sc/tso/pso-like points (load-load and load-store
/// program order kept) where the saturation above stays effectively
/// branch-free. Fragment restrictions and all error strings match the
/// enumerator's, so skip accounting is oracle-agnostic.
///
//===----------------------------------------------------------------------===//

#ifndef CHECKFENCE_MEMMODEL_READSFROMORACLE_H
#define CHECKFENCE_MEMMODEL_READSFROMORACLE_H

#include "memmodel/MemoryModel.h"
#include "memmodel/OracleSkip.h"
#include "memmodel/ReferenceExecutor.h"
#include "trans/FlatProgram.h"

#include <cstdint>
#include <set>
#include <string>

namespace checkfence {
namespace memmodel {

struct ReadsFromOptions {
  ModelParams Model = ModelParams::sc();
  /// Abort guard: reads-from assignments tried (plus disjunction branch
  /// nodes) across all choice assignments.
  uint64_t MaxAssignments = 5'000'000;
};

struct ReadsFromResult {
  bool Ok = false;
  /// Why the oracle declined (None when Ok).
  OracleSkip Reason = OracleSkip::None;
  /// Non-empty when the program is outside the supported fragment; the
  /// text matches AxiomaticEnumerator's for the same Reason.
  std::string Error;
  std::set<RefObservation> Observations;
  /// Consistent reads-from assignments found (statistics).
  uint64_t Assignments = 0;
};

/// Computes the observation set of \p P under \p Opts.Model. Exact for
/// multi-copy-atomic, non-serial models; callers should gate on
/// readsFromEligible(). Same input fragment as enumerateAxiomatic.
ReadsFromResult checkReadsFrom(const trans::FlatProgram &P,
                               const ReadsFromOptions &Opts);

} // namespace memmodel
} // namespace checkfence

#endif // CHECKFENCE_MEMMODEL_READSFROMORACLE_H
