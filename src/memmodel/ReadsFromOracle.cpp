//===--- ReadsFromOracle.cpp - polynomial reads-from oracle ----------------===//
//
// Part of the CheckFence reproduction (PLDI'07).
//
//===----------------------------------------------------------------------===//
//
// Semantics contract: this file must agree observation-for-observation
// with AxiomaticEnumerator.cpp (the brute-force reference) on every input
// both accept. The fragment checks, the static edge rules, and the
// check/observation evaluation are deliberately kept in the enumerator's
// order so that error strings and skip behavior match byte-for-byte; the
// difference is purely the search: reads-from assignments with incremental
// constraint-graph feasibility instead of all total orders.
//
//===----------------------------------------------------------------------===//

#include "memmodel/ReadsFromOracle.h"

#include <algorithm>
#include <map>

using namespace checkfence;
using namespace checkfence::memmodel;
using namespace checkfence::trans;

using lsl::Value;

namespace {

constexpr int MaxNodes = 62;

/// A definite ordering requirement between two supernodes.
struct SuperEdge {
  int From = 0;
  int To = 0;
};

/// At least one of the two edges must hold in the final memory order.
struct Disjunct {
  SuperEdge E1, E2;
};

/// Transitive reachability over at most 62 supernodes, kept closed under
/// every edge insertion so feasibility questions are single bit tests.
struct ReachGraph {
  int N = 0;
  uint64_t Reach[MaxNodes] = {};

  void init(int Nodes) {
    N = Nodes;
    for (int I = 0; I < N; ++I)
      Reach[I] = 0;
  }
  bool has(int From, int To) const { return (Reach[From] >> To) & 1; }
  /// Adds From -> To and re-closes; false when the edge closes a cycle.
  bool add(int From, int To) {
    if (has(From, To))
      return true;
    if (From == To || has(To, From))
      return false;
    uint64_t Gain = (uint64_t(1) << To) | Reach[To];
    Reach[From] |= Gain;
    for (int U = 0; U < N; ++U)
      if (has(U, From))
        Reach[U] |= Gain;
    return true;
  }
};

/// One search run for a fixed assignment of the Choice values.
class RfSearch {
public:
  RfSearch(const FlatProgram &P, const ModelParams &Traits,
           ReadsFromResult &Out, const ReadsFromOptions &Opts,
           std::vector<Value> &DefVals, std::vector<char> &DefKnown,
           uint64_t &Explored)
      : P(P), Traits(Traits), Out(Out), Opts(Opts), DefVals(DefVals),
        DefKnown(DefKnown), Explored(Explored) {}

  /// Prepares the executed-access universe, the supernode contraction,
  /// and the static edge set. Returns false with Out.Error/Reason set on
  /// unsupported input; a statically inconsistent choice assignment
  /// (zero executions) instead sets ChoiceDead and returns true.
  bool prepare();

  void run() {
    if (ChoiceDead)
      return;
    RfOf.assign(Accesses.size(), -1);
    std::vector<Disjunct> Pending;
    searchLoads(0, Base, Pending);
  }

private:
  struct Access {
    int Event = 0; ///< index into P.Events
    bool IsStore = false;
    Value Addr;
  };

  enum class EdgeClass { Implied, Infeasible, Lifted };

  bool fail(OracleSkip Reason) {
    Out.Reason = Reason;
    Out.Error = oracleSkipMessage(Reason);
    return false;
  }

  bool evalStatic(ValueId Id, Value &Out_);
  bool evalDyn(ValueId Id, Value &Out_);

  /// Classifies the access-level requirement "A before B in <M": decided
  /// by rank inside a supernode, otherwise lifted to a supernode edge.
  EdgeClass classify(int A, int B, SuperEdge &E) const {
    if (SuperOf[A] == SuperOf[B])
      return RankOf[A] < RankOf[B] ? EdgeClass::Implied
                                   : EdgeClass::Infeasible;
    E.From = SuperOf[A];
    E.To = SuperOf[B];
    return EdgeClass::Lifted;
  }

  bool requireEdge(ReachGraph &G, int A, int B) const {
    SuperEdge E;
    switch (classify(A, B, E)) {
    case EdgeClass::Implied:
      return true;
    case EdgeClass::Infeasible:
      return false;
    case EdgeClass::Lifted:
      return G.add(E.From, E.To);
    }
    return false;
  }

  /// Records (A1 before B1) or (A2 before B2); statically decided parts
  /// collapse immediately.
  bool addDisjunct(ReachGraph &G, std::vector<Disjunct> &Pending, int A1,
                   int B1, int A2, int B2) const {
    SuperEdge E1, E2;
    EdgeClass C1 = classify(A1, B1, E1);
    EdgeClass C2 = classify(A2, B2, E2);
    if (C1 == EdgeClass::Implied || C2 == EdgeClass::Implied)
      return true;
    if (C1 == EdgeClass::Infeasible && C2 == EdgeClass::Infeasible)
      return false;
    if (C1 == EdgeClass::Infeasible)
      return G.add(E2.From, E2.To);
    if (C2 == EdgeClass::Infeasible)
      return G.add(E1.From, E1.To);
    Pending.push_back({E1, E2});
    return true;
  }

  /// Unit-propagates the pending disjunctions to a fixpoint: implied ones
  /// are dropped, ones with a dead branch force the other branch. False =
  /// no consistent completion exists.
  static bool saturate(ReachGraph &G, std::vector<Disjunct> &Pending) {
    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (size_t I = 0; I < Pending.size();) {
        const Disjunct &D = Pending[I];
        if (G.has(D.E1.From, D.E1.To) || G.has(D.E2.From, D.E2.To)) {
          Pending[I] = Pending.back();
          Pending.pop_back();
          Changed = true;
          continue;
        }
        bool Dead1 = G.has(D.E1.To, D.E1.From);
        bool Dead2 = G.has(D.E2.To, D.E2.From);
        if (Dead1 && Dead2)
          return false;
        if (Dead1 || Dead2) {
          const SuperEdge &Forced = Dead1 ? D.E2 : D.E1;
          if (!G.add(Forced.From, Forced.To))
            return false;
          Pending[I] = Pending.back();
          Pending.pop_back();
          Changed = true;
          continue;
        }
        ++I;
      }
    }
    return true;
  }

  /// Decides the disjunctions propagation left open by branching (each
  /// branch node is charged against the budget; in practice the eligible
  /// models resolve everything in saturate()).
  bool resolveOpen(ReachGraph G, std::vector<Disjunct> Pending) {
    if (!saturate(G, Pending))
      return false;
    if (Pending.empty())
      return true;
    if (!budget())
      return false;
    Disjunct D = Pending.back();
    Pending.pop_back();
    {
      ReachGraph G1 = G;
      std::vector<Disjunct> P1 = Pending;
      if (G1.add(D.E1.From, D.E1.To) && resolveOpen(G1, std::move(P1)))
        return true;
      if (!Out.Error.empty())
        return false;
    }
    if (!G.add(D.E2.From, D.E2.To))
      return false;
    return resolveOpen(std::move(G), std::move(Pending));
  }

  /// True when store access \p S is forwardable to load access \p L:
  /// visible by program order alone, at any position in <M. Mirrors the
  /// enumerator's loadValue() forwarding test (the raw trait bit).
  bool forwards(int S, int L) const {
    const FlatEvent &ES = P.Events[Accesses[S].Event];
    const FlatEvent &EL = P.Events[Accesses[L].Event];
    return Traits.StoreForwarding && ES.Thread == EL.Thread &&
           ES.IndexInThread < EL.IndexInThread;
  }

  /// Constrains the order so that \p Writer (-1 = initial memory) is the
  /// visibility-maximal same-address store for load \p L.
  bool applyAssignment(int L, int Writer, ReachGraph &G,
                       std::vector<Disjunct> &Pending) const {
    const std::vector<int> &Stores = SameAddrStores[L];
    if (Writer < 0) {
      // Axiom 2 (initial memory): no same-address store may be visible.
      for (int S : Stores) {
        if (forwards(S, L) || !requireEdge(G, L, S))
          return false;
      }
      return true;
    }
    if (!forwards(Writer, L) && !requireEdge(G, Writer, L))
      return false;
    for (int S : Stores) {
      if (S == Writer)
        continue;
      if (forwards(S, L)) {
        // Always visible: it must sit below the chosen writer.
        if (!requireEdge(G, S, Writer))
          return false;
      } else if (!addDisjunct(G, Pending, S, Writer, L, S)) {
        // Forbidden: Writer < S < L. Complement: S < Writer or L < S.
        return false;
      }
    }
    return true;
  }

  bool budget() {
    if (++Explored > Opts.MaxAssignments) {
      if (Out.Error.empty())
        fail(OracleSkip::BudgetExceeded);
      return false;
    }
    return true;
  }

  void searchLoads(size_t Idx, const ReachGraph &G,
                   const std::vector<Disjunct> &Pending);
  void leaf(const ReachGraph &G, const std::vector<Disjunct> &Pending);
  void evaluate();

  const FlatProgram &P;
  const ModelParams &Traits;
  ReadsFromResult &Out;
  const ReadsFromOptions &Opts;
  std::vector<Value> &DefVals; // shared choice/const memo (static part)
  std::vector<char> &DefKnown;

  std::vector<Access> Accesses;   // executed accesses only
  std::vector<int> AccessOfEvent; // event -> access index or -1
  std::vector<int> SuperOf;       // access -> supernode
  std::vector<int> RankOf;        // access -> rank inside its supernode
  std::vector<int> Loads;         // executed load access indices
  std::vector<std::vector<int>> SameAddrStores; // per access (loads used)
  ReachGraph Base;                // closure of the static edges
  bool ChoiceDead = false;        // static edges already cyclic

  std::vector<int> RfOf;   // load access -> writer access, -1 = init
  uint64_t &Explored;      // leaves + branch nodes, across all choices

  // Per-leaf evaluation state.
  std::vector<Value> DynVals;
  std::vector<char> DynState; // 0 = unknown, 1 = known, 2 = in progress
};

bool RfSearch::evalStatic(ValueId Id, Value &Out_) {
  if (Id < 0) {
    Out_ = Value::undef();
    return true;
  }
  if (DefKnown[Id]) {
    Out_ = DefVals[Id];
    return true;
  }
  const FlatDef &D = P.def(Id);
  Value V;
  switch (D.K) {
  case FlatDef::Kind::Const:
    V = D.Val;
    break;
  case FlatDef::Kind::Choice:
    V = DefVals[Id]; // bound by the choice enumeration
    break;
  case FlatDef::Kind::LoadVal:
    return false; // not static
  case FlatDef::Kind::Op: {
    std::vector<Value> Args;
    Args.reserve(D.Operands.size());
    for (ValueId O : D.Operands) {
      Args.emplace_back();
      if (!evalStatic(O, Args.back()))
        return false;
    }
    V = lsl::evalPrimOp(D.Op, Args, D.Imm);
    break;
  }
  }
  DefVals[Id] = V;
  DefKnown[Id] = 1;
  Out_ = V;
  return true;
}

bool RfSearch::prepare() {
  AccessOfEvent.assign(P.Events.size(), -1);

  // Collect the executed accesses. Guards and addresses must be static.
  for (size_t I = 0; I < P.Events.size(); ++I) {
    const FlatEvent &E = P.Events[I];
    Value G;
    if (!evalStatic(E.Guard, G))
      return fail(OracleSkip::GuardDependsOnLoad);
    if (G.isUndef() || !G.isTruthy())
      continue;
    if (!E.isAccess())
      continue;
    Value Addr;
    if (!evalStatic(E.Addr, Addr))
      return fail(OracleSkip::AddressDependsOnLoad);
    Access A;
    A.Event = static_cast<int>(I);
    A.IsStore = E.isStore();
    A.Addr = Addr;
    AccessOfEvent[I] = static_cast<int>(Accesses.size());
    Accesses.push_back(A);
  }
  if (Accesses.size() > MaxNodes)
    return fail(OracleSkip::TooManyAccesses);

  // Within-bounds semantics: a statically-exceeded loop bound means the
  // program was not fully unrolled - outside the supported fragment.
  for (const FlatBoundMark &M : P.BoundMarks) {
    Value G;
    if (!evalStatic(M.Guard, G))
      return fail(OracleSkip::BoundMarkDependsOnLoad);
    if (!G.isUndef() && G.isTruthy())
      return fail(OracleSkip::ExceedsLoopBounds);
  }

  int N = static_cast<int>(Accesses.size());

  // Supernode contraction. Contiguity clusters (operation invocations
  // under Serial, atomic-block instances otherwise) occupy consecutive
  // positions of <M, and their interior order is statically total (atomic
  // interiors are chained by program order below; serial invocations are
  // fully ordered because Serial implies full program order), so each
  // cluster collapses to one node ranked by program order and the
  // contiguity constraint holds by construction.
  {
    std::map<int, int> ClusterSuper;
    std::map<int, int> ClusterRank;
    SuperOf.assign(N, -1);
    RankOf.assign(N, 0);
    int NumSuper = 0;
    for (int A = 0; A < N; ++A) {
      const FlatEvent &E = P.Events[Accesses[A].Event];
      int Raw = Traits.SerialOps ? E.OpInvId : E.AtomicId;
      if (Raw < 0) {
        SuperOf[A] = NumSuper++;
        continue;
      }
      auto [It, New] = ClusterSuper.emplace(Raw, NumSuper);
      if (New)
        ++NumSuper;
      SuperOf[A] = It->second;
      RankOf[A] = ClusterRank[Raw]++;
    }
    Base.init(NumSuper);
  }

  auto addStatic = [&](int A, int B) {
    if (A != B && !requireEdge(Base, A, B))
      ChoiceDead = true; // no consistent order exists for this choice
  };

  // Static edges. (1) The init thread precedes everything, and runs
  // sequentially (see AxiomaticEnumerator: chaining the init stores only
  // removes redundant permutations).
  if (P.ThreadZeroIsInit) {
    int PrevInit = -1;
    for (int A = 0; A < N; ++A) {
      if (P.Events[Accesses[A].Event].Thread != 0)
        continue;
      if (PrevInit >= 0)
        addStatic(PrevInit, A);
      PrevInit = A;
      for (int B = 0; B < N; ++B)
        if (P.Events[Accesses[B].Event].Thread != 0)
          addStatic(A, B);
    }
  }

  // (2) Program order, per edge kind; (3) Relaxed axiom 1 (same-address
  // edges ending in a store); (4) atomic-block interiors.
  for (int A = 0; A < N; ++A) {
    const FlatEvent &EA = P.Events[Accesses[A].Event];
    for (int B = A + 1; B < N; ++B) {
      const FlatEvent &EB = P.Events[Accesses[B].Event];
      if (EA.Thread != EB.Thread)
        continue;
      bool InOrder = EA.IndexInThread < EB.IndexInThread;
      int First = InOrder ? A : B, Second = InOrder ? B : A;
      const FlatEvent &EF = P.Events[Accesses[First].Event];
      const FlatEvent &ES = P.Events[Accesses[Second].Event];
      if (Traits.ordersEdge(EF.isLoad(), ES.isLoad()))
        addStatic(First, Second);
      if (ES.isStore() && Accesses[First].Addr == Accesses[Second].Addr)
        addStatic(First, Second);
      if (EF.AtomicId >= 0 && EF.AtomicId == ES.AtomicId)
        addStatic(First, Second);
    }
  }

  // (5) Fences: executed X-Y fences order earlier X accesses before later
  // Y accesses of the same thread.
  for (size_t I = 0; I < P.Events.size(); ++I) {
    const FlatEvent &EF = P.Events[I];
    if (EF.K != FlatEvent::Kind::Fence)
      continue;
    Value G;
    if (!evalStatic(EF.Guard, G))
      return fail(OracleSkip::FenceGuardDependsOnLoad);
    if (G.isUndef() || !G.isTruthy())
      continue;
    bool XIsLoad = EF.FenceK == lsl::FenceKind::LoadLoad ||
                   EF.FenceK == lsl::FenceKind::LoadStore;
    bool YIsLoad = EF.FenceK == lsl::FenceKind::LoadLoad ||
                   EF.FenceK == lsl::FenceKind::StoreLoad;
    for (int A = 0; A < N; ++A) {
      const FlatEvent &EA = P.Events[Accesses[A].Event];
      if (EA.Thread != EF.Thread || EA.IndexInThread > EF.IndexInThread ||
          EA.isLoad() != XIsLoad)
        continue;
      for (int B = 0; B < N; ++B) {
        const FlatEvent &EB = P.Events[Accesses[B].Event];
        if (EB.Thread != EF.Thread || EB.IndexInThread < EF.IndexInThread ||
            EB.isLoad() != YIsLoad)
          continue;
        addStatic(A, B);
      }
    }
  }

  // Reads-from candidates.
  SameAddrStores.assign(N, {});
  for (int A = 0; A < N; ++A) {
    if (Accesses[A].IsStore)
      continue;
    Loads.push_back(A);
    for (int B = 0; B < N; ++B)
      if (Accesses[B].IsStore && Accesses[B].Addr == Accesses[A].Addr)
        SameAddrStores[A].push_back(B);
  }
  return true;
}

void RfSearch::searchLoads(size_t Idx, const ReachGraph &G,
                           const std::vector<Disjunct> &Pending) {
  if (!Out.Error.empty())
    return;
  if (Idx == Loads.size()) {
    leaf(G, Pending);
    return;
  }
  int L = Loads[Idx];
  // Initial memory first, then the stores in access order; observation
  // sets are order-insensitive, but keep the walk deterministic.
  for (int C = -1; C < static_cast<int>(SameAddrStores[L].size()); ++C) {
    int Writer = C < 0 ? -1 : SameAddrStores[L][C];
    ReachGraph G2 = G;
    std::vector<Disjunct> P2 = Pending;
    if (!applyAssignment(L, Writer, G2, P2) || !saturate(G2, P2))
      continue; // this writer has no consistent completion
    RfOf[L] = Writer;
    searchLoads(Idx + 1, G2, P2);
    if (!Out.Error.empty())
      return;
  }
}

void RfSearch::leaf(const ReachGraph &G, const std::vector<Disjunct> &Pending) {
  if (!budget())
    return;
  if (!Pending.empty() && !resolveOpen(G, Pending))
    return; // open disjunctions have no consistent resolution (or budget)
  ++Out.Assignments;
  evaluate();
}

bool RfSearch::evalDyn(ValueId Id, Value &Out_) {
  if (Id < 0) {
    Out_ = Value::undef();
    return true;
  }
  if (DefKnown[Id]) { // static part already memoized
    Out_ = DefVals[Id];
    return true;
  }
  if (DynState[Id] == 1) {
    Out_ = DynVals[Id];
    return true;
  }
  if (DynState[Id] == 2)
    return false; // circular value dependency (thin-air shape)
  DynState[Id] = 2;
  const FlatDef &D = P.def(Id);
  Value V;
  bool Ok = true;
  switch (D.K) {
  case FlatDef::Kind::Const:
    V = D.Val;
    break;
  case FlatDef::Kind::Choice:
    V = DefVals[Id]; // bound by the choice enumeration
    break;
  case FlatDef::Kind::LoadVal: {
    int A = D.EventIndex >= 0 ? AccessOfEvent[D.EventIndex] : -1;
    if (A < 0)
      V = Value::undef(); // skipped load (dead guard)
    else if (RfOf[A] < 0)
      V = Value::undef(); // axiom 2: initial memory contents
    else
      Ok = evalDyn(P.Events[Accesses[RfOf[A]].Event].Data, V);
    break;
  }
  case FlatDef::Kind::Op: {
    std::vector<Value> Args;
    Args.reserve(D.Operands.size());
    for (ValueId O : D.Operands) {
      Args.emplace_back();
      if (!evalDyn(O, Args.back())) {
        Ok = false;
        break;
      }
    }
    if (Ok)
      V = lsl::evalPrimOp(D.Op, Args, D.Imm);
    break;
  }
  }
  if (!Ok) {
    DynState[Id] = 0;
    return false;
  }
  DynVals[Id] = V;
  DynState[Id] = 1;
  Out_ = V;
  return true;
}

void RfSearch::evaluate() {
  DynVals.assign(P.Defs.size(), Value::undef());
  DynState.assign(P.Defs.size(), 0);

  bool Error = false;
  for (const FlatCheck &C : P.Checks) {
    Value G;
    if (!evalDyn(C.Guard, G)) {
      fail(OracleSkip::CyclicValueDependency);
      return;
    }
    if (G.isUndef() || !G.isTruthy())
      continue;
    Value Cond;
    if (!evalDyn(C.Cond, Cond)) {
      fail(OracleSkip::CyclicValueDependency);
      return;
    }
    switch (C.K) {
    case FlatCheck::Kind::Assume:
      if (Cond.isUndef()) {
        Error = true;
        break;
      }
      if (!Cond.isTruthy())
        return; // infeasible execution
      break;
    case FlatCheck::Kind::Assert:
      if (Cond.isUndef() || !Cond.isTruthy())
        Error = true;
      break;
    case FlatCheck::Kind::CheckAddr:
      if (!Cond.isPtr())
        Error = true;
      break;
    case FlatCheck::Kind::CheckBranch:
    case FlatCheck::Kind::CheckDef:
      if (Cond.isUndef())
        Error = true;
      break;
    }
  }

  RefObservation Obs;
  Obs.Error = Error;
  for (const FlatObservation &O : P.Observations) {
    Obs.Values.emplace_back();
    if (!evalDyn(O.Val, Obs.Values.back())) {
      fail(OracleSkip::CyclicValueDependency);
      return;
    }
  }
  Out.Observations.insert(std::move(Obs));
}

/// Enumerates the Choice assignments, then the reads-from assignments for
/// each (mirrors the enumerator's ChoiceEnumerator).
class RfChoiceEnumerator {
public:
  RfChoiceEnumerator(const FlatProgram &P, const ReadsFromOptions &Opts)
      : P(P), Traits(Opts.Model), Opts(Opts) {
    for (size_t I = 0; I < P.Defs.size(); ++I)
      if (P.Defs[I].K == FlatDef::Kind::Choice)
        Choices.push_back(static_cast<ValueId>(I));
  }

  ReadsFromResult run() {
    recurse(0);
    if (Out.Error.empty())
      Out.Ok = true;
    return std::move(Out);
  }

private:
  void recurse(size_t Idx) {
    if (!Out.Error.empty())
      return;
    if (Idx == Choices.size()) {
      std::vector<Value> DefVals(P.Defs.size(), Value::undef());
      std::vector<char> DefKnown(P.Defs.size(), 0);
      for (ValueId C : Choices) {
        DefVals[C] = Bound[C];
        DefKnown[C] = 1;
      }
      RfSearch S(P, Traits, Out, Opts, DefVals, DefKnown, Explored);
      if (!S.prepare())
        return;
      S.run();
      return;
    }
    ValueId Id = Choices[Idx];
    for (const Value &Option : P.Defs[Id].Options) {
      Bound[Id] = Option;
      recurse(Idx + 1);
    }
  }

  const FlatProgram &P;
  ModelParams Traits;
  ReadsFromOptions Opts;
  std::vector<ValueId> Choices;
  std::map<ValueId, Value> Bound;
  ReadsFromResult Out;
  uint64_t Explored = 0;
};

} // namespace

ReadsFromResult
checkfence::memmodel::checkReadsFrom(const FlatProgram &P,
                                     const ReadsFromOptions &Opts) {
  RfChoiceEnumerator E(P, Opts);
  return E.run();
}
