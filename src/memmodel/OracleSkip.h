//===--- OracleSkip.h - typed oracle ineligibility reasons ------*- C++ -*-==//
//
// Part of the CheckFence reproduction (PLDI'07).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The structured reason an execution oracle (AxiomaticEnumerator,
/// ReadsFromOracle) declined to decide a program. Callers used to infer
/// "fragment skip" from the Ok bool plus string matching on Error; the
/// enum lets skip accounting (explore reports, tests) branch on the cause
/// while oracleSkipMessage() keeps the user-facing strings canonical —
/// both oracles emit identical text for the same reason, so differential
/// harnesses can compare skip records across oracles byte-for-byte.
///
//===----------------------------------------------------------------------===//

#ifndef CHECKFENCE_MEMMODEL_ORACLESKIP_H
#define CHECKFENCE_MEMMODEL_ORACLESKIP_H

namespace checkfence {
namespace memmodel {

enum class OracleSkip {
  None,                    ///< oracle ran to completion (Ok may still be set)
  GuardDependsOnLoad,      ///< an event guard is not statically evaluable
  AddressDependsOnLoad,    ///< an access address is not statically evaluable
  FenceGuardDependsOnLoad, ///< a fence guard is not statically evaluable
  BoundMarkDependsOnLoad,  ///< a loop-bound guard is not statically evaluable
  ExceedsLoopBounds,       ///< the unrolling statically overflows its bounds
  TooManyAccesses,         ///< > 62 executed accesses (bitmask search limit)
  BudgetExceeded,          ///< the order/assignment exploration budget ran out
  CyclicValueDependency,   ///< a thin-air value cycle (undecidable here)
};

/// The canonical user-facing message for \p Reason; empty for None.
inline const char *oracleSkipMessage(OracleSkip Reason) {
  switch (Reason) {
  case OracleSkip::None:
    return "";
  case OracleSkip::GuardDependsOnLoad:
    return "guard depends on a load";
  case OracleSkip::AddressDependsOnLoad:
    return "address depends on a load";
  case OracleSkip::FenceGuardDependsOnLoad:
    return "fence guard depends on a load";
  case OracleSkip::BoundMarkDependsOnLoad:
    return "loop-bound mark depends on a load";
  case OracleSkip::ExceedsLoopBounds:
    return "program exceeds its loop bounds";
  case OracleSkip::TooManyAccesses:
    return "too many accesses for the bitmask search";
  case OracleSkip::BudgetExceeded:
    return "search budget exceeded";
  case OracleSkip::CyclicValueDependency:
    return "cyclic value dependency";
  }
  return "";
}

} // namespace memmodel
} // namespace checkfence

#endif // CHECKFENCE_MEMMODEL_ORACLESKIP_H
