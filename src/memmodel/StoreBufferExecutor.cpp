//===--- StoreBufferExecutor.cpp - operational TSO/PSO oracle ---------------===//
//
// Part of the CheckFence reproduction (PLDI'07).
//
//===----------------------------------------------------------------------===//

#include "memmodel/StoreBufferExecutor.h"

#include <map>
#include <set>
#include <string>

using namespace checkfence;
using namespace checkfence::memmodel;
using namespace checkfence::trans;

using lsl::Value;

namespace {

/// One store-buffer slot: a pending store, or a store-store barrier.
struct BufferEntry {
  bool IsBarrier = false;
  /// Set by a store-load fence: the thread's loads stall until this entry
  /// drains.
  bool BlocksLoads = false;
  Value Addr;
  Value Data;
};

struct ThreadState {
  size_t Pos = 0; ///< next event index within the thread
  std::vector<BufferEntry> Buffer;
};

class Machine {
public:
  Machine(const FlatProgram &P, const StoreBufferOptions &Opts)
      // The buffer drains FIFO exactly when the model preserves
      // store-store program order (TSO); PSO drains per-address.
      : P(P), Opts(Opts), Fifo(Opts.Model.OrderStoreStore) {
    ThreadEvents.resize(P.NumThreads);
    for (size_t I = 0; I < P.Events.size(); ++I)
      ThreadEvents[P.Events[I].Thread].push_back(static_cast<int>(I));
    for (size_t I = 0; I < P.Defs.size(); ++I)
      if (P.Defs[I].K == FlatDef::Kind::Choice)
        ChoiceDefs.push_back(static_cast<ValueId>(I));
  }

  StoreBufferResult run() {
    for (const FlatEvent &E : P.Events) {
      if (E.isAccess() && E.AtomicId >= 0) {
        Result.Error = "atomic blocks are not supported";
        return std::move(Result);
      }
    }
    State Init;
    Init.DefVals.assign(P.Defs.size(), Value::undef());
    Init.DefKnown.assign(P.Defs.size(), 0);
    Init.Threads.resize(P.NumThreads);
    enumerateChoices(Init, 0);
    if (Result.Error.empty())
      Result.Ok = true;
    return std::move(Result);
  }

private:
  struct State {
    std::vector<ThreadState> Threads;
    std::map<Value, Value> Memory;
    std::vector<Value> DefVals;
    std::vector<char> DefKnown;
  };

  /// Canonical serialization for the visited-state memo. Everything a
  /// future step can observe is covered: thread positions, buffers,
  /// memory, and the values produced so far (load results; constants and
  /// ops are deterministic, choices are fixed per enumeration).
  std::string signature(const State &S) const {
    std::string Sig;
    for (const ThreadState &T : S.Threads) {
      Sig += std::to_string(T.Pos);
      Sig += 't';
      for (const BufferEntry &B : T.Buffer) {
        Sig += B.IsBarrier ? '|' : (B.BlocksLoads ? '!' : '.');
        if (!B.IsBarrier) {
          Sig += B.Addr.str();
          Sig += '=';
          Sig += B.Data.str();
        }
        Sig += ';';
      }
      Sig += '#';
    }
    for (const auto &[Addr, Val] : S.Memory) {
      Sig += Addr.str();
      Sig += '=';
      Sig += Val.str();
      Sig += ';';
    }
    Sig += '@';
    for (size_t I = 0; I < P.Defs.size(); ++I) {
      if (P.Defs[I].K != FlatDef::Kind::LoadVal || !S.DefKnown[I])
        continue;
      Sig += std::to_string(I);
      Sig += '=';
      Sig += S.DefVals[I].str();
      Sig += ';';
    }
    return Sig;
  }

  void enumerateChoices(State &S, size_t Idx) {
    if (Idx == ChoiceDefs.size()) {
      Visited.clear();
      dfs(S);
      return;
    }
    ValueId Id = ChoiceDefs[Idx];
    for (const Value &Option : P.Defs[Id].Options) {
      S.DefVals[Id] = Option;
      S.DefKnown[Id] = 1;
      enumerateChoices(S, Idx + 1);
    }
  }

  Value eval(State &S, ValueId Id) {
    if (Id < 0)
      return Value::undef();
    if (S.DefKnown[Id])
      return S.DefVals[Id];
    const FlatDef &D = P.def(Id);
    Value V;
    switch (D.K) {
    case FlatDef::Kind::Const:
      V = D.Val;
      break;
    case FlatDef::Kind::Choice:
    case FlatDef::Kind::LoadVal:
      return Value::undef(); // choice bound upfront; load not yet issued
    case FlatDef::Kind::Op: {
      std::vector<Value> Args;
      Args.reserve(D.Operands.size());
      for (ValueId O : D.Operands)
        Args.push_back(eval(S, O));
      V = lsl::evalPrimOp(D.Op, Args, D.Imm);
      break;
    }
    }
    S.DefVals[Id] = V;
    S.DefKnown[Id] = 1;
    return V;
  }

  bool guardHolds(State &S, ValueId Guard) {
    Value G = eval(S, Guard);
    return !G.isUndef() && G.isTruthy();
  }

  /// Indices of buffer entries eligible to drain next.
  std::vector<size_t> drainable(const ThreadState &T) const {
    std::vector<size_t> Out;
    for (size_t I = 0; I < T.Buffer.size(); ++I) {
      const BufferEntry &E = T.Buffer[I];
      if (E.IsBarrier)
        continue;
      bool Blocked = false;
      for (size_t J = 0; J < I && !Blocked; ++J) {
        const BufferEntry &Older = T.Buffer[J];
        Blocked = Older.IsBarrier || (!Older.IsBarrier &&
                                      !Older.Addr.isUndef() &&
                                      Older.Addr == E.Addr) ||
                  Fifo;
        // Undefined addresses conservatively block everything behind them.
        Blocked = Blocked || Older.Addr.isUndef();
      }
      if (!Blocked)
        Out.push_back(I);
      if (Fifo)
        break; // only the head can be eligible
    }
    return Out;
  }

  void drain(State &S, int T, size_t Index) {
    ThreadState &TS = S.Threads[T];
    BufferEntry E = TS.Buffer[Index];
    TS.Buffer.erase(TS.Buffer.begin() + Index);
    if (!E.Addr.isUndef())
      S.Memory[E.Addr] = E.Data;
    // Leading barriers evaporate once nothing precedes them.
    while (!TS.Buffer.empty() && TS.Buffer.front().IsBarrier)
      TS.Buffer.erase(TS.Buffer.begin());
  }

  /// Whether thread \p T's next instruction can execute now; loads stall
  /// behind a pending store-load fence.
  bool instructionEnabled(State &S, int T) const {
    const ThreadState &TS = S.Threads[T];
    if (TS.Pos >= ThreadEvents[T].size())
      return false;
    const FlatEvent &E = P.Events[ThreadEvents[T][TS.Pos]];
    if (E.isLoad())
      for (const BufferEntry &B : TS.Buffer)
        if (B.BlocksLoads)
          return false;
    return true;
  }

  /// Executes the next instruction of thread \p T in place.
  void executeInstruction(State &S, int T) {
    ThreadState &TS = S.Threads[T];
    const FlatEvent &E = P.Events[ThreadEvents[T][TS.Pos]];
    ++TS.Pos;
    if (!guardHolds(S, E.Guard))
      return;
    switch (E.K) {
    case FlatEvent::Kind::Load: {
      Value Addr = eval(S, E.Addr);
      Value Loaded = Value::undef();
      if (Addr.isPtr()) {
        bool Forwarded = false;
        for (size_t I = TS.Buffer.size(); I-- > 0;) {
          const BufferEntry &B = TS.Buffer[I];
          if (!B.IsBarrier && B.Addr == Addr) {
            Loaded = B.Data;
            Forwarded = true;
            break;
          }
        }
        if (!Forwarded) {
          auto It = S.Memory.find(Addr);
          if (It != S.Memory.end())
            Loaded = It->second;
        }
      }
      S.DefVals[E.Data] = Loaded;
      S.DefKnown[E.Data] = 1;
      break;
    }
    case FlatEvent::Kind::Store: {
      BufferEntry B;
      B.Addr = eval(S, E.Addr);
      B.Data = eval(S, E.Data);
      TS.Buffer.push_back(B);
      break;
    }
    case FlatEvent::Kind::Fence:
      switch (E.FenceK) {
      case lsl::FenceKind::StoreStore:
        if (!Fifo && !TS.Buffer.empty()) {
          BufferEntry B;
          B.IsBarrier = true;
          TS.Buffer.push_back(B);
        }
        break;
      case lsl::FenceKind::StoreLoad:
        for (BufferEntry &B : TS.Buffer)
          if (!B.IsBarrier)
            B.BlocksLoads = true;
        break;
      case lsl::FenceKind::LoadLoad:
      case lsl::FenceKind::LoadStore:
        break; // loads issue in program order on this machine
      }
      break;
    }
  }

  void dfs(State &S) {
    if (++Steps > Opts.MaxSteps) {
      Result.Error = "step budget exceeded";
      return;
    }
    if (!Result.Error.empty())
      return;
    if (!Visited.insert(signature(S)).second)
      return; // state already explored

    // The init thread runs to completion (with full drains) first.
    if (P.ThreadZeroIsInit && P.NumThreads > 0) {
      ThreadState &T0 = S.Threads[0];
      if (T0.Pos < ThreadEvents[0].size() || !T0.Buffer.empty()) {
        State S2 = S;
        while (S2.Threads[0].Pos < ThreadEvents[0].size())
          executeInstruction(S2, 0);
        while (!S2.Threads[0].Buffer.empty()) {
          std::vector<size_t> D = drainable(S2.Threads[0]);
          if (D.empty())
            break; // only barriers remain; they evaporate in drain()
          drain(S2, 0, D[0]);
        }
        dfs(S2);
        return;
      }
    }

    bool Any = false;
    for (int T = P.ThreadZeroIsInit ? 1 : 0; T < P.NumThreads; ++T) {
      if (instructionEnabled(S, T)) {
        Any = true;
        State S2 = S;
        executeInstruction(S2, T);
        dfs(S2);
      }
      for (size_t Index : drainable(S.Threads[T])) {
        Any = true;
        State S2 = S;
        drain(S2, T, Index);
        dfs(S2);
      }
    }
    if (!Any)
      finalize(S);
  }

  void finalize(State &S) {
    // A stuck thread (load blocked forever) cannot happen: drains are
    // always eventually enabled. Unfinished threads mean a real deadlock
    // in the input, which the flat programs here never contain.
    for (int T = 0; T < P.NumThreads; ++T)
      if (S.Threads[T].Pos < ThreadEvents[T].size())
        return;

    for (const FlatBoundMark &M : P.BoundMarks)
      if (guardHolds(S, M.Guard))
        return; // within-bounds semantics

    bool Error = false;
    for (const FlatCheck &C : P.Checks) {
      if (!guardHolds(S, C.Guard))
        continue;
      Value Cond = eval(S, C.Cond);
      switch (C.K) {
      case FlatCheck::Kind::Assume:
        if (Cond.isUndef()) {
          Error = true;
          break;
        }
        if (!Cond.isTruthy())
          return;
        break;
      case FlatCheck::Kind::Assert:
        if (Cond.isUndef() || !Cond.isTruthy())
          Error = true;
        break;
      case FlatCheck::Kind::CheckAddr:
        if (!Cond.isPtr())
          Error = true;
        break;
      case FlatCheck::Kind::CheckBranch:
      case FlatCheck::Kind::CheckDef:
        if (Cond.isUndef())
          Error = true;
        break;
      }
    }

    RefObservation Obs;
    Obs.Error = Error;
    for (const FlatObservation &O : P.Observations)
      Obs.Values.push_back(eval(S, O.Val));
    Result.Observations.insert(std::move(Obs));
  }

  const FlatProgram &P;
  StoreBufferOptions Opts;
  bool Fifo;
  std::vector<std::vector<int>> ThreadEvents;
  std::vector<ValueId> ChoiceDefs;
  StoreBufferResult Result;
  std::set<std::string> Visited;
  uint64_t Steps = 0;
};

} // namespace

StoreBufferResult
checkfence::memmodel::enumerateStoreBuffer(const FlatProgram &P,
                                           const StoreBufferOptions &Opts) {
  Machine M(P, Opts);
  return M.run();
}
