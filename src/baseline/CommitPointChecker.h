//===--- CommitPointChecker.h - the CAV'06 baseline method ------*- C++ -*-==//
//
// Part of the CheckFence reproduction (PLDI'07).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The *commit point method* of the authors' earlier case study [4]
/// (CAV'06), reimplemented as the Fig. 12 baseline. Instead of mining an
/// observation set, it checks each execution directly against the serial
/// semantics evaluated at the operations' annotated commit points:
///
///   * the implementation is encoded under the target memory model;
///   * a *shadow* reference implementation is encoded in the same formula
///     under the Serial model, with equal operation arguments;
///   * the shadow's serialization order is constrained to equal the
///     implementation's commit-point order (the <M order of the commit
///     accesses designated by commit() markers in the source);
///   * the solver searches for an execution whose results differ from the
///     shadow's. Unsat means every execution matches its commit-order
///     serialization.
///
/// Compared to the observation-set method this needs commit-point
/// annotations (which some algorithms, like the lazy list, do not have;
/// Sec. 5) and one monolithic solver call over a doubled formula.
///
//===----------------------------------------------------------------------===//

#ifndef CHECKFENCE_BASELINE_COMMITPOINTCHECKER_H
#define CHECKFENCE_BASELINE_COMMITPOINTCHECKER_H

#include "checker/CheckFence.h"
#include "harness/TestSpec.h"

#include <optional>
#include <string>

namespace checkfence {
namespace baseline {

struct CommitPointResult {
  bool Ok = false;
  std::string Error;
  bool Pass = false;
  std::optional<checker::Observation> CexObservation;
  // Statistics comparable to the observation-set method's.
  double EncodeSeconds = 0;
  double SolveSeconds = 0;
  double TotalSeconds = 0;
  int SatVars = 0;
  uint64_t SatClauses = 0;
};

struct CommitPointOptions {
  memmodel::ModelParams Model = memmodel::ModelParams::relaxed();
  encode::OrderMode Order = encode::OrderMode::Pairwise;
  trans::LoopBounds Bounds; ///< unroll bounds (from a prior run's probe)
  int64_t ConflictBudget = -1;
};

/// Runs the commit-point check: \p ImplProg must contain commit() markers
/// (compile with the COMMIT_POINTS define); \p RefProg provides the serial
/// semantics. Both must define the same test threads \p ThreadProcs.
CommitPointResult
checkCommitPoints(const lsl::Program &ImplProg, const lsl::Program &RefProg,
                  const std::vector<std::string> &ThreadProcs,
                  const CommitPointOptions &Opts);

/// Convenience wrapper: compiles \p ImplSource (with COMMIT_POINTS) and
/// \p RefSource, builds \p Test, runs the check.
CommitPointResult runCommitPointTest(const std::string &ImplSource,
                                     const std::string &RefSource,
                                     const harness::TestSpec &Test,
                                     const CommitPointOptions &Opts);

} // namespace baseline
} // namespace checkfence

#endif // CHECKFENCE_BASELINE_COMMITPOINTCHECKER_H
