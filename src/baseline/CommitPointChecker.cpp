//===--- CommitPointChecker.cpp - the CAV'06 baseline method ----------------===//
//
// Part of the CheckFence reproduction (PLDI'07).
//
//===----------------------------------------------------------------------===//

#include "baseline/CommitPointChecker.h"

#include "frontend/Lowering.h"
#include "support/Timing.h"

#include <cassert>

using namespace checkfence;
using namespace checkfence::baseline;
using namespace checkfence::encode;
using namespace checkfence::trans;

namespace {

/// One program encoded into a shared CNF: flatten, range-analyze, encode
/// values and memory model, then assumes/asserts/bounds.
class SubEncoding {
public:
  FlatProgram Flat;
  RangeInfo Ranges;
  std::unique_ptr<ValueEncoder> VE;
  std::unique_ptr<memmodel::MemoryModelEncoder> MME;
  Lit ErrorLit;

  bool build(CnfBuilder &Cnf, const lsl::Program &Prog,
             const std::vector<std::string> &Threads,
             const LoopBounds &Bounds, memmodel::ModelParams Model,
             OrderMode Order, std::string &Err) {
    Flattener F(Prog, Flat, Bounds);
    for (size_t T = 0; T < Threads.size(); ++T) {
      if (!F.flattenThread(Threads[T], static_cast<int>(T))) {
        Err = "flattening failed: " + F.error();
        return false;
      }
    }
    Ranges = analyzeRanges(Flat);
    EncodeOptions EO;
    VE = std::make_unique<ValueEncoder>(Cnf, Flat, Ranges, EO);
    if (!VE->encodeAll()) {
      Err = "value encoding failed: " + VE->error();
      return false;
    }
    MME = std::make_unique<memmodel::MemoryModelEncoder>(*VE, Flat, Ranges,
                                                         Model, Order, EO);
    if (!MME->encode()) {
      Err = "memory model encoding failed";
      return false;
    }

    // Side conditions: assumes are hard, asserts/type checks feed the
    // error flag, loop bounds are assumed within range.
    std::vector<Lit> ErrorTerms;
    for (const FlatCheck &C : Flat.Checks) {
      Lit G = VE->guardLit(C.Guard);
      const EncValue &E = VE->value(C.Cond);
      Lit UndefL = Cnf.andLit(~E.IsInt, ~E.IsPtr);
      switch (C.K) {
      case FlatCheck::Kind::Assume:
        Cnf.addClause(~G, UndefL, VE->truthyLit(E));
        ErrorTerms.push_back(Cnf.andLit(G, UndefL));
        break;
      case FlatCheck::Kind::Assert:
        ErrorTerms.push_back(
            Cnf.andLit(G, Cnf.orLit(UndefL, ~VE->truthyLit(E))));
        break;
      case FlatCheck::Kind::CheckAddr:
        ErrorTerms.push_back(Cnf.andLit(G, ~E.IsPtr));
        break;
      case FlatCheck::Kind::CheckBranch:
      case FlatCheck::Kind::CheckDef:
        ErrorTerms.push_back(Cnf.andLit(G, UndefL));
        break;
      }
    }
    ErrorLit = Cnf.orLits(ErrorTerms);
    for (const FlatBoundMark &M : Flat.BoundMarks)
      Cnf.addClause(~VE->guardLit(M.Guard));
    return true;
  }

  /// First access index of invocation \p Inv, or -1.
  int firstAccessOf(int Inv) const {
    for (size_t E = 0; E < Flat.Events.size(); ++E)
      if (Flat.Events[E].isAccess() && Flat.Events[E].OpInvId == Inv)
        return MME->accessOfEvent(static_cast<int>(E));
    return -1;
  }
};

} // namespace

CommitPointResult checkfence::baseline::checkCommitPoints(
    const lsl::Program &ImplProg, const lsl::Program &RefProg,
    const std::vector<std::string> &ThreadProcs,
    const CommitPointOptions &Opts) {
  CommitPointResult Result;
  Timer Total;
  Timer EncodeTimer;

  sat::Solver Solver;
  Solver.ConflictBudget = Opts.ConflictBudget;
  CnfBuilder Cnf(Solver);

  SubEncoding Impl, Ref;
  if (!Impl.build(Cnf, ImplProg, ThreadProcs, Opts.Bounds, Opts.Model,
                  Opts.Order, Result.Error))
    return Result;
  if (!Ref.build(Cnf, RefProg, ThreadProcs, /*Bounds=*/{},
                 memmodel::ModelParams::serial(), Opts.Order, Result.Error))
    return Result;

  if (Impl.Flat.CommitMarks.empty()) {
    Result.Error = "implementation has no commit() annotations (compile "
                   "with the COMMIT_POINTS define)";
    return Result;
  }
  if (Impl.Flat.Observations.size() != Ref.Flat.Observations.size()) {
    Result.Error = "observation layouts differ between implementation and "
                   "reference";
    return Result;
  }

  // Commit-access selectors: per invocation, the last executed commit mark
  // designates the commit access.
  std::map<int, std::vector<std::pair<Lit, int>>> Marks; // inv -> (sel, acc)
  {
    std::map<int, std::vector<const FlatCommitMark *>> ByInv;
    for (const FlatCommitMark &M : Impl.Flat.CommitMarks)
      ByInv[M.OpInvId].push_back(&M);
    for (auto &[Inv, Ms] : ByInv) {
      for (size_t I = 0; I < Ms.size(); ++I) {
        if (Ms[I]->PrecedingEvent < 0) {
          Result.Error = "commit() marker with no preceding access";
          return Result;
        }
        std::vector<Lit> Sel{Impl.VE->guardLit(Ms[I]->Guard)};
        for (size_t J = I + 1; J < Ms.size(); ++J)
          Sel.push_back(~Impl.VE->guardLit(Ms[J]->Guard));
        int Acc = Impl.MME->accessOfEvent(Ms[I]->PrecedingEvent);
        assert(Acc >= 0 && "commit access is not a load/store");
        Marks[Inv].push_back({Cnf.andLits(Sel), Acc});
      }
    }
  }

  // Tie the shadow's serialization order to the commit order.
  std::vector<int> CommittedInvs;
  for (const auto &[Inv, Ms] : Marks)
    CommittedInvs.push_back(Inv);
  for (size_t I = 0; I < CommittedInvs.size(); ++I) {
    for (size_t J = I + 1; J < CommittedInvs.size(); ++J) {
      int P = CommittedInvs[I], Q = CommittedInvs[J];
      int RefA = Ref.firstAccessOf(P), RefB = Ref.firstAccessOf(Q);
      if (RefA < 0 || RefB < 0)
        continue; // reference op touches no memory; order is irrelevant
      Lit RefBefore = Ref.MME->order()->before(RefA, RefB);
      std::vector<Lit> Terms;
      for (const auto &[SelP, AccP] : Marks[P])
        for (const auto &[SelQ, AccQ] : Marks[Q])
          Terms.push_back(Cnf.andLits(
              {SelP, SelQ, Impl.MME->order()->before(AccP, AccQ)}));
      Lit CommitBefore = Cnf.orLits(Terms);
      Cnf.addClause(~CommitBefore, RefBefore);
      Cnf.addClause(CommitBefore, ~RefBefore);
    }
  }

  // Same arguments; search for differing results (or an impl error).
  std::vector<Lit> Mismatch{Impl.ErrorLit};
  for (size_t S = 0; S < Impl.Flat.Observations.size(); ++S) {
    const EncValue &IV = Impl.VE->value(Impl.Flat.Observations[S].Val);
    const EncValue &RV = Ref.VE->value(Ref.Flat.Observations[S].Val);
    bool IsArg = Impl.Flat.Observations[S].Label.find(".arg") !=
                 std::string::npos;
    Lit Eq = Impl.VE->eqLit(IV, RV);
    if (IsArg)
      Cnf.addClause(Eq);
    else
      Mismatch.push_back(~Eq);
  }
  Cnf.addClause(~Ref.ErrorLit); // the shadow itself never misbehaves
  Cnf.addClause(Mismatch);

  Result.EncodeSeconds = EncodeTimer.seconds();
  Result.SatVars = Solver.numVars();
  Result.SatClauses = Solver.numClauses();

  Timer SolveTimer;
  sat::SolveResult R = Solver.solve();
  Result.SolveSeconds = SolveTimer.seconds();
  Result.TotalSeconds = Total.seconds();

  switch (R) {
  case sat::SolveResult::Unknown:
    Result.Error = "solver budget exhausted";
    return Result;
  case sat::SolveResult::Unsat:
    Result.Ok = true;
    Result.Pass = true;
    return Result;
  case sat::SolveResult::Sat: {
    Result.Ok = true;
    Result.Pass = false;
    checker::Observation O;
    O.Error = Solver.modelValue(Impl.ErrorLit) == sat::LBool::True;
    for (const FlatObservation &Slot : Impl.Flat.Observations)
      O.Values.push_back(Impl.VE->decode(Solver, Slot.Val));
    Result.CexObservation = O;
    return Result;
  }
  }
  return Result;
}

CommitPointResult checkfence::baseline::runCommitPointTest(
    const std::string &ImplSource, const std::string &RefSource,
    const harness::TestSpec &Test, const CommitPointOptions &Opts) {
  CommitPointResult Result;

  frontend::DiagEngine Diags;
  lsl::Program Impl;
  if (!frontend::compileC(ImplSource, {"COMMIT_POINTS"}, Impl, Diags)) {
    Result.Error = "frontend error:\n" + Diags.str();
    return Result;
  }
  std::vector<std::string> Threads = harness::buildTestThreads(Impl, Test);

  frontend::DiagEngine RefDiags;
  lsl::Program Ref;
  if (!frontend::compileC(RefSource, {}, Ref, RefDiags)) {
    Result.Error = "frontend error in reference:\n" + RefDiags.str();
    return Result;
  }
  harness::buildTestThreads(Ref, Test);

  return checkCommitPoints(Impl, Ref, Threads, Opts);
}
