//===--- Impls.h - the studied implementations (Table 1) --------*- C++ -*-==//
//
// Part of the CheckFence reproduction (PLDI'07).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CheckFence-C sources for six concurrent data-type implementations:
/// the five algorithms of the paper's Table 1 plus one extension.
///
///   ms2      - Michael & Scott two-lock queue           (Table 1)
///   msn      - Michael & Scott non-blocking queue       (Table 1, Fig. 9)
///   lazylist - Heller et al. lazy list-based set        (Table 1)
///   harris   - Harris non-blocking set (marked pointers) (Table 1)
///   snark    - DCAS-based non-blocking deque, with the
///              published bugs                           (Table 1)
///   treiber  - Treiber lock-free stack                  (extension)
///
/// plus simple sequential reference implementations per data-type kind
/// ("refset" specification mining, Fig. 11a). All sources include the
/// shared prelude (cas/dcas/locks).
///
/// Variant defines:
///   LAZYLIST_INIT_BUG - omit the 'marked' initialization (Sec. 4.1 bug)
///
/// Fence placements follow Sec. 4.2/4.3; strip them with
/// LoweringOptions::StripFences to reproduce the relaxed-model failures.
///
//===----------------------------------------------------------------------===//

#ifndef CHECKFENCE_IMPLS_IMPLS_H
#define CHECKFENCE_IMPLS_IMPLS_H

#include <string>
#include <vector>

namespace checkfence {
namespace impls {

struct ImplInfo {
  std::string Name;        ///< "msn", "ms2", ...
  std::string Kind;        ///< "queue", "set", or "deque"
  std::string Description; ///< Table 1 description
};

/// The five implementations of Table 1.
const std::vector<ImplInfo> &allImpls();

/// Looks an implementation up by name; nullptr for unknown names.
const ImplInfo *findImpl(const std::string &Name);

/// Full CheckFence-C source (prelude + implementation + test wrappers).
std::string sourceFor(const std::string &Name);

/// The shared prelude (assert/fence declarations, cas, dcas, locks).
std::string preludeSource();

/// Sequential reference implementation for a data-type kind.
std::string referenceFor(const std::string &Kind);

} // namespace impls
} // namespace checkfence

#endif // CHECKFENCE_IMPLS_IMPLS_H
